(* Bechamel microbenchmarks — the wall-clock companions to the model-based
   experiment tables (see DESIGN.md section 4 and EXPERIMENTS.md):

   - lookup/*       -> E5 (dataplane scaling), real time per classification
   - translator/*   -> the SS_1 split ablation (DESIGN section 5)
   - pmd/batch-*    -> PMD batching ablation
   - e2e/*          -> E2/E3 companions: a full ping through HARMLESS
   - wire/*, table/* and mgmt/* -> substrate costs backing everything else

   After the microbenches, the experiment tables (E1-E10) are printed so
   `dune exec bench/main.exe` regenerates every figure in one artifact. *)

open Bechamel
open Toolkit

let mac i = Netpkt.Mac_addr.make_local i
let ip = Netpkt.Ipv4_addr.of_string

(* ---- lookup/* : one classification per run ---- *)

let lookup_tests =
  let mk_bench name dataplane_of rules =
    let pipeline = Experiments_lib.E5_dataplane.build_pipeline rules in
    let dp : Softswitch.Dataplane.t = dataplane_of pipeline in
    let packets =
      Experiments_lib.E5_dataplane.workload ~rng:(Simnet.Rng.create 5)
        ~num_rules:rules ~skew:0.0 ~count:1024
    in
    let i = ref 0 in
    Test.make
      ~name:(Printf.sprintf "%s-%d" name rules)
      (Staged.stage (fun () ->
           let pkt = packets.(!i land 1023) in
           incr i;
           ignore (dp.Softswitch.Dataplane.process ~now_ns:0 ~in_port:0 pkt)))
  in
  Test.make_grouped ~name:"lookup"
    (List.concat_map
       (fun rules ->
         [
           mk_bench "linear" Softswitch.Linear.create rules;
           mk_bench "ovs" (fun p -> Softswitch.Ovs_like.create p) rules;
           mk_bench "eswitch" Softswitch.Eswitch.create rules;
         ])
       [ 100; 1000 ])

(* ---- translator/* : SS_1 in both directions ---- *)

let translator_tests =
  let engine = Simnet.Engine.create () in
  let map = Harmless.Port_map.make ~access_ports:[ 0; 1; 2; 3 ] () in
  let ss1 =
    Softswitch.Soft_switch.create engine ~name:"b-ss1" ~ports:5
      ~miss:Softswitch.Soft_switch.Drop_on_miss ()
  in
  Harmless.Translator.install ss1 map;
  let tagged =
    Netpkt.Packet.udp
      ~vlans:[ Netpkt.Vlan.make 102 ]
      ~dst:(mac 2) ~src:(mac 1) ~ip_src:(ip "10.0.0.1") ~ip_dst:(ip "10.0.0.2")
      ~src_port:1 ~dst_port:2 "x"
  in
  let untagged =
    Netpkt.Packet.udp ~dst:(mac 2) ~src:(mac 1) ~ip_src:(ip "10.0.0.1")
      ~ip_dst:(ip "10.0.0.2") ~src_port:1 ~dst_port:2 "x"
  in
  Test.make_grouped ~name:"translator"
    [
      Test.make ~name:"trunk-to-patch"
        (Staged.stage (fun () ->
             ignore
               (Softswitch.Soft_switch.process_direct ss1 ~now_ns:0 ~in_port:0 tagged)));
      Test.make ~name:"patch-to-trunk"
        (Staged.stage (fun () ->
             ignore
               (Softswitch.Soft_switch.process_direct ss1 ~now_ns:0 ~in_port:2
                  untagged)));
    ]

(* ---- pmd/batch-* : 256 packets through the CPU model ---- *)

let pmd_tests =
  let mk batch =
    Test.make
      ~name:(Printf.sprintf "batch-%d" batch)
      (Staged.stage (fun () ->
           let engine = Simnet.Engine.create () in
           let pmd =
             Softswitch.Pmd.create engine
               ~config:{ Softswitch.Pmd.default_config with Softswitch.Pmd.batch_size = batch }
               ()
           in
           for _ = 1 to 256 do
             ignore (Softswitch.Pmd.submit pmd ~cycles:120 (fun () -> ()))
           done;
           Simnet.Engine.run engine))
  in
  Test.make_grouped ~name:"pmd" [ mk 1; mk 32; mk 256 ]

(* ---- e2e/* : a full ping through a prebuilt deployment ---- *)

let e2e_tests =
  let build kind =
    let engine = Simnet.Engine.create () in
    let deployment =
      match kind with
      | `Harmless -> (
          match Harmless.Deployment.build_harmless engine ~num_hosts:2 () with
          | Ok d -> d
          | Error m -> failwith m)
      | `Plain -> Harmless.Deployment.build_plain_openflow engine ~num_hosts:2 ()
    in
    ignore
      (Experiments_lib.Common.attach_with_apps deployment
         [ Experiments_lib.Common.proactive_l2 ~num_hosts:2 ]);
    deployment
  in
  let ping_through deployment =
    let engine = deployment.Harmless.Deployment.engine in
    let h0 = Harmless.Deployment.host deployment 0 in
    let seq = ref 0 in
    fun () ->
      incr seq;
      Simnet.Host.ping h0
        ~dst_mac:(Harmless.Deployment.host_mac 1)
        ~dst_ip:(Harmless.Deployment.host_ip 1)
        ~seq:(!seq land 0xffff);
      Simnet.Engine.run engine
  in
  let harmless = ping_through (build `Harmless) in
  let plain = ping_through (build `Plain) in
  Test.make_grouped ~name:"e2e"
    [
      Test.make ~name:"ping-harmless" (Staged.stage harmless);
      Test.make ~name:"ping-plain-of" (Staged.stage plain);
    ]

(* ---- substrate costs ---- *)

let wire_tests =
  let pkt =
    Netpkt.Packet.pad_to 1518
      (Netpkt.Packet.udp ~dst:(mac 2) ~src:(mac 1) ~ip_src:(ip "10.0.0.1")
         ~ip_dst:(ip "10.0.0.2") ~src_port:1 ~dst_port:2 "payload")
  in
  let raw = Netpkt.Packet.encode pkt in
  Test.make_grouped ~name:"wire"
    [
      Test.make ~name:"encode-1518" (Staged.stage (fun () -> ignore (Netpkt.Packet.encode pkt)));
      Test.make ~name:"decode-1518" (Staged.stage (fun () -> ignore (Netpkt.Packet.decode raw)));
      Test.make ~name:"checksum-1500"
        (Staged.stage (fun () -> ignore (Netpkt.Checksum.checksum raw)));
      Test.make ~name:"fields-extract"
        (Staged.stage (fun () -> ignore (Netpkt.Packet.Fields.of_packet pkt)));
    ]

let table_tests =
  let table = Ethswitch.Mac_table.create () in
  let i = ref 0 in
  let flow_table = Openflow.Flow_table.create () in
  for k = 0 to 999 do
    Openflow.Flow_table.add flow_table ~now_ns:0
      (Openflow.Flow_entry.make ~priority:(k + 10)
         ~match_:Openflow.Of_match.(any |> eth_dst (mac (5000 + k)))
         [ Openflow.Flow_entry.Apply_actions [ Openflow.Of_action.output 1 ] ])
  done;
  let fields =
    Netpkt.Packet.Fields.of_packet
      (Netpkt.Packet.udp ~dst:(mac 5999) ~src:(mac 1) ~ip_src:(ip "10.0.0.1")
         ~ip_dst:(ip "10.0.0.2") ~src_port:1 ~dst_port:2 "x")
  in
  Test.make_grouped ~name:"table"
    [
      Test.make ~name:"mac-learn-lookup"
        (Staged.stage (fun () ->
             incr i;
             let m = mac (!i land 0xfff) in
             Ethswitch.Mac_table.learn table ~now:Simnet.Sim_time.zero ~vlan:1 ~mac:m
               ~port:(!i land 7);
             ignore
               (Ethswitch.Mac_table.lookup table ~now:Simnet.Sim_time.zero ~vlan:1 ~mac:m)));
      Test.make ~name:"flow-lookup-1k-worst"
        (Staged.stage (fun () ->
             ignore (Openflow.Flow_table.lookup flow_table ~in_port:0 fields)));
    ]

let mgmt_tests =
  let engine = Simnet.Engine.create () in
  let sw = Ethswitch.Legacy_switch.create engine ~name:"bsw" ~ports:48 () in
  let device = Mgmt.Device.create ~switch:sw ~vendor:Mgmt.Device.Cisco_like () in
  let agent = Mgmt.Device.snmp device in
  let text = Mgmt.Device.running_config_text device in
  Test.make_grouped ~name:"mgmt"
    [
      Test.make ~name:"snmp-get"
        (Staged.stage (fun () ->
             ignore (Mgmt.Snmp.get agent ~community:"public" Mgmt.Oid.Std.sys_name)));
      Test.make ~name:"config-render-parse-48p"
        (Staged.stage (fun () ->
             match Mgmt.Dialect.Ios.parse text with
             | Ok _ -> ()
             | Error e -> failwith e));
    ]

let cost_tests =
  Test.make_grouped ~name:"cost"
    [
      Test.make ~name:"sweep-8..384"
        (Staged.stage (fun () ->
             ignore
               (Costmodel.Cost.sweep
                  ~port_counts:[ 8; 16; 24; 48; 96; 144; 192; 384 ])));
    ]

(* ---- ablation: SS_1+SS_2 split vs one combined switch ----

   The split exists for transparency, not speed: a single switch could
   fold the VLAN translation into every forwarding rule.  This measures
   what the split costs per packet (three dataplane passes vs one) and
   what the combined design pays instead (a rule-set that entangles the
   VLAN mapping with policy - 2x rules here, O(ports x policy) in
   general). *)

let ablation_tests =
  let engine = Simnet.Engine.create () in
  let map = Harmless.Port_map.make ~access_ports:[ 0; 1; 2; 3 ] () in
  (* Split: SS_1 (translator) + SS_2 (eth_dst forwarding). *)
  let ss1 =
    Softswitch.Soft_switch.create engine ~name:"ab-ss1" ~ports:5
      ~miss:Softswitch.Soft_switch.Drop_on_miss ()
  in
  Harmless.Translator.install ss1 map;
  let ss2 =
    Softswitch.Soft_switch.create engine ~name:"ab-ss2" ~ports:4
      ~miss:Softswitch.Soft_switch.Drop_on_miss ()
  in
  for i = 0 to 3 do
    Softswitch.Soft_switch.handle_message ss2
      (Openflow.Of_message.Flow_mod
         (Openflow.Of_message.add_flow
            ~match_:Openflow.Of_match.(any |> eth_dst (mac (i + 1)))
            [ Openflow.Flow_entry.Apply_actions [ Openflow.Of_action.output i ] ]))
  done;
  (* Combined: one switch, one table entangling vid and dst. *)
  let combined =
    Softswitch.Soft_switch.create engine ~name:"ab-comb" ~ports:1
      ~miss:Softswitch.Soft_switch.Drop_on_miss ()
  in
  for src = 0 to 3 do
    for dst = 0 to 3 do
      if src <> dst then
        Softswitch.Soft_switch.handle_message combined
          (Openflow.Of_message.Flow_mod
             (Openflow.Of_message.add_flow
                ~match_:
                  Openflow.Of_match.(
                    any |> vid (101 + src) |> eth_dst (mac (dst + 1)))
                [
                  Openflow.Flow_entry.Apply_actions
                    [
                      Openflow.Of_action.Set_vlan_vid (101 + dst);
                      Openflow.Of_action.Output Openflow.Of_action.In_port;
                    ];
                ]))
    done
  done;
  let tagged =
    Netpkt.Packet.udp
      ~vlans:[ Netpkt.Vlan.make 101 ]
      ~dst:(mac 2) ~src:(mac 1) ~ip_src:(ip "10.0.0.1") ~ip_dst:(ip "10.0.0.2")
      ~src_port:1 ~dst_port:2 "x"
  in
  let untagged = match Netpkt.Packet.pop_vlan tagged with Some (_, p) -> p | None -> tagged in
  Test.make_grouped ~name:"ablation"
    [
      Test.make ~name:"split-3-passes"
        (Staged.stage (fun () ->
             ignore (Softswitch.Soft_switch.process_direct ss1 ~now_ns:0 ~in_port:0 tagged);
             ignore (Softswitch.Soft_switch.process_direct ss2 ~now_ns:0 ~in_port:0 untagged);
             ignore (Softswitch.Soft_switch.process_direct ss1 ~now_ns:0 ~in_port:2 untagged)));
      Test.make ~name:"combined-1-pass"
        (Staged.stage (fun () ->
             ignore
               (Softswitch.Soft_switch.process_direct combined ~now_ns:0 ~in_port:0 tagged)));
    ]

(* ---- wire codec and meters ---- *)

let codec_tests =
  let fm =
    Openflow.Of_message.Flow_mod
      (Openflow.Of_message.add_flow
         ~match_:
           Openflow.Of_match.(
             any |> eth_type 0x0800
             |> ip_dst (Netpkt.Ipv4_addr.Prefix.of_string "10.0.0.0/24"))
         [
           Openflow.Flow_entry.Apply_actions
             [ Openflow.Of_action.Set_vlan_vid 101; Openflow.Of_action.output 3 ];
         ])
  in
  let frame = Openflow.Of_codec.encode fm in
  Test.make_grouped ~name:"codec"
    [
      Test.make ~name:"encode-flow-mod"
        (Staged.stage (fun () -> ignore (Openflow.Of_codec.encode fm)));
      Test.make ~name:"decode-flow-mod"
        (Staged.stage (fun () -> ignore (Openflow.Of_codec.decode frame)));
    ]

let meter_tests =
  let meters = Openflow.Meter_table.create () in
  Openflow.Meter_table.add meters ~id:1
    { Openflow.Meter_table.rate_kbps = 1_000_000; burst_kb = 1000 };
  let clock = ref 0 in
  Test.make_grouped ~name:"meter"
    [
      Test.make ~name:"token-bucket-apply"
        (Staged.stage (fun () ->
             clock := !clock + 1000;
             ignore (Openflow.Meter_table.apply meters ~id:1 ~now_ns:!clock ~bytes:1500)));
    ]

(* ---- trace/* : the observability tax ----

   The pair prices the tracing hook both ways: "emit-noop" is the
   instrumented-site idiom with no sink installed (one ref read, no
   allocation — see the matching no-alloc test), "emit-collector" is
   the same hop landing in a Collector (including the sink
   install/remove ref writes the closure needs to keep the global sink
   honest between tests). *)

let trace_tests =
  let pkt =
    Netpkt.Packet.udp ~dst:(mac 2) ~src:(mac 1) ~ip_src:(ip "10.0.0.1")
      ~ip_dst:(ip "10.0.0.2") ~src_port:1 ~dst_port:2 "x"
  in
  let collector = Telemetry.Trace.Collector.create () in
  let emitted = ref 0 in
  Test.make_grouped ~name:"trace"
    [
      Test.make ~name:"emit-noop"
        (Staged.stage (fun () ->
             if Telemetry.Trace.enabled () then
               Telemetry.Trace.emit ~ts_ns:0 ~component:"bench"
                 ~layer:Telemetry.Trace.Host ~stage:"noop" pkt));
      Test.make ~name:"emit-collector"
        (Staged.stage (fun () ->
             Telemetry.Trace.Collector.install collector;
             Telemetry.Trace.emit ~ts_ns:0 ~component:"bench"
               ~layer:Telemetry.Trace.Host ~stage:"sunk" pkt;
             Telemetry.Trace.Collector.uninstall collector;
             incr emitted;
             (* keep the accumulator bounded over millions of runs *)
             if !emitted land 4095 = 0 then
               Telemetry.Trace.Collector.clear collector));
    ]

(* ---- flows/* : the sampled traffic observability plane ----

   "observe-skip" is the per-packet tax every switch pays when the
   packet is NOT sampled — the line the zero-overhead guard watches
   (words/run must stay 0; the HLL register max is the only work).
   "observe-sample" pays the full sampled path at rate 1: flow key,
   count-min and top-k updates, ring write.  "flow-hash" prices the
   5-tuple hash on its own, and "merge-fabric" is one collector tick
   folding four pre-fed switches into the fabric view. *)

let flows_tests =
  let flow_pkt i =
    Netpkt.Packet.udp ~dst:(mac 0x202) ~src:(mac 0x201)
      ~ip_src:(ip "10.2.0.1") ~ip_dst:(ip "10.2.0.2")
      ~src_port:(1000 + (i land 0xff)) ~dst_port:80 "bench"
  in
  let skip =
    Softswitch.Flowrec.create
      ~config:{ Softswitch.Flowrec.default_config with rate = max_int }
      ()
  in
  let sample =
    Softswitch.Flowrec.create
      ~config:{ Softswitch.Flowrec.default_config with rate = 1 }
      ()
  in
  let p0 = flow_pkt 0 in
  let fc = Sdnctl.Flow_collector.create (Simnet.Engine.create ()) in
  let () =
    for s = 1 to 4 do
      let r =
        Softswitch.Flowrec.create ~config:(Sdnctl.Flow_collector.config fc) ()
      in
      Sdnctl.Flow_collector.attach fc ~name:(Printf.sprintf "sw%d" s) r;
      for i = 1 to 1024 do
        Softswitch.Flowrec.observe r ~now_ns:i ~in_port:1 (flow_pkt (i * s))
      done
    done
  in
  Test.make_grouped ~name:"flows"
    [
      Test.make ~name:"observe-skip"
        (Staged.stage (fun () ->
             Softswitch.Flowrec.observe skip ~now_ns:0 ~in_port:1 p0));
      Test.make ~name:"observe-sample"
        (Staged.stage (fun () ->
             Softswitch.Flowrec.observe sample ~now_ns:0 ~in_port:1 p0));
      Test.make ~name:"flow-hash"
        (Staged.stage (fun () -> ignore (Netpkt.Packet.flow_hash p0)));
      Test.make ~name:"merge-fabric"
        (Staged.stage (fun () -> Sdnctl.Flow_collector.merge_now fc));
    ]

(* ---- harness ---- *)

(* ---- fuzz/* : conformance-checking throughput ----

   How fast the differential fuzzer grinds scenarios (generate, run
   through the oracle plus every backend, compare) and how fast the
   codec fuzzer pushes frames through the totality/fixpoint contract.
   CI multiplies these into a fuzz-cases/sec budget. *)

let fuzz_tests =
  let seed = ref 0 in
  let rng = Simnet.Rng.create 42 in
  Test.make_grouped ~name:"fuzz"
    [
      Test.make ~name:"differential-case"
        (Staged.stage (fun () ->
             incr seed;
             ignore (Check.Differential.check_case ~seed:!seed)));
      Test.make ~name:"codec-case"
        (Staged.stage (fun () ->
             let frame =
               Openflow.Of_codec.encode (Check.Codec_fuzz.gen_valid_message rng)
             in
             ignore (Check.Codec_fuzz.check_frame frame)));
    ]

(* ---- policy/* : the NetKAT-lite compiler and its tables ----

   "compile-gateway" is the whole pipeline — compose the four resident
   apps, build the FDD, extract and minimize the single table — i.e. the
   controller-side cost of a config push.  The lookup benches then price
   that composed table on each dataplane backend, the companion to
   lookup/* for policy-generated (match-heterogeneous) rules rather than
   synthetic eth_dst ladders. *)

let policy_tests =
  let g = Sdnctl.Gateway.default () in
  let pol = Sdnctl.Gateway.policy g in
  let compiled_msgs = Policy.Compile.messages (Policy.Compile.compile pol) in
  let mk_lookup (name, create) =
    let pipeline = Openflow.Pipeline.create ~num_tables:1 () in
    let dp = create pipeline in
    List.iter (Check.Differential.apply_message pipeline ~now_ns:0) compiled_msgs;
    let packets =
      [|
        (* metered subscriber band (meter + eth_dst product rules) *)
        Netpkt.Packet.udp ~dst:(mac 0x102) ~src:(mac 0x101)
          ~ip_src:(ip "10.1.0.1") ~ip_dst:(ip "10.1.0.2") ~src_port:4000
          ~dst_port:53 "x";
        (* vip rule into the select group *)
        Netpkt.Packet.udp ~dst:(mac 0x310) ~src:(mac 0x103)
          ~ip_src:(ip "10.1.0.3") ~ip_dst:(ip "10.3.0.10") ~src_port:4000
          ~dst_port:80 "x";
        (* plain L2 fallback band *)
        Netpkt.Packet.udp ~dst:(mac 0x104) ~src:(mac 0x103)
          ~ip_src:(ip "10.1.0.3") ~ip_dst:(ip "10.1.0.4") ~src_port:4000
          ~dst_port:53 "x";
      |]
    in
    let in_ports = [| 0; 2; 2 |] in
    let i = ref 0 in
    Test.make
      ~name:(Printf.sprintf "lookup-%s" name)
      (Staged.stage (fun () ->
           let k = !i mod 3 in
           incr i;
           ignore
             (dp.Softswitch.Dataplane.process ~now_ns:0 ~in_port:in_ports.(k)
                packets.(k))))
  in
  Test.make_grouped ~name:"policy"
    (Test.make ~name:"compile-gateway"
       (Staged.stage (fun () -> ignore (Policy.Compile.compile pol)))
    :: List.map mk_lookup Softswitch.Backends.all)

let all_tests =
  [
    lookup_tests;
    translator_tests;
    pmd_tests;
    e2e_tests;
    wire_tests;
    table_tests;
    mgmt_tests;
    cost_tests;
    codec_tests;
    meter_tests;
    ablation_tests;
    trace_tests;
    flows_tests;
    fuzz_tests;
    policy_tests;
  ]

type row = {
  row_name : string;
  ns_per_run : float;
  minor_words_per_run : float;
  r_square : float;
  runs : int;
}

(* OLS over fewer than 3 samples is an interpolation, not a fit: the
   estimate is arbitrary and r^2 degenerates (the seed baseline carried
   r^2 values of -809 and -107349 from 2-run quick samples). *)
let min_runs = 3

(* Toolkit.Instance.minor_allocated reads (Gc.quick_stat ()).minor_words,
   which on the OCaml 5.1 runtime only advances at minor collections — every
   within-sample delta is 0 and the OLS slope degenerates to zero for every
   benchmark.  Back the measure with the Gc.minor_words external instead,
   which counts live allocation. *)
module Live_minor_words = struct
  type witness = unit

  let make () = ()
  let load () = ()
  let unload () = ()
  let get () = Gc.minor_words ()
  let label () = "live-minor-words"
  let unit () = "mnw"
end

let live_minor_words =
  Measure.instance
    (module Live_minor_words)
    (Measure.register (module Live_minor_words))

let run_benchmarks ~quota () =
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let clock = Instance.monotonic_clock in
  let alloc = live_minor_words in
  let rec measure group quota attempt =
    let cfg =
      Benchmark.cfg ~limit:1000 ~quota:(Time.second quota) ~kde:(Some 100) ()
    in
    let raw = Benchmark.all cfg [ clock; alloc ] group in
    let shortest =
      Hashtbl.fold
        (fun _ (b : Benchmark.t) acc ->
          min acc b.Benchmark.stats.Benchmark.samples)
        raw max_int
    in
    if shortest >= min_runs || attempt >= 5 then raw
    else measure group (quota *. 2.0) (attempt + 1)
  in
  let slope tbl name =
    match Hashtbl.find_opt tbl name with
    | Some result -> (
        match Analyze.OLS.estimates result with
        | Some [ s ] -> s
        | Some _ | None -> nan)
    | None -> nan
  in
  Printf.printf "%-36s %14s %12s %10s %8s\n" "benchmark" "ns/run" "words/run"
    "r^2" "runs";
  Printf.printf "%s\n" (String.make 84 '-');
  List.concat_map
    (fun group ->
      let raw = measure group quota 1 in
      let times = Analyze.all ols clock raw in
      let allocs = Analyze.all ols alloc raw in
      let rows =
        Hashtbl.fold
          (fun name result acc ->
            let ns =
              match Analyze.OLS.estimates result with
              | Some [ slope ] -> slope
              | Some _ | None -> nan
            in
            let words = slope allocs name in
            let runs =
              match Hashtbl.find_opt raw name with
              | Some (b : Benchmark.t) -> b.Benchmark.stats.Benchmark.samples
              | None -> 0
            in
            let r_square =
              let v = Option.value (Analyze.OLS.r_square result) ~default:nan in
              if runs < min_runs || v < 0.0 || v > 1.0 then nan else v
            in
            { row_name = name; ns_per_run = ns; minor_words_per_run = words;
              r_square; runs }
            :: acc)
          times []
        |> List.sort (fun a b -> String.compare a.row_name b.row_name)
      in
      List.iter
        (fun r ->
          Printf.printf "%-36s %14.1f %12.1f %10s %8d\n" r.row_name r.ns_per_run
            r.minor_words_per_run
            (if Float.is_nan r.r_square then "-"
             else Printf.sprintf "%.4f" r.r_square)
            r.runs)
        rows;
      rows)
    all_tests

(* Machine-readable results, one object per benchmark — what the CI
   smoke job parses.  NaN has no JSON spelling, so unavailable
   estimates become null. *)
let write_json ~path ~quick rows =
  let open Telemetry.Json in
  let num f = if Float.is_nan f then Null else Float f in
  let doc =
    Obj
      [
        ("schema", Str "harmless-bench/2");
        ("quick", Bool quick);
        ( "results",
          Arr
            (List.map
               (fun r ->
                 Obj
                   [
                     ("name", Str r.row_name);
                     ("ns_per_run", num r.ns_per_run);
                     ("minor_words_per_run", num r.minor_words_per_run);
                     ("r_square", num r.r_square);
                     ("runs", Int r.runs);
                   ])
               rows) );
      ]
  in
  Out_channel.with_open_text path (fun oc ->
      Out_channel.output_string oc (to_string doc);
      Out_channel.output_char oc '\n');
  Printf.printf "wrote %s (%d results)\n" path (List.length rows)

let usage () =
  prerr_endline
    "usage: main.exe [--json FILE] [--force] [--append-history FILE] [--quick]\n\
     \  --json FILE            also write results as JSON (see EXPERIMENTS.md);\n\
     \                         refuses to clobber an existing FILE without --force\n\
     \  --force                overwrite an existing --json FILE\n\
     \  --append-history FILE  append this run to a JSONL bench-history store\n\
     \                         (see `harmlessctl perf`)\n\
     \  --quick                short measurement quota, skip the E1-E15 tables";
  exit 2

let () =
  let json_path = ref None
  and history_path = ref None
  and force = ref false
  and quick = ref false in
  let rec parse = function
    | [] -> ()
    | "--json" :: file :: rest ->
        json_path := Some file;
        parse rest
    | [ "--json" ] -> usage ()
    | "--append-history" :: file :: rest ->
        history_path := Some file;
        parse rest
    | [ "--append-history" ] -> usage ()
    | "--force" :: rest ->
        force := true;
        parse rest
    | "--quick" :: rest ->
        quick := true;
        parse rest
    | _ -> usage ()
  in
  parse (List.tl (Array.to_list Sys.argv));
  (* Fail before the (minutes-long) measurement, not after it. *)
  (match !json_path with
  | Some path when Sys.file_exists path && not !force ->
      Printf.eprintf
        "error: %s exists; pass --force to overwrite it (or --append-history \
         to keep a trajectory)\n"
        path;
      exit 2
  | Some _ | None -> ());
  print_endline "== Bechamel microbenchmarks ==";
  let rows = run_benchmarks ~quota:(if !quick then 0.02 else 0.3) () in
  print_newline ();
  (match !json_path with
  | Some path -> write_json ~path ~quick:!quick rows
  | None -> ());
  (match !history_path with
  | Some path ->
      let snapshot =
        {
          Telemetry.Bench_history.quick = !quick;
          label = "";
          rows =
            List.map
              (fun r ->
                {
                  Telemetry.Bench_history.name = r.row_name;
                  ns_per_run =
                    (if Float.is_nan r.ns_per_run then None else Some r.ns_per_run);
                  minor_words_per_run =
                    (if Float.is_nan r.minor_words_per_run then None
                     else Some r.minor_words_per_run);
                  r_square =
                    (if Float.is_nan r.r_square then None else Some r.r_square);
                  runs = r.runs;
                })
              rows;
        }
      in
      Telemetry.Bench_history.append ~path snapshot;
      Printf.printf "appended %d results to %s\n" (List.length rows) path
  | None -> ());
  if !quick then ()
  else begin
  print_endline "== Experiment tables (E1-E15) ==";
  ignore (Experiments_lib.E1_walkthrough.run ());
  ignore (Experiments_lib.E2_throughput.run ());
  ignore (Experiments_lib.E3_latency.run ());
  ignore (Experiments_lib.E4_cost.run ());
  ignore (Experiments_lib.E5_dataplane.run ());
  ignore (Experiments_lib.E6_load_balancer.run ());
  ignore (Experiments_lib.E7_dmz.run ());
  ignore (Experiments_lib.E8_parental_control.run ());
  ignore (Experiments_lib.E9_transparency.run ());
  ignore (Experiments_lib.E10_mgmt.run ());
  ignore (Experiments_lib.E11_scaleout.run ());
  ignore (Experiments_lib.E12_rate_limit.run ());
  ignore (Experiments_lib.E13_failover.run ());
  ignore (Experiments_lib.E14_tcp.run ());
  ignore (Experiments_lib.E15_oversubscription.run ())
  end
