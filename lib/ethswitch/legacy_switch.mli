(** A legacy (non-SDN) Ethernet switch: transparent 802.1Q bridging with
    MAC learning — the cheap, dumb, high-port-density box HARMLESS
    breathes new life into.

    Forwarding pipeline per frame: classify ingress VLAN (drop if the
    port/tag combination is not allowed), learn the source address, look
    up the destination (flood the VLAN on miss or for group addresses),
    then re-encapsulate per egress-port configuration.  A fixed
    processing delay models the store-and-forward ASIC latency. *)

type t

val create :
  Simnet.Engine.t ->
  name:string ->
  ports:int ->
  ?processing_delay:Simnet.Sim_time.span ->
  ?mac_table_capacity:int ->
  ?mac_aging:Simnet.Sim_time.span ->
  unit ->
  t
(** Defaults: 4 us processing delay, 8192-entry table, 300 s aging. *)

val node : t -> Simnet.Node.t
val name : t -> string
val port_count : t -> int

val set_port_mode : t -> port:int -> Port_config.mode -> unit
(** Reconfigure a port; the MAC entries learned on it are flushed.
    @raise Invalid_argument on a bad port number. *)

val port_mode : t -> port:int -> Port_config.mode
val mac_table : t -> Mac_table.t

val counters : t -> Simnet.Stats.Counter.t
(** Includes ["fwd"], ["flood"], ["drop_ingress_vlan"], ["drop_same_port"],
    and the node's rx/tx counters. *)

val vlans_in_use : t -> int list
(** Sorted list of every VLAN some port is a member of. *)

val set_storm_control : t -> port:int -> pps:int option -> unit
(** Cap broadcast/multicast ingress on a port to [pps] packets per second
    (token bucket with a 100 ms burst), or [None] to remove the cap —
    the usual low-end-switch protection against broadcast storms.
    Violations count under ["drop_storm"].
    @raise Invalid_argument on a bad port or non-positive rate. *)

val storm_control : t -> port:int -> int option

val set_port_security : t -> port:int -> max_macs:int option -> unit
(** Limit how many source MACs may live behind a port (classic port
    security, violation action "protect": frames from addresses beyond
    the limit are dropped and counted under ["drop_port_security"]).
    @raise Invalid_argument on a bad port or non-positive limit. *)

val port_security : t -> port:int -> int option

val set_mirror : t -> dst:int option -> unit
(** Configure a SPAN (mirror) port: a copy of every frame the switch
    forwards or floods is also transmitted, unmodified and untagged, out
    of [dst] (which should not otherwise participate in switching).
    [None] disables.  @raise Invalid_argument on a bad port. *)

val mirror : t -> int option

val publish_metrics :
  ?registry:Telemetry.Registry.t -> ?labels:Telemetry.Registry.labels ->
  t -> unit
(** Snapshot the switch's forwarding counters and MAC-table occupancy
    into gauges named [ethswitch_*].  Pull-based; nothing is recorded
    until called. *)
