open Simnet
open Netpkt

(* Modelled per-stage forwarding costs, in CPU-equivalent cycles at the
   trace clock — what this switch's Trace hops report.  The legacy box
   is an ASIC, so these are small constants, not measured work; the
   full cycle-model table lives in Telemetry.Trace's interface. *)
let ingress_cycles = 90 (* VLAN classify + MAC learn + lookup *)
let tag_rewrite_cycles = 12 (* one 802.1Q push or pop *)

type storm_bucket = {
  pps : int;
  mutable tokens : float;
  mutable last_refill : Sim_time.t;
}

type t = {
  node : Node.t;
  engine : Engine.t;
  name : string;
  modes : Port_config.mode array;
  mac_table : Mac_table.t;
  processing_delay : Sim_time.span;
  mutable storm : storm_bucket option array;
  mutable max_macs : int option array;
  mutable mirror : int option;
}

let node t = t.node
let name t = t.name
let port_count t = Array.length t.modes
let mac_table t = t.mac_table
let counters t = Node.counters t.node

let check_port t port =
  if port < 0 || port >= Array.length t.modes then
    invalid_arg (Printf.sprintf "Legacy_switch %s: bad port %d" t.name port)

let set_port_mode t ~port mode =
  check_port t port;
  t.modes.(port) <- mode;
  Mac_table.flush_port t.mac_table ~port

let port_mode t ~port =
  check_port t port;
  t.modes.(port)

let set_storm_control t ~port ~pps =
  check_port t port;
  match pps with
  | None -> t.storm.(port) <- None
  | Some rate ->
      if rate <= 0 then invalid_arg "Legacy_switch.set_storm_control: pps <= 0";
      t.storm.(port) <-
        Some
          {
            pps = rate;
            tokens = float_of_int rate /. 10.0;
            last_refill = Engine.now t.engine;
          }

let storm_control t ~port =
  check_port t port;
  Option.map (fun b -> b.pps) t.storm.(port)

let set_port_security t ~port ~max_macs =
  check_port t port;
  (match max_macs with
  | Some n when n <= 0 -> invalid_arg "Legacy_switch.set_port_security: max <= 0"
  | Some _ | None -> ());
  t.max_macs.(port) <- max_macs

let port_security t ~port =
  check_port t port;
  t.max_macs.(port)

let set_mirror t ~dst =
  (match dst with Some p -> check_port t p | None -> ());
  t.mirror <- dst

let mirror t = t.mirror

(* Port security ("protect" mode): a new source address beyond the limit
   is not learned and its frames are dropped; known addresses keep
   working. *)
let security_allows t ~in_port ~vlan ~mac ~now =
  match t.max_macs.(in_port) with
  | None -> true
  | Some limit -> (
      (not (Netpkt.Mac_addr.is_unicast mac))
      ||
      match Mac_table.lookup t.mac_table ~now ~vlan ~mac with
      | Some p when p = in_port -> true
      | Some _ | None -> Mac_table.count_port t.mac_table ~port:in_port < limit)

(* One token per allowed packet; bucket caps at a 100 ms burst. *)
let storm_allows t ~port =
  match t.storm.(port) with
  | None -> true
  | Some b ->
      let now = Engine.now t.engine in
      let elapsed = Sim_time.span_to_seconds (Sim_time.diff now b.last_refill) in
      if elapsed > 0.0 then begin
        b.tokens <-
          Float.min (float_of_int b.pps /. 10.0)
            (b.tokens +. (elapsed *. float_of_int b.pps));
        b.last_refill <- now
      end;
      if b.tokens >= 1.0 then begin
        b.tokens <- b.tokens -. 1.0;
        true
      end
      else false

let vlans_in_use t =
  let module Iset = Set.Make (Int) in
  let add_mode acc = function
    | Port_config.Access pvid -> Iset.add pvid acc
    | Port_config.Disabled -> acc
    | Port_config.Trunk { native; allowed } ->
        let acc = match native with Some v -> Iset.add v acc | None -> acc in
        (match allowed with
        | Port_config.All -> acc
        | Port_config.Only vids -> List.fold_left (fun a v -> Iset.add v a) acc vids)
  in
  Iset.elements (Array.fold_left add_mode Iset.empty t.modes)

(* Send [inner] (the frame without its outer customer tag) out of [port],
   encapsulated for that port's membership of [vlan].  A configured SPAN
   port additionally gets an untagged copy of everything that egresses.
   [had_tag] says whether the frame carried an outer tag at ingress, so
   the trace can distinguish a tag pop from plain untagged delivery. *)
let egress t ~port ~vlan ~had_tag inner =
  let sent =
    match Port_config.egress_encap t.modes.(port) ~vlan with
    | None -> false
    | Some `Untagged ->
        if Telemetry.Trace.enabled () then
          Telemetry.Trace.emit
            ~ts_ns:(Sim_time.to_ns (Engine.now t.engine))
            ~component:t.name ~layer:Telemetry.Trace.Legacy
            ~stage:(if had_tag then "tag_pop" else "egress")
            ~port
            ~cycles:(if had_tag then tag_rewrite_cycles else 0)
            ~detail:(Printf.sprintf "vlan=%d untagged delivery" vlan)
            inner;
        Node.transmit t.node ~port inner;
        true
    | Some (`Tagged vid) ->
        let tagged = Packet.push_vlan (Vlan.make vid) inner in
        if Telemetry.Trace.enabled () then
          Telemetry.Trace.emit
            ~ts_ns:(Sim_time.to_ns (Engine.now t.engine))
            ~component:t.name ~layer:Telemetry.Trace.Legacy ~stage:"tag_push"
            ~port ~cycles:tag_rewrite_cycles
            ~detail:(Printf.sprintf "vid=%d" vid)
            tagged;
        Node.transmit t.node ~port tagged;
        true
  in
  match t.mirror with
  | Some span when sent && span <> port -> Node.transmit t.node ~port:span inner
  | Some _ | None -> ()

let forward t ~in_port (pkt : Packet.t) =
  let c = Node.counters t.node in
  let mode = t.modes.(in_port) in
  match Port_config.classify_ingress mode ~tag_vid:(Packet.outer_vid pkt) with
  | None -> Stats.Counter.incr c "drop_ingress_vlan"
  | Some vlan ->
      let had_tag = Option.is_some (Packet.outer_vid pkt) in
      if Telemetry.Trace.enabled () then
        Telemetry.Trace.emit
          ~ts_ns:(Sim_time.to_ns (Engine.now t.engine))
          ~component:t.name ~layer:Telemetry.Trace.Legacy ~stage:"ingress"
          ~port:in_port ~cycles:ingress_cycles
          ~detail:
            (Printf.sprintf "vlan=%d %s" vlan
               (if had_tag then "(tagged)" else "(access)"))
          pkt;
      (* Work with the frame stripped of its outer tag (if it had one). *)
      let inner =
        match Packet.pop_vlan pkt with Some (_, rest) -> rest | None -> pkt
      in
      let now = Engine.now t.engine in
      if not (security_allows t ~in_port ~vlan ~mac:pkt.Packet.src ~now) then
        Stats.Counter.incr c "drop_port_security"
      else begin
      Mac_table.learn t.mac_table ~now ~vlan ~mac:pkt.Packet.src ~port:in_port;
      let flood () =
        Stats.Counter.incr c "flood";
        for port = 0 to Array.length t.modes - 1 do
          if port <> in_port then egress t ~port ~vlan ~had_tag inner
        done
      in
      if not (Mac_addr.is_unicast pkt.Packet.dst) then begin
        if storm_allows t ~port:in_port then flood ()
        else Stats.Counter.incr c "drop_storm"
      end
      else
        match Mac_table.lookup t.mac_table ~now ~vlan ~mac:pkt.Packet.dst with
        | None -> flood ()
        | Some out_port when out_port = in_port ->
            Stats.Counter.incr c "drop_same_port"
        | Some out_port ->
            Stats.Counter.incr c "fwd";
            egress t ~port:out_port ~vlan ~had_tag inner
      end

let publish_metrics ?registry ?(labels = []) t =
  let labels = ("device", t.name) :: labels in
  Telemetry.Registry.publish_ints ?registry ~prefix:"ethswitch" ~labels
    (Stats.Counter.to_list (Node.counters t.node)
    @ [ ("mac_table_entries", Mac_table.entry_count t.mac_table) ])

let create engine ~name ~ports ?(processing_delay = Sim_time.us 4)
    ?(mac_table_capacity = 8192) ?(mac_aging = Sim_time.s 300) () =
  let node = Node.create engine ~name ~ports in
  let t =
    {
      node;
      engine;
      name;
      modes = Array.make ports Port_config.default;
      mac_table = Mac_table.create ~capacity:mac_table_capacity ~aging:mac_aging ();
      processing_delay;
      storm = Array.make ports None;
      max_macs = Array.make ports None;
      mirror = None;
    }
  in
  Node.set_handler node (fun _node ~in_port pkt ->
      if t.processing_delay = 0 then forward t ~in_port pkt
      else
        Engine.schedule_after engine t.processing_delay (fun () ->
            forward t ~in_port pkt));
  t
