open Simnet

type policy = {
  max_attempts : int;
  base_delay : Sim_time.span;
  multiplier : float;
  max_delay : Sim_time.span;
  jitter : bool;
}

let policy ?(max_attempts = 3) ?(base_delay = Sim_time.ms 10)
    ?(multiplier = 2.0) ?(max_delay = Sim_time.s 1) ?(jitter = false) () =
  if max_attempts < 1 then invalid_arg "Retry.policy: max_attempts < 1";
  if base_delay < 0 then invalid_arg "Retry.policy: negative base_delay";
  if multiplier < 1.0 then invalid_arg "Retry.policy: multiplier < 1";
  if max_delay < base_delay then invalid_arg "Retry.policy: max_delay < base_delay";
  { max_attempts; base_delay; multiplier; max_delay; jitter }

let default = policy ()

let raw_delay_before_attempt p ~attempt =
  if attempt <= 1 then 0
  else
    let raw =
      float_of_int p.base_delay *. (p.multiplier ** float_of_int (attempt - 2))
    in
    min p.max_delay (int_of_float raw)

let delay_before_attempt ?rng p ~attempt =
  let raw = raw_delay_before_attempt p ~attempt in
  match rng with
  | Some rng when p.jitter && raw > 0 ->
      (* Full jitter (AWS-style): uniform in [0, raw].  Concurrent
         retriers with split rng streams spread out instead of beating
         in lockstep. *)
      Rng.int_in rng 0 raw
  | Some _ | None -> raw

let backoff_schedule ?rng p =
  List.init (p.max_attempts - 1) (fun i ->
      delay_before_attempt ?rng p ~attempt:(i + 2))

(* ---- deadline budgets ---- *)

type budget = {
  limit : Sim_time.span;
  mutable spent : Sim_time.span;
  mutable exhausted : bool;
}

let budget limit =
  if limit < 0 then invalid_arg "Retry.budget: negative deadline";
  { limit; spent = 0; exhausted = false }

let budget_limit b = b.limit
let budget_spent b = b.spent
let budget_exhausted b = b.exhausted

let deadline_prefix = "deadline exceeded"

let is_deadline_error msg =
  String.length msg >= String.length deadline_prefix
  && String.sub msg 0 (String.length deadline_prefix) = deadline_prefix

let count ?registry ~op name ~help =
  Telemetry.Registry.Counter.inc
    (Telemetry.Registry.Counter.v ?registry ~help ~labels:[ ("op", op) ] name)

let count_retry ?registry ~op () =
  count ?registry ~op "retries_total"
    ~help:"operations retried after a transient failure"

let count_deadline ?registry ~op () =
  count ?registry ~op "deadline_exceeded_total"
    ~help:"retry sequences aborted by a blown total-deadline budget"

(* Charge [delay] against [budget]; [Error] (with the budget marked
   exhausted) when it does not fit. *)
let charge budget ~delay =
  match budget with
  | None -> Ok ()
  | Some b ->
      if b.spent + delay > b.limit then begin
        b.exhausted <- true;
        Error ()
      end
      else begin
        b.spent <- b.spent + delay;
        Ok ()
      end

let deadline_error ?registry ~op ~attempts b last_error =
  count_deadline ?registry ~op ();
  Printf.sprintf
    "%s: %s still failing after %d attempt(s) with %s spent of a %s budget: %s"
    deadline_prefix op attempts
    (Format.asprintf "%a" Sim_time.pp_span b.spent)
    (Format.asprintf "%a" Sim_time.pp_span b.limit)
    last_error

let give_up_error policy ~attempts e =
  if policy.max_attempts = 1 then e
  else Printf.sprintf "%s (gave up after %d attempts)" e attempts

(* Flight-recorder events.  [?ts_ns] is [None] on the synchronous path
   (no engine in reach) — the recorder falls back to the process-wide
   clock a recording rig installs.  Guarded at every call site. *)
let event ?ts_ns ?corr ~op ?level ~detail name =
  let corr =
    match corr with
    | Some c -> c
    | None -> Telemetry.Eventlog.corr_of_string ("retry:" ^ op)
  in
  Telemetry.Eventlog.emit ?level ?ts_ns ~corr ~detail ~stream:"retry" name

let run ?(policy = default) ?registry ?(op = "op") ?corr ?rng ?budget
    ?(on_retry = fun ~attempt:_ ~delay:_ _ -> ()) f =
  let rec attempt n =
    match f () with
    | Ok _ as ok -> ok
    | Error e when n >= policy.max_attempts ->
        if Telemetry.Eventlog.enabled () then
          event ?corr ~op ~level:Telemetry.Eventlog.Warn
            ~detail:(Printf.sprintf "%s after %d attempt(s)" op n)
            "gave_up";
        Error (give_up_error policy ~attempts:n e)
    | Error e -> (
        let delay = delay_before_attempt ?rng policy ~attempt:(n + 1) in
        match charge budget ~delay with
        | Error () ->
            if Telemetry.Eventlog.enabled () then
              event ?corr ~op ~level:Telemetry.Eventlog.Warn
                ~detail:(Printf.sprintf "%s after %d attempt(s)" op n)
                "deadline";
            Error (deadline_error ?registry ~op ~attempts:n (Option.get budget) e)
        | Ok () ->
            count_retry ?registry ~op ();
            if Telemetry.Eventlog.enabled () then
              event ?corr ~op ~level:Telemetry.Eventlog.Debug
                ~detail:(Printf.sprintf "%s attempt=%d delay=%dns" op n delay)
                "retry";
            on_retry ~attempt:n ~delay e;
            attempt (n + 1))
  in
  attempt 1

let run_async engine ?(policy = default) ?registry ?(op = "op") ?corr ?rng
    ?budget ?(on_retry = fun ~attempt:_ ~delay:_ _ -> ()) f ~on_done =
  let now () = Sim_time.to_ns (Engine.now engine) in
  let rec attempt n () =
    match f () with
    | Ok _ as ok -> on_done ok
    | Error e when n >= policy.max_attempts ->
        if Telemetry.Eventlog.enabled () then
          event ~ts_ns:(now ()) ?corr ~op ~level:Telemetry.Eventlog.Warn
            ~detail:(Printf.sprintf "%s after %d attempt(s)" op n)
            "gave_up";
        on_done (Error (give_up_error policy ~attempts:n e))
    | Error e -> (
        let delay = delay_before_attempt ?rng policy ~attempt:(n + 1) in
        match charge budget ~delay with
        | Error () ->
            if Telemetry.Eventlog.enabled () then
              event ~ts_ns:(now ()) ?corr ~op ~level:Telemetry.Eventlog.Warn
                ~detail:(Printf.sprintf "%s after %d attempt(s)" op n)
                "deadline";
            on_done
              (Error
                 (deadline_error ?registry ~op ~attempts:n (Option.get budget) e))
        | Ok () ->
            count_retry ?registry ~op ();
            if Telemetry.Eventlog.enabled () then
              event ~ts_ns:(now ()) ?corr ~op ~level:Telemetry.Eventlog.Debug
                ~detail:(Printf.sprintf "%s attempt=%d delay=%dns" op n delay)
                "retry";
            on_retry ~attempt:n ~delay e;
            Engine.schedule_after engine delay (attempt (n + 1)))
  in
  attempt 1 ()
