open Simnet

type policy = {
  max_attempts : int;
  base_delay : Sim_time.span;
  multiplier : float;
  max_delay : Sim_time.span;
}

let policy ?(max_attempts = 3) ?(base_delay = Sim_time.ms 10)
    ?(multiplier = 2.0) ?(max_delay = Sim_time.s 1) () =
  if max_attempts < 1 then invalid_arg "Retry.policy: max_attempts < 1";
  if base_delay < 0 then invalid_arg "Retry.policy: negative base_delay";
  if multiplier < 1.0 then invalid_arg "Retry.policy: multiplier < 1";
  if max_delay < base_delay then invalid_arg "Retry.policy: max_delay < base_delay";
  { max_attempts; base_delay; multiplier; max_delay }

let default = policy ()

let delay_before_attempt p ~attempt =
  if attempt <= 1 then 0
  else
    let raw =
      float_of_int p.base_delay *. (p.multiplier ** float_of_int (attempt - 2))
    in
    min p.max_delay (int_of_float raw)

let backoff_schedule p =
  List.init (p.max_attempts - 1) (fun i -> delay_before_attempt p ~attempt:(i + 2))

let count_retry ?registry ~op () =
  Telemetry.Registry.Counter.inc
    (Telemetry.Registry.Counter.v ?registry
       ~help:"operations retried after a transient failure"
       ~labels:[ ("op", op) ] "retries_total")

let run ?(policy = default) ?registry ?(op = "op")
    ?(on_retry = fun ~attempt:_ ~delay:_ _ -> ()) f =
  let rec attempt n =
    match f () with
    | Ok _ as ok -> ok
    | Error e when n >= policy.max_attempts ->
        Error
          (if policy.max_attempts = 1 then e
           else Printf.sprintf "%s (gave up after %d attempts)" e n)
    | Error e ->
        count_retry ?registry ~op ();
        on_retry ~attempt:n ~delay:(delay_before_attempt policy ~attempt:(n + 1)) e;
        attempt (n + 1)
  in
  attempt 1

let run_async engine ?(policy = default) ?registry ?(op = "op")
    ?(on_retry = fun ~attempt:_ ~delay:_ _ -> ()) f ~on_done =
  let rec attempt n () =
    match f () with
    | Ok _ as ok -> on_done ok
    | Error e when n >= policy.max_attempts ->
        on_done
          (Error
             (if policy.max_attempts = 1 then e
              else Printf.sprintf "%s (gave up after %d attempts)" e n))
    | Error e ->
        count_retry ?registry ~op ();
        let delay = delay_before_attempt policy ~attempt:(n + 1) in
        on_retry ~attempt:n ~delay e;
        Engine.schedule_after engine delay (attempt (n + 1))
  in
  attempt 1 ()
