(** Vendor-neutral structured configuration of a legacy switch — the
    common form the NOS dialects render to and parse from text. *)

type stanza = {
  port : int;  (** 0-based port index *)
  mode : Ethswitch.Port_config.mode;
  description : string option;
}

type t = { hostname : string; stanzas : stanza list }
(** [stanzas] is kept sorted by port; one stanza per port. *)

val make : hostname:string -> stanza list -> t
(** Sorts and validates (duplicate ports rejected).
    @raise Invalid_argument on duplicates. *)

val of_switch : hostname:string -> Ethswitch.Legacy_switch.t -> t
(** Snapshot a switch's current per-port configuration. *)

val apply : t -> Ethswitch.Legacy_switch.t -> unit
(** Push every stanza onto the switch.
    @raise Invalid_argument if a stanza names a port the switch lacks. *)

val stanza_for : t -> port:int -> stanza option

val equal : t -> t -> bool

val equal_modes : t -> t -> bool
(** Equality on what the device actually enforces — hostname, ports and
    their modes — ignoring descriptions, which not every NOS dialect
    round-trips.  This is the comparison migration recovery uses to
    decide whether a crashed transaction's commit landed. *)

val diff : t -> t -> string list
(** Human-readable per-port differences, ["port 3: access 1 -> access 103"];
    empty when {!equal}. *)
