open Ethswitch

type stanza = {
  port : int;
  mode : Port_config.mode;
  description : string option;
}

type t = { hostname : string; stanzas : stanza list }

let make ~hostname stanzas =
  let sorted = List.sort (fun a b -> Int.compare a.port b.port) stanzas in
  let rec check = function
    | a :: (b :: _ as rest) ->
        if a.port = b.port then
          invalid_arg (Printf.sprintf "Device_config.make: duplicate port %d" a.port);
        check rest
    | [ _ ] | [] -> ()
  in
  check sorted;
  { hostname; stanzas = sorted }

let of_switch ~hostname switch =
  let stanzas =
    List.init (Legacy_switch.port_count switch) (fun port ->
        { port; mode = Legacy_switch.port_mode switch ~port; description = None })
  in
  make ~hostname stanzas

let apply t switch =
  List.iter
    (fun stanza -> Legacy_switch.set_port_mode switch ~port:stanza.port stanza.mode)
    t.stanzas

let stanza_for t ~port = List.find_opt (fun s -> s.port = port) t.stanzas

let mode_string mode = Format.asprintf "%a" Port_config.pp mode

let equal a b =
  String.equal a.hostname b.hostname
  && List.length a.stanzas = List.length b.stanzas
  && List.for_all2
       (fun x y ->
         x.port = y.port && x.mode = y.mode && x.description = y.description)
       a.stanzas b.stanzas

let equal_modes a b =
  String.equal a.hostname b.hostname
  && List.length a.stanzas = List.length b.stanzas
  && List.for_all2
       (fun x y -> x.port = y.port && x.mode = y.mode)
       a.stanzas b.stanzas

let diff a b =
  let changes = ref [] in
  if not (String.equal a.hostname b.hostname) then
    changes := Printf.sprintf "hostname: %s -> %s" a.hostname b.hostname :: !changes;
  let ports =
    List.sort_uniq Int.compare
      (List.map (fun s -> s.port) a.stanzas @ List.map (fun s -> s.port) b.stanzas)
  in
  List.iter
    (fun port ->
      let before = stanza_for a ~port and after = stanza_for b ~port in
      match (before, after) with
      | Some x, Some y when x.mode <> y.mode ->
          changes :=
            Printf.sprintf "port %d: %s -> %s" port (mode_string x.mode)
              (mode_string y.mode)
            :: !changes
      | Some _, Some _ -> ()
      | Some x, None ->
          changes := Printf.sprintf "port %d: %s -> (removed)" port (mode_string x.mode) :: !changes
      | None, Some y ->
          changes := Printf.sprintf "port %d: (new) %s" port (mode_string y.mode) :: !changes
      | None, None -> ())
    ports;
  List.rev !changes
