(** An SNMP agent over a {!Mib}: community-authenticated get / set /
    getnext / walk, with SNMPv2-style error reporting. *)

type error =
  | Bad_community
  | No_such_object
  | Not_writable of string
  | End_of_mib
  | Timeout  (** the request datagram (or its reply) was lost *)

val pp_error : Format.formatter -> error -> unit

val is_transient : error -> bool
(** [true] only for {!Timeout} — the errors a retry can cure. *)

type t

val create : ?read_community:string -> ?write_community:string -> Mib.t -> t
(** Defaults: ["public"] / ["private"]. *)

val set_fault_plan : t -> Fault_plan.t option -> unit
(** Attach (or clear) a transient-failure plan.  A planned failure makes
    the operation return {!Timeout} before community or OID are even
    looked at — lost datagrams do not discriminate. *)

val get : t -> community:string -> Oid.t -> (Mib.value, error) result
val get_next : t -> community:string -> Oid.t -> (Oid.t * Mib.value, error) result
val set : t -> community:string -> Oid.t -> Mib.value -> (unit, error) result
val walk : t -> community:string -> Oid.t -> ((Oid.t * Mib.value) list, error) result

val requests : t -> int
(** Total operations served (for the manager-workflow experiment). *)

val timeouts : t -> int
(** Operations the fault plan timed out. *)
