(** Retry-with-exponential-backoff for management-plane operations.

    SNMP and NAPALM calls against real devices fail transiently all the
    time (TCP resets, busy control planes, dropped UDP); a migration tool
    that aborts a provisioning run on the first hiccup is unusable.  This
    combinator gives every management call site one shared, deterministic
    policy: try, back off exponentially, give up after [max_attempts]
    with an error that says so.

    Each retry increments the [retries_total{op="…"}] counter in the
    telemetry registry, so chaos runs can assert recovery actually
    exercised the retry path.

    Two refinements built for fleet migrations:

    - {e full jitter}: a policy with [jitter = true] draws every backoff
      uniformly from [\[0, raw_delay\]] using a caller-supplied seeded
      {!Simnet.Rng.t}, so N devices retrying against the same overloaded
      management network don't synchronise their retry storms.  Without
      an rng the raw (unjittered) delay is used, keeping old call sites
      byte-identical.
    - {e deadline budgets}: a {!budget} caps the {e total} backoff a
      whole multi-operation sequence may accumulate.  When the next
      delay would blow the budget the retry loop stops early with a
      [deadline exceeded] error ({!is_deadline_error}), distinct from
      the per-operation "gave up after N attempts" transient give-up,
      and increments [deadline_exceeded_total{op="…"}]. *)

type policy = {
  max_attempts : int;          (** total tries, >= 1 *)
  base_delay : Simnet.Sim_time.span;  (** delay before attempt 2 *)
  multiplier : float;          (** backoff growth factor, >= 1 *)
  max_delay : Simnet.Sim_time.span;   (** backoff cap *)
  jitter : bool;               (** full jitter: delay ~ U[0, raw] *)
}

val policy :
  ?max_attempts:int -> ?base_delay:Simnet.Sim_time.span ->
  ?multiplier:float -> ?max_delay:Simnet.Sim_time.span ->
  ?jitter:bool -> unit -> policy
(** Defaults: 3 attempts, 10 ms base, x2 growth, 1 s cap, no jitter.
    @raise Invalid_argument on nonsensical values. *)

val default : policy

val delay_before_attempt :
  ?rng:Simnet.Rng.t -> policy -> attempt:int -> Simnet.Sim_time.span
(** Backoff inserted before the given 1-based attempt (0 for the first).
    Without jitter the schedule is a pure function of the policy alone;
    with [jitter = true] and an [rng] each delay is drawn uniformly from
    [\[0, raw\]] — equal seeds give equal schedules, so jittered runs
    are still reproducible. *)

val backoff_schedule : ?rng:Simnet.Rng.t -> policy -> Simnet.Sim_time.span list
(** The full delay sequence, i.e. delays before attempts 2..max. *)

(** {2 Deadline budgets} *)

type budget
(** A mutable total-backoff allowance shared across every retried
    operation of one logical task (e.g. all of [configure_device]'s
    load/commit/verify/rollback retries). *)

val budget : Simnet.Sim_time.span -> budget
(** @raise Invalid_argument if the span is negative. *)

val budget_limit : budget -> Simnet.Sim_time.span
val budget_spent : budget -> Simnet.Sim_time.span
(** Backoff charged so far (the delays that were, or would have been,
    waited out). *)

val budget_exhausted : budget -> bool
(** True once a retry loop has refused to continue under this budget. *)

val is_deadline_error : string -> bool
(** Recognise the stable ["deadline exceeded"] prefix that budget
    exhaustion produces — the contract for telling a blown deadline
    apart from a transient give-up. *)

val run :
  ?policy:policy -> ?registry:Telemetry.Registry.t -> ?op:string ->
  ?corr:int -> ?rng:Simnet.Rng.t -> ?budget:budget ->
  ?on_retry:(attempt:int -> delay:Simnet.Sim_time.span -> string -> unit) ->
  (unit -> ('a, string) result) -> ('a, string) result
(** Synchronous retries: call [f] until it succeeds or [max_attempts] is
    reached.  Simulated management operations complete instantly, so the
    backoff is not waited out here — it is reported to [on_retry] (and
    is exactly what {!run_async} would wait).  The terminal error is
    annotated with the attempt count.  [op] labels the
    [retries_total] counter (default registry unless [registry]).

    [rng] feeds the policy's jitter; [budget] charges every backoff
    delay against a shared allowance and fails fast with a
    ["deadline exceeded…"] error when the next delay would exceed it.

    When a {!Telemetry.Eventlog} recorder is installed, every retry,
    deadline exhaustion and give-up also lands on the ["retry"] event
    stream; [corr] sets the correlation id (default: derived from
    [op]).  The synchronous path has no engine, so those events are
    stamped by the recorder's fallback clock. *)

val run_async :
  Simnet.Engine.t -> ?policy:policy -> ?registry:Telemetry.Registry.t ->
  ?op:string -> ?corr:int -> ?rng:Simnet.Rng.t -> ?budget:budget ->
  ?on_retry:(attempt:int -> delay:Simnet.Sim_time.span -> string -> unit) ->
  (unit -> ('a, string) result) -> on_done:(('a, string) result -> unit) ->
  unit
(** Like {!run} but the backoff delays elapse in sim time on [engine];
    [on_done] fires with the final result.  The {!Harmless.Failover}
    watchdog uses this so failed failover activations retry without
    blocking the event loop. *)
