(** Retry-with-exponential-backoff for management-plane operations.

    SNMP and NAPALM calls against real devices fail transiently all the
    time (TCP resets, busy control planes, dropped UDP); a migration tool
    that aborts a provisioning run on the first hiccup is unusable.  This
    combinator gives every management call site one shared, deterministic
    policy: try, back off exponentially, give up after [max_attempts]
    with an error that says so.

    Each retry increments the [retries_total{op="…"}] counter in the
    telemetry registry, so chaos runs can assert recovery actually
    exercised the retry path. *)

type policy = {
  max_attempts : int;          (** total tries, >= 1 *)
  base_delay : Simnet.Sim_time.span;  (** delay before attempt 2 *)
  multiplier : float;          (** backoff growth factor, >= 1 *)
  max_delay : Simnet.Sim_time.span;   (** backoff cap *)
}

val policy :
  ?max_attempts:int -> ?base_delay:Simnet.Sim_time.span ->
  ?multiplier:float -> ?max_delay:Simnet.Sim_time.span -> unit -> policy
(** Defaults: 3 attempts, 10 ms base, x2 growth, 1 s cap.
    @raise Invalid_argument on nonsensical values. *)

val default : policy

val delay_before_attempt : policy -> attempt:int -> Simnet.Sim_time.span
(** Backoff inserted before the given 1-based attempt (0 for the first).
    Pure — the schedule is a function of the policy alone, so runs are
    reproducible. *)

val backoff_schedule : policy -> Simnet.Sim_time.span list
(** The full delay sequence, i.e. delays before attempts 2..max. *)

val run :
  ?policy:policy -> ?registry:Telemetry.Registry.t -> ?op:string ->
  ?on_retry:(attempt:int -> delay:Simnet.Sim_time.span -> string -> unit) ->
  (unit -> ('a, string) result) -> ('a, string) result
(** Synchronous retries: call [f] until it succeeds or [max_attempts] is
    reached.  Simulated management operations complete instantly, so the
    backoff is not waited out here — it is reported to [on_retry] (and
    is exactly what {!run_async} would wait).  The terminal error is
    annotated with the attempt count.  [op] labels the
    [retries_total] counter (default registry unless [registry]). *)

val run_async :
  Simnet.Engine.t -> ?policy:policy -> ?registry:Telemetry.Registry.t ->
  ?op:string ->
  ?on_retry:(attempt:int -> delay:Simnet.Sim_time.span -> string -> unit) ->
  (unit -> ('a, string) result) -> on_done:(('a, string) result -> unit) ->
  unit
(** Like {!run} but the backoff delays elapse in sim time on [engine];
    [on_done] fires with the final result.  The {!Harmless.Failover}
    watchdog uses this so failed failover activations retry without
    blocking the event loop. *)
