(** A text write-ahead log for transactional device migrations.

    Every step of a staged cutover journals a record {e before} acting,
    so a manager crash at any step boundary leaves a prefix of the log
    from which a fresh manager can recover to a consistent state:
    either the transaction's effects are fully applied (a [committed]
    record exists) or they must be fully undone (anything less).  The
    log is plain text, one record per line, and round-trips through
    {!to_string}/{!of_string} so recovery can replay exactly what a
    crashed process left on disk.

    Record grammar (fields are whitespace-separated; the trailing
    free-text field may contain spaces):

    {v
    txn <id> <seq> begin <detail…>
    txn <id> <seq> stage-start <stage>
    txn <id> <seq> stage-done <stage>
    txn <id> <seq> note <detail…>
    txn <id> <seq> rollback <reason…>
    txn <id> <seq> rolled-back
    txn <id> <seq> committed
    v}

    Crash injection for tests: {!arm_crash} makes the [n]-th subsequent
    append raise {!Crashed} {e after} persisting the record — the
    tightest model of "the manager died right at a step boundary". *)

type entry =
  | Begin of string        (** transaction opened; detail encodes the plan *)
  | Stage_start of string  (** a named stage is about to run *)
  | Stage_done of string   (** that stage finished cleanly *)
  | Note of string         (** non-structural breadcrumb *)
  | Rollback of string     (** rollback decided, with the reason *)
  | Rolled_back            (** rollback finished; terminal *)
  | Committed              (** transaction finished; terminal *)

type record = { txn : string; seq : int; entry : entry }

type t

exception Crashed
(** Raised by {!append} when an armed crash fires. *)

val create : unit -> t

val append : t -> txn:string -> entry -> record
(** Journal one record, assigning the next sequence number.
    @raise Crashed when an armed crash point is reached (the record is
    already persisted — the "process" dies on the way back).
    @raise Invalid_argument if [txn] contains whitespace or is empty. *)

val arm_crash : t -> after:int -> unit
(** Make the [after]-th subsequent {!append} raise {!Crashed} after
    persisting its record; [after = 0] disarms.
    @raise Invalid_argument if [after < 0]. *)

val crash_armed : t -> bool

val records : t -> record list
(** Oldest first. *)

val length : t -> int

val records_of : t -> txn:string -> record list

val txns : t -> string list
(** Distinct transaction ids, in first-appearance order. *)

(** What a replay of the log says must happen to a transaction. *)
type resolution =
  | Fresh                  (** no records — nothing ever started *)
  | Committed_             (** a [committed] record exists; effects stay *)
  | Rolled_back_ of string (** rollback ran to completion *)
  | Needs_rollback of string
      (** the log stops mid-flight (or mid-rollback): undo, then journal
          [rolled-back].  The string says where it stopped. *)

val resolve : t -> txn:string -> resolution
(** Pure function of the record sequence; idempotent replay builds on
    this: resolving an already-terminal log changes nothing. *)

val pp_record : Format.formatter -> record -> unit
val pp_resolution : Format.formatter -> resolution -> unit

val to_string : t -> string
(** One record per line, parseable by {!of_string}. *)

val of_string : string -> (t, string) result
(** Parse a serialized log ([#] comments and blank lines ignored).
    Errors name the offending line.  Sequence numbers are validated to
    be strictly increasing. *)

val save : t -> path:string -> unit
(** @raise Sys_error on I/O failure. *)

val load : path:string -> (t, string) result
