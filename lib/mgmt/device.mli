(** A managed legacy switch: the {!Ethswitch.Legacy_switch} dataplane
    wrapped with a device identity, a live SNMP agent (MIB-2 system and
    interface groups plus a writable dot1qPvid column) and a NAPALM
    driver in the device's NOS dialect. *)

type vendor = Cisco_like | Arista_like | Juniper_like

type t

val create :
  switch:Ethswitch.Legacy_switch.t ->
  vendor:vendor ->
  ?model:string ->
  ?os_version:string ->
  ?serial:string ->
  unit ->
  t
(** Model/OS default to vendor-typical strings; the hostname is the
    switch's name. *)

val switch : t -> Ethswitch.Legacy_switch.t
val hostname : t -> string
val vendor : t -> vendor
val dialect : t -> (module Dialect.S)

val snmp : t -> Snmp.t
(** The device's SNMP agent.  Readable: system group, ifNumber, ifDescr/
    ifOperStatus/ifIn-OutUcastPkts per port, dot1qPvid per port.  Writable
    (community ["private"]): dot1qPvid — setting it moves an access port
    to that VLAN, the low-level knob HARMLESS uses. *)

val napalm : t -> Napalm.t
(** A connected NAPALM driver for this device. *)

val set_fault_plan : t -> Fault_plan.t option -> unit
(** Attach (or clear) a transient-failure plan covering the device's
    whole management surface: SNMP operations return [Timeout] and the
    NAPALM session operations ([load_candidate] / [commit] / [rollback])
    return a connection-timeout error whenever the plan says so.  SNMP
    reads inside NAPALM getters draw from the same sequence, so a flaky
    burst can also degrade fact discovery — exactly the mess a real
    flapping management connection produces. *)

val fault_plan : t -> Fault_plan.t option

val running_config : t -> Device_config.t
val running_config_text : t -> string
