(** A deterministic plan for transient management-plane failures.

    Every SNMP or NAPALM operation on a device carrying a plan consults
    it; the plan answers "this one times out" either because a scripted
    burst is pending ({!fail_next} — what the chaos [flaky n] action
    arms) or by a seeded coin flip ({!set_fail_probability}).  Equal
    seeds give equal failure sequences, so retry behaviour is fully
    reproducible. *)

type t

val create : ?seed:int -> ?fail_probability:float -> unit -> t
(** Defaults: seed 1, probability 0 (never fails until armed). *)

val fail_next : t -> int -> unit
(** Arm the next [n] operations to fail (accumulates). *)

val set_fail_probability : t -> float -> unit
(** Ongoing random failure rate in [0, 1]; 1.0 = management black-out. *)

val should_fail : t -> op:string -> bool
(** Consume one operation slot.  Forced failures are spent first, then
    the probability stream.  [op] is recorded in the log. *)

val ops : t -> int
(** Operations that consulted the plan. *)

val injected : t -> int
(** Failures injected so far. *)

val pending_forced : t -> int

val log : t -> (int * string) list
(** (operation index, operation name) of every injected failure, oldest
    first. *)
