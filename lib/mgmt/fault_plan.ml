open Simnet

type t = {
  rng : Rng.t;
  mutable fail_probability : float;
  mutable forced : int;
  mutable ops : int;
  mutable injected : int;
  mutable log : (int * string) list; (* (op index, op name), newest first *)
}

let create ?(seed = 1) ?(fail_probability = 0.0) () =
  if fail_probability < 0.0 || fail_probability > 1.0 then
    invalid_arg "Fault_plan.create: fail_probability outside [0, 1]";
  {
    rng = Rng.create seed;
    fail_probability;
    forced = 0;
    ops = 0;
    injected = 0;
    log = [];
  }

let fail_next t n =
  if n < 0 then invalid_arg "Fault_plan.fail_next: negative";
  t.forced <- t.forced + n

let set_fail_probability t p =
  if p < 0.0 || p > 1.0 then
    invalid_arg "Fault_plan.set_fail_probability: outside [0, 1]";
  t.fail_probability <- p

let should_fail t ~op =
  t.ops <- t.ops + 1;
  let fail =
    if t.forced > 0 then begin
      t.forced <- t.forced - 1;
      true
    end
    else
      t.fail_probability > 0.0 && Rng.float t.rng 1.0 < t.fail_probability
  in
  if fail then begin
    t.injected <- t.injected + 1;
    t.log <- (t.ops, op) :: t.log
  end;
  fail

let ops t = t.ops
let injected t = t.injected
let pending_forced t = t.forced
let log t = List.rev t.log
