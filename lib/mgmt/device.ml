open Ethswitch
open Simnet

type vendor = Cisco_like | Arista_like | Juniper_like

type t = {
  switch : Legacy_switch.t;
  vendor : vendor;
  model : string;
  os_version : string;
  serial : string;
  snmp : Snmp.t;
  mutable candidate : Device_config.t option;
  mutable last_committed : Device_config.t option;
  mutable fault : Fault_plan.t option;
}

let switch t = t.switch
let hostname t = Legacy_switch.name t.switch
let vendor t = t.vendor
let snmp t = t.snmp
let fault_plan t = t.fault

let set_fault_plan t plan =
  t.fault <- plan;
  (* One plan covers the whole management surface: SNMP datagrams and
     NAPALM session operations draw from the same failure sequence. *)
  Snmp.set_fault_plan t.snmp plan

let napalm_faulted t ~op =
  match t.fault with
  | Some plan when Fault_plan.should_fail plan ~op ->
      Some (Error (Printf.sprintf "%s: connection timed out" op))
  | Some _ | None -> None

let dialect t : (module Dialect.S) =
  match t.vendor with
  | Cisco_like -> (module Dialect.Ios)
  | Arista_like -> (module Dialect.Eos)
  | Juniper_like -> (module Dialect.Junos)

let vendor_string = function
  | Cisco_like -> "CiscoLike"
  | Arista_like -> "AristaLike"
  | Juniper_like -> "JuniperLike"

let running_config t = Device_config.of_switch ~hostname:(hostname t) t.switch

let running_config_text t =
  let (module D) = dialect t in
  D.render (running_config t)

let engine t = Node.engine (Legacy_switch.node t.switch)

let uptime_s t = Sim_time.to_ns (Engine.now (engine t)) / 1_000_000_000

(* ---- SNMP agent wiring ---- *)

let register_mib t mib =
  let sw = t.switch in
  let ports = Legacy_switch.port_count sw in
  let (module D) = dialect t in
  Mib.register_scalar mib Oid.Std.sys_descr
    ~get:(fun () ->
      Mib.Str
        (Printf.sprintf "%s %s running %s" (vendor_string t.vendor) t.model
           t.os_version))
    ();
  Mib.register_scalar mib Oid.Std.sys_name
    ~get:(fun () -> Mib.Str (hostname t))
    ();
  Mib.register_scalar mib Oid.Std.sys_up_time
    ~get:(fun () -> Mib.Int (uptime_s t * 100 (* TimeTicks *)))
    ();
  Mib.register_scalar mib Oid.Std.if_number ~get:(fun () -> Mib.Int ports) ();
  (* The interface table: one provider covering the whole subtree. *)
  let if_bindings () =
    let counters = Node.counters (Legacy_switch.node sw) in
    List.concat
      (List.init ports (fun p ->
           let idx = p + 1 in
           [
             (Oid.Std.if_descr idx, Mib.Str (D.interface_name p));
             ( Oid.Std.if_oper_status idx,
               Mib.Int
                 (match Legacy_switch.port_mode sw ~port:p with
                 | Port_config.Disabled -> 2
                 | Port_config.Access _ | Port_config.Trunk _ -> 1) );
             ( Oid.Std.if_in_ucast idx,
               Mib.Int (Stats.Counter.get counters (Printf.sprintf "rx.%d" p)) );
             ( Oid.Std.if_out_ucast idx,
               Mib.Int (Stats.Counter.get counters (Printf.sprintf "tx.%d" p)) );
           ]))
  in
  Mib.register_subtree mib (Oid.Std.if_table) ~bindings:if_bindings ();
  (* dot1qPvid: readable and writable per port. *)
  let pvid_prefix = Oid.Std.vlan_port_vlan 0 |> Oid.to_list |> fun arcs ->
    Oid.of_list (List.filteri (fun i _ -> i < List.length arcs - 1) arcs)
  in
  let pvid_bindings () =
    List.filter_map
      (fun p ->
        match Legacy_switch.port_mode sw ~port:p with
        | Port_config.Access vid -> Some (Oid.Std.vlan_port_vlan (p + 1), Mib.Int vid)
        | Port_config.Trunk { native = Some v; _ } ->
            Some (Oid.Std.vlan_port_vlan (p + 1), Mib.Int v)
        | Port_config.Trunk { native = None; _ } | Port_config.Disabled -> None)
      (List.init ports Fun.id)
  in
  let pvid_set oid value =
    match (List.rev (Oid.to_list oid), value) with
    | idx :: _, Mib.Int vid when idx >= 1 && idx <= ports ->
        let port = idx - 1 in
        if not (Netpkt.Vlan.valid_vid vid) then Error "wrongValue"
        else begin
          match Legacy_switch.port_mode sw ~port with
          | Port_config.Access _ ->
              Legacy_switch.set_port_mode sw ~port (Port_config.Access vid);
              Ok ()
          | Port_config.Trunk { allowed; _ } ->
              Legacy_switch.set_port_mode sw ~port
                (Port_config.Trunk { native = Some vid; allowed });
              Ok ()
          | Port_config.Disabled -> Error "inconsistentValue"
        end
    | _, Mib.Int _ -> Error "noSuchInstance"
    | _, Mib.Str _ -> Error "wrongType"
  in
  Mib.register_subtree mib pvid_prefix ~bindings:pvid_bindings ~set:pvid_set ()

(* ---- NAPALM driver ---- *)

let napalm t =
  let (module D) = dialect t in
  let community = "public" in
  let snmp_int oid =
    match Snmp.get t.snmp ~community oid with
    | Ok (Mib.Int n) -> n
    | Ok (Mib.Str _) | Error _ -> 0
  in
  let snmp_str oid =
    match Snmp.get t.snmp ~community oid with
    | Ok (Mib.Str s) -> s
    | Ok (Mib.Int _) | Error _ -> ""
  in
  let get_facts () =
    {
      Napalm.vendor = vendor_string t.vendor;
      model = t.model;
      os_version = t.os_version;
      serial = t.serial;
      hostname = snmp_str Oid.Std.sys_name;
      uptime_s = snmp_int Oid.Std.sys_up_time / 100;
      interface_count = snmp_int Oid.Std.if_number;
    }
  in
  let get_interfaces () =
    let ports = snmp_int Oid.Std.if_number in
    List.init ports (fun p ->
        let idx = p + 1 in
        {
          Napalm.index = p;
          if_name = snmp_str (Oid.Std.if_descr idx);
          oper_up = snmp_int (Oid.Std.if_oper_status idx) = 1;
          in_packets = snmp_int (Oid.Std.if_in_ucast idx);
          out_packets = snmp_int (Oid.Std.if_out_ucast idx);
        })
  in
  let get_vlans () = Legacy_switch.vlans_in_use t.switch in
  let get_config () = running_config_text t in
  let load_candidate text =
    match napalm_faulted t ~op:"napalm.load_candidate" with
    | Some e -> e
    | None -> (
        match D.parse text with
        | Ok config ->
            t.candidate <- Some config;
            Ok ()
        | Error msg -> Error msg)
  in
  let compare_config () =
    match t.candidate with
    | None -> []
    | Some candidate -> Device_config.diff (running_config t) candidate
  in
  let commit () =
    match napalm_faulted t ~op:"napalm.commit" with
    | Some e -> e
    | None -> (
        match t.candidate with
        | None -> Error "no candidate configuration loaded"
        | Some candidate -> (
            let previous = running_config t in
            match Device_config.apply candidate t.switch with
            | () ->
                t.last_committed <- Some previous;
                t.candidate <- None;
                Ok ()
            | exception Invalid_argument msg -> Error msg))
  in
  let discard () = t.candidate <- None in
  let rollback () =
    match napalm_faulted t ~op:"napalm.rollback" with
    | Some e -> e
    | None -> (
        match t.last_committed with
        | None -> Error "nothing to roll back to"
        | Some previous ->
            Device_config.apply previous t.switch;
            t.last_committed <- None;
            Ok ())
  in
  {
    Napalm.driver_name = D.name;
    get_facts;
    get_interfaces;
    get_vlans;
    get_config;
    load_candidate;
    compare_config;
    commit;
    discard;
    rollback;
  }

let create ~switch ~vendor ?model ?os_version ?serial () =
  let model =
    match model with
    | Some m -> m
    | None -> (
        match vendor with
        | Cisco_like -> "Catalyst 2960-ish"
        | Arista_like -> "7048-ish"
        | Juniper_like -> "EX2200-ish")
  in
  let os_version =
    match os_version with
    | Some v -> v
    | None -> (
        match vendor with
        | Cisco_like -> "15.0(2)SE"
        | Arista_like -> "4.20.1F"
        | Juniper_like -> "12.3R12")
  in
  let serial =
    match serial with
    | Some s -> s
    | None -> Printf.sprintf "SIM%08d" (Hashtbl.hash (Legacy_switch.name switch) mod 100000000)
  in
  let mib = Mib.create () in
  let t =
    {
      switch;
      vendor;
      model;
      os_version;
      serial;
      snmp = Snmp.create mib;
      candidate = None;
      last_committed = None;
      fault = None;
    }
  in
  register_mib t mib;
  t
