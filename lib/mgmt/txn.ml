type entry =
  | Begin of string
  | Stage_start of string
  | Stage_done of string
  | Note of string
  | Rollback of string
  | Rolled_back
  | Committed

type record = { txn : string; seq : int; entry : entry }

type t = {
  mutable records : record list; (* newest first *)
  mutable next_seq : int;
  mutable crash_in : int; (* 0 = disarmed *)
}

exception Crashed

let create () = { records = []; next_seq = 1; crash_in = 0 }

let has_space s = String.exists (fun c -> c = ' ' || c = '\t' || c = '\n') s

let validate_token what s =
  if s = "" || has_space s then
    invalid_arg (Printf.sprintf "Txn: %s must be a non-empty token: %S" what s)

let validate_detail what s =
  if String.contains s '\n' then
    invalid_arg (Printf.sprintf "Txn: %s must be a single line" what)

let validate_entry = function
  | Begin d | Note d | Rollback d -> validate_detail "detail" d
  | Stage_start s | Stage_done s -> validate_token "stage" s
  | Rolled_back | Committed -> ()

let entry_kind = function
  | Begin _ -> "begin"
  | Stage_start _ -> "stage-start"
  | Stage_done _ -> "stage-done"
  | Note _ -> "note"
  | Rollback _ -> "rollback"
  | Rolled_back -> "rolled-back"
  | Committed -> "committed"

let entry_detail = function
  | Begin d | Note d | Rollback d -> d
  | Stage_start s | Stage_done s -> s
  | Rolled_back | Committed -> ""

let append t ~txn entry =
  validate_token "txn id" txn;
  validate_entry entry;
  let record = { txn; seq = t.next_seq; entry } in
  t.next_seq <- t.next_seq + 1;
  t.records <- record :: t.records;
  (* The event lands after the record is persisted and before any armed
     crash fires — mirroring what a real WAL writer would have managed
     to log, so a post-mortem of a crash sweep shows the record that
     made it to disk. *)
  if Telemetry.Eventlog.enabled () then
    Telemetry.Eventlog.emit
      ~corr:(Telemetry.Eventlog.corr_of_string txn)
      ~detail:
        (match entry_detail entry with "" -> txn | d -> txn ^ " " ^ d)
      ~stream:"txn" (entry_kind entry);
  if t.crash_in > 0 then begin
    t.crash_in <- t.crash_in - 1;
    if t.crash_in = 0 then raise Crashed
  end;
  record

let arm_crash t ~after =
  if after < 0 then invalid_arg "Txn.arm_crash: negative count";
  t.crash_in <- after

let crash_armed t = t.crash_in > 0
let records t = List.rev t.records
let length t = List.length t.records
let records_of t ~txn = List.filter (fun r -> r.txn = txn) (records t)

let txns t =
  List.fold_left
    (fun acc r -> if List.mem r.txn acc then acc else acc @ [ r.txn ])
    [] (records t)

type resolution =
  | Fresh
  | Committed_
  | Rolled_back_ of string
  | Needs_rollback of string

let resolve t ~txn =
  let rs = records_of t ~txn in
  if rs = [] then Fresh
  else
    let reason =
      List.fold_left
        (fun acc r -> match r.entry with Rollback why -> Some why | _ -> acc)
        None rs
    in
    let terminal =
      List.fold_left
        (fun acc r ->
          match r.entry with
          | Committed -> Some `Committed
          | Rolled_back -> Some `Rolled_back
          | _ -> acc)
        None rs
    in
    match terminal with
    | Some `Committed -> Committed_
    | Some `Rolled_back ->
        Rolled_back_ (Option.value reason ~default:"rolled back")
    | None -> (
        match reason with
        | Some why -> Needs_rollback (Printf.sprintf "crash during rollback (%s)" why)
        | None -> (
            (* Mid-flight: name the furthest point the log reached. *)
            let where =
              List.fold_left
                (fun acc r ->
                  match r.entry with
                  | Begin _ -> "after begin"
                  | Stage_start s -> Printf.sprintf "during stage %s" s
                  | Stage_done s -> Printf.sprintf "after stage %s" s
                  | Note _ | Rollback _ | Rolled_back | Committed -> acc)
                "before begin" rs
            in
            Needs_rollback (Printf.sprintf "crash %s" where)))

let entry_to_string = function
  | Begin d -> "begin " ^ d
  | Stage_start s -> "stage-start " ^ s
  | Stage_done s -> "stage-done " ^ s
  | Note d -> "note " ^ d
  | Rollback d -> "rollback " ^ d
  | Rolled_back -> "rolled-back"
  | Committed -> "committed"

let record_to_string r =
  Printf.sprintf "txn %s %d %s" r.txn r.seq (entry_to_string r.entry)

let pp_record ppf r = Format.pp_print_string ppf (record_to_string r)

let pp_resolution ppf = function
  | Fresh -> Format.pp_print_string ppf "fresh"
  | Committed_ -> Format.pp_print_string ppf "committed"
  | Rolled_back_ why -> Format.fprintf ppf "rolled back (%s)" why
  | Needs_rollback why -> Format.fprintf ppf "needs rollback (%s)" why

let to_string t =
  String.concat "" (List.map (fun r -> record_to_string r ^ "\n") (records t))

let parse_line line =
  (* "txn <id> <seq> <kind> [rest…]" *)
  let line = String.trim line in
  let split_word s =
    match String.index_opt s ' ' with
    | None -> (s, "")
    | Some i ->
        ( String.sub s 0 i,
          String.trim (String.sub s (i + 1) (String.length s - i - 1)) )
  in
  let kw, rest = split_word line in
  if kw <> "txn" then Error "expected 'txn'"
  else
    let txn, rest = split_word rest in
    let seq_s, rest = split_word rest in
    let kind, detail = split_word rest in
    if txn = "" then Error "missing transaction id"
    else
      match int_of_string_opt seq_s with
      | None -> Error (Printf.sprintf "bad sequence number %S" seq_s)
      | Some seq -> (
          let need_token what =
            if detail = "" || has_space detail then
              Error (Printf.sprintf "%s must be a single token" what)
            else Ok detail
          in
          let no_detail entry =
            if detail = "" then Ok entry
            else Error (Printf.sprintf "unexpected detail after %S" kind)
          in
          let entry =
            match kind with
            | "begin" -> Ok (Begin detail)
            | "stage-start" -> Result.map (fun s -> Stage_start s) (need_token "stage")
            | "stage-done" -> Result.map (fun s -> Stage_done s) (need_token "stage")
            | "note" -> Ok (Note detail)
            | "rollback" -> Ok (Rollback detail)
            | "rolled-back" -> no_detail Rolled_back
            | "committed" -> no_detail Committed
            | k -> Error (Printf.sprintf "unknown record kind %S" k)
          in
          Result.map (fun entry -> { txn; seq; entry }) entry)

let of_string text =
  let lines = String.split_on_char '\n' text in
  let rec go acc last_seq n = function
    | [] ->
        let records = List.rev acc in
        Ok
          {
            records = acc;
            next_seq = (match records with [] -> 1 | _ -> last_seq + 1);
            crash_in = 0;
          }
    | line :: rest ->
        let trimmed = String.trim line in
        if trimmed = "" || trimmed.[0] = '#' then go acc last_seq (n + 1) rest
        else (
          match parse_line trimmed with
          | Error e -> Error (Printf.sprintf "line %d: %s" n e)
          | Ok r ->
              if r.seq <= last_seq then
                Error
                  (Printf.sprintf "line %d: sequence %d not increasing" n r.seq)
              else go (r :: acc) r.seq (n + 1) rest)
  in
  go [] 0 1 lines

let save t ~path =
  Out_channel.with_open_text path (fun oc ->
      Out_channel.output_string oc (to_string t))

let load ~path =
  match In_channel.with_open_text path In_channel.input_all with
  | text -> of_string text
  | exception Sys_error msg -> Error msg
