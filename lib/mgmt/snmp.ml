type error =
  | Bad_community
  | No_such_object
  | Not_writable of string
  | End_of_mib
  | Timeout

let pp_error fmt = function
  | Bad_community -> Format.pp_print_string fmt "bad community"
  | No_such_object -> Format.pp_print_string fmt "noSuchObject"
  | Not_writable reason -> Format.fprintf fmt "notWritable (%s)" reason
  | End_of_mib -> Format.pp_print_string fmt "endOfMibView"
  | Timeout -> Format.pp_print_string fmt "timeout"

let is_transient = function
  | Timeout -> true
  | Bad_community | No_such_object | Not_writable _ | End_of_mib -> false

type t = {
  mib : Mib.t;
  read_community : string;
  write_community : string;
  mutable requests : int;
  mutable timeouts : int;
  mutable fault : Fault_plan.t option;
}

let create ?(read_community = "public") ?(write_community = "private") mib =
  {
    mib;
    read_community;
    write_community;
    requests = 0;
    timeouts = 0;
    fault = None;
  }

let set_fault_plan t plan = t.fault <- plan

let readable t community =
  String.equal community t.read_community || String.equal community t.write_community

(* A lost datagram times out before the agent sees community or OID. *)
let timed_out t ~op =
  t.requests <- t.requests + 1;
  match t.fault with
  | Some plan when Fault_plan.should_fail plan ~op ->
      t.timeouts <- t.timeouts + 1;
      true
  | Some _ | None -> false

let get t ~community oid =
  if timed_out t ~op:"snmp.get" then Error Timeout
  else if not (readable t community) then Error Bad_community
  else match Mib.get t.mib oid with Some v -> Ok v | None -> Error No_such_object

let get_next t ~community oid =
  if timed_out t ~op:"snmp.get_next" then Error Timeout
  else if not (readable t community) then Error Bad_community
  else match Mib.next t.mib oid with Some b -> Ok b | None -> Error End_of_mib

let set t ~community oid value =
  if timed_out t ~op:"snmp.set" then Error Timeout
  else if not (String.equal community t.write_community) then Error Bad_community
  else
    match Mib.set t.mib oid value with
    | Ok () -> Ok ()
    | Error reason -> Error (Not_writable reason)

let walk t ~community prefix =
  if timed_out t ~op:"snmp.walk" then Error Timeout
  else if not (readable t community) then Error Bad_community
  else Ok (Mib.walk t.mib prefix)

let requests t = t.requests
let timeouts t = t.timeouts
