(* Minor-word deltas around instrumented sections.

   The disabled path is the contract: [mark]/[record] with no recorder
   installed are one ref read each and allocate zero words (pinned by
   test).  [Gc.minor_words] is an unboxed external in native code, and
   it is only called once a recorder is known to be installed, so the
   bytecode float boxing also stays off the disabled path. *)

type samples = { mutable data : int array; mutable len : int }

let samples_create () = { data = Array.make 16 0; len = 0 }

let samples_push s v =
  if s.len = Array.length s.data then begin
    let bigger = Array.make (2 * s.len) 0 in
    Array.blit s.data 0 bigger 0 s.len;
    s.data <- bigger
  end;
  s.data.(s.len) <- v;
  s.len <- s.len + 1

type t = {
  tbl : (string, samples) Hashtbl.t;
  mutable order : string list;  (* reversed first-appearance *)
  mutable total : int;
}

let create () = { tbl = Hashtbl.create 16; order = []; total = 0 }

let current : t option ref = ref None

let install t = current := Some t
let uninstall () = current := None
let enabled () = Option.is_some !current

let words () = int_of_float (Gc.minor_words ())

let mark () = match !current with None -> 0 | Some _ -> words ()

let record site m =
  match !current with
  | None -> ()
  | Some r ->
      if m > 0 then begin
        let delta = words () - m in
        let s =
          match Hashtbl.find_opt r.tbl site with
          | Some s -> s
          | None ->
              let s = samples_create () in
              Hashtbl.replace r.tbl site s;
              r.order <- site :: r.order;
              s
        in
        samples_push s (max 0 delta);
        r.total <- r.total + 1
      end

let with_recorder f =
  let r = create () in
  let saved = !current in
  install r;
  Fun.protect
    ~finally:(fun () -> current := saved)
    (fun () -> (f (), r))

let sites t = List.rev t.order

let samples t site =
  match Hashtbl.find_opt t.tbl site with
  | Some s -> Array.sub s.data 0 s.len
  | None -> [||]

let count t = t.total

let clear t =
  Hashtbl.reset t.tbl;
  t.order <- [];
  t.total <- 0
