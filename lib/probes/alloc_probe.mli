(** Scoped minor-heap allocation probes for hot paths.

    The one primitive the memory-telemetry plane needs below the
    telemetry library in the dependency graph: bracket a section with
    {!mark}/{!record} and, when a recorder is installed, the section's
    minor-heap allocation (in words) is folded into a per-site
    histogram.  With no recorder installed — the default — both calls
    are a single ref read and allocate {e nothing}, so instrumenting a
    fast path costs two loads per call (the no-alloc tests pin this at
    exactly zero minor words).

    The counter is [Gc.minor_words]: cumulative words ever allocated on
    the minor heap, independent of when collections happen, so deltas
    are deterministic for deterministic code.  Boxed allocations that
    exceed the young size limit go straight to the major heap and are
    not seen — packet-sized buffers (max 1518 B ≈ 190 words) all land
    in the minor heap, so the paths this instrument targets are fully
    covered.

    Nesting is fine: an inner probe's own bookkeeping (one array push)
    is charged to the enclosing probe — a constant, documented tax.
    The recorder is process-global, single-domain, like the trace
    sink. *)

type t
(** A recorder: per-site sample sets, keyed by the probe name. *)

val create : unit -> t

val install : t -> unit
(** Make [t] the process recorder (replacing any other). *)

val uninstall : unit -> unit
(** Remove the process recorder; probes go back to costing two ref
    reads and zero allocation. *)

val enabled : unit -> bool

val mark : unit -> int
(** Current cumulative minor words — the open bracket.  Returns [0]
    when no recorder is installed (the real counter is never 0 in a
    running program, so [0] doubles as "was disabled"). *)

val record : string -> int -> unit
(** [record site m] closes the bracket opened by [mark]: folds
    [minor_words () - m] into [site]'s samples.  A no-op when no
    recorder is installed or when [m = 0] (the probe was opened while
    disabled — guards against an install racing a section). *)

val with_recorder : (unit -> 'a) -> 'a * t
(** Run [f] with a fresh recorder installed, restoring the previous
    state afterwards (also on exceptions). *)

(** {2 Reading a recorder} *)

val sites : t -> string list
(** Probe sites in first-appearance order. *)

val samples : t -> string -> int array
(** The site's recorded word deltas, oldest first; [[||]] for an
    unknown site. *)

val count : t -> int
(** Total samples recorded across all sites. *)

val clear : t -> unit
