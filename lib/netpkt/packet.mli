(** Full Ethernet frames: MAC header, a stack of 802.1Q tags, and a typed
    network-layer payload.  This is the unit every dataplane in the
    repository forwards. *)

type l3 =
  | Ip of Ipv4.t
  | Arp of Arp.t
  | Raw of Ethertype.t * string
      (** Payload of a frame type the library does not model. *)

type t = {
  dst : Mac_addr.t;
  src : Mac_addr.t;
  vlans : Vlan.t list;  (** outermost tag first *)
  l3 : l3;
}

val make : ?vlans:Vlan.t list -> dst:Mac_addr.t -> src:Mac_addr.t -> l3 -> t

val ethertype : t -> Ethertype.t
(** The {e inner} EtherType, i.e. the type of [l3], regardless of tags. *)

val push_vlan : Vlan.t -> t -> t
(** Prepend a tag (becomes the outermost). *)

val pop_vlan : t -> (Vlan.t * t) option
(** Remove the outermost tag; [None] if untagged. *)

val outer_vid : t -> Vlan.vid option
(** VLAN id of the outermost tag, if any. *)

val set_outer_vid : Vlan.vid -> t -> t
(** Rewrite the outermost tag's VLAN id.
    @raise Invalid_argument if the frame is untagged. *)

val payload_size : t -> int
(** Size of everything after the MAC/VLAN headers. *)

val size : t -> int
(** Logical frame size: headers + payload, without padding or FCS. *)

val wire_size : t -> int
(** On-the-wire size used for serialization-delay computations: logical
    size padded to the 60-byte Ethernet minimum, plus the 4-byte FCS. *)

val encode : t -> string
val decode : string -> t
(** @raise Wire.Truncated / @raise Wire.Malformed on bad input. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

(** Flattened header-field view used by flow matching and caches. *)
module Fields : sig
  type packet := t

  type t = {
    eth_dst : Mac_addr.t;
    eth_src : Mac_addr.t;
    eth_type : int;              (** inner EtherType *)
    vlan_vid : int option;       (** outermost tag *)
    vlan_pcp : int option;
    ip_src : Ipv4_addr.t option;
    ip_dst : Ipv4_addr.t option;
    ip_proto : int option;
    ip_tos : int option;
    l4_src : int option;
    l4_dst : int option;
  }

  val of_packet : packet -> t
  val equal : t -> t -> bool
  val hash : t -> int
  val pp : Format.formatter -> t -> unit
end

(** Canonical 5-tuple flow identity used by the sampled-flow telemetry
    plane (and, later, by the zero-alloc fast path's flow cache). *)
module Flow_key : sig
  type t = {
    fk_ety : int;          (** inner EtherType *)
    fk_proto : int;        (** IP protocol number; [-1] for non-IP *)
    fk_src : Ipv4_addr.t;  (** [Ipv4_addr.any] for non-IP *)
    fk_dst : Ipv4_addr.t;
    fk_sport : int;        (** 0 when the L4 protocol has no ports *)
    fk_dport : int;
  }

  val equal : t -> t -> bool

  val compare : t -> t -> int
  (** Total order: ethertype, protocol, src, dst, sport, dport. *)

  val hash : ?seed:int -> t -> int
  (** Deterministic seeded hash (explicit splitmix-style mixing, not
      [Hashtbl.hash]): equal keys always hash equal, across runs and
      OCaml versions.  Non-negative.  Default [seed] 0. *)

  val to_string : t -> string
  (** e.g. ["udp 10.0.0.1:4242>10.0.1.9:80"], ["icmp 10.0.0.1>10.0.0.2"],
      ["ety:0x0806"].  Injective per protocol class — usable as a
      deterministic table key. *)

  val pp : Format.formatter -> t -> unit
end

val flow_key : t -> Flow_key.t
(** The frame's 5-tuple identity; VLAN tags are deliberately excluded so
    a flow keeps one identity across the HARMLESS translator's tag
    push/pop. *)

val flow_hash : ?seed:int -> t -> int
(** [Flow_key.hash ~seed (flow_key t)], computed without materializing
    the key record (allocation-free on IP frames). *)

(** Convenience constructors used by tests, examples and workloads. *)
val udp :
  ?vlans:Vlan.t list ->
  dst:Mac_addr.t -> src:Mac_addr.t ->
  ip_src:Ipv4_addr.t -> ip_dst:Ipv4_addr.t ->
  src_port:int -> dst_port:int ->
  string -> t

val tcp :
  ?vlans:Vlan.t list ->
  ?flags:Tcp.flags ->
  dst:Mac_addr.t -> src:Mac_addr.t ->
  ip_src:Ipv4_addr.t -> ip_dst:Ipv4_addr.t ->
  src_port:int -> dst_port:int ->
  string -> t

val icmp_echo :
  dst:Mac_addr.t -> src:Mac_addr.t ->
  ip_src:Ipv4_addr.t -> ip_dst:Ipv4_addr.t ->
  id:int -> seq:int -> t

val arp_request :
  src_mac:Mac_addr.t -> src_ip:Ipv4_addr.t -> target_ip:Ipv4_addr.t -> t

val pad_to : int -> t -> t
(** [pad_to n pkt] grows an UDP/TCP/Raw payload so that {!wire_size}
    reaches at least [n] bytes (used by workload generators to hit exact
    frame sizes).  Frames already at least [n] bytes are unchanged. *)
