type l3 =
  | Ip of Ipv4.t
  | Arp of Arp.t
  | Raw of Ethertype.t * string

type t = {
  dst : Mac_addr.t;
  src : Mac_addr.t;
  vlans : Vlan.t list;
  l3 : l3;
}

let make ?(vlans = []) ~dst ~src l3 = { dst; src; vlans; l3 }

let ethertype t =
  match t.l3 with
  | Ip _ -> Ethertype.Ipv4
  | Arp _ -> Ethertype.Arp
  | Raw (ty, _) -> ty

let push_vlan tag t = { t with vlans = tag :: t.vlans }

let pop_vlan t =
  match t.vlans with
  | [] -> None
  | tag :: rest -> Some (tag, { t with vlans = rest })

let outer_vid t =
  match t.vlans with [] -> None | tag :: _ -> Some tag.Vlan.vid

let set_outer_vid vid t =
  match t.vlans with
  | [] -> invalid_arg "Packet.set_outer_vid: untagged frame"
  | tag :: rest -> { t with vlans = { tag with Vlan.vid } :: rest }

let payload_size t =
  match t.l3 with
  | Ip ip -> Ipv4.size ip
  | Arp _ -> Arp.size
  | Raw (_, bytes) -> String.length bytes

let size t = 14 + (4 * List.length t.vlans) + payload_size t

let wire_size t = max 60 (size t) + 4

let l3_bytes = function
  | Ip ip -> Ipv4.encode ip
  | Arp arp -> Arp.encode arp
  | Raw (_, bytes) -> bytes

let encode t =
  let m = Alloc_probe.mark () in
  let w = Wire.W.create () in
  Wire.W.bytes w (Mac_addr.to_bytes t.dst);
  Wire.W.bytes w (Mac_addr.to_bytes t.src);
  List.iter
    (fun tag ->
      Wire.W.u16 w (Ethertype.to_int Ethertype.Vlan);
      Wire.W.u16 w (Vlan.tci tag))
    t.vlans;
  Wire.W.u16 w (Ethertype.to_int (ethertype t));
  Wire.W.bytes w (l3_bytes t.l3);
  let out = Wire.W.contents w in
  Alloc_probe.record "wire.encode" m;
  out

let decode s =
  let m = Alloc_probe.mark () in
  let ctx = "ethernet" in
  let r = Wire.R.create s in
  let dst = Mac_addr.of_bytes (Wire.R.bytes ~ctx r 6) in
  let src = Mac_addr.of_bytes (Wire.R.bytes ~ctx r 6) in
  let rec read_tags acc =
    let ety = Ethertype.of_int (Wire.R.u16 ~ctx r) in
    match ety with
    | Ethertype.Vlan | Ethertype.Qinq ->
        let tag = Vlan.of_tci (Wire.R.u16 ~ctx r) in
        read_tags (tag :: acc)
    | Ethertype.Ipv4 | Ethertype.Arp | Ethertype.Unknown _ -> (List.rev acc, ety)
  in
  let vlans, inner = read_tags [] in
  let body = Wire.R.rest r in
  let l3 =
    match inner with
    | Ethertype.Ipv4 -> Ip (Ipv4.decode body)
    | Ethertype.Arp -> Arp (Arp.decode body)
    | (Ethertype.Unknown _ | Ethertype.Vlan | Ethertype.Qinq) as ty -> Raw (ty, body)
  in
  let pkt = { dst; src; vlans; l3 } in
  Alloc_probe.record "wire.decode" m;
  pkt

let equal_l3 a b =
  match (a, b) with
  | Ip x, Ip y -> Ipv4.equal x y
  | Arp x, Arp y -> Arp.equal x y
  | Raw (tx, x), Raw (ty, y) -> Ethertype.equal tx ty && String.equal x y
  | (Ip _ | Arp _ | Raw _), _ -> false

let equal a b =
  Mac_addr.equal a.dst b.dst
  && Mac_addr.equal a.src b.src
  && List.length a.vlans = List.length b.vlans
  && List.for_all2 Vlan.equal a.vlans b.vlans
  && equal_l3 a.l3 b.l3

let pp_l3 fmt = function
  | Ip ip -> Ipv4.pp fmt ip
  | Arp arp -> Arp.pp fmt arp
  | Raw (ty, bytes) -> Format.fprintf fmt "%a len %d" Ethertype.pp ty (String.length bytes)

let pp fmt t =
  Format.fprintf fmt "%a > %a%a %a" Mac_addr.pp t.src Mac_addr.pp t.dst
    (fun fmt tags ->
      List.iter (fun tag -> Format.fprintf fmt " [%a]" Vlan.pp tag) tags)
    t.vlans pp_l3 t.l3

module Fields = struct
  type packet = t

  type t = {
    eth_dst : Mac_addr.t;
    eth_src : Mac_addr.t;
    eth_type : int;
    vlan_vid : int option;
    vlan_pcp : int option;
    ip_src : Ipv4_addr.t option;
    ip_dst : Ipv4_addr.t option;
    ip_proto : int option;
    ip_tos : int option;
    l4_src : int option;
    l4_dst : int option;
  }

  let of_packet (p : packet) =
    let m = Alloc_probe.mark () in
    let vlan_vid, vlan_pcp =
      match p.vlans with
      | [] -> (None, None)
      | tag :: _ -> (Some tag.Vlan.vid, Some tag.Vlan.pcp)
    in
    let ip_src, ip_dst, ip_proto, ip_tos, l4_src, l4_dst =
      match p.l3 with
      | Ip ip ->
          let l4s, l4d =
            match ip.Ipv4.payload with
            | Ipv4.Tcp seg -> (Some seg.Tcp.src_port, Some seg.Tcp.dst_port)
            | Ipv4.Udp dgram -> (Some dgram.Udp.src_port, Some dgram.Udp.dst_port)
            | Ipv4.Icmp _ | Ipv4.Raw _ -> (None, None)
          in
          ( Some ip.Ipv4.src,
            Some ip.Ipv4.dst,
            Some (Ipv4.protocol_number ip.Ipv4.payload),
            Some ip.Ipv4.tos,
            l4s,
            l4d )
      | Arp _ | Raw _ -> (None, None, None, None, None, None)
    in
    let fields =
      {
        eth_dst = p.dst;
        eth_src = p.src;
        eth_type = Ethertype.to_int (ethertype p);
        vlan_vid;
        vlan_pcp;
        ip_src;
        ip_dst;
        ip_proto;
        ip_tos;
        l4_src;
        l4_dst;
      }
    in
    Alloc_probe.record "wire.fields" m;
    fields

  let equal a b =
    Mac_addr.equal a.eth_dst b.eth_dst
    && Mac_addr.equal a.eth_src b.eth_src
    && a.eth_type = b.eth_type && a.vlan_vid = b.vlan_vid
    && a.vlan_pcp = b.vlan_pcp
    && Option.equal Ipv4_addr.equal a.ip_src b.ip_src
    && Option.equal Ipv4_addr.equal a.ip_dst b.ip_dst
    && a.ip_proto = b.ip_proto && a.ip_tos = b.ip_tos && a.l4_src = b.l4_src
    && a.l4_dst = b.l4_dst

  let hash = Hashtbl.hash

  let pp_opt pp_v fmt = function
    | None -> Format.pp_print_string fmt "*"
    | Some v -> pp_v fmt v

  let pp fmt t =
    Format.fprintf fmt
      "{dst=%a src=%a ety=0x%04x vid=%a ip=%a>%a proto=%a l4=%a>%a}"
      Mac_addr.pp t.eth_dst Mac_addr.pp t.eth_src t.eth_type
      (pp_opt Format.pp_print_int) t.vlan_vid
      (pp_opt Ipv4_addr.pp) t.ip_src (pp_opt Ipv4_addr.pp) t.ip_dst
      (pp_opt Format.pp_print_int) t.ip_proto
      (pp_opt Format.pp_print_int) t.l4_src
      (pp_opt Format.pp_print_int) t.l4_dst
end

(* Splitmix64-style finalizer over native 63-bit ints: deterministic
   across runs (unlike [Hashtbl.hash]) and allocation-free (no boxed
   int64), so flow hashing can sit on the packet hot path.  Kept local —
   netpkt is below telemetry in the dependency order. *)
let mix63 ~seed x =
  let x = x lxor seed in
  let x = x lxor (x lsr 30) in
  let x = x * 0x2545F4914F6CDD1D in
  let x = x lxor (x lsr 27) in
  let x = x * 0x1B03738712FAD5C9 in
  let x = x lxor (x lsr 31) in
  x land max_int

let hash_flow_parts ~seed ~ety ~proto ~src ~dst ~sport ~dport =
  let a = Int32.to_int (Ipv4_addr.to_int32 src) land 0xFFFFFFFF in
  let b = Int32.to_int (Ipv4_addr.to_int32 dst) land 0xFFFFFFFF in
  let c =
    ((ety land 0xFFFF) lsl 41)
    lor ((proto + 1) lsl 32)
    lor ((sport land 0xFFFF) lsl 16)
    lor (dport land 0xFFFF)
  in
  mix63 ~seed:(mix63 ~seed:(mix63 ~seed a) b) c

module Flow_key = struct
  type t = {
    fk_ety : int;
    fk_proto : int;
    fk_src : Ipv4_addr.t;
    fk_dst : Ipv4_addr.t;
    fk_sport : int;
    fk_dport : int;
  }

  let equal a b =
    a.fk_ety = b.fk_ety && a.fk_proto = b.fk_proto
    && Ipv4_addr.equal a.fk_src b.fk_src
    && Ipv4_addr.equal a.fk_dst b.fk_dst
    && a.fk_sport = b.fk_sport && a.fk_dport = b.fk_dport

  let compare a b =
    let c = Int.compare a.fk_ety b.fk_ety in
    if c <> 0 then c
    else
      let c = Int.compare a.fk_proto b.fk_proto in
      if c <> 0 then c
      else
        let c = Ipv4_addr.compare a.fk_src b.fk_src in
        if c <> 0 then c
        else
          let c = Ipv4_addr.compare a.fk_dst b.fk_dst in
          if c <> 0 then c
          else
            let c = Int.compare a.fk_sport b.fk_sport in
            if c <> 0 then c else Int.compare a.fk_dport b.fk_dport

  let hash ?(seed = 0) t =
    hash_flow_parts ~seed ~ety:t.fk_ety ~proto:t.fk_proto ~src:t.fk_src
      ~dst:t.fk_dst ~sport:t.fk_sport ~dport:t.fk_dport

  let to_string t =
    if t.fk_proto < 0 then Printf.sprintf "ety:0x%04x" t.fk_ety
    else
      let src = Ipv4_addr.to_string t.fk_src
      and dst = Ipv4_addr.to_string t.fk_dst in
      match t.fk_proto with
      | 6 -> Printf.sprintf "tcp %s:%d>%s:%d" src t.fk_sport dst t.fk_dport
      | 17 -> Printf.sprintf "udp %s:%d>%s:%d" src t.fk_sport dst t.fk_dport
      | 1 -> Printf.sprintf "icmp %s>%s" src dst
      | p -> Printf.sprintf "ip(%d) %s>%s" p src dst

  let pp fmt t = Format.pp_print_string fmt (to_string t)
end

let flow_key t =
  match t.l3 with
  | Ip ip ->
      let sport, dport =
        match ip.Ipv4.payload with
        | Ipv4.Tcp seg -> (seg.Tcp.src_port, seg.Tcp.dst_port)
        | Ipv4.Udp dgram -> (dgram.Udp.src_port, dgram.Udp.dst_port)
        | Ipv4.Icmp _ | Ipv4.Raw _ -> (0, 0)
      in
      {
        Flow_key.fk_ety = Ethertype.to_int Ethertype.Ipv4;
        fk_proto = Ipv4.protocol_number ip.Ipv4.payload;
        fk_src = ip.Ipv4.src;
        fk_dst = ip.Ipv4.dst;
        fk_sport = sport;
        fk_dport = dport;
      }
  | Arp _ | Raw _ ->
      {
        Flow_key.fk_ety = Ethertype.to_int (ethertype t);
        fk_proto = -1;
        fk_src = Ipv4_addr.any;
        fk_dst = Ipv4_addr.any;
        fk_sport = 0;
        fk_dport = 0;
      }

(* Same value as [Flow_key.hash (flow_key t)] but computed without
   materializing the record — the form the zero-alloc fast path wants. *)
let flow_hash ?(seed = 0) t =
  match t.l3 with
  | Ip ip ->
      let sport, dport =
        match ip.Ipv4.payload with
        | Ipv4.Tcp seg -> (seg.Tcp.src_port, seg.Tcp.dst_port)
        | Ipv4.Udp dgram -> (dgram.Udp.src_port, dgram.Udp.dst_port)
        | Ipv4.Icmp _ | Ipv4.Raw _ -> (0, 0)
      in
      hash_flow_parts ~seed
        ~ety:(Ethertype.to_int Ethertype.Ipv4)
        ~proto:(Ipv4.protocol_number ip.Ipv4.payload)
        ~src:ip.Ipv4.src ~dst:ip.Ipv4.dst ~sport ~dport
  | Arp _ | Raw _ ->
      hash_flow_parts ~seed
        ~ety:(Ethertype.to_int (ethertype t))
        ~proto:(-1) ~src:Ipv4_addr.any ~dst:Ipv4_addr.any ~sport:0 ~dport:0

let udp ?vlans ~dst ~src ~ip_src ~ip_dst ~src_port ~dst_port payload =
  let dgram = Udp.make ~src_port ~dst_port payload in
  make ?vlans ~dst ~src (Ip (Ipv4.make ~src:ip_src ~dst:ip_dst (Ipv4.Udp dgram)))

let tcp ?vlans ?flags ~dst ~src ~ip_src ~ip_dst ~src_port ~dst_port payload =
  let seg = Tcp.make ~src_port ~dst_port ?flags payload in
  make ?vlans ~dst ~src (Ip (Ipv4.make ~src:ip_src ~dst:ip_dst (Ipv4.Tcp seg)))

let icmp_echo ~dst ~src ~ip_src ~ip_dst ~id ~seq =
  let msg = Icmp.echo_request ~id ~seq () in
  make ~dst ~src (Ip (Ipv4.make ~src:ip_src ~dst:ip_dst (Ipv4.Icmp msg)))

let arp_request ~src_mac ~src_ip ~target_ip =
  make ~dst:Mac_addr.broadcast ~src:src_mac
    (Arp (Arp.request ~sha:src_mac ~spa:src_ip ~tpa:target_ip))

let pad_to n t =
  (* The frame body must reach [n - 4] bytes (FCS excluded) for the wire
     size to reach [n]; the 60-byte floor cannot help once n >= 64. *)
  let deficit = n - 4 - size t in
  if deficit <= 0 then t
  else
    let grow payload = payload ^ String.make deficit '\x00' in
    match t.l3 with
    | Ip ip -> (
        match ip.Ipv4.payload with
        | Ipv4.Udp dgram ->
            { t with l3 = Ip { ip with Ipv4.payload = Ipv4.Udp { dgram with Udp.payload = grow dgram.Udp.payload } } }
        | Ipv4.Tcp seg ->
            { t with l3 = Ip { ip with Ipv4.payload = Ipv4.Tcp { seg with Tcp.payload = grow seg.Tcp.payload } } }
        | Ipv4.Icmp _ | Ipv4.Raw _ -> t)
    | Raw (ty, bytes) -> { t with l3 = Raw (ty, grow bytes) }
    | Arp _ -> t
