open Netpkt
module P = Openflow.Pipeline
module FE = Openflow.Flow_entry
module FT = Openflow.Flow_table
module Rng = Simnet.Rng
module Fault = Simnet.Fault
module Port_map = Harmless.Port_map
module Translator = Harmless.Translator
module Chaos = Harmless.Chaos
module SS = Softswitch.Soft_switch

type violation = { context : string; detail : string }

let pp_violation fmt v = Format.fprintf fmt "[%s] %s" v.context v.detail

(* ---- the pure hairpin check ---- *)

let pipeline_of_rules map =
  let pipe = P.create ~num_tables:1 () in
  List.iter
    (fun (fm : Openflow.Of_message.flow_mod) ->
      FT.add (P.table pipe fm.table_id) ~now_ns:0
        (FE.make ~priority:fm.priority ~cookie:fm.cookie ~match_:fm.match_
           fm.instructions))
    (Translator.rules map);
  pipe

let gen_port_map rng =
  let n = 1 + Rng.int rng 6 in
  let rec draw acc k =
    if k = 0 then acc
    else
      let p = Rng.int rng 24 in
      if List.mem p acc then draw acc k else draw (p :: acc) (k - 1)
  in
  let access_ports = draw [] n in
  let base_vid = 2 + Rng.int rng 1000 in
  Port_map.make ~base_vid ~access_ports ()

let rec strip_tags pkt =
  match Packet.pop_vlan pkt with
  | None -> pkt
  | Some (_, inner) -> strip_tags inner

let render_outputs outputs =
  Format.asprintf "%s"
    (String.concat ";"
       (List.map
          (function
            | P.Port (p, o) -> Format.asprintf "port:%d:%a" p Packet.pp o
            | P.In_port o -> Format.asprintf "in_port:%a" Packet.pp o
            | P.Flood o -> Format.asprintf "flood:%a" Packet.pp o
            | P.All_ports o -> Format.asprintf "all:%a" Packet.pp o
            | P.Controller (n, o) ->
                Format.asprintf "controller:%d:%a" n Packet.pp o)
          outputs))

let check_hairpin ~seed =
  let rng = Rng.create seed in
  let map = gen_port_map rng in
  let vids = Port_map.vids map in
  let bases =
    List.init 3 (fun _ -> strip_tags (Differential.gen_packet rng))
  in
  let unknown_vid =
    List.find (fun v -> not (List.mem v vids)) [ 4094; 2; 3; 1500 ]
  in
  let violations = ref [] in
  let add context detail =
    if List.length !violations < 32 then
      violations := { context; detail } :: !violations
  in
  let impls =
    ("oracle", fun p -> Oracle.dataplane p)
    :: List.map
         (fun (name, mk) -> (name, mk))
         Softswitch.Backends.all
  in
  List.iter
    (fun (impl, mk) ->
      let dp = mk (pipeline_of_rules map) in
      let process ~in_port pkt =
        fst (dp.Softswitch.Dataplane.process ~now_ns:1000 ~in_port pkt)
      in
      let ctx what i = Format.sprintf "%s/%s/logical-%d" impl what i in
      List.iteri
        (fun case base ->
          ignore case;
          (* Per managed port: trunk->patch pops the tag, patch->trunk
             pushes it back, and composing the two is the identity. *)
          List.iteri
            (fun i _access ->
              let v =
                match Port_map.vid_of_logical map i with
                | Some v -> v
                | None -> assert false
              in
              let patch = Translator.patch_port_of_logical i in
              (* trunk -> patch: tag in, bare frame out the patch port. *)
              let tagged = Packet.push_vlan (Vlan.make v) base in
              let r = process ~in_port:Translator.trunk_port tagged in
              (match r.P.outputs with
              | [ P.Port (p, out) ]
                when p = patch && Packet.equal out base && not r.P.table_miss
                ->
                  ()
              | outs ->
                  add (ctx "from-trunk" i)
                    (Format.asprintf "vid %d: expected bare frame on port %d, got %s%s"
                       v patch (render_outputs outs)
                       (if r.P.table_miss then " (miss)" else "")));
              (* patch -> trunk: bare frame in, exactly one fresh tag with
                 the port's VLAN out the trunk. *)
              let r = process ~in_port:patch base in
              let trunk_frame =
                match r.P.outputs with
                | [ P.Port (p, out) ] when p = Translator.trunk_port -> (
                    match Packet.pop_vlan out with
                    | Some (tag, rest)
                      when tag.Vlan.vid = v && Packet.equal rest base ->
                        Some out
                    | _ ->
                        add (ctx "to-trunk" i)
                          (Format.asprintf
                             "expected exactly one tag vid %d, got %a" v
                             Packet.pp out);
                        None)
                | outs ->
                    add (ctx "to-trunk" i)
                      (Format.asprintf "expected one output on trunk, got %s"
                         (render_outputs outs));
                    None
              in
              (* hairpin symmetry: what went up the trunk comes back down
                 to the same patch port, bit-identical to the original. *)
              match trunk_frame with
              | None -> ()
              | Some frame -> (
                  let r = process ~in_port:Translator.trunk_port frame in
                  match r.P.outputs with
                  | [ P.Port (p, out) ] when p = patch && Packet.equal out base
                    ->
                      ()
                  | outs ->
                      add (ctx "hairpin" i)
                        (Format.asprintf
                           "round trip broke: expected original on port %d, got %s"
                           patch (render_outputs outs))))
            (Port_map.access_ports map);
          (* Unknown VLANs and untagged trunk frames must miss and drop. *)
          let check_drop what pkt =
            let r = process ~in_port:Translator.trunk_port pkt in
            if r.P.outputs <> [] || not r.P.table_miss then
              add (Format.sprintf "%s/%s" impl what)
                (Format.asprintf "expected miss+drop, got %s%s"
                   (render_outputs r.P.outputs)
                   (if r.P.table_miss then " (miss)" else " (matched)"))
          in
          check_drop "unknown-vid"
            (Packet.push_vlan (Vlan.make unknown_vid) base);
          check_drop "untagged-trunk" base)
        bases)
    impls;
  List.rev !violations

(* ---- the end-to-end check under faults ---- *)

type report = {
  seed : int;
  trunk_frames : int;
  patch_frames : int;
  host_frames : int;
  packet_ins : int;
  faults_injected : int;
  violations : violation list;
  chaos : Chaos.report;
}

let run ?(num_hosts = 3) ?(fault_count = 5)
    ?(duration = Simnet.Sim_time.ms 30) ~seed () =
  let engine = Simnet.Engine.create () in
  match Chaos.build engine ~num_hosts ~seed () with
  | Error e -> Error ("chaos rig: " ^ e)
  | Ok rig -> (
      let violations = ref [] in
      let add context detail =
        if List.length !violations < 32 then
          violations := { context; detail } :: !violations
      in
      let map = Chaos.port_map rig in
      let vids = Port_map.vids map in
      let ss1 = Chaos.ss1 rig in
      let packet_ins = ref 0 in
      (* SS_1's whole point is that the controller never learns the VLAN
         trick exists: no packet-in, from either switch, may carry a tag. *)
      let observe which sw =
        SS.observe_messages_to_controller sw (function
          | Openflow.Of_message.Packet_in { packet; _ } ->
              incr packet_ins;
              if packet.Packet.vlans <> [] then
                add
                  (which ^ "/packet-in")
                  (Format.asprintf "controller saw a VLAN header: %a"
                     Packet.pp packet)
          | _ -> ())
      in
      observe "ss1" ss1;
      observe "ss2" (Chaos.ss2 rig);
      let capture = Simnet.Capture.create () in
      Simnet.Capture.attach capture (SS.node ss1);
      Array.iter
        (fun h -> Simnet.Capture.attach capture (Simnet.Host.node h))
        (Chaos.hosts rig);
      let host_names =
        Array.to_list
          (Array.map (fun h -> Simnet.Host.name h) (Chaos.hosts rig))
      in
      let rng = Rng.create (seed lxor 0x5eed) in
      let injector = Chaos.injector rig in
      let script =
        if fault_count = 0 then ""
        else
          Fault.to_script
            (Fault.random_events rng ~targets:(Fault.targets injector)
               ~n:fault_count ~horizon:duration)
      in
      match Chaos.run rig ~script ~duration () with
      | Error e -> Error ("chaos run: " ^ e)
      | Ok chaos ->
          let trunk_frames = ref 0
          and patch_frames = ref 0
          and host_frames = ref 0 in
          let ss1_name = SS.name ss1 in
          List.iter
            (fun (e : Simnet.Capture.entry) ->
              let pkt = e.packet in
              let where =
                Format.sprintf "%s:%s:%d" e.node
                  (match e.dir with Simnet.Node.Rx -> "rx" | Tx -> "tx")
                  e.port
              in
              if e.node = ss1_name then
                if e.port <= 1 then begin
                  (* NICs 0 and 1 are the primary and backup trunks: every
                     frame carries exactly one tag, with a managed VLAN. *)
                  incr trunk_frames;
                  match pkt.Packet.vlans with
                  | [ tag ] when List.mem tag.Vlan.vid vids -> ()
                  | [ tag ] ->
                      add "trunk"
                        (Format.sprintf "%s: unmanaged vid %d on the trunk"
                           where tag.Vlan.vid)
                  | [] ->
                      add "trunk"
                        (Format.asprintf "%s: untagged frame on the trunk: %a"
                           where Packet.pp pkt)
                  | _ ->
                      add "trunk"
                        (Format.asprintf "%s: stacked tags on the trunk: %a"
                           where Packet.pp pkt)
                end
                else begin
                  (* Patch ports towards SS_2: the tag must be gone. *)
                  incr patch_frames;
                  if pkt.Packet.vlans <> [] then
                    add "patch"
                      (Format.asprintf "%s: tagged frame on a patch port: %a"
                         where Packet.pp pkt)
                end
              else if List.mem e.node host_names then begin
                incr host_frames;
                if pkt.Packet.vlans <> [] then
                  add "host"
                    (Format.asprintf "%s: host saw a tagged frame: %a" where
                       Packet.pp pkt)
              end)
            (Simnet.Capture.entries capture);
          Ok
            {
              seed;
              trunk_frames = !trunk_frames;
              patch_frames = !patch_frames;
              host_frames = !host_frames;
              packet_ins = !packet_ins;
              faults_injected = Fault.faults_injected injector;
              violations = List.rev !violations;
              chaos;
            })

let pp_report fmt r =
  Format.fprintf fmt
    "@[<v>transparency seed %d: %d trunk / %d patch / %d host frames, %d \
     packet-ins, %d faults, %d violations%a@]"
    r.seed r.trunk_frames r.patch_frames r.host_frames r.packet_ins
    r.faults_injected
    (List.length r.violations)
    (fun fmt vs ->
      List.iter (fun v -> Format.fprintf fmt "@,  %a" pp_violation v) vs)
    r.violations
