(** Lowercase hex <-> raw bytes, the encoding repro files and pinned
    regression cases use for packets and OpenFlow frames. *)

val encode : string -> string
(** ["\x00\xab"] -> ["00ab"]. *)

val decode : string -> (string, string) result
(** Inverse of {!encode}; accepts upper- or lowercase digits. *)

val decode_exn : string -> string
(** @raise Invalid_argument on malformed hex — for hand-written test
    vectors where failure is a bug in the vector itself. *)
