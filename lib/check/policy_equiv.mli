(** Differential equivalence testing of the policy compiler.

    For each {e spec} — a scenario with a policy term, a hand-written
    message sequence that is supposed to implement the same behaviour,
    and value pools to fuzz from — a {e case} (a timed packet sequence)
    is replayed through three implementations:

    - the {b interpreter} ({!Policy.Interp}): the denotational ground
      truth, no flow table involved;
    - the {b compiled table} ({!Policy.Compile.messages}) installed on an
      oracle-driven pipeline {e and} on every backend in
      {!Softswitch.Backends.all};
    - the {b hand-written rules} installed on an oracle-driven pipeline
      with however many tables the app composition needs.

    Every packet's output set is compared under a normalized rendering:
    outputs only (sorted, deduplicated, [IN_PORT] resolved to the ingress
    port) — table-miss flags and matched-rule lists are excluded because
    the three implementations legitimately differ there (compiled tables
    are total; the hand-written DMZ deny is an explicit rule while the
    policy's is absence).  The first disagreement is a {e divergence};
    divergences shrink greedily (packet steps removed while the
    divergence persists) and serialize to a text repro file, exactly like
    {!Differential}.

    Specs are plain records, so a test can also build a custom one — e.g.
    pairing a policy with a deliberately broken rule set to prove the
    harness catches and shrinks real compiler bugs. *)

type spec = {
  spec_name : string;
  ports : int;  (** packets arrive on ports [0 .. ports-1] *)
  hand_tables : int;  (** tables the hand-written rule set needs *)
  hand_messages : Openflow.Of_message.t list;
  policy : Policy.Syntax.t;
  mac_pool : Netpkt.Mac_addr.t list;
  ip_pool : Netpkt.Ipv4_addr.t list;
  l4_pool : int list;
}

type step = { now_ns : int; in_port : int; pkt : Netpkt.Packet.t }
type case = { spec : spec; steps : step list }

type divergence = {
  impl : string;
      (** the implementation that disagreed with the interpreter:
          ["hand:oracle"], ["compiled:oracle"] or ["compiled:<backend>"] *)
  step_index : int;
  expected : string;  (** the interpreter's normalized output set *)
  actual : string;
  case : case;  (** shrunk by the time it is reported *)
}

(** {1 Built-in specs} *)

val specs : unit -> spec list
(** Fresh instances (the parental handle is mutable) of the five standard
    scenarios: each SS_2 app standalone — [dmz], [lb], [parental],
    [ratelimit] (two hand-written tables: meters then L2) — plus the full
    [gateway] composition from {!Sdnctl.Gateway}. *)

val find_spec : string -> spec option

(** {1 Running} *)

val normalize :
  in_port:int -> Openflow.Pipeline.output list -> string
(** The comparison form: sorted deduplicated outputs with packet bytes,
    [IN_PORT] rendered as the concrete ingress port. *)

val gen_case : spec -> seed:int -> case
(** Draw a seeded packet sequence from the spec's pools: ARP, ICMP, UDP
    and TCP (occasionally VLAN-tagged) between pooled addresses, with
    advancing timestamps that occasionally jump far enough to refill
    meter buckets. *)

val run_case : case -> divergence option
(** Replay on fresh implementations; [None] = every implementation agreed
    with the interpreter on every packet. *)

val shrink : divergence -> divergence
(** Greedy packet-step removal while any divergence persists; fixpoint. *)

val check_case : spec -> seed:int -> divergence option
(** Generate (from the seed alone), run, and shrink. *)

type report = {
  cases : int;  (** cases run *)
  packets : int;  (** packet comparisons performed *)
  divergences : divergence list;  (** shrunk, at most 5 reported *)
}

val run :
  ?on_divergence:(divergence -> unit) ->
  spec:spec -> seed:int -> cases:int -> unit -> report
(** Run [cases] seeded cases ([seed], [seed+1], ...) against one spec. *)

(** {1 Repro files} *)

val to_string : case -> string
(** The repro text format:
    {v
    # comment
    spec gateway
    packet <now_ns> <in_port> <ethernet frame hex>
    v} *)

val of_string : string -> (case, string) result
(** Resolves the spec by name via {!find_spec}; a custom spec's case
    therefore does not round-trip. *)

val save : path:string -> ?comment:string -> case -> unit

val load : path:string -> (divergence option, string) result
(** Read a repro file and {!run_case} it: [Ok None] means the repro no
    longer diverges, [Ok (Some d)] reproduces it, [Error] is a parse
    failure. *)

val pp_divergence : Format.formatter -> divergence -> unit
