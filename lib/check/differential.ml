open Netpkt
module P = Openflow.Pipeline
module FE = Openflow.Flow_entry
module FT = Openflow.Flow_table
module A = Openflow.Of_action
module M = Openflow.Of_match
module Msg_ = Openflow.Of_message
module Rng = Simnet.Rng

type step =
  | Msg of { now_ns : int; msg : Msg_.t }
  | Expire of { now_ns : int }
  | Packet of { now_ns : int; in_port : int; pkt : Packet.t }

type scenario = { tables : int; ports : int; steps : step list }

type divergence = {
  backend : string;
  step_index : int;
  expected : string;
  actual : string;
  scenario : scenario;
}

(* ---- result normalization ---- *)

let render_packet pkt = Hex.encode (Packet.encode pkt)

let render_output = function
  | P.Port (p, pkt) -> Printf.sprintf "port:%d:%s" p (render_packet pkt)
  | P.In_port pkt -> "inport:" ^ render_packet pkt
  | P.Flood pkt -> "flood:" ^ render_packet pkt
  | P.All_ports pkt -> "all:" ^ render_packet pkt
  | P.Controller (n, pkt) -> Printf.sprintf "ctrl:%d:%s" n (render_packet pkt)

let render_instruction = function
  | FE.Apply_actions actions ->
      Format.asprintf "apply[%a]" A.pp_list actions
  | FE.Write_actions actions ->
      Format.asprintf "write[%a]" A.pp_list actions
  | FE.Clear_actions -> "clear"
  | FE.Goto_table n -> Printf.sprintf "goto:%d" n
  | FE.Meter id -> Printf.sprintf "meter:%d" id

let render_entry (e : FE.t) =
  (* Counters deliberately excluded: they are per-pipeline state, not
     forwarding behaviour. *)
  Format.asprintf "p%d{%a}%s" e.FE.priority M.pp e.FE.match_
    (String.concat ";" (List.map render_instruction e.FE.instructions))

let render_result (r : P.result) =
  Printf.sprintf "outputs=[%s] miss=%b matched=[%s]"
    (String.concat " " (List.map render_output r.P.outputs))
    r.P.table_miss
    (String.concat " " (List.map render_entry r.P.matched))

(* ---- replaying control-plane messages, soft-switch style ---- *)

let apply_msg pipeline ~now_ns (msg : Msg_.t) =
  match msg with
  | Msg_.Flow_mod fm ->
      if fm.Msg_.table_id < 0 || fm.Msg_.table_id >= P.num_tables pipeline
      then ()
      else begin
        let table = P.table pipeline fm.Msg_.table_id in
        match fm.Msg_.command with
        | Msg_.Add -> (
            let entry =
              FE.make ~priority:fm.Msg_.priority ~cookie:fm.Msg_.cookie
                ?idle_timeout_s:fm.Msg_.idle_timeout_s
                ?hard_timeout_s:fm.Msg_.hard_timeout_s
                ~match_:fm.Msg_.match_ fm.Msg_.instructions
            in
            try FT.add table ~now_ns entry with FT.Table_full -> ())
        | Msg_.Modify { strict } ->
            ignore
              (FT.modify table ~strict fm.Msg_.match_
                 ~priority:fm.Msg_.priority fm.Msg_.instructions)
        | Msg_.Delete { strict } ->
            ignore
              (FT.delete table ~strict ?out_port:fm.Msg_.out_port
                 fm.Msg_.match_ ~priority:fm.Msg_.priority)
      end
  | Msg_.Group_mod gm -> (
      let groups = P.groups pipeline in
      match gm with
      | Msg_.Add_group { id; gtype; buckets } -> (
          try Openflow.Group_table.add groups ~id gtype buckets
          with Invalid_argument _ -> ())
      | Msg_.Modify_group { id; gtype; buckets } -> (
          try Openflow.Group_table.modify groups ~id gtype buckets
          with Not_found | Invalid_argument _ -> ())
      | Msg_.Delete_group { id } -> Openflow.Group_table.remove groups ~id)
  | Msg_.Meter_mod mm -> (
      let meters = P.meters pipeline in
      match mm with
      | Msg_.Add_meter { id; band } -> (
          try Openflow.Meter_table.add meters ~id band
          with Invalid_argument _ -> ())
      | Msg_.Modify_meter { id; band } -> (
          try Openflow.Meter_table.modify meters ~id band
          with Not_found -> ())
      | Msg_.Delete_meter { id } -> Openflow.Meter_table.remove meters ~id)
  | _ -> ()

let apply_message = apply_msg

let expire_all pipeline ~now_ns =
  for i = 0 to P.num_tables pipeline - 1 do
    ignore (FT.expire (P.table pipeline i) ~now_ns)
  done

(* ---- running a scenario across every implementation ---- *)

type runner = {
  rname : string;
  pipeline : P.t;
  process : now_ns:int -> in_port:int -> Packet.t -> P.result;
}

let make_runners sc =
  let oracle =
    let pipeline = P.create ~num_tables:sc.tables () in
    { rname = "oracle"; pipeline; process = Oracle.execute pipeline }
  in
  let backends =
    List.map
      (fun (name, create) ->
        let pipeline = P.create ~num_tables:sc.tables () in
        let dp = create pipeline in
        {
          rname = name;
          pipeline;
          process =
            (fun ~now_ns ~in_port pkt ->
              fst (dp.Softswitch.Dataplane.process ~now_ns ~in_port pkt));
        })
      Softswitch.Backends.all
  in
  (oracle, backends)

let run_scenario sc =
  let oracle, backends = make_runners sc in
  let all = oracle :: backends in
  let divergence = ref None in
  List.iteri
    (fun i step ->
      if !divergence = None then
        match step with
        | Msg { now_ns; msg } ->
            List.iter (fun r -> apply_msg r.pipeline ~now_ns msg) all
        | Expire { now_ns } ->
            List.iter (fun r -> expire_all r.pipeline ~now_ns) all
        | Packet { now_ns; in_port; pkt } ->
            let expected =
              render_result (oracle.process ~now_ns ~in_port pkt)
            in
            List.iter
              (fun r ->
                if !divergence = None then
                  let actual =
                    render_result (r.process ~now_ns ~in_port pkt)
                  in
                  if actual <> expected then
                    divergence :=
                      Some
                        {
                          backend = r.rname;
                          step_index = i;
                          expected;
                          actual;
                          scenario = sc;
                        })
              backends)
    sc.steps;
  !divergence

(* ---- generation ---- *)

let mac_pool =
  lazy
    (Array.map Mac_addr.of_string
       [|
         "02:00:00:00:00:01";
         "02:00:00:00:00:02";
         "02:00:00:00:00:03";
         "0e:ab:cd:00:00:04";
       |])

let ip_pool =
  lazy
    (Array.map Ipv4_addr.of_string
       [| "10.0.0.1"; "10.0.0.2"; "10.1.2.3"; "192.168.1.9" |])

let vid_pool = [| 101; 102 |]
let l4_pool = [| 53; 80; 1234; 4321 |]
let prefix_lens = [| 8; 16; 24; 32 |]

let pick rng a = a.(Rng.int rng (Array.length a))
let mac rng = pick rng (Lazy.force mac_pool)
let ip rng = pick rng (Lazy.force ip_pool)

let gen_match rng ~ports =
  let maybe p f m = if Rng.int rng p = 0 then f m else m in
  M.any
  |> maybe 4 (M.in_port (Rng.int rng ports))
  |> maybe 4 (fun m ->
         if Rng.bool rng then M.eth_dst (mac rng) m
         else
           M.eth_dst
             ~mask:(Mac_addr.of_string "ff:ff:ff:00:00:00")
             (mac rng) m)
  |> maybe 6 (M.eth_src (mac rng))
  |> maybe 5 (M.eth_type (if Rng.bool rng then 0x0800 else 0x0806))
  |> maybe 4 (fun m ->
         match Rng.int rng 3 with
         | 0 -> M.vlan_absent m
         | 1 -> M.vlan_present m
         | _ -> M.vid (pick rng vid_pool) m)
  |> maybe 5 (fun m ->
         M.ip_src (Ipv4_addr.Prefix.make (ip rng) (pick rng prefix_lens)) m)
  |> maybe 5 (fun m ->
         M.ip_dst (Ipv4_addr.Prefix.make (ip rng) (pick rng prefix_lens)) m)
  |> maybe 6 (M.ip_proto (match Rng.int rng 3 with 0 -> 1 | 1 -> 6 | _ -> 17))
  |> maybe 8 (M.ip_tos ((Rng.int rng 4) lsl 2))
  |> maybe 6 (M.l4_src (pick rng l4_pool))
  |> maybe 6 (M.l4_dst (pick rng l4_pool))

let gen_action rng ~ports =
  match Rng.int rng 14 with
  | 0 | 1 | 2 -> A.Output (A.Physical (Rng.int rng ports))
  | 3 -> A.Output A.In_port
  | 4 -> A.Output A.Flood
  | 5 -> A.Output (A.Controller 0)
  | 6 -> A.Group (1 + Rng.int rng 2)
  | 7 -> A.Push_vlan
  | 8 -> A.Pop_vlan
  | 9 -> A.Set_vlan_vid (pick rng vid_pool)
  | 10 -> A.Set_eth_dst (mac rng)
  | 11 -> A.Set_ip_src (ip rng)
  | 12 -> A.Set_l4_dst (pick rng l4_pool)
  | _ -> A.Output A.All

let gen_actions rng ~ports =
  List.init (1 + Rng.int rng 3) (fun _ -> gen_action rng ~ports)

let gen_instructions rng ~table_id ~tables ~ports =
  let instrs = ref [] in
  if Rng.int rng 6 = 0 then instrs := [ FE.Meter (1 + Rng.int rng 2) ];
  if Rng.int rng 3 > 0 then
    instrs := !instrs @ [ FE.Apply_actions (gen_actions rng ~ports) ];
  if Rng.int rng 3 = 0 then
    instrs := !instrs @ [ FE.Write_actions (gen_actions rng ~ports) ];
  if Rng.int rng 10 = 0 then instrs := !instrs @ [ FE.Clear_actions ];
  if table_id < tables - 1 && Rng.int rng 3 = 0 then
    instrs :=
      !instrs @ [ FE.Goto_table (table_id + 1 + Rng.int rng (tables - table_id - 1)) ];
  !instrs

let gen_flow_mod rng ~tables ~ports ~force_add =
  let table_id = if Rng.int rng 3 = 0 then Rng.int rng tables else 0 in
  let command =
    if force_add then Msg_.Add
    else
      match Rng.int rng 10 with
      | 0 -> Msg_.Modify { strict = Rng.bool rng }
      | 1 | 2 -> Msg_.Delete { strict = Rng.bool rng }
      | _ -> Msg_.Add
  in
  let out_port =
    match command with
    | Msg_.Delete _ when Rng.int rng 4 = 0 -> Some (Rng.int rng ports)
    | _ -> None
  in
  let timeout () = if Rng.int rng 4 = 0 then Some (1 + Rng.int rng 3) else None in
  {
    Msg_.table_id;
    command;
    priority = Rng.int rng 4;
    match_ = gen_match rng ~ports;
    instructions = gen_instructions rng ~table_id ~tables ~ports;
    cookie = 0L;
    idle_timeout_s = timeout ();
    hard_timeout_s = timeout ();
    out_port;
  }

let gen_bucket rng ~ports =
  {
    Openflow.Group_table.weight = 1 + Rng.int rng 3;
    actions = gen_actions rng ~ports;
  }

let gen_group_mod rng ~ports =
  let id = 1 + Rng.int rng 2 in
  match Rng.int rng 4 with
  | 0 -> Msg_.Delete_group { id }
  | 1 ->
      Msg_.Modify_group
        {
          id;
          gtype = Openflow.Group_table.All;
          buckets = List.init (1 + Rng.int rng 2) (fun _ -> gen_bucket rng ~ports);
        }
  | _ ->
      let gtype, buckets =
        match Rng.int rng 3 with
        | 0 -> (Openflow.Group_table.Indirect, [ gen_bucket rng ~ports ])
        | 1 ->
            ( Openflow.Group_table.Select,
              List.init (1 + Rng.int rng 3) (fun _ -> gen_bucket rng ~ports) )
        | _ ->
            ( Openflow.Group_table.All,
              List.init (1 + Rng.int rng 2) (fun _ -> gen_bucket rng ~ports) )
      in
      Msg_.Add_group { id; gtype; buckets }

let gen_meter_mod rng =
  let id = 1 + Rng.int rng 2 in
  let band () =
    {
      Openflow.Meter_table.rate_kbps = 8 * (1 + Rng.int rng 100);
      burst_kb = 1 + Rng.int rng 16;
    }
  in
  match Rng.int rng 4 with
  | 0 -> Msg_.Delete_meter { id }
  | 1 -> Msg_.Modify_meter { id; band = band () }
  | _ -> Msg_.Add_meter { id; band = band () }

let gen_packet rng =
  let vlans =
    match Rng.int rng 4 with
    | 0 -> [ Vlan.make (pick rng vid_pool) ]
    | 1 when Rng.int rng 4 = 0 ->
        [ Vlan.make (pick rng vid_pool); Vlan.make (pick rng vid_pool) ]
    | _ -> []
  in
  let dst = mac rng and src = mac rng in
  match Rng.int rng 8 with
  | 0 ->
      Packet.arp_request ~src_mac:src ~src_ip:(ip rng) ~target_ip:(ip rng)
  | 1 -> Packet.icmp_echo ~dst ~src ~ip_src:(ip rng) ~ip_dst:(ip rng) ~id:7 ~seq:1
  | n ->
      let mk = if n land 1 = 0 then Packet.udp else Packet.tcp ?flags:None in
      mk ~vlans ~dst ~src ~ip_src:(ip rng) ~ip_dst:(ip rng)
        ~src_port:(pick rng l4_pool) ~dst_port:(pick rng l4_pool) "payload"

let gen_scenario rng =
  let tables = 1 + Rng.int rng 4 in
  let ports = 2 + Rng.int rng 4 in
  let now = ref 1_000 in
  let steps = ref [] in
  let push s = steps := s :: !steps in
  let advance () =
    now := !now + 1 + Rng.int rng 1_000_000;
    (* Occasionally jump past the timeout horizon so idle/hard expiry
       (and the cache invalidation it causes) actually happens. *)
    if Rng.int rng 16 = 0 then now := !now + Rng.int rng 2_500_000_000
  in
  let recent : (int * Packet.t) list ref = ref [] in
  let n_init = 2 + Rng.int rng 6 in
  for _ = 1 to n_init do
    push
      (Msg
         {
           now_ns = !now;
           msg = Msg_.Flow_mod (gen_flow_mod rng ~tables ~ports ~force_add:true);
         });
    advance ()
  done;
  let n = 20 + Rng.int rng 40 in
  for _ = 1 to n do
    (match Rng.int rng 100 with
    | x when x < 45 ->
        let in_port, pkt =
          match !recent with
          | (p, k) :: _ when Rng.int rng 3 = 0 ->
              (* Resend an earlier packet verbatim: the EMC-hit path. *)
              (p, k)
          | _ ->
              let p = Rng.int rng ports and k = gen_packet rng in
              recent := (p, k) :: !recent;
              (p, k)
        in
        push (Packet { now_ns = !now; in_port; pkt })
    | x when x < 75 ->
        push
          (Msg
             {
               now_ns = !now;
               msg =
                 Msg_.Flow_mod (gen_flow_mod rng ~tables ~ports ~force_add:false);
             })
    | x when x < 82 ->
        push (Msg { now_ns = !now; msg = Msg_.Group_mod (gen_group_mod rng ~ports) })
    | x when x < 89 ->
        push (Msg { now_ns = !now; msg = Msg_.Meter_mod (gen_meter_mod rng) })
    | _ -> push (Expire { now_ns = !now }));
    advance ()
  done;
  { tables; ports; steps = List.rev !steps }

(* ---- shrinking: greedy step removal to a fixpoint ---- *)

let drop_nth l n = List.filteri (fun i _ -> i <> n) l

let shrink sc0 d0 =
  let best_sc = ref d0.scenario in
  let best_d = ref d0 in
  ignore sc0;
  let improved = ref true in
  while !improved do
    improved := false;
    let n = List.length !best_sc.steps in
    (* Try dropping from the end first: later steps are more often
       dead weight once the diverging packet is early. *)
    let i = ref (n - 1) in
    while !i >= 0 do
      let candidate = { !best_sc with steps = drop_nth !best_sc.steps !i } in
      (match run_scenario candidate with
      | Some d ->
          best_sc := candidate;
          best_d := d;
          improved := true
      | None -> ());
      decr i
    done
  done;
  !best_d

let check_case ~seed =
  let rng = Rng.create seed in
  let sc = gen_scenario rng in
  match run_scenario sc with
  | None -> None
  | Some d -> Some (shrink sc d)

type report = { cases : int; packets : int; divergences : divergence list }

let count_packets sc =
  List.length (List.filter (function Packet _ -> true | _ -> false) sc.steps)

let run ?(on_divergence = fun _ -> ()) ~seed ~cases () =
  let packets = ref 0 in
  let divergences = ref [] in
  for i = 0 to cases - 1 do
    let rng = Rng.create (seed + i) in
    let sc = gen_scenario rng in
    packets := !packets + count_packets sc;
    if List.length !divergences < 5 then
      match run_scenario sc with
      | None -> ()
      | Some d ->
          let d = shrink sc d in
          divergences := d :: !divergences;
          on_divergence d
  done;
  { cases; packets = !packets; divergences = List.rev !divergences }

(* ---- repro files ---- *)

let to_string sc =
  let b = Buffer.create 1024 in
  Buffer.add_string b "# harmless differential repro v1\n";
  Printf.bprintf b "tables %d\nports %d\n" sc.tables sc.ports;
  List.iter
    (function
      | Msg { now_ns; msg } ->
          Printf.bprintf b "msg %d %s\n" now_ns
            (Hex.encode (Openflow.Of_codec.encode msg))
      | Expire { now_ns } -> Printf.bprintf b "expire %d\n" now_ns
      | Packet { now_ns; in_port; pkt } ->
          Printf.bprintf b "packet %d %d %s\n" now_ns in_port
            (Hex.encode (Packet.encode pkt)))
    sc.steps;
  Buffer.contents b

let of_string text =
  let ( let* ) = Result.bind in
  let int_of s ~what =
    match int_of_string_opt s with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "bad %s %S" what s)
  in
  let parse_line (sc, steps) line =
    match
      String.split_on_char ' ' line |> List.filter (fun s -> s <> "")
    with
    | [] -> Ok (sc, steps)
    | tok :: _ when tok.[0] = '#' -> Ok (sc, steps)
    | [ "tables"; n ] ->
        let* n = int_of n ~what:"table count" in
        Ok ({ sc with tables = n }, steps)
    | [ "ports"; n ] ->
        let* n = int_of n ~what:"port count" in
        Ok ({ sc with ports = n }, steps)
    | [ "msg"; now; hex ] ->
        let* now_ns = int_of now ~what:"timestamp" in
        let* bytes = Hex.decode hex in
        let* msg, _xid =
          Openflow.Of_codec.decode_result bytes
          |> Result.map_error (fun e -> "bad flow-mod frame: " ^ e)
        in
        Ok (sc, Msg { now_ns; msg } :: steps)
    | [ "expire"; now ] ->
        let* now_ns = int_of now ~what:"timestamp" in
        Ok (sc, Expire { now_ns } :: steps)
    | [ "packet"; now; port; hex ] ->
        let* now_ns = int_of now ~what:"timestamp" in
        let* in_port = int_of port ~what:"port" in
        let* bytes = Hex.decode hex in
        let* pkt =
          match Packet.decode bytes with
          | pkt -> Ok pkt
          | exception (Wire.Truncated _ | Wire.Malformed _) ->
              Error "bad packet bytes"
        in
        Ok (sc, Packet { now_ns; in_port; pkt } :: steps)
    | tok :: _ -> Error (Printf.sprintf "unknown directive %S" tok)
  in
  let lines = String.split_on_char '\n' text in
  let rec go n acc = function
    | [] -> Ok acc
    | line :: rest -> (
        match parse_line acc line with
        | Ok acc -> go (n + 1) acc rest
        | Error e -> Error (Printf.sprintf "line %d: %s" n e))
  in
  let* sc, steps = go 1 ({ tables = 4; ports = 4; steps = [] }, []) lines in
  Ok { sc with steps = List.rev steps }

let save ~path ?comment sc =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      (match comment with
      | Some c ->
          String.split_on_char '\n' c
          |> List.iter (fun l -> output_string oc ("# " ^ l ^ "\n"))
      | None -> ());
      output_string oc (to_string sc))

let load ~path =
  let ic = open_in_bin path in
  let text =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  Result.map run_scenario (of_string text)

let pp_divergence fmt d =
  Format.fprintf fmt
    "@[<v>divergence: backend %s disagrees with the oracle at step %d@,\
     expected %s@,\
     actual   %s@,\
     repro (%d steps):@,%s@]"
    d.backend d.step_index d.expected d.actual
    (List.length d.scenario.steps)
    (to_string d.scenario)
