open Netpkt
module P = Openflow.Pipeline
module FE = Openflow.Flow_entry
module FT = Openflow.Flow_table
module A = Openflow.Of_action
module M = Openflow.Of_match

let classify pipeline ~table_id ~in_port fields =
  (* Exhaustive scan; first entry of the highest matching priority wins
     (Flow_table keeps insertion order within a priority, and so does
     this fold: a later entry replaces the champion only when strictly
     better). *)
  List.fold_left
    (fun best (e : FE.t) ->
      if not (M.matches e.FE.match_ ~in_port fields) then best
      else
        match best with
        | Some (b : FE.t) when b.FE.priority >= e.FE.priority -> best
        | _ -> Some e)
    None
    (FT.entries (P.table pipeline table_id))

(* The deferred action set, spec-literal: at most one action per kind.
   Rewrites apply in the order they were (last) written — writing a kind
   again moves it to the end — and the optional output/group runs after
   every rewrite. *)

let kind_tag = function
  | A.Set_vlan_vid _ -> 0
  | A.Set_vlan_pcp _ -> 1
  | A.Set_eth_src _ -> 2
  | A.Set_eth_dst _ -> 3
  | A.Set_ip_src _ -> 4
  | A.Set_ip_dst _ -> 5
  | A.Set_ip_tos _ -> 6
  | A.Set_l4_src _ -> 7
  | A.Set_l4_dst _ -> 8
  | A.Push_vlan -> 9
  | A.Pop_vlan -> 10
  | A.Output _ -> 11
  | A.Group _ -> 12
  | A.Drop -> 13

type action_set = {
  mutable writes : (int * A.t) list; (* application order *)
  mutable final : A.t option;        (* Output or Group *)
}

let write_to set action =
  match action with
  | A.Output _ | A.Group _ -> set.final <- Some action
  | A.Drop ->
      set.writes <- [];
      set.final <- None
  | rewrite ->
      let k = kind_tag rewrite in
      set.writes <-
        List.filter (fun (k', _) -> k' <> k) set.writes @ [ (k, rewrite) ]

let execute pipeline ~now_ns ~in_port pkt =
  let outputs = ref [] in
  let matched = ref [] in
  let miss = ref false in
  let emit o = outputs := o :: !outputs in
  (* [entered]: group ids currently being executed, to cut group
     chaining loops — same contract as the production executor. *)
  let rec apply_actions ~entered pkt actions =
    match actions with
    | [] -> pkt
    | A.Output target :: rest ->
        emit
          (match target with
          | A.Physical p -> P.Port (p, pkt)
          | A.In_port -> P.In_port pkt
          | A.Flood -> P.Flood pkt
          | A.All -> P.All_ports pkt
          | A.Controller n -> P.Controller (n, pkt));
        apply_actions ~entered pkt rest
    | A.Group gid :: rest ->
        if not (List.mem gid entered) then begin
          let hash = P.flow_hash (Packet.Fields.of_packet pkt) in
          match
            Openflow.Group_table.select_buckets (P.groups pipeline) ~id:gid
              ~flow_hash:hash
          with
          | buckets ->
              (* Each bucket starts from the packet as it reached the
                 group; bucket-local rewrites do not leak out. *)
              List.iter
                (fun (b : Openflow.Group_table.bucket) ->
                  ignore
                    (apply_actions ~entered:(gid :: entered) pkt
                       b.Openflow.Group_table.actions))
                buckets
          | exception Not_found -> ()
        end;
        apply_actions ~entered pkt rest
    | A.Drop :: rest -> apply_actions ~entered pkt rest
    | rewrite :: rest ->
        apply_actions ~entered (A.apply_rewrite rewrite pkt) rest
  in
  let apply_actions pkt actions = apply_actions ~entered:[] pkt actions in
  let set = { writes = []; final = None } in
  let finish pkt =
    let pkt =
      List.fold_left (fun p (_, a) -> A.apply_rewrite a p) pkt set.writes
    in
    match set.final with
    | None -> ()
    | Some final -> ignore (apply_actions pkt [ final ])
  in
  let rec walk table_id pkt =
    if table_id >= P.num_tables pipeline then finish pkt
    else
      let fields = Packet.Fields.of_packet pkt in
      match classify pipeline ~table_id ~in_port fields with
      | None ->
          (* A miss ends the walk but the action set accumulated so far
             still runs — same as the production executor. *)
          miss := true;
          finish pkt
      | Some entry ->
          FE.touch entry ~now_ns ~bytes:(Packet.size pkt);
          matched := entry :: !matched;
          let pkt = ref pkt in
          let goto = ref None in
          let policed_out = ref false in
          List.iter
            (fun instruction ->
              if not !policed_out then
                match instruction with
                | FE.Apply_actions actions ->
                    pkt := apply_actions !pkt actions
                | FE.Write_actions actions -> List.iter (write_to set) actions
                | FE.Clear_actions ->
                    set.writes <- [];
                    set.final <- None
                | FE.Goto_table n -> goto := Some n
                | FE.Meter id -> (
                    match
                      Openflow.Meter_table.apply (P.meters pipeline) ~id
                        ~now_ns ~bytes:(Packet.size !pkt)
                    with
                    | `Pass -> ()
                    | `Drop -> policed_out := true))
            entry.FE.instructions;
          (* A metered-out packet stops dead: later instructions were
             already skipped, and the action set never runs — but outputs
             emitted before the meter stand. *)
          if not !policed_out then
            match !goto with
            | Some next when next > table_id -> walk next !pkt
            | Some _ | None -> finish !pkt
  in
  walk 0 pkt;
  {
    P.outputs = List.rev !outputs;
    table_miss = !miss;
    matched = List.rev !matched;
  }

let dataplane pipeline =
  {
    Softswitch.Dataplane.name = "oracle";
    process =
      (fun ~now_ns ~in_port pkt -> (execute pipeline ~now_ns ~in_port pkt, 0));
    stats = (fun () -> []);
    tier = (fun () -> "oracle");
  }
