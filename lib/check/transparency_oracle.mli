(** The SS_1 transparency invariant, checked two ways.

    The paper's translator switch promises the controller a plain
    OpenFlow switch while the physical trunk carries the VLAN trick.
    That promise decomposes into checkable facts:

    - {e hairpin}: a frame tagged [vid(i)] arriving on the trunk leaves
      bare on patch port [i]; a bare frame arriving on patch port [i]
      leaves on the trunk with exactly one fresh [vid(i)] tag; composing
      the two is the identity;
    - frames with unknown VLANs, or no VLAN, miss and are dropped;
    - end to end, trunk links carry only single-tagged managed-VLAN
      frames, patch links and hosts see only bare frames, and no
      packet-in towards the controller ever carries a VLAN header —
      under arbitrary fault schedules. *)

type violation = { context : string; detail : string }

val pp_violation : Format.formatter -> violation -> unit

val check_hairpin : seed:int -> violation list
(** Pure check, no simulation: draw a random {!Harmless.Port_map}, build
    SS_1's {!Harmless.Translator.rules} program on a fresh pipeline per
    implementation (the oracle plus every backend in
    {!Softswitch.Backends.all}), and drive directed frames through the
    three hairpin facts above plus the unknown-VLAN and untagged-trunk
    drop cases.  Empty list = invariant holds. *)

type report = {
  seed : int;
  trunk_frames : int;   (** frames observed on SS_1 NICs 0/1 *)
  patch_frames : int;   (** frames observed on SS_1 patch ports *)
  host_frames : int;    (** frames delivered to / sent by hosts *)
  packet_ins : int;     (** packet-ins inspected, both switches *)
  faults_injected : int;
  violations : violation list;  (** at most 32 kept *)
  chaos : Harmless.Chaos.report;
}

val run :
  ?num_hosts:int ->
  ?fault_count:int ->
  ?duration:Simnet.Sim_time.span ->
  seed:int ->
  unit ->
  (report, string) result
(** End-to-end check: build a {!Harmless.Chaos} rig (redundant trunks,
    watchdog, L2 controller), tap SS_1's node and every host with a
    {!Simnet.Capture}, register packet-in observers on both switches,
    schedule a {!Simnet.Fault.random_events} storm over every registered
    fault target, run the scripted chaos loop, and audit every captured
    frame against the transparency invariant.  Defaults: 3 hosts,
    5 faults, 30 ms.  [Error] only for rig construction / script
    failures — invariant breaches land in [violations]. *)

val pp_report : Format.formatter -> report -> unit
