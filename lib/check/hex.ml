let encode s =
  let b = Buffer.create (2 * String.length s) in
  String.iter (fun c -> Buffer.add_string b (Printf.sprintf "%02x" (Char.code c))) s;
  Buffer.contents b

let digit = function
  | '0' .. '9' as c -> Some (Char.code c - Char.code '0')
  | 'a' .. 'f' as c -> Some (Char.code c - Char.code 'a' + 10)
  | 'A' .. 'F' as c -> Some (Char.code c - Char.code 'A' + 10)
  | _ -> None

let decode s =
  let n = String.length s in
  if n mod 2 <> 0 then Error (Printf.sprintf "hex: odd length %d" n)
  else begin
    let b = Bytes.create (n / 2) in
    let rec go i =
      if i >= n then Ok (Bytes.unsafe_to_string b)
      else
        match (digit s.[i], digit s.[i + 1]) with
        | Some hi, Some lo ->
            Bytes.set b (i / 2) (Char.chr ((hi lsl 4) lor lo));
            go (i + 2)
        | _ -> Error (Printf.sprintf "hex: bad digit at offset %d" i)
    in
    go 0
  end

let decode_exn s =
  match decode s with Ok v -> v | Error e -> invalid_arg e
