(** Differential fuzzing of the dataplane backends against {!Oracle}.

    A {e scenario} is a timed sequence of control-plane and data-plane
    steps — flow/group/meter mods, explicit timeout-expiry sweeps, and
    packets.  Running a scenario replays the exact same steps against a
    fresh pipeline per implementation (every backend in
    {!Softswitch.Backends.all}, plus the oracle), and compares the
    normalized forwarding result of every packet step.  The first
    disagreement is a {e divergence}.

    Divergences shrink greedily (steps are removed while the divergence
    persists) and serialize to a text repro file — flow mods as OpenFlow
    frame hex, packets as frame hex — that {!load} replays verbatim, so
    a fuzzer finding becomes a pinned regression the moment it is
    committed.  Generation is seeded: the same seed always yields the
    same scenario, independent of any global RNG state. *)

type step =
  | Msg of { now_ns : int; msg : Openflow.Of_message.t }
      (** Apply a [Flow_mod]/[Group_mod]/[Meter_mod] to every pipeline
          with soft-switch semantics (bad table ids, table-full, and
          duplicate/unknown group or meter ids are ignored, identically
          everywhere).  Other message types are no-ops. *)
  | Expire of { now_ns : int }
      (** Sweep idle/hard timeouts on every table, as the switch's
          periodic sweeper would. *)
  | Packet of { now_ns : int; in_port : int; pkt : Netpkt.Packet.t }
      (** Process a packet and compare results across implementations. *)

type scenario = { tables : int; ports : int; steps : step list }

type divergence = {
  backend : string;     (** the implementation that disagreed *)
  step_index : int;     (** index of the offending packet step *)
  expected : string;    (** the oracle's normalized result *)
  actual : string;      (** the backend's normalized result *)
  scenario : scenario;  (** shrunk by the time it is reported *)
}

val apply_message :
  Openflow.Pipeline.t -> now_ns:int -> Openflow.Of_message.t -> unit
(** Apply one control-plane message to a pipeline with soft-switch
    semantics (exactly as a [Msg] step does): bad table ids, table-full
    and unknown/duplicate group or meter ids are silently ignored;
    non-mod messages are no-ops.  Shared with {!Policy_equiv}, which
    installs compiled and hand-written rule sets through it. *)

val render_result : Openflow.Pipeline.result -> string
(** The normalized form results are compared under: outputs with packet
    bytes, table-miss flag, and matched entries as
    (priority, match, instructions) — counters excluded, so two
    pipelines with identical behaviour render identically. *)

(** The building-block generators, shared with the codec fuzzer and the
    test suite.  All draw from small pools (MACs, IPs, VIDs, L4 ports)
    so independently generated rules and packets collide often. *)

val gen_match : Simnet.Rng.t -> ports:int -> Openflow.Of_match.t
val gen_actions : Simnet.Rng.t -> ports:int -> Openflow.Of_action.t list

val gen_flow_mod :
  Simnet.Rng.t ->
  tables:int ->
  ports:int ->
  force_add:bool ->
  Openflow.Of_message.flow_mod

val gen_group_mod : Simnet.Rng.t -> ports:int -> Openflow.Of_message.group_mod
val gen_meter_mod : Simnet.Rng.t -> Openflow.Of_message.meter_mod
val gen_packet : Simnet.Rng.t -> Netpkt.Packet.t

val gen_scenario : Simnet.Rng.t -> scenario
(** Draw a random scenario: pooled MACs/IPs/VIDs/ports so rules and
    packets actually meet, priority ties, flow-mod churn, goto chains,
    groups, meters, time jumps past the timeout horizon, and repeated
    packets to exercise cache-hit paths. *)

val run_scenario : scenario -> divergence option
(** Replay on fresh pipelines; [None] = all implementations agreed on
    every packet. *)

val shrink : scenario -> divergence -> divergence
(** Greedy step removal while any divergence persists; fixpoint. *)

val check_case : seed:int -> divergence option
(** Generate (from the seed alone), run, and shrink. *)

type report = {
  cases : int;         (** scenarios run *)
  packets : int;       (** packet comparisons performed *)
  divergences : divergence list;  (** shrunk, at most 5 reported *)
}

val run :
  ?on_divergence:(divergence -> unit) -> seed:int -> cases:int -> unit -> report
(** Run [cases] seeded cases ([seed], [seed+1], ...). *)

val to_string : scenario -> string
(** The repro text format:
    {v
    # comment
    tables 4
    ports 3
    msg <now_ns> <openflow frame hex>
    expire <now_ns>
    packet <now_ns> <in_port> <ethernet frame hex>
    v} *)

val of_string : string -> (scenario, string) result

val save : path:string -> ?comment:string -> scenario -> unit
(** Write {!to_string} (with an optional leading comment) to [path]. *)

val load : path:string -> (divergence option, string) result
(** Read a repro file and {!run_scenario} it: [Ok None] means the repro
    no longer diverges (the bug is fixed), [Ok (Some d)] reproduces it,
    [Error] is a parse failure. *)

val pp_divergence : Format.formatter -> divergence -> unit
