open Netpkt
module P = Openflow.Pipeline
module Rng = Simnet.Rng
module Syn = Policy.Syntax

type spec = {
  spec_name : string;
  ports : int;
  hand_tables : int;
  hand_messages : Openflow.Of_message.t list;
  policy : Syn.t;
  mac_pool : Mac_addr.t list;
  ip_pool : Ipv4_addr.t list;
  l4_pool : int list;
}

type step = { now_ns : int; in_port : int; pkt : Packet.t }
type case = { spec : spec; steps : step list }

type divergence = {
  impl : string;
  step_index : int;
  expected : string;
  actual : string;
  case : case;
}

(* ---- the built-in specs ---- *)

let ip = Ipv4_addr.of_string
let mac = Mac_addr.make_local

let dmz_spec () =
  let vm i = { Sdnctl.Dmz.vm_ip = ip (Printf.sprintf "10.0.0.%d" i);
               vm_mac = mac (0x20 + i); vm_port = i - 1 } in
  let vm1 = vm 1 and vm2 = vm 2 and vm3 = vm 3 in
  let policy =
    { Sdnctl.Dmz.vms = [ vm1; vm2; vm3 ];
      allowed =
        [ (vm1.Sdnctl.Dmz.vm_ip, vm2.Sdnctl.Dmz.vm_ip);
          (vm1.Sdnctl.Dmz.vm_ip, vm3.Sdnctl.Dmz.vm_ip) ] }
  in
  {
    spec_name = "dmz";
    ports = 4;
    hand_tables = 1;
    hand_messages = Sdnctl.Dmz.messages policy ();
    policy = Sdnctl.Dmz.fragment policy ();
    mac_pool =
      [ mac 0x21; mac 0x22; mac 0x23; Mac_addr.broadcast; mac 0x99 ];
    ip_pool = [ ip "10.0.0.1"; ip "10.0.0.2"; ip "10.0.0.3"; ip "192.0.2.1" ];
    l4_pool = [ 80; 443 ];
  }

let lb_spec () =
  let backends =
    List.init 3 (fun i ->
        { Sdnctl.Load_balancer.backend_ip = ip (Printf.sprintf "10.9.1.%d" (i + 1));
          backend_mac = mac (0xb1 + i); backend_port = i + 1 })
  in
  let vip_ip = ip "10.9.0.9" and vip_mac = mac 0x91 in
  {
    spec_name = "lb";
    ports = 4;
    hand_tables = 1;
    hand_messages =
      Sdnctl.Load_balancer.messages ~vip_ip ~vip_mac ~ingress_port:0 ~backends ();
    policy =
      Sdnctl.Load_balancer.fragment ~vip_ip ~vip_mac ~ingress_port:0 ~backends ();
    mac_pool =
      (vip_mac
      :: List.map (fun b -> b.Sdnctl.Load_balancer.backend_mac) backends)
      @ [ Mac_addr.broadcast; mac 0x99 ];
    ip_pool =
      (vip_ip :: List.map (fun b -> b.Sdnctl.Load_balancer.backend_ip) backends)
      @ [ ip "192.0.2.1" ];
    l4_pool = [ 80; 8080 ];
  }

let parental_spec () =
  let t =
    Sdnctl.Parental_control.create
      ~sites:
        [ ("blocked.example", ip "203.0.113.5");
          ("other.example", ip "203.0.113.7") ]
      ~blocked:
        [ (ip "10.5.0.1", "blocked.example");
          (ip "10.5.0.2", "nosuch.example");
          (* user 1 carries a drop *and* a sniff rule *)
          (ip "10.5.0.1", "nosuch.example") ]
      ()
  in
  {
    spec_name = "parental";
    ports = 3;
    hand_tables = 1;
    hand_messages = Sdnctl.Parental_control.messages t ();
    policy = Sdnctl.Parental_control.fragment t;
    mac_pool = [ mac 0x51; mac 0x52; Mac_addr.broadcast ];
    ip_pool =
      [ ip "10.5.0.1"; ip "10.5.0.2"; ip "10.5.0.3";
        ip "203.0.113.5"; ip "203.0.113.7"; ip "192.0.2.1" ];
    (* 80 twice: blocked-site traffic is the interesting half *)
    l4_pool = [ 80; 80; 443 ];
  }

let ratelimit_spec () =
  let limits =
    [ { Sdnctl.Rate_limiter.subject = ip "10.7.0.1"; rate_kbps = 512; burst_kb = 16 };
      { Sdnctl.Rate_limiter.subject = ip "10.7.0.2"; rate_kbps = 256; burst_kb = 8 } ]
  in
  let num_hosts = 4 in
  let open Syn in
  {
    spec_name = "ratelimit";
    ports = 4;
    hand_tables = 2;
    hand_messages =
      Sdnctl.Rate_limiter.messages ~limits ~goto_table:1 ()
      @ Sdnctl.Rate_limiter.table1_messages ~num_hosts ();
    policy =
      (* Metered traffic that table 1 cannot forward must still bill the
         meter, exactly like the hand-written Goto_table pipeline. *)
      seq
        (Sdnctl.Rate_limiter.fragment ~limits ())
        (orelse (Sdnctl.Rate_limiter.table1_fragment ~num_hosts ()) discard);
    mac_pool =
      List.init num_hosts (fun i -> mac (i + 1))
      @ [ Mac_addr.broadcast; mac 0x99 ];
    ip_pool = [ ip "10.7.0.1"; ip "10.7.0.2"; ip "10.7.0.3" ];
    l4_pool = [ 53; 80 ];
  }

let gateway_spec () =
  let g = Sdnctl.Gateway.default () in
  {
    spec_name = "gateway";
    ports = g.Sdnctl.Gateway.num_ports;
    hand_tables = Sdnctl.Gateway.handwritten_tables;
    hand_messages = Sdnctl.Gateway.handwritten_messages g;
    policy = Sdnctl.Gateway.policy g;
    mac_pool = Sdnctl.Gateway.macs g;
    ip_pool = Sdnctl.Gateway.ips g;
    l4_pool = Sdnctl.Gateway.l4_ports g;
  }

let specs () =
  [ dmz_spec (); lb_spec (); parental_spec (); ratelimit_spec ();
    gateway_spec () ]

let find_spec name =
  List.find_opt (fun s -> s.spec_name = name) (specs ())

(* ---- normalization ---- *)

let normalize ~in_port outputs =
  let render_packet pkt = Hex.encode (Packet.encode pkt) in
  let render = function
    | P.Port (p, pkt) -> Printf.sprintf "port:%d:%s" p (render_packet pkt)
    | P.In_port pkt -> Printf.sprintf "port:%d:%s" in_port (render_packet pkt)
    | P.Flood pkt -> "flood:" ^ render_packet pkt
    | P.All_ports pkt -> "all:" ^ render_packet pkt
    | P.Controller (n, pkt) ->
        Printf.sprintf "ctrl:%d:%s" n (render_packet pkt)
  in
  "["
  ^ String.concat " "
      (List.sort_uniq String.compare (List.map render outputs))
  ^ "]"

(* ---- running a case across every implementation ---- *)

type runner = { rname : string; process : step -> P.output list }

let oracle_runner name tables msgs =
  let pipeline = P.create ~num_tables:tables () in
  List.iter (Differential.apply_message pipeline ~now_ns:0) msgs;
  { rname = name;
    process =
      (fun s ->
        (Oracle.execute pipeline ~now_ns:s.now_ns ~in_port:s.in_port s.pkt)
          .P.outputs) }

let backend_runners msgs =
  List.map
    (fun (name, create) ->
      let pipeline = P.create ~num_tables:1 () in
      let dp = create pipeline in
      List.iter (Differential.apply_message pipeline ~now_ns:0) msgs;
      { rname = "compiled:" ^ name;
        process =
          (fun s ->
            (fst
               (dp.Softswitch.Dataplane.process ~now_ns:s.now_ns
                  ~in_port:s.in_port s.pkt))
              .P.outputs) })
    Softswitch.Backends.all

let run_case case =
  let sp = case.spec in
  let interp = Policy.Interp.create sp.policy in
  let compiled_msgs = Policy.Compile.messages (Policy.Compile.compile sp.policy) in
  let runners =
    oracle_runner "hand:oracle" sp.hand_tables sp.hand_messages
    :: oracle_runner "compiled:oracle" 1 compiled_msgs
    :: backend_runners compiled_msgs
  in
  let divergence = ref None in
  List.iteri
    (fun i s ->
      if !divergence = None then begin
        let expected =
          normalize ~in_port:s.in_port
            (Policy.Interp.run interp ~now_ns:s.now_ns ~in_port:s.in_port s.pkt)
        in
        List.iter
          (fun r ->
            if !divergence = None then
              let actual = normalize ~in_port:s.in_port (r.process s) in
              if actual <> expected then
                divergence :=
                  Some
                    { impl = r.rname; step_index = i; expected; actual; case })
          runners
      end)
    case.steps;
  !divergence

(* ---- generation ---- *)

let pick rng l = List.nth l (Rng.int rng (List.length l))
let vid_pool = [ 101; 102 ]

let gen_packet rng sp =
  let m () = pick rng sp.mac_pool in
  let i () = pick rng sp.ip_pool in
  let l () = pick rng sp.l4_pool in
  match Rng.int rng 8 with
  | 0 -> Packet.arp_request ~src_mac:(m ()) ~src_ip:(i ()) ~target_ip:(i ())
  | 1 ->
      Packet.icmp_echo ~dst:(m ()) ~src:(m ()) ~ip_src:(i ()) ~ip_dst:(i ())
        ~id:7 ~seq:1
  | n ->
      let vlans =
        if Rng.int rng 4 = 0 then [ Vlan.make (pick rng vid_pool) ] else []
      in
      let mk = if n land 1 = 0 then Packet.udp else Packet.tcp ?flags:None in
      mk ~vlans ~dst:(m ()) ~src:(m ()) ~ip_src:(i ()) ~ip_dst:(i ())
        ~src_port:(l ()) ~dst_port:(l ()) "payload"

let gen_case sp ~seed =
  let rng = Rng.create seed in
  let now = ref 1_000 in
  let n = 15 + Rng.int rng 26 in
  let steps =
    List.init n (fun _ ->
        let s =
          { now_ns = !now;
            in_port = Rng.int rng sp.ports;
            pkt = gen_packet rng sp }
        in
        now := !now + 1 + Rng.int rng 1_000_000;
        (* Occasionally jump far enough that depleted meter buckets
           refill, so both the recovering and the depleted token-bucket
           paths are compared. *)
        if Rng.int rng 8 = 0 then now := !now + Rng.int rng 2_500_000_000;
        s)
  in
  { spec = sp; steps }

(* ---- shrinking: greedy step removal to a fixpoint ---- *)

let drop_nth l n = List.filteri (fun i _ -> i <> n) l

let shrink d0 =
  let best = ref d0 in
  let improved = ref true in
  while !improved do
    improved := false;
    let case = !best.case in
    let n = List.length case.steps in
    let i = ref (n - 1) in
    while !i >= 0 do
      let candidate = { case with steps = drop_nth case.steps !i } in
      (match run_case candidate with
      | Some d ->
          best := d;
          improved := true
      | None -> ());
      decr i
    done
  done;
  !best

let check_case sp ~seed =
  match run_case (gen_case sp ~seed) with
  | None -> None
  | Some d -> Some (shrink d)

type report = { cases : int; packets : int; divergences : divergence list }

let run ?(on_divergence = fun _ -> ()) ~spec ~seed ~cases () =
  let packets = ref 0 in
  let divergences = ref [] in
  for i = 0 to cases - 1 do
    let case = gen_case spec ~seed:(seed + i) in
    packets := !packets + List.length case.steps;
    if List.length !divergences < 5 then
      match run_case case with
      | None -> ()
      | Some d ->
          let d = shrink d in
          divergences := d :: !divergences;
          on_divergence d
  done;
  { cases; packets = !packets; divergences = List.rev !divergences }

(* ---- repro files ---- *)

let to_string case =
  let b = Buffer.create 1024 in
  Buffer.add_string b "# harmless policy-equiv repro v1\n";
  Printf.bprintf b "spec %s\n" case.spec.spec_name;
  List.iter
    (fun s ->
      Printf.bprintf b "packet %d %d %s\n" s.now_ns s.in_port
        (Hex.encode (Packet.encode s.pkt)))
    case.steps;
  Buffer.contents b

let of_string text =
  let ( let* ) = Result.bind in
  let int_of s ~what =
    match int_of_string_opt s with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "bad %s %S" what s)
  in
  let parse_line (sp, steps) line =
    match String.split_on_char ' ' line |> List.filter (fun s -> s <> "") with
    | [] -> Ok (sp, steps)
    | tok :: _ when tok.[0] = '#' -> Ok (sp, steps)
    | [ "spec"; name ] -> (
        match find_spec name with
        | Some sp -> Ok (Some sp, steps)
        | None -> Error (Printf.sprintf "unknown spec %S" name))
    | [ "packet"; now; port; hex ] ->
        let* now_ns = int_of now ~what:"timestamp" in
        let* in_port = int_of port ~what:"port" in
        let* bytes = Hex.decode hex in
        let* pkt =
          match Packet.decode bytes with
          | pkt -> Ok pkt
          | exception (Wire.Truncated _ | Wire.Malformed _) ->
              Error "bad packet bytes"
        in
        Ok (sp, { now_ns; in_port; pkt } :: steps)
    | tok :: _ -> Error (Printf.sprintf "unknown directive %S" tok)
  in
  let lines = String.split_on_char '\n' text in
  let rec go n acc = function
    | [] -> Ok acc
    | line :: rest -> (
        match parse_line acc line with
        | Ok acc -> go (n + 1) acc rest
        | Error e -> Error (Printf.sprintf "line %d: %s" n e))
  in
  let* sp, steps = go 1 (None, []) lines in
  match sp with
  | None -> Error "no spec directive"
  | Some sp -> Ok { spec = sp; steps = List.rev steps }

let save ~path ?comment case =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      (match comment with
      | Some c ->
          String.split_on_char '\n' c
          |> List.iter (fun l -> output_string oc ("# " ^ l ^ "\n"))
      | None -> ());
      output_string oc (to_string case))

let load ~path =
  let ic = open_in_bin path in
  let text =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  Result.map run_case (of_string text)

let pp_divergence fmt d =
  Format.fprintf fmt
    "@[<v>divergence: %s disagrees with the interpreter at step %d@,\
     expected %s@,\
     actual   %s@,\
     repro (%d packets):@,%s@]"
    d.impl d.step_index d.expected d.actual
    (List.length d.case.steps)
    (to_string d.case)
