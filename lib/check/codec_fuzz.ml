module Codec = Openflow.Of_codec
module Msg = Openflow.Of_message
module Rng = Simnet.Rng

type failure = { frame : string; problem : string }

type report = {
  cases : int;
  decoded : int;
  rejected : int;
  failures : failure list;
}

let check_frame frame =
  match Codec.decode_result frame with
  | exception e ->
      Error { frame; problem = "decode raised " ^ Printexc.to_string e }
  | Error _ -> Ok ()
  | Ok (m1, _xid) -> (
      match Codec.encode m1 with
      | exception e ->
          Error
            { frame; problem = "re-encode raised " ^ Printexc.to_string e }
      | bytes -> (
          match Codec.decode_result bytes with
          | exception e ->
              Error
                {
                  frame;
                  problem =
                    "decode of re-encoded frame raised " ^ Printexc.to_string e;
                }
          | Error e ->
              Error { frame; problem = "re-encoded frame rejected: " ^ e }
          | Ok (m2, _) ->
              if m2 = m1 then Ok ()
              else
                Error
                  {
                    frame;
                    problem =
                      Format.asprintf
                        "re-encode fixpoint broken: %a became %a" Msg.pp m1
                        Msg.pp m2;
                  }))

(* ---- valid-message generation (mutation seeds) ---- *)

let random_bytes rng n = String.init n (fun _ -> Char.chr (Rng.int rng 256))

let gen_valid_message rng =
  let dp = Differential.gen_packet in
  match Rng.int rng 17 with
  | 0 -> Msg.Hello
  | 1 -> Msg.Echo_request (random_bytes rng (Rng.int rng 16))
  | 2 -> Msg.Echo_reply (random_bytes rng (Rng.int rng 16))
  | 3 -> Msg.Features_request
  | 4 ->
      Msg.Features_reply
        {
          datapath_id = Rng.bits64 rng;
          num_ports = Rng.int rng 64;
          num_tables = 1 + Rng.int rng 16;
        }
  | 5 | 6 | 7 ->
      Msg.Flow_mod
        (Differential.gen_flow_mod rng ~tables:4 ~ports:8
           ~force_add:(Rng.bool rng))
  | 8 -> Msg.Group_mod (Differential.gen_group_mod rng ~ports:8)
  | 9 -> Msg.Meter_mod (Differential.gen_meter_mod rng)
  | 10 -> Msg.Port_status { port_no = Rng.int rng 64; up = Rng.bool rng }
  | 11 ->
      Msg.Packet_in
        {
          in_port = Rng.int rng 64;
          reason =
            (if Rng.bool rng then Msg.No_match else Msg.Action_to_controller);
          packet = dp rng;
        }
  | 12 ->
      Msg.Packet_out
        {
          in_port = (if Rng.bool rng then Some (Rng.int rng 64) else None);
          actions = Differential.gen_actions rng ~ports:8;
          packet = dp rng;
        }
  | 13 ->
      Msg.Flow_stats_request
        { table_id = (if Rng.bool rng then Some (Rng.int rng 4) else None) }
  | 14 ->
      Msg.Flow_stats_reply
        (List.init (Rng.int rng 3) (fun _ ->
             {
               Msg.stat_table_id = Rng.int rng 4;
               stat_priority = Rng.int rng 0x10000;
               stat_match = Differential.gen_match rng ~ports:8;
               stat_packets = Rng.int rng 1_000_000;
               stat_bytes = Rng.int rng 1_000_000_000;
             }))
  | 15 ->
      Msg.Port_stats_reply
        (List.init (Rng.int rng 3) (fun _ ->
             {
               Msg.port_no = Rng.int rng 64;
               rx_packets = Rng.int rng 1_000_000;
               tx_packets = Rng.int rng 1_000_000;
               rx_bytes = Rng.int rng 1_000_000_000;
               tx_bytes = Rng.int rng 1_000_000_000;
             }))
  | _ ->
      if Rng.bool rng then Msg.Barrier_request (Rng.int rng 1000)
      else Msg.Barrier_reply (Rng.int rng 1000)

(* ---- mutators ---- *)

let flip_bits rng s =
  let b = Bytes.of_string s in
  let flips = 1 + Rng.int rng 8 in
  for _ = 1 to flips do
    if Bytes.length b > 0 then begin
      let i = Rng.int rng (Bytes.length b) in
      Bytes.set b i
        (Char.chr (Char.code (Bytes.get b i) lxor (1 lsl Rng.int rng 8)))
    end
  done;
  Bytes.to_string b

let truncate rng s =
  if String.length s = 0 then s else String.sub s 0 (Rng.int rng (String.length s))

let set_u16 s off v =
  if String.length s < off + 2 then s
  else begin
    let b = Bytes.of_string s in
    Bytes.set b off (Char.chr ((v lsr 8) land 0xff));
    Bytes.set b (off + 1) (Char.chr (v land 0xff));
    Bytes.to_string b
  end

let gen_case rng =
  let valid () = Codec.encode ~xid:(Int32.of_int (Rng.int rng 1000)) (gen_valid_message rng) in
  match Rng.int rng 8 with
  | 0 -> random_bytes rng (Rng.int rng 64)
  | 1 -> valid ()
  | 2 -> flip_bits rng (valid ())
  | 3 -> truncate rng (valid ())
  | 4 ->
      (* Tamper with the header length field. *)
      set_u16 (valid ()) 2 (Rng.int rng 0x10000)
  | 5 ->
      (* Tamper with an interior (action/bucket/match/oxm) length. *)
      let s = valid () in
      if String.length s < 10 then s
      else set_u16 s (8 + Rng.int rng (String.length s - 9)) (Rng.int rng 0x10000)
  | 6 ->
      (* Valid frame with trailing garbage (header length disagrees). *)
      valid () ^ random_bytes rng (1 + Rng.int rng 16)
  | _ ->
      (* Plausible header, random body. *)
      let body = random_bytes rng (Rng.int rng 48) in
      let len = 8 + String.length body in
      let hdr =
        String.init 8 (fun i ->
            match i with
            | 0 -> '\x04'
            | 1 -> Char.chr (Rng.int rng 32)
            | 2 -> Char.chr ((len lsr 8) land 0xff)
            | 3 -> Char.chr (len land 0xff)
            | _ -> Char.chr (Rng.int rng 256))
      in
      hdr ^ body

let run_frames frames =
  let decoded = ref 0 and rejected = ref 0 and failures = ref [] in
  List.iter
    (fun frame ->
      match check_frame frame with
      | Ok () ->
          if Result.is_ok (Codec.decode_result frame) then incr decoded
          else incr rejected
      | Error f -> if List.length !failures < 10 then failures := f :: !failures)
    frames;
  {
    cases = List.length frames;
    decoded = !decoded;
    rejected = !rejected;
    failures = List.rev !failures;
  }

let run ~seed ~cases =
  let rng = Rng.create seed in
  run_frames (List.init cases (fun _ -> gen_case rng))

let run_corpus frames = run_frames frames

let pp_failure fmt f =
  Format.fprintf fmt "@[<v>codec fuzz failure: %s@,frame hex: %s@]" f.problem
    (Hex.encode f.frame)
