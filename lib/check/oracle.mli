(** The conformance oracle: a deliberately naive, spec-literal
    interpreter of an {!Openflow.Pipeline.t}.

    Classification is a plain priority scan over every entry of every
    table — no caches, no templates, no shortcuts — and instruction
    execution is re-implemented here from the documented pipeline
    semantics rather than shared with the production executor.  The
    oracle is therefore slow on purpose: its only job is to be obviously
    correct, so that {!Differential} can hold the three real dataplanes
    (and, transitively, the shared executor itself) to its answers.

    Like the real dataplanes, the oracle updates flow-entry counters and
    meter buckets as it goes, so a pipeline driven only by the oracle
    ages (idle timeouts, meter tokens) exactly like one driven by a
    backend — a precondition for lock-step differential runs. *)

val classify :
  Openflow.Pipeline.t ->
  table_id:int ->
  in_port:int ->
  Netpkt.Packet.Fields.t ->
  Openflow.Flow_entry.t option
(** Highest-priority matching entry of one table, by exhaustive scan;
    ties go to the entry added first. *)

val execute :
  Openflow.Pipeline.t ->
  now_ns:int ->
  in_port:int ->
  Netpkt.Packet.t ->
  Openflow.Pipeline.result
(** Walk the packet through the pipeline under oracle classification and
    oracle instruction execution. *)

val dataplane : Openflow.Pipeline.t -> Softswitch.Dataplane.t
(** The oracle wearing the standard dataplane interface (cycle cost 0 —
    it is a specification, not an implementation). *)
