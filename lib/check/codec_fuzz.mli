(** Fuzzing {!Openflow.Of_codec} for parse-totality and encode/decode
    stability.

    Every input byte string — random garbage, bit-flipped or truncated
    valid frames, frames with tampered length fields — must either
    decode or produce [Error]: any escaped exception is a codec bug.
    Inputs that do decode are additionally held to a re-encode fixpoint:
    with [m2 = decode (encode m)] and [m3 = decode (encode m2)],
    [m3 = m2] must hold.  (The first re-encode is allowed to normalize a
    non-canonical frame; after that the codec must be stable.) *)

type failure = {
  frame : string;      (** offending input, raw bytes *)
  problem : string;    (** what went wrong, e.g. the escaped exception *)
}

val check_frame : string -> (unit, failure) result
(** Apply the totality + fixpoint contract to one input. *)

type report = {
  cases : int;
  decoded : int;        (** inputs that parsed successfully *)
  rejected : int;       (** inputs cleanly rejected with [Error] *)
  failures : failure list;  (** contract violations, at most 10 kept *)
}

val run : seed:int -> cases:int -> report
(** Seeded mutation fuzzing: each case is a fresh random frame, a
    mutated/truncated encoding of a random valid message, or a valid
    frame with a corrupted header or inner length field. *)

val run_corpus : string list -> report
(** Replay pre-built inputs (the seed corpus) through {!check_frame} —
    run before random generation so known-tricky frames are always
    covered. *)

val gen_valid_message : Simnet.Rng.t -> Openflow.Of_message.t
(** A random well-formed message over every message type the codec
    supports — also used to seed mutation. *)

val pp_failure : Format.formatter -> failure -> unit
