(** Per-packet hop tracing: a span API every forwarding component
    emits into, a pluggable sink (default: none — untraced runs pay a
    single ref read per potential hop), and a collector that assembles
    emitted hops into per-packet traces.

    Correlation: packets are immutable values, copied and re-tagged as
    they cross the fabric, so hops correlate on {!key_of_packet} — a
    hash of the frame with its VLAN stack stripped.  The HARMLESS tag
    push/pop/rewrite path preserves the key; L3-header rewrites start a
    new trace and byte-identical frames share one.

    {2 Cycle model}

    Every emit site reports a modelled per-packet processing cost via
    [~cycles] — either a measured value, a fixed estimate, or an
    {e explicit} [0] meaning "free by design in this model", never an
    accidental default.  Costs are CPU-equivalent cycles at the trace
    clock (the PMD's configured frequency, 2.6 GHz by default; for the
    legacy ASIC they are CPU-equivalent figures, not real ASIC cycles).
    The current model:

    - Host [tx]/[rx]: [0] — endpoint stack cost is out of scope.
    - Legacy [ingress]: [90] (VLAN classify + MAC learn + lookup);
      [tag_push]/[tag_pop]: [12] each (one 802.1Q rewrite);
      [egress] (delivery that never carried a tag): [0].
    - Soft switch [rx]: the PMD's [per_packet_io_cycles] (50 by
      default), consistent with the capacity model;
      [pipeline]: the dataplane's {e measured} lookup cycles;
      [tx]: [20] (egress queueing); [punt]: [150] (Packet_in
      encapsulation); [standalone]: [120] (local L2 slow path);
      [drop] (rx ring full): [0] — the cost was never spent.
    - Controller [packet_in]/[packet_out]: [0] — control-plane CPU is
      not part of the datapath model (its latency shows up in
      sim-time, not cycles).

    Profile/flame-graph tooling treats [cycles = 0] as "no self cost",
    so stages stay visible in traces without skewing attribution. *)

type layer =
  | Host
  | Legacy       (** the legacy Ethernet switch dataplane *)
  | Switch       (** a software (or hardware-model) OpenFlow switch *)
  | Controller
  | Manager
  | Other of string

val layer_name : layer -> string

type hop = {
  seq : int;            (** global emission order, 1-based *)
  ts_ns : int;          (** sim-time timestamp *)
  component : string;   (** emitting node, e.g. ["legacy0"], ["sw-ss1"] *)
  layer : layer;
  stage : string;       (** e.g. ["ingress"], ["tag_push"], ["pipeline"] *)
  port : int option;    (** port involved, when meaningful *)
  trace_key : int;
  packet : string;      (** one-line packet rendering *)
  bytes : int;          (** wire size *)
  cycles : int;         (** processing cost, 0 when not modelled *)
  words : int;
      (** cumulative minor-heap words ([Gc.minor_words]) captured at
          emission; consecutive hops' deltas attribute real allocation
          to stages, exactly as timestamps attribute latency.  [0] in
          hand-built hops that never went through {!emit}. *)
  detail : string;
}

type sink = hop -> unit

val set_sink : sink option -> unit
(** Install ([Some f]) or remove ([None], the default) the process-wide
    sink. *)

val enabled : unit -> bool
(** True iff a sink is installed.  Instrumentation sites guard their
    emit (and any detail-string formatting) behind this. *)

val key_of_packet : Netpkt.Packet.t -> int
(** The VLAN-stack-invariant correlation key. *)

val emit :
  ts_ns:int -> component:string -> layer:layer -> stage:string ->
  ?port:int -> ?cycles:int -> ?detail:string -> Netpkt.Packet.t -> unit
(** Emit one hop to the current sink; a no-op (no allocation beyond the
    caller's arguments) when no sink is installed. *)

type trace = { key : int; hops : hop list }
(** One packet's life, hops ordered by [(ts_ns, seq)]. *)

(** A sink that accumulates hops for later assembly. *)
module Collector : sig
  type t

  val create : unit -> t

  val install : t -> unit
  (** Make this collector the process sink. *)

  val uninstall : t -> unit
  (** Remove the sink if this collector installed it. *)

  val clear : t -> unit
  val hops : t -> hop list
  (** In emission order. *)

  val traces : t -> trace list
  (** Hops grouped per packet, traces ordered by first appearance. *)
end

val with_collector : (Collector.t -> 'a) -> 'a * trace list
(** Run [f] with a fresh collector installed, restoring the previous
    sink afterwards (also on exceptions); returns [f]'s result and the
    assembled traces. *)

val pp_time : Format.formatter -> int -> unit
(** Nanoseconds, human-readable (["12.500us"]). *)

val pp_hop : Format.formatter -> hop -> unit
val pp_trace : Format.formatter -> trace -> unit
