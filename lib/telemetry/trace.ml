(* Per-packet hop tracing.

   Every instrumented component (host NIC, legacy switch, soft switch,
   controller) emits [hop] events into a process-wide sink.  The
   default sink is none at all: call sites guard with [enabled ()], so
   an untraced run pays one ref read per potential hop and allocates
   nothing.  A [Collector] sink accumulates hops and assembles them
   into per-packet traces.

   Packets are immutable values that get re-tagged and copied as they
   cross the fabric, so there is no identity to follow; hops correlate
   instead on a [trace_key]: a hash of the frame with its VLAN stack
   stripped.  Tag pushes, pops and VID rewrites — the HARMLESS data
   path — preserve the key.  Header rewrites (e.g. a load balancer
   changing the destination) start a new key, and two byte-identical
   frames share one; both are documented properties of the scheme. *)

type layer =
  | Host
  | Legacy
  | Switch
  | Controller
  | Manager
  | Other of string

let layer_name = function
  | Host -> "host"
  | Legacy -> "legacy"
  | Switch -> "switch"
  | Controller -> "controller"
  | Manager -> "manager"
  | Other s -> s

type hop = {
  seq : int;
  ts_ns : int;
  component : string;
  layer : layer;
  stage : string;
  port : int option;
  trace_key : int;
  packet : string;
  bytes : int;
  cycles : int;
  words : int;
  detail : string;
}

type sink = hop -> unit

let sink : sink option ref = ref None
let seq_counter = ref 0

let set_sink s = sink := s
let enabled () = Option.is_some !sink

let key_of_packet (pkt : Netpkt.Packet.t) =
  Hashtbl.hash (Netpkt.Packet.encode { pkt with Netpkt.Packet.vlans = [] })

let emit ~ts_ns ~component ~layer ~stage ?port ?(cycles = 0) ?(detail = "") pkt =
  match !sink with
  | None -> ()
  | Some f ->
      (* Captured before any of the emit machinery allocates, so
         consecutive hops' deltas tile the trace's end-to-end
         allocation — including the tracing tax itself. *)
      let words = int_of_float (Gc.minor_words ()) in
      incr seq_counter;
      f
        {
          seq = !seq_counter;
          ts_ns;
          component;
          layer;
          stage;
          port;
          trace_key = key_of_packet pkt;
          packet = Format.asprintf "%a" Netpkt.Packet.pp pkt;
          bytes = Netpkt.Packet.wire_size pkt;
          cycles;
          words;
          detail;
        };
      Alloc_probe.record "trace.emit" words

type trace = { key : int; hops : hop list }

module Collector = struct
  type t = { mutable rev_hops : hop list; mutable installed : bool }

  let create () = { rev_hops = []; installed = false }

  let record t hop = t.rev_hops <- hop :: t.rev_hops

  let install t =
    t.installed <- true;
    set_sink (Some (record t))

  let uninstall t =
    if t.installed then begin
      t.installed <- false;
      set_sink None
    end

  let clear t = t.rev_hops <- []
  let hops t = List.rev t.rev_hops

  let traces t =
    let ordered =
      List.stable_sort
        (fun a b ->
          match compare a.ts_ns b.ts_ns with 0 -> compare a.seq b.seq | c -> c)
        (hops t)
    in
    (* Group by key, keeping first-appearance order of the keys. *)
    let tbl : (int, hop list ref) Hashtbl.t = Hashtbl.create 16 in
    let key_order = ref [] in
    List.iter
      (fun hop ->
        match Hashtbl.find_opt tbl hop.trace_key with
        | Some cell -> cell := hop :: !cell
        | None ->
            Hashtbl.replace tbl hop.trace_key (ref [ hop ]);
            key_order := hop.trace_key :: !key_order)
      ordered;
    List.rev_map
      (fun key -> { key; hops = List.rev !(Hashtbl.find tbl key) })
      !key_order
end

let with_collector f =
  let c = Collector.create () in
  let saved = !sink in
  Collector.install c;
  Fun.protect ~finally:(fun () -> set_sink saved) (fun () ->
      let result = f c in
      (result, Collector.traces c))

(* ---- pretty-printing ---- *)

let pp_time fmt ns =
  if ns < 1_000 then Format.fprintf fmt "%dns" ns
  else if ns < 1_000_000 then Format.fprintf fmt "%.3fus" (float_of_int ns /. 1e3)
  else Format.fprintf fmt "%.3fms" (float_of_int ns /. 1e6)

let pp_hop fmt hop =
  Format.fprintf fmt "%-10s %-14s %-18s"
    (Format.asprintf "%a" pp_time hop.ts_ns)
    hop.component
    (layer_name hop.layer ^ "." ^ hop.stage);
  (match hop.port with
  | Some p -> Format.fprintf fmt " port=%-3d" p
  | None -> Format.fprintf fmt "         ");
  if hop.cycles > 0 then Format.fprintf fmt " %5d cyc" hop.cycles
  else Format.fprintf fmt "          ";
  if hop.detail <> "" then Format.fprintf fmt "  %s" hop.detail

let pp_trace fmt trace =
  (match trace.hops with
  | first :: _ ->
      Format.fprintf fmt "packet %08x: %s (%dB, %d hops)@." trace.key
        first.packet first.bytes (List.length trace.hops)
  | [] -> Format.fprintf fmt "packet %08x: (no hops)@." trace.key);
  List.iter (fun hop -> Format.fprintf fmt "  %a@." pp_hop hop) trace.hops
