(* Exact per-stage distributions.

   Samples are appended to growable int arrays per stage key;
   percentiles sort a copy on demand (profiles are read rarely and
   written per-trace, so the write path stays allocation-light and the
   read path stays exact).  Stage keys come from the span derivation,
   suffixed #2/#3/... on repeats within a trace so a stage key appears
   at most once per trace — that is what makes per-stage p50s sum to
   the e2e p50 on a homogeneous workload. *)

type stats = {
  count : int;
  p50 : int;
  p95 : int;
  p99 : int;
  mean : float;
  total : int;
}

type samples = { mutable data : int array; mutable len : int }

let samples_create () = { data = Array.make 16 0; len = 0 }

let samples_push s v =
  if s.len = Array.length s.data then begin
    let bigger = Array.make (2 * s.len) 0 in
    Array.blit s.data 0 bigger 0 s.len;
    s.data <- bigger
  end;
  s.data.(s.len) <- v;
  s.len <- s.len + 1

let nearest_rank sorted n p =
  if n = 0 then 0
  else
    let rank = int_of_float (ceil (p /. 100.0 *. float_of_int n)) in
    sorted.(max 0 (min (n - 1) (rank - 1)))

let stats_of samples =
  if samples.len = 0 then None
  else begin
    let sorted = Array.sub samples.data 0 samples.len in
    Array.sort compare sorted;
    let n = samples.len in
    let total = Array.fold_left ( + ) 0 sorted in
    Some
      {
        count = n;
        p50 = nearest_rank sorted n 50.0;
        p95 = nearest_rank sorted n 95.0;
        p99 = nearest_rank sorted n 99.0;
        mean = float_of_int total /. float_of_int n;
        total;
      }
  end

type t = {
  latency : (string, samples) Hashtbl.t;
  cycles : (string, samples) Hashtbl.t;
  alloc : (string, samples) Hashtbl.t;
  mutable stage_order : string list;  (* reversed first-appearance *)
  e2e_samples : samples;
  e2e_alloc_samples : samples;
  mutable traces : int;
}

let create () =
  {
    latency = Hashtbl.create 32;
    cycles = Hashtbl.create 32;
    alloc = Hashtbl.create 32;
    stage_order = [];
    e2e_samples = samples_create ();
    e2e_alloc_samples = samples_create ();
    traces = 0;
  }

let stage_samples t key =
  match Hashtbl.find_opt t.latency key with
  | Some s -> s
  | None ->
      let s = samples_create () in
      Hashtbl.replace t.latency key s;
      t.stage_order <- key :: t.stage_order;
      s

let cycle_samples t key =
  match Hashtbl.find_opt t.cycles key with
  | Some s -> s
  | None ->
      let s = samples_create () in
      Hashtbl.replace t.cycles key s;
      s

let alloc_samples t key =
  match Hashtbl.find_opt t.alloc key with
  | Some s -> s
  | None ->
      let s = samples_create () in
      Hashtbl.replace t.alloc key s;
      s

let record_trace ?stage_of t trace =
  match Span.of_trace ?stage_of trace with
  | [] -> ()
  | root :: children ->
      t.traces <- t.traces + 1;
      samples_push t.e2e_samples (Span.duration_ns root);
      samples_push t.e2e_alloc_samples (Span.alloc_words root);
      (* Leaves only: stage spans (have a component) and transit spans;
         visit spans would double-count their stages. *)
      let parents = Hashtbl.create 16 in
      List.iter
        (fun (s : Span.t) ->
          match s.Span.parent with
          | Some p -> Hashtbl.replace parents p ()
          | None -> ())
        children;
      let seen = Hashtbl.create 16 in
      List.iter
        (fun (s : Span.t) ->
          if not (Hashtbl.mem parents s.Span.id) then begin
            let occurrence =
              match Hashtbl.find_opt seen s.Span.name with
              | None ->
                  Hashtbl.replace seen s.Span.name 1;
                  1
              | Some k ->
                  Hashtbl.replace seen s.Span.name (k + 1);
                  k + 1
            in
            let key =
              if occurrence = 1 then s.Span.name
              else Printf.sprintf "%s#%d" s.Span.name occurrence
            in
            samples_push (stage_samples t key) (Span.duration_ns s);
            samples_push (alloc_samples t key) (Span.alloc_words s);
            if s.Span.cycles > 0 then
              samples_push (cycle_samples t key) s.Span.cycles
          end)
        children

let record_traces ?stage_of t traces =
  List.iter (record_trace ?stage_of t) traces

let traces_recorded t = t.traces
let stages t = List.rev t.stage_order

let stage_stats t ~stage =
  Option.bind (Hashtbl.find_opt t.latency stage) stats_of

let stage_cycles t ~stage =
  Option.bind (Hashtbl.find_opt t.cycles stage) stats_of

let stage_alloc t ~stage =
  Option.bind (Hashtbl.find_opt t.alloc stage) stats_of

let e2e t = stats_of t.e2e_samples
let e2e_alloc t = stats_of t.e2e_alloc_samples

let p50_sum_ns t =
  List.fold_left
    (fun acc stage ->
      match stage_stats t ~stage with Some s -> acc + s.p50 | None -> acc)
    0 (stages t)

let alloc_p50_sum_words t =
  List.fold_left
    (fun acc stage ->
      match stage_alloc t ~stage with Some s -> acc + s.p50 | None -> acc)
    0 (stages t)

let publish ?(registry = Registry.default) ?(prefix = "harmless") t =
  let observe_all name ?labels samples =
    let h = Registry.Histogram.v ~registry ?labels name in
    for i = 0 to samples.len - 1 do
      Registry.Histogram.observe h samples.data.(i)
    done
  in
  List.iter
    (fun stage ->
      (match Hashtbl.find_opt t.latency stage with
      | Some s ->
          observe_all
            (prefix ^ "_stage_latency_ns")
            ~labels:[ ("stage", stage) ]
            s
      | None -> ());
      (match Hashtbl.find_opt t.cycles stage with
      | Some s ->
          observe_all (prefix ^ "_stage_cycles") ~labels:[ ("stage", stage) ] s
      | None -> ());
      match Hashtbl.find_opt t.alloc stage with
      | Some s ->
          observe_all
            (prefix ^ "_stage_alloc_words")
            ~labels:[ ("stage", stage) ]
            s
      | None -> ())
    (stages t);
  observe_all (prefix ^ "_e2e_latency_ns") t.e2e_samples;
  observe_all (prefix ^ "_e2e_alloc_words") t.e2e_alloc_samples

(* ---- the attribution table ---- *)

let pp_ns ns =
  if ns < 1_000 then Printf.sprintf "%dns" ns
  else if ns < 1_000_000 then Printf.sprintf "%.2fus" (float_of_int ns /. 1e3)
  else Printf.sprintf "%.3fms" (float_of_int ns /. 1e6)

let pp_words w = Printf.sprintf "%dw" w

let attribution_table t =
  let buf = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let sum = p50_sum_ns t in
  add "%-28s %6s %10s %10s %10s %7s %8s\n" "stage" "count" "p50" "p95" "p99"
    "share" "wds/pkt";
  add "%s\n" (String.make 85 '-');
  List.iter
    (fun stage ->
      match stage_stats t ~stage with
      | None -> ()
      | Some s ->
          let share =
            if sum = 0 then 0.0
            else 100.0 *. float_of_int s.p50 /. float_of_int sum
          in
          add "%-28s %6d %10s %10s %10s %6.1f%% %8s\n" stage s.count
            (pp_ns s.p50) (pp_ns s.p95) (pp_ns s.p99) share
            (match stage_alloc t ~stage with
            | Some a -> pp_words a.p50
            | None -> "-"))
    (stages t);
  add "%s\n" (String.make 85 '-');
  (match e2e t with
  | None -> add "no traces recorded\n"
  | Some e ->
      let cover =
        if e.p50 = 0 then 100.0
        else 100.0 *. float_of_int sum /. float_of_int e.p50
      in
      add "%-28s %6d %10s %10s %10s %7s %8s\n" "end-to-end (measured)" e.count
        (pp_ns e.p50) (pp_ns e.p95) (pp_ns e.p99) ""
        (match e2e_alloc t with
        | Some a -> pp_words a.p50
        | None -> "-");
      add "stage p50 sum %s attributes %.1f%% of the measured e2e p50 %s\n"
        (pp_ns sum) cover (pp_ns e.p50);
      match e2e_alloc t with
      | Some a when a.p50 > 0 ->
          let asum = alloc_p50_sum_words t in
          add
            "stage alloc p50 sum %s attributes %.1f%% of the measured e2e \
             alloc p50 %s\n"
            (pp_words asum)
            (100.0 *. float_of_int asum /. float_of_int a.p50)
            (pp_words a.p50)
      | Some _ | None -> ());
  Buffer.contents buf
