include Alloc_probe

type site_stats = { count : int; p50 : int; p95 : int; max : int; total : int }

let nearest_rank sorted n p =
  if n = 0 then 0
  else
    let rank = int_of_float (ceil (p /. 100.0 *. float_of_int n)) in
    sorted.(Stdlib.max 0 (Stdlib.min (n - 1) (rank - 1)))

let stats t site =
  match samples t site with
  | [||] -> None
  | data ->
      let sorted = Array.copy data in
      Array.sort compare sorted;
      let n = Array.length sorted in
      Some
        {
          count = n;
          p50 = nearest_rank sorted n 50.0;
          p95 = nearest_rank sorted n 95.0;
          max = sorted.(n - 1);
          total = Array.fold_left ( + ) 0 sorted;
        }

let table t =
  let buf = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "%-20s %8s %10s %10s %10s %12s\n" "site" "count" "p50(w)" "p95(w)"
    "max(w)" "total(w)";
  add "%s\n" (String.make 75 '-');
  let grand = ref 0 in
  List.iter
    (fun site ->
      match stats t site with
      | None -> ()
      | Some s ->
          grand := !grand + s.total;
          add "%-20s %8d %10d %10d %10d %12d\n" site s.count s.p50 s.p95 s.max
            s.total)
    (sites t);
  add "%s\n" (String.make 75 '-');
  add "%d probe samples, %d words recorded\n" (count t) !grand;
  Buffer.contents buf

let publish ?(registry = Registry.default) ?(prefix = "harmless") t =
  List.iter
    (fun site ->
      let h =
        Registry.Histogram.v ~registry
          ~labels:[ ("site", site) ]
          (prefix ^ "_alloc_words")
      in
      Array.iter (fun w -> Registry.Histogram.observe h w) (samples t site))
    (sites t)
