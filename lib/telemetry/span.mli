(** Causal spans over the hop stream: turn a packet's flat hop list
    into a tree of timed intervals.

    {!Trace} hops are point events — "this packet was seen at this
    component, in this stage, at this sim-time".  For cost attribution
    a point is not enough: the question is {e how long} the packet
    spent in each stage.  This module derives intervals from the hop
    timestamps: a hop's stage span begins at its timestamp and ends at
    the next hop of the same packet (the last hop gets a zero-width
    span — it marks delivery or drop, not residency).

    The derived tree has three levels plus synthetic transit spans:

    - a root [packet] span covering first-hop → last-hop;
    - one {e visit} span per maximal run of consecutive hops emitted by
      the same component ([h0], [legacy0], [sw-ss1], …);
    - one {e stage} span per hop inside its visit;
    - a [transit:<from>-><to>] span for every gap between two visits —
      wire time on the links, which would otherwise vanish from the
      attribution.  Host endpoints collapse to the role name ["host"]
      in transit names, so a workload spread over many host pairs
      yields one transit key per link role rather than one per host —
      the summation invariant below needs that.

    By construction the stage and transit spans exactly tile the root:
    their durations sum to the packet's end-to-end latency.  That
    invariant is what lets {!Profile} attribute e2e latency to named
    stages without residue.

    Exporters: Chrome trace-event async ["b"]/["e"] pairs (load the file
    in chrome://tracing or Perfetto; spans nest under their packet
    track) and flamegraph.pl-compatible collapsed stacks (feed to
    [flamegraph.pl] or paste into speedscope.app), both deterministic
    for a deterministic trace. *)

type t = {
  id : int;  (** unique within one [of_trace]/[of_traces] call, 1-based *)
  parent : int option;  (** [None] for the root packet span *)
  trace_key : int;  (** the {!Trace.trace} this span came from *)
  name : string;
      (** root: ["packet"]; visits: the component name; stages: the
          stage label (see [stage_of]); transits: ["transit:a->b"] *)
  component : string;  (** emitting component; root/transit: [""] *)
  begin_ns : int;
  end_ns : int;  (** [>= begin_ns]; zero-width spans are allowed *)
  begin_words : int;
      (** cumulative minor words at span start (see {!Trace.hop}'s
          [words]); derived exactly like the timestamps, so stage and
          transit spans tile the root's allocation too *)
  end_words : int;
  cycles : int;  (** summed modelled cycles of the covered hops *)
  detail : string;
}

val duration_ns : t -> int

val alloc_words : t -> int
(** Minor words allocated during the span, [end_words - begin_words]
    clamped at 0 ([0] throughout for hand-built hops that never carried
    a counter). *)

val of_trace :
  ?stage_of:(Trace.hop -> string option) -> Trace.trace -> t list
(** The span tree of one packet, in preorder (root first, children in
    time order).  [stage_of] names the stage spans — default
    [layer.stage], e.g. ["legacy.tag_push"]; returning [None] falls
    back to the default.  An empty trace yields [[]]. *)

val of_traces :
  ?stage_of:(Trace.hop -> string option) -> Trace.trace list -> t list
(** {!of_trace} over every trace, with globally unique span ids. *)

val chrome_events : t list -> Json.t list
(** Async ["b"]/["e"] event pairs (plus one thread-name metadata event
    per component), ready to splice into a Chrome trace-event array —
    see {!Chrome_trace.to_json}'s [spans] argument.  Timestamps are
    sim-time microseconds; ids are per-packet so concurrent packets
    render as separate async tracks. *)

val to_collapsed : t list -> string
(** Collapsed-stack (flamegraph.pl) rendering: one
    ["packet;<component>;<stage> <ns>"] line per leaf span, aggregated
    over every packet (values sum), lines sorted — deterministic.  The
    sample value is the span's duration in nanoseconds, so the flame
    graph's x-axis is sim time. *)

val save_collapsed : t list -> path:string -> unit
(** Write {!to_collapsed} to [path]. *)
