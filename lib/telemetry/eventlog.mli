(** The control-plane flight recorder: an always-installable, bounded
    ring of typed, leveled, sim-time-stamped events with one stream per
    subsystem, carrying a {e correlation id} that joins related events
    across subsystems — and, because the id space is shared with
    {!Trace.key_of_packet}, joins control-plane decisions to the
    dataplane traffic that triggered them.

    Like {!Trace}, the default state is {e off}: no recorder installed,
    and a call site guarded by {!enabled} pays one ref read and
    allocates exactly zero minor words (pinned by test).  Installing a
    recorder turns every instrumented subsystem — channel
    connect/drop/reconnect, retry attempts, WAL appends, migration
    stage boundaries, failover activations, poller rounds, fault
    injections, alert transitions — into a correlated event log whose
    memory is bounded per stream no matter how long the run is.

    {2 Correlation ids}

    Ids are plain ints.  [0] means "uncorrelated".  Instrumentation
    derives ids deterministically from stable names via
    {!corr_of_string} (a migration machine uses its txn id, a channel
    its switch name, an alert rule its rule name), so a same-seed rerun
    produces the same ids — the post-mortem determinism contract.
    Packet-correlated events use {!Trace.key_of_packet} directly, which
    is what makes event↔span joins work in the Chrome trace export.

    {2 Clock}

    [emit] sites that know their engine pass [~ts_ns] explicitly.
    Sites with no time source (the synchronous retry loop, WAL appends)
    fall back to the process-wide clock installed with {!set_clock};
    with no clock installed their events are stamped [0].  Rigs that
    record set the clock to their engine for the duration of the run. *)

type level = Debug | Info | Warn | Error

val level_name : level -> string
(** ["debug"], ["info"], ["warn"], ["error"]. *)

val level_of_string : string -> level option

type event = {
  seq : int;  (** per-recorder emission order, 1-based *)
  ts_ns : int;
  level : level;
  stream : string;  (** emitting subsystem, a token: ["channel"], ["txn"], … *)
  name : string;  (** short verb token: ["reconnect"], ["rollback"], … *)
  corr : int;  (** correlation id; [0] = uncorrelated *)
  detail : string;  (** free text, single line *)
}

type t

val create : ?stream_capacity:int -> unit -> t
(** A fresh recorder.  Each stream keeps at most [stream_capacity]
    events (default 512); older ones are evicted and counted in
    {!dropped}.  @raise Invalid_argument if [stream_capacity < 2]. *)

val install : t -> unit
(** Make [t] the process-wide recorder. *)

val uninstall : t -> unit
(** Remove the recorder if [t] is the one installed. *)

val enabled : unit -> bool
(** True iff a recorder is installed.  Instrumentation sites guard
    their emit (and any detail-string formatting) behind this. *)

val set_clock : (unit -> int) option -> unit
(** Install ([Some f]) or remove the fallback timestamp source used by
    {!emit} when [~ts_ns] is not passed. *)

val corr_of_string : string -> int
(** A stable, non-zero correlation id for a name.  Same hash family as
    {!Trace.key_of_packet}, so the two id spaces render identically. *)

val fresh_corr : unit -> int
(** A process-unique id for events with no stable name to hash.
    Prefer {!corr_of_string} wherever a name exists — fresh ids are
    not stable across runs. *)

val emit :
  ?level:level ->
  ?ts_ns:int ->
  ?corr:int ->
  ?detail:string ->
  stream:string ->
  string ->
  unit
(** [emit ~stream name] records one event ([level] defaults to [Info],
    [corr] to [0]); a no-op when no recorder is installed.  Newlines in
    [detail] become spaces (events are single lines).
    @raise Invalid_argument if [stream] or [name] is empty or contains
    whitespace — they must be tokens. *)

val events : ?stream:string -> ?min_level:level -> t -> event list
(** The retained events, merged across streams in emission order
    ([(ts_ns, seq)]), optionally restricted to one stream and/or to
    levels at or above [min_level]. *)

val streams : t -> string list
(** Streams that have recorded at least one event, sorted. *)

val recorded : t -> int
(** Events ever emitted into this recorder, including evicted ones. *)

val dropped : t -> int
(** Events evicted by ring wrap-around. *)

val clear : t -> unit

val with_recorder : ?stream_capacity:int -> (t -> 'a) -> 'a * event list
(** Run [f] with a fresh recorder installed, restoring the previous
    one afterwards (also on exceptions); returns [f]'s result and the
    retained events. *)

val event_to_string : event -> string
(** ["event <seq> <ts_ns> <level> <stream> <corr-hex8> <name> [detail]"]
    — the snapshot line format, parsed back by {!event_of_string}. *)

val event_of_string : string -> (event, string) result

val pp_event : Format.formatter -> event -> unit
(** Human-readable: time, level, stream.name, corr, detail. *)
