(** Bench-result trajectory: parse [bench --json] snapshots, append
    them to a JSONL history store, and compare runs with
    noise-tolerant thresholds — the regression gate behind
    [harmlessctl perf report/diff/check].

    A {e snapshot} is one bench run: the ["harmless-bench/1"] JSON
    document `bench --json` writes ([{schema; quick; results: [{name;
    ns_per_run; r_square; runs}]}]).  The history store is one snapshot
    per line (schema ["harmless-bench-history/1"], the same object plus
    a [label]), append-only, keyed by the benchmark names inside —
    [group/test] strings like ["lookup/eswitch-1000"].

    Comparison is deliberately tolerant: wall-clock microbenchmarks on
    shared CI runners are noisy, so a test only counts as {e regressed}
    when the current estimate exceeds
    [baseline * (1 + rel) + abs_ns] — a relative band plus an absolute
    floor that keeps sub-nanosecond benches from tripping the gate on
    scheduler jitter.  [quick_tolerant] widens both for [--quick]
    runs. *)

type row = {
  name : string;  (** ["group/test"] *)
  ns_per_run : float option;  (** [None] when the estimate was null *)
  r_square : float option;
  runs : int;
}

type snapshot = {
  quick : bool;
  label : string;  (** empty for plain [bench --json] snapshots *)
  rows : row list;
}

val snapshot_of_string : string -> (snapshot, string) result
(** Parse one snapshot document (either schema). *)

val snapshot_to_history_line : ?label:string -> snapshot -> string
(** One ["harmless-bench-history/1"] JSONL line, no trailing newline. *)

val load_snapshot : path:string -> (snapshot, string) result
(** Read a [.json] snapshot {e or} a [.jsonl] history file — for a
    history file, the newest (last) entry. *)

val append : path:string -> ?label:string -> snapshot -> unit
(** Append the snapshot to the JSONL store at [path] (created if
    missing). *)

val load_history : path:string -> (snapshot list, string) result
(** Every entry, oldest first.  Blank lines are skipped; a malformed
    line is an error. *)

(** {2 Comparison} *)

type thresholds = { rel : float; abs_ns : float }

val default_thresholds : thresholds
(** [{rel = 0.15; abs_ns = 2.0}] — full-quota runs. *)

val quick_tolerant : thresholds
(** [{rel = 0.60; abs_ns = 25.0}] — [--quick] runs measure for ~20 ms
    per bench and jitter hard; the gate only catches step changes. *)

type verdict =
  | Steady  (** within the noise band *)
  | Regressed
  | Improved
  | Added  (** no baseline entry *)
  | Removed  (** no current entry *)
  | No_data  (** an estimate was null on either side *)

type comparison = {
  cname : string;
  baseline_ns : float option;
  current_ns : float option;
  ratio : float option;  (** current / baseline when both are present *)
  cverdict : verdict;
}

val diff :
  ?thresholds:thresholds -> baseline:snapshot -> current:snapshot ->
  unit -> comparison list
(** Row-wise comparison, sorted by name — deterministic for given
    inputs. *)

val regressions : comparison list -> comparison list

val render_table : comparison list -> string
(** Deterministic text table (name, baseline, current, ratio,
    verdict), regressions flagged, followed by a one-line summary. *)
