(** Bench-result trajectory: parse [bench --json] snapshots, append
    them to a JSONL history store, and compare runs with
    noise-tolerant thresholds — the regression gate behind
    [harmlessctl perf report/diff/check].

    A {e snapshot} is one bench run: the ["harmless-bench/2"] JSON
    document `bench --json` writes ([{schema; quick; results: [{name;
    ns_per_run; minor_words_per_run; r_square; runs}]}]).  The history
    store is one snapshot per line (schema ["harmless-bench-history/2"],
    the same object plus a [label]), append-only, keyed by the benchmark
    names inside — [group/test] strings like ["lookup/eswitch-1000"].
    The v1 schemas (no [minor_words_per_run]) still parse; their alloc
    columns read as [None] and compare as {!No_data}.

    Comparison is deliberately tolerant: wall-clock microbenchmarks on
    shared CI runners are noisy, so a test only counts as {e regressed}
    when the current estimate exceeds
    [baseline * (1 + rel) + abs_ns] — a relative band plus an absolute
    floor that keeps sub-nanosecond benches from tripping the gate on
    scheduler jitter.  Allocation estimates get their own (tighter)
    band: words/run is a property of the code path, not the scheduler,
    so [alloc_rel]/[alloc_abs_words] can gate harder than wall clock.
    [quick_tolerant] widens all four for [--quick] runs.  A regression
    on {e either} axis makes the overall verdict [Regressed] — alloc
    regressions gate exactly like latency regressions. *)

type row = {
  name : string;  (** ["group/test"] *)
  ns_per_run : float option;  (** [None] when the estimate was null *)
  minor_words_per_run : float option;
      (** minor-heap words allocated per run; [None] for v1 rows *)
  r_square : float option;
  runs : int;
}

type snapshot = {
  quick : bool;
  label : string;  (** empty for plain [bench --json] snapshots *)
  rows : row list;
}

val snapshot_of_string : string -> (snapshot, string) result
(** Parse one snapshot document (either schema). *)

val snapshot_to_history_line : ?label:string -> snapshot -> string
(** One ["harmless-bench-history/2"] JSONL line, no trailing newline. *)

val load_snapshot : path:string -> (snapshot, string) result
(** Read a [.json] snapshot {e or} a [.jsonl] history file — for a
    history file, the newest (last) entry. *)

val append : path:string -> ?label:string -> snapshot -> unit
(** Append the snapshot to the JSONL store at [path] (created if
    missing). *)

val load_history : path:string -> (snapshot list, string) result
(** Every entry, oldest first.  Blank lines are skipped; a malformed
    line is an error. *)

(** {2 Comparison} *)

type thresholds = {
  rel : float;  (** relative band on ns/run *)
  abs_ns : float;  (** absolute floor on ns/run *)
  alloc_rel : float;  (** relative band on minor words/run *)
  alloc_abs_words : float;  (** absolute floor on minor words/run *)
}

val default_thresholds : thresholds
(** [{rel = 0.15; abs_ns = 2.0; alloc_rel = 0.10; alloc_abs_words =
    8.0}] — full-quota runs. *)

val quick_tolerant : thresholds
(** [{rel = 0.60; abs_ns = 25.0; alloc_rel = 0.25; alloc_abs_words =
    64.0}] — [--quick] runs measure for ~20 ms per bench and jitter
    hard; the gate only catches step changes.  The alloc band stays
    tighter than the time band because allocation counts barely
    jitter. *)

type verdict =
  | Steady  (** within the noise band *)
  | Regressed
  | Improved
  | Added  (** no baseline entry *)
  | Removed  (** no current entry *)
  | No_data  (** an estimate was null on either side *)

type comparison = {
  cname : string;
  baseline_ns : float option;
  current_ns : float option;
  ratio : float option;  (** current / baseline when both are present *)
  baseline_words : float option;
  current_words : float option;
  words_ratio : float option;
  time_verdict : verdict;  (** the ns/run axis alone *)
  alloc_verdict : verdict;  (** the words/run axis alone *)
  cverdict : verdict;
      (** overall: [Regressed] if either axis regressed, else the
          strongest of the two signals ([No_data] only when both are) *)
}

val diff :
  ?thresholds:thresholds -> baseline:snapshot -> current:snapshot ->
  unit -> comparison list
(** Row-wise comparison, sorted by name — deterministic for given
    inputs. *)

val regressions : comparison list -> comparison list

val render_table : comparison list -> string
(** Deterministic text table (name, baseline, current, ratio,
    verdict), regressions flagged, followed by a one-line summary. *)
