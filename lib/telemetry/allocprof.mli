(** Per-site allocation attribution: the telemetry-side face of the
    {!Alloc_probe} library.

    Instrumented hot paths (netpkt decode/encode, dataplane lookup,
    the translator, PMD submission, [Trace.emit], engine dispatch)
    bracket themselves with {!mark}/{!record}; installing a recorder
    turns those brackets into per-site minor-words histograms, and this
    module folds a recorder into exact percentile stats, a
    deterministic text table, and registry histograms — the memory
    mirror of {!Profile}'s latency attribution.

    All of {!Alloc_probe} is re-exported, so call sites inside
    libraries that already depend on telemetry can use
    [Telemetry.Allocprof.mark]/[record] directly; only the bottom of
    the dependency graph (netpkt) needs the raw library. *)

include module type of Alloc_probe
(** @inline *)

type site_stats = {
  count : int;
  p50 : int;  (** words, exact nearest-rank *)
  p95 : int;
  max : int;
  total : int;  (** summed words across all samples *)
}

val stats : t -> string -> site_stats option
(** Exact stats for one site; [None] for an unknown site. *)

val table : t -> string
(** Deterministic text table: one row per site (first-appearance
    order) with count, p50/p95/max words per call and total words, and
    a footer with the grand total. *)

val publish : ?registry:Registry.t -> ?prefix:string -> t -> unit
(** Mirror every site's samples into registry histograms
    [<prefix>_alloc_words{site=…}] (prefix default ["harmless"]). *)
