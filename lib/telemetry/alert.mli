(** Declarative alerting over metrics and time series — the SLO layer
    of the monitoring plane.

    A rule names an {!input} (a {!Timeseries.t} or any sampled read-out,
    e.g. a registry gauge), a {!condition} over it, and a [for_]
    duration the condition must hold before the rule {e fires} — the
    Prometheus pending→firing shape, evaluated deterministically on the
    simulation clock.

    {!eval} walks every rule, advances its state machine and appends
    any transition to an evaluation log; {!breaches} turns a rule's log
    into closed/open firing windows, which is what chaos reports and
    the dashboard surface as "SLO breach windows".  Everything is a
    pure function of the evaluation timestamps and the observed values,
    so a seeded run always yields the same log. *)

(** Where a rule reads its value. *)
type input =
  | Series of Timeseries.t
      (** condition applies to the newest point (or, for rate/absence
          conditions, the recent window) *)
  | Sampled of (int -> float option)
      (** called with [now_ns] at each evaluation; [None] means "no
          data", which only the {!Absent} condition matches *)

type condition =
  | Above of float  (** value > threshold *)
  | Below of float  (** value < threshold *)
  | Rate_above of { per_second : float; window : int }
      (** counter growth rate over [window] ns exceeds [per_second];
          series inputs only *)
  | Rate_below of { per_second : float; window : int }
  | Absent of { window : int }
      (** series: no point recorded in the last [window] ns;
          sampled: the sample is [None] *)

type state = Ok | Pending of { since_ns : int } | Firing of { since_ns : int }

type transition = {
  at_ns : int;
  rule : string;
  from_state : string;  (** ["ok"], ["pending"] or ["firing"] *)
  to_state : string;
  value : float option;  (** the observed value, when there was one *)
}

type t

val create : unit -> t

val add_rule :
  t -> name:string -> ?for_:int -> ?help:string -> input -> condition -> unit
(** Register a rule.  [for_] (default 0) is how long, in nanoseconds,
    the condition must hold before [Pending] becomes [Firing].
    @raise Invalid_argument on a duplicate rule name or negative
    [for_]. *)

val eval : t -> now_ns:int -> unit
(** Evaluate every rule at [now_ns], in registration order.
    @raise Invalid_argument if [now_ns] precedes a prior evaluation. *)

val rules : t -> string list
(** Registration order. *)

val state : t -> string -> state
(** @raise Not_found for an unknown rule. *)

val firing : t -> string list
(** Rules currently firing, in registration order. *)

val log : t -> transition list
(** Every state transition so far, oldest first. *)

val breaches : t -> string -> (int * int option) list
(** The rule's firing windows as [(fired_at, resolved_at)] pairs,
    oldest first; [None] = still firing at the latest evaluation. *)

val evaluations : t -> int

val pp_state : Format.formatter -> state -> unit
val pp_transition : Format.formatter -> transition -> unit

val pp : Format.formatter -> t -> unit
(** One line per rule: name, state, since-when. *)
