(* GC counters as time series; the real-runtime read is isolated in
   [sample] so everything else stays deterministic and testable. *)

type t = {
  minor_collections : Timeseries.t;
  major_collections : Timeseries.t;
  promoted_words : Timeseries.t;
  heap_words : Timeseries.t;
  allocated_words : Timeseries.t;
  mutable count : int;
}

let create ?(capacity = 1024) () =
  let series name = Timeseries.create ~capacity ~name () in
  {
    minor_collections = series "gc_minor_collections";
    major_collections = series "gc_major_collections";
    promoted_words = series "gc_promoted_words";
    heap_words = series "gc_heap_words";
    allocated_words = series "gc_allocated_words";
    count = 0;
  }

let observe t ~ts_ns ~minor_collections ~major_collections ~promoted_words
    ~heap_words ~allocated_words =
  Timeseries.record t.minor_collections ~ts_ns (float_of_int minor_collections);
  Timeseries.record t.major_collections ~ts_ns (float_of_int major_collections);
  Timeseries.record t.promoted_words ~ts_ns promoted_words;
  Timeseries.record t.heap_words ~ts_ns (float_of_int heap_words);
  Timeseries.record t.allocated_words ~ts_ns allocated_words;
  t.count <- t.count + 1

let bytes_per_word = float_of_int (Sys.word_size / 8)

let sample t ~ts_ns =
  let q = Gc.quick_stat () in
  observe t ~ts_ns ~minor_collections:q.Gc.minor_collections
    ~major_collections:q.Gc.major_collections
    ~promoted_words:q.Gc.promoted_words ~heap_words:q.Gc.heap_words
    ~allocated_words:(Gc.allocated_bytes () /. bytes_per_word)

let samples t = t.count

let minor_collections_series t = t.minor_collections
let major_collections_series t = t.major_collections
let promoted_words_series t = t.promoted_words
let heap_words_series t = t.heap_words
let allocated_words_series t = t.allocated_words

let alloc_rate t ~now_ns ~window =
  Timeseries.rate_over t.allocated_words ~now_ns ~window

let add_alloc_rate_rule t alerts ?(name = "gc-alloc-rate") ?for_
    ~words_per_second ~window () =
  Alert.add_rule alerts ~name ?for_
    ~help:"sustained minor+major allocation rate (words/s)"
    (Alert.Series t.allocated_words)
    (Alert.Rate_above { per_second = words_per_second; window })

let words_str w =
  if w >= 1e9 then Printf.sprintf "%.1fGw" (w /. 1e9)
  else if w >= 1e6 then Printf.sprintf "%.1fMw" (w /. 1e6)
  else if w >= 1e3 then Printf.sprintf "%.1fkw" (w /. 1e3)
  else Printf.sprintf "%.0fw" w

let panel t ~now_ns ~window =
  let last series =
    match Timeseries.last series with Some (_, v) -> v | None -> 0.
  in
  Printf.sprintf
    "gc: %d samples, alloc rate %s/s, minor/major collections %.0f/%.0f, \
     promoted %s, heap %s\n"
    t.count
    (match alloc_rate t ~now_ns ~window with
    | Some r -> words_str (Float.max 0. r)
    | None -> "-")
    (last t.minor_collections) (last t.major_collections)
    (words_str (last t.promoted_words))
    (words_str (last t.heap_words))
