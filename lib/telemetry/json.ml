(* Minimal JSON value model and printer: enough for the metrics and
   trace exporters without pulling in a JSON dependency.  Output is
   deterministic (fields print in the order given) so exports can be
   pinned by golden tests. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let float_repr f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else Printf.sprintf "%.12g" f

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_repr f)
  | Str s ->
      Buffer.add_char buf '"';
      Buffer.add_string buf (escape s);
      Buffer.add_char buf '"'
  | Arr items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          write buf item)
        items;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_char buf '"';
          Buffer.add_string buf (escape k);
          Buffer.add_string buf "\":";
          write buf v)
        fields;
      Buffer.add_char buf '}'

let to_string t =
  let buf = Buffer.create 256 in
  write buf t;
  Buffer.contents buf

(* ---- parsing ----

   A strict recursive-descent parser for the same value model; enough
   to read back our own exports (bench snapshots, history lines)
   without a JSON dependency.  Numbers with a '.', exponent, or too
   many digits for an int become [Float]; everything else integral
   becomes [Int]. *)

exception Parse_error of string

let parse_error fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

type parser_state = { src : string; mutable pos : int }

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let advance st = st.pos <- st.pos + 1

let skip_ws st =
  let rec go () =
    match peek st with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance st;
        go ()
    | _ -> ()
  in
  go ()

let expect st c =
  match peek st with
  | Some d when d = c -> advance st
  | Some d -> parse_error "expected '%c' at offset %d, found '%c'" c st.pos d
  | None -> parse_error "expected '%c' at offset %d, found end of input" c st.pos

let literal st word value =
  let n = String.length word in
  if
    st.pos + n <= String.length st.src
    && String.sub st.src st.pos n = word
  then begin
    st.pos <- st.pos + n;
    value
  end
  else parse_error "invalid literal at offset %d" st.pos

let parse_string_body st =
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> parse_error "unterminated string at offset %d" st.pos
    | Some '"' -> advance st
    | Some '\\' -> (
        advance st;
        match peek st with
        | None -> parse_error "unterminated escape at offset %d" st.pos
        | Some c ->
            advance st;
            (match c with
            | '"' -> Buffer.add_char buf '"'
            | '\\' -> Buffer.add_char buf '\\'
            | '/' -> Buffer.add_char buf '/'
            | 'b' -> Buffer.add_char buf '\b'
            | 'f' -> Buffer.add_char buf '\012'
            | 'n' -> Buffer.add_char buf '\n'
            | 'r' -> Buffer.add_char buf '\r'
            | 't' -> Buffer.add_char buf '\t'
            | 'u' ->
                if st.pos + 4 > String.length st.src then
                  parse_error "truncated \\u escape at offset %d" st.pos
                else begin
                  let hex = String.sub st.src st.pos 4 in
                  st.pos <- st.pos + 4;
                  match int_of_string_opt ("0x" ^ hex) with
                  | None -> parse_error "bad \\u escape %S" hex
                  | Some code when code < 0x80 ->
                      Buffer.add_char buf (Char.chr code)
                  | Some code ->
                      (* Re-encode the BMP code point as UTF-8. *)
                      if code < 0x800 then begin
                        Buffer.add_char buf (Char.chr (0xc0 lor (code lsr 6)));
                        Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3f)))
                      end
                      else begin
                        Buffer.add_char buf (Char.chr (0xe0 lor (code lsr 12)));
                        Buffer.add_char buf
                          (Char.chr (0x80 lor ((code lsr 6) land 0x3f)));
                        Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3f)))
                      end
                end
            | c -> parse_error "bad escape '\\%c'" c);
            go ())
    | Some c ->
        advance st;
        Buffer.add_char buf c;
        go ()
  in
  go ();
  Buffer.contents buf

let parse_number st =
  let start = st.pos in
  let is_float = ref false in
  let rec go () =
    match peek st with
    | Some ('0' .. '9' | '-' | '+') ->
        advance st;
        go ()
    | Some ('.' | 'e' | 'E') ->
        is_float := true;
        advance st;
        go ()
    | _ -> ()
  in
  go ();
  let text = String.sub st.src start (st.pos - start) in
  if !is_float then
    match float_of_string_opt text with
    | Some f -> Float f
    | None -> parse_error "bad number %S at offset %d" text start
  else
    match int_of_string_opt text with
    | Some i -> Int i
    | None -> (
        match float_of_string_opt text with
        | Some f -> Float f
        | None -> parse_error "bad number %S at offset %d" text start)

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> parse_error "unexpected end of input at offset %d" st.pos
  | Some 'n' -> literal st "null" Null
  | Some 't' -> literal st "true" (Bool true)
  | Some 'f' -> literal st "false" (Bool false)
  | Some '"' ->
      advance st;
      Str (parse_string_body st)
  | Some ('-' | '0' .. '9') -> parse_number st
  | Some '[' ->
      advance st;
      skip_ws st;
      if peek st = Some ']' then begin
        advance st;
        Arr []
      end
      else begin
        let rec items acc =
          let v = parse_value st in
          skip_ws st;
          match peek st with
          | Some ',' ->
              advance st;
              items (v :: acc)
          | Some ']' ->
              advance st;
              List.rev (v :: acc)
          | _ -> parse_error "expected ',' or ']' at offset %d" st.pos
        in
        Arr (items [])
      end
  | Some '{' ->
      advance st;
      skip_ws st;
      if peek st = Some '}' then begin
        advance st;
        Obj []
      end
      else begin
        let field () =
          skip_ws st;
          expect st '"';
          let k = parse_string_body st in
          skip_ws st;
          expect st ':';
          let v = parse_value st in
          (k, v)
        in
        let rec fields acc =
          let kv = field () in
          skip_ws st;
          match peek st with
          | Some ',' ->
              advance st;
              fields (kv :: acc)
          | Some '}' ->
              advance st;
              List.rev (kv :: acc)
          | _ -> parse_error "expected ',' or '}' at offset %d" st.pos
        in
        Obj (fields [])
      end
  | Some c -> parse_error "unexpected character '%c' at offset %d" c st.pos

let of_string s =
  let st = { src = s; pos = 0 } in
  match parse_value st with
  | v ->
      skip_ws st;
      if st.pos <> String.length s then
        Error (Printf.sprintf "trailing garbage at offset %d" st.pos)
      else Ok v
  | exception Parse_error msg -> Error msg

(* ---- accessors ---- *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_float_opt = function
  | Int i -> Some (float_of_int i)
  | Float f -> Some f
  | _ -> None

let to_int_opt = function Int i -> Some i | _ -> None
let to_string_opt = function Str s -> Some s | _ -> None
let to_bool_opt = function Bool b -> Some b | _ -> None
let to_list_opt = function Arr items -> Some items | _ -> None

(* Pretty printer with one array element (or object field) per line;
   used for the Chrome trace export so the file diffs readably. *)
let to_string_lines = function
  | Arr items ->
      let buf = Buffer.create 1024 in
      Buffer.add_string buf "[";
      List.iteri
        (fun i item ->
          Buffer.add_string buf (if i > 0 then ",\n " else "\n ");
          write buf item)
        items;
      Buffer.add_string buf "\n]";
      Buffer.contents buf
  | other -> to_string other
