(** Unified metrics registry: named, labelled counters, gauges and
    HDR-style histograms with Prometheus-text and JSON exposition.

    This generalizes the per-component tallies scattered through the
    tree (per-node [Simnet.Stats] counters, soft-switch stats lists,
    controller counts) into one process-wide namespace.  Collection is
    pull-based — components expose [publish_metrics] snapshots — so the
    registry costs nothing on packet hot paths.

    Registering the same [name]+[labels] pair twice returns the same
    underlying series; registering one name under two different metric
    kinds raises [Invalid_argument]. *)

type t
(** A registry: an independent namespace of metric families. *)

type labels = (string * string) list
(** Label pairs; order does not matter (they are normalized sorted).
    Label names must match [[a-zA-Z_][a-zA-Z0-9_]*]; ["quantile"] is
    reserved for the summary exposition. *)

val create : unit -> t

val default : t
(** The process-wide registry used when [?registry] is omitted. *)

(** Monotonic counters. *)
module Counter : sig
  type reg := t
  type t

  val v : ?registry:reg -> ?help:string -> ?labels:labels -> string -> t
  (** Find-or-create the series for [name]+[labels].
      @raise Invalid_argument on a malformed name/labels or a kind
      mismatch with an existing family. *)

  val inc : ?by:int -> t -> unit
  (** @raise Invalid_argument if [by] is negative. *)

  val value : t -> int
end

(** Instantaneous values (floats; [set_int] for convenience). *)
module Gauge : sig
  type reg := t
  type t

  val v : ?registry:reg -> ?help:string -> ?labels:labels -> string -> t
  val set : t -> float -> unit
  val add : t -> float -> unit
  val set_int : t -> int -> unit
  val value : t -> float
end

(** Log-bucketed value distributions (~6% relative error), the same
    bucketing as [Simnet.Stats.Histogram].  Samples are non-negative
    ints (nanoseconds or cycles by convention). *)
module Histogram : sig
  type reg := t
  type t

  val v : ?registry:reg -> ?help:string -> ?labels:labels -> string -> t

  val observe : t -> int -> unit
  (** @raise Invalid_argument on a negative sample. *)

  val count : t -> int
  val sum : t -> float
  val mean : t -> float

  val percentile : t -> float -> int
  (** @raise Invalid_argument when empty or p outside (0, 100]. *)
end

val reset : t -> unit
(** Zero every series (registrations and label sets survive). *)

val clear : t -> unit
(** Drop every family; existing handles become dangling snapshots. *)

val to_prometheus : t -> string
(** Prometheus text exposition format.  Families sort by name, series
    by labels; histograms render as summaries (quantile 0.5/0.9/0.99
    plus [_sum] and [_count]). *)

val to_json : t -> string
(** Same content as {!to_prometheus} as one deterministic JSON object:
    [{"metrics":[{"name";"type";"help";"series":[{"labels";"value"}]}]}]. *)

val publish_ints :
  ?registry:t -> prefix:string -> ?help:string -> ?labels:labels ->
  (string * int) list -> unit
(** Snapshot a component's [(name, value)] stats list into gauges named
    [prefix ^ "_" ^ name] (non-alphanumeric characters of [name] map to
    ['_']).  This is the bridge the per-component [publish_metrics]
    hooks use. *)
