type input = Series of Timeseries.t | Sampled of (int -> float option)

type condition =
  | Above of float
  | Below of float
  | Rate_above of { per_second : float; window : int }
  | Rate_below of { per_second : float; window : int }
  | Absent of { window : int }

type state = Ok | Pending of { since_ns : int } | Firing of { since_ns : int }

type transition = {
  at_ns : int;
  rule : string;
  from_state : string;
  to_state : string;
  value : float option;
}

type rule = {
  rule_name : string;
  input : input;
  condition : condition;
  for_ : int;
  help : string;
  mutable state : state;
}

type t = {
  mutable rules : rule list;  (* registration order *)
  mutable log : transition list;  (* newest first *)
  mutable evals : int;
  mutable last_eval_ns : int;
}

let create () = { rules = []; log = []; evals = 0; last_eval_ns = -1 }

let add_rule t ~name ?(for_ = 0) ?(help = "") input condition =
  if for_ < 0 then invalid_arg "Alert.add_rule: negative for_";
  if List.exists (fun r -> String.equal r.rule_name name) t.rules then
    invalid_arg (Printf.sprintf "Alert.add_rule: duplicate rule %S" name);
  (match (input, condition) with
  | Sampled _, (Rate_above _ | Rate_below _) ->
      invalid_arg "Alert.add_rule: rate conditions need a Series input"
  | _ -> ());
  t.rules <-
    t.rules @ [ { rule_name = name; input; condition; for_; help; state = Ok } ]

(* The observed value a condition judges (and the log records). *)
let observe rule ~now_ns =
  match rule.input with
  | Sampled f -> f now_ns
  | Series s -> (
      match rule.condition with
      | Above _ | Below _ | Absent _ ->
          Option.map snd (Timeseries.last s)
      | Rate_above { window; _ } | Rate_below { window; _ } ->
          Timeseries.rate_over s ~now_ns ~window)

let condition_holds rule ~now_ns value =
  match rule.condition with
  | Above threshold -> ( match value with Some v -> v > threshold | None -> false)
  | Below threshold -> ( match value with Some v -> v < threshold | None -> false)
  | Rate_above { per_second; _ } -> (
      match value with Some v -> v > per_second | None -> false)
  | Rate_below { per_second; _ } -> (
      match value with Some v -> v < per_second | None -> false)
  | Absent { window } -> (
      match rule.input with
      | Sampled _ -> Option.is_none value
      | Series s -> (
          match Timeseries.newest_age s ~now_ns with
          | None -> true
          | Some age -> age > window))

let state_name = function
  | Ok -> "ok"
  | Pending _ -> "pending"
  | Firing _ -> "firing"

let transition t rule ~now_ns ~value next =
  if state_name rule.state <> state_name next then begin
    t.log <-
      {
        at_ns = now_ns;
        rule = rule.rule_name;
        from_state = state_name rule.state;
        to_state = state_name next;
        value;
      }
      :: t.log;
    if Eventlog.enabled () then
      Eventlog.emit
        ~level:
          (match next with
          | Firing _ -> Eventlog.Error
          | Pending _ -> Eventlog.Warn
          | Ok -> Eventlog.Info)
        ~ts_ns:now_ns
        ~corr:(Eventlog.corr_of_string rule.rule_name)
        ~detail:
          (match value with
          | None -> rule.rule_name
          | Some v -> Printf.sprintf "%s value=%g" rule.rule_name v)
        ~stream:"alert" (state_name next)
  end;
  rule.state <- next

let eval_rule t rule ~now_ns =
  let value = observe rule ~now_ns in
  let holds = condition_holds rule ~now_ns value in
  match (rule.state, holds) with
  | Ok, true ->
      if rule.for_ = 0 then
        transition t rule ~now_ns ~value (Firing { since_ns = now_ns })
      else transition t rule ~now_ns ~value (Pending { since_ns = now_ns })
  | Pending { since_ns }, true ->
      if now_ns - since_ns >= rule.for_ then
        transition t rule ~now_ns ~value (Firing { since_ns = now_ns })
  | Firing _, true -> ()
  | Ok, false -> ()
  | (Pending _ | Firing _), false -> transition t rule ~now_ns ~value Ok

let eval t ~now_ns =
  if now_ns < t.last_eval_ns then
    invalid_arg "Alert.eval: clock went backwards";
  t.last_eval_ns <- now_ns;
  t.evals <- t.evals + 1;
  List.iter (fun rule -> eval_rule t rule ~now_ns) t.rules

let rules t = List.map (fun r -> r.rule_name) t.rules

let find t name =
  match List.find_opt (fun r -> String.equal r.rule_name name) t.rules with
  | Some r -> r
  | None -> raise Not_found

let state t name = (find t name).state

let firing t =
  List.filter_map
    (fun r -> match r.state with Firing _ -> Some r.rule_name | _ -> None)
    t.rules

let log t = List.rev t.log
let evaluations t = t.evals

let breaches t name =
  ignore (find t name);
  (* oldest-first transitions; collect firing-entry / firing-exit pairs *)
  let windows, open_ =
    List.fold_left
      (fun (done_, open_) tr ->
        if not (String.equal tr.rule name) then (done_, open_)
        else
          match (open_, String.equal tr.to_state "firing") with
          | None, true -> (done_, Some tr.at_ns)
          | Some started, false when String.equal tr.from_state "firing" ->
              ((started, Some tr.at_ns) :: done_, None)
          | open_, _ -> (done_, open_))
      ([], None) (List.rev t.log)
  in
  let windows =
    match open_ with
    | Some started -> (started, None) :: windows
    | None -> windows
  in
  List.rev windows

let pp_time ppf ns =
  if ns >= 1_000_000 then Format.fprintf ppf "%.3fms" (float_of_int ns /. 1e6)
  else if ns >= 1_000 then Format.fprintf ppf "%.3fus" (float_of_int ns /. 1e3)
  else Format.fprintf ppf "%dns" ns

let pp_state ppf = function
  | Ok -> Format.pp_print_string ppf "ok"
  | Pending { since_ns } ->
      Format.fprintf ppf "pending since %a" pp_time since_ns
  | Firing { since_ns } -> Format.fprintf ppf "FIRING since %a" pp_time since_ns

let pp_transition ppf tr =
  Format.fprintf ppf "%a  %-24s %s -> %s%s" pp_time tr.at_ns tr.rule
    tr.from_state tr.to_state
    (match tr.value with
    | None -> ""
    | Some v -> Printf.sprintf "  (value %g)" v)

let pp ppf t =
  Format.pp_open_vbox ppf 0;
  List.iter
    (fun r -> Format.fprintf ppf "%-24s %a@," r.rule_name pp_state r.state)
    t.rules;
  Format.pp_close_box ppf ()
