(* Unified process-wide metrics registry.

   Generalizes the per-component counters scattered through the tree
   (Simnet.Stats counters, soft-switch stats lists, controller tallies)
   into one named, labelled namespace with Prometheus-text and JSON
   exposition.  Collection is pull-based: components expose
   [publish_metrics] functions that snapshot their internal tallies into
   a registry, so nothing on a packet hot path ever touches a hashtable
   here. *)

type labels = (string * string) list

let is_valid_name name =
  name <> ""
  && (match name.[0] with 'a' .. 'z' | 'A' .. 'Z' | '_' | ':' -> true | _ -> false)
  && String.for_all
       (function 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> true | _ -> false)
       name

let is_valid_label_name name =
  name <> ""
  && (match name.[0] with 'a' .. 'z' | 'A' .. 'Z' | '_' -> true | _ -> false)
  && String.for_all
       (function 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> true | _ -> false)
       name

let check_name name =
  if not (is_valid_name name) then
    invalid_arg (Printf.sprintf "Telemetry.Registry: invalid metric name %S" name)

let normalize_labels labels =
  List.iter
    (fun (k, _) ->
      if not (is_valid_label_name k) then
        invalid_arg (Printf.sprintf "Telemetry.Registry: invalid label name %S" k);
      if k = "quantile" then
        invalid_arg "Telemetry.Registry: label name \"quantile\" is reserved")
    labels;
  let sorted = List.sort (fun (a, _) (b, _) -> String.compare a b) labels in
  let rec dup = function
    | (a, _) :: ((b, _) :: _ as rest) ->
        if String.equal a b then
          invalid_arg (Printf.sprintf "Telemetry.Registry: duplicate label %S" a)
        else dup rest
    | _ -> ()
  in
  dup sorted;
  sorted

(* HDR-style log-bucketed histogram: values 0..63 exact, then 16
   sub-buckets per power of two (<= ~6% relative error) — the same
   scheme Simnet.Stats.Histogram uses, rebuilt here so layers below
   simnet can record into a registry too. *)
module Hdr = struct
  let sub_buckets = 16
  let linear_limit = 64
  let bucket_count = linear_limit + (64 * sub_buckets)

  type t = {
    counts : int array;
    mutable total : int;
    mutable vmin : int;
    mutable vmax : int;
    mutable sum : float;
  }

  let create () =
    { counts = Array.make bucket_count 0; total = 0; vmin = max_int; vmax = 0; sum = 0.0 }

  let index_of v =
    if v < linear_limit then v
    else
      let rec high_bit n acc = if n <= 1 then acc else high_bit (n lsr 1) (acc + 1) in
      let h = high_bit v 0 in
      let sub = (v lsr (h - 4)) land (sub_buckets - 1) in
      linear_limit + (((h - 6) * sub_buckets) + sub)

  let value_of idx =
    if idx < linear_limit then idx
    else
      let idx = idx - linear_limit in
      let h = (idx / sub_buckets) + 6 in
      let sub = idx mod sub_buckets in
      ((sub_buckets + sub) lsl (h - 4)) + ((1 lsl (h - 4)) - 1)

  let observe t v =
    if v < 0 then invalid_arg "Telemetry histogram: negative sample";
    let idx = index_of v in
    t.counts.(idx) <- t.counts.(idx) + 1;
    t.total <- t.total + 1;
    if v < t.vmin then t.vmin <- v;
    if v > t.vmax then t.vmax <- v;
    t.sum <- t.sum +. float_of_int v

  let count t = t.total
  let sum t = t.sum
  let mean t = if t.total = 0 then 0.0 else t.sum /. float_of_int t.total

  let percentile t p =
    if t.total = 0 then invalid_arg "Telemetry histogram: percentile of empty";
    if p <= 0.0 || p > 100.0 then invalid_arg "Telemetry histogram: bad percentile";
    let target = int_of_float (ceil (p /. 100.0 *. float_of_int t.total)) in
    let acc = ref 0 and result = ref t.vmax and found = ref false in
    (try
       for i = 0 to bucket_count - 1 do
         acc := !acc + t.counts.(i);
         if !acc >= target then begin
           result := Stdlib.min (value_of i) t.vmax;
           found := true;
           raise Exit
         end
       done
     with Exit -> ());
    if !found then Stdlib.max !result t.vmin else t.vmax

  let reset t =
    Array.fill t.counts 0 bucket_count 0;
    t.total <- 0;
    t.vmin <- max_int;
    t.vmax <- 0;
    t.sum <- 0.0
end

type kind = Counter_kind | Gauge_kind | Histogram_kind

type value =
  | Counter_v of int ref
  | Gauge_v of float ref
  | Histogram_v of Hdr.t

type family = {
  fam_name : string;
  help : string;
  kind : kind;
  mutable series : (labels * value) list; (* insertion order *)
}

type t = {
  families : (string, family) Hashtbl.t;
  mutable order : string list; (* reverse insertion order *)
}

let create () = { families = Hashtbl.create 32; order = [] }
let default = create ()

let kind_name = function
  | Counter_kind -> "counter"
  | Gauge_kind -> "gauge"
  | Histogram_kind -> "histogram"

let family t ~kind ~help name =
  check_name name;
  match Hashtbl.find_opt t.families name with
  | Some fam ->
      if fam.kind <> kind then
        invalid_arg
          (Printf.sprintf
             "Telemetry.Registry: metric %S already registered as a %s" name
             (kind_name fam.kind));
      fam
  | None ->
      let fam = { fam_name = name; help; kind; series = [] } in
      Hashtbl.replace t.families name fam;
      t.order <- name :: t.order;
      fam

let series fam ~labels ~(make : unit -> value) =
  match List.assoc_opt labels fam.series with
  | Some v -> v
  | None ->
      let v = make () in
      fam.series <- fam.series @ [ (labels, v) ];
      v

module Counter = struct
  type nonrec t = int ref

  let v ?(registry = default) ?(help = "") ?(labels = []) name =
    let labels = normalize_labels labels in
    let fam = family registry ~kind:Counter_kind ~help name in
    match series fam ~labels ~make:(fun () -> Counter_v (ref 0)) with
    | Counter_v r -> r
    | Gauge_v _ | Histogram_v _ -> assert false

  let inc ?(by = 1) t =
    if by < 0 then invalid_arg "Telemetry.Counter.inc: negative increment";
    t := !t + by

  let value t = !t
end

module Gauge = struct
  type nonrec t = float ref

  let v ?(registry = default) ?(help = "") ?(labels = []) name =
    let labels = normalize_labels labels in
    let fam = family registry ~kind:Gauge_kind ~help name in
    match series fam ~labels ~make:(fun () -> Gauge_v (ref 0.0)) with
    | Gauge_v r -> r
    | Counter_v _ | Histogram_v _ -> assert false

  let set t x = t := x
  let add t x = t := !t +. x
  let set_int t x = t := float_of_int x
  let value t = !t
end

module Histogram = struct
  type nonrec t = Hdr.t

  let v ?(registry = default) ?(help = "") ?(labels = []) name =
    let labels = normalize_labels labels in
    let fam = family registry ~kind:Histogram_kind ~help name in
    match series fam ~labels ~make:(fun () -> Histogram_v (Hdr.create ())) with
    | Histogram_v h -> h
    | Counter_v _ | Gauge_v _ -> assert false

  let observe = Hdr.observe
  let count = Hdr.count
  let sum = Hdr.sum
  let mean = Hdr.mean
  let percentile = Hdr.percentile
end

let reset t =
  Hashtbl.iter
    (fun _ fam ->
      List.iter
        (fun (_, v) ->
          match v with
          | Counter_v r -> r := 0
          | Gauge_v r -> r := 0.0
          | Histogram_v h -> Hdr.reset h)
        fam.series)
    t.families

let clear t =
  Hashtbl.reset t.families;
  t.order <- []

(* ---- exposition ---- *)

let sorted_families t =
  List.sort String.compare (List.rev t.order)
  |> List.filter_map (Hashtbl.find_opt t.families)

let sorted_series fam =
  List.sort
    (fun (a, _) (b, _) ->
      List.compare (fun (k1, v1) (k2, v2) ->
          match String.compare k1 k2 with 0 -> String.compare v1 v2 | c -> c)
        a b)
    fam.series

let float_repr = Json.float_repr

let render_labels buf labels =
  if labels <> [] then begin
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_string buf k;
        Buffer.add_string buf "=\"";
        Buffer.add_string buf (Json.escape v);
        Buffer.add_char buf '"')
      labels;
    Buffer.add_char buf '}'
  end

let quantiles = [ (50.0, "0.5"); (90.0, "0.9"); (99.0, "0.99") ]

let to_prometheus t =
  let buf = Buffer.create 1024 in
  let line name labels value =
    Buffer.add_string buf name;
    render_labels buf labels;
    Buffer.add_char buf ' ';
    Buffer.add_string buf value;
    Buffer.add_char buf '\n'
  in
  List.iter
    (fun fam ->
      if fam.help <> "" then
        Buffer.add_string buf (Printf.sprintf "# HELP %s %s\n" fam.fam_name fam.help);
      (* HDR histograms export as Prometheus summaries (pre-computed
         quantiles), which keeps the exposition small. *)
      let type_name =
        match fam.kind with
        | Counter_kind -> "counter"
        | Gauge_kind -> "gauge"
        | Histogram_kind -> "summary"
      in
      Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" fam.fam_name type_name);
      List.iter
        (fun (labels, v) ->
          match v with
          | Counter_v r -> line fam.fam_name labels (string_of_int !r)
          | Gauge_v r -> line fam.fam_name labels (float_repr !r)
          | Histogram_v h ->
              if Hdr.count h > 0 then
                List.iter
                  (fun (p, q) ->
                    line fam.fam_name
                      (labels @ [ ("quantile", q) ])
                      (string_of_int (Hdr.percentile h p)))
                  quantiles;
              line (fam.fam_name ^ "_sum") labels (float_repr (Hdr.sum h));
              line (fam.fam_name ^ "_count") labels (string_of_int (Hdr.count h)))
        (sorted_series fam))
    (sorted_families t);
  Buffer.contents buf

let to_json t =
  let series_json kind (labels, v) =
    let labels_obj = Json.Obj (List.map (fun (k, s) -> (k, Json.Str s)) labels) in
    let value =
      match v with
      | Counter_v r -> Json.Int !r
      | Gauge_v r -> Json.Float !r
      | Histogram_v h ->
          let base = [ ("count", Json.Int (Hdr.count h)); ("sum", Json.Float (Hdr.sum h)) ] in
          let qs =
            if Hdr.count h = 0 then []
            else
              [
                ("mean", Json.Float (Hdr.mean h));
                ("p50", Json.Int (Hdr.percentile h 50.0));
                ("p90", Json.Int (Hdr.percentile h 90.0));
                ("p99", Json.Int (Hdr.percentile h 99.0));
              ]
          in
          Json.Obj (base @ qs)
    in
    ignore kind;
    Json.Obj [ ("labels", labels_obj); ("value", value) ]
  in
  let fam_json fam =
    Json.Obj
      [
        ("name", Json.Str fam.fam_name);
        ("type", Json.Str (kind_name fam.kind));
        ("help", Json.Str fam.help);
        ("series", Json.Arr (List.map (series_json fam.kind) (sorted_series fam)));
      ]
  in
  Json.to_string (Json.Obj [ ("metrics", Json.Arr (List.map fam_json (sorted_families t))) ])

(* Snapshot a component's [(name, int)] stats list into gauges, e.g.
   [publish_ints reg ~prefix:"softswitch" ~labels:["switch","ss1"] stats]. *)
let publish_ints ?(registry = default) ~prefix ?(help = "") ?(labels = []) stats =
  List.iter
    (fun (name, v) ->
      let metric_name =
        prefix ^ "_"
        ^ String.map
            (function
              | ('a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_') as c -> c
              | _ -> '_')
            name
      in
      Gauge.set_int (Gauge.v ~registry ~help ~labels metric_name) v)
    stats
