(** Tiny dependency-free JSON printer used by the exposition formats.
    Deterministic output: fields print exactly in the order given. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val escape : string -> string
(** JSON string-body escaping (no surrounding quotes). *)

val float_repr : float -> string
(** Deterministic float rendering: integral values print without a
    fraction, others with up to 12 significant digits. *)

val to_string : t -> string
(** Compact, single-line rendering. *)

val to_string_lines : t -> string
(** Like {!to_string} but a top-level array prints one element per
    line, which keeps Chrome trace files reviewable. *)
