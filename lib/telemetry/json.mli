(** Tiny dependency-free JSON printer and parser used by the exposition
    formats and the bench-history store.  Deterministic output: fields
    print exactly in the order given. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val escape : string -> string
(** JSON string-body escaping (no surrounding quotes). *)

val float_repr : float -> string
(** Deterministic float rendering: integral values print without a
    fraction, others with up to 12 significant digits. *)

val to_string : t -> string
(** Compact, single-line rendering. *)

val to_string_lines : t -> string
(** Like {!to_string} but a top-level array prints one element per
    line, which keeps Chrome trace files reviewable. *)

val of_string : string -> (t, string) result
(** Strict parse of one JSON document (trailing whitespace allowed,
    trailing garbage is an error).  Numbers without ['.'] or an
    exponent that fit an OCaml [int] parse as [Int], all others as
    [Float]; [\u] escapes re-encode as UTF-8. *)

(** {2 Accessors} — shallow, [None] on shape mismatch. *)

val member : string -> t -> t option
(** Field of an [Obj]; [None] for missing fields and non-objects. *)

val to_float_opt : t -> float option
(** [Int] and [Float] both convert. *)

val to_int_opt : t -> int option
val to_string_opt : t -> string option
val to_bool_opt : t -> bool option
val to_list_opt : t -> t list option
