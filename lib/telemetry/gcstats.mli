(** Periodic GC sampling into the monitoring plane.

    A [Gcstats.t] is a bundle of {!Timeseries} — minor/major collection
    counters, promoted words, live heap words, cumulative allocated
    words — fed either from the real runtime ({!sample}, which reads
    [Gc.quick_stat]/[Gc.allocated_bytes]) or with explicit values
    ({!observe}, for deterministic tests).  Timestamps are sim-time
    nanoseconds, like every other series in the plane, so the same
    {!Alert} rate rules and dashboard renderers apply: the canonical
    rule is {!add_alloc_rate_rule}, a [Rate_above] watch on the
    allocated-words counter — sustained allocation pressure is the
    OCaml-wall-clock risk ROADMAP item 3 calls out at 10^7 events. *)

type t

val create : ?capacity:int -> unit -> t
(** Fresh, empty series (default capacity 1024 points each). *)

val sample : t -> ts_ns:int -> unit
(** Record one sample of the live runtime: [Gc.quick_stat] counters
    plus [Gc.allocated_bytes] converted to words.  Timestamps must be
    non-decreasing across calls. *)

val observe :
  t ->
  ts_ns:int ->
  minor_collections:int ->
  major_collections:int ->
  promoted_words:float ->
  heap_words:int ->
  allocated_words:float ->
  unit
(** Record explicit values — the deterministic feed for tests and
    goldens. *)

val samples : t -> int
(** Samples recorded so far. *)

(** {2 The series} — cumulative counters unless noted; read rates with
    {!Timeseries.rate_over}. *)

val minor_collections_series : t -> Timeseries.t
val major_collections_series : t -> Timeseries.t
val promoted_words_series : t -> Timeseries.t

val heap_words_series : t -> Timeseries.t
(** A gauge: major-heap size in words. *)

val allocated_words_series : t -> Timeseries.t
(** Cumulative words ever allocated (minor + direct major). *)

val alloc_rate : t -> now_ns:int -> window:int -> float option
(** Words allocated per second over the trailing window — the headline
    pressure number.  [None] until the window holds two samples. *)

val add_alloc_rate_rule :
  t ->
  Alert.t ->
  ?name:string ->
  ?for_:int ->
  words_per_second:float ->
  window:int ->
  unit ->
  unit
(** Register a [Rate_above] rule (default name ["gc-alloc-rate"]) on
    the allocated-words series: pending once the rate exceeds
    [words_per_second], firing after [for_] ns (default 0). *)

val panel : t -> now_ns:int -> window:int -> string
(** The dashboard GC panel, one line: sample count, alloc rate over
    [window], collection counters, promoted and heap words.  Renders
    live-runtime numbers when fed by {!sample} — deterministic only for
    an {!observe}-fed instance. *)
