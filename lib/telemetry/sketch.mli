(** Bounded-memory traffic sketches: the measurement substrate for
    fabric-scale flow telemetry.

    Exact per-flow state ({!Timeseries} per flow, one hash-table entry
    per talker) cannot scale to millions of hosts.  These summaries
    trade a provable, tunable accuracy loss for {e fixed} memory:

    - {!Cm} — count-min sketch: point queries over-estimate by at most
      [epsilon * total] with probability [1 - delta], in
      [O(1/epsilon * ln 1/delta)] counters;
    - {!Hll} — HyperLogLog cardinality estimator: relative error
      ~[1.04 / sqrt (2^p)] in [2^p] bytes;
    - {!Topk} — space-saving heavy-hitter list: at most [k] entries,
      every true heavy hitter with count above the eviction floor is
      present, and each reported count carries its own error bound.

    All three are deterministic (explicitly seeded mixing — never
    [Hashtbl.hash], so reports are byte-identical across runs and OCaml
    versions) and mergeable: [merge a b] equals the sketch of the
    concatenated streams, which is how per-switch summaries roll up
    into one fabric-wide view. *)

val mix : seed:int -> int -> int
(** The shared 63-bit finalizer (splitmix64-style).  Deterministic,
    allocation-free, result in [\[0, max_int\]]. *)

(** Count-min sketch over integer keys (use {!mix} or a flow hash to
    key arbitrary data).  Counters are plain [int]s; updates add
    non-negative increments. *)
module Cm : sig
  type t

  val create : seed:int -> epsilon:float -> delta:float -> t
  (** Width [ceil (e / epsilon)], depth [ceil (ln (1 / delta))].
      @raise Invalid_argument unless [0 < epsilon < 1] and
      [0 < delta < 1]. *)

  val seed : t -> int
  val epsilon : t -> float
  val delta : t -> float
  val width : t -> int
  val depth : t -> int

  val update : t -> key:int -> int -> unit
  (** Add [n >= 0] to [key].  Allocation-free.
      @raise Invalid_argument if [n < 0]. *)

  val query : t -> key:int -> int
  (** Estimated count: never under the true count, and over by at most
      [epsilon * total] with probability [1 - delta]. *)

  val total : t -> int
  (** Sum of all increments (the stream length [N] in the bound). *)

  val merge : t -> t -> t
  (** Counter-wise sum — exactly the sketch of the combined stream.
      @raise Invalid_argument unless seeds and dimensions agree. *)

  val equal : t -> t -> bool
  val memory_words : t -> int
  (** Heap footprint in words — a function of [epsilon]/[delta] only,
      independent of how many keys were fed in. *)
end

(** HyperLogLog cardinality estimator over integer keys. *)
module Hll : sig
  type t

  val create : seed:int -> p:int -> t
  (** [2^p] one-byte registers.  @raise Invalid_argument unless
      [4 <= p <= 16]. *)

  val seed : t -> int
  val p : t -> int

  val add : t -> int -> unit
  (** Observe a key (duplicates are free).  Allocation-free. *)

  val estimate : t -> float
  (** Estimated number of distinct keys, with linear-counting
      correction for small cardinalities.  Standard error is
      [1.04 / sqrt (2^p)] (0.8% at [p = 14]). *)

  val merge : t -> t -> t
  (** Register-wise max — exactly the sketch of the union.
      @raise Invalid_argument unless seeds and [p] agree. *)

  val equal : t -> t -> bool
  val memory_words : t -> int
end

(** Space-saving top-k heavy hitters (Metwally et al.) over string
    keys.  At most [k] entries live at any time; when full, the
    minimum entry is evicted and the newcomer inherits its count as an
    upper bound, recorded per-entry as [err]. *)
module Topk : sig
  type t

  val create : k:int -> t
  (** @raise Invalid_argument unless [k >= 1]. *)

  val k : t -> int
  val size : t -> int

  val observe : t -> key:string -> n:int -> unit
  (** Add [n >= 0] to [key], evicting the current minimum if [key] is
      new and the summary is full.  @raise Invalid_argument if
      [n < 0]. *)

  val floor : t -> int
  (** Upper bound on the count of any key {e not} in the summary (the
      largest evicted count, 0 if nothing was ever evicted).  Any true
      heavy hitter with count above [floor] is guaranteed present. *)

  val to_list : t -> (string * int * int) list
  (** [(key, count, err)] in total order: count desc, then key asc.
      The true count of [key] lies in [\[count - err, count\]]. *)

  val find : t -> string -> (int * int) option
  (** [(count, err)] for a tracked key. *)

  val merge : t -> t -> t
  (** Combine two summaries: counts sum, a key absent from one side
      contributes that side's {!floor} (added to the entry's error),
      then the union is re-truncated to the top [k].  When neither
      input ever evicted, the merge is exact.
      @raise Invalid_argument unless the two [k] agree. *)

  val equal : t -> t -> bool
  val memory_words : t -> int
  (** Upper bound on the heap footprint — a function of [k] and key
      lengths only. *)
end
