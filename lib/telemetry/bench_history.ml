(* Bench snapshots, the JSONL trajectory store, and the noise-tolerant
   comparison behind `harmlessctl perf`. *)

type row = {
  name : string;
  ns_per_run : float option;
  minor_words_per_run : float option;
  r_square : float option;
  runs : int;
}

type snapshot = { quick : bool; label : string; rows : row list }

let snapshot_schema = "harmless-bench/2"
let history_schema = "harmless-bench-history/2"

(* v1 documents (no minor_words_per_run) still load: their alloc
   columns read as None and diff against them yields No_data alloc
   verdicts, never a spurious regression. *)
let known_schemas =
  [
    snapshot_schema; history_schema; "harmless-bench/1";
    "harmless-bench-history/1";
  ]

(* ---- parsing ---- *)

let row_of_json j =
  match Json.member "name" j with
  | Some (Json.Str name) ->
      let fopt key = Option.bind (Json.member key j) Json.to_float_opt in
      Ok
        {
          name;
          ns_per_run = fopt "ns_per_run";
          minor_words_per_run = fopt "minor_words_per_run";
          r_square = fopt "r_square";
          runs =
            Option.value ~default:0
              (Option.bind (Json.member "runs" j) Json.to_int_opt);
        }
  | Some _ | None -> Error "result row without a \"name\" string"

let snapshot_of_json j =
  let ( let* ) = Result.bind in
  let* () =
    match Option.bind (Json.member "schema" j) Json.to_string_opt with
    | Some s when List.mem s known_schemas -> Ok ()
    | Some s -> Error (Printf.sprintf "unknown schema %S" s)
    | None -> Error "missing \"schema\""
  in
  let quick =
    Option.value ~default:false
      (Option.bind (Json.member "quick" j) Json.to_bool_opt)
  in
  let label =
    Option.value ~default:""
      (Option.bind (Json.member "label" j) Json.to_string_opt)
  in
  let* results =
    match Option.bind (Json.member "results" j) Json.to_list_opt with
    | Some items -> Ok items
    | None -> Error "missing \"results\" array"
  in
  let* rows =
    List.fold_left
      (fun acc item ->
        let* acc = acc in
        let* row = row_of_json item in
        Ok (row :: acc))
      (Ok []) results
  in
  Ok { quick; label; rows = List.rev rows }

let snapshot_of_string s =
  Result.bind (Json.of_string s) snapshot_of_json

(* ---- the JSONL store ---- *)

let num f = if Float.is_nan f then Json.Null else Json.Float f

let snapshot_to_history_line ?label snap =
  let label = Option.value label ~default:snap.label in
  Json.to_string
    (Json.Obj
       [
         ("schema", Json.Str history_schema);
         ("label", Json.Str label);
         ("quick", Json.Bool snap.quick);
         ( "results",
           Json.Arr
             (List.map
                (fun r ->
                  Json.Obj
                    [
                      ("name", Json.Str r.name);
                      ( "ns_per_run",
                        match r.ns_per_run with Some f -> num f | None -> Json.Null
                      );
                      ( "minor_words_per_run",
                        match r.minor_words_per_run with
                        | Some f -> num f
                        | None -> Json.Null );
                      ( "r_square",
                        match r.r_square with Some f -> num f | None -> Json.Null
                      );
                      ("runs", Json.Int r.runs);
                    ])
                snap.rows) );
       ])

let append ~path ?label snap =
  let oc = open_out_gen [ Open_append; Open_creat ] 0o644 path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (snapshot_to_history_line ?label snap);
      output_char oc '\n')

let load_history ~path =
  match In_channel.with_open_text path In_channel.input_all with
  | exception Sys_error msg -> Error msg
  | text ->
      let lines =
        List.filter
          (fun l -> String.trim l <> "")
          (String.split_on_char '\n' text)
      in
      List.fold_left
        (fun acc line ->
          Result.bind acc (fun snaps ->
              match snapshot_of_string line with
              | Ok s -> Ok (s :: snaps)
              | Error e -> Error (Printf.sprintf "bad history line: %s" e)))
        (Ok []) lines
      |> Result.map List.rev

let load_snapshot ~path =
  match In_channel.with_open_text path In_channel.input_all with
  | exception Sys_error msg -> Error msg
  | text -> (
      (* A snapshot file is one document; a history file is one per
         line — take the newest.  Try the whole file first so pretty-
         printed snapshots also load. *)
      match snapshot_of_string text with
      | Ok s -> Ok s
      | Error whole_err -> (
          match
            List.rev
              (List.filter
                 (fun l -> String.trim l <> "")
                 (String.split_on_char '\n' text))
          with
          | last :: _ -> (
              match snapshot_of_string last with
              | Ok s -> Ok s
              | Error _ -> Error whole_err)
          | [] -> Error "empty file"))

(* ---- comparison ---- *)

type thresholds = {
  rel : float;
  abs_ns : float;
  alloc_rel : float;
  alloc_abs_words : float;
}

let default_thresholds =
  { rel = 0.15; abs_ns = 2.0; alloc_rel = 0.10; alloc_abs_words = 8.0 }

let quick_tolerant =
  { rel = 0.60; abs_ns = 25.0; alloc_rel = 0.25; alloc_abs_words = 64.0 }

type verdict = Steady | Regressed | Improved | Added | Removed | No_data

type comparison = {
  cname : string;
  baseline_ns : float option;
  current_ns : float option;
  ratio : float option;
  baseline_words : float option;
  current_words : float option;
  words_ratio : float option;
  time_verdict : verdict;
  alloc_verdict : verdict;
  cverdict : verdict;
}

(* One dimension (time or alloc): Regressed/Improved/Steady against a
   relative band plus an absolute floor, No_data when either estimate
   is missing or non-positive. *)
let band_verdict ~rel ~abs b c =
  match (b, c) with
  | Some b_v, Some c_v when b_v > 0.0 ->
      let upper = (b_v *. (1.0 +. rel)) +. abs in
      let lower = (b_v *. (1.0 -. rel)) -. abs in
      if c_v > upper then Regressed
      else if c_v < lower then Improved
      else Steady
  | _ -> No_data

(* A regression on either axis is a regression; otherwise the strongest
   signal wins, and only all-No_data stays No_data. *)
let combine tv av =
  if tv = Regressed || av = Regressed then Regressed
  else if tv = Improved || av = Improved then Improved
  else if tv = Steady || av = Steady then Steady
  else No_data

let ratio_of b c =
  match (b, c) with
  | Some b_v, Some c_v when b_v > 0.0 -> Some (c_v /. b_v)
  | _ -> None

let diff ?(thresholds = default_thresholds) ~baseline ~current () =
  let module Smap = Map.Make (String) in
  let index snap =
    List.fold_left (fun m r -> Smap.add r.name r m) Smap.empty snap.rows
  in
  let base = index baseline and cur = index current in
  let names =
    Smap.fold (fun k _ acc -> Smap.add k () acc) base Smap.empty
    |> fun m -> Smap.fold (fun k _ acc -> Smap.add k () acc) cur m
  in
  Smap.fold
    (fun name () acc ->
      let b = Smap.find_opt name base and c = Smap.find_opt name cur in
      let bns = Option.bind b (fun r -> r.ns_per_run)
      and cns = Option.bind c (fun r -> r.ns_per_run)
      and bw = Option.bind b (fun r -> r.minor_words_per_run)
      and cw = Option.bind c (fun r -> r.minor_words_per_run) in
      let mk verdicts =
        let time_verdict, alloc_verdict, cverdict = verdicts in
        {
          cname = name;
          baseline_ns = bns;
          current_ns = cns;
          ratio = ratio_of bns cns;
          baseline_words = bw;
          current_words = cw;
          words_ratio = ratio_of bw cw;
          time_verdict;
          alloc_verdict;
          cverdict;
        }
      in
      let comparison =
        match (b, c) with
        | None, Some _ -> mk (Added, Added, Added)
        | Some _, None -> mk (Removed, Removed, Removed)
        | None, None -> assert false
        | Some _, Some _ ->
            let tv =
              band_verdict ~rel:thresholds.rel ~abs:thresholds.abs_ns bns cns
            in
            let av =
              band_verdict ~rel:thresholds.alloc_rel
                ~abs:thresholds.alloc_abs_words bw cw
            in
            mk (tv, av, combine tv av)
      in
      comparison :: acc)
    names []
  |> List.sort (fun a b -> String.compare a.cname b.cname)

let regressions comparisons =
  List.filter (fun c -> c.cverdict = Regressed) comparisons

let verdict_name = function
  | Steady -> "ok"
  | Regressed -> "REGRESSED"
  | Improved -> "improved"
  | Added -> "new"
  | Removed -> "gone"
  | No_data -> "no data"

let ns_str = function
  | None -> "-"
  | Some ns when Float.is_nan ns -> "-"
  | Some ns -> Printf.sprintf "%.1f" ns

let ratio_str = function
  | Some r -> Printf.sprintf "%.2fx" r
  | None -> "-"

(* The overall verdict, annotated with the regressing axis so a table
   line says not just that a benchmark regressed but in what. *)
let verdict_str c =
  match c.cverdict with
  | Regressed ->
      let axes =
        (if c.time_verdict = Regressed then [ "time" ] else [])
        @ if c.alloc_verdict = Regressed then [ "alloc" ] else []
      in
      Printf.sprintf "REGRESSED(%s)" (String.concat "+" axes)
  | v -> verdict_name v

let render_table comparisons =
  let buf = Buffer.create 2048 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "%-36s %12s %12s %7s %10s %10s %7s  %s\n" "benchmark" "baseline(ns)"
    "current(ns)" "ratio" "base(wds)" "cur(wds)" "ratio" "verdict";
  add "%s\n" (String.make 110 '-');
  List.iter
    (fun c ->
      add "%-36s %12s %12s %7s %10s %10s %7s  %s\n" c.cname
        (ns_str c.baseline_ns) (ns_str c.current_ns) (ratio_str c.ratio)
        (ns_str c.baseline_words) (ns_str c.current_words)
        (ratio_str c.words_ratio) (verdict_str c))
    comparisons;
  let count v = List.length (List.filter (fun c -> c.cverdict = v) comparisons) in
  add "%s\n" (String.make 110 '-');
  add
    "%d benchmarks: %d ok, %d regressed, %d improved, %d new, %d gone, %d no data\n"
    (List.length comparisons)
    (count Steady) (count Regressed) (count Improved) (count Added)
    (count Removed) (count No_data);
  Buffer.contents buf
