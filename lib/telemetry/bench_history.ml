(* Bench snapshots, the JSONL trajectory store, and the noise-tolerant
   comparison behind `harmlessctl perf`. *)

type row = {
  name : string;
  ns_per_run : float option;
  r_square : float option;
  runs : int;
}

type snapshot = { quick : bool; label : string; rows : row list }

let snapshot_schema = "harmless-bench/1"
let history_schema = "harmless-bench-history/1"

(* ---- parsing ---- *)

let row_of_json j =
  match Json.member "name" j with
  | Some (Json.Str name) ->
      let fopt key = Option.bind (Json.member key j) Json.to_float_opt in
      Ok
        {
          name;
          ns_per_run = fopt "ns_per_run";
          r_square = fopt "r_square";
          runs =
            Option.value ~default:0
              (Option.bind (Json.member "runs" j) Json.to_int_opt);
        }
  | Some _ | None -> Error "result row without a \"name\" string"

let snapshot_of_json j =
  let ( let* ) = Result.bind in
  let* () =
    match Option.bind (Json.member "schema" j) Json.to_string_opt with
    | Some s when s = snapshot_schema || s = history_schema -> Ok ()
    | Some s -> Error (Printf.sprintf "unknown schema %S" s)
    | None -> Error "missing \"schema\""
  in
  let quick =
    Option.value ~default:false
      (Option.bind (Json.member "quick" j) Json.to_bool_opt)
  in
  let label =
    Option.value ~default:""
      (Option.bind (Json.member "label" j) Json.to_string_opt)
  in
  let* results =
    match Option.bind (Json.member "results" j) Json.to_list_opt with
    | Some items -> Ok items
    | None -> Error "missing \"results\" array"
  in
  let* rows =
    List.fold_left
      (fun acc item ->
        let* acc = acc in
        let* row = row_of_json item in
        Ok (row :: acc))
      (Ok []) results
  in
  Ok { quick; label; rows = List.rev rows }

let snapshot_of_string s =
  Result.bind (Json.of_string s) snapshot_of_json

(* ---- the JSONL store ---- *)

let num f = if Float.is_nan f then Json.Null else Json.Float f

let snapshot_to_history_line ?label snap =
  let label = Option.value label ~default:snap.label in
  Json.to_string
    (Json.Obj
       [
         ("schema", Json.Str history_schema);
         ("label", Json.Str label);
         ("quick", Json.Bool snap.quick);
         ( "results",
           Json.Arr
             (List.map
                (fun r ->
                  Json.Obj
                    [
                      ("name", Json.Str r.name);
                      ( "ns_per_run",
                        match r.ns_per_run with Some f -> num f | None -> Json.Null
                      );
                      ( "r_square",
                        match r.r_square with Some f -> num f | None -> Json.Null
                      );
                      ("runs", Json.Int r.runs);
                    ])
                snap.rows) );
       ])

let append ~path ?label snap =
  let oc = open_out_gen [ Open_append; Open_creat ] 0o644 path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (snapshot_to_history_line ?label snap);
      output_char oc '\n')

let load_history ~path =
  match In_channel.with_open_text path In_channel.input_all with
  | exception Sys_error msg -> Error msg
  | text ->
      let lines =
        List.filter
          (fun l -> String.trim l <> "")
          (String.split_on_char '\n' text)
      in
      List.fold_left
        (fun acc line ->
          Result.bind acc (fun snaps ->
              match snapshot_of_string line with
              | Ok s -> Ok (s :: snaps)
              | Error e -> Error (Printf.sprintf "bad history line: %s" e)))
        (Ok []) lines
      |> Result.map List.rev

let load_snapshot ~path =
  match In_channel.with_open_text path In_channel.input_all with
  | exception Sys_error msg -> Error msg
  | text -> (
      (* A snapshot file is one document; a history file is one per
         line — take the newest.  Try the whole file first so pretty-
         printed snapshots also load. *)
      match snapshot_of_string text with
      | Ok s -> Ok s
      | Error whole_err -> (
          match
            List.rev
              (List.filter
                 (fun l -> String.trim l <> "")
                 (String.split_on_char '\n' text))
          with
          | last :: _ -> (
              match snapshot_of_string last with
              | Ok s -> Ok s
              | Error _ -> Error whole_err)
          | [] -> Error "empty file"))

(* ---- comparison ---- *)

type thresholds = { rel : float; abs_ns : float }

let default_thresholds = { rel = 0.15; abs_ns = 2.0 }
let quick_tolerant = { rel = 0.60; abs_ns = 25.0 }

type verdict = Steady | Regressed | Improved | Added | Removed | No_data

type comparison = {
  cname : string;
  baseline_ns : float option;
  current_ns : float option;
  ratio : float option;
  cverdict : verdict;
}

let diff ?(thresholds = default_thresholds) ~baseline ~current () =
  let module Smap = Map.Make (String) in
  let index snap =
    List.fold_left (fun m r -> Smap.add r.name r m) Smap.empty snap.rows
  in
  let base = index baseline and cur = index current in
  let names =
    Smap.fold (fun k _ acc -> Smap.add k () acc) base Smap.empty
    |> fun m -> Smap.fold (fun k _ acc -> Smap.add k () acc) cur m
  in
  Smap.fold
    (fun name () acc ->
      let b = Smap.find_opt name base and c = Smap.find_opt name cur in
      let bns = Option.bind b (fun r -> r.ns_per_run)
      and cns = Option.bind c (fun r -> r.ns_per_run) in
      let comparison =
        match (b, c) with
        | None, Some _ ->
            { cname = name; baseline_ns = None; current_ns = cns;
              ratio = None; cverdict = Added }
        | Some _, None ->
            { cname = name; baseline_ns = bns; current_ns = None;
              ratio = None; cverdict = Removed }
        | None, None -> assert false
        | Some _, Some _ -> (
            match (bns, cns) with
            | Some b_ns, Some c_ns when b_ns > 0.0 ->
                let ratio = c_ns /. b_ns in
                let upper = (b_ns *. (1.0 +. thresholds.rel)) +. thresholds.abs_ns in
                let lower = (b_ns *. (1.0 -. thresholds.rel)) -. thresholds.abs_ns in
                let cverdict =
                  if c_ns > upper then Regressed
                  else if c_ns < lower then Improved
                  else Steady
                in
                { cname = name; baseline_ns = bns; current_ns = cns;
                  ratio = Some ratio; cverdict }
            | _ ->
                { cname = name; baseline_ns = bns; current_ns = cns;
                  ratio = None; cverdict = No_data })
      in
      comparison :: acc)
    names []
  |> List.sort (fun a b -> String.compare a.cname b.cname)

let regressions comparisons =
  List.filter (fun c -> c.cverdict = Regressed) comparisons

let verdict_name = function
  | Steady -> "ok"
  | Regressed -> "REGRESSED"
  | Improved -> "improved"
  | Added -> "new"
  | Removed -> "gone"
  | No_data -> "no data"

let ns_str = function
  | None -> "-"
  | Some ns when Float.is_nan ns -> "-"
  | Some ns -> Printf.sprintf "%.1f" ns

let render_table comparisons =
  let buf = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "%-36s %12s %12s %7s  %s\n" "benchmark" "baseline(ns)" "current(ns)"
    "ratio" "verdict";
  add "%s\n" (String.make 80 '-');
  List.iter
    (fun c ->
      add "%-36s %12s %12s %7s  %s\n" c.cname (ns_str c.baseline_ns)
        (ns_str c.current_ns)
        (match c.ratio with
        | Some r -> Printf.sprintf "%.2fx" r
        | None -> "-")
        (verdict_name c.cverdict))
    comparisons;
  let count v = List.length (List.filter (fun c -> c.cverdict = v) comparisons) in
  add "%s\n" (String.make 80 '-');
  add
    "%d benchmarks: %d ok, %d regressed, %d improved, %d new, %d gone, %d no data\n"
    (List.length comparisons)
    (count Steady) (count Regressed) (count Improved) (count Added)
    (count Removed) (count No_data);
  Buffer.contents buf
