(** Per-stage cost attribution over traced packets.

    Folds {!Trace.trace}s — via the {!Span} derivation — into exact
    per-stage latency and cycle distributions, answering the question
    the paper's "no major throughput or latency penalty" claim raises:
    {e where} does a packet's end-to-end time actually go?

    Stage keys are the span names ([stage_of]-controlled, default
    ["layer.stage"]), with a ["#2"], ["#3"], … suffix when a stage
    repeats within one trace (the HARMLESS walk crosses SS_1 twice, so
    its translate stage shows up as ["translate"] and ["translate#2"]).
    With the suffixing, each trace contributes at most one sample per
    stage key, and because stage + transit spans tile the packet span
    exactly (see {!Span}), the per-stage p50s of a homogeneous workload
    sum to its end-to-end p50 — the invariant the attribution table
    reports and the tests pin to within 10%.

    Percentiles here are exact (nearest-rank over the raw samples), not
    log-bucketed: attribution needs to add up.  {!publish} additionally
    mirrors the distributions into {!Registry} histograms so the
    per-stage SLIs ride the normal exposition path. *)

type stats = {
  count : int;
  p50 : int;
  p95 : int;
  p99 : int;
  mean : float;
  total : int;  (** sum of samples *)
}

type t

val create : unit -> t

val record_trace : ?stage_of:(Trace.hop -> string option) -> t -> Trace.trace -> unit
(** Fold one trace: a latency sample per stage/transit span (ns), a
    cycles sample per stage span, one e2e sample.  Empty traces are
    ignored. *)

val record_traces :
  ?stage_of:(Trace.hop -> string option) -> t -> Trace.trace list -> unit

val traces_recorded : t -> int

val stages : t -> string list
(** Stage keys in first-appearance order (transits included). *)

val stage_stats : t -> stage:string -> stats option
(** Latency distribution (ns). *)

val stage_cycles : t -> stage:string -> stats option
(** Modelled-cycles distribution; [None] also when the stage never
    reported a cycle cost. *)

val stage_alloc : t -> stage:string -> stats option
(** Minor-words-allocated distribution (from the span derivation's
    word endpoints — see {!Span.alloc_words}).  All-zero for traces
    whose hops never carried a word counter. *)

val e2e : t -> stats option
(** End-to-end (first hop → last hop) latency distribution. *)

val e2e_alloc : t -> stats option
(** End-to-end minor-words-allocated distribution. *)

val p50_sum_ns : t -> int
(** Sum of the per-stage latency p50s — the attributed end-to-end
    cost.  Compare against [e2e].p50. *)

val alloc_p50_sum_words : t -> int
(** Sum of the per-stage allocation p50s; the alloc mirror of
    {!p50_sum_ns}, comparable against [e2e_alloc].p50 under the same
    tiling invariant. *)

val publish : ?registry:Registry.t -> ?prefix:string -> t -> unit
(** Mirror the distributions into registry histograms
    [<prefix>_stage_latency_ns{stage=…}], [<prefix>_stage_cycles{stage=…}],
    [<prefix>_stage_alloc_words{stage=…}], [<prefix>_e2e_latency_ns] and
    [<prefix>_e2e_alloc_words] (prefix default ["harmless"]). *)

val attribution_table : t -> string
(** Deterministic text table: one row per stage (first-appearance
    order) with count/p50/p95/p99, its share of the summed p50s, and a
    words-per-packet column (stage allocation p50), then a footer
    comparing the latency p50 sum — and, when allocation was measured,
    the alloc p50 sum — against the measured end-to-end values. *)
