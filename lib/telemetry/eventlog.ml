(* The control-plane flight recorder.

   One bounded ring per stream so a chatty subsystem (per-message
   channel drops under loss) can never evict the quiet one that holds
   the root cause (the single fault injection).  Everything is
   deterministic for a deterministic run: sequence numbers are
   per-recorder, timestamps come from the engine clock, correlation
   ids are hashes of stable names. *)

type level = Debug | Info | Warn | Error

let level_rank = function Debug -> 0 | Info -> 1 | Warn -> 2 | Error -> 3

let level_name = function
  | Debug -> "debug"
  | Info -> "info"
  | Warn -> "warn"
  | Error -> "error"

let level_of_string = function
  | "debug" -> Some Debug
  | "info" -> Some Info
  | "warn" -> Some Warn
  | "error" -> Some Error
  | _ -> None

type event = {
  seq : int;
  ts_ns : int;
  level : level;
  stream : string;
  name : string;
  corr : int;
  detail : string;
}

(* Fixed-capacity ring of events, oldest evicted first. *)
type ring = {
  data : event array;
  mutable start : int; (* index of the oldest event *)
  mutable len : int;
}

let dummy_event =
  { seq = 0; ts_ns = 0; level = Debug; stream = ""; name = ""; corr = 0; detail = "" }

let ring_create capacity =
  { data = Array.make capacity dummy_event; start = 0; len = 0 }

(* Returns true when an old event was evicted. *)
let ring_push r e =
  let cap = Array.length r.data in
  if r.len < cap then begin
    r.data.((r.start + r.len) mod cap) <- e;
    r.len <- r.len + 1;
    false
  end
  else begin
    r.data.(r.start) <- e;
    r.start <- (r.start + 1) mod cap;
    true
  end

let ring_to_list r =
  List.init r.len (fun i -> r.data.((r.start + i) mod Array.length r.data))

type t = {
  stream_capacity : int;
  rings : (string, ring) Hashtbl.t;
  mutable next_seq : int;
  mutable recorded : int;
  mutable dropped : int;
}

let create ?(stream_capacity = 512) () =
  if stream_capacity < 2 then
    invalid_arg "Eventlog.create: stream_capacity < 2";
  {
    stream_capacity;
    rings = Hashtbl.create 16;
    next_seq = 1;
    recorded = 0;
    dropped = 0;
  }

let recorder : t option ref = ref None

let install t = recorder := Some t

let uninstall t =
  match !recorder with
  | Some r when r == t -> recorder := None
  | Some _ | None -> ()

let enabled () = Option.is_some !recorder

let clock : (unit -> int) option ref = ref None
let set_clock f = clock := f

let corr_of_string s =
  match Hashtbl.hash s with 0 -> 1 | h -> h

let corr_counter = ref 0

let fresh_corr () =
  incr corr_counter;
  (* Keep fresh ids out of the low range where string hashes live, so
     the two families cannot collide by accident in small tests. *)
  !corr_counter lor 0x40000000

let is_token s =
  s <> ""
  && not (String.exists (fun c -> c = ' ' || c = '\t' || c = '\n') s)

let validate_token what s =
  if not (is_token s) then
    invalid_arg (Printf.sprintf "Eventlog.emit: %s must be a non-empty token: %S" what s)

let sanitize_detail s =
  if String.contains s '\n' then
    String.map (function '\n' -> ' ' | c -> c) s
  else s

let emit ?(level = Info) ?ts_ns ?(corr = 0) ?(detail = "") ~stream name =
  match !recorder with
  | None -> ()
  | Some t ->
      validate_token "stream" stream;
      validate_token "event name" name;
      let ts_ns =
        match ts_ns with
        | Some ts -> ts
        | None -> ( match !clock with Some f -> f () | None -> 0)
      in
      let e =
        {
          seq = t.next_seq;
          ts_ns;
          level;
          stream;
          name;
          corr;
          detail = sanitize_detail detail;
        }
      in
      t.next_seq <- t.next_seq + 1;
      t.recorded <- t.recorded + 1;
      let ring =
        match Hashtbl.find_opt t.rings stream with
        | Some r -> r
        | None ->
            let r = ring_create t.stream_capacity in
            Hashtbl.replace t.rings stream r;
            r
      in
      if ring_push ring e then t.dropped <- t.dropped + 1

let streams t =
  Hashtbl.fold (fun k _ acc -> k :: acc) t.rings [] |> List.sort String.compare

let events ?stream ?min_level t =
  let keep e =
    match min_level with
    | None -> true
    | Some l -> level_rank e.level >= level_rank l
  in
  let of_ring r = List.filter keep (ring_to_list r) in
  let all =
    match stream with
    | Some s -> (
        match Hashtbl.find_opt t.rings s with
        | Some r -> of_ring r
        | None -> [])
    | None -> List.concat_map (fun s -> of_ring (Hashtbl.find t.rings s)) (streams t)
  in
  List.sort
    (fun a b ->
      match compare a.ts_ns b.ts_ns with 0 -> compare a.seq b.seq | c -> c)
    all

let recorded t = t.recorded
let dropped t = t.dropped

let clear t =
  Hashtbl.reset t.rings;
  t.next_seq <- 1;
  t.recorded <- 0;
  t.dropped <- 0

let with_recorder ?stream_capacity f =
  let t = create ?stream_capacity () in
  let saved = !recorder in
  install t;
  Fun.protect
    ~finally:(fun () -> recorder := saved)
    (fun () ->
      let result = f t in
      (result, events t))

(* ---- line format ---- *)

let event_to_string e =
  if e.detail = "" then
    Printf.sprintf "event %d %d %s %s %08x %s" e.seq e.ts_ns
      (level_name e.level) e.stream e.corr e.name
  else
    Printf.sprintf "event %d %d %s %s %08x %s %s" e.seq e.ts_ns
      (level_name e.level) e.stream e.corr e.name e.detail

let split_word s =
  match String.index_opt s ' ' with
  | None -> (s, "")
  | Some i ->
      (String.sub s 0 i, String.sub s (i + 1) (String.length s - i - 1))

let event_of_string line =
  let line = String.trim line in
  let kw, rest = split_word line in
  if kw <> "event" then Stdlib.Error "expected 'event'"
  else
    let seq_s, rest = split_word rest in
    let ts_s, rest = split_word rest in
    let level_s, rest = split_word rest in
    let stream, rest = split_word rest in
    let corr_s, rest = split_word rest in
    let name, detail = split_word rest in
    match
      ( int_of_string_opt seq_s,
        int_of_string_opt ts_s,
        level_of_string level_s,
        int_of_string_opt ("0x" ^ corr_s) )
    with
    | Some seq, Some ts_ns, Some level, Some corr when is_token stream && is_token name
      ->
        Stdlib.Ok { seq; ts_ns; level; stream; name; corr; detail }
    | _ -> Stdlib.Error (Printf.sprintf "malformed event line %S" line)

let pp_event fmt e =
  Format.fprintf fmt "%-10s %-5s %-20s"
    (Format.asprintf "%a" Trace.pp_time e.ts_ns)
    (level_name e.level)
    (e.stream ^ "." ^ e.name);
  if e.corr <> 0 then Format.fprintf fmt " [%08x]" e.corr
  else Format.fprintf fmt "           ";
  if e.detail <> "" then Format.fprintf fmt "  %s" e.detail
