(* Causal spans derived from the hop stream.

   A hop is a point event; a span is an interval.  The derivation uses
   the only clock the simulator has — the hop timestamps themselves: a
   hop's stage lasts until the next hop of the same packet (zero-width
   for the last hop of a visit, where the following gap is wire
   transit, and for the final hop of the trace).  Consecutive hops from
   one component group into a "visit" span, gaps between visits become
   synthetic transit spans, and everything hangs off one root [packet]
   span per trace.  Stage + transit spans exactly tile the root, so
   summed stage durations equal the end-to-end latency — the invariant
   Profile's attribution table relies on. *)

type t = {
  id : int;
  parent : int option;
  trace_key : int;
  name : string;
  component : string;
  begin_ns : int;
  end_ns : int;
  begin_words : int;
  end_words : int;
  cycles : int;
  detail : string;
}

let duration_ns s = s.end_ns - s.begin_ns
let alloc_words s = max 0 (s.end_words - s.begin_words)

let default_stage (hop : Trace.hop) =
  Trace.layer_name hop.Trace.layer ^ "." ^ hop.Trace.stage

(* Transit endpoints: hosts collapse to the role name "host" so a
   workload spread over many host pairs still yields one key per link
   role ("transit:host->legacy0", not one key per host) — without that,
   per-stage p50s could not sum to the e2e p50 across pairs. *)
let endpoint_name (hop : Trace.hop) =
  match hop.Trace.layer with
  | Trace.Host -> "host"
  | _ -> hop.Trace.component

let stage_name stage_of (hop : Trace.hop) =
  match stage_of hop with Some s -> s | None -> default_stage hop

(* Split a trace's hops into maximal runs of one component. *)
let visits hops =
  let rec go current acc = function
    | [] -> List.rev (List.rev current :: acc)
    | (hop : Trace.hop) :: rest -> (
        match current with
        | (prev : Trace.hop) :: _ when prev.Trace.component = hop.Trace.component
          ->
            go (hop :: current) acc rest
        | _ :: _ -> go [ hop ] (List.rev current :: acc) rest
        | [] -> go [ hop ] acc rest)
  in
  match hops with [] -> [] | hops -> go [] [] hops

let of_trace_with ~next_id ?(stage_of = fun _ -> None) (trace : Trace.trace) =
  match trace.Trace.hops with
  | [] -> []
  | first :: _ as hops ->
      let fresh () =
        incr next_id;
        !next_id
      in
      let last = List.nth hops (List.length hops - 1) in
      let total_cycles =
        List.fold_left (fun acc (h : Trace.hop) -> acc + h.Trace.cycles) 0 hops
      in
      let root =
        {
          id = fresh ();
          parent = None;
          trace_key = trace.Trace.key;
          name = "packet";
          component = "";
          begin_ns = first.Trace.ts_ns;
          end_ns = last.Trace.ts_ns;
          begin_words = first.Trace.words;
          end_words = last.Trace.words;
          cycles = total_cycles;
          detail = first.Trace.packet;
        }
      in
      let groups = visits hops in
      let rec walk groups acc =
        match groups with
        | [] -> List.rev acc
        | group :: rest ->
            let ghd = List.hd group in
            let gcycles =
              List.fold_left
                (fun acc (h : Trace.hop) -> acc + h.Trace.cycles)
                0 group
            in
            let glast =
              match group with
              | [] -> ghd
              | _ -> List.nth group (List.length group - 1)
            in
            let gend = glast.Trace.ts_ns in
            let gwords = glast.Trace.words in
            let visit =
              {
                id = fresh ();
                parent = Some root.id;
                trace_key = trace.Trace.key;
                name = ghd.Trace.component;
                component = ghd.Trace.component;
                begin_ns = ghd.Trace.ts_ns;
                end_ns = gend;
                begin_words = ghd.Trace.words;
                end_words = gwords;
                cycles = gcycles;
                detail = "";
              }
            in
            (* Stage spans: each hop lasts until the next hop in the
               same visit; the visit's last hop is zero-width. *)
            let rec stages hops acc =
              match hops with
              | [] -> List.rev acc
              | (hop : Trace.hop) :: rest ->
                  let end_ns, end_words =
                    match rest with
                    | (next : Trace.hop) :: _ ->
                        (next.Trace.ts_ns, next.Trace.words)
                    | [] -> (hop.Trace.ts_ns, hop.Trace.words)
                  in
                  let s =
                    {
                      id = fresh ();
                      parent = Some visit.id;
                      trace_key = trace.Trace.key;
                      name = stage_name stage_of hop;
                      component = hop.Trace.component;
                      begin_ns = hop.Trace.ts_ns;
                      end_ns;
                      begin_words = hop.Trace.words;
                      end_words;
                      cycles = hop.Trace.cycles;
                      detail = hop.Trace.detail;
                    }
                  in
                  stages rest (s :: acc)
            in
            let stage_spans = stages group [] in
            (* Transit span over the gap to the next visit, if any. *)
            (* Also emitted when only the word counter moved across the
               gap (zero-width in time): without it the link machinery's
               allocation would escape the alloc tiling. *)
            let transit =
              match rest with
              | (next_group_hd :: _) :: _
                when next_group_hd.Trace.ts_ns > gend
                     || next_group_hd.Trace.words > gwords ->
                  [
                    {
                      id = fresh ();
                      parent = Some root.id;
                      trace_key = trace.Trace.key;
                      name =
                        Printf.sprintf "transit:%s->%s" (endpoint_name ghd)
                          (endpoint_name next_group_hd);
                      component = "";
                      begin_ns = gend;
                      end_ns = next_group_hd.Trace.ts_ns;
                      begin_words = gwords;
                      end_words = next_group_hd.Trace.words;
                      cycles = 0;
                      detail = "";
                    };
                  ]
              | _ -> []
            in
            walk rest (List.rev_append transit (List.rev_append (visit :: stage_spans) acc))
      in
      root :: walk groups []

let of_trace ?stage_of trace =
  let next_id = ref 0 in
  of_trace_with ~next_id ?stage_of trace

let of_traces ?stage_of traces =
  let next_id = ref 0 in
  List.concat_map (of_trace_with ~next_id ?stage_of) traces

(* ---- Chrome trace-event async pairs ---- *)

let us_of_ns ns = float_of_int ns /. 1e3

let chrome_events spans =
  List.concat_map
    (fun s ->
      let id = Printf.sprintf "0x%08x" s.trace_key in
      let args =
        (if s.component <> "" then [ ("component", Json.Str s.component) ]
         else [])
        @ (if s.cycles > 0 then [ ("cycles", Json.Int s.cycles) ] else [])
        @ (if alloc_words s > 0 then
             [ ("alloc_words", Json.Int (alloc_words s)) ]
           else [])
        @ if s.detail <> "" then [ ("detail", Json.Str s.detail) ] else []
      in
      let event ph ts extra =
        Json.Obj
          ([
             ("name", Json.Str s.name);
             ("cat", Json.Str "packet");
             ("ph", Json.Str ph);
             ("ts", Json.Float (us_of_ns ts));
             ("pid", Json.Int 1);
             ("tid", Json.Int 1);
             ("id", Json.Str id);
           ]
          @ extra)
      in
      [
        event "b" s.begin_ns
          (if args = [] then [] else [ ("args", Json.Obj args) ]);
        event "e" s.end_ns [];
      ])
    spans

(* ---- collapsed stacks (flamegraph.pl / speedscope) ---- *)

let stack_of spans_by_id s =
  let rec path s acc =
    let acc = if s.name = "" then acc else s.name :: acc in
    match s.parent with
    | None -> acc
    | Some pid -> (
        match Hashtbl.find_opt spans_by_id pid with
        | Some p -> path p acc
        | None -> acc)
  in
  String.concat ";" (path s [])

let to_collapsed spans =
  let by_id : (int, t) Hashtbl.t = Hashtbl.create 64 in
  List.iter (fun s -> Hashtbl.replace by_id s.id s) spans;
  let has_children = Hashtbl.create 64 in
  List.iter
    (fun s ->
      match s.parent with
      | Some p -> Hashtbl.replace has_children p ()
      | None -> ())
    spans;
  (* Leaves (stage and transit spans) carry the time; zero-width spans
     contribute nothing to the flame graph. *)
  let acc : (string, int) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun s ->
      if (not (Hashtbl.mem has_children s.id)) && duration_ns s > 0 then begin
        let stack = stack_of by_id s in
        let prev = Option.value (Hashtbl.find_opt acc stack) ~default:0 in
        Hashtbl.replace acc stack (prev + duration_ns s)
      end)
    spans;
  let lines =
    Hashtbl.fold (fun stack ns acc -> Printf.sprintf "%s %d" stack ns :: acc) acc []
  in
  String.concat "\n" (List.sort String.compare lines)
  ^ if lines = [] then "" else "\n"

let save_collapsed spans ~path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_collapsed spans))
