(* Chrome trace-event export: render collected hops as the JSON array
   format that chrome://tracing and https://ui.perfetto.dev load.

   Layout: one process (pid 1), one "thread" per emitting component, a
   thread_name metadata event per component, and one complete ("X")
   event per hop.  Timestamps are sim-time microseconds; durations come
   from the hop's modelled cycle cost at [cycles_per_us] (default 2400,
   i.e. a 2.4 GHz core), floored at 1 ns so every event is visible. *)

let pid = 1

let tids hops =
  let tbl = Hashtbl.create 16 in
  let order = ref [] in
  List.iter
    (fun (hop : Trace.hop) ->
      if not (Hashtbl.mem tbl hop.Trace.component) then begin
        Hashtbl.replace tbl hop.Trace.component (Hashtbl.length tbl + 1);
        order := hop.Trace.component :: !order
      end)
    hops;
  (tbl, List.rev !order)

let us_of_ns ns = float_of_int ns /. 1e3

(* Flight-recorder events render as instant ("i") events on one pseudo
   thread per stream, carrying the correlation id in args in the same
   "%08x" form as the hops' trace_key — Perfetto's args search joins
   the two. *)
let eventlog_events tid_base (events : Eventlog.event list) =
  let streams =
    List.sort_uniq String.compare
      (List.map (fun (e : Eventlog.event) -> e.Eventlog.stream) events)
  in
  let tid_of =
    List.mapi (fun i stream -> (stream, tid_base + i)) streams
  in
  let meta =
    List.map
      (fun (stream, tid) ->
        Json.Obj
          [
            ("name", Json.Str "thread_name");
            ("ph", Json.Str "M");
            ("ts", Json.Int 0);
            ("pid", Json.Int pid);
            ("tid", Json.Int tid);
            ("args", Json.Obj [ ("name", Json.Str ("events:" ^ stream)) ]);
          ])
      tid_of
  in
  let instant (e : Eventlog.event) =
    let args =
      [
        ("level", Json.Str (Eventlog.level_name e.Eventlog.level));
        ("seq", Json.Int e.Eventlog.seq);
      ]
      @ (if e.Eventlog.corr <> 0 then
           [ ("trace_key", Json.Str (Printf.sprintf "%08x" e.Eventlog.corr)) ]
         else [])
      @
      if e.Eventlog.detail <> "" then
        [ ("detail", Json.Str e.Eventlog.detail) ]
      else []
    in
    Json.Obj
      [
        ("name", Json.Str (e.Eventlog.stream ^ "." ^ e.Eventlog.name));
        ("cat", Json.Str "eventlog");
        ("ph", Json.Str "i");
        ("s", Json.Str "t");
        ("ts", Json.Float (us_of_ns e.Eventlog.ts_ns));
        ("pid", Json.Int pid);
        ("tid", Json.Int (List.assoc e.Eventlog.stream tid_of));
        ("args", Json.Obj args);
      ]
  in
  meta @ List.map instant events

let to_json ?(cycles_per_us = 2400.0) ?(spans = []) ?(events = []) hops =
  let tid_of, components = tids hops in
  let meta =
    List.map
      (fun component ->
        Json.Obj
          [
            ("name", Json.Str "thread_name");
            ("ph", Json.Str "M");
            ("ts", Json.Int 0);
            ("pid", Json.Int pid);
            ("tid", Json.Int (Hashtbl.find tid_of component));
            ("args", Json.Obj [ ("name", Json.Str component) ]);
          ])
      components
  in
  let event (hop : Trace.hop) =
    let dur =
      Float.max 0.001 (float_of_int hop.Trace.cycles /. cycles_per_us)
    in
    let args =
      [
        ("packet", Json.Str hop.Trace.packet);
        ("trace_key", Json.Str (Printf.sprintf "%08x" hop.Trace.trace_key));
        ("bytes", Json.Int hop.Trace.bytes);
      ]
      @ (match hop.Trace.port with
        | Some p -> [ ("port", Json.Int p) ]
        | None -> [])
      @ (if hop.Trace.cycles > 0 then [ ("cycles", Json.Int hop.Trace.cycles) ] else [])
      @ if hop.Trace.detail <> "" then [ ("detail", Json.Str hop.Trace.detail) ] else []
    in
    Json.Obj
      [
        ("name", Json.Str (Trace.layer_name hop.Trace.layer ^ "." ^ hop.Trace.stage));
        ("cat", Json.Str (Trace.layer_name hop.Trace.layer));
        ("ph", Json.Str "X");
        ("ts", Json.Float (us_of_ns hop.Trace.ts_ns));
        ("dur", Json.Float dur);
        ("pid", Json.Int pid);
        ("tid", Json.Int (Hashtbl.find tid_of hop.Trace.component));
        ("args", Json.Obj args);
      ]
  in
  Json.Arr
    (meta
    @ List.map event hops
    @ Span.chrome_events spans
    @ eventlog_events (List.length components + 1) events)

let to_string ?cycles_per_us ?spans ?events hops =
  Json.to_string_lines (to_json ?cycles_per_us ?spans ?events hops)

let save ?cycles_per_us ?spans ?events hops ~path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string ?cycles_per_us ?spans ?events hops))
