(* All hashing below is explicit splitmix64-style mixing over OCaml's
   native 63-bit ints: deterministic across runs and compiler versions
   (unlike [Hashtbl.hash]), allocation-free (no boxed int64), and good
   enough avalanche for the pairwise-independence the sketch bounds
   assume in practice.  Multiplications wrap silently, which is exactly
   what a finalizer wants; the final [land max_int] clamps to a
   non-negative value so [mod] indexing is safe. *)
let mix ~seed x =
  let x = x lxor seed in
  let x = x lxor (x lsr 30) in
  let x = x * 0x2545F4914F6CDD1D in
  let x = x lxor (x lsr 27) in
  let x = x * 0x1B03738712FAD5C9 in
  let x = x lxor (x lsr 31) in
  x land max_int

module Cm = struct
  type t = {
    seed : int;
    epsilon : float;
    delta : float;
    width : int;
    depth : int;
    row_seeds : int array;
    counts : int array; (* depth rows of width counters, flattened *)
    mutable total : int;
  }

  let create ~seed ~epsilon ~delta =
    if not (epsilon > 0.0 && epsilon < 1.0) then
      invalid_arg "Sketch.Cm.create: epsilon must be in (0, 1)";
    if not (delta > 0.0 && delta < 1.0) then
      invalid_arg "Sketch.Cm.create: delta must be in (0, 1)";
    let width = int_of_float (Float.ceil (Float.exp 1.0 /. epsilon)) in
    let depth = max 1 (int_of_float (Float.ceil (Float.log (1.0 /. delta)))) in
    let row_seeds =
      Array.init depth (fun row -> mix ~seed ((row + 1) * 0x9E3779B9))
    in
    {
      seed;
      epsilon;
      delta;
      width;
      depth;
      row_seeds;
      counts = Array.make (width * depth) 0;
      total = 0;
    }

  let seed t = t.seed
  let epsilon t = t.epsilon
  let delta t = t.delta
  let width t = t.width
  let depth t = t.depth
  let total t = t.total

  let update t ~key n =
    if n < 0 then invalid_arg "Sketch.Cm.update: negative increment";
    t.total <- t.total + n;
    for row = 0 to t.depth - 1 do
      let idx = mix ~seed:(Array.unsafe_get t.row_seeds row) key mod t.width in
      let i = (row * t.width) + idx in
      Array.unsafe_set t.counts i (Array.unsafe_get t.counts i + n)
    done

  let query t ~key =
    let est = ref max_int in
    for row = 0 to t.depth - 1 do
      let idx = mix ~seed:(Array.unsafe_get t.row_seeds row) key mod t.width in
      let c = Array.unsafe_get t.counts ((row * t.width) + idx) in
      if c < !est then est := c
    done;
    !est

  let merge a b =
    if a.seed <> b.seed || a.width <> b.width || a.depth <> b.depth then
      invalid_arg "Sketch.Cm.merge: incompatible sketches";
    let counts = Array.mapi (fun i c -> c + b.counts.(i)) a.counts in
    { a with counts; total = a.total + b.total }

  let equal a b =
    a.seed = b.seed && a.width = b.width && a.depth = b.depth
    && a.total = b.total
    && a.counts = b.counts

  let memory_words t =
    (* counters + per-row seeds + boxed floats + record fields *)
    Array.length t.counts + 1 + t.depth + 1 + (2 * 2) + 9
end

module Hll = struct
  type t = {
    seed : int;
    p : int;
    m : int; (* 2^p registers *)
    registers : Bytes.t;
  }

  let create ~seed ~p =
    if p < 4 || p > 16 then invalid_arg "Sketch.Hll.create: p must be in [4, 16]";
    let m = 1 lsl p in
    { seed; p; m; registers = Bytes.make m '\000' }

  let seed t = t.seed
  let p t = t.p

  (* Position of the first set bit of [w] (1-based); [maxbits + 1] when
     [w] is all zeroes.  A loop rather than a table: registers update
     rarely, and the loop allocates nothing. *)
  let rho ~maxbits w =
    if w = 0 then maxbits + 1
    else begin
      let r = ref 1 and w = ref w in
      while !w land 1 = 0 do
        incr r;
        w := !w lsr 1
      done;
      !r
    end

  let add t x =
    let h = mix ~seed:t.seed x in
    let idx = h land (t.m - 1) in
    let w = h lsr t.p in
    let r = rho ~maxbits:(62 - t.p) w in
    if r > Char.code (Bytes.unsafe_get t.registers idx) then
      Bytes.unsafe_set t.registers idx (Char.unsafe_chr r)

  let alpha m =
    if m = 16 then 0.673
    else if m = 32 then 0.697
    else if m = 64 then 0.709
    else 0.7213 /. (1.0 +. (1.079 /. float_of_int m))

  let estimate t =
    let sum = ref 0.0 and zeros = ref 0 in
    for i = 0 to t.m - 1 do
      let r = Char.code (Bytes.unsafe_get t.registers i) in
      if r = 0 then incr zeros;
      sum := !sum +. (1.0 /. float_of_int (1 lsl r))
    done;
    let m = float_of_int t.m in
    let raw = alpha t.m *. m *. m /. !sum in
    (* Linear-counting correction for the small-cardinality regime; with
       63-bit hashes there is no large-range correction to apply. *)
    if raw <= 2.5 *. m && !zeros > 0 then m *. Float.log (m /. float_of_int !zeros)
    else raw

  let merge a b =
    if a.seed <> b.seed || a.p <> b.p then
      invalid_arg "Sketch.Hll.merge: incompatible sketches";
    let registers = Bytes.copy a.registers in
    for i = 0 to a.m - 1 do
      let rb = Bytes.get b.registers i in
      if rb > Bytes.get registers i then Bytes.set registers i rb
    done;
    { a with registers }

  let equal a b =
    a.seed = b.seed && a.p = b.p && Bytes.equal a.registers b.registers

  let memory_words t = ((t.m + 7) / 8) + 1 + 4
end

module Topk = struct
  type entry = { key : string; mutable count : int; mutable err : int }

  type t = {
    k : int;
    tbl : (string, entry) Hashtbl.t;
    mutable floor : int;
  }

  let create ~k =
    if k < 1 then invalid_arg "Sketch.Topk.create: k must be >= 1";
    { k; tbl = Hashtbl.create k; floor = 0 }

  let k t = t.k
  let size t = Hashtbl.length t.tbl
  let floor t = t.floor

  (* The entry to evict: minimum count; ties broken towards the
     lexicographically greatest key so eviction (and therefore the whole
     summary) is independent of hash-table iteration order. *)
  let victim t =
    Hashtbl.fold
      (fun _ e best ->
        match best with
        | None -> Some e
        | Some b ->
            if e.count < b.count
               || (e.count = b.count && String.compare e.key b.key > 0)
            then Some e
            else best)
      t.tbl None

  let observe t ~key ~n =
    if n < 0 then invalid_arg "Sketch.Topk.observe: negative increment";
    match Hashtbl.find_opt t.tbl key with
    | Some e -> e.count <- e.count + n
    | None ->
        if Hashtbl.length t.tbl < t.k then
          (* [floor] is 0 until the first eviction; merged summaries may
             carry a non-zero floor, which bounds what this key may have
             accumulated while untracked. *)
          Hashtbl.replace t.tbl key { key; count = t.floor + n; err = t.floor }
        else begin
          match victim t with
          | None -> assert false
          | Some v ->
              Hashtbl.remove t.tbl v.key;
              if v.count > t.floor then t.floor <- v.count;
              Hashtbl.replace t.tbl key
                { key; count = v.count + n; err = v.count }
        end

  let to_list t =
    Hashtbl.fold (fun _ e acc -> (e.key, e.count, e.err) :: acc) t.tbl []
    |> List.sort (fun (ka, ca, _) (kb, cb, _) ->
           match Int.compare cb ca with
           | 0 -> String.compare ka kb
           | c -> c)

  let find t key =
    Option.map (fun e -> (e.count, e.err)) (Hashtbl.find_opt t.tbl key)

  let merge a b =
    if a.k <> b.k then invalid_arg "Sketch.Topk.merge: k mismatch";
    let keys = Hashtbl.create (2 * a.k) in
    let collect t = Hashtbl.iter (fun key _ -> Hashtbl.replace keys key ()) t.tbl in
    collect a;
    collect b;
    let side t key =
      match Hashtbl.find_opt t.tbl key with
      | Some e -> (e.count, e.err)
      | None -> (t.floor, t.floor)
    in
    let combined =
      Hashtbl.fold
        (fun key () acc ->
          let ca, ea = side a key and cb, eb = side b key in
          (key, ca + cb, ea + eb) :: acc)
        keys []
      |> List.sort (fun (ka, ca, _) (kb, cb, _) ->
             match Int.compare cb ca with
             | 0 -> String.compare ka kb
             | c -> c)
    in
    let merged = create ~k:a.k in
    merged.floor <- a.floor + b.floor;
    List.iteri
      (fun i (key, count, err) ->
        if i < a.k then Hashtbl.replace merged.tbl key { key; count; err }
        else if count > merged.floor then merged.floor <- count)
      combined;
    merged

  let equal a b =
    a.k = b.k && a.floor = b.floor
    && Hashtbl.length a.tbl = Hashtbl.length b.tbl
    && Hashtbl.fold
         (fun key e ok ->
           ok
           && match Hashtbl.find_opt b.tbl key with
              | Some e' -> e.count = e'.count && e.err = e'.err
              | None -> false)
         a.tbl true

  let memory_words t =
    Hashtbl.fold
      (fun _ e acc -> acc + 4 + 1 + ((String.length e.key + 8) / 8))
      t.tbl
      (4 + (2 * t.k))
end
