type snapshot = {
  scenario : string;
  seed : int;
  captured_ns : int;
  window_start_ns : int;
  triggers : Eventlog.event list;
  events : Eventlog.event list;
  spans : Span.t list;
  series : (string * (int * float) list) list;
}

let schema = "harmless-postmortem/1"

let default_trigger (e : Eventlog.event) =
  match (e.stream, e.name) with
  | "fault", _ -> true
  | "alert", "firing" -> true
  | "migration", ("rollback" | "abort") -> true
  | "fleet", "abort" -> true
  | _ -> false

let is_token s =
  s <> ""
  && not (String.exists (fun c -> c = ' ' || c = '\t' || c = '\n') s)

let capture ?(trigger = default_trigger) ?(pre_window_ns = 5_000_000) ?(spans = [])
    ?(series = []) ~scenario ~seed ~captured_ns recorder =
  if not (is_token scenario) then
    invalid_arg "Postmortem.capture: scenario must be a non-empty token";
  let all = Eventlog.events recorder in
  match List.filter trigger all with
  | [] -> None
  | first :: _ as triggers ->
      let window_start_ns = max 0 (first.Eventlog.ts_ns - pre_window_ns) in
      let events =
        List.filter (fun (e : Eventlog.event) -> e.ts_ns >= window_start_ns) all
      in
      let corrs =
        List.fold_left
          (fun acc (e : Eventlog.event) ->
            if e.corr = 0 then acc else e.corr :: acc)
          [] events
      in
      let spans =
        List.filter (fun (s : Span.t) -> List.mem s.trace_key corrs) spans
      in
      let series =
        List.map
          (fun ts ->
            ( Timeseries.name ts,
              List.filter
                (fun (t, _) -> t >= window_start_ns && t <= captured_ns)
                (Timeseries.to_list ts) ))
          series
      in
      Some
        { scenario; seed; captured_ns; window_start_ns; triggers; events; spans; series }

(* ---- serialization ---- *)

let span_to_string (s : Span.t) =
  Printf.sprintf "span %d %s %08x %d %d %d %d %d %s %s%s" s.id
    (match s.parent with None -> "-" | Some p -> string_of_int p)
    s.trace_key s.begin_ns s.end_ns s.cycles s.begin_words s.end_words s.name
    (if s.component = "" then "-" else s.component)
    (if s.detail = "" then "" else " " ^ s.detail)

let split_word s =
  match String.index_opt s ' ' with
  | None -> (s, "")
  | Some i ->
      (String.sub s 0 i, String.sub s (i + 1) (String.length s - i - 1))

let span_of_string line =
  let kw, rest = split_word line in
  if kw <> "span" then Error "expected 'span'"
  else
    let id_s, rest = split_word rest in
    let parent_s, rest = split_word rest in
    let key_s, rest = split_word rest in
    let b_s, rest = split_word rest in
    let e_s, rest = split_word rest in
    let cy_s, rest = split_word rest in
    let bw_s, rest = split_word rest in
    let ew_s, rest = split_word rest in
    let name, rest = split_word rest in
    let component, detail = split_word rest in
    let parent =
      if parent_s = "-" then Some None
      else Option.map Option.some (int_of_string_opt parent_s)
    in
    match
      ( int_of_string_opt id_s,
        parent,
        int_of_string_opt ("0x" ^ key_s),
        int_of_string_opt b_s,
        int_of_string_opt e_s,
        int_of_string_opt cy_s,
        int_of_string_opt bw_s,
        int_of_string_opt ew_s )
    with
    | ( Some id,
        Some parent,
        Some trace_key,
        Some begin_ns,
        Some end_ns,
        Some cycles,
        Some begin_words,
        Some end_words )
      when name <> "" ->
        Ok
          {
            Span.id;
            parent;
            trace_key;
            name;
            component = (if component = "-" then "" else component);
            begin_ns;
            end_ns;
            begin_words;
            end_words;
            cycles;
            detail;
          }
    | _ -> Error (Printf.sprintf "malformed span line %S" line)

let to_string snap =
  let buf = Buffer.create 4096 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "%s\n" schema;
  add "scenario %s\n" snap.scenario;
  add "seed %d\n" snap.seed;
  add "captured %d\n" snap.captured_ns;
  add "window %d %d\n" snap.window_start_ns snap.captured_ns;
  add "triggers %d\n" (List.length snap.triggers);
  List.iter (fun e -> add "%s\n" (Eventlog.event_to_string e)) snap.triggers;
  add "events %d\n" (List.length snap.events);
  List.iter (fun e -> add "%s\n" (Eventlog.event_to_string e)) snap.events;
  add "spans %d\n" (List.length snap.spans);
  List.iter (fun s -> add "%s\n" (span_to_string s)) snap.spans;
  add "series %d\n" (List.length snap.series);
  List.iter
    (fun (name, points) ->
      add "ts %s %d\n" name (List.length points);
      List.iter
        (fun (t, v) -> add "point %d %s\n" t (Json.float_repr v))
        points)
    snap.series;
  Buffer.contents buf

let of_string text =
  let ( let* ) = Result.bind in
  let lines = ref (String.split_on_char '\n' text) in
  let next () =
    match !lines with
    | [] -> Error "unexpected end of snapshot"
    | l :: rest ->
        lines := rest;
        Ok l
  in
  let field key =
    let* line = next () in
    let k, v = split_word line in
    if k = key then Ok v
    else Error (Printf.sprintf "expected %S, got %S" key line)
  in
  let int_field key =
    let* v = field key in
    match int_of_string_opt v with
    | Some n -> Ok n
    | None -> Error (Printf.sprintf "field %s: not an int: %S" key v)
  in
  let rec collect n parse acc =
    if n = 0 then Ok (List.rev acc)
    else
      let* line = next () in
      let* x = parse line in
      collect (n - 1) parse (x :: acc)
  in
  let* header = next () in
  if String.trim header <> schema then
    Error (Printf.sprintf "not a %s snapshot: %S" schema header)
  else
    let* scenario = field "scenario" in
    let* seed = int_field "seed" in
    let* captured_ns = int_field "captured" in
    let* window = field "window" in
    let* window_start_ns =
      match int_of_string_opt (fst (split_word window)) with
      | Some n -> Ok n
      | None -> Error "malformed window line"
    in
    let* n_triggers = int_field "triggers" in
    let* triggers = collect n_triggers Eventlog.event_of_string [] in
    let* n_events = int_field "events" in
    let* events = collect n_events Eventlog.event_of_string [] in
    let* n_spans = int_field "spans" in
    let* spans = collect n_spans span_of_string [] in
    let* n_series = int_field "series" in
    let parse_series () =
      let* line = next () in
      let kw, rest = split_word line in
      if kw <> "ts" then Error (Printf.sprintf "expected 'ts', got %S" line)
      else
        let name, count_s = split_word rest in
        match int_of_string_opt count_s with
        | None -> Error (Printf.sprintf "malformed series header %S" line)
        | Some count ->
            let* points =
              collect count
                (fun l ->
                  let kw, rest = split_word l in
                  let t_s, v_s = split_word rest in
                  match
                    (kw, int_of_string_opt t_s, float_of_string_opt v_s)
                  with
                  | "point", Some t, Some v -> Ok (t, v)
                  | _ -> Error (Printf.sprintf "malformed point line %S" l))
                []
            in
            Ok (name, points)
    in
    let rec collect_series n acc =
      if n = 0 then Ok (List.rev acc)
      else
        let* s = parse_series () in
        collect_series (n - 1) (s :: acc)
    in
    let* series = collect_series n_series [] in
    Ok
      { scenario; seed; captured_ns; window_start_ns; triggers; events; spans; series }

let save snap ~path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string snap))

let load ~path =
  match open_in path with
  | exception Sys_error msg -> Error msg
  | ic ->
      let len = in_channel_length ic in
      let text = really_input_string ic len in
      close_in ic;
      of_string text

let event_json (e : Eventlog.event) =
  Json.Obj
    [
      ("seq", Json.Int e.seq);
      ("ts_ns", Json.Int e.ts_ns);
      ("level", Json.Str (Eventlog.level_name e.level));
      ("stream", Json.Str e.stream);
      ("name", Json.Str e.name);
      ("corr", Json.Str (Printf.sprintf "%08x" e.corr));
      ("detail", Json.Str e.detail);
    ]

let span_json (s : Span.t) =
  Json.Obj
    [
      ("id", Json.Int s.id);
      ("parent", match s.parent with None -> Json.Null | Some p -> Json.Int p);
      ("trace_key", Json.Str (Printf.sprintf "%08x" s.trace_key));
      ("name", Json.Str s.name);
      ("component", Json.Str s.component);
      ("begin_ns", Json.Int s.begin_ns);
      ("end_ns", Json.Int s.end_ns);
      ("cycles", Json.Int s.cycles);
      ("alloc_words", Json.Int (Span.alloc_words s));
    ]

let to_json snap =
  Json.Obj
    [
      ("schema", Json.Str schema);
      ("scenario", Json.Str snap.scenario);
      ("seed", Json.Int snap.seed);
      ("captured_ns", Json.Int snap.captured_ns);
      ("window_start_ns", Json.Int snap.window_start_ns);
      ("triggers", Json.Arr (List.map event_json snap.triggers));
      ("events", Json.Arr (List.map event_json snap.events));
      ("spans", Json.Arr (List.map span_json snap.spans));
      ( "series",
        Json.Arr
          (List.map
             (fun (name, points) ->
               Json.Obj
                 [
                   ("name", Json.Str name);
                   ( "points",
                     Json.Arr
                       (List.map
                          (fun (t, v) ->
                            Json.Arr [ Json.Int t; Json.Float v ])
                          points) );
                 ])
             snap.series) );
    ]

(* ---- causal timeline ---- *)

type timeline = {
  root_cause : Eventlog.event option;
  steps : Eventlog.event list;
}

(* A step earns a place in the causal chain when it marks a decision
   or a state change an operator would act on — fault injections,
   alerts going firing, rollbacks/aborts/deadline exhaustion, and
   anything logged at Error. *)
let significant (e : Eventlog.event) =
  match (e.stream, e.name, e.level) with
  | "fault", _, _ -> true
  | "alert", "firing", _ -> true
  | _, ("rollback" | "abort" | "gave_up" | "deadline"), _ -> true
  | _, _, Eventlog.Error -> true
  | _ -> false

let analyze snap =
  let root_cause =
    List.find_opt (fun (e : Eventlog.event) -> e.stream = "fault") snap.events
  in
  { root_cause; steps = List.filter significant snap.events }

let step_label (e : Eventlog.event) =
  let subject =
    match fst (split_word e.detail) with "" -> None | tok -> Some tok
  in
  Printf.sprintf "%s.%s%s@%s" e.stream e.name
    (match subject with None -> "" | Some s -> " " ^ s)
    (Format.asprintf "%a" Trace.pp_time e.ts_ns)

let render snap =
  let buf = Buffer.create 4096 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let time ns = Format.asprintf "%a" Trace.pp_time ns in
  add "post-mortem (%s): scenario %s, seed %d, captured @%s\n" schema
    snap.scenario snap.seed (time snap.captured_ns);
  add "window: %s .. %s — %d event(s), %d trigger(s), %d span(s), %d series\n"
    (time snap.window_start_ns) (time snap.captured_ns)
    (List.length snap.events)
    (List.length snap.triggers)
    (List.length snap.spans)
    (List.length snap.series);
  let tl = analyze snap in
  (match tl.root_cause with
  | Some e ->
      add "root cause: %s %s @%s%s\n" e.stream e.name (time e.ts_ns)
        (if e.detail = "" then "" else " — " ^ e.detail)
  | None -> add "root cause: none identified (no fault-stream event in window)\n");
  (match tl.steps with
  | [] -> add "timeline: empty\n"
  | steps ->
      add "timeline: %s\n" (String.concat " -> " (List.map step_label steps)));
  add "\nevents:\n";
  List.iter
    (fun e -> add "  %s\n" (Format.asprintf "%a" Eventlog.pp_event e))
    snap.events;
  if snap.spans <> [] then begin
    add "\ncorrelated spans:\n";
    List.iter
      (fun (s : Span.t) ->
        add "  [%08x] %-24s %s .. %s (%s)%s\n" s.trace_key
          (if s.component = "" then s.name else s.component ^ "/" ^ s.name)
          (time s.begin_ns) (time s.end_ns)
          (time (Span.duration_ns s))
          (if s.detail = "" then "" else "  " ^ s.detail))
      snap.spans
  end;
  List.iter
    (fun (name, points) ->
      add "\nseries %s: %d point(s)" name (List.length points);
      (match (points, List.rev points) with
      | (t0, v0) :: _, (t1, v1) :: _ ->
          add ", %s=%s .. %s=%s" (time t0) (Json.float_repr v0) (time t1)
            (Json.float_repr v1)
      | _ -> ());
      add "\n")
    snap.series;
  Buffer.contents buf
