(** Automatic post-mortem capture over the {!Eventlog} flight recorder.

    A {e snapshot} is a deterministic, bounded bundle of everything a
    failure investigation needs: the recent event window around the
    first {e trigger} (a fault injection, an alert going firing, a
    migration rollback, a fleet abort), the packet spans whose trace
    keys appear as correlation ids in that window, and the relevant
    slice of each monitored time series.  Rigs call {!capture} once at
    the end of a recorded run ("capture at finalize"): the triggers are
    derived from the recorded events themselves, so no subsystem needs
    a callback into this module, and a same-seed rerun reproduces the
    snapshot byte for byte.

    {!analyze} turns a snapshot into a causal timeline — the earliest
    fault-stream event is the root cause, and the significant events
    after it (warnings and errors, alert transitions to firing,
    rollbacks, aborts) become the steps.  {!render} prints it in the
    dashboard's vocabulary:
    {v trunk:primary down@4.200ms -> slo_rtt firing@5.100ms -> sw7 rollback@6.000ms -> fleet abort@6.200ms v} *)

type snapshot = {
  scenario : string;  (** token naming the run, e.g. ["chaos"] *)
  seed : int;
  captured_ns : int;  (** sim time at capture *)
  window_start_ns : int;  (** first trigger minus the pre-window *)
  triggers : Eventlog.event list;  (** events that matched the trigger predicate *)
  events : Eventlog.event list;  (** the retained window, (ts, seq) order *)
  spans : Span.t list;  (** spans correlated with the window's events *)
  series : (string * (int * float) list) list;
      (** per-series points inside the window, given order *)
}

val schema : string
(** ["harmless-postmortem/1"] — first line of every serialized snapshot. *)

val default_trigger : Eventlog.event -> bool
(** The capture policy the rigs use: any ["fault"]-stream event, an
    ["alert"] event named ["firing"], a ["migration"] event named
    ["rollback"] or ["abort"], or a ["fleet"] event named ["abort"]. *)

val capture :
  ?trigger:(Eventlog.event -> bool) ->
  ?pre_window_ns:int ->
  ?spans:Span.t list ->
  ?series:Timeseries.t list ->
  scenario:string ->
  seed:int ->
  captured_ns:int ->
  Eventlog.t ->
  snapshot option
(** Derive a snapshot from a recorder at the end of a run.  [None]
    when no retained event matches [trigger] (default
    {!default_trigger}) — an uneventful run produces no post-mortem.
    The event window is everything from [pre_window_ns] (default 5ms)
    before the first trigger through the end of the recording; spans
    are kept when their trace key matches a window event's correlation
    id; series are sliced to the window.
    @raise Invalid_argument if [scenario] is not a whitespace-free
    token. *)

val to_string : snapshot -> string
(** Deterministic line-based serialization, parsed back by
    {!of_string}. *)

val of_string : string -> (snapshot, string) result

val save : snapshot -> path:string -> unit

val load : path:string -> (snapshot, string) result

val to_json : snapshot -> Json.t
(** One-way JSON export of the same content (machine consumers). *)

type timeline = {
  root_cause : Eventlog.event option;
      (** earliest ["fault"]-stream event in the window *)
  steps : Eventlog.event list;
      (** the significant events, (ts, seq) order, root cause first
          when present *)
}

val analyze : snapshot -> timeline

val render : snapshot -> string
(** Human-readable report: header, the causal timeline as an
    ["a -> b -> c"] chain, then the full event window, correlated
    spans and series slices.  Deterministic. *)
