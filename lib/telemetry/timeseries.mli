(** Fixed-capacity time series: the storage layer of the monitoring
    plane.

    A series is a ring buffer of [(ts_ns, value)] points — when full,
    the oldest point is overwritten, so memory is bounded no matter how
    long a poller runs.  Timestamps are sim-time nanoseconds and must be
    non-decreasing (the pollers feeding these all run on one engine
    clock, so this costs nothing and keeps every window query a simple
    scan of a contiguous suffix).

    Two kinds of series by convention:
    - {e gauge} series store instantaneous values (port utilization,
      RTT); read them with {!last}, {!min_over}, {!max_over},
      {!avg_over};
    - {e counter} series store cumulative totals (flow bytes, port
      packets); read them with {!rate_over}, which differentiates.

    All queries are over the window [[now_ns - window, now_ns]]
    (inclusive) and return [None] when no point falls inside it. *)

type t

val create : ?capacity:int -> name:string -> unit -> t
(** A fresh, empty series.  Default capacity 1024 points.
    @raise Invalid_argument if [capacity < 2] (rates need two points). *)

val name : t -> string
val capacity : t -> int

val length : t -> int
(** Points currently held, [<= capacity]. *)

val total_recorded : t -> int
(** Points ever recorded, including ones the ring has evicted. *)

val record : t -> ts_ns:int -> float -> unit
(** Append a point, evicting the oldest when full.
    @raise Invalid_argument if [ts_ns] precedes the newest point. *)

val last : t -> (int * float) option
(** The newest [(ts_ns, value)] point. *)

val to_list : t -> (int * float) list
(** All held points, oldest first. *)

val min_over : t -> now_ns:int -> window:int -> float option
val max_over : t -> now_ns:int -> window:int -> float option

val avg_over : t -> now_ns:int -> window:int -> float option
(** Unweighted mean of the points in the window. *)

val rate_over : t -> now_ns:int -> window:int -> float option
(** (newest - oldest) / elapsed-seconds across the points in the
    window: the per-second growth of a cumulative counter.  [None]
    unless the window holds two points with distinct timestamps.
    Negative if the counter was reset mid-window — callers that poll
    across a switch crash should treat a negative rate as a restart. *)

val newest_age : t -> now_ns:int -> int option
(** [now_ns - ts] of the newest point — how stale the series is.  The
    absence-alert primitive. *)

val clear : t -> unit
