(* Ring-buffer time series.

   Points live in two parallel arrays indexed modulo capacity; [start]
   is the oldest point, [len] how many are held.  Timestamps are
   non-decreasing by construction, so every window query walks the
   newest suffix and stops at the first point that falls out of the
   window — O(points in window), no sorting, no allocation beyond the
   accumulator. *)

type t = {
  series_name : string;
  ts : int array;
  values : float array;
  mutable start : int;
  mutable len : int;
  mutable total : int;
}

let create ?(capacity = 1024) ~name () =
  if capacity < 2 then invalid_arg "Timeseries.create: capacity < 2";
  {
    series_name = name;
    ts = Array.make capacity 0;
    values = Array.make capacity 0.0;
    start = 0;
    len = 0;
    total = 0;
  }

let name t = t.series_name
let capacity t = Array.length t.ts
let length t = t.len
let total_recorded t = t.total

let idx t i = (t.start + i) mod Array.length t.ts
(* i-th held point, 0 = oldest *)

let newest t = idx t (t.len - 1)

let record t ~ts_ns v =
  let cap = Array.length t.ts in
  if t.len > 0 && ts_ns < t.ts.(newest t) then
    invalid_arg "Timeseries.record: timestamp went backwards";
  if t.len = cap then begin
    (* full: overwrite the oldest slot and advance start *)
    t.ts.(t.start) <- ts_ns;
    t.values.(t.start) <- v;
    t.start <- (t.start + 1) mod cap
  end
  else begin
    let i = idx t t.len in
    t.ts.(i) <- ts_ns;
    t.values.(i) <- v;
    t.len <- t.len + 1
  end;
  t.total <- t.total + 1

let last t = if t.len = 0 then None else Some (t.ts.(newest t), t.values.(newest t))

let to_list t =
  List.init t.len (fun i ->
      let j = idx t i in
      (t.ts.(j), t.values.(j)))

(* Fold the points inside [now - window, now], newest to oldest.  The
   series is time-ordered, so stop at the first point outside. *)
let fold_window t ~now_ns ~window ~init f =
  if window < 0 then invalid_arg "Timeseries: negative window";
  let lo = now_ns - window in
  let acc = ref init in
  (try
     for i = t.len - 1 downto 0 do
       let j = idx t i in
       let ts = t.ts.(j) in
       if ts > now_ns then () (* future points: skip, keep scanning *)
       else if ts < lo then raise Exit
       else acc := f !acc ts t.values.(j)
     done
   with Exit -> ());
  !acc

let min_over t ~now_ns ~window =
  fold_window t ~now_ns ~window ~init:None (fun acc _ v ->
      match acc with None -> Some v | Some m -> Some (Float.min m v))

let max_over t ~now_ns ~window =
  fold_window t ~now_ns ~window ~init:None (fun acc _ v ->
      match acc with None -> Some v | Some m -> Some (Float.max m v))

let avg_over t ~now_ns ~window =
  match
    fold_window t ~now_ns ~window ~init:(0, 0.0) (fun (n, sum) _ v ->
        (n + 1, sum +. v))
  with
  | 0, _ -> None
  | n, sum -> Some (sum /. float_of_int n)

let rate_over t ~now_ns ~window =
  (* Walking newest→oldest, the last point visited is the oldest in the
     window and the first is the newest. *)
  match
    fold_window t ~now_ns ~window ~init:None (fun acc ts v ->
        match acc with
        | None -> Some ((ts, v), (ts, v))
        | Some (newest, _) -> Some (newest, (ts, v)))
  with
  | Some ((t1, v1), (t0, v0)) when t1 > t0 ->
      Some ((v1 -. v0) /. (float_of_int (t1 - t0) /. 1e9))
  | Some _ | None -> None

let newest_age t ~now_ns =
  if t.len = 0 then None else Some (now_ns - t.ts.(newest t))

let clear t =
  t.start <- 0;
  t.len <- 0
