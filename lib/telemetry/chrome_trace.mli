(** Chrome trace-event JSON export of collected hops.

    The output is the plain JSON-array flavour of the trace-event
    format: ["thread_name"] metadata ("M") events naming one pseudo
    thread per emitting component, then one complete ("X") event per
    hop with sim-time microsecond timestamps, then — when [spans] is
    given — async ["b"]/["e"] pairs rendering the causal span tree
    (see {!Span}) as per-packet tracks.  Load it in chrome://tracing
    or https://ui.perfetto.dev. *)

val to_json : ?cycles_per_us:float -> ?spans:Span.t list -> Trace.hop list -> Json.t
(** [cycles_per_us] converts hop cycle costs to event durations
    (default 2400., i.e. a 2.4 GHz core); durations floor at 1 ns.
    [spans] (default none) appends {!Span.chrome_events}. *)

val to_string : ?cycles_per_us:float -> ?spans:Span.t list -> Trace.hop list -> string
(** One event per line, pinned by a golden test. *)

val save :
  ?cycles_per_us:float -> ?spans:Span.t list -> Trace.hop list -> path:string -> unit
