(** Chrome trace-event JSON export of collected hops.

    The output is the plain JSON-array flavour of the trace-event
    format: ["thread_name"] metadata ("M") events naming one pseudo
    thread per emitting component, then one complete ("X") event per
    hop with sim-time microsecond timestamps, then — when [spans] is
    given — async ["b"]/["e"] pairs rendering the causal span tree
    (see {!Span}) as per-packet tracks, then — when [events] is given —
    instant ("i") events rendering flight-recorder events (see
    {!Eventlog}) on one pseudo thread per stream.  Correlated events
    carry their id in [args.trace_key] in the same ["%08x"] form the
    hops use, so an args search in Perfetto joins a control-plane
    decision to the packet that triggered it.  Load the file in
    chrome://tracing or https://ui.perfetto.dev. *)

val to_json :
  ?cycles_per_us:float ->
  ?spans:Span.t list ->
  ?events:Eventlog.event list ->
  Trace.hop list ->
  Json.t
(** [cycles_per_us] converts hop cycle costs to event durations
    (default 2400., i.e. a 2.4 GHz core); durations floor at 1 ns.
    [spans] (default none) appends {!Span.chrome_events}; [events]
    (default none) appends the flight-recorder instants. *)

val to_string :
  ?cycles_per_us:float ->
  ?spans:Span.t list ->
  ?events:Eventlog.event list ->
  Trace.hop list ->
  string
(** One event per line, pinned by a golden test. *)

val save :
  ?cycles_per_us:float ->
  ?spans:Span.t list ->
  ?events:Eventlog.event list ->
  Trace.hop list ->
  path:string ->
  unit
