open Netpkt

type flow = {
  fl_src_host : int;
  fl_dst_host : int;
  fl_sport : int;
  fl_dport : int;
  fl_packets : int;
  fl_frame_bytes : int;
  fl_start_ns : int;
  fl_gap_ns : int;
  fl_elephant : bool;
}

type t = {
  seed : int;
  hosts : int;
  flows : flow array;
  total_packets : int;
}

let base_ip = Ipv4_addr.of_octets 10 0 0 1

let host_ip i = Ipv4_addr.add base_ip i
let host_mac i = Mac_addr.make_local (i + 1)

let plan ~seed ~hosts ~mice ~elephants ?(skew = 1.1) ?(census = true)
    ?(duration_ns = 1_000_000_000) () =
  if hosts < 1 then invalid_arg "Workload.plan: hosts must be >= 1";
  if mice < 0 || elephants < 0 then
    invalid_arg "Workload.plan: negative flow count";
  if duration_ns < 1 then invalid_arg "Workload.plan: duration must be >= 1ns";
  let rng = Rng.create seed in
  let zipf = Rng.Zipf.create ~n:hosts ~skew in
  let pick_dst src =
    if hosts = 1 then src
    else begin
      let d = ref (Rng.int rng hosts) in
      while !d = src do
        d := Rng.int rng hosts
      done;
      !d
    end
  in
  let elephant _ =
    let src = Rng.Zipf.draw zipf rng in
    let packets = Rng.int_in rng 2000 5000 in
    let start = Rng.int rng (max 1 (duration_ns / 4)) in
    {
      fl_src_host = src;
      fl_dst_host = pick_dst src;
      fl_sport = 32768 + Rng.int rng 16384;
      fl_dport = Rng.choose rng [| 80; 443 |];
      fl_packets = packets;
      fl_frame_bytes = 1518;
      fl_start_ns = start;
      fl_gap_ns = max 1 ((duration_ns - start) / packets);
      fl_elephant = true;
    }
  in
  let mouse _ =
    let src = Rng.Zipf.draw zipf rng in
    {
      fl_src_host = src;
      fl_dst_host = pick_dst src;
      fl_sport = 1024 + Rng.int rng 60000;
      fl_dport = Rng.choose rng [| 53; 80; 123; 443 |];
      fl_packets = Rng.int_in rng 1 24;
      fl_frame_bytes = Rng.int_in rng 64 512;
      fl_start_ns = Rng.int rng duration_ns;
      fl_gap_ns = Rng.int_in rng 1_000 100_000;
      fl_elephant = false;
    }
  in
  (* The census segment guarantees every host appears as a source at
     least once, so the plan's true source cardinality is exactly
     [hosts] — the ground truth the HLL accuracy checks need. *)
  let census_flow i =
    {
      fl_src_host = i;
      fl_dst_host = (i + 1) mod hosts;
      fl_sport = 7000 + (i mod 20000);
      fl_dport = 7;
      fl_packets = 1;
      fl_frame_bytes = 64;
      fl_start_ns = i * (duration_ns / hosts);
      fl_gap_ns = 1;
      fl_elephant = false;
    }
  in
  let flows =
    Array.concat
      [
        Array.init elephants elephant;
        Array.init mice mouse;
        (if census then Array.init hosts census_flow else [||]);
      ]
  in
  let total_packets = Array.fold_left (fun n f -> n + f.fl_packets) 0 flows in
  { seed; hosts; flows; total_packets }

let packet f =
  Packet.udp
    ~dst:(host_mac f.fl_dst_host)
    ~src:(host_mac f.fl_src_host)
    ~ip_src:(host_ip f.fl_src_host)
    ~ip_dst:(host_ip f.fl_dst_host)
    ~src_port:f.fl_sport ~dst_port:f.fl_dport ""
  |> Packet.pad_to f.fl_frame_bytes
