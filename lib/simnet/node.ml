type direction = Rx | Tx

type t = {
  name : string;
  engine : Engine.t;
  mutable tx_fns : (Netpkt.Packet.t -> unit) option array;
  mutable carrier_ok : bool array;
  mutable handler : handler;
  counters : Stats.Counter.t;
  mutable taps : (direction -> int -> Netpkt.Packet.t -> unit) list;
  mutable attachment_watchers : (port:int -> up:bool -> unit) list;
}

and handler = t -> in_port:int -> Netpkt.Packet.t -> unit

let no_op_handler _ ~in_port:_ _ = ()

let create engine ~name ~ports =
  if ports < 0 then invalid_arg "Node.create: negative port count";
  {
    name;
    engine;
    tx_fns = Array.make ports None;
    carrier_ok = Array.make ports true;
    handler = no_op_handler;
    counters = Stats.Counter.create ();
    taps = [];
    attachment_watchers = [];
  }

let name t = t.name
let engine t = t.engine
let port_count t = Array.length t.tx_fns

let add_ports t n =
  if n < 0 then invalid_arg "Node.add_ports: negative";
  let first = Array.length t.tx_fns in
  t.tx_fns <- Array.append t.tx_fns (Array.make n None);
  t.carrier_ok <- Array.append t.carrier_ok (Array.make n true);
  first

let set_handler t h = t.handler <- h

let check_port t port =
  if port < 0 || port >= Array.length t.tx_fns then
    invalid_arg (Printf.sprintf "Node %s: bad port %d" t.name port)

let run_taps t dir port pkt = List.iter (fun tap -> tap dir port pkt) t.taps

let transmit t ~port pkt =
  check_port t port;
  match t.tx_fns.(port) with
  | None -> Stats.Counter.incr t.counters "tx_drop_unattached"
  | Some _ when not t.carrier_ok.(port) ->
      Stats.Counter.incr t.counters "tx_drop_no_carrier"
  | Some send ->
      Stats.Counter.incr t.counters "tx";
      Stats.Counter.incr t.counters (Printf.sprintf "tx.%d" port);
      Stats.Counter.incr t.counters
        ~by:(Netpkt.Packet.wire_size pkt)
        (Printf.sprintf "tx_bytes.%d" port);
      run_taps t Tx port pkt;
      send pkt

let deliver t ~port pkt =
  check_port t port;
  Stats.Counter.incr t.counters "rx";
  Stats.Counter.incr t.counters (Printf.sprintf "rx.%d" port);
  Stats.Counter.incr t.counters
    ~by:(Netpkt.Packet.wire_size pkt)
    (Printf.sprintf "rx_bytes.%d" port);
  run_taps t Rx port pkt;
  t.handler t ~in_port:port pkt

let notify_attachment t port up =
  List.iter (fun f -> f ~port ~up) t.attachment_watchers

let attach t ~port send =
  check_port t port;
  (match t.tx_fns.(port) with
  | Some _ ->
      invalid_arg (Printf.sprintf "Node %s: port %d already attached" t.name port)
  | None -> ());
  t.tx_fns.(port) <- Some send;
  notify_attachment t port true

let detach t ~port =
  check_port t port;
  if Option.is_some t.tx_fns.(port) then begin
    t.tx_fns.(port) <- None;
    notify_attachment t port false
  end

let attached t ~port =
  check_port t port;
  Option.is_some t.tx_fns.(port)

let set_carrier t ~port up =
  check_port t port;
  if t.carrier_ok.(port) <> up then begin
    t.carrier_ok.(port) <- up;
    (* Only signal a transition the far side can observe: a port with no
       link attached has no carrier to lose. *)
    if Option.is_some t.tx_fns.(port) then notify_attachment t port up
  end

let carrier t ~port =
  check_port t port;
  Option.is_some t.tx_fns.(port) && t.carrier_ok.(port)

let counters t = t.counters
let add_tap t tap = t.taps <- t.taps @ [ tap ]

let on_attachment_change t f =
  t.attachment_watchers <- t.attachment_watchers @ [ f ]
