(* Opt-in scheduler self-observation: queue depth and scheduling lag
   (how far the clock jumps to reach the next event) as time series,
   sampled every [sample_every]-th dispatch so a 10^7-event run doesn't
   drown in its own telemetry. *)
type telemetry = {
  queue_depth : Telemetry.Timeseries.t;
  sched_lag : Telemetry.Timeseries.t;
  sample_every : int;
}

type t = {
  queue : (unit -> unit) Event_queue.t;
  mutable clock : Sim_time.t;
  mutable executed : int;
  mutable telemetry : telemetry option;
}

let create () =
  {
    queue = Event_queue.create ();
    clock = Sim_time.zero;
    executed = 0;
    telemetry = None;
  }

let enable_telemetry ?(sample_every = 1) ?(capacity = 4096) t =
  if sample_every <= 0 then
    invalid_arg "Engine.enable_telemetry: sample_every must be positive";
  t.telemetry <-
    Some
      {
        queue_depth =
          Telemetry.Timeseries.create ~capacity ~name:"engine_queue_depth" ();
        sched_lag =
          Telemetry.Timeseries.create ~capacity ~name:"engine_sched_lag_ns" ();
        sample_every;
      }

let queue_depth_series t = Option.map (fun m -> m.queue_depth) t.telemetry
let scheduling_lag_series t = Option.map (fun m -> m.sched_lag) t.telemetry
let now t = t.clock

let schedule_at t time f =
  if Sim_time.compare time t.clock < 0 then
    invalid_arg "Engine.schedule_at: instant in the past";
  Event_queue.push t.queue time f

let schedule_after t span f =
  if span < 0 then invalid_arg "Engine.schedule_after: negative span";
  Event_queue.push t.queue (Sim_time.add t.clock span) f

let schedule_every t ?start period f =
  if period <= 0 then invalid_arg "Engine.schedule_every: period must be positive";
  let first = match start with None -> period | Some s -> s in
  if first < 0 then invalid_arg "Engine.schedule_every: negative start";
  let rec tick () = if f () then schedule_after t period tick in
  schedule_after t first tick

let step t =
  match Event_queue.pop t.queue with
  | None -> false
  | Some (time, f) ->
      (match t.telemetry with
      | Some m when t.executed mod m.sample_every = 0 ->
          let ts_ns = Sim_time.to_ns time in
          Telemetry.Timeseries.record m.queue_depth ~ts_ns
            (float_of_int (Event_queue.length t.queue));
          Telemetry.Timeseries.record m.sched_lag ~ts_ns
            (float_of_int (ts_ns - Sim_time.to_ns t.clock))
      | Some _ | None -> ());
      t.clock <- time;
      t.executed <- t.executed + 1;
      let mark = Alloc_probe.mark () in
      f ();
      Alloc_probe.record "engine.dispatch" mark;
      true

let run ?until ?max_events t =
  let budget = ref (match max_events with None -> max_int | Some n -> n) in
  let continue = ref true in
  while !continue && !budget > 0 do
    match Event_queue.peek_time t.queue with
    | None -> continue := false
    | Some next -> (
        match until with
        | Some stop when Sim_time.compare next stop > 0 -> continue := false
        | Some _ | None ->
            ignore (step t);
            decr budget)
  done;
  match until with
  | Some stop when Sim_time.compare t.clock stop < 0 && !budget > 0 ->
      t.clock <- stop
  | Some _ | None -> ()

let pending t = Event_queue.length t.queue
let events_executed t = t.executed

let publish_metrics ?registry ?labels t =
  let set name v =
    Telemetry.Registry.Gauge.set_int
      (Telemetry.Registry.Gauge.v ?registry ?labels name)
      v
  in
  set "sim_now_ns" (Sim_time.to_ns t.clock);
  set "sim_events_executed" t.executed;
  set "sim_events_pending" (Event_queue.length t.queue);
  match t.telemetry with
  | None -> ()
  | Some m ->
      let last_of series name =
        match Telemetry.Timeseries.last series with
        | Some (_, v) -> set name (int_of_float v)
        | None -> ()
      in
      last_of m.queue_depth "sim_queue_depth_sampled";
      last_of m.sched_lag "sim_sched_lag_ns"
