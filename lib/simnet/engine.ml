type t = {
  queue : (unit -> unit) Event_queue.t;
  mutable clock : Sim_time.t;
  mutable executed : int;
}

let create () = { queue = Event_queue.create (); clock = Sim_time.zero; executed = 0 }
let now t = t.clock

let schedule_at t time f =
  if Sim_time.compare time t.clock < 0 then
    invalid_arg "Engine.schedule_at: instant in the past";
  Event_queue.push t.queue time f

let schedule_after t span f =
  if span < 0 then invalid_arg "Engine.schedule_after: negative span";
  Event_queue.push t.queue (Sim_time.add t.clock span) f

let schedule_every t ?start period f =
  if period <= 0 then invalid_arg "Engine.schedule_every: period must be positive";
  let first = match start with None -> period | Some s -> s in
  if first < 0 then invalid_arg "Engine.schedule_every: negative start";
  let rec tick () = if f () then schedule_after t period tick in
  schedule_after t first tick

let step t =
  match Event_queue.pop t.queue with
  | None -> false
  | Some (time, f) ->
      t.clock <- time;
      t.executed <- t.executed + 1;
      f ();
      true

let run ?until ?max_events t =
  let budget = ref (match max_events with None -> max_int | Some n -> n) in
  let continue = ref true in
  while !continue && !budget > 0 do
    match Event_queue.peek_time t.queue with
    | None -> continue := false
    | Some next -> (
        match until with
        | Some stop when Sim_time.compare next stop > 0 -> continue := false
        | Some _ | None ->
            ignore (step t);
            decr budget)
  done;
  match until with
  | Some stop when Sim_time.compare t.clock stop < 0 && !budget > 0 ->
      t.clock <- stop
  | Some _ | None -> ()

let pending t = Event_queue.length t.queue
let events_executed t = t.executed

let publish_metrics ?registry ?labels t =
  let set name v =
    Telemetry.Registry.Gauge.set_int
      (Telemetry.Registry.Gauge.v ?registry ?labels name)
      v
  in
  set "sim_now_ns" (Sim_time.to_ns t.clock);
  set "sim_events_executed" t.executed;
  set "sim_events_pending" (Event_queue.length t.queue)
