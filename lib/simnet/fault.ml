type action =
  | Down
  | Up
  | Degrade of { loss : float; jitter : Sim_time.span }
  | Flaky of int
  | Crash
  | Restart

type event = { after : Sim_time.span; target : string; action : action }

let pp_action fmt = function
  | Down -> Format.pp_print_string fmt "down"
  | Up -> Format.pp_print_string fmt "up"
  | Degrade { loss; jitter } ->
      Format.fprintf fmt "degrade loss=%g jitter=%a" loss Sim_time.pp_span jitter
  | Flaky n -> Format.fprintf fmt "flaky %d" n
  | Crash -> Format.pp_print_string fmt "crash"
  | Restart -> Format.pp_print_string fmt "restart"

let pp_event fmt e =
  Format.fprintf fmt "%a %s %a" Sim_time.pp_span e.after e.target pp_action
    e.action

let to_script events =
  events
  |> List.map (fun e -> Format.asprintf "%a" pp_event e)
  |> String.concat "\n"

let random_events rng ~targets ~n ~horizon =
  if targets = [] then invalid_arg "Fault.random_events: no targets";
  if horizon <= 0 then invalid_arg "Fault.random_events: horizon <= 0";
  let pick l = List.nth l (Rng.int rng (List.length l)) in
  let events = ref [] in
  let emit e = events := e :: !events in
  for _ = 1 to n do
    let target = pick targets in
    let start = Rng.int rng (max 1 (horizon * 7 / 10)) in
    let stop = min horizon (start + 1 + Rng.int rng (max 1 (horizon / 4))) in
    match Rng.int rng 4 with
    | 0 ->
        emit { after = start; target; action = Down };
        emit { after = stop; target; action = Up }
    | 1 ->
        let loss = float_of_int (Rng.int rng 20) /. 100.0 in
        let jitter = Rng.int rng 100_000 in
        emit { after = start; target; action = Degrade { loss; jitter } };
        emit { after = stop; target; action = Up }
    | 2 -> emit { after = start; target; action = Flaky (1 + Rng.int rng 3) }
    | _ ->
        emit { after = start; target; action = Crash };
        emit { after = stop; target; action = Restart }
  done;
  List.stable_sort (fun a b -> compare a.after b.after) !events

(* ---- script parsing ---- *)

let parse_span s =
  let num_len =
    let rec go i =
      if i < String.length s
         && (match s.[i] with '0' .. '9' | '.' -> true | _ -> false)
      then go (i + 1)
      else i
    in
    go 0
  in
  if num_len = 0 then Error (Printf.sprintf "bad duration %S" s)
  else
    let digits = String.sub s 0 num_len in
    let unit_ = String.sub s num_len (String.length s - num_len) in
    match (float_of_string_opt digits, unit_) with
    | None, _ -> Error (Printf.sprintf "bad duration %S" s)
    | Some v, "ns" -> Ok (int_of_float v)
    | Some v, "us" -> Ok (int_of_float (v *. 1e3))
    | Some v, "ms" -> Ok (int_of_float (v *. 1e6))
    | Some v, "s" -> Ok (int_of_float (v *. 1e9))
    | Some _, u -> Error (Printf.sprintf "bad duration unit %S (ns|us|ms|s)" u)

let parse_degrade_args args =
  let rec go loss jitter = function
    | [] -> Ok (Degrade { loss; jitter })
    | arg :: rest -> (
        match String.index_opt arg '=' with
        | None -> Error (Printf.sprintf "bad degrade argument %S" arg)
        | Some i -> (
            let key = String.sub arg 0 i in
            let value = String.sub arg (i + 1) (String.length arg - i - 1) in
            match key with
            | "loss" -> (
                match float_of_string_opt value with
                | Some l when l >= 0.0 && l < 1.0 -> go l jitter rest
                | Some _ | None ->
                    Error (Printf.sprintf "bad loss %S (want [0, 1))" value))
            | "jitter" -> (
                match parse_span value with
                | Ok j -> go loss j rest
                | Error e -> Error e)
            | _ -> Error (Printf.sprintf "unknown degrade key %S" key)))
  in
  go 0.0 0 args

let parse_line line =
  match
    String.split_on_char ' ' line
    |> List.concat_map (String.split_on_char '\t')
    |> List.filter (fun s -> s <> "")
  with
  | [] -> Ok None
  | tok :: _ when String.length tok > 0 && tok.[0] = '#' -> Ok None
  | time :: target :: rest -> (
      match parse_span time with
      | Error e -> Error e
      | Ok after -> (
          let ev action = Ok (Some { after; target; action }) in
          match rest with
          | [ "down" ] -> ev Down
          | [ "up" ] -> ev Up
          | [ "crash" ] -> ev Crash
          | [ "restart" ] -> ev Restart
          | [ "flaky"; n ] -> (
              match int_of_string_opt n with
              | Some n when n > 0 -> ev (Flaky n)
              | Some _ | None -> Error (Printf.sprintf "bad flaky count %S" n))
          | "degrade" :: args -> (
              match parse_degrade_args args with
              | Ok a -> ev a
              | Error e -> Error e)
          | [] -> Error (Printf.sprintf "missing action for target %S" target)
          | verb :: _ -> Error (Printf.sprintf "unknown action %S" verb)))
  | [ only ] -> Error (Printf.sprintf "incomplete event %S" only)

let parse_script text =
  let lines = String.split_on_char '\n' text in
  let rec go n acc = function
    | [] -> Ok (List.rev acc)
    | line :: rest -> (
        match parse_line line with
        | Ok None -> go (n + 1) acc rest
        | Ok (Some e) -> go (n + 1) (e :: acc) rest
        | Error e -> Error (Printf.sprintf "line %d: %s" n e))
  in
  go 1 [] lines

(* ---- the injector ---- *)

type applied = {
  at : Sim_time.t;
  event : event;
  outcome : (unit, string) result;
}

type injector = {
  engine : Engine.t;
  handlers : (string, action -> (unit, string) result) Hashtbl.t;
  mutable log : applied list; (* newest first *)
}

let create engine = { engine; handlers = Hashtbl.create 8; log = [] }

let register t ~target handler =
  if Hashtbl.mem t.handlers target then
    invalid_arg (Printf.sprintf "Fault.register: duplicate target %S" target);
  Hashtbl.replace t.handlers target handler

let targets t =
  Hashtbl.fold (fun k _ acc -> k :: acc) t.handlers [] |> List.sort compare

let action_verb = function
  | Down -> "down"
  | Up -> "up"
  | Degrade _ -> "degrade"
  | Flaky _ -> "flaky"
  | Crash -> "crash"
  | Restart -> "restart"

let fire t event =
  let outcome =
    match Hashtbl.find_opt t.handlers event.target with
    | None -> Error (Printf.sprintf "no such target %S" event.target)
    | Some handler -> (
        match handler event.action with
        | outcome -> outcome
        | exception Invalid_argument msg -> Error msg)
  in
  (* Every injection lands on the flight recorder's "fault" stream —
     the trigger (and root cause) a post-mortem pivots on. *)
  if Telemetry.Eventlog.enabled () then
    Telemetry.Eventlog.emit
      ~level:
        (match outcome with
        | Ok () -> Telemetry.Eventlog.Warn
        | Error _ -> Telemetry.Eventlog.Error)
      ~ts_ns:(Sim_time.to_ns (Engine.now t.engine))
      ~corr:(Telemetry.Eventlog.corr_of_string event.target)
      ~detail:
        (Format.asprintf "%s %a%s" event.target pp_action event.action
           (match outcome with Ok () -> "" | Error e -> " FAILED: " ^ e))
      ~stream:"fault" (action_verb event.action);
  t.log <- { at = Engine.now t.engine; event; outcome } :: t.log

let schedule t events =
  List.iter
    (fun e -> Engine.schedule_after t.engine e.after (fun () -> fire t e))
    events

let run_script t text =
  match parse_script text with
  | Error _ as e -> e
  | Ok events ->
      schedule t events;
      Ok events

let applied t = List.rev t.log
let faults_injected t = List.length t.log

let pp_report fmt t =
  let log = applied t in
  Format.fprintf fmt "@[<v>fault injection report (%d events):@," (List.length log);
  List.iter
    (fun { at; event; outcome } ->
      Format.fprintf fmt "  [%a] %s %a: %s@," Sim_time.pp at event.target
        pp_action event.action
        (match outcome with Ok () -> "applied" | Error e -> "FAILED: " ^ e))
    log;
  Format.fprintf fmt "@]"
