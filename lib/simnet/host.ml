open Netpkt

type t = {
  node : Node.t;
  engine : Engine.t;
  name : string;
  mac : Mac_addr.t;
  ip : Ipv4_addr.t;
  mutable rx_log : Packet.t list; (* newest first *)
  mutable udp_rx : int;
  mutable echo_replies : int;
  mutable http_responses : (int * string) list; (* newest first *)
  mutable udp_echo_ports : int list;
  mutable pages : string list option; (* Some = serving http *)
  mutable dns_zone : (string * Ipv4_addr.t) list option; (* Some = dns server *)
  mutable resolved : (string * Ipv4_addr.t) list; (* newest first *)
  mutable nxdomains : int;
  mutable next_dns_id : int;
  mutable arp_cache : (Ipv4_addr.t * Mac_addr.t) list;
  latency : Stats.Histogram.t;
  mutable user_rx : (Packet.t -> unit) list;
}

let node t = t.node
let name t = t.name
let mac t = t.mac
let ip t = t.ip
let send t pkt =
  if Telemetry.Trace.enabled () then
    Telemetry.Trace.emit
      ~ts_ns:(Sim_time.to_ns (Engine.now t.engine))
      ~component:t.name ~layer:Telemetry.Trace.Host ~stage:"tx" ~port:0
      ~cycles:0 (* endpoint stack cost is out of scope for the model *) pkt;
  Node.transmit t.node ~port:0 pkt
let enable_udp_echo t ~port = t.udp_echo_ports <- port :: t.udp_echo_ports
let serve_http t ~pages = t.pages <- Some pages
let serve_dns t ~records = t.dns_zone <- Some records
let resolved t = List.rev t.resolved
let nxdomains t = t.nxdomains
let received t = List.rev t.rx_log
let received_count t = List.length t.rx_log
let udp_received t = t.udp_rx
let http_responses t = List.rev t.http_responses
let echo_replies t = t.echo_replies
let latency t = t.latency
let arp_cache t = t.arp_cache
let on_receive t f = t.user_rx <- t.user_rx @ [ f ]

let learn_arp t ip mac =
  if not (List.exists (fun (i, _) -> Ipv4_addr.equal i ip) t.arp_cache) then
    t.arp_cache <- (ip, mac) :: t.arp_cache

let handle_arp t (pkt : Packet.t) arp =
  learn_arp t arp.Arp.spa arp.Arp.sha;
  match arp.Arp.op with
  | Arp.Request when Ipv4_addr.equal arp.Arp.tpa t.ip ->
      let reply = Arp.reply_to arp ~sha:t.mac in
      send t (Packet.make ~dst:pkt.Packet.src ~src:t.mac (Packet.Arp reply))
  | Arp.Request | Arp.Reply -> ()

let handle_icmp t (ip_hdr : Ipv4.t) msg =
  match msg with
  | Icmp.Echo_request _ -> (
      match Icmp.reply_to msg with
      | Some reply ->
          (* Reply straight to the sender's MAC, which we learned from the
             frame via the ARP cache or use the broadcast-free fast path
             below. *)
          let dst_mac =
            match
              List.find_opt (fun (i, _) -> Ipv4_addr.equal i ip_hdr.Ipv4.src) t.arp_cache
            with
            | Some (_, m) -> m
            | None -> Mac_addr.broadcast
          in
          send t
            (Packet.make ~dst:dst_mac ~src:t.mac
               (Packet.Ip (Ipv4.make ~src:t.ip ~dst:ip_hdr.Ipv4.src (Ipv4.Icmp reply))))
      | None -> ())
  | Icmp.Echo_reply _ -> t.echo_replies <- t.echo_replies + 1
  | Icmp.Dest_unreachable _ | Icmp.Time_exceeded _ -> ()

let handle_dns t (pkt : Packet.t) (ip_hdr : Ipv4.t) (dgram : Udp.t) =
  match
    (try Some (Dns_lite.decode dgram.Udp.payload)
     with Wire.Truncated _ | Wire.Malformed _ -> None)
  with
  | None -> ()
  | Some msg ->
      if msg.Dns_lite.response then begin
        if msg.Dns_lite.rcode <> 0 then t.nxdomains <- t.nxdomains + 1;
        List.iter
          (fun (a : Dns_lite.answer) ->
            t.resolved <- (a.Dns_lite.name, a.Dns_lite.addr) :: t.resolved)
          msg.Dns_lite.answers
      end
      else
        match t.dns_zone with
        | None -> ()
        | Some zone ->
            let reply = Dns_lite.respond msg ~addrs:zone in
            let out =
              Udp.make ~src_port:Dns_lite.server_port
                ~dst_port:dgram.Udp.src_port (Dns_lite.encode reply)
            in
            send t
              (Packet.make ~dst:pkt.Packet.src ~src:t.mac
                 (Packet.Ip
                    (Ipv4.make ~src:t.ip ~dst:ip_hdr.Ipv4.src (Ipv4.Udp out))))

let handle_udp t (pkt : Packet.t) (ip_hdr : Ipv4.t) (dgram : Udp.t) =
  t.udp_rx <- t.udp_rx + 1;
  if dgram.Udp.dst_port = Dns_lite.server_port
     || dgram.Udp.src_port = Dns_lite.server_port
  then handle_dns t pkt ip_hdr dgram;
  (match Probe.decode dgram.Udp.payload with
  | Some sent_at ->
      let delay = Sim_time.diff (Engine.now t.engine) sent_at in
      if delay >= 0 then Stats.Histogram.record t.latency delay
  | None -> ());
  if List.mem dgram.Udp.dst_port t.udp_echo_ports then begin
    let echo =
      Udp.make ~src_port:dgram.Udp.dst_port ~dst_port:dgram.Udp.src_port
        dgram.Udp.payload
    in
    send t
      (Packet.make ~dst:pkt.Packet.src ~src:t.mac
         (Packet.Ip (Ipv4.make ~src:t.ip ~dst:ip_hdr.Ipv4.src (Ipv4.Udp echo))))
  end

let handle_tcp t (pkt : Packet.t) (ip_hdr : Ipv4.t) (seg : Tcp.t) =
  match t.pages with
  | None -> (
      (* Client side: record HTTP responses. *)
      match Http_lite.parse_response seg.Tcp.payload with
      | Some resp ->
          t.http_responses <- (resp.Http_lite.status, resp.Http_lite.resp_body) :: t.http_responses
      | None -> ())
  | Some pages -> (
      match Http_lite.parse_request seg.Tcp.payload with
      | None -> ()
      | Some req ->
          let resp =
            if List.mem req.Http_lite.path pages then
              Http_lite.ok ("contents of " ^ req.Http_lite.path ^ "\n")
            else
              {
                Http_lite.status = 404;
                reason = "Not Found";
                resp_headers = [];
                resp_body = "no such page\n";
              }
          in
          let reply_seg =
            Tcp.make ~src_port:seg.Tcp.dst_port ~dst_port:seg.Tcp.src_port
              ~flags:Tcp.ack_only
              (Http_lite.render_response resp)
          in
          send t
            (Packet.make ~dst:pkt.Packet.src ~src:t.mac
               (Packet.Ip (Ipv4.make ~src:t.ip ~dst:ip_hdr.Ipv4.src (Ipv4.Tcp reply_seg)))))

let handle t pkt =
  if Telemetry.Trace.enabled () then
    Telemetry.Trace.emit
      ~ts_ns:(Sim_time.to_ns (Engine.now t.engine))
      ~component:t.name ~layer:Telemetry.Trace.Host ~stage:"rx" ~port:0
      ~cycles:0 (* endpoint stack cost is out of scope for the model *) pkt;
  t.rx_log <- pkt :: t.rx_log;
  List.iter (fun f -> f pkt) t.user_rx;
  match pkt.Packet.l3 with
  | Packet.Arp arp -> handle_arp t pkt arp
  | Packet.Ip ip_hdr ->
      let addressed_to_us =
        Ipv4_addr.equal ip_hdr.Ipv4.dst t.ip
        && (Mac_addr.equal pkt.Packet.dst t.mac || Mac_addr.is_broadcast pkt.Packet.dst)
      in
      learn_arp t ip_hdr.Ipv4.src pkt.Packet.src;
      if addressed_to_us then begin
        match ip_hdr.Ipv4.payload with
        | Ipv4.Icmp msg -> handle_icmp t ip_hdr msg
        | Ipv4.Udp dgram -> handle_udp t pkt ip_hdr dgram
        | Ipv4.Tcp seg -> handle_tcp t pkt ip_hdr seg
        | Ipv4.Raw _ -> ()
      end
  | Packet.Raw _ -> ()

let create engine ~name ~mac ~ip () =
  let node = Node.create engine ~name ~ports:1 in
  let t =
    {
      node;
      engine;
      name;
      mac;
      ip;
      rx_log = [];
      udp_rx = 0;
      echo_replies = 0;
      http_responses = [];
      udp_echo_ports = [];
      pages = None;
      dns_zone = None;
      resolved = [];
      nxdomains = 0;
      next_dns_id = 1;
      arp_cache = [];
      latency = Stats.Histogram.create ();
      user_rx = [];
    }
  in
  Node.set_handler node (fun _node ~in_port:_ pkt -> handle t pkt);
  t

let http_get t ~server_mac ~server_ip ~host ~path ~src_port =
  let req = Http_lite.get ~host path in
  let seg =
    Tcp.make ~src_port ~dst_port:80 ~flags:Tcp.ack_only (Http_lite.render_request req)
  in
  send t
    (Packet.make ~dst:server_mac ~src:t.mac
       (Packet.Ip (Ipv4.make ~src:t.ip ~dst:server_ip (Ipv4.Tcp seg))))

let resolve t ~server_mac ~server_ip name =
  let id = t.next_dns_id in
  t.next_dns_id <- t.next_dns_id + 1;
  let q = Dns_lite.query ~id name in
  let dgram =
    Udp.make ~src_port:(20000 + (id land 0x3fff)) ~dst_port:Dns_lite.server_port
      (Dns_lite.encode q)
  in
  send t
    (Packet.make ~dst:server_mac ~src:t.mac
       (Packet.Ip (Ipv4.make ~src:t.ip ~dst:server_ip (Ipv4.Udp dgram))))

let ping t ~dst_mac ~dst_ip ~seq =
  send t (Packet.icmp_echo ~dst:dst_mac ~src:t.mac ~ip_src:t.ip ~ip_dst:dst_ip ~id:1 ~seq)
