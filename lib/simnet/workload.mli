(** Seeded heavy-tailed flow workloads: Zipf-popular sources, a few
    elephant flows carrying most bytes, many mice, and an optional
    one-packet-per-host census segment that pins the plan's true source
    cardinality at exactly [hosts].

    This is the first cut of the city-scale workload generator (ROADMAP
    item 2): today it feeds the flow-telemetry accuracy rig, which
    needs ground truth (who the elephants are, how many hosts exist)
    alongside realistic skew.  Plans are pure data — deterministic per
    seed — and {!packet} materializes frames on demand. *)

type flow = {
  fl_src_host : int;
  fl_dst_host : int;
  fl_sport : int;
  fl_dport : int;
  fl_packets : int;
  fl_frame_bytes : int;  (** target wire size, reached via {!Netpkt.Packet.pad_to} *)
  fl_start_ns : int;
  fl_gap_ns : int;  (** inter-packet gap within the flow *)
  fl_elephant : bool;
}

type t = {
  seed : int;
  hosts : int;
  flows : flow array;  (** elephants first, then mice, then the census *)
  total_packets : int;
}

val plan :
  seed:int ->
  hosts:int ->
  mice:int ->
  elephants:int ->
  ?skew:float ->
  ?census:bool ->
  ?duration_ns:int ->
  unit ->
  t
(** Defaults: [skew] 1.1, [census] true, [duration_ns] 1s.  Elephants
    send 2000–5000 full-size (1518 B) frames; mice send 1–24 small
    frames; census flows send exactly one 64 B frame per host.
    @raise Invalid_argument on non-positive [hosts] or [duration_ns],
    or negative flow counts. *)

val host_ip : int -> Netpkt.Ipv4_addr.t
(** Host [i]'s address, [10.0.0.1 + i]. *)

val host_mac : int -> Netpkt.Mac_addr.t

val packet : flow -> Netpkt.Packet.t
(** The (single) frame shape this flow sends; every packet of a flow is
    identical, so callers can build once and replay [fl_packets]
    times. *)
