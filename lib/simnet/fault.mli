(** Deterministic, sim-time-scripted fault injection.

    A fault scenario is a list of {!event}s — "after this much sim time,
    apply this action to that target".  Targets are free-form strings
    ("trunk:primary", "channel", "mgmt", …) registered by whoever owns
    the component; the injector just dispatches at the scheduled instant
    and keeps a log, so a whole chaos run is as deterministic as the
    engine itself.  [Harmless.Chaos] binds the targets of a full
    deployment; tests can register ad-hoc handlers directly.

    The script text format is one event per line
    ([#] comments and blank lines ignored):

    {v
    20ms  channel        down
    60ms  channel        up
    45ms  mgmt           flaky 2
    80ms  trunk:primary  down
    90ms  trunk:primary  degrade loss=0.05 jitter=100us
    95ms  switch:ss2     crash
    99ms  switch:ss2     restart
    v} *)

type action =
  | Down                 (** take the target down / black-hole it *)
  | Up                   (** restore the target *)
  | Degrade of { loss : float; jitter : Sim_time.span }
      (** impair without killing (links, channels) *)
  | Flaky of int         (** make the target's next [n] operations fail *)
  | Crash                (** crash a component, losing its soft state *)
  | Restart              (** bring a crashed component back *)

type event = { after : Sim_time.span; target : string; action : action }

val pp_action : Format.formatter -> action -> unit
val pp_event : Format.formatter -> event -> unit

val parse_span : string -> (Sim_time.span, string) result
(** ["20ms"], ["500us"], ["1s"], ["100ns"]. *)

val parse_script : string -> (event list, string) result
(** Parse the text format above.  Errors name the offending line. *)

val to_script : event list -> string
(** Render events back to the text format, one per line, such that
    [parse_script (to_script evs)] succeeds.  Lets a randomly generated
    schedule be printed, saved, and replayed verbatim. *)

val random_events :
  Rng.t -> targets:string list -> n:int -> horizon:Sim_time.span -> event list
(** [random_events rng ~targets ~n ~horizon] draws [n] random faults over
    the given targets, each paired with its recovery ([Down]/[Degrade]
    get an [Up], [Crash] a [Restart]; [Flaky] self-heals), all within
    [horizon].  Sorted by [after]; same rng state gives the same
    schedule.
    @raise Invalid_argument if [targets] is empty or [horizon <= 0]. *)

type injector

val create : Engine.t -> injector

val register :
  injector -> target:string -> (action -> (unit, string) result) -> unit
(** Bind a target name to its handler.  Handlers return [Error] for
    actions that make no sense for the target (logged, not raised).
    @raise Invalid_argument on a duplicate target. *)

val targets : injector -> string list
(** Registered target names, sorted. *)

val schedule : injector -> event list -> unit
(** Schedule every event at [now + after] on the injector's engine. *)

val run_script : injector -> string -> (event list, string) result
(** {!parse_script} then {!schedule}; returns the parsed events. *)

(** One log entry: when the event fired and whether it applied. *)
type applied = {
  at : Sim_time.t;
  event : event;
  outcome : (unit, string) result;
}

val applied : injector -> applied list
(** Events that have fired so far, oldest first.  Unknown targets log an
    [Error] outcome rather than raising — a chaos script must never
    crash the run it is testing. *)

val faults_injected : injector -> int
val pp_report : Format.formatter -> injector -> unit
