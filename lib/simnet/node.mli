(** Network nodes: anything with ports that sends and receives frames
    (hosts, legacy switches, software-switch servers).

    A node's behaviour is its {e handler}, invoked whenever a frame is
    delivered to one of its ports.  Transmission goes out through whatever
    a {!Link} attached to the port. *)

type t

type handler = t -> in_port:int -> Netpkt.Packet.t -> unit

val create : Engine.t -> name:string -> ports:int -> t
(** A node with ports numbered [0 .. ports-1] and a no-op handler.
    @raise Invalid_argument if [ports < 0]. *)

val name : t -> string
val engine : t -> Engine.t
val port_count : t -> int

val add_ports : t -> int -> int
(** [add_ports t n] appends [n] fresh ports, returning the index of the
    first new one. *)

val set_handler : t -> handler -> unit

val transmit : t -> port:int -> Netpkt.Packet.t -> unit
(** Send a frame out of [port].  If nothing is attached the frame is
    dropped and counted under ["tx_drop_unattached"].
    @raise Invalid_argument on a bad port number. *)

val deliver : t -> port:int -> Netpkt.Packet.t -> unit
(** Hand a frame to the node as if it arrived on [port]; links call this,
    and tests may too.  Runs taps, updates counters, then the handler. *)

val attach : t -> port:int -> (Netpkt.Packet.t -> unit) -> unit
(** Wire the port's transmit side to a link endpoint.  Used by {!Link}.
    @raise Invalid_argument if already attached. *)

val detach : t -> port:int -> unit
val attached : t -> port:int -> bool

val set_carrier : t -> port:int -> bool -> unit
(** Force the port's carrier signal (default up).  Dropping carrier on an
    attached port fires the {!on_attachment_change} watchers with
    [up = false] — the same signal a cable pull produces — and makes
    {!transmit} drop frames (counted ["tx_drop_no_carrier"]).  Faults use
    this to take a link down without tearing the attachment itself off,
    so the link can come back later. *)

val carrier : t -> port:int -> bool
(** [attached] and carrier up. *)

val counters : t -> Stats.Counter.t
(** Per-node counters; ["rx"], ["tx"], per-port ["rx.<n>"], ["tx.<n>"],
    per-port byte totals ["rx_bytes.<n>"], ["tx_bytes.<n>"] (wire
    sizes — what OpenFlow port stats report), and drop reasons. *)

type direction = Rx | Tx

val add_tap : t -> (direction -> int -> Netpkt.Packet.t -> unit) -> unit
(** Observe every frame the node receives or transmits (direction, port,
    frame).  Taps run before the handler and must not modify state other
    than their own. *)

val on_attachment_change : t -> (port:int -> up:bool -> unit) -> unit
(** Notify whenever a port is attached to or detached from a link — the
    simulator's carrier-detect signal.  Fires on {!attach} and {!detach}
    (links detach both ends on disconnect). *)
