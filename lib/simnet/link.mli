(** Full-duplex point-to-point links with finite bandwidth, propagation
    delay and a tail-drop output queue per direction.

    The queueing model: each direction tracks when its transmitter becomes
    free.  A frame offered while the transmitter is busy waits; the wait
    corresponds to the bytes already committed, and if that backlog would
    exceed [queue_bytes] the frame is tail-dropped.  Frames larger than
    [mtu] (payload bytes after the MAC header and any tags) are dropped
    and counted. *)

type config = {
  bandwidth_bps : int;     (** e.g. [1_000_000_000] for 1 GbE *)
  propagation : Sim_time.span;
  queue_bytes : int;       (** output queue capacity *)
  mtu : int;               (** maximum payload size, conventionally 1500 *)
  loss : float;            (** random frame-loss probability, [0, 1) *)
  jitter : Sim_time.span;  (** extra uniform [0, jitter] propagation delay *)
  impair_seed : int;       (** seed for the loss/jitter stream *)
}

val gige : config
(** 1 Gb/s, 5 us propagation, 512 KiB queue, 1500 MTU. *)

val ten_gige : config
(** 10 Gb/s, 5 us propagation, 2 MiB queue, 1500 MTU. *)

val config :
  ?bandwidth_bps:int -> ?propagation:Sim_time.span -> ?queue_bytes:int ->
  ?mtu:int -> ?loss:float -> ?jitter:Sim_time.span -> ?impair_seed:int ->
  unit -> config
(** {!gige} with overrides.  Loss and jitter default to zero: links are
    perfect unless a test injects impairments. *)

type t

val connect :
  ?a_to_b:config -> ?b_to_a:config -> Node.t * int -> Node.t * int -> t
(** [connect (na, pa) (nb, pb)] attaches the two ports back-to-back.  Both
    directions default to {!gige}.  The nodes must share an engine.
    @raise Invalid_argument if either port is already attached or the
    engines differ. *)

val disconnect : t -> unit

val set_up : t -> bool -> unit
(** Administratively (or faultily) take both directions down or bring
    them back.  Down: frames offered to either end are dropped (counted
    [drops_down]) and both endpoints lose carrier (firing their
    attachment-change watchers).  Unlike {!disconnect} the attachment
    survives, so [set_up t true] restores service — the primitive the
    fault injector uses for link down/up events. *)

val is_up : t -> bool

val set_impairments : ?loss:float -> ?jitter:Sim_time.span -> t -> unit
(** Degrade (or heal) a live link: override the loss probability and/or
    jitter of both directions.  The seeded impairment streams continue —
    runs stay deterministic.
    @raise Invalid_argument on loss outside [0, 1) or negative jitter. *)

(** Per-direction statistics. *)
type dir_stats = {
  tx_packets : int;
  tx_bytes : int;      (** wire bytes, including padding and FCS *)
  drops_queue : int;
  drops_mtu : int;
  drops_loss : int;    (** random losses from the impairment model *)
  drops_down : int;    (** frames offered while the link was down *)
}

val stats_a_to_b : t -> dir_stats
val stats_b_to_a : t -> dir_stats

val utilization_a_to_b : t -> now:Sim_time.t -> float
(** Fraction of capacity used since the start of the simulation. *)
