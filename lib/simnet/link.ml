type config = {
  bandwidth_bps : int;
  propagation : Sim_time.span;
  queue_bytes : int;
  mtu : int;
  loss : float;
  jitter : Sim_time.span;
  impair_seed : int;
}

let gige =
  {
    bandwidth_bps = 1_000_000_000;
    propagation = Sim_time.us 5;
    queue_bytes = 512 * 1024;
    mtu = 1500;
    loss = 0.0;
    jitter = 0;
    impair_seed = 1;
  }

let ten_gige =
  { gige with bandwidth_bps = 10_000_000_000; queue_bytes = 2 * 1024 * 1024 }

let config ?(bandwidth_bps = gige.bandwidth_bps) ?(propagation = gige.propagation)
    ?(queue_bytes = gige.queue_bytes) ?(mtu = gige.mtu) ?(loss = 0.0)
    ?(jitter = 0) ?(impair_seed = 1) () =
  if bandwidth_bps <= 0 then invalid_arg "Link.config: bandwidth_bps <= 0";
  if propagation < 0 then invalid_arg "Link.config: negative propagation";
  if queue_bytes < 0 then invalid_arg "Link.config: negative queue_bytes";
  if mtu <= 0 then invalid_arg "Link.config: mtu <= 0";
  if loss < 0.0 || loss >= 1.0 then invalid_arg "Link.config: loss outside [0, 1)";
  if jitter < 0 then invalid_arg "Link.config: negative jitter";
  { bandwidth_bps; propagation; queue_bytes; mtu; loss; jitter; impair_seed }

type dir_stats = {
  tx_packets : int;
  tx_bytes : int;
  drops_queue : int;
  drops_mtu : int;
  drops_loss : int;
  drops_down : int;
}

type dir = {
  cfg : config;
  engine : Engine.t;
  dst : Node.t;
  dst_port : int;
  rng : Rng.t;
  mutable next_free : Sim_time.t;
  mutable up : bool;
  (* Runtime impairments, initialized from [cfg] and mutable so fault
     injection can degrade a live link. *)
  mutable loss : float;
  mutable jitter : Sim_time.span;
  mutable packets : int;
  mutable bytes : int;
  mutable drops_queue : int;
  mutable drops_mtu : int;
  mutable drops_loss : int;
  mutable drops_down : int;
}

type t = {
  ab : dir;
  ba : dir;
  node_a : Node.t;
  port_a : int;
  node_b : Node.t;
  port_b : int;
}

let serialization_ns cfg wire_bytes =
  (* ns = bytes * 8 * 1e9 / bps; computed to avoid overflow for any
     realistic frame size and bandwidth. *)
  let bits = wire_bytes * 8 in
  int_of_float (ceil (float_of_int bits *. 1e9 /. float_of_int cfg.bandwidth_bps))

let backlog_bytes dir ~now =
  let busy = Sim_time.diff dir.next_free now in
  if busy <= 0 then 0
  else
    int_of_float
      (Float.of_int busy *. float_of_int dir.cfg.bandwidth_bps /. 8e9)

let send dir pkt =
  if not dir.up then dir.drops_down <- dir.drops_down + 1
  else begin
    let now = Engine.now dir.engine in
    (* The MTU constrains the L3 payload: frame size minus the 14-byte MAC
       header and 4 bytes per tag. *)
    let payload = Netpkt.Packet.payload_size pkt in
    if payload > dir.cfg.mtu then dir.drops_mtu <- dir.drops_mtu + 1
    else if dir.loss > 0.0 && Rng.float dir.rng 1.0 < dir.loss then
      dir.drops_loss <- dir.drops_loss + 1
    else begin
      let wire = Netpkt.Packet.wire_size pkt in
      if backlog_bytes dir ~now + wire > dir.cfg.queue_bytes && dir.cfg.queue_bytes > 0
      then dir.drops_queue <- dir.drops_queue + 1
      else begin
        let start = Sim_time.max now dir.next_free in
        let done_tx = Sim_time.add start (serialization_ns dir.cfg wire) in
        dir.next_free <- done_tx;
        dir.packets <- dir.packets + 1;
        dir.bytes <- dir.bytes + wire;
        let extra =
          if dir.jitter > 0 then Rng.int dir.rng (dir.jitter + 1) else 0
        in
        let arrival = Sim_time.add done_tx (dir.cfg.propagation + extra) in
        let dst = dir.dst and dst_port = dir.dst_port in
        Engine.schedule_at dir.engine arrival (fun () ->
            Node.deliver dst ~port:dst_port pkt)
      end
    end
  end

let connect ?(a_to_b = gige) ?(b_to_a = gige) (node_a, port_a) (node_b, port_b) =
  let engine = Node.engine node_a in
  if not (Node.engine node_b == engine) then
    invalid_arg "Link.connect: nodes on different engines";
  let mk_dir cfg dst dst_port =
    {
      cfg;
      engine;
      dst;
      dst_port;
      rng = Rng.create cfg.impair_seed;
      next_free = Sim_time.zero;
      up = true;
      loss = cfg.loss;
      jitter = cfg.jitter;
      packets = 0;
      bytes = 0;
      drops_queue = 0;
      drops_mtu = 0;
      drops_loss = 0;
      drops_down = 0;
    }
  in
  let ab = mk_dir a_to_b node_b port_b in
  let ba = mk_dir b_to_a node_a port_a in
  Node.attach node_a ~port:port_a (fun pkt -> send ab pkt);
  Node.attach node_b ~port:port_b (fun pkt -> send ba pkt);
  { ab; ba; node_a; port_a; node_b; port_b }

let disconnect t =
  t.ab.up <- false;
  t.ba.up <- false;
  Node.detach t.node_a ~port:t.port_a;
  Node.detach t.node_b ~port:t.port_b

let set_up t up =
  if (t.ab.up && t.ba.up) <> up then begin
    t.ab.up <- up;
    t.ba.up <- up;
    (* Both ends lose (or regain) carrier, like a fiber cut/splice. *)
    Node.set_carrier t.node_a ~port:t.port_a up;
    Node.set_carrier t.node_b ~port:t.port_b up
  end

let is_up t = t.ab.up && t.ba.up

let set_impairments ?loss ?jitter t =
  (match loss with
  | Some l when l < 0.0 || l >= 1.0 ->
      invalid_arg "Link.set_impairments: loss outside [0, 1)"
  | Some l ->
      t.ab.loss <- l;
      t.ba.loss <- l
  | None -> ());
  match jitter with
  | Some j when j < 0 -> invalid_arg "Link.set_impairments: negative jitter"
  | Some j ->
      t.ab.jitter <- j;
      t.ba.jitter <- j
  | None -> ()

let dir_stats d =
  {
    tx_packets = d.packets;
    tx_bytes = d.bytes;
    drops_queue = d.drops_queue;
    drops_mtu = d.drops_mtu;
    drops_loss = d.drops_loss;
    drops_down = d.drops_down;
  }

let stats_a_to_b t = dir_stats t.ab
let stats_b_to_a t = dir_stats t.ba

let utilization_a_to_b t ~now =
  let seconds = Sim_time.span_to_seconds (Sim_time.to_ns now) in
  if seconds <= 0.0 then 0.0
  else
    8.0 *. float_of_int t.ab.bytes
    /. (seconds *. float_of_int t.ab.cfg.bandwidth_bps)
