(** The discrete-event simulation loop.

    An engine owns the clock and the pending-event queue.  Everything in a
    simulation (links, switches, hosts, traffic sources, the controller
    channel) schedules closures on the same engine, so a whole deployment
    advances as one deterministic event sequence. *)

type t

val create : unit -> t
val now : t -> Sim_time.t

val schedule_at : t -> Sim_time.t -> (unit -> unit) -> unit
(** @raise Invalid_argument if the instant is in the past. *)

val schedule_after : t -> Sim_time.span -> (unit -> unit) -> unit
(** @raise Invalid_argument if the span is negative. *)

val schedule_every : t -> ?start:Sim_time.span -> Sim_time.span -> (unit -> bool) -> unit
(** [schedule_every t period f] runs [f] every [period] (first firing
    after [start], default [period]) until [f] returns [false].  The
    callback may reschedule itself at a different cadence by returning
    [false] and calling {!schedule_after} — that is how adaptive pollers
    are built on top of this.
    @raise Invalid_argument if [period <= 0] or [start < 0]. *)

val step : t -> bool
(** Run the earliest pending event.  [false] if none was pending. *)

val run : ?until:Sim_time.t -> ?max_events:int -> t -> unit
(** Run events in order until the queue drains, the clock would pass
    [until], or [max_events] have executed.  When stopped by [until], the
    clock is advanced to exactly [until]. *)

val pending : t -> int
(** Number of queued events. *)

val events_executed : t -> int
(** Total events executed since creation. *)

val enable_telemetry : ?sample_every:int -> ?capacity:int -> t -> unit
(** Turn on scheduler self-observation: every [sample_every]-th (default
    1) dispatch records the queue depth after the pop and the scheduling
    lag — how far the clock jumps to reach the event, i.e. how idle the
    simulated system was — into two ring-buffer time series (default
    [capacity] 4096 points) timestamped with the event's own instant.
    Calling it again replaces the series.
    @raise Invalid_argument if [sample_every <= 0]. *)

val queue_depth_series : t -> Telemetry.Timeseries.t option
(** The sampled queue-depth series; [None] until {!enable_telemetry}. *)

val scheduling_lag_series : t -> Telemetry.Timeseries.t option
(** The sampled scheduling-lag series (ns per jump); [None] until
    {!enable_telemetry}. *)

val publish_metrics :
  ?registry:Telemetry.Registry.t -> ?labels:Telemetry.Registry.labels ->
  t -> unit
(** Snapshot the engine's state ([sim_now_ns], [sim_events_executed],
    [sim_events_pending] — plus, once {!enable_telemetry} is on and has
    sampled, [sim_queue_depth_sampled] and [sim_sched_lag_ns]) into
    gauges.  Pull-based: call it when a metrics export is wanted;
    nothing is recorded otherwise. *)
