open Netpkt
open Openflow

type subscriber = {
  sub_ip : Ipv4_addr.t;
  sub_mac : Mac_addr.t;
  sub_port : int;
}

type t = {
  subscribers : subscriber list;
  dmz : Dmz.policy;
  dmz_ports : int list;
  vip_ip : Ipv4_addr.t;
  vip_mac : Mac_addr.t;
  lb_ingress : int;
  lb_backends : Load_balancer.backend list;
  parental : Parental_control.t;
  limits : Rate_limiter.limit list;
  num_ports : int;
}

let ip = Ipv4_addr.of_string
let mac = Mac_addr.make_local

let default () =
  let subscribers =
    List.init 4 (fun i ->
        {
          sub_ip = ip (Printf.sprintf "10.1.0.%d" (i + 1));
          sub_mac = mac (0x101 + i);
          sub_port = i;
        })
  in
  let vm1 = { Dmz.vm_ip = ip "10.2.0.1"; vm_mac = mac 0x201; vm_port = 4 } in
  let vm2 = { Dmz.vm_ip = ip "10.2.0.2"; vm_mac = mac 0x202; vm_port = 5 } in
  let vm3 = { Dmz.vm_ip = ip "10.2.0.3"; vm_mac = mac 0x203; vm_port = 6 } in
  let backends =
    [
      {
        Load_balancer.backend_ip = ip "10.3.1.1";
        backend_mac = mac 0x311;
        backend_port = 8;
      };
      {
        Load_balancer.backend_ip = ip "10.3.1.2";
        backend_mac = mac 0x312;
        backend_port = 9;
      };
    ]
  in
  let parental =
    Parental_control.create
      ~sites:
        [
          ("blocked.example", ip "203.0.113.5");
          ("other.example", ip "203.0.113.7");
        ]
      ~blocked:
        [ (ip "10.1.0.1", "blocked.example"); (ip "10.1.0.2", "nosuch.example") ]
      ()
  in
  {
    subscribers;
    dmz =
      {
        Dmz.vms = [ vm1; vm2; vm3 ];
        (* vm3 is in the zone but party to no allowed pair: it exercises
           the default-deny fence. *)
        allowed = [ (vm1.Dmz.vm_ip, vm2.Dmz.vm_ip) ];
      };
    dmz_ports = [ 4; 5; 6 ];
    vip_ip = ip "10.3.0.10";
    vip_mac = mac 0x310;
    lb_ingress = 7;
    lb_backends = backends;
    parental;
    limits =
      [
        { Rate_limiter.subject = ip "10.1.0.1"; rate_kbps = 512; burst_kb = 16 };
      ];
    num_ports = 10;
  }

let l2_messages t =
  (* ARP outranks the unicast band: resolution traffic always floods, so
     one broadcast-domain rule covers every port instead of a per-MAC
     copy under the ARP ethertype. *)
  Of_message.Flow_mod
    (Of_message.add_flow ~table_id:1 ~priority:1900
       ~match_:Of_match.(any |> eth_type 0x0806)
       [ Flow_entry.Apply_actions [ Of_action.Output Of_action.Flood ] ])
  :: List.map
       (fun s ->
         Of_message.Flow_mod
           (Of_message.add_flow ~table_id:1 ~priority:1700
              ~match_:Of_match.(any |> eth_dst s.sub_mac)
              [ Flow_entry.Apply_actions [ Of_action.output s.sub_port ] ]))
       t.subscribers

let handwritten_tables = 2

let handwritten_messages t =
  Rate_limiter.messages ~limits:t.limits ~table_id:0 ~goto_table:1 ()
  @ Parental_control.messages t.parental ~table_id:1 ()
  @ Dmz.messages t.dmz ~table_id:1 ~in_ports:t.dmz_ports ()
  @ Load_balancer.messages ~vip_ip:t.vip_ip ~vip_mac:t.vip_mac
      ~ingress_port:t.lb_ingress ~backends:t.lb_backends ~table_id:1
      ~vip_in_ports:[ t.lb_ingress ] ()
  @ l2_messages t

let l2_fragment t =
  let open Policy.Syntax in
  orelse
    (seq (filter (eth_type_is 0x0806)) flood)
    (unions
       (List.map
          (fun s -> seq (filter (eth_dst_is s.sub_mac)) (fwd s.sub_port))
          t.subscribers))

let policy t =
  let open Policy.Syntax in
  (* Table 1 as fallback bands, mirroring the hand-written priorities:
     parental sniff (2100) > dmz pairs (2000) = lb (2000, disjoint by
     ingress scope) > arp flood (1900; the dmz and lb per-port arp rules
     at 1800 agree with it and are shadowed) > subscriber L2 (1700).
     The parental drops (2200) shadow everything, so they guard the
     whole chain; the dmz deny (1600) sits below every forwarding band
     and is plain absence. *)
  let sniff_ctrl =
    seq (filter (Parental_control.sniff_pred t.parental)) (to_controller ())
  in
  let forwarding =
    orelses
      [
        sniff_ctrl;
        union
          (Dmz.fragment t.dmz ~in_ports:t.dmz_ports ())
          (Load_balancer.fragment ~vip_ip:t.vip_ip ~vip_mac:t.vip_mac
             ~ingress_port:t.lb_ingress ~backends:t.lb_backends
             ~vip_in_ports:[ t.lb_ingress ] ());
        l2_fragment t;
      ]
  in
  let table1 =
    seq (filter (neg (Parental_control.blocked_pred t.parental))) forwarding
  in
  (* The meter stage must bill dropped traffic too (the hand-written
     pipeline meters in table 0 before table 1 decides), hence the
     explicit discard fallback rather than a bare empty set. *)
  seq (Rate_limiter.fragment ~limits:t.limits ()) (orelse table1 discard)

(* Value pools for the equivalence fuzzer: every address the scenario
   knows plus a stranger of each kind, so collisions are the common case. *)

let macs t =
  List.map (fun s -> s.sub_mac) t.subscribers
  @ List.map (fun (vm : Dmz.vm) -> vm.Dmz.vm_mac) t.dmz.Dmz.vms
  @ (t.vip_mac
    :: List.map
         (fun (b : Load_balancer.backend) -> b.Load_balancer.backend_mac)
         t.lb_backends)
  @ [ Mac_addr.broadcast; mac 0x999 ]

let ips t =
  List.map (fun s -> s.sub_ip) t.subscribers
  @ List.map (fun (vm : Dmz.vm) -> vm.Dmz.vm_ip) t.dmz.Dmz.vms
  @ (t.vip_ip
    :: List.map
         (fun (b : Load_balancer.backend) -> b.Load_balancer.backend_ip)
         t.lb_backends)
  (* The parental sites, plus a stranger. *)
  @ [ ip "203.0.113.5"; ip "203.0.113.7"; ip "192.0.2.99" ]

let l4_ports _t = [ 80; 53; 443; 8080 ]
