(** Top-talkers from sampled packets: pair with
    {!Softswitch.Soft_switch.set_sampling} and the app turns the sampled
    packet-ins into a per-source traffic ranking — the sFlow-collector
    replacement among the in-network use cases. *)

type t

val create : unit -> t
val app : t -> Controller.app

val samples : t -> int
(** Total sampled packets absorbed. *)

val ranking : t -> (Netpkt.Ipv4_addr.t * int) list
(** Source addresses by sample count, descending; ties break on
    address order, so the ranking is a total order (and agrees with
    {!byte_ranking} and the sketch plane's top-k on exact workloads). *)

val estimated_share : t -> Netpkt.Ipv4_addr.t -> float
(** Fraction of sampled traffic attributed to one source, in [0, 1]. *)

val attach_poller : t -> Stats_poller.t -> unit
(** Also source exact counters from this {!Stats_poller} — sampling
    gives cheap estimates, the monitoring plane gives ground truth; the
    two rankings side by side is exactly the sFlow-vs-counters
    comparison operators run. *)

val byte_ranking : t -> (Netpkt.Ipv4_addr.t * int) list
(** Sources by cumulative bytes, descending, from the attached pollers'
    latest flow stats: every flow matching a /32 [ip_src] attributes its
    byte counter to that source.  Ties break on address order; empty
    until a poller is attached and has a reply. *)
