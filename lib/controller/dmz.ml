open Netpkt
open Openflow

type vm = { vm_ip : Ipv4_addr.t; vm_mac : Mac_addr.t; vm_port : int }

type policy = {
  vms : vm list;
  allowed : (Ipv4_addr.t * Ipv4_addr.t) list;
}

let allows policy a b =
  List.exists
    (fun (x, y) ->
      (Ipv4_addr.equal x a && Ipv4_addr.equal y b)
      || (Ipv4_addr.equal x b && Ipv4_addr.equal y a))
    policy.allowed

let vm_for policy ip =
  match List.find_opt (fun vm -> Ipv4_addr.equal vm.vm_ip ip) policy.vms with
  | Some vm -> vm
  | None ->
      invalid_arg
        (Printf.sprintf "Dmz: allowed pair names unknown VM %s"
           (Ipv4_addr.to_string ip))

let validate policy =
  List.iter
    (fun (a, b) ->
      ignore (vm_for policy a);
      ignore (vm_for policy b))
    policy.allowed

(* Expand an optional ingress-port scope: one copy of the rule per port. *)
let scoped in_ports match_ =
  match in_ports with
  | None -> [ match_ ]
  | Some ports -> List.map (fun p -> Of_match.in_port p match_) ports

let messages policy ?(table_id = 0) ?in_ports ?(priority = 2000) () =
  validate policy;
  let flow match_ ~priority instrs =
    List.map
      (fun m ->
        Of_message.Flow_mod
          (Of_message.add_flow ~table_id ~priority ~match_:m instrs))
      (scoped in_ports match_)
  in
  let pair_rules src dst =
    flow
      Of_match.(
        any
        |> eth_type 0x0800
        |> ip_src (Ipv4_addr.Prefix.make src.vm_ip 32)
        |> ip_dst (Ipv4_addr.Prefix.make dst.vm_ip 32))
      ~priority
      [ Flow_entry.Apply_actions [ Of_action.output dst.vm_port ] ]
  in
  List.concat_map
    (fun (a, b) ->
      let va = vm_for policy a and vb = vm_for policy b in
      pair_rules va vb @ pair_rules vb va)
    policy.allowed
  (* ARP must flow for resolution. *)
  @ flow
      Of_match.(any |> eth_type 0x0806)
      ~priority:(priority - 200)
      [ Flow_entry.Apply_actions [ Of_action.Output Of_action.Flood ] ]
  (* Default-deny fence for IP. *)
  @ flow
      Of_match.(any |> eth_type 0x0800)
      ~priority:(priority - 400)
      [ Flow_entry.Apply_actions [ Of_action.Drop ] ]

let fragment policy ?in_ports () =
  validate policy;
  let open Policy.Syntax in
  let scope =
    match in_ports with
    | None -> True
    | Some ports -> disj (List.map in_port ports)
  in
  let pair src dst =
    seq
      (filter
         (conj
            [
              scope;
              eth_type_is 0x0800;
              ip_src_is src.vm_ip;
              ip_dst_is dst.vm_ip;
            ]))
      (fwd dst.vm_port)
  in
  unions
    (List.concat_map
       (fun (a, b) ->
         let va = vm_for policy a and vb = vm_for policy b in
         [ pair va vb; pair vb va ])
       policy.allowed
    (* The default-deny fence needs no fragment: in the policy algebra an
       unmatched packet already yields the empty output set. *)
    @ [ seq (filter (conj [ scope; eth_type_is 0x0806 ])) flood ])

let create policy ?(priority = 2000) () =
  validate policy;
  let switch_up ctrl dpid =
    Controller.send_all ctrl dpid (messages policy ~priority ())
  in
  { (Controller.no_op_app "dmz") with Controller.switch_up }
