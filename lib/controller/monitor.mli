(** Passive network monitoring from flow statistics — the visibility
    story of SDN: the controller polls flow counters and derives a
    source→destination traffic matrix, no mirror ports or probe
    appliances required.

    The app piggybacks on whatever forwarding rules exist: it installs
    its own zero-effect accounting rules (high-priority per-(src,dst)
    pair matches whose action continues to the forwarding table via
    [Goto_table]), then polls their counters.

    Counter acquisition is delegated to one {!Stats_poller} per
    datapath — the monitor keeps no accounting of its own; {!matrix} is
    a view over the pollers' latest flow-stats replies, so the same
    polled numbers feed this matrix, the [harmlessctl top] dashboard
    and any alert rules. *)

type t

val create :
  pairs:(Netpkt.Ipv4_addr.t * Netpkt.Ipv4_addr.t) list ->
  ?table:int ->
  ?forward_table:int ->
  ?priority:int ->
  unit ->
  t
(** Track the given ordered (src, dst) pairs.  Accounting rules go in
    [table] (default 0) and hand off to [forward_table] (default 1), so
    combine with a forwarding app that populates table 1 (e.g.
    {!Rate_limiter.table1_l2}). *)

val app : t -> Controller.app

val poll : t -> Controller.t -> unit
(** Issue a flow-stats request; the matrix updates when the reply
    arrives (run the engine). *)

val start_polling : t -> Controller.t -> Simnet.Engine.t -> period:Simnet.Sim_time.span -> rounds:int -> unit
(** Schedule [rounds] polls, [period] apart. *)

val matrix : t -> ((Netpkt.Ipv4_addr.t * Netpkt.Ipv4_addr.t) * (int * int)) list
(** Latest (packets, bytes) per tracked pair, in the order given. *)

val polls_completed : t -> int
(** Flow-stats replies landed across all of the monitor's pollers. *)

val poller : t -> int64 -> Stats_poller.t option
(** The per-datapath poller backing the matrix (created lazily at the
    first {!poll}) — exposes the underlying time series. *)
