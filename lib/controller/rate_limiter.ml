open Netpkt
open Openflow

type limit = {
  subject : Ipv4_addr.t;
  rate_kbps : int;
  burst_kb : int;
}

let subject_match limit =
  Of_match.(
    any |> eth_type 0x0800 |> ip_src (Ipv4_addr.Prefix.make limit.subject 32))

let messages ~limits ?(priority = 2000) ?(table_id = 0) ?(goto_table = 1) () =
  List.concat
    (List.mapi
       (fun i limit ->
         let meter_id = i + 1 in
         [
           Of_message.Meter_mod
             (Of_message.Add_meter
                {
                  id = meter_id;
                  band =
                    {
                      Meter_table.rate_kbps = limit.rate_kbps;
                      burst_kb = limit.burst_kb;
                    };
                });
           Of_message.Flow_mod
             (Of_message.add_flow ~table_id ~priority
                ~match_:(subject_match limit)
                [
                  Flow_entry.Meter meter_id; Flow_entry.Goto_table goto_table;
                ]);
         ])
       limits)
  (* Everything else skips the meters. *)
  @ [
      Of_message.Flow_mod
        (Of_message.add_flow ~table_id ~priority:1 ~match_:Of_match.any
           [ Flow_entry.Goto_table goto_table ]);
    ]

let fragment ~limits () =
  let open Policy.Syntax in
  let subject_pred limit =
    conj [ eth_type_is 0x0800; ip_src_is limit.subject ]
  in
  (* Exactly one branch applies per packet: a per-subject meter (the
     hand-written table-0 rules) or the unmetered pass-through. *)
  unions
    (List.mapi
       (fun i limit ->
         seq
           (filter (subject_pred limit))
           (police ~meter_id:(i + 1) ~rate_kbps:limit.rate_kbps
              ~burst_kb:limit.burst_kb))
       limits
    @ [ filter (neg (disj (List.map subject_pred limits))) ])

let create ~limits ?(priority = 2000) () =
  let switch_up ctrl dpid =
    Controller.send_all ctrl dpid (messages ~limits ~priority ())
  in
  { (Controller.no_op_app "rate-limiter") with Controller.switch_up }

let table1_messages ~num_hosts ?(table_id = 1) () =
  Of_message.Flow_mod
    (Of_message.add_flow ~table_id ~priority:1100
       ~match_:Of_match.(any |> eth_type 0x0806)
       [ Flow_entry.Apply_actions [ Of_action.Output Of_action.Flood ] ])
  :: List.init num_hosts (fun i ->
         Of_message.Flow_mod
           (Of_message.add_flow ~table_id ~priority:1000
              ~match_:Of_match.(any |> eth_dst (Mac_addr.make_local (i + 1)))
              [ Flow_entry.Apply_actions [ Of_action.output i ] ]))

let table1_fragment ~num_hosts () =
  let open Policy.Syntax in
  (* The ARP flood outranks the MAC forwards in the hand-written table and
     their matches overlap (the forwards carry no eth_type test), so the
     bands chain by fallback rather than union. *)
  orelse
    (seq (filter (eth_type_is 0x0806)) flood)
    (unions
       (List.init num_hosts (fun i ->
            seq (filter (eth_dst_is (Mac_addr.make_local (i + 1)))) (fwd i))))

let table1_l2 ~num_hosts =
  let switch_up ctrl dpid =
    Controller.send_all ctrl dpid (table1_messages ~num_hosts ())
  in
  { (Controller.no_op_app "table1-l2") with Controller.switch_up }
