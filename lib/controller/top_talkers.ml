open Netpkt

type t = {
  counts : (Ipv4_addr.t, int) Hashtbl.t;
  mutable total : int;
  mutable pollers : Stats_poller.t list;
}

let create () = { counts = Hashtbl.create 32; total = 0; pollers = [] }

let attach_poller t p = t.pollers <- p :: t.pollers

let samples t = t.total

let ranking t =
  Hashtbl.fold (fun ip n acc -> (ip, n) :: acc) t.counts []
  |> List.sort (fun (ia, a) (ib, b) ->
         (* Total order — count desc, then address asc — so ranks never
            depend on hash-table iteration order. *)
         match Int.compare b a with 0 -> Ipv4_addr.compare ia ib | c -> c)

let estimated_share t ip =
  if t.total = 0 then 0.0
  else
    float_of_int (Option.value (Hashtbl.find_opt t.counts ip) ~default:0)
    /. float_of_int t.total

let app t =
  let packet_in _ctrl _dpid ~in_port:_ reason (pkt : Packet.t) =
    match (reason, pkt.Packet.l3) with
    | Openflow.Of_message.Action_to_controller, Packet.Ip hdr ->
        t.total <- t.total + 1;
        Hashtbl.replace t.counts hdr.Ipv4.src
          (1 + Option.value (Hashtbl.find_opt t.counts hdr.Ipv4.src) ~default:0);
        (* samples are copies: never consume, forwarding already happened *)
        false
    | (Openflow.Of_message.Action_to_controller | Openflow.Of_message.No_match), _ ->
        false
  in
  { (Controller.no_op_app "top-talkers") with Controller.packet_in }

(* Exact byte accounting from the monitoring plane: fold the attached
   pollers' latest flow stats, attributing each /32-source-matched flow's
   cumulative bytes to that source.  Counters are monotonic, so for a
   source seen by several flows/pollers the per-flow maxima sum to the
   freshest total. *)
let polled_bytes t =
  let acc : (Ipv4_addr.t, (string, int) Hashtbl.t) Hashtbl.t =
    Hashtbl.create 32
  in
  List.iter
    (fun p ->
      List.iter
        (fun (s : Openflow.Of_message.flow_stat) ->
          match s.Openflow.Of_message.stat_match.Openflow.Of_match.ip_src with
          | Some prefix when Ipv4_addr.Prefix.length prefix = 32 ->
              let src = Ipv4_addr.Prefix.base prefix in
              let per_flow =
                match Hashtbl.find_opt acc src with
                | Some h -> h
                | None ->
                    let h = Hashtbl.create 4 in
                    Hashtbl.replace acc src h;
                    h
              in
              let key =
                Format.asprintf "%Ld/%d/%d/%a" (Stats_poller.dpid p)
                  s.Openflow.Of_message.stat_table_id
                  s.Openflow.Of_message.stat_priority Openflow.Of_match.pp
                  s.Openflow.Of_message.stat_match
              in
              let prev =
                Option.value (Hashtbl.find_opt per_flow key) ~default:0
              in
              Hashtbl.replace per_flow key
                (max prev s.Openflow.Of_message.stat_bytes)
          | Some _ | None -> ())
        (Stats_poller.latest_flows p))
    t.pollers;
  Hashtbl.fold
    (fun src per_flow l ->
      (src, Hashtbl.fold (fun _ b sum -> sum + b) per_flow 0) :: l)
    acc []

let byte_ranking t =
  polled_bytes t
  |> List.sort (fun (ia, a) (ib, b) ->
         match Int.compare b a with 0 -> Ipv4_addr.compare ia ib | c -> c)
