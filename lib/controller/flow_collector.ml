open Softswitch

type t = {
  engine : Simnet.Engine.t;
  config : Flowrec.config;
  mutable recs : (string * Flowrec.t) list; (* registration order *)
  mutable merged : Telemetry.Sketch.Cm.t * Telemetry.Sketch.Hll.t * Telemetry.Sketch.Topk.t;
  mutable merges : int;
  sampled_series : Telemetry.Timeseries.t;
  hosts_series : Telemetry.Timeseries.t;
  top_bytes_series : Telemetry.Timeseries.t;
}

let fresh_sketches (c : Flowrec.config) =
  ( Telemetry.Sketch.Cm.create ~seed:c.Flowrec.seed ~epsilon:c.Flowrec.cm_epsilon
      ~delta:c.Flowrec.cm_delta,
    Telemetry.Sketch.Hll.create ~seed:c.Flowrec.seed ~p:c.Flowrec.hll_p,
    Telemetry.Sketch.Topk.create ~k:c.Flowrec.topk )

let create ?(config = Flowrec.default_config) engine =
  {
    engine;
    config;
    recs = [];
    merged = fresh_sketches config;
    merges = 0;
    sampled_series =
      Telemetry.Timeseries.create ~name:"flows.sampled" ();
    hosts_series = Telemetry.Timeseries.create ~name:"flows.hosts" ();
    top_bytes_series =
      Telemetry.Timeseries.create ~name:"flows.top_bytes" ();
  }

let config t = t.config
let switch_count t = List.length t.recs
let merges t = t.merges

let add_switch t sw =
  let fr = Flowrec.create ~config:t.config () in
  Soft_switch.set_flowrec sw (Some fr);
  t.recs <- t.recs @ [ (Soft_switch.name sw, fr) ]

let attach t ~name fr = t.recs <- t.recs @ [ (name, fr) ]

let recorders t = t.recs

let seen t = List.fold_left (fun n (_, fr) -> n + Flowrec.seen fr) 0 t.recs
let sampled t = List.fold_left (fun n (_, fr) -> n + Flowrec.sampled fr) 0 t.recs

let merge_now t =
  let merged =
    List.fold_left
      (fun (cm, hll, topk) (_, fr) ->
        ( Telemetry.Sketch.Cm.merge cm (Flowrec.cm fr),
          Telemetry.Sketch.Hll.merge hll (Flowrec.hll fr),
          Telemetry.Sketch.Topk.merge topk (Flowrec.topk fr) ))
      (fresh_sketches t.config) t.recs
  in
  t.merged <- merged;
  t.merges <- t.merges + 1;
  let _, hll, topk = merged in
  let now_ns = Simnet.Sim_time.to_ns (Simnet.Engine.now t.engine) in
  Telemetry.Timeseries.record t.sampled_series ~ts_ns:now_ns
    (float_of_int (sampled t));
  Telemetry.Timeseries.record t.hosts_series ~ts_ns:now_ns
    (Telemetry.Sketch.Hll.estimate hll);
  let top_bytes =
    match Telemetry.Sketch.Topk.to_list topk with
    | (_, bytes, _) :: _ -> float_of_int bytes
    | [] -> 0.0
  in
  Telemetry.Timeseries.record t.top_bytes_series ~ts_ns:now_ns top_bytes

let start t ~every =
  Simnet.Engine.schedule_every t.engine every (fun () ->
      merge_now t;
      true)

let merged_cm t = let cm, _, _ = t.merged in cm
let merged_hll t = let _, hll, _ = t.merged in hll
let merged_topk t = let _, _, topk = t.merged in topk

let hosts t = Telemetry.Sketch.Hll.estimate (merged_hll t)
let cm_query t ~key = Telemetry.Sketch.Cm.query (merged_cm t) ~key

let top ?k t =
  let l = Telemetry.Sketch.Topk.to_list (merged_topk t) in
  match k with
  | None -> l
  | Some k ->
      List.filteri (fun i _ -> i < k) l

let sampled_series t = t.sampled_series
let hosts_series t = t.hosts_series
let top_bytes_series t = t.top_bytes_series

let add_alert_rules ?(elephant_bytes = 1_000_000.0) ?(max_hosts = 100_000.0)
    t alerts =
  Telemetry.Alert.add_rule alerts ~name:"elephant-flow"
    ~help:"a single flow's estimated bytes exceed the elephant threshold"
    (Telemetry.Alert.Series t.top_bytes_series)
    (Telemetry.Alert.Above elephant_bytes);
  Telemetry.Alert.add_rule alerts ~name:"host-cardinality"
    ~help:"estimated distinct source hosts exceed the expected fleet size"
    (Telemetry.Alert.Series t.hosts_series)
    (Telemetry.Alert.Above max_hosts)

let fmt_bytes b =
  let b = float_of_int b in
  if b >= 1_048_576.0 then Printf.sprintf "%.1f MB" (b /. 1_048_576.0)
  else if b >= 1024.0 then Printf.sprintf "%.1f kB" (b /. 1024.0)
  else Printf.sprintf "%.0f B" b

let render ?(k = 10) t =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf
       "flow telemetry — %d switch(es), %d merge(s), %d pkts seen, %d sampled (1-in-%d)\n"
       (switch_count t) t.merges (seen t) (sampled t) t.config.Flowrec.rate);
  Buffer.add_string buf "heavy hitters (estimated bytes):\n";
  let l = top ~k t in
  if l = [] then Buffer.add_string buf "  (no sampled flows yet)\n"
  else
    List.iteri
      (fun i (key, bytes, err) ->
        Buffer.add_string buf
          (Printf.sprintf "  %2d. %10s ± %-8s %s\n" (i + 1) (fmt_bytes bytes)
             (fmt_bytes err) key))
      l;
  Buffer.add_string buf
    (Printf.sprintf "hosts: ~%.0f distinct sources (hll p=%d)\n" (hosts t)
       t.config.Flowrec.hll_p);
  Buffer.contents buf

let to_json ?(k = 10) t =
  let open Telemetry.Json in
  Obj
    [
      ("switches", Int (switch_count t));
      ("merges", Int t.merges);
      ("seen", Int (seen t));
      ("sampled", Int (sampled t));
      ("rate", Int t.config.Flowrec.rate);
      ("hosts", Float (hosts t));
      ( "top",
        Arr
          (List.map
             (fun (key, bytes, err) ->
               Obj
                 [
                   ("flow", Str key); ("bytes", Int bytes); ("err", Int err);
                 ])
             (top ~k t)) );
    ]
