(** Use case (c) of the paper: per-user web-page blocking, changeable
    on-the-fly.

    Two enforcement paths:
    - {b proactive}: when the blocked site's address is known (it appears
      in [sites]), a drop rule for (user, site, TCP/80) is installed;
    - {b reactive}: otherwise the user's HTTP traffic is steered to the
      controller, which sniffs the [Host] header of each GET; blocked
      requests are dropped (and an exact drop rule installed), allowed
      ones are forwarded on.

    {!block} and {!unblock} update a running deployment — the "deny access
    on-the-fly" part of the demo. *)

type t
(** The app's mutable control handle. *)

val create :
  ?sites:(string * Netpkt.Ipv4_addr.t) list ->
  blocked:(Netpkt.Ipv4_addr.t * string) list ->
  ?priority:int ->
  unit ->
  t
(** [sites] maps hostnames to server addresses (the controller's "DNS").
    [blocked] is the initial (user-IP, hostname) deny list.  Default
    priority 2200. *)

val app : t -> Controller.app

val messages : t -> ?table_id:int -> unit -> Openflow.Of_message.t list
(** The proactive rule set {!app} installs on switch-up (per user in
    address order: resolvable drops in [blocked] order, then the sniff
    rule if any host is unresolvable), as a pure value.  Default table 0. *)

val blocked_pred : t -> Policy.Syntax.pred
(** Matches exactly the traffic the proactive drop rules kill. *)

val sniff_pred : t -> Policy.Syntax.pred
(** Matches the HTTP traffic of users needing controller sniffing. *)

val fragment : t -> Policy.Syntax.t
(** Dataplane behaviour as a policy fragment:
    [filter (not blocked && sniff); to_controller].  Proactive drops are
    absence in the algebra; the reactive packet-in logic stays in {!app}
    and is shared by both implementations. *)

val block : t -> Controller.t -> user:Netpkt.Ipv4_addr.t -> host:string -> unit
(** Add a deny entry and install it on every connected switch. *)

val unblock : t -> Controller.t -> user:Netpkt.Ipv4_addr.t -> host:string -> unit
(** Remove the entry and the switch rules enforcing it. *)

val is_blocked : t -> user:Netpkt.Ipv4_addr.t -> host:string -> bool
val blocked_list : t -> (Netpkt.Ipv4_addr.t * string) list
val sniffed_drops : t -> int
(** Requests dropped via the reactive (Host-sniffing) path. *)
