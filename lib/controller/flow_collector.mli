(** Fabric-wide roll-up of per-switch {!Softswitch.Flowrec} sketches:
    the controller-side half of the traffic observability plane.

    A collector owns one {!Softswitch.Flowrec.config} (so every switch
    samples under the {e same} sketch seed and dimensions — the
    precondition for merging), attaches a recorder to each registered
    switch, and on every merge tick folds all per-switch sketches into
    one fabric view.  Merge ticks run on the sim clock
    ({!start}/{!Simnet.Engine.schedule_every}) and feed three
    {!Telemetry.Timeseries} consumed by dashboards and alert rules.

    Everything is deterministic: same seed, same workload, same
    report. *)

type t

val create : ?config:Softswitch.Flowrec.config -> Simnet.Engine.t -> t

val config : t -> Softswitch.Flowrec.config

val add_switch : t -> Softswitch.Soft_switch.t -> unit
(** Create a recorder under the collector's config and attach it via
    {!Softswitch.Soft_switch.set_flowrec}. *)

val attach : t -> name:string -> Softswitch.Flowrec.t -> unit
(** Register an externally created recorder (must share the
    collector's config for merges to be valid). *)

val recorders : t -> (string * Softswitch.Flowrec.t) list
val switch_count : t -> int

val merge_now : t -> unit
(** Fold every per-switch sketch into the merged fabric view and
    append the sampled/hosts/top-bytes series points at the current
    sim time. *)

val start : t -> every:Simnet.Sim_time.span -> unit
(** Schedule {!merge_now} every [every] on the engine, forever. *)

val merges : t -> int

val seen : t -> int
(** Packets observed across all switches (sampled or not). *)

val sampled : t -> int

val hosts : t -> float
(** Estimated distinct source hosts in the merged view (as of the last
    merge). *)

val cm_query : t -> key:int -> int
(** Estimated bytes for a flow hash in the merged count-min view. *)

val top : ?k:int -> t -> (string * int * int) list
(** Merged heavy hitters, [(flow, est_bytes, err)], count desc then
    key asc; at most [k] entries when given. *)

val merged_cm : t -> Telemetry.Sketch.Cm.t
val merged_hll : t -> Telemetry.Sketch.Hll.t
val merged_topk : t -> Telemetry.Sketch.Topk.t

val sampled_series : t -> Telemetry.Timeseries.t
(** Counter: cumulative sampled packets, one point per merge. *)

val hosts_series : t -> Telemetry.Timeseries.t
(** Gauge: estimated source cardinality. *)

val top_bytes_series : t -> Telemetry.Timeseries.t
(** Gauge: the heaviest flow's estimated bytes. *)

val add_alert_rules :
  ?elephant_bytes:float -> ?max_hosts:float -> t -> Telemetry.Alert.t -> unit
(** Register the two standard traffic rules: ["elephant-flow"] (top
    flow bytes above [elephant_bytes], default 1 MB) and
    ["host-cardinality"] (estimated hosts above [max_hosts], default
    100k). *)

val render : ?k:int -> t -> string
(** The dashboard heavy-hitters panel (default top 10). *)

val to_json : ?k:int -> t -> Telemetry.Json.t
