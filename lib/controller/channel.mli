(** The control channel between a switch agent and the controller,
    modelling the management-network TCP connection — now as a fallible
    connection rather than a perfect pipe.

    Both directions are delivered asynchronously after a configurable
    latency.  The channel can lose messages (random loss, or a total
    blackhole via {!set_down}), bounds the number of controller→switch
    messages in flight, and — when a keepalive interval is configured —
    probes the switch with OpenFlow echo requests, declares the
    connection dead after {!field-config.echo_timeout} of silence, and
    then re-establishes it with exponential backoff.  While disconnected
    the switch is told via {!Softswitch.Soft_switch.set_connected}, so
    its fail-secure / fail-standalone mode governs the dataplane.

    Telemetry: reconnections increment [reconnects_total{switch=...}]
    and every lost control message increments
    [channel_dropped_messages_total{switch=...,direction=...}] on the
    default registry. *)

type config = {
  latency : Simnet.Sim_time.span;  (** one-way delivery delay *)
  loss : float;  (** per-message loss probability in [0, 1) *)
  seed : int;  (** RNG seed for loss draws *)
  keepalive_interval : Simnet.Sim_time.span option;
      (** echo-request period; [None] (the default) disables keepalive —
          note an enabled keepalive reschedules itself forever, so run
          the engine with [~until]. *)
  echo_timeout : Simnet.Sim_time.span;
      (** silence longer than this (checked at each keepalive tick)
          declares the connection dead *)
  reconnect_base : Simnet.Sim_time.span;  (** first reconnect delay *)
  reconnect_max : Simnet.Sim_time.span;  (** backoff cap *)
  max_in_flight : int;
      (** bound on queued controller→switch messages; excess is shed and
          counted in {!queue_drops} *)
}

val default_config : config
(** 200 us latency, no loss, no keepalive, 20 ms echo timeout,
    10 ms→500 ms backoff, 512 in flight. *)

type state = Connected | Disconnected

type t

val connect :
  Simnet.Engine.t ->
  ?latency:Simnet.Sim_time.span ->
  ?config:config ->
  switch:Softswitch.Soft_switch.t ->
  to_controller:(Openflow.Of_message.t -> unit) ->
  unit ->
  t
(** Wire the switch's controller callback to [to_controller] and return
    a handle for the reverse direction.  [?latency] overrides the
    config's latency (kept for compatibility with the old signature).
    @raise Invalid_argument on a malformed config. *)

val to_switch : t -> Openflow.Of_message.t -> unit
(** Deliver a controller→switch message after the channel latency —
    unless the channel is disconnected, the bounded queue is full, or
    the loss process eats it; all three are counted. *)

val switch : t -> Softswitch.Soft_switch.t
val sent_to_switch : t -> int
val sent_to_controller : t -> int

val state : t -> state

val set_down : t -> bool -> unit
(** Blackhole the channel (both directions) — the fault injector's view
    of a management-network outage or controller crash.  With keepalive
    enabled the outage is {e detected} by echo timeout and healed by the
    backoff probe; with keepalive off the state flips synchronously so
    fail modes still engage. *)

val is_down : t -> bool

val on_reconnect : t -> (unit -> unit) -> unit
(** Called (in registration order) each time the channel re-establishes —
    where the controller hooks flow resynchronization. *)

val reconnects : t -> int
val queue_drops : t -> int
val dropped_to_switch : t -> int
val dropped_to_controller : t -> int

val stats : t -> (string * int) list
(** Send/drop/reconnect tallies plus [connected] as 0/1. *)
