(** Use case (b) of the paper: DMZ-style VM-level access policies in a
    multi-tenant cloud.  The controller knows where each VM sits (IP,
    MAC, switch port) and an allow-list of VM pairs; everything is
    installed proactively:

    - each allowed (a, b) pair gets forward rules in both directions;
    - ARP floods (hosts must resolve each other);
    - all remaining IP traffic is dropped at a priority between the pair
      rules and any L2 base app, so policy wins over learning. *)

type vm = {
  vm_ip : Netpkt.Ipv4_addr.t;
  vm_mac : Netpkt.Mac_addr.t;
  vm_port : int;
}

type policy = {
  vms : vm list;
  allowed : (Netpkt.Ipv4_addr.t * Netpkt.Ipv4_addr.t) list;
      (** unordered pairs; traffic is allowed both ways *)
}

val create : policy -> ?priority:int -> unit -> Controller.app
(** Pair rules at [priority] (default 2000), ARP flood at [priority - 200],
    the IP drop fence at [priority - 400].
    @raise Invalid_argument if an allowed pair names an unknown VM. *)

val messages :
  policy -> ?table_id:int -> ?in_ports:int list -> ?priority:int -> unit ->
  Openflow.Of_message.t list
(** The exact message sequence {!create} pushes on switch-up, as a pure
    value (default table 0, unscoped, priority 2000).  [in_ports] scopes
    every rule to those ingress ports (one copy per port) so the app can
    be composed with others on a shared switch.
    @raise Invalid_argument as {!create} does. *)

val fragment :
  policy -> ?in_ports:int list -> unit -> Policy.Syntax.t
(** The same behaviour as a policy-algebra fragment: a union of pair
    forwards plus the ARP flood.  The default-deny fence is implicit —
    unmatched packets already produce the empty set.
    @raise Invalid_argument as {!create} does. *)

val allows : policy -> Netpkt.Ipv4_addr.t -> Netpkt.Ipv4_addr.t -> bool
(** Whether the policy permits traffic between two addresses (symmetric;
    used by tests as the ground truth). *)
