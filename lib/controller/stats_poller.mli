(** Periodic OpenFlow statistics collection — the acquisition layer of
    the monitoring plane.

    A poller owns one datapath: every period it issues a
    flow-stats request, a port-stats request, and a tagged echo probe
    over the control channel, and feeds the replies into
    {!Telemetry.Timeseries} ring buffers (cumulative per-flow
    byte/packet counters, cumulative per-port byte counters, and the
    control-channel round-trip time as a gauge).  Everything downstream
    — the traffic {!Monitor} matrix, {!Top_talkers} byte rankings, the
    [harmlessctl top] dashboard, SLO alert rules — reads these series
    instead of keeping its own books.

    When the channel is disconnected, or a round completes without any
    flow-stats reply arriving, the poller backs off: the next round is
    delayed by {!Mgmt.Retry.delay_before_attempt} of its retry policy
    (never below the base period), growing with each consecutive
    failure and snapping back to the base period on the first reply.
    Polling a dead channel at full rate would only add to the storm the
    reconnect logic is already fighting. *)

type t

val create :
  ?period:Simnet.Sim_time.span ->
  ?retry:Mgmt.Retry.policy ->
  ?capacity:int ->
  Controller.t ->
  int64 ->
  t
(** A poller for one datapath.  [period] is the healthy poll interval
    (default 10 ms); [retry] shapes the outage backoff (default
    {!Mgmt.Retry.default}); [capacity] bounds every series this poller
    creates (default 1024 points).
    @raise Invalid_argument if [period <= 0]. *)

val dpid : t -> int64

val start : t -> unit
(** Begin periodic polling (first round after one period).  Idempotent. *)

val stop : t -> unit
(** Cease scheduling further rounds.  In-flight replies still land. *)

val poll_now : t -> unit
(** Issue one round of requests immediately, outside the periodic
    schedule — what {!Monitor.poll} calls. *)

val rounds_issued : t -> int
(** Poll rounds whose requests were actually sent. *)

val flow_replies : t -> int
val port_replies : t -> int
val rtt_replies : t -> int

val consecutive_failures : t -> int
(** Failed rounds since the last successful one — drives the backoff. *)

val current_delay : t -> Simnet.Sim_time.span
(** The delay the next round will be scheduled after: the base period
    when healthy, the retry policy's backoff when failing. *)

val latest_flows : t -> Openflow.Of_message.flow_stat list
(** The most recent flow-stats reply's entries (order preserved);
    [[]] before the first reply. *)

val latest_ports : t -> Openflow.Of_message.port_stat list

val flow_keys : t -> string list
(** Stable identifiers ("t<table> p<prio> <match>") of every flow this
    poller has ever seen, sorted. *)

val flow_bytes_series : t -> string -> Telemetry.Timeseries.t option
val flow_packets_series : t -> string -> Telemetry.Timeseries.t option

val port_rx_series : t -> int -> Telemetry.Timeseries.t option
(** Cumulative received wire bytes for a port, one point per reply. *)

val port_tx_series : t -> int -> Telemetry.Timeseries.t option

val rtt_series : t -> Telemetry.Timeseries.t
(** Control-channel hairpin RTT in nanoseconds (gauge). *)

val port_rate :
  t -> port:int -> now_ns:int -> window:int -> (float * float) option
(** [(rx_bytes_per_s, tx_bytes_per_s)] over the window — [None] until
    both directions hold two points inside it. *)

val top_flows :
  t -> n:int -> now_ns:int -> window:int -> (string * float) list
(** The [n] flows with the highest byte rate (bytes/s) over the window,
    highest first; flows without a computable rate are ranked by [0.].
    Ties break on the flow key so the ranking is deterministic. *)
