open Openflow

type t = {
  engine : Simnet.Engine.t;
  channel_latency : Simnet.Sim_time.span option;
  channel_config : Channel.config option;
  mutable apps : app list;
  switches : (int64, Channel.t) Hashtbl.t;
  (* State-bearing messages (flow/group/meter-mods) per datapath, newest
     first — replayed to resynchronize a switch after a reconnect. *)
  state_log : (int64, Of_message.t list ref) Hashtbl.t;
  mutable packet_ins : int;
  mutable packet_outs : int;
  mutable flow_mods_sent : int;
  mutable resyncs : int;
  mutable errors : string list; (* newest first *)
  mutable stats_waiters : (int64 * (Of_message.flow_stat list -> unit)) list;
  mutable port_stats_waiters : (int64 * (Of_message.port_stat list -> unit)) list;
  (* Outstanding controller-originated echoes: payloads are "rtt:<seq>",
     disjoint from the channel keepalive's integer payloads. *)
  mutable echo_waiters :
    (int64 * string * Simnet.Sim_time.t * (Simnet.Sim_time.span -> unit)) list;
  mutable echo_seq : int;
}

and app = {
  app_name : string;
  switch_up : t -> int64 -> unit;
  packet_in :
    t -> int64 -> in_port:int -> Of_message.packet_in_reason ->
    Netpkt.Packet.t -> bool;
  port_status : t -> int64 -> port:int -> up:bool -> unit;
}

let no_op_app name =
  {
    app_name = name;
    switch_up = (fun _ _ -> ());
    packet_in = (fun _ _ ~in_port:_ _ _ -> false);
    port_status = (fun _ _ ~port:_ ~up:_ -> ());
  }

let create engine ?channel_latency ?channel_config () =
  {
    engine;
    channel_latency;
    channel_config;
    apps = [];
    switches = Hashtbl.create 8;
    state_log = Hashtbl.create 8;
    packet_ins = 0;
    packet_outs = 0;
    flow_mods_sent = 0;
    resyncs = 0;
    errors = [];
    stats_waiters = [];
    port_stats_waiters = [];
    echo_waiters = [];
    echo_seq = 0;
  }

let engine t = t.engine

let add_app t app = t.apps <- t.apps @ [ app ]

let channel t dpid =
  match Hashtbl.find_opt t.switches dpid with
  | Some ch -> ch
  | None -> raise Not_found

let log_state t dpid msg =
  match msg with
  | Of_message.Flow_mod _ | Of_message.Group_mod _ | Of_message.Meter_mod _ ->
      let log =
        match Hashtbl.find_opt t.state_log dpid with
        | Some log -> log
        | None ->
            let log = ref [] in
            Hashtbl.replace t.state_log dpid log;
            log
      in
      log := msg :: !log
  | _ -> ()

let send t dpid msg =
  log_state t dpid msg;
  Channel.to_switch (channel t dpid) msg

let resync t dpid ch =
  t.resyncs <- t.resyncs + 1;
  Channel.to_switch ch Of_message.Hello;
  Channel.to_switch ch Of_message.Features_request;
  (* Replay in original send order; OFPFC_ADD replaces identical
     match+priority entries, so the replay is idempotent on a switch
     that kept its tables and restorative on one that lost them. *)
  match Hashtbl.find_opt t.state_log dpid with
  | Some log -> List.iter (Channel.to_switch ch) (List.rev !log)
  | None -> ()

let install t dpid fm =
  t.flow_mods_sent <- t.flow_mods_sent + 1;
  send t dpid (Of_message.Flow_mod fm)

let send_all t dpid msgs =
  List.iter
    (function
      | Of_message.Flow_mod fm -> install t dpid fm
      | msg -> send t dpid msg)
    msgs

let packet_out t dpid ?in_port ~actions packet =
  t.packet_outs <- t.packet_outs + 1;
  if Telemetry.Trace.enabled () then
    Telemetry.Trace.emit
      ~ts_ns:(Simnet.Sim_time.to_ns (Simnet.Engine.now t.engine))
      ~component:"controller" ~layer:Telemetry.Trace.Controller
      ~stage:"packet_out" ?port:in_port
      ~cycles:0 (* control-plane CPU is not part of the datapath model *)
      ~detail:(Printf.sprintf "dpid=%Ld actions=%d" dpid (List.length actions))
      packet;
  send t dpid (Of_message.Packet_out { in_port; actions; packet })

let dispatch_packet_in t dpid ~in_port reason packet =
  t.packet_ins <- t.packet_ins + 1;
  if Telemetry.Trace.enabled () then
    Telemetry.Trace.emit
      ~ts_ns:(Simnet.Sim_time.to_ns (Simnet.Engine.now t.engine))
      ~component:"controller" ~layer:Telemetry.Trace.Controller
      ~stage:"packet_in" ~port:in_port
      ~cycles:0 (* control-plane CPU is not part of the datapath model *)
      ~detail:
        (Printf.sprintf "dpid=%Ld reason=%s" dpid
           (match reason with
           | Of_message.No_match -> "no_match"
           | Of_message.Action_to_controller -> "action"))
      packet;
  (* The control↔dataplane join: the event's correlation id is the
     packet's trace key, so a post-mortem can pair this decision with
     the packet's hop spans. *)
  if Telemetry.Eventlog.enabled () then
    Telemetry.Eventlog.emit ~level:Telemetry.Eventlog.Debug
      ~ts_ns:(Simnet.Sim_time.to_ns (Simnet.Engine.now t.engine))
      ~corr:(Telemetry.Trace.key_of_packet packet)
      ~detail:(Printf.sprintf "dpid:%Lx port=%d" dpid in_port)
      ~stream:"controller" "packet-in";
  let rec offer = function
    | [] -> ()
    | app :: rest ->
        if not (app.packet_in t dpid ~in_port reason packet) then offer rest
  in
  offer t.apps

let handle_switch_message t dpid msg =
  match msg with
  | Of_message.Features_reply _ ->
      List.iter (fun app -> app.switch_up t dpid) t.apps
  | Of_message.Packet_in { in_port; reason; packet } ->
      dispatch_packet_in t dpid ~in_port reason packet
  | Of_message.Port_status { port_no; up } ->
      List.iter (fun app -> app.port_status t dpid ~port:port_no ~up) t.apps
  | Of_message.Error e -> t.errors <- e :: t.errors
  | Of_message.Flow_stats_reply stats ->
      let mine, rest = List.partition (fun (d, _) -> Int64.equal d dpid) t.stats_waiters in
      (match mine with
      | (_, k) :: remaining ->
          t.stats_waiters <- List.map (fun w -> w) remaining @ rest;
          k stats
      | [] -> ())
  | Of_message.Port_stats_reply stats ->
      let mine, rest =
        List.partition (fun (d, _) -> Int64.equal d dpid) t.port_stats_waiters
      in
      (match mine with
      | (_, k) :: remaining ->
          t.port_stats_waiters <- remaining @ rest;
          k stats
      | [] -> ())
  | Of_message.Echo_reply payload ->
      (* Match on (dpid, payload): channel keepalives use bare integer
         payloads and never collide with our "rtt:<seq>" probes. *)
      let rec take acc = function
        | [] -> ()
        | (d, p, sent, k) :: rest when Int64.equal d dpid && String.equal p payload ->
            t.echo_waiters <- List.rev_append acc rest;
            k (Simnet.Sim_time.diff (Simnet.Engine.now t.engine) sent)
        | w :: rest -> take (w :: acc) rest
      in
      take [] t.echo_waiters
  | Of_message.Hello | Of_message.Barrier_reply _ -> ()
  | Of_message.Echo_request payload -> send t dpid (Of_message.Echo_reply payload)
  | Of_message.Features_request | Of_message.Flow_mod _ | Of_message.Group_mod _
  | Of_message.Meter_mod _
  | Of_message.Packet_out _ | Of_message.Flow_stats_request _
  | Of_message.Port_stats_request | Of_message.Barrier_request _ ->
      (* switch-bound messages never arrive here *)
      ()

let attach_switch t switch =
  let dpid = Softswitch.Soft_switch.datapath_id switch in
  let to_controller msg = handle_switch_message t dpid msg in
  let ch =
    match (t.channel_latency, t.channel_config) with
    | Some latency, Some config ->
        Channel.connect t.engine ~latency ~config ~switch ~to_controller ()
    | Some latency, None ->
        Channel.connect t.engine ~latency ~switch ~to_controller ()
    | None, Some config ->
        Channel.connect t.engine ~config ~switch ~to_controller ()
    | None, None -> Channel.connect t.engine ~switch ~to_controller ()
  in
  Hashtbl.replace t.switches dpid ch;
  Channel.on_reconnect ch (fun () -> resync t dpid ch);
  Channel.to_switch ch Of_message.Hello;
  Channel.to_switch ch Of_message.Features_request;
  dpid

let switch_ids t = Hashtbl.fold (fun dpid _ acc -> dpid :: acc) t.switches []
let packet_ins_received t = t.packet_ins
let errors_received t = List.rev t.errors
let resyncs t = t.resyncs

let publish_metrics ?registry ?(labels = []) t =
  Telemetry.Registry.publish_ints ?registry ~prefix:"controller" ~labels
    [
      ("packet_ins", t.packet_ins);
      ("packet_outs", t.packet_outs);
      ("flow_mods_sent", t.flow_mods_sent);
      ("resyncs", t.resyncs);
      ("errors", List.length t.errors);
      ("switches", Hashtbl.length t.switches);
      ("apps", List.length t.apps);
    ]

let flow_stats t dpid ~on_reply =
  t.stats_waiters <- t.stats_waiters @ [ (dpid, on_reply) ];
  send t dpid (Of_message.Flow_stats_request { table_id = None })

let port_stats t dpid ~on_reply =
  t.port_stats_waiters <- t.port_stats_waiters @ [ (dpid, on_reply) ];
  send t dpid Of_message.Port_stats_request

let measure_rtt t dpid ~on_reply =
  t.echo_seq <- t.echo_seq + 1;
  let payload = Printf.sprintf "rtt:%d" t.echo_seq in
  t.echo_waiters <-
    t.echo_waiters @ [ (dpid, payload, Simnet.Engine.now t.engine, on_reply) ];
  send t dpid (Of_message.Echo_request payload)
