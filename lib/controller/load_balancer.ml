open Netpkt
open Openflow

type backend = {
  backend_mac : Mac_addr.t;
  backend_ip : Ipv4_addr.t;
  backend_port : int;
}

(* Every port the app owns: where VIP traffic enters plus the backends. *)
let lb_ports ~ingress_port ~backends ?vip_in_ports () =
  let ingress =
    match vip_in_ports with None -> [ ingress_port ] | Some ps -> ps
  in
  let backend_ports = List.map (fun b -> b.backend_port) backends in
  ingress @ List.filter (fun p -> not (List.mem p ingress)) backend_ports

let messages ~vip_ip ~vip_mac ~ingress_port ~backends ?(group_id = 1)
    ?(priority = 2000) ?(table_id = 0) ?vip_in_ports () =
  if backends = [] then invalid_arg "Load_balancer: no backends";
  let buckets =
    List.map
      (fun b ->
        {
          Group_table.weight = 1;
          actions =
            [
              Of_action.Set_eth_dst b.backend_mac;
              Of_action.Set_ip_dst b.backend_ip;
              Of_action.output b.backend_port;
            ];
        })
      backends
  in
  let vip_match =
    Of_match.(
      any |> eth_type 0x0800 |> ip_dst (Ipv4_addr.Prefix.make vip_ip 32))
  in
  let vip_matches =
    match vip_in_ports with
    | None -> [ vip_match ]
    | Some ports -> List.map (fun p -> Of_match.in_port p vip_match) ports
  in
  Of_message.Group_mod
    (Of_message.Add_group
       { id = group_id; gtype = Group_table.Select; buckets })
  (* VIP-bound traffic -> the select group. *)
  :: List.map
       (fun m ->
         Of_message.Flow_mod
           (Of_message.add_flow ~table_id ~priority ~match_:m
              [ Flow_entry.Apply_actions [ Of_action.Group group_id ] ]))
       vip_matches
  (* Return traffic: un-rewrite and send to the ingress side. *)
  @ List.map
      (fun b ->
        Of_message.Flow_mod
          (Of_message.add_flow ~table_id ~priority
             ~match_:
               Of_match.(
                 any
                 |> eth_type 0x0800
                 |> ip_src (Ipv4_addr.Prefix.make b.backend_ip 32)
                 |> in_port b.backend_port)
             [
               Flow_entry.Apply_actions
                 [
                   Of_action.Set_eth_src vip_mac;
                   Of_action.Set_ip_src vip_ip;
                   Of_action.output ingress_port;
                 ];
             ]))
      backends
  (* ARP must flow on the app's own ports for VIP and backend
     resolution. *)
  @ List.map
      (fun p ->
        Of_message.Flow_mod
          (Of_message.add_flow ~table_id ~priority:(priority - 200)
             ~match_:Of_match.(any |> eth_type 0x0806 |> in_port p)
             [ Flow_entry.Apply_actions [ Of_action.Output Of_action.Flood ] ]))
      (lb_ports ~ingress_port ~backends ?vip_in_ports ())

let fragment ~vip_ip ~vip_mac ~ingress_port ~backends ?vip_in_ports () =
  if backends = [] then invalid_arg "Load_balancer: no backends";
  let open Policy.Syntax in
  let scope =
    match vip_in_ports with
    | None -> True
    | Some ports -> disj (List.map in_port ports)
  in
  let vip_branch =
    seq
      (filter (conj [ scope; eth_type_is 0x0800; ip_dst_is vip_ip ]))
      (balance
         (List.map
            (fun b ->
              [
                (Eth_dst, Mac b.backend_mac);
                (Ip_dst, Ip b.backend_ip);
                (Loc, At (Phys b.backend_port));
              ])
            backends))
  in
  let return_branch =
    unions
      (List.map
         (fun b ->
           seq
             (filter
                (conj
                   [
                     in_port b.backend_port;
                     eth_type_is 0x0800;
                     ip_src_is b.backend_ip;
                   ]))
             (seqs
                [ set_eth_src vip_mac; set_ip_src vip_ip; fwd ingress_port ]))
         backends)
  in
  let arp_branch =
    seq
      (filter
         (conj
            [
              disj
                (List.map in_port
                   (lb_ports ~ingress_port ~backends ?vip_in_ports ()));
              eth_type_is 0x0806;
            ]))
      flood
  in
  (* The hand-written app installs the VIP rule before the return rules at
     equal priority, so on their (spoofed-source) overlap the VIP rule
     wins the first-installed tie-break — [orelse] mirrors that.  ARP is
     disjoint by ethertype, so it joins by union. *)
  union (orelse vip_branch return_branch) arp_branch

let create ~vip_ip ~vip_mac ~ingress_port ~backends ?(group_id = 1)
    ?(priority = 2000) () =
  if backends = [] then invalid_arg "Load_balancer.create: no backends";
  let switch_up ctrl dpid =
    Controller.send_all ctrl dpid
      (messages ~vip_ip ~vip_mac ~ingress_port ~backends ~group_id ~priority
         ())
  in
  { (Controller.no_op_app "load-balancer") with Controller.switch_up }
