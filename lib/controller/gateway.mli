(** The composed residential-gateway scenario: all four SS_2 apps sharing
    one switch, in both implementations.

    Port map (with {!default}): 0–3 subscribers, 4–5 DMZ VMs, 6 the load
    balancer's ingress trunk, 7–8 its backends.  The hand-written build
    uses two tables — rate-limit meters in table 0 ([Goto_table 1]), all
    forwarding and filtering bands in table 1.  {!policy} expresses the
    same behaviour as one policy term whose compiled form fits one table —
    the composition the equivalence harness proves and the table-size
    experiment measures. *)

type subscriber = {
  sub_ip : Netpkt.Ipv4_addr.t;
  sub_mac : Netpkt.Mac_addr.t;
  sub_port : int;
}

type t = {
  subscribers : subscriber list;
  dmz : Dmz.policy;
  dmz_ports : int list;  (** ingress scope of the DMZ slice *)
  vip_ip : Netpkt.Ipv4_addr.t;
  vip_mac : Netpkt.Mac_addr.t;
  lb_ingress : int;
  lb_backends : Load_balancer.backend list;
  parental : Parental_control.t;
  limits : Rate_limiter.limit list;
  num_ports : int;
}

val default : unit -> t
(** A fresh instance of the canonical scenario (4 subscribers, 2 DMZ VMs
    with one allowed pair, VIP with 2 backends, one resolvable and one
    sniffed parental block, 2 rate limits).  Fresh because the parental
    handle is mutable. *)

val handwritten_tables : int
(** Tables the hand-written composition needs (2). *)

val handwritten_messages : t -> Openflow.Of_message.t list
(** Every app's {e messages} concatenated in registration order —
    rate limiter (table 0), parental control, DMZ (scoped to
    [dmz_ports]), load balancer (VIP scoped to [lb_ingress]), subscriber
    L2 + ARP flood (table 1). *)

val policy : t -> Policy.Syntax.t
(** The whole gateway as one policy term: the metering stage sequenced
    into the table-1 bands chained by [orelse] in priority order, with
    parental drops as a negated guard and an explicit [discard] fallback
    so dropped traffic still meters. *)

val l2_messages : t -> Openflow.Of_message.t list
val l2_fragment : t -> Policy.Syntax.t

(** Value pools for the equivalence fuzzer — every address the scenario
    knows plus strangers, so collisions are the common case. *)

val macs : t -> Netpkt.Mac_addr.t list
val ips : t -> Netpkt.Ipv4_addr.t list
val l4_ports : t -> int list
