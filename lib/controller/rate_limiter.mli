(** A bandwidth-policing application — one more "standalone hardware
    appliance" (a traffic policer) the paper's demo argues HARMLESS can
    absorb into the network.

    Each policy entry caps one source host's IP traffic with an OpenFlow
    meter; limited traffic continues through the rest of the pipeline via
    [Goto_table 1], so this app composes with a forwarding app installed
    in table 1 (see {!table1_l2}). *)

type limit = {
  subject : Netpkt.Ipv4_addr.t;  (** source host to police *)
  rate_kbps : int;
  burst_kb : int;
}

val create : limits:limit list -> ?priority:int -> unit -> Controller.app
(** Installs one meter and one table-0 flow per limit on switch-up, plus
    a table-0 default that forwards everything (unmetered) to table 1.
    Meter ids are assigned [1, 2, ...] in list order.  Default priority
    2000. *)

val messages :
  limits:limit list -> ?priority:int -> ?table_id:int -> ?goto_table:int ->
  unit -> Openflow.Of_message.t list
(** The exact message sequence {!create} pushes on switch-up (meter and
    flow per limit interleaved, then the unmetered default), as a pure
    value.  Defaults: table 0, continue at table 1, priority 2000. *)

val fragment : limits:limit list -> unit -> Policy.Syntax.t
(** The metering stage as a pass-through policy fragment: each subject's
    IP traffic goes through [Police] with meter id [index + 1] (the ids
    {!messages} assigns); everything else passes unmetered.  Sequence it
    before a forwarding fragment.  Subjects must be distinct — duplicate
    subjects would meter a packet twice where the hand-written table's
    first-match takes one rule. *)

val table1_l2 : num_hosts:int -> Controller.app
(** A proactive destination-MAC forwarding app for {e table 1}, matching
    the {!Harmless.Deployment} host conventions — the forwarding layer
    under the policer. *)

val table1_messages :
  num_hosts:int -> ?table_id:int -> unit -> Openflow.Of_message.t list
(** {!table1_l2}'s rule set as a pure value (default table 1). *)

val table1_fragment : num_hosts:int -> unit -> Policy.Syntax.t
(** {!table1_l2}'s behaviour as a fragment: MAC forwards with an ARP-flood
    fallback. *)
