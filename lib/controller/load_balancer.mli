(** Use case (a) of the paper: an in-network load balancer.  Ingress web
    traffic addressed to a virtual IP is spread over backends by flow
    hash (an OpenFlow [Select] group, so a flow's packets stick to one
    backend — the "matching of the source IP address" behaviour of the
    demo), with destination MAC/IP rewritten per backend; return traffic
    is rewritten back to the VIP and sent to the ingress port. *)

type backend = {
  backend_mac : Netpkt.Mac_addr.t;
  backend_ip : Netpkt.Ipv4_addr.t;
  backend_port : int;  (** switch port the backend is reached through *)
}

val create :
  vip_ip:Netpkt.Ipv4_addr.t ->
  vip_mac:Netpkt.Mac_addr.t ->
  ingress_port:int ->
  backends:backend list ->
  ?group_id:int ->
  ?priority:int ->
  unit ->
  Controller.app
(** Installs everything proactively on switch-up.  Defaults: group 1,
    priority 2000 (above the L2 base app). *)

val messages :
  vip_ip:Netpkt.Ipv4_addr.t ->
  vip_mac:Netpkt.Mac_addr.t ->
  ingress_port:int ->
  backends:backend list ->
  ?group_id:int ->
  ?priority:int ->
  ?table_id:int ->
  ?vip_in_ports:int list ->
  unit ->
  Openflow.Of_message.t list
(** The exact message sequence {!create} pushes (group mod first, then the
    VIP rule, then return rules), as a pure value.  [vip_in_ports] scopes
    the VIP rule to those ingress ports — return rules are already
    port-scoped by construction.
    @raise Invalid_argument on an empty backend list. *)

val fragment :
  vip_ip:Netpkt.Ipv4_addr.t ->
  vip_mac:Netpkt.Mac_addr.t ->
  ingress_port:int ->
  backends:backend list ->
  ?vip_in_ports:int list ->
  unit ->
  Policy.Syntax.t
(** The same behaviour as a policy fragment: VIP traffic hash-balanced
    over the backends ([Balance]), with return-traffic rewrites as the
    fallback branch.
    @raise Invalid_argument on an empty backend list. *)
