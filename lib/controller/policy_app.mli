(** The compiled-policy push path: one controller app that installs a
    {!Policy.Compile.t}'s meters, groups and flow rules (in dependency
    order) on switch-up — the policy-layer replacement for registering
    each hand-written app separately. *)

val create : ?name:string -> Policy.Compile.t -> Controller.app

val install_direct : Controller.t -> int64 -> Policy.Compile.t -> unit
(** Push the compiled table to a connected datapath right now (live
    policy updates outside the switch-up path). *)
