open Simnet
open Openflow

type config = {
  latency : Sim_time.span;
  loss : float;
  seed : int;
  keepalive_interval : Sim_time.span option;
  echo_timeout : Sim_time.span;
  reconnect_base : Sim_time.span;
  reconnect_max : Sim_time.span;
  max_in_flight : int;
}

let default_config =
  {
    latency = Sim_time.us 200;
    loss = 0.0;
    seed = 7;
    keepalive_interval = None;
    echo_timeout = Sim_time.ms 20;
    reconnect_base = Sim_time.ms 10;
    reconnect_max = Sim_time.ms 500;
    max_in_flight = 512;
  }

type state = Connected | Disconnected

type t = {
  engine : Engine.t;
  config : config;
  rng : Rng.t;
  switch : Softswitch.Soft_switch.t;
  to_controller : Of_message.t -> unit;
  mutable state : state;
  mutable down : bool;
  mutable last_heard : Sim_time.t;
  mutable in_flight : int;
  mutable to_switch_count : int;
  mutable to_controller_count : int;
  mutable dropped_to_switch : int;
  mutable dropped_to_controller : int;
  mutable queue_drops : int;
  mutable reconnects : int;
  mutable echo_seq : int;
  mutable on_reconnect : (unit -> unit) list;
}

let switch t = t.switch
let sent_to_switch t = t.to_switch_count
let sent_to_controller t = t.to_controller_count
let state t = t.state
let is_down t = t.down
let reconnects t = t.reconnects
let queue_drops t = t.queue_drops
let dropped_to_switch t = t.dropped_to_switch
let dropped_to_controller t = t.dropped_to_controller
let on_reconnect t f = t.on_reconnect <- t.on_reconnect @ [ f ]

(* Look the counters up by name each time rather than holding handles, so
   a [Registry.reset]/[clear] between experiments never leaves us
   incrementing a dangling series. *)
let switch_labels t = [ ("switch", Softswitch.Soft_switch.name t.switch) ]

(* Flight-recorder events for channel lifecycle.  Call sites guard on
   [Eventlog.enabled] so the disabled path stays allocation-free. *)
let event t ?level ?detail name =
  Telemetry.Eventlog.emit ?level
    ~ts_ns:(Sim_time.to_ns (Engine.now t.engine))
    ~corr:
      (Telemetry.Eventlog.corr_of_string
         ("channel:" ^ Softswitch.Soft_switch.name t.switch))
    ?detail ~stream:"channel" name

let count_reconnect t =
  Telemetry.Registry.Counter.inc
    (Telemetry.Registry.Counter.v ~labels:(switch_labels t)
       ~help:"control-channel reconnections" "reconnects_total")

let count_drop t ~direction =
  Telemetry.Registry.Counter.inc
    (Telemetry.Registry.Counter.v
       ~labels:(("direction", direction) :: switch_labels t)
       ~help:"control messages lost on the channel"
       "channel_dropped_messages_total");
  if Telemetry.Eventlog.enabled () then
    event t ~level:Telemetry.Eventlog.Debug
      ~detail:(Softswitch.Soft_switch.name t.switch ^ " " ^ direction)
      "drop"

let lost t = t.config.loss > 0.0 && Rng.float t.rng 1.0 < t.config.loss

let deliver_to_controller t msg =
  if t.down || lost t then begin
    t.dropped_to_controller <- t.dropped_to_controller + 1;
    count_drop t ~direction:"to_controller"
  end
  else
    Engine.schedule_after t.engine t.config.latency (fun () ->
        (* Anything the switch says proves the connection is alive. *)
        t.last_heard <- Engine.now t.engine;
        t.to_controller_count <- t.to_controller_count + 1;
        t.to_controller msg)

let to_switch t msg =
  t.to_switch_count <- t.to_switch_count + 1;
  if t.state = Disconnected then begin
    t.dropped_to_switch <- t.dropped_to_switch + 1;
    count_drop t ~direction:"to_switch"
  end
  else if t.in_flight >= t.config.max_in_flight then begin
    (* Outbound queue full: TCP would block; we shed and count. *)
    t.queue_drops <- t.queue_drops + 1;
    t.dropped_to_switch <- t.dropped_to_switch + 1;
    count_drop t ~direction:"to_switch"
  end
  else begin
    t.in_flight <- t.in_flight + 1;
    let lost_in_transit = t.down || lost t in
    Engine.schedule_after t.engine t.config.latency (fun () ->
        t.in_flight <- t.in_flight - 1;
        if lost_in_transit then begin
          t.dropped_to_switch <- t.dropped_to_switch + 1;
          count_drop t ~direction:"to_switch"
        end
        else Softswitch.Soft_switch.handle_message t.switch msg)
  end

let mark_connected t =
  t.state <- Connected;
  t.last_heard <- Engine.now t.engine;
  Softswitch.Soft_switch.set_connected t.switch true

let backoff_delay t ~attempt =
  (* base * 2^(attempt-1), capped; the shift itself is capped so a long
     outage cannot overflow. *)
  let shifted = t.config.reconnect_base lsl min (attempt - 1) 20 in
  min t.config.reconnect_max shifted

let rec attempt_reconnect t ~attempt =
  Engine.schedule_after t.engine
    (backoff_delay t ~attempt)
    (fun () ->
      if t.state = Disconnected then
        if (not t.down) && Softswitch.Soft_switch.alive t.switch then begin
          mark_connected t;
          t.reconnects <- t.reconnects + 1;
          count_reconnect t;
          if Telemetry.Eventlog.enabled () then
            event t
              ~detail:
                (Printf.sprintf "%s attempt=%d"
                   (Softswitch.Soft_switch.name t.switch)
                   attempt)
              "reconnect";
          List.iter (fun f -> f ()) t.on_reconnect
        end
        else attempt_reconnect t ~attempt:(attempt + 1))

let mark_disconnected t =
  if t.state = Connected then begin
    t.state <- Disconnected;
    Softswitch.Soft_switch.set_connected t.switch false;
    if Telemetry.Eventlog.enabled () then
      event t ~level:Telemetry.Eventlog.Warn
        ~detail:(Softswitch.Soft_switch.name t.switch)
        "disconnect";
    attempt_reconnect t ~attempt:1
  end

let set_down t down =
  if t.down <> down then begin
    t.down <- down;
    (* With keepalive off there is no probe to notice the outage, so the
       blackhole is surfaced (and healed) synchronously. *)
    if Option.is_none t.config.keepalive_interval then
      if down then mark_disconnected t
      else if t.state = Disconnected then attempt_reconnect t ~attempt:1
  end

let rec keepalive_tick t ~interval =
  Engine.schedule_after t.engine interval (fun () ->
      (match t.state with
      | Connected ->
          if Sim_time.diff (Engine.now t.engine) t.last_heard
             > t.config.echo_timeout
          then mark_disconnected t
          else begin
            t.echo_seq <- t.echo_seq + 1;
            to_switch t (Of_message.Echo_request (string_of_int t.echo_seq))
          end
      | Disconnected -> () (* the reconnect loop is already probing *));
      keepalive_tick t ~interval)

let validate config =
  if config.loss < 0.0 || config.loss >= 1.0 then
    invalid_arg "Channel.connect: loss must be in [0, 1)";
  if config.latency < 0 then invalid_arg "Channel.connect: negative latency";
  if config.max_in_flight <= 0 then
    invalid_arg "Channel.connect: max_in_flight <= 0";
  if config.echo_timeout <= 0 then
    invalid_arg "Channel.connect: echo_timeout <= 0";
  if config.reconnect_base <= 0 || config.reconnect_max < config.reconnect_base
  then invalid_arg "Channel.connect: bad reconnect backoff";
  match config.keepalive_interval with
  | Some iv when iv <= 0 -> invalid_arg "Channel.connect: keepalive <= 0"
  | Some _ | None -> ()

let connect engine ?latency ?(config = default_config) ~switch ~to_controller
    () =
  let config =
    match latency with Some l -> { config with latency = l } | None -> config
  in
  validate config;
  let t =
    {
      engine;
      config;
      rng = Rng.create config.seed;
      switch;
      to_controller;
      state = Connected;
      down = false;
      last_heard = Engine.now engine;
      in_flight = 0;
      to_switch_count = 0;
      to_controller_count = 0;
      dropped_to_switch = 0;
      dropped_to_controller = 0;
      queue_drops = 0;
      reconnects = 0;
      echo_seq = 0;
      on_reconnect = [];
    }
  in
  Softswitch.Soft_switch.set_controller switch (deliver_to_controller t);
  Softswitch.Soft_switch.set_connected switch true;
  if Telemetry.Eventlog.enabled () then
    event t ~detail:(Softswitch.Soft_switch.name switch) "connect";
  (match config.keepalive_interval with
  | Some interval -> keepalive_tick t ~interval
  | None -> ());
  t

let stats t =
  [
    ("sent_to_switch", t.to_switch_count);
    ("sent_to_controller", t.to_controller_count);
    ("dropped_to_switch", t.dropped_to_switch);
    ("dropped_to_controller", t.dropped_to_controller);
    ("queue_drops", t.queue_drops);
    ("reconnects", t.reconnects);
    ("connected", if t.state = Connected then 1 else 0);
  ]
