open Openflow

type flow_series = {
  mutable fs_latest : Of_message.flow_stat;
  fs_bytes : Telemetry.Timeseries.t;
  fs_packets : Telemetry.Timeseries.t;
}

type t = {
  ctrl : Controller.t;
  poller_dpid : int64;
  period : Simnet.Sim_time.span;
  retry : Mgmt.Retry.policy;
  capacity : int;
  flows : (string, flow_series) Hashtbl.t;
  port_rx : (int, Telemetry.Timeseries.t) Hashtbl.t;
  port_tx : (int, Telemetry.Timeseries.t) Hashtbl.t;
  rtt : Telemetry.Timeseries.t;
  mutable latest_flow_reply : Of_message.flow_stat list;
  mutable latest_port_reply : Of_message.port_stat list;
  mutable rounds : int;
  mutable flow_reply_count : int;
  mutable port_reply_count : int;
  mutable rtt_reply_count : int;
  (* Snapshot of [flow_reply_count] at the previous tick: if it has not
     advanced by the next tick, that round failed. *)
  mutable replies_at_last_tick : int;
  mutable failures : int;
  mutable running : bool;
  (* Generation counter: [stop] then [start] must not leave the old
     tick chain alive. *)
  mutable epoch : int;
}

let create ?(period = Simnet.Sim_time.ms 10) ?(retry = Mgmt.Retry.default)
    ?(capacity = 1024) ctrl dpid =
  if period <= 0 then invalid_arg "Stats_poller.create: period must be positive";
  {
    ctrl;
    poller_dpid = dpid;
    period;
    retry;
    capacity;
    flows = Hashtbl.create 32;
    port_rx = Hashtbl.create 8;
    port_tx = Hashtbl.create 8;
    rtt =
      Telemetry.Timeseries.create ~capacity:256
        ~name:(Printf.sprintf "rtt_ns{dpid=%Ld}" dpid)
        ();
    latest_flow_reply = [];
    latest_port_reply = [];
    rounds = 0;
    flow_reply_count = 0;
    port_reply_count = 0;
    rtt_reply_count = 0;
    replies_at_last_tick = 0;
    failures = 0;
    running = false;
    epoch = 0;
  }

let dpid t = t.poller_dpid

let now_ns t =
  Simnet.Sim_time.to_ns (Simnet.Engine.now (Controller.engine t.ctrl))

let flow_key (s : Of_message.flow_stat) =
  Format.asprintf "t%d p%d %a" s.Of_message.stat_table_id
    s.Of_message.stat_priority Of_match.pp s.Of_message.stat_match

let series t tbl key ~name =
  match Hashtbl.find_opt tbl key with
  | Some s -> s
  | None ->
      let s = Telemetry.Timeseries.create ~capacity:t.capacity ~name () in
      Hashtbl.replace tbl key s;
      s

let record_flows t stats =
  t.flow_reply_count <- t.flow_reply_count + 1;
  t.failures <- 0;
  t.latest_flow_reply <- stats;
  let ts_ns = now_ns t in
  List.iter
    (fun (s : Of_message.flow_stat) ->
      let key = flow_key s in
      let fs =
        match Hashtbl.find_opt t.flows key with
        | Some fs -> fs
        | None ->
            let fs =
              {
                fs_latest = s;
                fs_bytes =
                  Telemetry.Timeseries.create ~capacity:t.capacity
                    ~name:(key ^ " bytes") ();
                fs_packets =
                  Telemetry.Timeseries.create ~capacity:t.capacity
                    ~name:(key ^ " packets") ();
              }
            in
            Hashtbl.replace t.flows key fs;
            fs
      in
      fs.fs_latest <- s;
      Telemetry.Timeseries.record fs.fs_bytes ~ts_ns
        (float_of_int s.Of_message.stat_bytes);
      Telemetry.Timeseries.record fs.fs_packets ~ts_ns
        (float_of_int s.Of_message.stat_packets))
    stats

let record_ports t stats =
  t.port_reply_count <- t.port_reply_count + 1;
  t.latest_port_reply <- stats;
  let ts_ns = now_ns t in
  List.iter
    (fun (s : Of_message.port_stat) ->
      let p = s.Of_message.port_no in
      let rx =
        series t t.port_rx p
          ~name:(Printf.sprintf "port_rx_bytes{dpid=%Ld,port=%d}" t.poller_dpid p)
      in
      let tx =
        series t t.port_tx p
          ~name:(Printf.sprintf "port_tx_bytes{dpid=%Ld,port=%d}" t.poller_dpid p)
      in
      Telemetry.Timeseries.record rx ~ts_ns (float_of_int s.Of_message.rx_bytes);
      Telemetry.Timeseries.record tx ~ts_ns (float_of_int s.Of_message.tx_bytes))
    stats

let record_rtt t span =
  t.rtt_reply_count <- t.rtt_reply_count + 1;
  Telemetry.Timeseries.record t.rtt ~ts_ns:(now_ns t) (float_of_int span)

(* Flight-recorder events, correlated on the polled dpid.  Guarded at
   every call site. *)
let event t ?level ?detail name =
  Telemetry.Eventlog.emit ?level ~ts_ns:(now_ns t)
    ~corr:
      (Telemetry.Eventlog.corr_of_string
         (Printf.sprintf "dpid:%Lx" t.poller_dpid))
    ?detail ~stream:"poller" name

let issue_round t =
  t.rounds <- t.rounds + 1;
  if Telemetry.Eventlog.enabled () then
    event t ~level:Telemetry.Eventlog.Debug
      ~detail:(Printf.sprintf "dpid:%Lx round=%d" t.poller_dpid t.rounds)
      "round";
  Controller.flow_stats t.ctrl t.poller_dpid ~on_reply:(record_flows t);
  Controller.port_stats t.ctrl t.poller_dpid ~on_reply:(record_ports t);
  Controller.measure_rtt t.ctrl t.poller_dpid ~on_reply:(record_rtt t)

let poll_now t = issue_round t

let connected t =
  match Channel.state (Controller.channel t.ctrl t.poller_dpid) with
  | Channel.Connected -> true
  | Channel.Disconnected -> false

let current_delay t =
  if t.failures = 0 then t.period
  else
    max t.period (Mgmt.Retry.delay_before_attempt t.retry ~attempt:t.failures)

let rec tick t ~epoch =
  if t.running && epoch = t.epoch then begin
    (* Judge the previous round before issuing the next one. *)
    let failed_before = t.failures in
    if not (connected t) then t.failures <- t.failures + 1
    else if t.rounds > 0 && t.flow_reply_count = t.replies_at_last_tick then
      t.failures <- t.failures + 1;
    if t.failures > failed_before && Telemetry.Eventlog.enabled () then
      event t ~level:Telemetry.Eventlog.Warn
        ~detail:
          (Printf.sprintf "dpid:%Lx consecutive=%d%s" t.poller_dpid t.failures
             (if connected t then "" else " disconnected"))
        "stall";
    t.replies_at_last_tick <- t.flow_reply_count;
    if connected t then issue_round t;
    Simnet.Engine.schedule_after
      (Controller.engine t.ctrl)
      (current_delay t)
      (fun () -> tick t ~epoch)
  end

let start t =
  if not t.running then begin
    t.running <- true;
    t.epoch <- t.epoch + 1;
    let epoch = t.epoch in
    Simnet.Engine.schedule_after
      (Controller.engine t.ctrl)
      t.period
      (fun () -> tick t ~epoch)
  end

let stop t = t.running <- false
let rounds_issued t = t.rounds
let flow_replies t = t.flow_reply_count
let port_replies t = t.port_reply_count
let rtt_replies t = t.rtt_reply_count
let consecutive_failures t = t.failures
let latest_flows t = t.latest_flow_reply
let latest_ports t = t.latest_port_reply

let flow_keys t =
  Hashtbl.fold (fun k _ acc -> k :: acc) t.flows [] |> List.sort String.compare

let flow_bytes_series t key =
  Option.map (fun fs -> fs.fs_bytes) (Hashtbl.find_opt t.flows key)

let flow_packets_series t key =
  Option.map (fun fs -> fs.fs_packets) (Hashtbl.find_opt t.flows key)

let port_rx_series t port = Hashtbl.find_opt t.port_rx port
let port_tx_series t port = Hashtbl.find_opt t.port_tx port
let rtt_series t = t.rtt

let port_rate t ~port ~now_ns ~window =
  match (port_rx_series t port, port_tx_series t port) with
  | Some rx, Some tx -> (
      match
        ( Telemetry.Timeseries.rate_over rx ~now_ns ~window,
          Telemetry.Timeseries.rate_over tx ~now_ns ~window )
      with
      | Some r, Some x -> Some (r, x)
      | _ -> None)
  | _ -> None

let top_flows t ~n ~now_ns ~window =
  let rated =
    Hashtbl.fold
      (fun key fs acc ->
        let rate =
          Option.value ~default:0.
            (Telemetry.Timeseries.rate_over fs.fs_bytes ~now_ns ~window)
        in
        (key, rate) :: acc)
      t.flows []
  in
  let cmp (ka, ra) (kb, rb) =
    match compare rb ra with 0 -> String.compare ka kb | c -> c
  in
  let sorted = List.sort cmp rated in
  List.filteri (fun i _ -> i < n) sorted
