let create ?(name = "policy") compiled =
  let switch_up ctrl dpid =
    Controller.send_all ctrl dpid (Policy.Compile.messages compiled)
  in
  { (Controller.no_op_app name) with Controller.switch_up }

let install_direct ctrl dpid compiled =
  Controller.send_all ctrl dpid (Policy.Compile.messages compiled)
