(** The SDN controller: owns control channels to any number of switches
    and dispatches events to registered applications.

    Applications are chained: a packet-in is offered to each app in
    registration order until one returns [true] (consumed).  Apps install
    state through the controller's send/install API, never by touching
    switches directly, so everything they do crosses the (latency-bearing)
    control channel — exactly the constraint a real controller works
    under. *)

type t

(** What an application can do and see. *)
type app = {
  app_name : string;
  switch_up : t -> int64 -> unit;
      (** called once the switch's features reply arrives *)
  packet_in :
    t -> int64 -> in_port:int -> Openflow.Of_message.packet_in_reason ->
    Netpkt.Packet.t -> bool;
      (** [true] = consumed, stop the chain *)
  port_status : t -> int64 -> port:int -> up:bool -> unit;
      (** a switch port's carrier changed (all apps see every event) *)
}

val no_op_app : string -> app
(** An app that handles nothing — a base to extend with [{ ... with }]. *)

val create :
  Simnet.Engine.t ->
  ?channel_latency:Simnet.Sim_time.span ->
  ?channel_config:Channel.config ->
  unit ->
  t
(** [channel_config] shapes every channel this controller opens (loss,
    keepalive, backoff — see {!Channel.config}); [channel_latency]
    overrides just the latency. *)

val add_app : t -> app -> unit
(** Apps see switches that connect after registration; register apps
    first. *)

val attach_switch : t -> Softswitch.Soft_switch.t -> int64
(** Connect a switch: opens a channel, performs the hello /
    features-request handshake (asynchronously) and returns the datapath
    id.  [switch_up] callbacks fire when the handshake completes — run the
    engine. *)

val send : t -> int64 -> Openflow.Of_message.t -> unit
(** @raise Not_found for an unknown datapath. *)

val install : t -> int64 -> Openflow.Of_message.flow_mod -> unit
(** Count and send one flow-mod. *)

val send_all : t -> int64 -> Openflow.Of_message.t list -> unit
(** Send a message sequence in order, counting flow-mods as {!install}
    does — the push path apps use to install a precomputed rule set. *)

val packet_out :
  t -> int64 -> ?in_port:int -> actions:Openflow.Of_action.t list ->
  Netpkt.Packet.t -> unit

val channel : t -> int64 -> Channel.t
(** The control channel to a datapath — how experiments and the fault
    injector reach {!Channel.set_down}.
    @raise Not_found for an unknown datapath. *)

val resyncs : t -> int
(** Times any channel reconnected and had its state replayed.  On each
    reconnect the controller resends the hello/features handshake and
    every flow/group/meter-mod it ever sent that switch, in order —
    idempotent for a switch that kept its tables, restorative for one
    that crashed and lost them. *)

val switch_ids : t -> int64 list
val packet_ins_received : t -> int

val errors_received : t -> string list
(** Error messages from switches, oldest first. *)

val publish_metrics :
  ?registry:Telemetry.Registry.t -> ?labels:Telemetry.Registry.labels ->
  t -> unit
(** Snapshot controller tallies (packet-ins/outs, flow-mods sent,
    errors, attached switches, apps) into gauges named [controller_*].
    Pull-based. *)

val flow_stats :
  t -> int64 -> on_reply:(Openflow.Of_message.flow_stat list -> unit) -> unit
(** Issue a stats request; [on_reply] fires when the reply arrives. *)

val port_stats :
  t -> int64 -> on_reply:(Openflow.Of_message.port_stat list -> unit) -> unit
(** Issue a per-port counter request; [on_reply] fires on the reply. *)

val measure_rtt :
  t -> int64 -> on_reply:(Simnet.Sim_time.span -> unit) -> unit
(** Hairpin the control channel with an echo probe and report the
    round-trip time.  Probe payloads are tagged so they never collide
    with the channel's own keepalive echoes.  If the channel drops the
    probe or its reply, [on_reply] simply never fires. *)

val engine : t -> Simnet.Engine.t
(** The event engine this controller schedules on — pollers and other
    periodic machinery attach here. *)
