open Netpkt
open Openflow

type t = {
  pairs : (Ipv4_addr.t * Ipv4_addr.t) list;
  table : int;
  forward_table : int;
  priority : int;
  mutable dpids : int64 list;
  (* One stats poller per datapath — the single source of counter truth.
     The matrix below is a *view* over the pollers' latest flow-stats
     replies; the monitor keeps no books of its own. *)
  pollers : (int64, Stats_poller.t) Hashtbl.t;
}

let create ~pairs ?(table = 0) ?(forward_table = 1) ?(priority = 3000) () =
  {
    pairs;
    table;
    forward_table;
    priority;
    dpids = [];
    pollers = Hashtbl.create 4;
  }

let pair_match (src, dst) =
  Of_match.(
    any
    |> eth_type 0x0800
    |> ip_src (Ipv4_addr.Prefix.make src 32)
    |> ip_dst (Ipv4_addr.Prefix.make dst 32))

let app t =
  let switch_up ctrl dpid =
    t.dpids <- dpid :: t.dpids;
    List.iter
      (fun pair ->
        Controller.install ctrl dpid
          (Of_message.add_flow ~table_id:t.table ~priority:t.priority
             ~match_:(pair_match pair)
             [ Flow_entry.Goto_table t.forward_table ]))
      t.pairs;
    (* everything untracked also continues to the forwarding table *)
    Controller.install ctrl dpid
      (Of_message.add_flow ~table_id:t.table ~priority:1 ~match_:Of_match.any
         [ Flow_entry.Goto_table t.forward_table ])
  in
  { (Controller.no_op_app "monitor") with Controller.switch_up }

let poller_for t ctrl dpid =
  match Hashtbl.find_opt t.pollers dpid with
  | Some p -> p
  | None ->
      let p = Stats_poller.create ctrl dpid in
      Hashtbl.replace t.pollers dpid p;
      p

let poller t dpid = Hashtbl.find_opt t.pollers dpid

let poll t ctrl =
  List.iter (fun dpid -> Stats_poller.poll_now (poller_for t ctrl dpid)) t.dpids

let start_polling t ctrl engine ~period ~rounds =
  for i = 1 to rounds do
    Simnet.Engine.schedule_after engine (i * period) (fun () -> poll t ctrl)
  done

let matrix t =
  List.map
    (fun pair ->
      let m = pair_match pair in
      (* Flow counters are monotonic, so across pollers (and replies) the
         entry with the most packets is the freshest view of this pair. *)
      let best =
        Hashtbl.fold
          (fun _ p acc ->
            List.fold_left
              (fun acc (s : Of_message.flow_stat) ->
                if
                  s.Of_message.stat_table_id = t.table
                  && Of_match.equal s.Of_message.stat_match m
                  && s.Of_message.stat_packets >= fst acc
                then (s.Of_message.stat_packets, s.Of_message.stat_bytes)
                else acc)
              acc (Stats_poller.latest_flows p))
          t.pollers (0, 0)
      in
      (pair, best))
    t.pairs

let polls_completed t =
  Hashtbl.fold (fun _ p acc -> acc + Stats_poller.flow_replies p) t.pollers 0
