open Netpkt
open Openflow

type t = {
  sites : (string * Ipv4_addr.t) list;
  mutable blocked : (Ipv4_addr.t * string) list;
  priority : int;
  mutable dpids : int64 list;
  mutable sniffed_drops : int;
}

let create ?(sites = []) ~blocked ?(priority = 2200) () =
  { sites; blocked; priority; dpids = []; sniffed_drops = 0 }

let is_blocked t ~user ~host =
  List.exists
    (fun (u, h) -> Ipv4_addr.equal u user && String.equal h host)
    t.blocked

let blocked_list t = t.blocked
let sniffed_drops t = t.sniffed_drops

let site_ip t host =
  List.find_map
    (fun (h, ip) -> if String.equal h host then Some ip else None)
    t.sites

let drop_match ~user ~site =
  Of_match.(
    any
    |> eth_type 0x0800
    |> ip_proto 6
    |> ip_src (Ipv4_addr.Prefix.make user 32)
    |> ip_dst (Ipv4_addr.Prefix.make site 32)
    |> l4_dst 80)

let sniff_match ~user =
  Of_match.(
    any
    |> eth_type 0x0800
    |> ip_proto 6
    |> ip_src (Ipv4_addr.Prefix.make user 32)
    |> l4_dst 80)

(* Users with at least one blocked host we cannot resolve need the
   controller to see their HTTP requests. *)
let needs_sniffing t user =
  List.exists
    (fun (u, h) -> Ipv4_addr.equal u user && Option.is_none (site_ip t h))
    t.blocked

let messages_for_user t ?(table_id = 0) user =
  List.filter_map
    (fun (u, host) ->
      if Ipv4_addr.equal u user then
        match site_ip t host with
        | Some site ->
            Some
              (Of_message.Flow_mod
                 (Of_message.add_flow ~table_id ~priority:t.priority
                    ~match_:(drop_match ~user ~site)
                    [ Flow_entry.Apply_actions [ Of_action.Drop ] ]))
        | None -> None
      else None)
    t.blocked
  @
  if needs_sniffing t user then
    [
      Of_message.Flow_mod
        (Of_message.add_flow ~table_id ~priority:(t.priority - 100)
           ~match_:(sniff_match ~user)
           [
             Flow_entry.Apply_actions
               [ Of_action.Output (Of_action.Controller 0) ];
           ]);
    ]
  else []

let users t = List.sort_uniq Ipv4_addr.compare (List.map fst t.blocked)

let messages t ?table_id () =
  List.concat_map (messages_for_user t ?table_id) (users t)

let install_for_user t ctrl dpid user =
  Controller.send_all ctrl dpid (messages_for_user t user)

let install_all t ctrl dpid = List.iter (install_for_user t ctrl dpid) (users t)

let blocked_pred t =
  let open Policy.Syntax in
  disj
    (List.concat_map
       (fun user ->
         List.filter_map
           (fun (u, host) ->
             if Ipv4_addr.equal u user then
               Option.map
                 (fun site ->
                   conj
                     [
                       eth_type_is 0x0800;
                       ip_proto_is 6;
                       ip_src_is user;
                       ip_dst_is site;
                       l4_dst_is 80;
                     ])
                 (site_ip t host)
             else None)
           t.blocked)
       (users t))

let sniff_pred t =
  let open Policy.Syntax in
  disj
    (List.filter_map
       (fun user ->
         if needs_sniffing t user then
           Some
             (conj
                [
                  eth_type_is 0x0800;
                  ip_proto_is 6;
                  ip_src_is user;
                  l4_dst_is 80;
                ])
         else None)
       (users t))

let fragment t =
  let open Policy.Syntax in
  (* Proactive drops are absence; only the sniff path emits — guarded by
     the drops, which outrank it in the hand-written table. *)
  seq
    (filter (And (Not (blocked_pred t), sniff_pred t)))
    (to_controller ())

let app t =
  let switch_up ctrl dpid =
    t.dpids <- dpid :: t.dpids;
    install_all t ctrl dpid
  in
  let packet_in ctrl dpid ~in_port _reason (pkt : Packet.t) =
    match pkt.Packet.l3 with
    | Packet.Ip { Ipv4.src; payload = Ipv4.Tcp seg; _ } when seg.Tcp.dst_port = 80
      -> (
        match Http_lite.host_of_payload seg.Tcp.payload with
        | Some host when is_blocked t ~user:src ~host ->
            t.sniffed_drops <- t.sniffed_drops + 1;
            (* Pin the verdict so later packets of this flow drop in the
               dataplane. *)
            (match pkt.Packet.l3 with
            | Packet.Ip { Ipv4.dst; _ } ->
                Controller.install ctrl dpid
                  (Of_message.add_flow ~priority:t.priority
                     ~match_:(drop_match ~user:src ~site:dst)
                     [ Flow_entry.Apply_actions [ Of_action.Drop ] ])
            | Packet.Arp _ | Packet.Raw _ -> ());
            true (* consumed: the request dies here *)
        | Some _ | None ->
            (* Allowed (or unparseable): hand on so the L2 base app
               forwards it. *)
            ignore ctrl;
            ignore in_port;
            false)
    | Packet.Ip _ | Packet.Arp _ | Packet.Raw _ -> false
  in
  { (Controller.no_op_app "parental-control") with Controller.switch_up; packet_in }

let reinstall t ctrl =
  List.iter (fun dpid -> install_all t ctrl dpid) t.dpids

let block t ctrl ~user ~host =
  if not (is_blocked t ~user ~host) then begin
    t.blocked <- (user, host) :: t.blocked;
    List.iter
      (fun dpid ->
        match site_ip t host with
        | Some site ->
            Controller.install ctrl dpid
              (Of_message.add_flow ~priority:t.priority
                 ~match_:(drop_match ~user ~site)
                 [ Flow_entry.Apply_actions [ Of_action.Drop ] ])
        | None ->
            Controller.install ctrl dpid
              (Of_message.add_flow ~priority:(t.priority - 100)
                 ~match_:(sniff_match ~user)
                 [ Flow_entry.Apply_actions [ Of_action.Output (Of_action.Controller 0) ] ]))
      t.dpids
  end

let unblock t ctrl ~user ~host =
  if is_blocked t ~user ~host then begin
    t.blocked <-
      List.filter
        (fun (u, h) -> not (Ipv4_addr.equal u user && String.equal h host))
        t.blocked;
    List.iter
      (fun dpid ->
        (match site_ip t host with
        | Some site ->
            Controller.install ctrl dpid
              (Of_message.delete_flow ~strict:true ~priority:t.priority
                 (drop_match ~user ~site))
        | None -> ());
        if not (needs_sniffing t user) then
          Controller.install ctrl dpid
            (Of_message.delete_flow ~strict:true ~priority:(t.priority - 100)
               (sniff_match ~user)))
      t.dpids;
    reinstall t ctrl
  end
