(** First-order forwarding decision diagrams.

    An FDD is a binary decision diagram whose internal nodes test a single
    [(field, value)] pair — true edge [hi], false edge [lo] — and whose
    leaves carry the {e set} of actions the policy performs on packets
    reaching them.  Nodes are hash-consed, so semantic equality of the
    represented functions coincides with physical equality of nodes (one
    [==] or [uid] comparison), which is what the algebraic-law tests pin.

    Invariants maintained by the smart constructors:
    - keys strictly increase along every path (by {!Syntax.compare_key}:
      field rank first, then value), so a field is never re-tested with the
      same value and the [hi] edge of a test on [f] never re-tests [f];
    - no node has [hi == lo] (such nodes are collapsed).

    Those are the {e only} reductions: no context-sensitive rewrite (such
    as eliminating a modification [f := v] under the test [(f, v)]) is
    applied, because a rewrite that fires only where a test node happens to
    sit above a leaf makes the normal form depend on construction order and
    breaks the structural algebraic laws. *)

type key = Syntax.field * Syntax.value

(** A single action: modifications applied in field order, an optional
    token-bucket meter, and an optional hash-based bucket choice.  A leaf
    holds a sorted set of these. *)
module Act : sig
  type t = private {
    mods : (Syntax.field * Syntax.value) list;
        (** sorted by field rank, at most one entry per field *)
    police : Syntax.police option;
    balance : (Syntax.field * Syntax.value) list list option;
  }

  val make :
    ?police:Syntax.police ->
    ?balance:(Syntax.field * Syntax.value) list list ->
    (Syntax.field * Syntax.value) list ->
    t
  (** Normalises the modification list (last write per field wins,
      sorted).  Notably it does {e not} erase rewrites under a discard:
      a later composition can overwrite [Loc] and resurrect the packet,
      so that quotient is only sound at observation time
      ({!is_plain_disc}, {!strip_disc}). *)

  val id : t
  val is_id : t -> bool

  val is_plain_disc : t -> bool
  (** Location finally [Disc], no meter, no bucket choice: nothing is
      emitted and no side effect fires, whatever other rewrites the
      action carries — it contributes nothing next to other actions in a
      leaf. *)

  val loc : t -> Syntax.location option
  (** The location modification, if any ([None] = leave at ingress port). *)

  val compare : t -> t -> int
  val equal : t -> t -> bool
  val pp : Format.formatter -> t -> unit
  val to_string : t -> string
end

type t = private { uid : int; node : node }
and node = Leaf of Act.t list | Branch of key * t * t

val equal : t -> t -> bool
(** Physical (= semantic, by hash-consing) equality. *)

val leaf : Act.t list -> t
val drop : t
val id : t
val branch : key -> t -> t -> t
val atom : key -> t
val natom : key -> t

val sum : t -> t -> t
(** Union: pointwise set union of leaf action sets. *)

val prod : t -> t -> t
(** [prod pred d] guards [d] by a {e predicate} diagram (leaves [[]] or
    [[id]] only). @raise Invalid_argument if the left operand is not one. *)

val ors : t -> t -> t
(** Fallback: where the left diagram's leaf is empty, use the right's. *)

val seq : t -> t -> t
(** Sequential composition: resolves the right diagram's tests against the
    left's modifications symbolically.
    @raise Invalid_argument on a test/modification/meter after [Balance] or
    a second meter in sequence. *)

val negate : t -> t
(** @raise Invalid_argument on a non-predicate diagram. *)

val of_pred : Syntax.pred -> t

val of_policy : Syntax.t -> t
(** Checks well-formedness ({!Syntax.check}) then compiles.
    @raise Invalid_argument as {!Syntax.check}, {!seq} or {!negate} do. *)

val eval : (Syntax.field -> Syntax.value option) -> t -> Act.t list
(** Walk the diagram under a field valuation ([None] = field absent; a test
    on an absent field takes the [lo] edge). *)

val strip_disc : t -> t
(** Quotient by output observability: plain-discard actions
    ({!Act.is_plain_disc}) are removed from every leaf, so a leaf of
    discards alone becomes {!drop}.  The distinctions are kept during
    composition because the algebra can still see them — [orelse] stops
    at an explicit discard but falls through an empty set, and a later
    [seq] can test or overwrite a discarded state's fields — but a flow
    table cannot: the final action set is all that remains.  Used by the
    compiler, never during policy composition. *)

val size : t -> int
(** Number of distinct nodes (shared nodes counted once). *)

val leaves : t -> Act.t list list
(** All distinct leaf action sets, in left-to-right order. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
