open Syntax
module Packet = Netpkt.Packet
module Meter_table = Openflow.Meter_table
module Of_action = Openflow.Of_action
module Pipeline = Openflow.Pipeline

type t = { policy : Syntax.t; meters : Meter_table.t }

let collect_meters pol =
  let meters = Meter_table.create () in
  let seen : (int, police) Hashtbl.t = Hashtbl.create 8 in
  let rec go = function
    | Filter _ | Mod _ | Balance _ -> ()
    | Union (a, b) | Seq (a, b) | Orelse (a, b) ->
        go a;
        go b
    | Police p -> (
        match Hashtbl.find_opt seen p.meter_id with
        | None ->
            Hashtbl.add seen p.meter_id p;
            Meter_table.add meters ~id:p.meter_id
              { rate_kbps = p.rate_kbps; burst_kb = p.burst_kb }
        | Some p' ->
            if p' <> p then
              invalid_arg
                (Printf.sprintf
                   "Policy.Interp: meter %d declared with two different bands"
                   p.meter_id))
  in
  go pol;
  meters

let create pol =
  Syntax.check pol;
  { policy = pol; meters = collect_meters pol }

let policy t = t.policy

(* One evaluation state: accumulated ghost writes plus pending meter and
   bucket choice. *)
type st = {
  mods : (field * value) list;
  police : police option;
  balance : (field * value) list list option;
}

let init = { mods = []; police = None; balance = None }

let set_mod mods f v =
  (f, v) :: List.filter (fun (f', _) -> compare_field f f' <> 0) mods

let find_mod mods f =
  List.find_map
    (fun (f', v) -> if compare_field f f' = 0 then Some v else None)
    mods

let base_value ~in_port (fl : Packet.Fields.t) = function
  | Loc -> Some (At (Phys in_port))
  | Eth_type -> Some (Int fl.eth_type)
  | Vlan_vid -> Option.map (fun v -> Int v) fl.vlan_vid
  | Eth_src -> Some (Mac fl.eth_src)
  | Eth_dst -> Some (Mac fl.eth_dst)
  | Ip_proto -> Option.map (fun v -> Int v) fl.ip_proto
  | Ip_src -> Option.map (fun v -> Ip v) fl.ip_src
  | Ip_dst -> Option.map (fun v -> Ip v) fl.ip_dst
  | Ip_tos -> Option.map (fun v -> Int v) fl.ip_tos
  | L4_src -> Option.map (fun v -> Int v) fl.l4_src
  | L4_dst -> Option.map (fun v -> Int v) fl.l4_dst

let value_of ~base st f =
  match find_mod st.mods f with Some v -> Some v | None -> base f

let rec eval_pred ~base st = function
  | True -> true
  | False -> false
  | Test (f, v) -> (
      match value_of ~base st f with
      | Some v' -> equal_value v v'
      | None -> false)
  | And (a, b) -> eval_pred ~base st a && eval_pred ~base st b
  | Or (a, b) -> eval_pred ~base st a || eval_pred ~base st b
  | Not a -> not (eval_pred ~base st a)

(* Predicates reachable after a balance must be test-free (the compiler
   rejects tests there too); evaluate them statically. *)
let rec pred_static = function
  | True -> Some true
  | False -> Some false
  | Test _ -> None
  | And (a, b) -> (
      match (pred_static a, pred_static b) with
      | Some x, Some y -> Some (x && y)
      | _ -> None)
  | Or (a, b) -> (
      match (pred_static a, pred_static b) with
      | Some x, Some y -> Some (x || y)
      | _ -> None)
  | Not a -> Option.map not (pred_static a)

let after_balance_error () =
  invalid_arg "Policy.Interp: tests or writes after balance"

let rec eval ~base st pol =
  match st.balance with
  | Some _ -> (
      match pol with
      | Filter p -> (
          match pred_static p with
          | Some true -> [ st ]
          | Some false -> []
          | None -> after_balance_error ())
      | Mod _ | Police _ | Balance _ -> after_balance_error ()
      | Union (a, b) -> eval ~base st a @ eval ~base st b
      | Seq (a, b) ->
          List.concat_map (fun st' -> eval ~base st' b) (eval ~base st a)
      | Orelse (a, b) -> (
          match eval ~base st a with [] -> eval ~base st b | r -> r))
  | None -> (
      match pol with
      | Filter p -> if eval_pred ~base st p then [ st ] else []
      | Mod (f, v) -> [ { st with mods = set_mod st.mods f v } ]
      | Union (a, b) -> eval ~base st a @ eval ~base st b
      | Seq (a, b) ->
          List.concat_map (fun st' -> eval ~base st' b) (eval ~base st a)
      | Orelse (a, b) -> (
          match eval ~base st a with [] -> eval ~base st b | r -> r)
      | Police p ->
          if st.police <> None then
            invalid_arg "Policy.Interp: two meters in sequence on one path"
          else [ { st with police = Some p } ]
      | Balance buckets -> [ { st with balance = Some buckets } ])

(* Drop ghost writes that restate what the packet already carries: two
   states that render to the same output packet then also compare equal
   here, so duplicate effects collapse (and meter once, not twice) just
   as the compiled table's deduplicated outputs do. *)
let normalize_st ~base st =
  {
    st with
    mods =
      List.filter
        (fun (f, v) ->
          match base f with Some v' -> not (equal_value v v') | None -> true)
        st.mods;
  }

let compare_mods a b =
  let rec go = function
    | [], [] -> 0
    | [], _ -> -1
    | _, [] -> 1
    | x :: xs, y :: ys ->
        let c = compare_key x y in
        if c <> 0 then c else go (xs, ys)
  in
  go (a, b)

let compare_st a b =
  let c = compare_mods (List.sort compare_key a.mods) (List.sort compare_key b.mods) in
  if c <> 0 then c
  else
    let c = Option.compare Stdlib.compare a.police b.police in
    if c <> 0 then c
    else
      Option.compare
        (fun x y ->
          let rec go = function
            | [], [] -> 0
            | [], _ -> -1
            | _, [] -> 1
            | m :: ms, n :: ns ->
                let c = compare_mods m n in
                if c <> 0 then c else go (ms, ns)
          in
          go (x, y))
        a.balance b.balance

let dedup_states sts =
  List.rev
    (List.fold_left
       (fun acc st ->
         if List.exists (fun st' -> compare_st st st' = 0) acc then acc
         else st :: acc)
       [] sts)

let rewrite_of_mod (f, v) =
  match (f, v) with
  | Eth_src, Mac m -> Some (Of_action.Set_eth_src m)
  | Eth_dst, Mac m -> Some (Of_action.Set_eth_dst m)
  | Ip_src, Ip a -> Some (Of_action.Set_ip_src a)
  | Ip_dst, Ip a -> Some (Of_action.Set_ip_dst a)
  | Ip_tos, Int n -> Some (Of_action.Set_ip_tos n)
  | L4_src, Int n -> Some (Of_action.Set_l4_src n)
  | L4_dst, Int n -> Some (Of_action.Set_l4_dst n)
  | _ -> None

let apply_mods pkt mods =
  List.fold_left
    (fun pkt m ->
      match rewrite_of_mod m with
      | Some act -> Of_action.apply_rewrite act pkt
      | None -> pkt)
    pkt
    (List.sort compare_key mods)

let render ~in_port pkt st =
  ignore in_port;
  let pre = List.filter (fun (f, _) -> compare_field f Loc <> 0) st.mods in
  let pkt' = apply_mods pkt pre in
  let loc = find_mod st.mods Loc in
  match loc with
  | Some (At (Phys p)) -> [ Pipeline.Port (p, pkt') ]
  | Some (At Flood) -> [ Pipeline.Flood pkt' ]
  | Some (At (Ctrl n)) -> [ Pipeline.Controller (n, pkt') ]
  | Some (At Disc) -> []
  | Some _ -> assert false
  | None -> [ Pipeline.In_port pkt' ]

(* Replicates Group_table.select_buckets for a Select group whose buckets
   all have weight 1: cumulative-weight walk over [abs hash mod total]. *)
let pick_bucket buckets ~flow_hash =
  let total = List.length buckets in
  let target = abs flow_hash mod total in
  List.nth buckets target

let run t ~now_ns ~in_port pkt =
  let fl = Packet.Fields.of_packet pkt in
  let base = base_value ~in_port fl in
  let states = eval ~base init t.policy in
  let states = dedup_states (List.map (normalize_st ~base) states) in
  List.concat_map
    (fun st ->
      let metered_out =
        match st.police with
        | None -> false
        | Some p ->
            Meter_table.apply t.meters ~id:p.meter_id ~now_ns
              ~bytes:(Packet.size pkt)
            = `Drop
      in
      if metered_out then []
      else
        let st =
          match st.balance with
          | None -> st
          | Some buckets ->
              (* The pipeline hashes the packet as it stands when the group
                 action runs, i.e. after this rule's earlier rewrites. *)
              let pre =
                List.filter (fun (f, _) -> compare_field f Loc <> 0) st.mods
              in
              let hashed = Packet.Fields.of_packet (apply_mods pkt pre) in
              let bucket =
                pick_bucket buckets ~flow_hash:(Pipeline.flow_hash hashed)
              in
              let mods =
                List.fold_left
                  (fun mods (f, v) -> set_mod mods f v)
                  st.mods bucket
              in
              { st with balance = None; mods }
        in
        render ~in_port pkt st)
    states
