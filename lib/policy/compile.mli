(** FDD → priority flow table.

    The diagram is walked depth-first, [hi] before [lo], emitting one rule
    per leaf visit with strictly descending priorities.  A rule's match is
    the conjunction of the positive tests on its path; the negative ([lo])
    edges need no encoding because every [hi]-side leaf above shadows the
    packets it captures — which is also why interior drop leaves {e must}
    emit rules.  The only safe omission is the trailing run of drop rules,
    replaced by a single priority-0 catch-all drop; compiled tables are
    therefore total (no table miss, no spurious packet-ins from
    send-to-controller miss behaviour).

    Leaves map to OpenFlow as follows:
    - a single action: [Apply_actions] of its rewrites (field order) plus
      one output, prefixed by a [Meter] instruction when policed;
    - a [Balance]: a [Select] group of weight-1 buckets, one per choice;
    - several actions: an [All] group with one bucket per action, because
      buckets isolate rewrites the way output sets require (an inline
      action list would leak each action's rewrites into the next);
    - a meter inside a multi-action leaf has no OpenFlow encoding (meters
      are rule-level) — rejected.

    Structurally identical groups are shared.  Group and meter mods are
    ordered before flow mods in {!messages} so tables can be installed by
    replaying the list in order. *)

type t

val compile : ?table_id:int -> Syntax.t -> t
(** @raise Invalid_argument on an ill-formed policy (see {!Syntax.check}
    and {!Fdd.of_policy}), a meter declared with two different bands, or a
    meter inside a multi-action leaf. *)

val policy : t -> Syntax.t
val fdd : t -> Fdd.t
val table_id : t -> int

val flow_mods : t -> Openflow.Of_message.flow_mod list
(** In descending priority order, catch-all drop last. *)

val group_mods : t -> Openflow.Of_message.group_mod list
val meter_mods : t -> Openflow.Of_message.meter_mod list

val messages : t -> Openflow.Of_message.t list
(** Meters, then groups, then flows — dependency order. *)

val flow_count : t -> int
val group_count : t -> int
val meter_count : t -> int

val install : t -> now_ns:int -> Openflow.Pipeline.t -> unit
(** Install directly into a pipeline (tests and benches; the controller
    push path sends {!messages} instead).
    @raise Invalid_argument if the pipeline lacks the target table;
    @raise Flow_table.Table_full as the table does. *)

val render : t -> string
(** Deterministic human-readable dump (meters, groups, then rules with
    priority, match and actions) — the format committed as goldens. *)
