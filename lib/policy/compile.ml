open Syntax
module Of_match = Openflow.Of_match
module Of_action = Openflow.Of_action
module Of_message = Openflow.Of_message
module Flow_entry = Openflow.Flow_entry
module Flow_table = Openflow.Flow_table
module Group_table = Openflow.Group_table
module Meter_table = Openflow.Meter_table
module Pipeline = Openflow.Pipeline

type t = {
  policy : Syntax.t;
  fdd : Fdd.t;
  table_id : int;
  flow_mods : Of_message.flow_mod list;
  group_mods : Of_message.group_mod list;
  meter_mods : Of_message.meter_mod list;
}

let policy t = t.policy
let fdd t = t.fdd
let table_id t = t.table_id
let flow_mods t = t.flow_mods
let group_mods t = t.group_mods
let meter_mods t = t.meter_mods
let flow_count t = List.length t.flow_mods
let group_count t = List.length t.group_mods
let meter_count t = List.length t.meter_mods

let collect_meter_mods fdd =
  let seen : (int, police) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun acts ->
      List.iter
        (fun (a : Fdd.Act.t) ->
          Option.iter
            (fun (p : police) ->
              match Hashtbl.find_opt seen p.meter_id with
              | None -> Hashtbl.add seen p.meter_id p
              | Some p' ->
                  if p' <> p then
                    invalid_arg
                      (Printf.sprintf
                         "Policy.Compile: meter %d declared with two \
                          different bands"
                         p.meter_id))
            a.police)
        acts)
    (Fdd.leaves fdd);
  Hashtbl.fold (fun id (p : police) acc -> (id, p) :: acc) seen []
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
  |> List.map (fun (id, (p : police)) ->
         Of_message.Add_meter
           { id; band = { Meter_table.rate_kbps = p.rate_kbps; burst_kb = p.burst_kb } })

let refine match_ f v =
  match (f, v) with
  | Loc, At (Phys p) -> Of_match.in_port p match_
  | Eth_type, Int n -> Of_match.eth_type n match_
  | Vlan_vid, Int n -> Of_match.vid n match_
  | Eth_src, Mac m -> Of_match.eth_src m match_
  | Eth_dst, Mac m -> Of_match.eth_dst m match_
  | Ip_src, Ip a ->
      Of_match.ip_src (Netpkt.Ipv4_addr.Prefix.make a 32) match_
  | Ip_dst, Ip a ->
      Of_match.ip_dst (Netpkt.Ipv4_addr.Prefix.make a 32) match_
  | Ip_proto, Int n -> Of_match.ip_proto n match_
  | Ip_tos, Int n -> Of_match.ip_tos n match_
  | L4_src, Int n -> Of_match.l4_src n match_
  | L4_dst, Int n -> Of_match.l4_dst n match_
  | _ ->
      (* Syntax.check admits no other test shapes. *)
      assert false

(* Structurally identical groups are shared via a rendered key. *)
type group_alloc = {
  mutable next_id : int;
  tbl : (string, int) Hashtbl.t;
  mutable mods_rev : Of_message.group_mod list;
}

let group_key gtype buckets =
  let b = Buffer.create 64 in
  Buffer.add_string b
    (match gtype with
    | Group_table.All -> "all"
    | Group_table.Select -> "select"
    | Group_table.Indirect -> "indirect");
  List.iter
    (fun (bk : Group_table.bucket) ->
      Buffer.add_string b
        (Format.asprintf "|w%d:%a" bk.weight Of_action.pp_list bk.actions))
    buckets;
  Buffer.contents b

let alloc_group ga gtype buckets =
  let key = group_key gtype buckets in
  match Hashtbl.find_opt ga.tbl key with
  | Some id -> id
  | None ->
      let id = ga.next_id in
      ga.next_id <- id + 1;
      Hashtbl.add ga.tbl key id;
      ga.mods_rev <-
        Of_message.Add_group { id; gtype; buckets } :: ga.mods_rev;
      id

let rewrite_of_mod (f, v) =
  match (f, v) with
  | Eth_src, Mac m -> Of_action.Set_eth_src m
  | Eth_dst, Mac m -> Of_action.Set_eth_dst m
  | Ip_src, Ip a -> Of_action.Set_ip_src a
  | Ip_dst, Ip a -> Of_action.Set_ip_dst a
  | Ip_tos, Int n -> Of_action.Set_ip_tos n
  | L4_src, Int n -> Of_action.Set_l4_src n
  | L4_dst, Int n -> Of_action.Set_l4_dst n
  | _ ->
      (* Loc handled separately; Syntax.check admits nothing else. *)
      assert false

let rewrites_of_mods mods =
  List.filter_map
    (fun ((f, _) as m) ->
      if compare_field f Loc = 0 then None else Some (rewrite_of_mod m))
    mods

let output_of_loc = function
  | Some (Phys p) -> [ Of_action.Output (Of_action.Physical p) ]
  | Some Flood -> [ Of_action.Output Of_action.Flood ]
  | Some (Ctrl n) -> [ Of_action.Output (Of_action.Controller n) ]
  | Some Disc -> [ Of_action.Drop ]
  | None -> [ Of_action.Output Of_action.In_port ]

let balance_group ga ~outer_loc buckets =
  let gbuckets =
    List.map
      (fun mods ->
        let loc =
          match
            List.find_map
              (fun (f, v) ->
                if compare_field f Loc = 0 then
                  match v with At l -> Some l | _ -> None
                else None)
              mods
          with
          | Some l -> Some l
          | None -> outer_loc
        in
        {
          Group_table.weight = 1;
          actions = rewrites_of_mods mods @ output_of_loc loc;
        })
      buckets
  in
  alloc_group ga Group_table.Select gbuckets

(* Actions of one leaf action, for use inside an [All] bucket: rewrites,
   then either a chained select group or the output. *)
let actions_of_act ga (a : Fdd.Act.t) =
  let sets = rewrites_of_mods a.mods in
  match (a.balance, Fdd.Act.loc a) with
  | Some buckets, outer_loc ->
      let gid = balance_group ga ~outer_loc buckets in
      sets @ [ Of_action.Group gid ]
  | None, Some Disc ->
      (* Rewrites on a discarded packet are unobservable — don't emit
         them. *)
      [ Of_action.Drop ]
  | None, loc -> sets @ output_of_loc loc

let instructions_of_leaf ga acts =
  match acts with
  | [] -> [ Flow_entry.Apply_actions [ Of_action.Drop ] ]
  | [ (a : Fdd.Act.t) ] ->
      let meter =
        match a.police with
        | Some p -> [ Flow_entry.Meter p.meter_id ]
        | None -> []
      in
      meter @ [ Flow_entry.Apply_actions (actions_of_act ga a) ]
  | many ->
      if List.exists (fun (a : Fdd.Act.t) -> a.police <> None) many then
        invalid_arg
          "Policy.Compile: a meter inside a multi-action leaf has no \
           flow-rule encoding";
      let buckets =
        List.map
          (fun a -> { Group_table.weight = 1; actions = actions_of_act ga a })
          many
      in
      let gid = alloc_group ga Group_table.All buckets in
      [ Flow_entry.Apply_actions [ Of_action.Group gid ] ]

(* ---- redundant-rule elimination ----

   The DFS enumerates one rule per decision-tree {e path}, so a subtree
   the diagram shares (the DAG keeps one copy) is re-emitted under every
   prefix that reaches it — e.g. an L2 band repeated under each in-port
   arm.  Most of those copies are redundant under first-match semantics:
   the packets they capture fall through to an identical later rule.

   The diagram itself decides removability exactly.  For rule [i], the
   packets that actually reach it are [match_i ∧ ¬shadow_i] (shadow = any
   higher-priority match); the rule is redundant iff the kept suffix
   below it treats that set identically to the rule's own leaf.  Both
   sides are FDDs, so the test is one hash-consed pointer comparison.
   Scanning bottom-up keeps the general (widest-reach) copy of a
   duplicated band and discards the specialized re-emissions above it.

   Soundness does not rest on the scan alone: [verify] re-folds the kept
   rules into an FDD under first-match semantics and demands structural
   equality with the source diagram, falling back to the unminimized
   table if the check ever failed. *)

type proto_rule = { keys : Fdd.key list; match_ : Of_match.t; acts : Fdd.Act.t list }

let pred_of_keys keys =
  List.fold_left (fun acc k -> Fdd.prod acc (Fdd.atom k)) Fdd.id keys

(* First-match choice as an FDD: where [pred] holds use [then_], else
   [else_]. *)
let ite pred then_ else_ =
  Fdd.sum (Fdd.prod pred then_) (Fdd.prod (Fdd.negate pred) else_)

let minimize target rules =
  (* [target] is the observable ({!Fdd.strip_disc}) diagram the rules were
     extracted from, so leaf comparisons here are already modulo
     discard. *)
  let rules_arr = Array.of_list rules in
  let n = Array.length rules_arr in
  (* shadow.(i): a higher-priority rule matches.  Computed against the
     full emission; only ever an over-approximation for rules considered
     later in the bottom-up scan, which is the sound direction (a packet
     excluded here was proven unchanged when its capturing rule was
     removed). *)
  let shadow = Array.make (n + 1) Fdd.drop in
  for i = 0 to n - 1 do
    shadow.(i + 1) <- Fdd.sum shadow.(i) (pred_of_keys rules_arr.(i).keys)
  done;
  let kept = ref [] in
  let suffix = ref Fdd.drop in
  for i = n - 1 downto 0 do
    let r = rules_arr.(i) in
    let reach =
      Fdd.prod (pred_of_keys r.keys) (Fdd.negate shadow.(i))
    in
    let leaf = Fdd.leaf r.acts in
    if Fdd.equal (Fdd.prod reach !suffix) (Fdd.prod reach leaf) then ()
    else begin
      kept := r :: !kept;
      suffix := ite (pred_of_keys r.keys) leaf !suffix
    end
  done;
  if Fdd.equal !suffix target then !kept else rules

let compile ?(table_id = 0) pol =
  let fdd = Fdd.of_policy pol in
  (* Tables materialise outputs only, so extraction works on the
     observable quotient: discard-only leaves become plain drops (and
     merge into the catch-all), and discards next to other actions
     vanish. *)
  let obs = Fdd.strip_disc fdd in
  let meter_mods = collect_meter_mods obs in
  let ga = { next_id = 1; tbl = Hashtbl.create 8; mods_rev = [] } in
  (* DFS, hi before lo: rule order = descending priority. *)
  let rules_rev = ref [] in
  let rec walk keys match_ (d : Fdd.t) =
    match d.node with
    | Fdd.Leaf acts ->
        rules_rev := { keys = List.rev keys; match_; acts } :: !rules_rev
    | Fdd.Branch (((f, v) as key), hi, lo) ->
        walk (key :: keys) (refine match_ f v) hi;
        walk keys match_ lo
  in
  walk [] Of_match.any obs;
  let rules = minimize obs (List.rev !rules_rev) in
  let n = List.length rules in
  let flow_mods =
    List.mapi
      (fun i r ->
        Of_message.add_flow ~table_id ~priority:(n - i) ~match_:r.match_
          (instructions_of_leaf ga r.acts))
      rules
    @ [
        Of_message.add_flow ~table_id ~priority:0 ~match_:Of_match.any
          [ Flow_entry.Apply_actions [ Of_action.Drop ] ];
      ]
  in
  {
    policy = pol;
    fdd;
    table_id;
    flow_mods;
    group_mods = List.rev ga.mods_rev;
    meter_mods;
  }

let messages t =
  List.map (fun m -> Of_message.Meter_mod m) t.meter_mods
  @ List.map (fun g -> Of_message.Group_mod g) t.group_mods
  @ List.map (fun f -> Of_message.Flow_mod f) t.flow_mods

let install t ~now_ns pipeline =
  List.iter
    (function
      | Of_message.Add_meter { id; band } ->
          Meter_table.add (Pipeline.meters pipeline) ~id band
      | _ -> assert false)
    t.meter_mods;
  List.iter
    (function
      | Of_message.Add_group { id; gtype; buckets } ->
          Group_table.add (Pipeline.groups pipeline) ~id gtype buckets
      | _ -> assert false)
    t.group_mods;
  let table = Pipeline.table pipeline t.table_id in
  List.iter
    (fun (fm : Of_message.flow_mod) ->
      Flow_table.add table ~now_ns
        (Flow_entry.make ~priority:fm.priority ~match_:fm.match_
           fm.instructions))
    t.flow_mods

let pp_instructions ppf instrs =
  let first = ref true in
  List.iter
    (fun instr ->
      if not !first then Format.pp_print_string ppf "; ";
      first := false;
      match instr with
      | Flow_entry.Meter id -> Format.fprintf ppf "meter:%d" id
      | Flow_entry.Apply_actions acts -> Of_action.pp_list ppf acts
      | Flow_entry.Write_actions acts ->
          Format.fprintf ppf "write[%a]" Of_action.pp_list acts
      | Flow_entry.Clear_actions -> Format.pp_print_string ppf "clear"
      | Flow_entry.Goto_table n -> Format.fprintf ppf "goto:%d" n)
    instrs

let render t =
  let b = Buffer.create 1024 in
  Buffer.add_string b
    (Printf.sprintf "policy-table table=%d rules=%d groups=%d meters=%d\n"
       t.table_id (flow_count t) (group_count t) (meter_count t));
  List.iter
    (function
      | Of_message.Add_meter { id; band } ->
          Buffer.add_string b
            (Printf.sprintf "meter %d rate_kbps=%d burst_kb=%d\n" id
               band.Meter_table.rate_kbps band.Meter_table.burst_kb)
      | _ -> ())
    t.meter_mods;
  List.iter
    (function
      | Of_message.Add_group { id; gtype; buckets } ->
          Buffer.add_string b
            (Format.asprintf "group %d %s {%a}\n" id
               (match gtype with
               | Group_table.All -> "all"
               | Group_table.Select -> "select"
               | Group_table.Indirect -> "indirect")
               (Format.pp_print_list
                  ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " | ")
                  (fun ppf (bk : Group_table.bucket) ->
                    Of_action.pp_list ppf bk.actions))
               buckets)
      | _ -> ())
    t.group_mods;
  List.iter
    (fun (fm : Of_message.flow_mod) ->
      Buffer.add_string b
        (Format.asprintf "rule %4d %a -> %a\n" fm.priority Of_match.pp
           fm.match_ pp_instructions fm.instructions))
    t.flow_mods;
  Buffer.contents b
