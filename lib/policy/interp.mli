(** Direct denotational interpreter — ground truth for the compiler.

    [run] evaluates the policy syntax tree on one packet, with no decision
    diagram and no flow table involved, and returns pipeline-shaped
    outputs.  Meter state (for [Police]) lives in the interpreter value and
    advances with the [now_ns] timestamps passed to [run], exactly like a
    switch's meter table does, so a packet sequence replayed through both
    the interpreter and a compiled table sees identical token-bucket
    decisions.

    Semantics notes (all mirrored by the compiled table):
    - modifications are "ghost writes": setting a field a packet does not
      carry (e.g. [Ip_src] on ARP) still shadows subsequent tests of that
      field, but rewrites nothing when the packet is rendered — OpenFlow's
      no-op-on-prerequisite-failure;
    - outputs are a set: duplicate effects collapse;
    - [Police] applies once per surviving output state, after evaluation
      (a metered branch whose continuation drops consumes no tokens);
    - [Balance] picks its bucket with the pipeline's {!Openflow.Pipeline.flow_hash}
      of the packet {e after} upstream modifications, replicating
      [Group_table.select_buckets] on weight-1 buckets. *)

type t

val create : Syntax.t -> t
(** Checks the policy ({!Syntax.check}) and registers its meters.
    @raise Invalid_argument on an ill-formed policy or on two [Police]
    nodes that give the same [meter_id] different bands. *)

val policy : t -> Syntax.t

val run :
  t -> now_ns:int -> in_port:int -> Netpkt.Packet.t ->
  Openflow.Pipeline.output list
(** @raise Invalid_argument on paths the compiler also rejects (policy
    after [Balance], two meters in sequence). *)
