type location = Phys of int | Flood | Ctrl of int | Disc

type field =
  | Loc
  | Eth_type
  | Vlan_vid
  | Eth_src
  | Eth_dst
  | Ip_proto
  | Ip_src
  | Ip_dst
  | Ip_tos
  | L4_src
  | L4_dst

type value =
  | Int of int
  | Mac of Netpkt.Mac_addr.t
  | Ip of Netpkt.Ipv4_addr.t
  | At of location

type pred =
  | True
  | False
  | Test of field * value
  | And of pred * pred
  | Or of pred * pred
  | Not of pred

type police = { meter_id : int; rate_kbps : int; burst_kb : int }

type t =
  | Filter of pred
  | Mod of field * value
  | Union of t * t
  | Seq of t * t
  | Orelse of t * t
  | Police of police
  | Balance of (field * value) list list

(* The FDD tests fields in this order.  [Eth_dst] ranks last on purpose:
   it is the field of the broadest fallback band (L2 forwarding matches
   every packet class), and ranking it below the protocol- and
   flow-scoped fields lets those rules keep their narrow matches instead
   of being re-emitted once per destination arm. *)
let field_rank = function
  | Loc -> 0
  | Eth_type -> 1
  | Vlan_vid -> 2
  | Eth_src -> 3
  | Ip_proto -> 4
  | Ip_src -> 5
  | Ip_dst -> 6
  | Ip_tos -> 7
  | L4_src -> 8
  | L4_dst -> 9
  | Eth_dst -> 10

let field_name = function
  | Loc -> "loc"
  | Eth_type -> "eth_type"
  | Vlan_vid -> "vlan_vid"
  | Eth_src -> "eth_src"
  | Eth_dst -> "eth_dst"
  | Ip_proto -> "ip_proto"
  | Ip_src -> "ip_src"
  | Ip_dst -> "ip_dst"
  | Ip_tos -> "ip_tos"
  | L4_src -> "l4_src"
  | L4_dst -> "l4_dst"

let compare_field a b = Int.compare (field_rank a) (field_rank b)

let location_rank = function
  | Phys _ -> 0
  | Flood -> 1
  | Ctrl _ -> 2
  | Disc -> 3

let compare_location a b =
  match (a, b) with
  | Phys p, Phys q -> Int.compare p q
  | Ctrl p, Ctrl q -> Int.compare p q
  | _ -> Int.compare (location_rank a) (location_rank b)

let value_rank = function Int _ -> 0 | Mac _ -> 1 | Ip _ -> 2 | At _ -> 3

let compare_value a b =
  match (a, b) with
  | Int x, Int y -> Int.compare x y
  | Mac x, Mac y -> Netpkt.Mac_addr.compare x y
  | Ip x, Ip y -> Netpkt.Ipv4_addr.compare x y
  | At x, At y -> compare_location x y
  | _ -> Int.compare (value_rank a) (value_rank b)

let equal_value a b = compare_value a b = 0

let compare_key (f1, v1) (f2, v2) =
  let c = compare_field f1 f2 in
  if c <> 0 then c else compare_value v1 v2

let pp_location ppf = function
  | Phys p -> Format.fprintf ppf "port:%d" p
  | Flood -> Format.pp_print_string ppf "flood"
  | Ctrl n -> Format.fprintf ppf "ctrl:%d" n
  | Disc -> Format.pp_print_string ppf "disc"

let pp_value ppf = function
  | Int n -> Format.pp_print_int ppf n
  | Mac m -> Netpkt.Mac_addr.pp ppf m
  | Ip ip -> Netpkt.Ipv4_addr.pp ppf ip
  | At l -> pp_location ppf l

let rec pp_pred ppf = function
  | True -> Format.pp_print_string ppf "true"
  | False -> Format.pp_print_string ppf "false"
  | Test (f, v) -> Format.fprintf ppf "%s=%a" (field_name f) pp_value v
  | And (a, b) -> Format.fprintf ppf "(%a and %a)" pp_pred a pp_pred b
  | Or (a, b) -> Format.fprintf ppf "(%a or %a)" pp_pred a pp_pred b
  | Not a -> Format.fprintf ppf "not %a" pp_pred a

let pp_mods ppf mods =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
    (fun ppf (f, v) ->
      Format.fprintf ppf "%s:=%a" (field_name f) pp_value v)
    ppf mods

let rec pp ppf = function
  | Filter True -> Format.pp_print_string ppf "id"
  | Filter False -> Format.pp_print_string ppf "drop"
  | Filter p -> Format.fprintf ppf "filter %a" pp_pred p
  | Mod (f, v) -> Format.fprintf ppf "%s:=%a" (field_name f) pp_value v
  | Union (a, b) -> Format.fprintf ppf "(%a + %a)" pp a pp b
  | Seq (a, b) -> Format.fprintf ppf "(%a; %a)" pp a pp b
  | Orelse (a, b) -> Format.fprintf ppf "(%a |- %a)" pp a pp b
  | Police p ->
      Format.fprintf ppf "police(meter:%d %dkbps burst:%dkb)" p.meter_id
        p.rate_kbps p.burst_kb
  | Balance buckets ->
      Format.fprintf ppf "balance{%a}"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " | ")
           (fun ppf b -> pp_mods ppf b))
        buckets

let to_string t = Format.asprintf "%a" pp t

(* Well-formedness *)

let kind_of_value = function
  | Int _ -> "int"
  | Mac _ -> "mac"
  | Ip _ -> "ip"
  | At _ -> "location"

let bad what f v =
  invalid_arg
    (Printf.sprintf "Policy.Syntax: %s %s with %s value" what (field_name f)
       (kind_of_value v))

let check_test f v =
  match (f, v) with
  | Loc, At (Phys _) -> ()
  | Loc, At _ ->
      invalid_arg "Policy.Syntax: test loc only accepts a physical port"
  | (Eth_src | Eth_dst), Mac _ -> ()
  | (Ip_src | Ip_dst), Ip _ -> ()
  | (Eth_type | Vlan_vid | Ip_proto | Ip_tos | L4_src | L4_dst), Int _ -> ()
  | _ -> bad "test on" f v

let check_mod f v =
  match (f, v) with
  | Loc, At _ -> ()
  | (Eth_src | Eth_dst), Mac _ -> ()
  | (Ip_src | Ip_dst), Ip _ -> ()
  | (Ip_tos | L4_src | L4_dst), Int _ -> ()
  | (Eth_type | Vlan_vid | Ip_proto), _ ->
      invalid_arg
        (Printf.sprintf "Policy.Syntax: field %s is read-only" (field_name f))
  | _ -> bad "write to" f v

let rec check_pred = function
  | True | False -> ()
  | Test (f, v) -> check_test f v
  | And (a, b) | Or (a, b) ->
      check_pred a;
      check_pred b
  | Not a -> check_pred a

let rec check = function
  | Filter p -> check_pred p
  | Mod (f, v) -> check_mod f v
  | Union (a, b) | Seq (a, b) | Orelse (a, b) ->
      check a;
      check b
  | Police p ->
      if p.meter_id <= 0 then
        invalid_arg "Policy.Syntax: police meter_id must be positive";
      if p.rate_kbps <= 0 then
        invalid_arg "Policy.Syntax: police rate must be positive"
  | Balance buckets ->
      if buckets = [] then
        invalid_arg "Policy.Syntax: balance needs at least one bucket";
      List.iter (fun b -> List.iter (fun (f, v) -> check_mod f v) b) buckets

(* Constructors *)

let id = Filter True
let drop = Filter False
let filter p = Filter p

let test f v =
  check_test f v;
  Test (f, v)

let conj = function
  | [] -> True
  | p :: ps -> List.fold_left (fun acc q -> And (acc, q)) p ps

let disj = function
  | [] -> False
  | p :: ps -> List.fold_left (fun acc q -> Or (acc, q)) p ps

let neg p = Not p
let in_port p = test Loc (At (Phys p))
let eth_src_is m = test Eth_src (Mac m)
let eth_dst_is m = test Eth_dst (Mac m)
let eth_type_is n = test Eth_type (Int n)
let vlan_vid_is n = test Vlan_vid (Int n)
let ip_proto_is n = test Ip_proto (Int n)
let ip_src_is a = test Ip_src (Ip a)
let ip_dst_is a = test Ip_dst (Ip a)
let ip_tos_is n = test Ip_tos (Int n)
let l4_src_is n = test L4_src (Int n)
let l4_dst_is n = test L4_dst (Int n)
let fwd p = Mod (Loc, At (Phys p))
let flood = Mod (Loc, At Flood)
let to_controller ?(bytes = 0) () = Mod (Loc, At (Ctrl bytes))
let discard = Mod (Loc, At Disc)
let set_eth_src m = Mod (Eth_src, Mac m)
let set_eth_dst m = Mod (Eth_dst, Mac m)
let set_ip_src a = Mod (Ip_src, Ip a)
let set_ip_dst a = Mod (Ip_dst, Ip a)
let set_ip_tos n = Mod (Ip_tos, Int n)
let set_l4_src n = Mod (L4_src, Int n)
let set_l4_dst n = Mod (L4_dst, Int n)
let union a b = Union (a, b)
let seq a b = Seq (a, b)
let orelse a b = Orelse (a, b)

let unions = function
  | [] -> drop
  | p :: ps -> List.fold_left (fun acc q -> Union (acc, q)) p ps

let seqs = function
  | [] -> id
  | p :: ps -> List.fold_left (fun acc q -> Seq (acc, q)) p ps

let rec orelses = function
  | [] -> drop
  | [ p ] -> p
  | p :: ps -> Orelse (p, orelses ps)

let police ~meter_id ~rate_kbps ~burst_kb =
  Police { meter_id; rate_kbps; burst_kb }

let balance buckets = Balance buckets
