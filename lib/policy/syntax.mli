(** NetKAT-lite policy syntax.

    A policy describes, per packet, a {e set} of output packets: predicates
    filter, modifications rewrite header fields, [union] runs both operands
    on the same input and takes the union of their outputs, [seq] pipes the
    outputs of the first operand through the second, and [orelse] falls back
    to its right operand only when the left one produced nothing (the
    priority-table idiom: "if no higher band matched").

    Two side-effecting primitives extend the pure algebra so the four
    controller apps can be expressed: [Police] runs the packet through a
    token-bucket meter (identified by an explicit [meter_id] so that the
    compiled table, the interpreter and the hand-written apps share bucket
    state granularity), and [Balance] picks one modification list out of a
    bucket list by flow hash (compiled to an OpenFlow select group).

    Locations are just another field ([Loc]): testing it reads the ingress
    port, modifying it sets the egress. [Disc] is an explicit discard
    location — unlike an empty output set it keeps earlier side effects
    (metering) observable, mirroring a hand-written pipeline that meters in
    table 0 and drops in table 1. *)

type location =
  | Phys of int  (** a physical port *)
  | Flood  (** all ports except ingress *)
  | Ctrl of int  (** punt to controller, with max bytes of payload *)
  | Disc  (** explicit discard: no output, side effects retained *)

type field =
  | Loc
  | Eth_type
  | Vlan_vid
  | Eth_src
  | Eth_dst
  | Ip_proto
  | Ip_src
  | Ip_dst
  | Ip_tos
  | L4_src
  | L4_dst

type value =
  | Int of int
  | Mac of Netpkt.Mac_addr.t
  | Ip of Netpkt.Ipv4_addr.t
  | At of location

type pred =
  | True
  | False
  | Test of field * value
  | And of pred * pred
  | Or of pred * pred
  | Not of pred

type police = { meter_id : int; rate_kbps : int; burst_kb : int }

type t =
  | Filter of pred
  | Mod of field * value
  | Union of t * t
  | Seq of t * t
  | Orelse of t * t
  | Police of police
  | Balance of (field * value) list list
      (** non-empty bucket list; the flow hash of the packet (after upstream
          modifications) selects one bucket whose modifications are applied *)

(** {1 Field and value orders} *)

val field_rank : field -> int
(** Total order used by the FDD: tests on lower-ranked fields appear nearer
    the root. [Loc] ranks first; [Eth_dst] ranks last so the broad L2
    forwarding band compiles to rules that generalize across the
    narrower protocol- and flow-scoped bands above it. *)

val field_name : field -> string
val compare_field : field -> field -> int
val compare_value : value -> value -> int
val equal_value : value -> value -> bool
val compare_key : field * value -> field * value -> int

val pp_location : Format.formatter -> location -> unit
val pp_value : Format.formatter -> value -> unit

val pp_mods : Format.formatter -> (field * value) list -> unit
(** Comma-separated [field:=value] list. *)

val pp_pred : Format.formatter -> pred -> unit
val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** {1 Well-formedness}

    Tests must pair a field with a value of its kind ([Eth_src] with [Mac],
    [Ip_dst] with [Ip], [Loc] with [At], the rest with [Int]); [Eth_type],
    [Vlan_vid] and [Ip_proto] are read-only (no [Mod]); [Mod Loc] accepts
    any location while [Test Loc] only a [Phys] port; [Balance] buckets
    hold modifications only. *)

val check_test : field -> value -> unit
(** @raise Invalid_argument on an ill-kinded test. *)

val check_mod : field -> value -> unit
(** @raise Invalid_argument on an ill-kinded or read-only-field write. *)

val check : t -> unit
(** Structural well-formedness of a whole policy.
    @raise Invalid_argument with a description of the first offence. *)

(** {1 Constructors} *)

val id : t
(** [Filter True]: pass the packet through unchanged. *)

val drop : t
(** [Filter False]: the empty output set. *)

val filter : pred -> t
val test : field -> value -> pred
val conj : pred list -> pred
val disj : pred list -> pred
val neg : pred -> pred

val in_port : int -> pred
val eth_src_is : Netpkt.Mac_addr.t -> pred
val eth_dst_is : Netpkt.Mac_addr.t -> pred
val eth_type_is : int -> pred
val vlan_vid_is : int -> pred
val ip_proto_is : int -> pred
val ip_src_is : Netpkt.Ipv4_addr.t -> pred
val ip_dst_is : Netpkt.Ipv4_addr.t -> pred
val ip_tos_is : int -> pred
val l4_src_is : int -> pred
val l4_dst_is : int -> pred

val fwd : int -> t
(** Forward out of a physical port. *)

val flood : t
val to_controller : ?bytes:int -> unit -> t
val discard : t

val set_eth_src : Netpkt.Mac_addr.t -> t
val set_eth_dst : Netpkt.Mac_addr.t -> t
val set_ip_src : Netpkt.Ipv4_addr.t -> t
val set_ip_dst : Netpkt.Ipv4_addr.t -> t
val set_ip_tos : int -> t
val set_l4_src : int -> t
val set_l4_dst : int -> t

val union : t -> t -> t
val seq : t -> t -> t
val orelse : t -> t -> t
val unions : t list -> t
(** [unions []] is [drop]. *)

val seqs : t list -> t
(** [seqs []] is [id]. *)

val orelses : t list -> t
(** Right-associated fallback chain; [orelses []] is [drop]. *)

val police : meter_id:int -> rate_kbps:int -> burst_kb:int -> t
val balance : (field * value) list list -> t
