open Syntax

type key = Syntax.field * Syntax.value

let key_to_string (f, v) =
  Format.asprintf "%s=%a" (field_name f) pp_value v

let compare_mods a b =
  let rec go = function
    | [], [] -> 0
    | [], _ -> -1
    | _, [] -> 1
    | x :: xs, y :: ys ->
        let c = compare_key x y in
        if c <> 0 then c else go (xs, ys)
  in
  go (a, b)

let compare_buckets a b =
  let rec go = function
    | [], [] -> 0
    | [], _ -> -1
    | _, [] -> 1
    | x :: xs, y :: ys ->
        let c = compare_mods x y in
        if c <> 0 then c else go (xs, ys)
  in
  go (a, b)

let compare_police (a : police) (b : police) =
  let c = Int.compare a.meter_id b.meter_id in
  if c <> 0 then c
  else
    let c = Int.compare a.rate_kbps b.rate_kbps in
    if c <> 0 then c else Int.compare a.burst_kb b.burst_kb

module Act = struct
  type t = {
    mods : (Syntax.field * Syntax.value) list;
    police : Syntax.police option;
    balance : (Syntax.field * Syntax.value) list list option;
  }

  (* Last write per field wins, result sorted by field rank. *)
  let normalize_mods mods =
    let tbl =
      List.fold_left
        (fun acc (f, v) ->
          (f, v) :: List.filter (fun (f', _) -> compare_field f f' <> 0) acc)
        [] mods
    in
    List.sort compare_key tbl

  let find_mod mods f =
    List.find_map
      (fun (f', v) -> if compare_field f f' = 0 then Some v else None)
      mods

  let make ?police ?balance mods =
    (* No discard-erases-rewrites normalisation here: a later composition
       can overwrite [Loc] and resurrect the packet, at which point the
       "unobservable" rewrites are observable after all.  Discard is
       quotiented away only at observation time ([is_plain_disc],
       {!strip_disc}), where the location really is final. *)
    let mods = normalize_mods mods in
    let balance = Option.map (List.map normalize_mods) balance in
    { mods; police; balance }

  let id = { mods = []; police = None; balance = None }
  let is_id a = a.mods = [] && a.police = None && a.balance = None

  (* Rewrites don't matter: with the location finally [Disc] and no
     bucket choice to override it, nothing is emitted, so only a meter
     side effect could distinguish the action from doing nothing. *)
  let is_plain_disc a =
    a.police = None && a.balance = None
    &&
    match find_mod a.mods Loc with Some (At Disc) -> true | _ -> false

  let loc a =
    match find_mod a.mods Loc with Some (At l) -> Some l | _ -> None

  let compare a b =
    let c = compare_mods a.mods b.mods in
    if c <> 0 then c
    else
      let c = Option.compare compare_police a.police b.police in
      if c <> 0 then c
      else Option.compare compare_buckets a.balance b.balance

  let equal a b = compare a b = 0

  let pp ppf a =
    if is_id a then Format.pp_print_string ppf "id"
    else begin
      let sep = ref false in
      let item f =
        if !sep then Format.pp_print_string ppf "; ";
        sep := true;
        f ()
      in
      List.iter
        (fun (f, v) ->
          item (fun () ->
              Format.fprintf ppf "%s:=%a" (field_name f) pp_value v))
        a.mods;
      Option.iter
        (fun p ->
          item (fun () ->
              Format.fprintf ppf "police(meter:%d %dkbps burst:%dkb)"
                p.meter_id p.rate_kbps p.burst_kb))
        a.police;
      Option.iter
        (fun buckets ->
          item (fun () ->
              Format.fprintf ppf "balance{%a}"
                (Format.pp_print_list
                   ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " | ")
                   (fun ppf mods ->
                     if mods = [] then Format.pp_print_string ppf "id"
                     else pp_mods ppf mods))
                buckets))
        a.balance
    end

  let to_string a = Format.asprintf "%a" pp a

  (* [compose a b] is "do [a], then [b]".  The caller guarantees
     [a.balance = None] (tests and further policy after a balance are
     rejected in [seq_act]). *)
  let compose a b =
    assert (a.balance = None);
    let police =
      match (a.police, b.police) with
      | Some _, Some _ ->
          invalid_arg "Policy.Fdd: two meters in sequence on one path"
      | Some p, None | None, Some p -> Some p
      | None, None -> None
    in
    make ?police ?balance:b.balance (a.mods @ b.mods)
end

type t = { uid : int; node : node }
and node = Leaf of Act.t list | Branch of key * t * t

let equal a b = a.uid = b.uid

(* Hash-consing.  Keys are rendered to strings: address types are abstract,
   so structural-hash stability is not guaranteed, while their printed forms
   are injective and cheap at this scale. *)
let next_uid = ref 0
let leaf_tbl : (string, t) Hashtbl.t = Hashtbl.create 512
let branch_tbl : (string * int * int, t) Hashtbl.t = Hashtbl.create 512

let intern tbl k node =
  match Hashtbl.find_opt tbl k with
  | Some t -> t
  | None ->
      let t = { uid = !next_uid; node } in
      incr next_uid;
      Hashtbl.add tbl k t;
      t

let leaf acts =
  (* Only the order/duplicate quotient here — notably discard actions are
     NOT dropped next to others: a later [seq] can still test or
     overwrite a discarded state's fields, so that quotient is deferred
     to {!strip_disc} where the actions really are final. *)
  let acts = List.sort_uniq Act.compare acts in
  let k = String.concat "||" (List.map Act.to_string acts) in
  intern leaf_tbl k (Leaf acts)

let drop = leaf []
let id = leaf [ Act.id ]

(* Restrict [d] to packets satisfying [key]: prunes re-tests of the same
   field with a different value (which the key makes statically false).
   Sound because keys strictly increase along paths, so any same-field
   test below [key] carries a different value. *)
let rec assume ((f, _) as key) d =
  match d.node with
  | Leaf _ -> d
  | Branch ((f', _), _, lo) ->
      if compare_field f f' = 0 then assume key lo else d

(* The reductions giving a unique normal form for a field with more than
   two candidate values (a chain of [(f, v1)], [(f, v2)], ... tests down
   the [lo] edges, like a [case] with a default arm): a test is redundant
   exactly when its [hi] equals what a packet satisfying the test would
   reach by falling through the rest of its field's chain — [assume key
   lo].  For a [lo] not re-testing the field this degenerates to the
   familiar BDD [hi == lo] collapse.  No context-sensitive rewrite beyond
   this (such as eliminating a modification [f := v] under the test
   [(f, v)]) is applied: a rewrite that fires only where a test node
   happens to sit above a leaf makes the normal form depend on
   construction order, breaking the structural algebraic laws.  The
   redundant write is semantically harmless — rewriting a field to the
   value it already holds changes no packet. *)
let branch key hi lo =
  if hi == assume key lo then lo
  else intern branch_tbl (key_to_string key, hi.uid, lo.uid) (Branch (key, hi, lo))

let atom key = branch key id drop
let natom key = branch key drop id

(* Generic ordered merge: pairs the leaves reached by the same packet in
   both diagrams and combines them with [op]. *)
let merge ~name op =
  let tbl : (int * int, t) Hashtbl.t = Hashtbl.create 512 in
  ignore name;
  let rec go d1 d2 =
    let k = (d1.uid, d2.uid) in
    match Hashtbl.find_opt tbl k with
    | Some r -> r
    | None ->
        let r =
          match (d1.node, d2.node) with
          | Leaf a, Leaf b -> leaf (op a b)
          | Leaf _, Branch (key, hi, lo) ->
              branch key (go d1 hi) (go d1 lo)
          | Branch (key, hi, lo), Leaf _ ->
              branch key (go hi d2) (go lo d2)
          | Branch (k1, h1, l1), Branch (k2, h2, l2) ->
              let c = compare_key k1 k2 in
              if c = 0 then branch k1 (go h1 h2) (go l1 l2)
              else if c < 0 then branch k1 (go h1 (assume k1 d2)) (go l1 d2)
              else branch k2 (go (assume k2 d1) h2) (go d1 l2)
        in
        Hashtbl.add tbl k r;
        r
  in
  go

let sum = merge ~name:"sum" (fun a b -> a @ b)

let as_guard name a k =
  match a with
  | [] -> []
  | [ x ] when Act.is_id x -> k ()
  | _ -> invalid_arg ("Policy.Fdd: " ^ name ^ " guard is not a predicate")

let prod = merge ~name:"prod" (fun a b -> as_guard "prod" a (fun () -> b))
let ors = merge ~name:"ors" (fun a b -> if a = [] then b else a)

let negate_tbl : (int, t) Hashtbl.t = Hashtbl.create 128

let rec negate d =
  match Hashtbl.find_opt negate_tbl d.uid with
  | Some r -> r
  | None ->
      let r =
        match d.node with
        | Leaf [] -> id
        | Leaf [ a ] when Act.is_id a -> drop
        | Leaf _ -> invalid_arg "Policy.Fdd: negation of a non-predicate"
        | Branch (key, hi, lo) -> branch key (negate hi) (negate lo)
      in
      Hashtbl.add negate_tbl d.uid r;
      r

(* [cond key hi lo]: branch on [key] without assuming [hi]/[lo] respect the
   key order — the ordered merges in [prod]/[sum] restore the invariant. *)
let cond key hi lo = sum (prod (atom key) hi) (prod (natom key) lo)

let seq_tbl : (int * int, t) Hashtbl.t = Hashtbl.create 512

let rec seq d1 d2 =
  let k = (d1.uid, d2.uid) in
  match Hashtbl.find_opt seq_tbl k with
  | Some r -> r
  | None ->
      let r =
        match d1.node with
        | Leaf acts ->
            List.fold_left (fun acc a -> sum acc (seq_act a d2)) drop acts
        | Branch (key, hi, lo) -> cond key (seq hi d2) (seq lo d2)
      in
      Hashtbl.add seq_tbl k r;
      r

and seq_act (a : Act.t) d2 =
  match a.balance with
  | Some _ -> (
      (* After a hash-based bucket choice the residual policy must be the
         identity (or drop): the compiled select group is terminal. *)
      match d2.node with
      | Leaf [] -> drop
      | Leaf [ x ] when Act.is_id x -> leaf [ a ]
      | _ -> invalid_arg "Policy.Fdd: tests or writes after balance")
  | None -> (
      match d2.node with
      | Leaf acts2 -> leaf (List.map (Act.compose a) acts2)
      | Branch (((f, v) as key), hi, lo) -> (
          match Act.find_mod a.mods f with
          | Some v' ->
              if equal_value v' v then seq_act a hi else seq_act a lo
          | None -> cond key (seq_act a hi) (seq_act a lo)))

let of_pred p =
  let rec go = function
    | True -> id
    | False -> drop
    | Test (f, v) -> atom (f, v)
    | And (a, b) -> prod (go a) (go b)
    | Or (a, b) -> sum (go a) (go b)
    | Not a -> negate (go a)
  in
  go p

let of_policy pol =
  Syntax.check pol;
  let rec go = function
    | Filter p -> of_pred p
    | Mod (f, v) -> leaf [ Act.make [ (f, v) ] ]
    | Union (a, b) -> sum (go a) (go b)
    | Seq (a, b) -> seq (go a) (go b)
    | Orelse (a, b) -> ors (go a) (go b)
    | Police p -> leaf [ Act.make ~police:p [] ]
    | Balance buckets -> leaf [ Act.make ~balance:buckets [] ]
  in
  go pol

let eval env d =
  let rec go d =
    match d.node with
    | Leaf acts -> acts
    | Branch ((f, v), hi, lo) -> (
        match env f with
        | Some v' when equal_value v v' -> go hi
        | _ -> go lo)
  in
  go d

let strip_disc d =
  let memo = Hashtbl.create 64 in
  let rec go d =
    match Hashtbl.find_opt memo d.uid with
    | Some r -> r
    | None ->
        let r =
          match d.node with
          | Leaf acts ->
              leaf (List.filter (fun a -> not (Act.is_plain_disc a)) acts)
          | Branch (key, hi, lo) -> branch key (go hi) (go lo)
        in
        Hashtbl.add memo d.uid r;
        r
  in
  go d

let size d =
  let seen = Hashtbl.create 64 in
  let rec go d =
    if not (Hashtbl.mem seen d.uid) then begin
      Hashtbl.add seen d.uid ();
      match d.node with
      | Leaf _ -> ()
      | Branch (_, hi, lo) ->
          go hi;
          go lo
    end
  in
  go d;
  Hashtbl.length seen

let leaves d =
  let seen = Hashtbl.create 64 in
  let out = ref [] in
  let rec go d =
    if not (Hashtbl.mem seen d.uid) then begin
      Hashtbl.add seen d.uid ();
      match d.node with
      | Leaf acts -> out := acts :: !out
      | Branch (_, hi, lo) ->
          go hi;
          go lo
    end
  in
  go d;
  List.rev !out

let rec pp ppf d =
  match d.node with
  | Leaf [] -> Format.pp_print_string ppf "drop"
  | Leaf acts ->
      Format.fprintf ppf "{%a}"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " , ")
           Act.pp)
        acts
  | Branch (key, hi, lo) ->
      Format.fprintf ppf "(%s ? %a : %a)" (key_to_string key) pp hi pp lo

let to_string d = Format.asprintf "%a" pp d
