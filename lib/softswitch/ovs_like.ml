open Netpkt
open Openflow

type config = {
  emc_enabled : bool;
  emc_capacity : int;
  megaflow_capacity : int;
}

let default_config =
  { emc_enabled = true; emc_capacity = 8192; megaflow_capacity = 65536 }

(* Which fields the installed rules consult, at field granularity (IP
   prefixes keep their longest installed length). *)
type mask = {
  m_in_port : bool;
  m_eth_dst : bool;
  m_eth_src : bool;
  m_eth_type : bool;
  m_vlan : bool;
  m_vlan_pcp : bool;
  m_ip_src_len : int; (* 0 = not consulted *)
  m_ip_dst_len : int;
  m_ip_proto : bool;
  m_ip_tos : bool;
  m_l4_src : bool;
  m_l4_dst : bool;
}

let empty_mask =
  {
    m_in_port = false;
    m_eth_dst = false;
    m_eth_src = false;
    m_eth_type = false;
    m_vlan = false;
    m_vlan_pcp = false;
    m_ip_src_len = 0;
    m_ip_dst_len = 0;
    m_ip_proto = false;
    m_ip_tos = false;
    m_l4_src = false;
    m_l4_dst = false;
  }

let mask_of_pipeline pipeline =
  let mask = ref empty_mask in
  let note (m : Of_match.t) =
    let cur = !mask in
    mask :=
      {
        m_in_port = cur.m_in_port || Option.is_some m.Of_match.in_port;
        m_eth_dst = cur.m_eth_dst || Option.is_some m.Of_match.eth_dst;
        m_eth_src = cur.m_eth_src || Option.is_some m.Of_match.eth_src;
        m_eth_type = cur.m_eth_type || Option.is_some m.Of_match.eth_type;
        m_vlan = cur.m_vlan || Option.is_some m.Of_match.vlan;
        m_vlan_pcp = cur.m_vlan_pcp || Option.is_some m.Of_match.vlan_pcp;
        m_ip_src_len =
          (match m.Of_match.ip_src with
          | Some p -> Stdlib.max cur.m_ip_src_len (Ipv4_addr.Prefix.length p)
          | None -> cur.m_ip_src_len);
        m_ip_dst_len =
          (match m.Of_match.ip_dst with
          | Some p -> Stdlib.max cur.m_ip_dst_len (Ipv4_addr.Prefix.length p)
          | None -> cur.m_ip_dst_len);
        m_ip_proto = cur.m_ip_proto || Option.is_some m.Of_match.ip_proto;
        m_ip_tos = cur.m_ip_tos || Option.is_some m.Of_match.ip_tos;
        m_l4_src = cur.m_l4_src || Option.is_some m.Of_match.l4_src;
        m_l4_dst = cur.m_l4_dst || Option.is_some m.Of_match.l4_dst;
      }
  in
  for i = 0 to Pipeline.num_tables pipeline - 1 do
    List.iter
      (fun e -> note e.Flow_entry.match_)
      (Flow_table.entries (Pipeline.table pipeline i))
  done;
  !mask

let project mask ~in_port (f : Packet.Fields.t) =
  let ip_masked len = function
    | Some ip when len > 0 ->
        Some (Ipv4_addr.Prefix.base (Ipv4_addr.Prefix.make ip len))
    | Some _ | None -> None
  in
  ( (if mask.m_in_port then in_port else -1),
    {
      Packet.Fields.eth_dst = (if mask.m_eth_dst then f.Packet.Fields.eth_dst else Mac_addr.zero);
      eth_src = (if mask.m_eth_src then f.Packet.Fields.eth_src else Mac_addr.zero);
      eth_type = (if mask.m_eth_type then f.Packet.Fields.eth_type else 0);
      vlan_vid = (if mask.m_vlan then f.Packet.Fields.vlan_vid else None);
      vlan_pcp = (if mask.m_vlan_pcp then f.Packet.Fields.vlan_pcp else None);
      ip_src = ip_masked mask.m_ip_src_len f.Packet.Fields.ip_src;
      ip_dst = ip_masked mask.m_ip_dst_len f.Packet.Fields.ip_dst;
      ip_proto = (if mask.m_ip_proto then f.Packet.Fields.ip_proto else None);
      ip_tos = (if mask.m_ip_tos then f.Packet.Fields.ip_tos else None);
      l4_src = (if mask.m_l4_src then f.Packet.Fields.l4_src else None);
      l4_dst = (if mask.m_l4_dst then f.Packet.Fields.l4_dst else None);
    } )

(* A cached classification: the chain of entries the slow path matched,
   per table, to be replayed without lookups. *)
type cached = { by_table : (int * Flow_entry.t) list }

let replay pipeline cached ~now_ns ~in_port pkt =
  let lookup table_id ~in_port:_ _fields = List.assoc_opt table_id cached.by_table in
  Pipeline.execute_with pipeline ~lookup ~now_ns ~in_port pkt

let create ?(config = default_config) pipeline =
  let emc : (int * Packet.Fields.t, cached) Hashtbl.t = Hashtbl.create 1024 in
  let megaflow : (int * Packet.Fields.t, cached) Hashtbl.t = Hashtbl.create 1024 in
  let mask = ref (mask_of_pipeline pipeline) in
  let seen_version = ref (Pipeline.version pipeline) in
  let emc_hits = ref 0 and megaflow_hits = ref 0 and upcalls = ref 0 in
  let invalidations = ref 0 and packets = ref 0 in
  let last_tier = ref "upcall" in
  let check_version () =
    let v = Pipeline.version pipeline in
    if v <> !seen_version then begin
      seen_version := v;
      Hashtbl.reset emc;
      Hashtbl.reset megaflow;
      mask := mask_of_pipeline pipeline;
      incr invalidations
    end
  in
  let cache_insert table key cached capacity =
    if Hashtbl.length table >= capacity then
      (* Random-ish eviction: drop an arbitrary entry (OVS's EMC uses
         hash-slot replacement; arbitrariness is the behaviour that
         matters). *)
      (match Hashtbl.fold (fun k _ _ -> Some k) table None with
      | Some victim -> Hashtbl.remove table victim
      | None -> ());
    Hashtbl.replace table key cached
  in
  let slow_path ~now_ns ~in_port pkt fields =
    incr upcalls;
    let scanned = ref 0 in
    let tables_visited = ref 0 in
    let matched_tables = ref [] in
    let lookup table_id ~in_port fields =
      incr tables_visited;
      let entry, n =
        Flow_table.lookup_scan (Pipeline.table pipeline table_id) ~in_port fields
      in
      scanned := !scanned + n;
      (match entry with
      | Some e -> matched_tables := (table_id, e) :: !matched_tables
      | None -> ());
      entry
    in
    let result = Pipeline.execute_with pipeline ~lookup ~now_ns ~in_port pkt in
    let cycles =
      (!tables_visited * Dataplane.Cost.table_base)
      + (!scanned * Dataplane.Cost.linear_per_entry)
    in
    (* Populate caches only for successful classifications; misses go to
       the controller and must keep doing so. *)
    if not result.Pipeline.table_miss then begin
      let cached = { by_table = List.rev !matched_tables } in
      if config.emc_enabled then
        cache_insert emc (in_port, fields) cached config.emc_capacity;
      let mkey = project !mask ~in_port fields in
      cache_insert megaflow mkey cached config.megaflow_capacity
    end;
    (result, cycles)
  in
  let process ~now_ns ~in_port pkt =
    let m = Alloc_probe.mark () in
    let finish out =
      Alloc_probe.record "lookup.ovs" m;
      out
    in
    check_version ();
    incr packets;
    let fields = Packet.Fields.of_packet pkt in
    let base = Dataplane.Cost.parse in
    let emc_key = (in_port, fields) in
    let from_emc =
      if config.emc_enabled then Hashtbl.find_opt emc emc_key else None
    in
    match from_emc with
    | Some cached ->
        incr emc_hits;
        last_tier := "emc";
        let result = replay pipeline cached ~now_ns ~in_port pkt in
        finish
          ( result,
            base + Dataplane.Cost.emc_probe + Dataplane.Cost.emc_hit_extra
            + Dataplane.cycles_of_result result )
    | None -> (
        let emc_miss_cost = if config.emc_enabled then Dataplane.Cost.emc_probe else 0 in
        let mkey = project !mask ~in_port fields in
        match Hashtbl.find_opt megaflow mkey with
        | Some cached ->
            incr megaflow_hits;
            last_tier := "megaflow";
            if config.emc_enabled then
              cache_insert emc emc_key cached config.emc_capacity;
            let result = replay pipeline cached ~now_ns ~in_port pkt in
            finish
              ( result,
                base + emc_miss_cost + Dataplane.Cost.megaflow_probe
                + Dataplane.cycles_of_result result )
        | None ->
            last_tier := "upcall";
            let result, slow_cycles = slow_path ~now_ns ~in_port pkt fields in
            finish
              ( result,
                base + emc_miss_cost + Dataplane.Cost.megaflow_probe + slow_cycles
                + Dataplane.cycles_of_result result ))
  in
  let stats () =
    [
      ("packets", !packets);
      ("emc_hits", !emc_hits);
      ("megaflow_hits", !megaflow_hits);
      ("upcalls", !upcalls);
      ("invalidations", !invalidations);
    ]
  in
  let name = if config.emc_enabled then "ovs" else "ovs-noemc" in
  { Dataplane.name; process; stats; tier = (fun () -> !last_tier) }
