(** The catalogue of dataplane implementations, by name — one place the
    differential checker, the benchmarks and the CLI all draw from, so a
    new backend is automatically fuzzed against the oracle the moment it
    is listed here.

    ["ovs-tiny-cache"] is the OVS-like dataplane with deliberately tiny
    EMC/megaflow capacities: functionally identical to ["ovs"], but every
    few packets evict cache entries, which keeps the eviction and
    repopulation paths honest under differential testing. *)

val all : (string * (Openflow.Pipeline.t -> Dataplane.t)) list
(** Constructor per backend.  Each call builds a fresh dataplane over the
    given (caller-owned) pipeline. *)

val names : string list

val find : string -> (Openflow.Pipeline.t -> Dataplane.t) option

val tiny_cache_config : Ovs_like.config
(** 4-entry EMC, 8-entry megaflow table. *)
