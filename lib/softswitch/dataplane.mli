(** The dataplane abstraction: how a software switch classifies and
    processes packets, and what each packet costs in CPU cycles.

    The cycle figures below are the cost model every implementation draws
    from.  They are calibrated to the relative magnitudes reported for
    DPDK-era software switches (OVS-DPDK and ESwitch, the dataplane the
    HARMLESS demo used): what matters for the reproduction is the
    {e ordering and ratios} — specialized ≪ cached ≪ linear — not the
    absolute numbers of any particular Xeon. *)

module Cost : sig
  val parse : int
  (** Header parsing / fields extraction, per packet. *)

  val linear_per_entry : int
  (** Scanning one flow entry in a linear table walk. *)

  val table_base : int
  (** Fixed cost of consulting one flow table on the slow path. *)

  val emc_probe : int
  (** Probing the exact-match (microflow) cache. *)

  val emc_hit_extra : int
  (** Extra cost on an EMC hit (key compare + action fetch). *)

  val megaflow_probe : int
  (** One masked-table probe (tuple-space search tries masks in turn). *)

  val eswitch_template : int
  (** One specialized-template probe in the ESwitch-like dataplane. *)

  val per_action : int
  (** Executing one action (rewrite or output). *)
end

(** A dataplane implementation: classification + execution + cycle
    accounting.  Instances are created from a shared {!Openflow.Pipeline.t}
    so the control plane (flow-mods) is common to all of them. *)
type t = {
  name : string;
  process :
    now_ns:int -> in_port:int -> Netpkt.Packet.t -> Openflow.Pipeline.result * int;
      (** Returns the forwarding decision and its cost in cycles. *)
  stats : unit -> (string * int) list;
      (** Implementation-specific counters (cache hits, recompiles, ...). *)
  tier : unit -> string;
      (** Which classification tier served the most recent packet
          (["emc"] / ["megaflow"] / ["upcall"] for the OVS-like
          dataplane; a constant for single-tier implementations).
          Telemetry reads this right after [process] to annotate the
          packet's pipeline hop. *)
}

val cycles_of_result : Openflow.Pipeline.result -> int
(** Action-execution cycles implied by a result (per matched entry and
    emitted output). *)
