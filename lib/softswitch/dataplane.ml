module Cost = struct
  let parse = 20
  let linear_per_entry = 12
  let table_base = 40
  let emc_probe = 15
  let emc_hit_extra = 95
  let megaflow_probe = 80
  let eswitch_template = 28
  let per_action = 10
end

type t = {
  name : string;
  process :
    now_ns:int -> in_port:int -> Netpkt.Packet.t -> Openflow.Pipeline.result * int;
  stats : unit -> (string * int) list;
  tier : unit -> string;
      (* which classification tier served the most recent packet —
         ("emc" / "megaflow" / "upcall" for the OVS-like dataplane,
         a constant for single-tier ones); feeds per-hop traces. *)
}

let cycles_of_result (r : Openflow.Pipeline.result) =
  Cost.per_action * (List.length r.Openflow.Pipeline.matched
                     + List.length r.Openflow.Pipeline.outputs)
