open Simnet
open Openflow

(* Modelled per-stage costs (CPU cycles) reported by this switch's Trace
   hops for work the PMD batch model does not already cover; the
   "pipeline" stage reports the dataplane's measured cycles instead.
   The full cycle-model table lives in Telemetry.Trace's interface. *)
let tx_cycles = 20 (* egress queueing + descriptor write-back *)
let punt_cycles = 150 (* encapsulate as Packet_in, hand to channel *)
let standalone_cycles = 120 (* local learning-switch slow path *)

type dataplane_kind =
  | Linear
  | Ovs of Ovs_like.config
  | Eswitch
  | Hardware

type miss_behavior = Drop_on_miss | Send_to_controller
type connection_mode = Fail_secure | Fail_standalone

type t = {
  node : Node.t;
  engine : Engine.t;
  name : string;
  pipeline : Pipeline.t;
  dataplane : Dataplane.t;
  pmd : Pmd.t;
  datapath_id : int64;
  miss : miss_behavior;
  mutable controller : Of_message.t -> unit;
  mutable to_controller_observers : (Of_message.t -> unit) list;
  mutable packet_ins : int;
  mutable flow_mods : int;
  mutable since_expiry : int;
  mutable sample_rate : int option;
  mutable sample_countdown : int;
  mutable flowrec : Flowrec.t option;
  mutable connected : bool;
  mutable alive : bool;
  mutable connection_mode : connection_mode;
  (* Local L2 learning used only while disconnected in Fail_standalone. *)
  local_macs : (Netpkt.Mac_addr.t, int) Hashtbl.t;
  mutable standalone_forwards : int;
  mutable crashes : int;
}

let node t = t.node
let name t = t.name
let pipeline t = t.pipeline
let datapath_id t = t.datapath_id
let dataplane_name t = t.dataplane.Dataplane.name
let set_controller t f =
  t.controller <-
    (fun msg ->
      List.iter (fun observe -> observe msg) t.to_controller_observers;
      f msg)

let observe_messages_to_controller t f =
  t.to_controller_observers <- t.to_controller_observers @ [ f ]
let pmd t = t.pmd
let connected t = t.connected
let alive t = t.alive
let connection_mode t = t.connection_mode
let set_connection_mode t mode = t.connection_mode <- mode
let standalone_forwards t = t.standalone_forwards

let set_connected t up =
  if t.connected <> up then begin
    t.connected <- up;
    (* Reconnected: the controller owns forwarding again, so forget what
       standalone learning picked up while it was away. *)
    if up then Hashtbl.reset t.local_macs
  end

let crash t =
  if t.alive then begin
    t.alive <- false;
    t.connected <- false;
    t.crashes <- t.crashes + 1;
    Hashtbl.reset t.local_macs;
    (* Soft state dies with the process: every flow table empties. *)
    for i = 0 to Pipeline.num_tables t.pipeline - 1 do
      Flow_table.clear (Pipeline.table t.pipeline i)
    done
  end

let restart t = t.alive <- true
let crashes t = t.crashes

let hardware_dataplane pipeline =
  (* ASIC: TCAM lookup, constant tiny cost. *)
  let packets = ref 0 in
  let process ~now_ns ~in_port pkt =
    incr packets;
    (Pipeline.execute pipeline ~now_ns ~in_port pkt, 2)
  in
  {
    Dataplane.name = "hardware";
    process;
    stats = (fun () -> [ ("packets", !packets) ]);
    tier = (fun () -> "tcam");
  }

let set_flowrec t fr = t.flowrec <- fr
let flowrec t = t.flowrec

let set_sampling t ~rate =
  (match rate with
  | Some n when n <= 0 -> invalid_arg "Soft_switch.set_sampling: rate <= 0"
  | Some _ | None -> ());
  t.sample_rate <- rate;
  t.sample_countdown <- Option.value rate ~default:0

let expire_flows t =
  let now_ns = Sim_time.to_ns (Engine.now t.engine) in
  for i = 0 to Pipeline.num_tables t.pipeline - 1 do
    ignore (Flow_table.expire (Pipeline.table t.pipeline i) ~now_ns)
  done

let trace_tx t ~port ~detail pkt =
  if Telemetry.Trace.enabled () then
    Telemetry.Trace.emit
      ~ts_ns:(Sim_time.to_ns (Engine.now t.engine))
      ~component:t.name ~layer:Telemetry.Trace.Switch ~stage:"tx" ~port
      ~cycles:tx_cycles ~detail pkt

let resolve_outputs t ~in_port outputs =
  let ports = Node.port_count t.node in
  List.iter
    (fun output ->
      match output with
      | Pipeline.Port (p, pkt) ->
          if p >= 0 && p < ports && p <> in_port then begin
            trace_tx t ~port:p ~detail:"" pkt;
            Node.transmit t.node ~port:p pkt
          end
          else if p = in_port then () (* OF requires In_port for hairpin *)
          else Stats.Counter.incr (Node.counters t.node) "drop_bad_out_port"
      | Pipeline.In_port pkt ->
          trace_tx t ~port:in_port ~detail:"in_port (hairpin)" pkt;
          Node.transmit t.node ~port:in_port pkt
      | Pipeline.Flood pkt ->
          for p = 0 to ports - 1 do
            if p <> in_port then begin
              trace_tx t ~port:p ~detail:"flood" pkt;
              Node.transmit t.node ~port:p pkt
            end
          done
      | Pipeline.All_ports pkt ->
          for p = 0 to ports - 1 do
            trace_tx t ~port:p ~detail:"all_ports" pkt;
            Node.transmit t.node ~port:p pkt
          done
      | Pipeline.Controller (_max_len, pkt) ->
          if not t.connected then
            Stats.Counter.incr (Node.counters t.node) "drop_disconnected_punt"
          else begin
            t.packet_ins <- t.packet_ins + 1;
            if Telemetry.Trace.enabled () then
              Telemetry.Trace.emit
                ~ts_ns:(Sim_time.to_ns (Engine.now t.engine))
                ~component:t.name ~layer:Telemetry.Trace.Switch ~stage:"punt"
                ~port:in_port ~cycles:punt_cycles ~detail:"output:controller"
                pkt;
            t.controller
              (Of_message.Packet_in
                 { in_port; reason = Of_message.Action_to_controller; packet = pkt })
          end)
    outputs

(* Connection lost in Fail_standalone: degrade to a plain learning
   switch so local traffic keeps flowing until the controller returns. *)
let standalone_forward t ~in_port pkt =
  t.standalone_forwards <- t.standalone_forwards + 1;
  Hashtbl.replace t.local_macs pkt.Netpkt.Packet.src in_port;
  if Telemetry.Trace.enabled () then
    Telemetry.Trace.emit
      ~ts_ns:(Sim_time.to_ns (Engine.now t.engine))
      ~component:t.name ~layer:Telemetry.Trace.Switch ~stage:"standalone"
      ~port:in_port ~cycles:standalone_cycles
      ~detail:"local L2 forwarding (controller unreachable)" pkt;
  let flood () =
    for p = 0 to Node.port_count t.node - 1 do
      if p <> in_port then Node.transmit t.node ~port:p pkt
    done
  in
  if Netpkt.Mac_addr.is_unicast pkt.Netpkt.Packet.dst then
    match Hashtbl.find_opt t.local_macs pkt.Netpkt.Packet.dst with
    | Some out_port when out_port <> in_port ->
        Node.transmit t.node ~port:out_port pkt
    | Some _ -> ()
    | None -> flood ()
  else flood ()

let handle_packet t ~in_port pkt =
  if not t.alive then
    Stats.Counter.incr (Node.counters t.node) "drop_crashed"
  else
  let now_ns = Sim_time.to_ns (Engine.now t.engine) in
  (* Sampled flow telemetry taps the receive path before the pipeline —
     the sFlow position.  [None] costs one field read. *)
  (match t.flowrec with
  | Some fr -> Flowrec.observe fr ~now_ns ~in_port pkt
  | None -> ());
  if Telemetry.Trace.enabled () then
    Telemetry.Trace.emit ~ts_ns:now_ns ~component:t.name
      ~layer:Telemetry.Trace.Switch ~stage:"rx" ~port:in_port
      ~cycles:(Pmd.config t.pmd).Pmd.per_packet_io_cycles pkt;
  let result, cycles = t.dataplane.Dataplane.process ~now_ns ~in_port pkt in
  if Telemetry.Trace.enabled () then
    Telemetry.Trace.emit ~ts_ns:now_ns ~component:t.name
      ~layer:Telemetry.Trace.Switch ~stage:"pipeline" ~port:in_port ~cycles
      ~detail:
        (Printf.sprintf "dataplane=%s tier=%s matched=%d%s"
           t.dataplane.Dataplane.name
           (t.dataplane.Dataplane.tier ())
           (List.length result.Pipeline.matched)
           (if result.Pipeline.table_miss then " table_miss" else ""))
      pkt;
  let complete () =
    (match t.sample_rate with
    | Some rate when t.connected ->
        t.sample_countdown <- t.sample_countdown - 1;
        if t.sample_countdown <= 0 then begin
          t.sample_countdown <- rate;
          t.packet_ins <- t.packet_ins + 1;
          t.controller
            (Of_message.Packet_in
               { in_port; reason = Of_message.Action_to_controller; packet = pkt })
        end
    | Some _ | None -> ());
    t.since_expiry <- t.since_expiry + 1;
    if t.since_expiry >= 1024 then begin
      t.since_expiry <- 0;
      expire_flows t
    end;
    if result.Pipeline.table_miss then begin
      match t.miss with
      | Drop_on_miss -> Stats.Counter.incr (Node.counters t.node) "drop_table_miss"
      | Send_to_controller when t.connected ->
          t.packet_ins <- t.packet_ins + 1;
          t.controller
            (Of_message.Packet_in
               { in_port; reason = Of_message.No_match; packet = pkt })
      | Send_to_controller -> (
          (* Connection interruption: the OpenFlow fail mode decides. *)
          match t.connection_mode with
          | Fail_secure ->
              Stats.Counter.incr (Node.counters t.node) "drop_fail_secure"
          | Fail_standalone -> standalone_forward t ~in_port pkt)
    end;
    resolve_outputs t ~in_port result.Pipeline.outputs
  in
  if not (Pmd.submit t.pmd ~cycles complete) then begin
    if Telemetry.Trace.enabled () then
      Telemetry.Trace.emit ~ts_ns:now_ns ~component:t.name
        ~layer:Telemetry.Trace.Switch ~stage:"drop" ~port:in_port ~cycles:0
        ~detail:"rx ring full" pkt;
    Stats.Counter.incr (Node.counters t.node) "drop_rx_ring"
  end

let apply_flow_mod t (fm : Of_message.flow_mod) =
  let now_ns = Sim_time.to_ns (Engine.now t.engine) in
  if fm.Of_message.table_id < 0 || fm.Of_message.table_id >= Pipeline.num_tables t.pipeline
  then t.controller (Of_message.Error "flow-mod: bad table id")
  else begin
    let table = Pipeline.table t.pipeline fm.Of_message.table_id in
    t.flow_mods <- t.flow_mods + 1;
    match fm.Of_message.command with
    | Of_message.Add -> (
        let entry =
          Flow_entry.make ~priority:fm.Of_message.priority
            ~cookie:fm.Of_message.cookie
            ?idle_timeout_s:fm.Of_message.idle_timeout_s
            ?hard_timeout_s:fm.Of_message.hard_timeout_s
            ~match_:fm.Of_message.match_ fm.Of_message.instructions
        in
        try Flow_table.add table ~now_ns entry
        with Flow_table.Table_full -> t.controller (Of_message.Error "flow-mod: table full"))
    | Of_message.Modify { strict } ->
        ignore
          (Flow_table.modify table ~strict fm.Of_message.match_
             ~priority:fm.Of_message.priority fm.Of_message.instructions)
    | Of_message.Delete { strict } ->
        ignore
          (Flow_table.delete table ~strict ?out_port:fm.Of_message.out_port
             fm.Of_message.match_ ~priority:fm.Of_message.priority)
  end

let apply_meter_mod t mm =
  let meters = Pipeline.meters t.pipeline in
  match mm with
  | Of_message.Add_meter { id; band } -> (
      try Meter_table.add meters ~id band
      with Invalid_argument msg -> t.controller (Of_message.Error msg))
  | Of_message.Modify_meter { id; band } -> (
      try Meter_table.modify meters ~id band
      with Not_found -> t.controller (Of_message.Error "meter-mod: unknown meter"))
  | Of_message.Delete_meter { id } -> Meter_table.remove meters ~id

let apply_group_mod t gm =
  let groups = Pipeline.groups t.pipeline in
  match gm with
  | Of_message.Add_group { id; gtype; buckets } -> (
      try Group_table.add groups ~id gtype buckets
      with Invalid_argument msg -> t.controller (Of_message.Error msg))
  | Of_message.Modify_group { id; gtype; buckets } -> (
      try Group_table.modify groups ~id gtype buckets
      with Not_found -> t.controller (Of_message.Error "group-mod: unknown group"))
  | Of_message.Delete_group { id } -> Group_table.remove groups ~id

let apply_packet_out t ~in_port actions pkt =
  (* Packet-outs execute an explicit action list: rewrites in order,
     outputs as they appear. *)
  let in_port = match in_port with Some p -> p | None -> -1 in
  let result =
    let outputs = ref [] in
    let pkt = ref pkt in
    List.iter
      (fun action ->
        match action with
        | Of_action.Output (Of_action.Physical p) ->
            outputs := Pipeline.Port (p, !pkt) :: !outputs
        | Of_action.Output Of_action.In_port ->
            outputs := Pipeline.In_port !pkt :: !outputs
        | Of_action.Output Of_action.Flood -> outputs := Pipeline.Flood !pkt :: !outputs
        | Of_action.Output Of_action.All -> outputs := Pipeline.All_ports !pkt :: !outputs
        | Of_action.Output (Of_action.Controller n) ->
            outputs := Pipeline.Controller (n, !pkt) :: !outputs
        | Of_action.Group _ | Of_action.Drop -> ()
        | rewrite -> pkt := Of_action.apply_rewrite rewrite !pkt)
      actions;
    { Pipeline.outputs = List.rev !outputs; table_miss = false; matched = [] }
  in
  resolve_outputs t ~in_port result.Pipeline.outputs

let flow_stats t table_filter =
  let stat_of table_id e =
    {
      Of_message.stat_table_id = table_id;
      stat_priority = e.Flow_entry.priority;
      stat_match = e.Flow_entry.match_;
      stat_packets = e.Flow_entry.packets;
      stat_bytes = e.Flow_entry.bytes;
    }
  in
  let tables =
    match table_filter with
    | Some id -> [ id ]
    | None -> List.init (Pipeline.num_tables t.pipeline) Fun.id
  in
  List.concat_map
    (fun id -> List.map (stat_of id) (Flow_table.entries (Pipeline.table t.pipeline id)))
    tables

let port_stats t =
  let counters = Node.counters t.node in
  List.init (Node.port_count t.node) (fun p ->
      {
        Of_message.port_no = p;
        rx_packets = Stats.Counter.get counters (Printf.sprintf "rx.%d" p);
        tx_packets = Stats.Counter.get counters (Printf.sprintf "tx.%d" p);
        rx_bytes = Stats.Counter.get counters (Printf.sprintf "rx_bytes.%d" p);
        tx_bytes = Stats.Counter.get counters (Printf.sprintf "tx_bytes.%d" p);
      })

let handle_message t msg =
  if not t.alive then () (* a crashed agent answers nothing *)
  else
  match msg with
  | Of_message.Hello -> t.controller Of_message.Hello
  | Of_message.Echo_request payload -> t.controller (Of_message.Echo_reply payload)
  | Of_message.Features_request ->
      t.controller
        (Of_message.Features_reply
           {
             datapath_id = t.datapath_id;
             num_ports = Node.port_count t.node;
             num_tables = Pipeline.num_tables t.pipeline;
           })
  | Of_message.Flow_mod fm -> apply_flow_mod t fm
  | Of_message.Group_mod gm -> apply_group_mod t gm
  | Of_message.Meter_mod mm -> apply_meter_mod t mm
  | Of_message.Packet_out { in_port; actions; packet } ->
      apply_packet_out t ~in_port actions packet
  | Of_message.Flow_stats_request { table_id } ->
      t.controller (Of_message.Flow_stats_reply (flow_stats t table_id))
  | Of_message.Port_stats_request ->
      t.controller (Of_message.Port_stats_reply (port_stats t))
  | Of_message.Barrier_request n -> t.controller (Of_message.Barrier_reply n)
  | Of_message.Echo_reply _ | Of_message.Features_reply _
  | Of_message.Packet_in _ | Of_message.Flow_stats_reply _
  | Of_message.Port_stats_reply _ | Of_message.Barrier_reply _
  | Of_message.Port_status _ | Of_message.Error _ -> ()

let stats t =
  t.dataplane.Dataplane.stats ()
  @ [
      ("pmd_processed", Pmd.processed t.pmd);
      ("pmd_dropped", Pmd.dropped t.pmd);
      ("packet_ins", t.packet_ins);
      ("flow_mods", t.flow_mods);
      ("standalone_forwards", t.standalone_forwards);
      ("crashes", t.crashes);
      ("connected", if t.connected then 1 else 0);
    ]

let publish_metrics ?registry ?(labels = []) t =
  let labels =
    ("switch", t.name) :: ("dataplane", t.dataplane.Dataplane.name) :: labels
  in
  Telemetry.Registry.publish_ints ?registry ~prefix:"softswitch" ~labels
    (stats t
    @ [
        ("flow_entries", Openflow.Pipeline.total_entries t.pipeline);
        ("pmd_busy_ns", Pmd.busy_ns t.pmd);
        ("rx_packets", Stats.Counter.get (Node.counters t.node) "rx");
        ("tx_packets", Stats.Counter.get (Node.counters t.node) "tx");
      ])

let process_direct t ~now_ns ~in_port pkt =
  (* Observe before the mark so sampled-branch allocations land on the
     "flowrec.sample" probe site, not on "switch.process". *)
  (match t.flowrec with
  | Some fr -> Flowrec.observe fr ~now_ns ~in_port pkt
  | None -> ());
  let m = Alloc_probe.mark () in
  let out = t.dataplane.Dataplane.process ~now_ns ~in_port pkt in
  Alloc_probe.record "switch.process" m;
  out

let next_dpid = ref 0L

let create engine ~name ~ports ?(dataplane = Eswitch) ?(pmd = Pmd.default_config)
    ?(num_tables = 4) ?max_flow_entries ?(miss = Send_to_controller) () =
  let pipeline =
    Pipeline.create ~num_tables ?max_entries_per_table:max_flow_entries ()
  in
  let node = Node.create engine ~name ~ports in
  let dp =
    match dataplane with
    | Linear -> Linear.create pipeline
    | Ovs config -> Ovs_like.create ~config pipeline
    | Eswitch -> Eswitch.create pipeline
    | Hardware -> hardware_dataplane pipeline
  in
  next_dpid := Int64.add !next_dpid 1L;
  let t =
    {
      node;
      engine;
      name;
      pipeline;
      dataplane = dp;
      pmd = Pmd.create engine ~config:pmd ();
      datapath_id = !next_dpid;
      miss;
      controller = (fun _ -> ());
      to_controller_observers = [];
      packet_ins = 0;
      flow_mods = 0;
      since_expiry = 0;
      sample_rate = None;
      sample_countdown = 0;
      flowrec = None;
      connected = true;
      alive = true;
      connection_mode = Fail_secure;
      local_macs = Hashtbl.create 64;
      standalone_forwards = 0;
      crashes = 0;
    }
  in
  set_controller t (fun _ -> ());
  Node.set_handler node (fun _node ~in_port pkt -> handle_packet t ~in_port pkt);
  (* Surface carrier changes to the controller as OFPT_PORT_STATUS. *)
  Node.on_attachment_change node (fun ~port ~up ->
      t.controller (Of_message.Port_status { port_no = port; up }));
  t
