open Netpkt

type record = {
  rc_key : Packet.Flow_key.t;
  rc_hash : int;
  rc_bytes : int;
  rc_ts_ns : int;
  rc_in_port : int;
}

type config = {
  rate : int;
  cm_epsilon : float;
  cm_delta : float;
  hll_p : int;
  topk : int;
  ring : int;
  seed : int;
}

let default_config =
  {
    rate = 16;
    cm_epsilon = 0.005;
    cm_delta = 0.01;
    hll_p = 14;
    topk = 32;
    ring = 256;
    seed = 42;
  }

type t = {
  cfg : config;
  cm : Telemetry.Sketch.Cm.t;
  hll : Telemetry.Sketch.Hll.t;
  topk : Telemetry.Sketch.Topk.t;
  ring_buf : record option array;
  mutable ring_next : int;
  mutable countdown : int;
  mutable seen : int;
  mutable sampled : int;
  mutable on_sample : (record -> unit) option;
}

let create ?(config = default_config) () =
  if config.rate < 1 then invalid_arg "Flowrec.create: rate must be >= 1";
  if config.ring < 0 then invalid_arg "Flowrec.create: negative ring size";
  {
    cfg = config;
    cm =
      Telemetry.Sketch.Cm.create ~seed:config.seed ~epsilon:config.cm_epsilon
        ~delta:config.cm_delta;
    hll = Telemetry.Sketch.Hll.create ~seed:config.seed ~p:config.hll_p;
    topk = Telemetry.Sketch.Topk.create ~k:config.topk;
    ring_buf = Array.make config.ring None;
    ring_next = 0;
    countdown = config.rate;
    seen = 0;
    sampled = 0;
    on_sample = None;
  }

let config t = t.cfg
let seen t = t.seen
let sampled t = t.sampled
let cm t = t.cm
let hll t = t.hll
let topk t = t.topk
let set_on_sample t f = t.on_sample <- Some f

let records t =
  let n = Array.length t.ring_buf in
  if n = 0 then []
  else
    let len = min t.ring_next n in
    List.init len (fun i ->
        match t.ring_buf.((t.ring_next - len + i) mod n) with
        | Some r -> r
        | None -> assert false)

(* The per-packet path.  The skip branch (all but every [rate]-th
   packet) is one decrement, a countdown test and a register-max HLL
   update — no allocation, pinned by test_flowrec.  The sampled branch
   materializes the flow key and feeds every sketch, bracketed by the
   "flowrec.sample" probe site so its cost shows up in the memory
   telemetry plane like any other stage. *)
let observe t ~now_ns ~in_port pkt =
  t.seen <- t.seen + 1;
  (match pkt.Packet.l3 with
  | Packet.Ip ip ->
      Telemetry.Sketch.Hll.add t.hll
        (Int32.to_int (Ipv4_addr.to_int32 ip.Ipv4.src))
  | Packet.Arp _ | Packet.Raw _ -> ());
  t.countdown <- t.countdown - 1;
  if t.countdown <= 0 then begin
    t.countdown <- t.cfg.rate;
    let m = Alloc_probe.mark () in
    let key = Packet.flow_key pkt in
    let h = Packet.Flow_key.hash ~seed:t.cfg.seed key in
    (* Scale by the sampling rate so sketch counts estimate the full
       stream (standard sFlow scaling); byte accounting matches the
       flow-table counters' [Packet.size]. *)
    let bytes = Packet.size pkt * t.cfg.rate in
    Telemetry.Sketch.Cm.update t.cm ~key:h bytes;
    Telemetry.Sketch.Topk.observe t.topk
      ~key:(Packet.Flow_key.to_string key)
      ~n:bytes;
    let r =
      {
        rc_key = key;
        rc_hash = h;
        rc_bytes = bytes;
        rc_ts_ns = now_ns;
        rc_in_port = in_port;
      }
    in
    let n = Array.length t.ring_buf in
    if n > 0 then begin
      t.ring_buf.(t.ring_next mod n) <- Some r;
      t.ring_next <- t.ring_next + 1
    end;
    t.sampled <- t.sampled + 1;
    Alloc_probe.record "flowrec.sample" m;
    match t.on_sample with Some f -> f r | None -> ()
  end
