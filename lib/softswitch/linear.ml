open Openflow

let create pipeline =
  let scanned_total = ref 0 in
  let packets = ref 0 in
  let process ~now_ns ~in_port pkt =
    let m = Alloc_probe.mark () in
    let scanned = ref 0 in
    let tables_visited = ref 0 in
    let lookup table_id ~in_port fields =
      incr tables_visited;
      let entry, n = Flow_table.lookup_scan (Pipeline.table pipeline table_id) ~in_port fields in
      scanned := !scanned + n;
      entry
    in
    let result = Pipeline.execute_with pipeline ~lookup ~now_ns ~in_port pkt in
    incr packets;
    scanned_total := !scanned_total + !scanned;
    let cycles =
      Dataplane.Cost.parse
      + (!tables_visited * Dataplane.Cost.table_base)
      + (!scanned * Dataplane.Cost.linear_per_entry)
      + Dataplane.cycles_of_result result
    in
    Alloc_probe.record "lookup.linear" m;
    (result, cycles)
  in
  let stats () =
    [ ("packets", !packets); ("entries_scanned", !scanned_total) ]
  in
  { Dataplane.name = "linear"; process; stats; tier = (fun () -> "linear") }
