let tiny_cache_config =
  {
    Ovs_like.emc_enabled = true;
    Ovs_like.emc_capacity = 4;
    Ovs_like.megaflow_capacity = 8;
  }

let all =
  [
    ("linear", Linear.create);
    ("ovs", fun p -> Ovs_like.create p);
    ("ovs-tiny-cache", fun p -> Ovs_like.create ~config:tiny_cache_config p);
    ("eswitch", Eswitch.create);
  ]

let names = List.map fst all

let find name = List.assoc_opt name all
