open Netpkt
open Openflow

(* A template: the set of fields a group of entries all test exactly. *)
type tsig = {
  t_in_port : bool;
  t_eth_dst : bool;
  t_eth_src : bool;
  t_eth_type : bool;
  t_vlan_vid : bool;
  t_vlan_pcp : bool;
  t_ip_src : bool;
  t_ip_dst : bool;
  t_ip_proto : bool;
  t_ip_tos : bool;
  t_l4_src : bool;
  t_l4_dst : bool;
}

(* The projected key for a template: absent components are normalized so
   equal projections hash equally. *)
type key = {
  k_in_port : int;
  k_eth_dst : Mac_addr.t;
  k_eth_src : Mac_addr.t;
  k_eth_type : int;
  k_vlan_vid : int;
  k_vlan_pcp : int;
  k_ip_src : int32;
  k_ip_dst : int32;
  k_ip_proto : int;
  k_ip_tos : int;
  k_l4_src : int;
  k_l4_dst : int;
}

let full_mac_mask m = Mac_addr.equal m.Of_match.mask Mac_addr.broadcast

(* Classify a match: Some (sig, key) if every test is an exact full-field
   test, None if it needs the residual scan path. *)
let exact_signature (m : Of_match.t) =
  let ok = ref true in
  let t_eth_dst, k_eth_dst =
    match m.Of_match.eth_dst with
    | None -> (false, Mac_addr.zero)
    | Some mt ->
        if full_mac_mask mt then (true, mt.Of_match.value)
        else begin ok := false; (false, Mac_addr.zero) end
  in
  let t_eth_src, k_eth_src =
    match m.Of_match.eth_src with
    | None -> (false, Mac_addr.zero)
    | Some mt ->
        if full_mac_mask mt then (true, mt.Of_match.value)
        else begin ok := false; (false, Mac_addr.zero) end
  in
  let t_vlan_vid, k_vlan_vid =
    match m.Of_match.vlan with
    | None -> (false, -1)
    | Some (Of_match.Vid v) -> (true, v)
    | Some (Of_match.Absent | Of_match.Present) ->
        ok := false;
        (false, -1)
  in
  let prefix_exact p =
    if Ipv4_addr.Prefix.length p = 32 then
      Some (Ipv4_addr.to_int32 (Ipv4_addr.Prefix.base p))
    else begin ok := false; None end
  in
  let t_ip_src, k_ip_src =
    match Option.map prefix_exact m.Of_match.ip_src with
    | None -> (false, 0l)
    | Some (Some ip) -> (true, ip)
    | Some None -> (false, 0l)
  in
  let t_ip_dst, k_ip_dst =
    match Option.map prefix_exact m.Of_match.ip_dst with
    | None -> (false, 0l)
    | Some (Some ip) -> (true, ip)
    | Some None -> (false, 0l)
  in
  let opt_int o = match o with None -> (false, -1) | Some v -> (true, v) in
  let t_in_port, k_in_port = opt_int m.Of_match.in_port in
  let t_eth_type, k_eth_type = opt_int m.Of_match.eth_type in
  let t_vlan_pcp, k_vlan_pcp = opt_int m.Of_match.vlan_pcp in
  let t_ip_proto, k_ip_proto = opt_int m.Of_match.ip_proto in
  let t_ip_tos, k_ip_tos = opt_int m.Of_match.ip_tos in
  let t_l4_src, k_l4_src = opt_int m.Of_match.l4_src in
  let t_l4_dst, k_l4_dst = opt_int m.Of_match.l4_dst in
  if not !ok then None
  else
    Some
      ( {
          t_in_port;
          t_eth_dst;
          t_eth_src;
          t_eth_type;
          t_vlan_vid;
          t_vlan_pcp;
          t_ip_src;
          t_ip_dst;
          t_ip_proto;
          t_ip_tos;
          t_l4_src;
          t_l4_dst;
        },
        {
          k_in_port;
          k_eth_dst;
          k_eth_src;
          k_eth_type;
          k_vlan_vid;
          k_vlan_pcp;
          k_ip_src;
          k_ip_dst;
          k_ip_proto;
          k_ip_tos;
          k_l4_src;
          k_l4_dst;
        } )

(* Project a packet's fields onto a template's tested set. *)
let project (sig_ : tsig) ~in_port (f : Packet.Fields.t) =
  let or_else default = function Some v -> v | None -> default in
  {
    k_in_port = (if sig_.t_in_port then in_port else -1);
    k_eth_dst = (if sig_.t_eth_dst then f.Packet.Fields.eth_dst else Mac_addr.zero);
    k_eth_src = (if sig_.t_eth_src then f.Packet.Fields.eth_src else Mac_addr.zero);
    k_eth_type = (if sig_.t_eth_type then f.Packet.Fields.eth_type else -1);
    k_vlan_vid = (if sig_.t_vlan_vid then or_else (-2) f.Packet.Fields.vlan_vid else -1);
    k_vlan_pcp = (if sig_.t_vlan_pcp then or_else (-2) f.Packet.Fields.vlan_pcp else -1);
    k_ip_src =
      (if sig_.t_ip_src then
         match f.Packet.Fields.ip_src with
         | Some ip -> Ipv4_addr.to_int32 ip
         | None -> -1l
       else 0l);
    k_ip_dst =
      (if sig_.t_ip_dst then
         match f.Packet.Fields.ip_dst with
         | Some ip -> Ipv4_addr.to_int32 ip
         | None -> -1l
       else 0l);
    k_ip_proto = (if sig_.t_ip_proto then or_else (-2) f.Packet.Fields.ip_proto else -1);
    k_ip_tos = (if sig_.t_ip_tos then or_else (-2) f.Packet.Fields.ip_tos else -1);
    k_l4_src = (if sig_.t_l4_src then or_else (-2) f.Packet.Fields.l4_src else -1);
    k_l4_dst = (if sig_.t_l4_dst then or_else (-2) f.Packet.Fields.l4_dst else -1);
  }

(* A projected key can collide with a rule key through the [-2]
   "field absent in packet" sentinels only if some rule legitimately
   stores -2, which opt_int never produces; so probe hits are exact. *)

type template = { sig_ : tsig; index : (key, int * Flow_entry.t) Hashtbl.t }

type compiled_table = {
  templates : template list;
  residual : (int * Flow_entry.t) list; (* table order: best-first *)
}

let compile_table table =
  let templates : (tsig, template) Hashtbl.t = Hashtbl.create 8 in
  let residual = ref [] in
  List.iteri
    (fun order entry ->
      match exact_signature entry.Flow_entry.match_ with
      | None -> residual := (order, entry) :: !residual
      | Some (sig_, key) ->
          let template =
            match Hashtbl.find_opt templates sig_ with
            | Some template -> template
            | None ->
                let template = { sig_; index = Hashtbl.create 64 } in
                Hashtbl.replace templates sig_ template;
                template
          in
          (* Keep the best (earliest in table order) entry per key. *)
          (match Hashtbl.find_opt template.index key with
          | Some (existing, _) when existing < order -> ()
          | Some _ | None -> Hashtbl.replace template.index key (order, entry)))
    (Flow_table.entries table);
  {
    templates = Hashtbl.fold (fun _ template acc -> template :: acc) templates [];
    residual = List.rev !residual;
  }

let create pipeline =
  let compiled = ref [||] in
  let seen_version = ref (-1) in
  let recompiles = ref 0 in
  let packets = ref 0 in
  let recompile () =
    compiled :=
      Array.init (Pipeline.num_tables pipeline) (fun i ->
          compile_table (Pipeline.table pipeline i));
    incr recompiles
  in
  let probes = ref 0 in
  let residual_scans = ref 0 in
  let lookup table_id ~in_port fields =
    let ct = !compiled.(table_id) in
    let best = ref None in
    let consider order entry =
      match !best with
      | Some (existing, _) when existing <= order -> ()
      | Some _ | None -> best := Some (order, entry)
    in
    List.iter
      (fun template ->
        incr probes;
        match Hashtbl.find_opt template.index (project template.sig_ ~in_port fields) with
        | Some (order, entry) -> consider order entry
        | None -> ())
      ct.templates;
    List.iter
      (fun (order, entry) ->
        incr residual_scans;
        if Of_match.matches entry.Flow_entry.match_ ~in_port fields then
          consider order entry)
      ct.residual;
    Option.map snd !best
  in
  let process ~now_ns ~in_port pkt =
    let m = Alloc_probe.mark () in
    let v = Pipeline.version pipeline in
    if v <> !seen_version then begin
      seen_version := v;
      recompile ()
    end;
    incr packets;
    probes := 0;
    residual_scans := 0;
    let result = Pipeline.execute_with pipeline ~lookup ~now_ns ~in_port pkt in
    let cycles =
      Dataplane.Cost.parse
      + (!probes * Dataplane.Cost.eswitch_template)
      + (!residual_scans * Dataplane.Cost.linear_per_entry)
      + Dataplane.cycles_of_result result
    in
    Alloc_probe.record "lookup.eswitch" m;
    (result, cycles)
  in
  let stats () =
    let template_count =
      Array.fold_left
        (fun acc ct -> acc + List.length ct.templates)
        0 !compiled
    in
    [
      ("packets", !packets);
      ("recompiles", !recompiles);
      ("templates", template_count);
    ]
  in
  { Dataplane.name = "eswitch"; process; stats; tier = (fun () -> "specialized") }
