(** sFlow-style sampled flow recorder: the per-switch half of the
    traffic observability plane.

    A recorder sits on the switch's receive path ({!Soft_switch} calls
    {!observe} for every packet it processes).  Every packet updates a
    HyperLogLog of source hosts (a register max — allocation-free);
    every [rate]-th packet is {e sampled}: its 5-tuple
    {!Netpkt.Packet.Flow_key} is materialized and its byte count,
    scaled by [rate], feeds a count-min sketch, a space-saving top-k
    and a bounded ring of raw flow records.  Memory is therefore fixed
    regardless of flow count, and everything is seeded —
    deterministic across runs.

    The sampled branch is bracketed by the ["flowrec.sample"]
    {!Alloc_probe} site; the skip branch allocates nothing (pinned by
    tests). *)

type record = {
  rc_key : Netpkt.Packet.Flow_key.t;
  rc_hash : int;  (** [Flow_key.hash ~seed] under the recorder's seed *)
  rc_bytes : int;  (** frame bytes multiplied by the sampling rate *)
  rc_ts_ns : int;
  rc_in_port : int;
}

type config = {
  rate : int;  (** sample 1 in [rate] packets ([>= 1]; 1 = every packet) *)
  cm_epsilon : float;
  cm_delta : float;
  hll_p : int;
  topk : int;
  ring : int;  (** raw-record ring capacity (0 disables the ring) *)
  seed : int;
}

val default_config : config
(** rate 16, epsilon 0.005, delta 0.01, p 14, k 32, ring 256, seed 42. *)

type t

val create : ?config:config -> unit -> t
(** @raise Invalid_argument on a non-positive rate, a negative ring, or
    sketch parameters out of range. *)

val config : t -> config

val observe : t -> now_ns:int -> in_port:int -> Netpkt.Packet.t -> unit
(** Feed one processed packet through the recorder. *)

val seen : t -> int
(** Packets observed (sampled or not). *)

val sampled : t -> int

val cm : t -> Telemetry.Sketch.Cm.t
(** Estimated bytes per flow, keyed by [rc_hash]. *)

val hll : t -> Telemetry.Sketch.Hll.t
(** Distinct source hosts (fed on {e every} IP packet, not just
    samples, so cardinality is exact-stream coverage). *)

val topk : t -> Telemetry.Sketch.Topk.t
(** Estimated-byte heavy hitters keyed by [Flow_key.to_string]. *)

val records : t -> record list
(** The ring's contents, oldest first, at most [config.ring] entries. *)

val set_on_sample : t -> (record -> unit) -> unit
(** Hook invoked after each sampled record (accuracy rigs use this to
    keep an exact reference of the sampled sub-stream). *)
