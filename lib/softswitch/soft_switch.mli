(** The software OpenFlow switch: a {!Simnet.Node.t} whose forwarding is
    an OpenFlow pipeline executed by a pluggable {!Dataplane} under a
    {!Pmd} CPU model, plus the switch-side OpenFlow agent (flow-mods,
    packet-in/out, stats, barriers).

    HARMLESS instantiates two of these per deployment: SS_1 (the VLAN ↔
    patch-port translator) and SS_2 (the main OF switch the controller
    programs). *)

type dataplane_kind =
  | Linear
  | Ovs of Ovs_like.config
  | Eswitch
  | Hardware
      (** An idealized ASIC dataplane for modelling COTS OpenFlow
          hardware: pipeline semantics, near-zero per-packet cycles, but
          typically paired with a small [max_flow_entries]. *)

type miss_behavior = Drop_on_miss | Send_to_controller

type connection_mode =
  | Fail_secure
      (** Connection interruption: keep installed flows (idle/hard
          timeouts still expire them) but drop packets that would punt to
          the controller, counted as ["drop_fail_secure"]. *)
  | Fail_standalone
      (** Connection interruption: table misses fall back to local L2
          learning so intra-switch traffic keeps flowing.  The learned
          table is forgotten when the controller reconnects. *)

type t

val create :
  Simnet.Engine.t ->
  name:string ->
  ports:int ->
  ?dataplane:dataplane_kind ->
  ?pmd:Pmd.config ->
  ?num_tables:int ->
  ?max_flow_entries:int ->
  ?miss:miss_behavior ->
  unit ->
  t
(** Defaults: [Eswitch] dataplane, default PMD, 4 tables, 100k entries per
    table, misses go to the controller. *)

val node : t -> Simnet.Node.t
val name : t -> string
val pipeline : t -> Openflow.Pipeline.t
val datapath_id : t -> int64
val dataplane_name : t -> string

val set_controller : t -> (Openflow.Of_message.t -> unit) -> unit
(** Where the agent sends its messages (packet-ins, replies). *)

val observe_messages_to_controller :
  t -> (Openflow.Of_message.t -> unit) -> unit
(** Register a read-only tap on every message the switch sends towards its
    controller, in addition to (and before) the [set_controller] callback.
    Used by the transparency oracle to assert that no packet-in ever
    carries a VLAN header.  Observers persist across [set_controller]
    calls. *)

val set_connection_mode : t -> connection_mode -> unit
(** What to do with would-be packet-ins while disconnected.  Default
    [Fail_secure], per the OpenFlow spec. *)

val connection_mode : t -> connection_mode

val set_connected : t -> bool -> unit
(** Flip the switch's view of the control channel.  While [false], the
    agent stops emitting packet-ins and samples; misses obey the
    {!connection_mode}.  Flipping back to [true] clears the standalone
    learning table (the controller owns forwarding again). *)

val connected : t -> bool

val crash : t -> unit
(** Kill the switch process: all flow tables and learned state are wiped,
    every packet is dropped (counted as ["drop_crashed"]) and the agent
    answers no OpenFlow messages until {!restart}. *)

val restart : t -> unit
(** Bring a crashed switch back up — empty tables, disconnected until the
    channel notices and resyncs. *)

val alive : t -> bool
val crashes : t -> int

val standalone_forwards : t -> int
(** Packets forwarded by local L2 learning while disconnected in
    [Fail_standalone]. *)

val handle_message : t -> Openflow.Of_message.t -> unit
(** Deliver a controller→switch message to the agent.  Errors (e.g. table
    full) come back as [Error] messages on the controller callback. *)

val set_sampling : t -> rate:int option -> unit
(** sFlow-style visibility: send every [rate]-th processed packet to the
    controller as a packet-in (reason [Action_to_controller]) in addition
    to normal forwarding.  [None] disables.
    @raise Invalid_argument if the rate is not positive. *)

val set_flowrec : t -> Flowrec.t option -> unit
(** Attach (or detach, with [None]) a sampled flow recorder.  When
    attached, every packet on the receive path — both the PMD path and
    {!process_direct} — passes through {!Flowrec.observe} before the
    pipeline runs.  Detached, the hook is one field read and allocates
    nothing (pinned by the memory-telemetry tests). *)

val flowrec : t -> Flowrec.t option

val expire_flows : t -> unit
(** Remove idle/hard-timed-out entries now.  Also runs automatically every
    1024 processed packets. *)

val stats : t -> (string * int) list
(** Dataplane stats plus ["pmd_processed"], ["pmd_dropped"],
    ["packet_ins"], ["flow_mods"]. *)

val publish_metrics :
  ?registry:Telemetry.Registry.t -> ?labels:Telemetry.Registry.labels ->
  t -> unit
(** Snapshot {!stats}, flow-table occupancy, PMD busy time and node
    rx/tx totals into gauges named [softswitch_*], labelled with the
    switch name and dataplane kind.  Pull-based. *)

val pmd : t -> Pmd.t

val process_direct :
  t -> now_ns:int -> in_port:int -> Netpkt.Packet.t -> Openflow.Pipeline.result * int
(** Run the dataplane synchronously without the engine or PMD — what the
    microbenchmarks call in a tight loop. *)
