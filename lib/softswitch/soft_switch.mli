(** The software OpenFlow switch: a {!Simnet.Node.t} whose forwarding is
    an OpenFlow pipeline executed by a pluggable {!Dataplane} under a
    {!Pmd} CPU model, plus the switch-side OpenFlow agent (flow-mods,
    packet-in/out, stats, barriers).

    HARMLESS instantiates two of these per deployment: SS_1 (the VLAN ↔
    patch-port translator) and SS_2 (the main OF switch the controller
    programs). *)

type dataplane_kind =
  | Linear
  | Ovs of Ovs_like.config
  | Eswitch
  | Hardware
      (** An idealized ASIC dataplane for modelling COTS OpenFlow
          hardware: pipeline semantics, near-zero per-packet cycles, but
          typically paired with a small [max_flow_entries]. *)

type miss_behavior = Drop_on_miss | Send_to_controller

type t

val create :
  Simnet.Engine.t ->
  name:string ->
  ports:int ->
  ?dataplane:dataplane_kind ->
  ?pmd:Pmd.config ->
  ?num_tables:int ->
  ?max_flow_entries:int ->
  ?miss:miss_behavior ->
  unit ->
  t
(** Defaults: [Eswitch] dataplane, default PMD, 4 tables, 100k entries per
    table, misses go to the controller. *)

val node : t -> Simnet.Node.t
val name : t -> string
val pipeline : t -> Openflow.Pipeline.t
val datapath_id : t -> int64
val dataplane_name : t -> string

val set_controller : t -> (Openflow.Of_message.t -> unit) -> unit
(** Where the agent sends its messages (packet-ins, replies). *)

val handle_message : t -> Openflow.Of_message.t -> unit
(** Deliver a controller→switch message to the agent.  Errors (e.g. table
    full) come back as [Error] messages on the controller callback. *)

val set_sampling : t -> rate:int option -> unit
(** sFlow-style visibility: send every [rate]-th processed packet to the
    controller as a packet-in (reason [Action_to_controller]) in addition
    to normal forwarding.  [None] disables.
    @raise Invalid_argument if the rate is not positive. *)

val expire_flows : t -> unit
(** Remove idle/hard-timed-out entries now.  Also runs automatically every
    1024 processed packets. *)

val stats : t -> (string * int) list
(** Dataplane stats plus ["pmd_processed"], ["pmd_dropped"],
    ["packet_ins"], ["flow_mods"]. *)

val publish_metrics :
  ?registry:Telemetry.Registry.t -> ?labels:Telemetry.Registry.labels ->
  t -> unit
(** Snapshot {!stats}, flow-table occupancy, PMD busy time and node
    rx/tx totals into gauges named [softswitch_*], labelled with the
    switch name and dataplane kind.  Pull-based. *)

val pmd : t -> Pmd.t

val process_direct :
  t -> now_ns:int -> in_port:int -> Netpkt.Packet.t -> Openflow.Pipeline.result * int
(** Run the dataplane synchronously without the engine or PMD — what the
    microbenchmarks call in a tight loop. *)
