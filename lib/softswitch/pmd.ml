open Simnet

type config = {
  ghz : float;
  cores : int;
  batch_size : int;
  per_batch_cycles : int;
  per_packet_io_cycles : int;
  rx_ring : int;
}

let default_config =
  {
    ghz = 2.6;
    cores = 1;
    batch_size = 32;
    per_batch_cycles = 600;
    per_packet_io_cycles = 50;
    rx_ring = 4096;
  }

let ns_of_cycles cfg cycles =
  let hz = cfg.ghz *. float_of_int cfg.cores in
  Stdlib.max 1 (int_of_float (ceil (float_of_int cycles /. hz)))

let packet_service_cycles cfg ~dataplane_cycles =
  dataplane_cycles + cfg.per_packet_io_cycles
  + ((cfg.per_batch_cycles + cfg.batch_size - 1) / cfg.batch_size)

type t = {
  engine : Engine.t;
  cfg : config;
  mutable next_free : Sim_time.t;
  mutable outstanding : int;
  mutable processed : int;
  mutable dropped : int;
  mutable busy_ns : int;
}

let create engine ?(config = default_config) () =
  if config.ghz <= 0.0 || config.cores <= 0 then invalid_arg "Pmd.create";
  if config.batch_size <= 0 then invalid_arg "Pmd.create: batch_size <= 0";
  {
    engine;
    cfg = config;
    next_free = Sim_time.zero;
    outstanding = 0;
    processed = 0;
    dropped = 0;
    busy_ns = 0;
  }

let submit t ~cycles k =
  let m = Alloc_probe.mark () in
  if t.outstanding >= t.cfg.rx_ring then begin
    t.dropped <- t.dropped + 1;
    false
  end
  else begin
    let now = Engine.now t.engine in
    let service = ns_of_cycles t.cfg (packet_service_cycles t.cfg ~dataplane_cycles:cycles) in
    let start = Sim_time.max now t.next_free in
    let finish = Sim_time.add start service in
    t.next_free <- finish;
    t.outstanding <- t.outstanding + 1;
    t.busy_ns <- t.busy_ns + service;
    Engine.schedule_at t.engine finish (fun () ->
        t.outstanding <- t.outstanding - 1;
        t.processed <- t.processed + 1;
        k ());
    Alloc_probe.record "pmd.submit" m;
    true
  end

let outstanding t = t.outstanding
let processed t = t.processed
let dropped t = t.dropped
let busy_ns t = t.busy_ns
let config t = t.cfg
