open Simnet

type t = {
  engine : Engine.t;
  deployment : Deployment.t;
  ctrl : Sdnctl.Controller.t;
  dpid : int64;
  poller : Sdnctl.Stats_poller.t;
  alerts : Telemetry.Alert.t;
  gcstats : Telemetry.Gcstats.t;
  collector : Sdnctl.Flow_collector.t;
  view : Trace_view.t;
  profile : Telemetry.Profile.t;
  mutable pings : int;
}

let engine t = t.engine
let poller t = t.poller
let alerts t = t.alerts
let gcstats t = t.gcstats
let flow_collector t = t.collector
let now_ns t = Sim_time.to_ns (Engine.now t.engine)

let aggregate_rx_rate poller now_ns ~window =
  List.fold_left
    (fun acc (s : Openflow.Of_message.port_stat) ->
      match
        Sdnctl.Stats_poller.port_rate poller ~port:s.Openflow.Of_message.port_no
          ~now_ns ~window
      with
      | Some (rx, _tx) -> acc +. Float.max rx 0.
      | None -> acc)
    0.
    (Sdnctl.Stats_poller.latest_ports poller)

let demo ?(num_hosts = 4) ?(poll_period = Sim_time.ms 10) () =
  let ( let* ) = Result.bind in
  let engine = Engine.create () in
  Engine.enable_telemetry ~sample_every:16 engine;
  let* deployment = Deployment.build_harmless engine ~num_hosts () in
  let ctrl = Sdnctl.Controller.create engine () in
  Sdnctl.Controller.add_app ctrl (Sdnctl.L2_learning.create ());
  let dpid =
    Sdnctl.Controller.attach_switch ctrl (Deployment.controller_switch deployment)
  in
  Engine.run engine ~until:(Sim_time.add (Engine.now engine) (Sim_time.ms 5));
  let poller = Sdnctl.Stats_poller.create ~period:poll_period ctrl dpid in
  Sdnctl.Stats_poller.start poller;
  let alerts = Telemetry.Alert.create () in
  let ch = Sdnctl.Controller.channel ctrl dpid in
  Telemetry.Alert.add_rule alerts ~name:"control-channel-up"
    ~help:"the OpenFlow channel must stay connected"
    (Telemetry.Alert.Sampled
       (fun _now ->
         Some
           (match Sdnctl.Channel.state ch with
           | Sdnctl.Channel.Connected -> 1.0
           | Sdnctl.Channel.Disconnected -> 0.0)))
    (Telemetry.Alert.Below 0.5);
  Telemetry.Alert.add_rule alerts ~name:"stats-freshness"
    ~help:"the poller must keep hearing echo replies"
    (Telemetry.Alert.Series (Sdnctl.Stats_poller.rtt_series poller))
    (Telemetry.Alert.Absent { window = Sim_time.ms 50 });
  Telemetry.Alert.add_rule alerts ~name:"dataplane-active"
    ~help:"firing = polled port counters show traffic"
    (Telemetry.Alert.Sampled
       (fun now_ns ->
         Some (aggregate_rx_rate poller now_ns ~window:(Sim_time.ms 30))))
    (Telemetry.Alert.Above 1.0);
  let gcstats = Telemetry.Gcstats.create () in
  (* The demo threshold is astronomically high on purpose: the rule's
     job here is to show up in the alert roster with a live rate, not
     to fire — keeping every golden frame deterministic. *)
  Telemetry.Gcstats.add_alloc_rate_rule gcstats alerts
    ~words_per_second:1e12 ~window:(Sim_time.ms 30) ();
  (* Sampled flow telemetry on the OpenFlow switch: a low rate so the
     probe pings actually get sampled, and — like the GC rule —
     unreachable alert thresholds, present for the roster, never
     firing. *)
  let collector =
    Sdnctl.Flow_collector.create
      ~config:{ Softswitch.Flowrec.default_config with rate = 8; topk = 8 }
      engine
  in
  Sdnctl.Flow_collector.add_switch collector
    (Deployment.controller_switch deployment);
  Sdnctl.Flow_collector.start collector ~every:poll_period;
  Sdnctl.Flow_collector.add_alert_rules ~elephant_bytes:1e12 ~max_hosts:1e12
    collector alerts;
  Ok
    {
      engine;
      deployment;
      ctrl;
      dpid;
      poller;
      alerts;
      gcstats;
      collector;
      view = Trace_view.of_deployment deployment;
      profile = Telemetry.Profile.create ();
      pings = 0;
    }

let ping_pair t k =
  let n = Deployment.num_hosts t.deployment in
  let pairs = n * (n - 1) in
  let idx = k mod pairs in
  let src = idx / (n - 1) in
  let rest = idx mod (n - 1) in
  let dst = if rest >= src then rest + 1 else rest in
  t.pings <- t.pings + 1;
  Host.ping
    (Deployment.host t.deployment src)
    ~dst_mac:(Deployment.host_mac dst) ~dst_ip:(Deployment.host_ip dst)
    ~seq:t.pings

let advance t span =
  if span < 0 then invalid_arg "Dashboard.advance: negative span";
  let stop = Sim_time.add (Engine.now t.engine) span in
  let rec traffic () =
    if Sim_time.( < ) (Engine.now t.engine) stop then begin
      ping_pair t t.pings;
      Engine.schedule_after t.engine (Sim_time.ms 1) traffic
    end
  in
  traffic ();
  Engine.schedule_every t.engine (Sim_time.ms 2) (fun () ->
      let now = Engine.now t.engine in
      if Sim_time.( <= ) now stop then begin
        Telemetry.Gcstats.sample t.gcstats ~ts_ns:(Sim_time.to_ns now);
        Telemetry.Alert.eval t.alerts ~now_ns:(Sim_time.to_ns now)
      end;
      Sim_time.( < ) now stop);
  (* The run happens under a trace collector so the probe traffic also
     feeds the per-stage latency profile behind [render_stages]. *)
  let (), traces =
    Telemetry.Trace.with_collector (fun _collector ->
        Engine.run t.engine ~until:stop)
  in
  Telemetry.Profile.record_traces
    ~stage_of:(Trace_view.semantic t.view)
    t.profile traces

(* ---- rendering ---- *)

let rate_str r =
  if r >= 1e9 then Printf.sprintf "%7.1f GB/s" (r /. 1e9)
  else if r >= 1e6 then Printf.sprintf "%7.1f MB/s" (r /. 1e6)
  else if r >= 1e3 then Printf.sprintf "%7.1f kB/s" (r /. 1e3)
  else Printf.sprintf "%7.1f  B/s" r

let bar ~width frac =
  let frac = Float.min 1.0 (Float.max 0.0 frac) in
  let n = int_of_float ((frac *. float_of_int width) +. 0.5) in
  String.make n '#' ^ String.make (width - n) '.'

let render_top ?(top_n = 5) ?(window = Sim_time.ms 30) t =
  let buf = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let now = now_ns t in
  let ch = Sdnctl.Controller.channel t.ctrl t.dpid in
  add "harmless top — t=%s  dpid=0x%Lx  channel=%s\n"
    (Format.asprintf "%a" Sim_time.pp (Engine.now t.engine))
    t.dpid
    (match Sdnctl.Channel.state ch with
    | Sdnctl.Channel.Connected -> "connected"
    | Sdnctl.Channel.Disconnected -> "DISCONNECTED");
  let p = t.poller in
  add "poller: %d rounds, %d flow / %d port / %d echo replies, backoff x%d"
    (Sdnctl.Stats_poller.rounds_issued p)
    (Sdnctl.Stats_poller.flow_replies p)
    (Sdnctl.Stats_poller.port_replies p)
    (Sdnctl.Stats_poller.rtt_replies p)
    (Sdnctl.Stats_poller.consecutive_failures p);
  (match Telemetry.Timeseries.last (Sdnctl.Stats_poller.rtt_series p) with
  | Some (_, rtt) ->
      add ", rtt %s\n" (Format.asprintf "%a" Sim_time.pp_span (int_of_float rtt))
  | None -> add ", rtt -\n");
  let ports =
    List.sort
      (fun (a : Openflow.Of_message.port_stat) b ->
        compare a.Openflow.Of_message.port_no b.Openflow.Of_message.port_no)
      (Sdnctl.Stats_poller.latest_ports p)
  in
  let window_s = Format.asprintf "%a" Sim_time.pp_span window in
  if ports = [] then add "\nports: no port-stats reply yet\n"
  else begin
    add "\nports (rates over %s):\n" window_s;
    let rates =
      List.map
        (fun (s : Openflow.Of_message.port_stat) ->
          let port = s.Openflow.Of_message.port_no in
          match Sdnctl.Stats_poller.port_rate p ~port ~now_ns:now ~window with
          | Some (rx, tx) -> (port, Float.max rx 0., Float.max tx 0.)
          | None -> (port, 0., 0.))
        ports
    in
    let peak =
      List.fold_left (fun m (_, rx, tx) -> Float.max m (Float.max rx tx)) 1. rates
    in
    List.iter
      (fun (port, rx, tx) ->
        add "  port %2d  rx %s |%s|  tx %s |%s|\n" port (rate_str rx)
          (bar ~width:20 (rx /. peak))
          (rate_str tx)
          (bar ~width:20 (tx /. peak)))
      rates
  end;
  let flows = Sdnctl.Stats_poller.top_flows p ~n:top_n ~now_ns:now ~window in
  if flows = [] then add "\nflows: no flow-stats reply yet\n"
  else begin
    add "\ntop %d flows by byte rate (over %s):\n" (List.length flows) window_s;
    List.iteri
      (fun i (key, rate) -> add "  %d. %s  %s\n" (i + 1) (rate_str rate) key)
      flows
  end;
  add "\n%s" (Telemetry.Gcstats.panel t.gcstats ~now_ns:now ~window);
  (match
     (Engine.queue_depth_series t.engine, Engine.scheduling_lag_series t.engine)
   with
  | Some depth, Some lag ->
      let last series =
        match Telemetry.Timeseries.last series with
        | Some (_, v) -> Printf.sprintf "%.0f" v
        | None -> "-"
      in
      add "engine: %d events, queue depth %s, sched lag %sns\n"
        (Engine.events_executed t.engine)
        (last depth) (last lag)
  | _ -> ());
  let firing = Telemetry.Alert.firing t.alerts in
  add "\nalerts: %d rule(s), firing: %s\n"
    (List.length (Telemetry.Alert.rules t.alerts))
    (if firing = [] then "none" else String.concat ", " firing);
  add "%s" (Format.asprintf "%a" Telemetry.Alert.pp t.alerts);
  Buffer.contents buf

let render_stages t =
  let buf = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "per-stage latency SLIs — t=%s, %d traced packet(s)\n"
    (Format.asprintf "%a" Sim_time.pp (Engine.now t.engine))
    (Telemetry.Profile.traces_recorded t.profile);
  if Telemetry.Profile.traces_recorded t.profile = 0 then
    add "no traced traffic yet — advance the dashboard first\n"
  else add "%s" (Telemetry.Profile.attribution_table t.profile);
  Buffer.contents buf

let render_flows ?(top_n = 10) t =
  Printf.sprintf "harmless flows — t=%s\n%s"
    (Format.asprintf "%a" Sim_time.pp (Engine.now t.engine))
    (Sdnctl.Flow_collector.render ~k:top_n t.collector)

let render_alerts t =
  let buf = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "alert rules after %d evaluation(s) (t=%s):\n"
    (Telemetry.Alert.evaluations t.alerts)
    (Format.asprintf "%a" Sim_time.pp (Engine.now t.engine));
  add "%s" (Format.asprintf "%a" Telemetry.Alert.pp t.alerts);
  let log = Telemetry.Alert.log t.alerts in
  if log = [] then add "no transitions\n"
  else begin
    add "transitions:\n";
    List.iter
      (fun tr ->
        add "  %s\n" (Format.asprintf "%a" Telemetry.Alert.pp_transition tr))
      log
  end;
  Buffer.contents buf

let render_migration ?wal fleet =
  let buf = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "%s" (Migration.Fleet.render fleet);
  (match wal with
  | None -> ()
  | Some wal ->
      add "WAL: %d record(s), %d transaction(s)\n" (Mgmt.Txn.length wal)
        (List.length (Mgmt.Txn.txns wal));
      List.iter
        (fun txn ->
          add "  txn %-12s %s\n" txn
            (Format.asprintf "%a" Mgmt.Txn.pp_resolution
               (Mgmt.Txn.resolve wal ~txn)))
        (Mgmt.Txn.txns wal));
  Buffer.contents buf
