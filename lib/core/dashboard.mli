(** The operator dashboard behind [harmlessctl top] and
    [harmlessctl alerts]: a canned deterministic HARMLESS deployment
    with a {!Sdnctl.Stats_poller} collecting OpenFlow statistics and an
    {!Telemetry.Alert} engine watching them, plus pure renderers that
    turn the collected series into text frames.

    The renderers live here rather than in the CLI so the frames are
    testable: the same demo advanced the same sim-time span renders
    byte-identical output. *)

type t

val demo :
  ?num_hosts:int ->
  ?poll_period:Simnet.Sim_time.span ->
  unit ->
  (t, string) result
(** A 4-host (default) HARMLESS deployment with an L2-learning
    controller, a stats poller on the OpenFlow switch (default period
    10 ms) and four alert rules: ["control-channel-up"] (channel
    observed disconnected), ["stats-freshness"] (no RTT sample for
    50 ms), ["dataplane-active"] (aggregate polled port receive rate
    above 1 B/s — firing means traffic is flowing) and
    ["gc-alloc-rate"] (allocation-rate watch with a deliberately
    unreachable demo threshold, so the frame goldens stay
    deterministic).  A {!Sdnctl.Flow_collector} samples the OpenFlow
    switch 1-in-8 and merges on the poll period, contributing the
    ["elephant-flow"] and ["host-cardinality"] rules (also with
    unreachable demo thresholds).  The engine's
    queue-depth/scheduling-lag telemetry is on (every 16th event).
    The control-plane handshake has already settled; no traffic has
    been sent yet. *)

val advance : t -> Simnet.Sim_time.span -> unit
(** Run the deployment for a span of sim time: probe pings cycle
    through every ordered host pair each millisecond, the poller polls,
    and the alert rules are evaluated every 2 ms. *)

val engine : t -> Simnet.Engine.t
val poller : t -> Sdnctl.Stats_poller.t
val alerts : t -> Telemetry.Alert.t

val gcstats : t -> Telemetry.Gcstats.t
(** The demo's GC sampler: fed from the live runtime every 2 ms of sim
    time during {!advance}, watched by the (deliberately never-firing)
    ["gc-alloc-rate"] demo rule. *)

val now_ns : t -> int

val render_top : ?top_n:int -> ?window:Simnet.Sim_time.span -> t -> string
(** One [top] frame: header (sim time, datapath, channel state, poll
    and reply counts, last control RTT), per-port rx/tx rate bars over
    [window] (default 30 ms, bars scaled to the busiest port), the
    [top_n] (default 5) flows by byte rate, a GC panel line (live
    runtime numbers — the one nondeterministic line in the frame), an
    engine line (events executed, sampled queue depth and scheduling
    lag), and the alert summary. *)

val flow_collector : t -> Sdnctl.Flow_collector.t
(** The demo's sampled-flow roll-up (fed by the probe pings). *)

val render_flows : ?top_n:int -> t -> string
(** The heavy-hitters panel: switch/sample/merge counts, the merged
    top-[top_n] (default 10) flows by estimated bytes with per-entry
    error bounds, and the estimated source-host cardinality.
    [harmlessctl flows] prints exactly this frame. *)

val render_alerts : t -> string
(** The alert engine in full: every rule with its state, then the
    complete transition log, oldest first. *)

val render_stages : t -> string
(** Per-stage latency SLIs: the {!Telemetry.Profile} attribution table
    folded from every packet traced during {!advance} — where the probe
    traffic's end-to-end time goes, stage by stage.  [advance] runs
    under a trace collector, so this works out of the box; before any
    [advance] the frame says so instead of rendering an empty table. *)

val render_migration : ?wal:Mgmt.Txn.t -> Migration.Fleet.t -> string
(** The migration panel: per-switch stage, rollbacks_total, breaker
    state and fleet progress ({!Migration.Fleet.render}), followed —
    when [wal] is given — by the write-ahead log summary with each
    transaction's replay resolution.  [harmlessctl migrate] prints
    exactly this frame. *)
