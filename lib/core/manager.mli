(** The HARMLESS Manager: the automation that turns a managed legacy
    switch plus a server into one OpenFlow switch (the Python/BASH tool of
    the paper, reimplemented as a library).

    Given a device handle (NAPALM driver + SNMP agent) and the desired
    OpenFlow-enabled port set, {!provision}:

    + discovers the device (facts, interfaces) through NAPALM;
    + computes the port ↔ VLAN mapping;
    + generates the target configuration — one access VLAN per managed
      port, the trunk carrying exactly those VLANs — renders it in the
      device's own NOS dialect, stages it as a candidate and commits it;
    + verifies the result out-of-band over SNMP (dot1qPvid walk);
    + instantiates SS_1 and SS_2 connected by patch ports and installs
      the translator rules into SS_1.

    The returned SS_2 is a plain OpenFlow switch from the controller's
    point of view: its port [i] {e is} the [i]-th managed access port. *)

type report = {
  facts : Mgmt.Napalm.facts;
  config_diff : string list;  (** what the commit changed *)
  steps : string list;        (** human-readable action log, in order *)
}

type provisioned = {
  ss1 : Softswitch.Soft_switch.t;
  ss2 : Softswitch.Soft_switch.t;
  port_map : Port_map.t;
  patches : Softswitch.Patch_port.t array;
  report : report;
}

val provision :
  Simnet.Engine.t ->
  device:Mgmt.Device.t ->
  trunk_port:int ->
  access_ports:int list ->
  ?base_vid:int ->
  ?dataplane:Softswitch.Soft_switch.dataplane_kind ->
  ?pmd:Softswitch.Pmd.config ->
  ?retry:Mgmt.Retry.policy ->
  unit ->
  (provisioned, string) result
(** Fails (with the device rolled back where possible) if the port set is
    invalid for the device, the commit is rejected, or verification finds
    a mismatch. *)

val configure_device :
  device:Mgmt.Device.t ->
  trunk_port:int ->
  access_ports:int list ->
  ?base_vid:int ->
  ?disabled_ports:int list ->
  ?retry:Mgmt.Retry.policy ->
  ?rng:Simnet.Rng.t ->
  ?deadline:Simnet.Sim_time.span ->
  unit ->
  (Port_map.t * report, string) result
(** Steps 1–4 of {!provision} only: discover, compute the mapping,
    commit the tagging configuration and verify it over SNMP — without
    creating any software switches.  {!Scaleout} uses this to share one
    SS_2 across several devices; {!Failover} uses [disabled_ports] to
    keep the standby trunk shut.  Ports in [disabled_ports] are forced to
    [Disabled] in the candidate.

    Every management step runs under [retry] (default {!Mgmt.Retry.default}):
    [load_candidate], [commit] and [rollback] retry on any error;
    SNMP verification retries only transient ({!Mgmt.Snmp.Timeout})
    errors — a genuine VLAN mismatch triggers rollback immediately.
    When verification {e and} rollback both fail, the error carries both
    messages ("…; rollback also failed: … — device state unknown"), so
    the operator knows the device was left in an unknown state.

    [rng] feeds the retry policy's full jitter (see {!Mgmt.Retry}).
    [deadline] is a {e total} backoff budget shared by every retried
    step (load, commit, verify, rollback): when the accumulated backoff
    would exceed it, the run stops with a ["deadline exceeded…"] error
    — recognisable via {!Mgmt.Retry.is_deadline_error} and counted in
    [deadline_exceeded_total{op}] — distinct from the per-operation
    "gave up after N attempts" transient give-up. *)

val precheck :
  device:Mgmt.Device.t ->
  trunk_port:int ->
  access_ports:int list ->
  ?base_vid:int ->
  ?disabled_ports:int list ->
  unit ->
  (Port_map.t * Mgmt.Napalm.facts * string list, string) result
(** The read-only first phase of {!configure_device}: discover the
    device, validate the port set, compute the mapping.  Touches
    nothing; the returned strings are the action-log steps taken.
    {!Migration} runs this as its own journaled stage. *)

val push_config :
  device:Mgmt.Device.t ->
  trunk_port:int ->
  map:Port_map.t ->
  ?disabled_ports:int list ->
  ?retry:Mgmt.Retry.policy ->
  ?rng:Simnet.Rng.t ->
  ?budget:Mgmt.Retry.budget ->
  ?log:(string -> unit) ->
  unit ->
  (string list, string) result
(** The mutating second phase: render the candidate for [map], stage it,
    commit, verify over SNMP, roll back on a verify mismatch.  Returns
    the config diff.  [budget] is shared across all retried steps;
    [log] receives the same step strings {!configure_device} reports. *)

val candidate_config :
  device:Mgmt.Device.t ->
  trunk_port:int ->
  map:Port_map.t ->
  ?disabled_ports:int list ->
  unit ->
  Mgmt.Device_config.t
(** The exact structured configuration {!push_config} would commit —
    what WAL recovery compares the running config against to decide
    whether a crashed transaction's commit landed. *)

val deprovision : Mgmt.Device.t -> (unit, string) result
(** Roll the legacy switch back to its pre-HARMLESS configuration. *)
