(* Deterministic profiling rig: the HARMLESS sandwich and a direct
   OpenFlow deployment, warmed up, driven with identical ping
   sequences under a trace collector, folded into per-stage profiles.
   Sim-clock only, so the whole report is reproducible byte-for-byte. *)

open Simnet

type report = {
  harmless : Telemetry.Profile.t;
  plain : Telemetry.Profile.t;
  num_hosts : int;
  pings : int;
}

(* Same pair-cycling order as the chaos and dashboard probes. *)
let ping_pair deployment ~seq k =
  let n = Deployment.num_hosts deployment in
  let pairs = n * (n - 1) in
  let idx = k mod pairs in
  let src = idx / (n - 1) in
  let rest = idx mod (n - 1) in
  let dst = if rest >= src then rest + 1 else rest in
  Host.ping
    (Deployment.host deployment src)
    ~dst_mac:(Deployment.host_mac dst) ~dst_ip:(Deployment.host_ip dst) ~seq

(* Only complete fast-path host-to-host walks enter the profile:
   warm-up floods and controller-detoured packets have a different
   stage structure and would break the homogeneous-workload invariant
   (one controller round trip is ~40x a fast-path walk, so a single
   leaked detour wrecks the attribution sum). *)
let complete (trace : Telemetry.Trace.trace) =
  match trace.Telemetry.Trace.hops with
  | [] | [ _ ] -> false
  | first :: rest ->
      let last = List.nth rest (List.length rest - 1) in
      first.Telemetry.Trace.layer = Telemetry.Trace.Host
      && first.Telemetry.Trace.stage = "tx"
      && last.Telemetry.Trace.layer = Telemetry.Trace.Host
      && last.Telemetry.Trace.stage = "rx"
      && not
           (List.exists
              (fun (h : Telemetry.Trace.hop) ->
                h.Telemetry.Trace.layer = Telemetry.Trace.Controller)
              trace.Telemetry.Trace.hops)

let profile_deployment ~pings deployment =
  let engine = deployment.Deployment.engine in
  let ctrl = Sdnctl.Controller.create engine () in
  Sdnctl.Controller.add_app ctrl (Sdnctl.L2_learning.create ());
  let _dpid =
    Sdnctl.Controller.attach_switch ctrl (Deployment.controller_switch deployment)
  in
  Engine.run engine ~until:(Sim_time.add (Engine.now engine) (Sim_time.ms 5));
  let n = Deployment.num_hosts deployment in
  let pairs = n * (n - 1) in
  let seq = ref 0 in
  let ping k =
    incr seq;
    ping_pair deployment ~seq:!seq k
  in
  let step k =
    ping k;
    Engine.run engine ~until:(Sim_time.add (Engine.now engine) (Sim_time.ms 1))
  in
  (* Warm-up, two phases.  Ring first: one ping from every host while
     the flow tables are still empty, so every host's packet punts and
     the controller learns every MAC.  The order matters — the
     L2-learning app only learns sources from punted packets, and once
     a dst-flow is installed the hosts behind it stop punting; seeding
     the pair round directly can leave a host unlearned forever (with 3
     hosts, h2's replies always ride the h0/h1 flows, so every packet
     *to* h2 detours for the rest of the run).  Then one round over
     every ordered pair installs the controller's flows and teaches the
     dataplane MAC tables, so measured pings below all take the fast
     path. *)
  for src = 0 to n - 1 do
    incr seq;
    let dst = (src + 1) mod n in
    Host.ping
      (Deployment.host deployment src)
      ~dst_mac:(Deployment.host_mac dst) ~dst_ip:(Deployment.host_ip dst)
      ~seq:!seq;
    Engine.run engine ~until:(Sim_time.add (Engine.now engine) (Sim_time.ms 1))
  done;
  for k = 0 to pairs - 1 do
    step k
  done;
  let (), traces =
    Telemetry.Trace.with_collector (fun _collector ->
        for k = 0 to pings - 1 do
          step k
        done)
  in
  let view = Trace_view.of_deployment deployment in
  let profile = Telemetry.Profile.create () in
  Telemetry.Profile.record_traces
    ~stage_of:(Trace_view.semantic view)
    profile
    (List.filter complete traces);
  profile

let run ?(num_hosts = 4) ?(pings = 40) ?dataplane () =
  let ( let* ) = Result.bind in
  if num_hosts < 2 then Error "perf rig: need at least 2 hosts"
  else if pings < 1 then Error "perf rig: need at least 1 ping"
  else
    let* harmless_deployment =
      Deployment.build_harmless (Engine.create ()) ~num_hosts ?dataplane ()
    in
    let harmless = profile_deployment ~pings harmless_deployment in
    let plain_deployment =
      Deployment.build_plain_openflow (Engine.create ()) ~num_hosts ?dataplane ()
    in
    let plain = profile_deployment ~pings plain_deployment in
    Ok { harmless; plain; num_hosts; pings }

let overhead_ratio r =
  match (Telemetry.Profile.e2e r.harmless, Telemetry.Profile.e2e r.plain) with
  | Some h, Some p when p.Telemetry.Profile.p50 > 0 ->
      Some
        (float_of_int h.Telemetry.Profile.p50
        /. float_of_int p.Telemetry.Profile.p50)
  | _ -> None

let attribution r =
  let buf = Buffer.create 2048 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "per-stage attribution — HARMLESS path (%d hosts, %d measured pings)\n"
    r.num_hosts r.pings;
  add "%s\n" (Telemetry.Profile.attribution_table r.harmless);
  add "per-stage attribution — direct OpenFlow path (control group)\n";
  add "%s\n" (Telemetry.Profile.attribution_table r.plain);
  (match
     (Telemetry.Profile.e2e r.harmless, Telemetry.Profile.e2e r.plain,
      overhead_ratio r)
   with
  | Some h, Some p, Some ratio ->
      add
        "HARMLESS e2e p50 %s vs direct p50 %s — overhead ratio %.2fx\n"
        (Format.asprintf "%a" Telemetry.Trace.pp_time h.Telemetry.Profile.p50)
        (Format.asprintf "%a" Telemetry.Trace.pp_time p.Telemetry.Profile.p50)
        ratio
  | _ -> add "overhead ratio: not enough complete traces\n");
  (match
     (Telemetry.Profile.e2e_alloc r.harmless, Telemetry.Profile.e2e_alloc r.plain)
   with
  | Some h, Some p when h.Telemetry.Profile.p50 > 0 && p.Telemetry.Profile.p50 > 0
    ->
      add
        "HARMLESS e2e alloc p50 %dw/pkt vs direct %dw/pkt — alloc ratio %.2fx\n"
        h.Telemetry.Profile.p50 p.Telemetry.Profile.p50
        (float_of_int h.Telemetry.Profile.p50
        /. float_of_int p.Telemetry.Profile.p50)
  | _ -> ());
  Buffer.contents buf

let publish ?registry r =
  Telemetry.Profile.publish ?registry ~prefix:"harmless" r.harmless;
  Telemetry.Profile.publish ?registry ~prefix:"direct" r.plain;
  match overhead_ratio r with
  | Some ratio ->
      Telemetry.Registry.Gauge.set
        (Telemetry.Registry.Gauge.v ?registry
           ~help:"HARMLESS e2e latency p50 over the direct-path p50"
           "harmless_overhead_ratio")
        ratio
  | None -> ()
