open Openflow

let trunk_port = 0
let patch_port_of_logical i = 1 + i
let required_ports map = 1 + Port_map.size map

let rules ?(trunk_port = trunk_port) ?(patch_base = 1) map =
  List.concat_map
    (fun i ->
      let v =
        match Port_map.vid_of_logical map i with
        | Some v -> v
        | None -> assert false
      in
      let from_trunk =
        Of_message.add_flow ~priority:2000
          ~match_:Of_match.(any |> in_port trunk_port |> vid v)
          [
            Flow_entry.Apply_actions
              [ Of_action.Pop_vlan; Of_action.output (patch_base + i) ];
          ]
      in
      let to_trunk =
        Of_message.add_flow ~priority:2000
          ~match_:Of_match.(any |> in_port (patch_base + i))
          [
            Flow_entry.Apply_actions
              [
                Of_action.Push_vlan;
                Of_action.Set_vlan_vid v;
                Of_action.output trunk_port;
              ];
          ]
      in
      [ from_trunk; to_trunk ])
    (List.init (Port_map.size map) Fun.id)

let install ?trunk_port ?patch_base ss1 map =
  let rules = rules ?trunk_port ?patch_base map in
  (* Control-path event: account installed translation rules in the
     process-wide registry so a metrics snapshot shows how much state
     the transparency trick costs. *)
  Telemetry.Registry.Counter.inc ~by:(List.length rules)
    (Telemetry.Registry.Counter.v
       ~help:"SS_1 VLAN<->patch translation rules installed"
       ~labels:[ ("switch", Softswitch.Soft_switch.name ss1) ]
       "harmless_translator_rules_installed_total");
  List.iter
    (fun fm -> Softswitch.Soft_switch.handle_message ss1 (Of_message.Flow_mod fm))
    rules

let reinstall ?trunk_port ?patch_base ss1 map =
  Softswitch.Soft_switch.handle_message ss1
    (Of_message.Flow_mod (Of_message.delete_flow Of_match.any));
  install ?trunk_port ?patch_base ss1 map
