open Simnet
open Ethswitch
open Softswitch

let ( let* ) = Result.bind

type sw = {
  name : string;
  legacy : Legacy_switch.t;
  dev : Mgmt.Device.t;
  hosts : Host.t array;
  before : Mgmt.Device_config.t; (* pre-migration running config *)
  answered_series : Telemetry.Timeseries.t;
  alerts : Telemetry.Alert.t;
  mutable trunk_link : Link.t option;
  mutable ss1 : Soft_switch.t option;
  mutable ss2 : Soft_switch.t option;
  mutable poller : Sdnctl.Stats_poller.t option;
  mutable pings : int;
}

type t = {
  engine : Engine.t;
  ctrl : Sdnctl.Controller.t;
  inj : Fault.injector;
  wal_ : Mgmt.Txn.t;
  switches : sw array;
  seed : int;
  num_hosts : int;
}

let engine t = t.engine
let wal t = t.wal_
let injector t = t.inj
let controller t = t.ctrl
let switch_names t = Array.to_list (Array.map (fun s -> s.name) t.switches)
let device t i = t.switches.(i).dev

let fast_channel =
  {
    Sdnctl.Channel.default_config with
    keepalive_interval = Some (Sim_time.ms 2);
    echo_timeout = Sim_time.ms 5;
    reconnect_base = Sim_time.ms 1;
    reconnect_max = Sim_time.ms 16;
  }

let build ?(num_switches = 3) ?(num_hosts = 2) ~seed () =
  if num_switches < 1 then Error "migration rig: need at least 1 switch"
  else if num_hosts < 2 then Error "migration rig: need at least 2 hosts"
  else begin
    let engine = Engine.create () in
    let ctrl = Sdnctl.Controller.create engine ~channel_config:fast_channel () in
    Sdnctl.Controller.add_app ctrl (Sdnctl.L2_learning.create ());
    let vendors =
      [| Mgmt.Device.Cisco_like; Mgmt.Device.Arista_like; Mgmt.Device.Juniper_like |]
    in
    let switches =
      Array.init num_switches (fun k ->
          let name = Printf.sprintf "sw%d" k in
          let legacy =
            Legacy_switch.create engine ~name ~ports:(num_hosts + 1) ()
          in
          let dev =
            Mgmt.Device.create ~switch:legacy
              ~vendor:vendors.(k mod Array.length vendors)
              ()
          in
          let hosts =
            Array.init num_hosts (fun i ->
                Host.create engine
                  ~name:(Printf.sprintf "%s-h%d" name i)
                  ~mac:(Deployment.host_mac ((k * num_hosts) + i))
                  ~ip:(Deployment.host_ip ((k * num_hosts) + i))
                  ())
          in
          Array.iteri
            (fun i h ->
              ignore (Link.connect (Host.node h, 0) (Legacy_switch.node legacy, i)))
            hosts;
          let answered_series =
            Telemetry.Timeseries.create
              ~name:(name ^ "_probe_answered_total") ()
          in
          let alerts = Telemetry.Alert.create () in
          Telemetry.Alert.add_rule alerts ~name:"probe-liveness"
            ~help:"canary probe answers must keep arriving"
            (Telemetry.Alert.Series answered_series)
            (Telemetry.Alert.Rate_below
               { per_second = 1.0; window = Sim_time.ms 3 });
          {
            name;
            legacy;
            dev;
            hosts;
            before = Mgmt.Device.running_config dev;
            answered_series;
            alerts;
            trunk_link = None;
            ss1 = None;
            ss2 = None;
            poller = None;
            pings = 0;
          })
    in
    Ok
      {
        engine;
        ctrl;
        inj = Fault.create engine;
        wal_ = Mgmt.Txn.create ();
        switches;
        seed;
        num_hosts;
      }
  end

(* ------------------------------------------------------------------ *)
(* Probe traffic                                                       *)
(* ------------------------------------------------------------------ *)

let answered sw =
  Array.fold_left (fun acc h -> acc + Host.echo_replies h) 0 sw.hosts

(* Cycle the ordered host pairs of one switch, like the chaos rig. *)
let ping_next sw =
  let n = Array.length sw.hosts in
  let pairs = n * (n - 1) in
  let idx = sw.pings mod pairs in
  let src = idx / (n - 1) in
  let rest = idx mod (n - 1) in
  let dst = if rest >= src then rest + 1 else rest in
  sw.pings <- sw.pings + 1;
  Host.ping sw.hosts.(src)
    ~dst_mac:(Host.mac sw.hosts.(dst))
    ~dst_ip:(Host.ip sw.hosts.(dst))
    ~seq:sw.pings

let probe_all ?(grace = Sim_time.ms 25) t =
  (* Drain in-flight traffic first — a probe the canary gate sent just
     before rollback may still be on the wire, and its late reply would
     otherwise skew the answered count. *)
  Engine.run t.engine
    ~until:(Sim_time.add (Engine.now t.engine) (Sim_time.ms 2));
  let before =
    Array.map (fun sw -> answered sw) t.switches
  in
  let sent = ref 0 in
  Array.iter
    (fun sw ->
      let n = Array.length sw.hosts in
      for _ = 1 to n * (n - 1) do
        ping_next sw;
        incr sent
      done)
    t.switches;
  Engine.run t.engine ~until:(Sim_time.add (Engine.now t.engine) grace);
  let got = ref 0 in
  Array.iteri
    (fun i sw -> got := !got + (answered sw - before.(i)))
    t.switches;
  !got = !sent

(* ------------------------------------------------------------------ *)
(* Hooks and gates                                                     *)
(* ------------------------------------------------------------------ *)

let link_handler link action =
  match (action : Fault.action) with
  | Fault.Down ->
      Link.set_up link false;
      Ok ()
  | Fault.Up ->
      Link.set_up link true;
      Link.set_impairments ~loss:0.0 ~jitter:0 link;
      Ok ()
  | Fault.Degrade { loss; jitter } -> (
      try
        Link.set_impairments ~loss ~jitter link;
        Ok ()
      with Invalid_argument msg -> Error msg)
  | Fault.Flaky _ | Fault.Crash | Fault.Restart ->
      Error "links only support down/up/degrade"

(* Make-before-break "make": the whole sandwich comes up before the
   device config flips — SS_2 in fail-standalone so the dataplane works
   while the controller handshake is still in flight (the canary warmup
   absorbs that). *)
let shadow_hook t sw map =
  let n = Array.length sw.hosts in
  let ss1 =
    Soft_switch.create t.engine ~name:(sw.name ^ "-ss1")
      ~ports:(Translator.required_ports map)
      ~miss:Soft_switch.Drop_on_miss ()
  in
  let ss2 =
    Soft_switch.create t.engine ~name:(sw.name ^ "-ss2") ~ports:n
      ~miss:Soft_switch.Send_to_controller ()
  in
  for i = 0 to n - 1 do
    ignore
      (Patch_port.connect
         (Soft_switch.node ss1, Translator.patch_port_of_logical i)
         (Soft_switch.node ss2, i))
  done;
  Translator.install ss1 map;
  let trunk =
    Link.connect ~a_to_b:Link.ten_gige ~b_to_a:Link.ten_gige
      (Legacy_switch.node sw.legacy, n)
      (Soft_switch.node ss1, Translator.trunk_port)
  in
  let target = "trunk:" ^ sw.name in
  if not (List.mem target (Fault.targets t.inj)) then
    Fault.register t.inj ~target (link_handler trunk);
  Soft_switch.set_connection_mode ss2 Soft_switch.Fail_standalone;
  let dpid = Sdnctl.Controller.attach_switch t.ctrl ss2 in
  let poller =
    Sdnctl.Stats_poller.create ~period:(Sim_time.ms 1) t.ctrl dpid
  in
  Sdnctl.Stats_poller.start poller;
  sw.ss1 <- Some ss1;
  sw.ss2 <- Some ss2;
  sw.trunk_link <- Some trunk;
  sw.poller <- Some poller;
  Ok ()

let rollback_hook _t sw () =
  (match sw.poller with
  | Some p ->
      Sdnctl.Stats_poller.stop p;
      sw.poller <- None
  | None -> ());
  (match sw.trunk_link with
  | Some l ->
      Link.set_up l false;
      sw.trunk_link <- None
  | None -> ())

let hooks t sw =
  {
    Migration.on_shadow = (fun map -> shadow_hook t sw map);
    on_commit = ignore;
    on_rollback = (fun () -> rollback_hook t sw ());
  }

(* The canary gate: record the switch's cumulative answered-probe count
   every tick, and breach when its growth rate collapses — the liveness
   SLO a cutover must not hurt. *)
let gate ?(wrap_probe = fun p -> p) t sw =
  let probe () =
    let now_ns = Sim_time.to_ns (Engine.now t.engine) in
    Telemetry.Timeseries.record sw.answered_series ~ts_ns:now_ns
      (float_of_int (answered sw));
    ping_next sw
  in
  Migration.slo_gate ~alerts:sw.alerts ~probe:(wrap_probe probe) ()

let plan sw ~num_hosts =
  {
    Migration.device = sw.dev;
    trunk_port = num_hosts;
    access_ports = List.init num_hosts Fun.id;
    base_vid = None;
  }

let member t i =
  let sw = t.switches.(i) in
  {
    Migration.Fleet.name = sw.name;
    plan = plan sw ~num_hosts:t.num_hosts;
    gate = Some (gate t sw);
    hooks = Some (hooks t sw);
  }

let fleet ?concurrency ?blast_radius ?breaker ?deadline t =
  Migration.Fleet.create t.engine ~wal:t.wal_ ?concurrency ?blast_radius
    ?breaker ?deadline ~seed:t.seed
    (List.init (Array.length t.switches) (member t))

(* ------------------------------------------------------------------ *)
(* Crash sweep                                                         *)
(* ------------------------------------------------------------------ *)

type point = {
  crash_after : int;
  crashed_at : string;
  resolution : string;
  recovered : string;
  consistent : bool;
  idempotent : bool;
  probe_ok : bool;
  wal_records : int;
}

type sweep = {
  seed : int;
  num_hosts : int;
  baseline_records : int;
  baseline_status : string;
  baseline_probe_ok : bool;
  points : point list;
  ok : bool;
}

let status_string st = Format.asprintf "%a" Migration.pp_status st

(* One fresh single-switch rig, one migration, optionally with a crash
   armed at the [crash_after]-th WAL append. *)
let sweep_run ~seed ~num_hosts ~crash_after =
  let* t = build ~num_switches:1 ~num_hosts ~seed () in
  let sw = t.switches.(0) in
  let m =
    Migration.create t.engine ~wal:t.wal_ ~txn_id:sw.name
      ~rng:(Rng.create seed) ~gate:(gate t sw) ~hooks:(hooks t sw)
      (plan sw ~num_hosts)
  in
  (match crash_after with
  | Some k -> Mgmt.Txn.arm_crash t.wal_ ~after:k
  | None -> ());
  let status = Migration.run m in
  Ok (t, sw, status)

let candidate_for sw ~num_hosts =
  let map = Port_map.make ~access_ports:(List.init num_hosts Fun.id) () in
  Manager.candidate_config ~device:sw.dev ~trunk_port:num_hosts ~map ()

(* The config-consistency invariant: after recovery the running config
   is exactly the pre-migration config (rolled back) or exactly the
   candidate (committed) — never a mix, never anything else. *)
let consistent_with sw ~num_hosts (st : Migration.status) =
  let running = Mgmt.Device.running_config sw.dev in
  match st with
  | Migration.Committed ->
      Mgmt.Device_config.equal_modes running (candidate_for sw ~num_hosts)
  | Migration.Rolled_back _ -> Mgmt.Device_config.equal_modes running sw.before
  | _ -> false

let crash_sweep ?(num_hosts = 2) ~seed () =
  (* Learn the WAL shape from an uncrashed run. *)
  let* t0, _sw0, baseline_status = sweep_run ~seed ~num_hosts ~crash_after:None in
  let baseline_records = Mgmt.Txn.length t0.wal_ in
  let baseline_probe_ok = probe_all t0 in
  let* () =
    match baseline_status with
    | Migration.Committed -> Ok ()
    | st ->
        Error
          (Printf.sprintf "crash sweep baseline did not commit: %s"
             (status_string st))
  in
  let run_point k =
    let* t, sw, status = sweep_run ~seed ~num_hosts ~crash_after:(Some k) in
    let crashed_at =
      match status with
      | Migration.Crashed where -> where
      | st -> Printf.sprintf "no crash fired (%s)" (status_string st)
    in
    (* Recover from what a fresh process would read off disk: the
       serialized log, round-tripped. *)
    let* parsed =
      Result.map_error
        (fun e -> "WAL round-trip failed: " ^ e)
        (Mgmt.Txn.of_string (Mgmt.Txn.to_string t.wal_))
    in
    let resolution =
      Format.asprintf "%a" Mgmt.Txn.pp_resolution
        (Mgmt.Txn.resolve parsed ~txn:sw.name)
    in
    let* r1 =
      Migration.recover ~wal:parsed ~txn_id:sw.name ~device:sw.dev
        ~hooks:(hooks t sw) ()
    in
    let consistent = consistent_with sw ~num_hosts r1.Migration.status in
    let len1 = Mgmt.Txn.length parsed in
    let* r2 =
      Migration.recover ~wal:parsed ~txn_id:sw.name ~device:sw.dev
        ~hooks:(hooks t sw) ()
    in
    let idempotent =
      Mgmt.Txn.length parsed = len1
      && consistent_with sw ~num_hosts r2.Migration.status
      && (match (r1.Migration.status, r2.Migration.status) with
         | Migration.Committed, Migration.Committed -> true
         | Migration.Rolled_back _, Migration.Rolled_back _ -> true
         | a, b -> a = b)
    in
    let probe_ok = probe_all t in
    Ok
      {
        crash_after = k;
        crashed_at;
        resolution;
        recovered = status_string r1.Migration.status;
        consistent;
        idempotent;
        probe_ok;
        wal_records = len1;
      }
  in
  let* points =
    List.fold_left
      (fun acc k ->
        let* acc = acc in
        let* p = run_point k in
        Ok (p :: acc))
      (Ok [])
      (List.init baseline_records (fun i -> i + 1))
    |> Result.map List.rev
  in
  let ok =
    baseline_probe_ok
    && List.for_all
         (fun p -> p.consistent && p.idempotent && p.probe_ok)
         points
  in
  Ok
    {
      seed;
      num_hosts;
      baseline_records;
      baseline_status = status_string baseline_status;
      baseline_probe_ok;
      points;
      ok;
    }

let render_sweep s =
  let b = Buffer.create 1024 in
  Printf.bprintf b
    "migration crash sweep — seed %d, %d hosts, baseline %s (%d WAL \
     records, probe %s)\n"
    s.seed s.num_hosts s.baseline_status s.baseline_records
    (if s.baseline_probe_ok then "ok" else "FAILED");
  List.iter
    (fun p ->
      Printf.bprintf b
        "  crash@%-2d at %-9s -> %-42s -> %-12s consistent=%b idempotent=%b \
         probe=%b records=%d\n"
        p.crash_after p.crashed_at p.resolution p.recovered p.consistent
        p.idempotent p.probe_ok p.wal_records)
    s.points;
  Printf.bprintf b "verdict: %s\n" (if s.ok then "PASS" else "FAIL");
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Canary breach                                                       *)
(* ------------------------------------------------------------------ *)

type breach = {
  seed : int;
  member : string;
  member_status : string;
  rollback_reason : string;
  aborted : bool;
  skipped : int;
  rollbacks_total : int;
  breaker_trips : int;
  probe_ok : bool;
  panel : string;
  ok : bool;
  postmortem : Telemetry.Postmortem.snapshot option;
}

(* The breach runs under a freshly installed flight recorder: the trunk
   degradation, the liveness alert going firing, the canary rollback and
   the fleet abort all land in the event log, and the end of the run
   captures them as a post-mortem snapshot. *)
let rec canary_breach ?(num_hosts = 2) ~seed () =
  let* t = build ~num_switches:3 ~num_hosts ~seed () in
  let result, _retained =
    Telemetry.Eventlog.with_recorder (fun recorder ->
        Telemetry.Eventlog.set_clock
          (Some (fun () -> Sim_time.to_ns (Engine.now t.engine)));
        Fun.protect
          ~finally:(fun () -> Telemetry.Eventlog.set_clock None)
          (fun () -> canary_breach_recorded t ~recorder ~seed))
  in
  result

and canary_breach_recorded t ~recorder ~seed =
  let sw0 = t.switches.(0) in
  (* Member 0's gate also schedules the attack: 6 ms after its first
     canary probe (i.e. past the 5 ms warmup) the freshly cut-over
     trunk goes to 95% loss. *)
  let armed = ref false in
  let wrap_probe probe () =
    if not !armed then begin
      armed := true;
      Fault.schedule t.inj
        [
          {
            Fault.after = Sim_time.ms 6;
            target = "trunk:" ^ sw0.name;
            action = Fault.Degrade { loss = 0.95; jitter = 0 };
          };
        ]
    end;
    probe ()
  in
  let members =
    List.init (Array.length t.switches) (fun i ->
        if i = 0 then
          {
            (member t i) with
            Migration.Fleet.gate = Some (gate ~wrap_probe t sw0);
          }
        else member t i)
  in
  let fl =
    Migration.Fleet.create t.engine ~wal:t.wal_ ~concurrency:1 ~blast_radius:0
      ~seed members
  in
  Migration.Fleet.run fl;
  let r = Migration.Fleet.report fl in
  let member_status, rollback_reason =
    match List.assoc_opt sw0.name r.Migration.Fleet.members with
    | Some (Migration.Fleet.Done (Migration.Rolled_back why) as st) ->
        (Format.asprintf "%a" Migration.pp_status
           (match st with Migration.Fleet.Done s -> s | _ -> assert false),
         why)
    | Some st ->
        ( Format.asprintf "%a"
            (fun ppf -> function
              | Migration.Fleet.Waiting -> Format.pp_print_string ppf "waiting"
              | Migration.Fleet.Migrating s ->
                  Format.fprintf ppf "migrating:%s" (Migration.stage_name s)
              | Migration.Fleet.Done s -> Migration.pp_status ppf s
              | Migration.Fleet.Skipped why ->
                  Format.fprintf ppf "skipped (%s)" why)
            st,
          "" )
    | None -> ("missing", "")
  in
  let probe_ok = probe_all t in
  let ok =
    r.Migration.Fleet.aborted <> None
    && rollback_reason <> ""
    && Migration.Fleet.rollbacks_total fl = 1
    && r.Migration.Fleet.skipped = 2
    && probe_ok
  in
  (* Capture-at-finalize: the trunk degradation is the trigger, the
     canary's liveness series the evidence. *)
  let postmortem =
    Telemetry.Postmortem.capture ~series:[ sw0.answered_series ]
      ~scenario:"canary-breach" ~seed
      ~captured_ns:(Sim_time.to_ns (Engine.now t.engine))
      recorder
  in
  Ok
    {
      seed;
      member = sw0.name;
      member_status;
      rollback_reason;
      aborted = r.Migration.Fleet.aborted <> None;
      skipped = r.Migration.Fleet.skipped;
      rollbacks_total = Migration.Fleet.rollbacks_total fl;
      breaker_trips = r.Migration.Fleet.breaker_trips;
      probe_ok;
      panel = Migration.Fleet.render fl;
      ok;
      postmortem;
    }

let render_breach br =
  let b = Buffer.create 512 in
  Printf.bprintf b "canary breach — seed %d\n" br.seed;
  Printf.bprintf b "  member %s: %s\n" br.member br.member_status;
  Printf.bprintf b "  rollback reason: %s\n"
    (if br.rollback_reason = "" then "(none)" else br.rollback_reason);
  Printf.bprintf b
    "  fleet aborted=%b skipped=%d rollbacks_total=%d breaker_trips=%d \
     probe=%s\n"
    br.aborted br.skipped br.rollbacks_total br.breaker_trips
    (if br.probe_ok then "ok" else "FAILED");
  Buffer.add_string b br.panel;
  (match br.postmortem with
  | None -> Printf.bprintf b "post-mortem: none captured\n"
  | Some s ->
      let tl = Telemetry.Postmortem.analyze s in
      Printf.bprintf b "post-mortem: %d event(s), root cause %s\n"
        (List.length s.Telemetry.Postmortem.events)
        (match tl.Telemetry.Postmortem.root_cause with
        | Some e ->
            e.Telemetry.Eventlog.stream ^ "." ^ e.Telemetry.Eventlog.name
        | None -> "unknown"));
  Printf.bprintf b "verdict: %s\n" (if br.ok then "PASS" else "FAIL");
  Buffer.contents b
