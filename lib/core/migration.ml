open Simnet

let ( let* ) = Result.bind

(* ------------------------------------------------------------------ *)
(* Circuit breaker                                                     *)
(* ------------------------------------------------------------------ *)

module Breaker = struct
  type state = Closed | Open | Half_open

  type t = {
    threshold : int;
    cooldown : Sim_time.span;
    mutable failures : int; (* consecutive *)
    mutable opened_at : Sim_time.t option;
    mutable trips : int;
  }

  let create ?(threshold = 3) ?(cooldown = Sim_time.ms 100) () =
    if threshold < 1 then invalid_arg "Breaker.create: threshold < 1";
    if cooldown <= 0 then invalid_arg "Breaker.create: cooldown <= 0";
    { threshold; cooldown; failures = 0; opened_at = None; trips = 0 }

  let reopen_at t = Option.map (fun at -> Sim_time.add at t.cooldown) t.opened_at

  let state t ~now =
    match t.opened_at with
    | None -> Closed
    | Some at -> if Sim_time.(now < Sim_time.add at t.cooldown) then Open else Half_open

  let allow t ~now = state t ~now <> Open

  let record t ~now ~ok =
    if ok then begin
      t.failures <- 0;
      t.opened_at <- None
    end
    else begin
      t.failures <- t.failures + 1;
      match state t ~now with
      | Half_open ->
          (* The probe failed: re-open for another full cooldown. *)
          t.trips <- t.trips + 1;
          t.opened_at <- Some now
      | Closed when t.failures >= t.threshold ->
          t.trips <- t.trips + 1;
          t.opened_at <- Some now
      | Closed | Open -> ()
    end

  let trips t = t.trips
  let consecutive_failures t = t.failures

  let pp_state ppf s =
    Format.pp_print_string ppf
      (match s with Closed -> "closed" | Open -> "open" | Half_open -> "half-open")
end

(* ------------------------------------------------------------------ *)
(* Stages, gates, plans                                                *)
(* ------------------------------------------------------------------ *)

type stage = Precheck | Shadow | Canary | Commit

let stages = [ Precheck; Shadow; Canary; Commit ]

let stage_name = function
  | Precheck -> "precheck"
  | Shadow -> "shadow"
  | Canary -> "canary"
  | Commit -> "commit"

type gate = {
  probe : unit -> unit;
  healthy : now_ns:int -> (unit, string) result;
  interval : Sim_time.span;
  warmup : Sim_time.span;
  window : Sim_time.span;
}

let gate ?(interval = Sim_time.us 500) ?(warmup = Sim_time.ms 5)
    ?(window = Sim_time.ms 15) ~probe ~healthy () =
  if interval <= 0 then invalid_arg "Migration.gate: interval must be positive";
  if window <= 0 then invalid_arg "Migration.gate: window must be positive";
  if warmup < 0 then invalid_arg "Migration.gate: negative warmup";
  if warmup >= window then invalid_arg "Migration.gate: warmup >= window";
  { probe; healthy; interval; warmup; window }

let slo_gate ~alerts ?rules ?interval ?warmup ?window ~probe () =
  let healthy ~now_ns =
    Telemetry.Alert.eval alerts ~now_ns;
    let firing = Telemetry.Alert.firing alerts in
    let firing =
      match rules with
      | None -> firing
      | Some only -> List.filter (fun r -> List.mem r only) firing
    in
    match firing with
    | [] -> Ok ()
    | rs -> Error (Printf.sprintf "canary SLO breach: %s" (String.concat ", " rs))
  in
  gate ?interval ?warmup ?window ~probe ~healthy ()

type plan = {
  device : Mgmt.Device.t;
  trunk_port : int;
  access_ports : int list;
  base_vid : int option;
}

let plan_detail p =
  Printf.sprintf "device=%s trunk=%d access=%s base_vid=%s"
    (Mgmt.Device.hostname p.device)
    p.trunk_port
    (match p.access_ports with
    | [] -> "-"
    | ps -> String.concat "," (List.map string_of_int ps))
    (match p.base_vid with None -> "-" | Some v -> string_of_int v)

(* Parse a [begin] detail back into the plan parameters (the device
   handle itself is supplied by the recovering process). *)
let plan_of_detail detail =
  let kvs = List.filter (fun s -> s <> "") (String.split_on_char ' ' detail) in
  let find key =
    List.find_map
      (fun s ->
        match String.index_opt s '=' with
        | Some i when String.sub s 0 i = key ->
            Some (String.sub s (i + 1) (String.length s - i - 1))
        | _ -> None)
      kvs
  in
  let int_field key s =
    match int_of_string_opt s with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "begin record: bad %s %S" key s)
  in
  match (find "device", find "trunk", find "access", find "base_vid") with
  | Some host, Some trunk, Some access, Some base ->
      let* trunk = int_field "trunk" trunk in
      let* access_ports =
        if access = "-" then Ok []
        else
          List.fold_left
            (fun acc s ->
              let* acc = acc in
              let* p = int_field "access port" s in
              Ok (p :: acc))
            (Ok [])
            (String.split_on_char ',' access)
          |> Result.map List.rev
      in
      let* base_vid =
        if base = "-" then Ok None
        else Result.map Option.some (int_field "base_vid" base)
      in
      Ok (host, trunk, access_ports, base_vid)
  | _ -> Error (Printf.sprintf "begin record: unparseable plan detail %S" detail)

type hooks = {
  on_shadow : Port_map.t -> (unit, string) result;
  on_commit : unit -> unit;
  on_rollback : unit -> unit;
}

let no_hooks =
  { on_shadow = (fun _ -> Ok ()); on_commit = ignore; on_rollback = ignore }

type status =
  | Pending
  | Running of stage
  | Committed
  | Rolled_back of string
  | Failed of string
  | Crashed of string

let status_terminal = function
  | Pending | Running _ -> false
  | Committed | Rolled_back _ | Failed _ | Crashed _ -> true

let pp_status ppf = function
  | Pending -> Format.pp_print_string ppf "pending"
  | Running s -> Format.fprintf ppf "running %s" (stage_name s)
  | Committed -> Format.pp_print_string ppf "committed"
  | Rolled_back why -> Format.fprintf ppf "rolled back (%s)" why
  | Failed why -> Format.fprintf ppf "failed (%s)" why
  | Crashed where -> Format.fprintf ppf "crashed (%s)" where

(* ------------------------------------------------------------------ *)
(* The per-switch machine                                              *)
(* ------------------------------------------------------------------ *)

type t = {
  engine : Engine.t;
  wal : Mgmt.Txn.t;
  id : string;
  plan : plan;
  retry : Mgmt.Retry.policy;
  rng : Rng.t option;
  budget : Mgmt.Retry.budget option;
  g : gate option;
  hooks : hooks;
  mutable status : status;
  mutable map : Port_map.t option;
  mutable rollback_count : int;
  mutable rolling_back : bool;
  mutable dead : bool; (* crash fired; every pending closure is inert *)
  mutable observers : (stage -> unit) list;
  mutable done_cb : status -> unit;
}

let create engine ~wal ?txn_id ?(retry = Mgmt.Retry.default) ?rng ?deadline
    ?gate:g ?(hooks = no_hooks) plan =
  let id =
    match txn_id with Some id -> id | None -> Mgmt.Device.hostname plan.device
  in
  {
    engine;
    wal;
    id;
    plan;
    retry;
    rng;
    budget = Option.map Mgmt.Retry.budget deadline;
    g;
    hooks;
    status = Pending;
    map = None;
    rollback_count = 0;
    rolling_back = false;
    dead = false;
    observers = [];
    done_cb = ignore;
  }

let txn_id t = t.id
let status t = t.status
let port_map t = t.map
let rollbacks t = t.rollback_count
let on_stage t f = t.observers <- t.observers @ [ f ]

let journal t entry = ignore (Mgmt.Txn.append t.wal ~txn:t.id entry)

(* Flight-recorder events, correlated on the txn id — the same id the
   WAL stream hashes, so a post-mortem joins stage boundaries to the
   journal records they bracket.  Guarded at every call site. *)
let event t ?level ?detail name =
  Telemetry.Eventlog.emit ?level
    ~ts_ns:(Sim_time.to_ns (Engine.now t.engine))
    ~corr:(Telemetry.Eventlog.corr_of_string t.id)
    ?detail ~stream:"migration" name

let crash_point t =
  if t.rolling_back then "rollback"
  else match t.status with Running s -> stage_name s | _ -> "begin"

(* Run [f], absorbing an armed WAL crash: the record is persisted but
   the "manager process" is gone — the machine goes inert and nobody is
   called back.  Recovery owns the rest. *)
let guard t f =
  if not t.dead then
    try f ()
    with Mgmt.Txn.Crashed ->
      t.status <- Crashed (crash_point t);
      t.dead <- true;
      if Telemetry.Eventlog.enabled () then
        event t ~level:Telemetry.Eventlog.Error
          ~detail:(t.id ^ " at " ^ crash_point t)
          "crashed"

let after t span f = Engine.schedule_after t.engine span (fun () -> guard t f)

let finish t status =
  t.status <- status;
  if Telemetry.Eventlog.enabled () then begin
    match status with
    | Committed -> event t ~detail:t.id "committed"
    | Rolled_back why -> event t ~detail:(t.id ^ " " ^ why) "rolled-back"
    | Failed why ->
        event t ~level:Telemetry.Eventlog.Error ~detail:(t.id ^ " " ^ why)
          "failed"
    | Pending | Running _ | Crashed _ -> ()
  end;
  (match status with
  | Rolled_back _ ->
      Telemetry.Registry.Counter.inc
        (Telemetry.Registry.Counter.v
           ~help:"migrations rolled back, by device"
           ~labels:[ ("device", t.id) ]
           "migration_rollbacks_total")
  | Committed ->
      Telemetry.Registry.Counter.inc
        (Telemetry.Registry.Counter.v
           ~help:"migrations committed, by device"
           ~labels:[ ("device", t.id) ]
           "migration_commits_total")
  | _ -> ());
  t.done_cb status

(* Undo the device side, guarded by state inspection: NAPALM rollback
   restores "the config before the last commit" and is not idempotent,
   so only call it when the running config actually is our candidate.
   Deliberately not charged to the forward-path deadline budget. *)
let device_rollback t =
  let napalm = Mgmt.Device.napalm t.plan.device in
  napalm.Mgmt.Napalm.discard ();
  match t.map with
  | None -> Ok "no mapping computed; device untouched"
  | Some map ->
      let candidate =
        Manager.candidate_config ~device:t.plan.device
          ~trunk_port:t.plan.trunk_port ~map ()
      in
      let running = Mgmt.Device.running_config t.plan.device in
      if Mgmt.Device_config.equal_modes running candidate then
        match
          Mgmt.Retry.run ~policy:t.retry ~op:"migration.rollback" ?rng:t.rng
            napalm.Mgmt.Napalm.rollback
        with
        | Ok () -> Ok "rolled device config back"
        | Error e -> Error e
      else Ok "running config is not the candidate; no device rollback needed"

let rollback t ~reason =
  t.rolling_back <- true;
  if Telemetry.Eventlog.enabled () then
    event t ~level:Telemetry.Eventlog.Warn ~detail:(t.id ^ " " ^ reason)
      "rollback";
  journal t (Mgmt.Txn.Rollback reason);
  match device_rollback t with
  | Error e ->
      journal t (Mgmt.Txn.Note ("device rollback failed: " ^ e));
      finish t
        (Failed (Printf.sprintf "rollback failed: %s — device state unknown" e))
  | Ok note ->
      t.hooks.on_rollback ();
      journal t (Mgmt.Txn.Note note);
      journal t Mgmt.Txn.Rolled_back;
      t.rollback_count <- t.rollback_count + 1;
      finish t (Rolled_back reason)

let rec enter t stage =
  t.status <- Running stage;
  if Telemetry.Eventlog.enabled () then
    event t ~detail:(t.id ^ " " ^ stage_name stage) "stage";
  journal t (Mgmt.Txn.Stage_start (stage_name stage));
  List.iter (fun f -> f stage) t.observers;
  match stage with
  | Precheck -> do_precheck t
  | Shadow -> do_shadow t
  | Canary -> do_canary t
  | Commit -> do_commit t

and do_precheck t =
  match
    Manager.precheck ~device:t.plan.device ~trunk_port:t.plan.trunk_port
      ~access_ports:t.plan.access_ports ?base_vid:t.plan.base_vid ()
  with
  | Error e -> rollback t ~reason:("precheck failed: " ^ e)
  | Ok (map, _facts, _steps) ->
      t.map <- Some map;
      journal t (Mgmt.Txn.Stage_done "precheck");
      after t 0 (fun () -> enter t Shadow)

and do_shadow t =
  let map = Option.get t.map in
  (* Make before break: the shadow artifacts (SS_1/SS_2, patches, trunk
     link, controller attachment) come up first; only then is the device
     config flipped. *)
  match t.hooks.on_shadow map with
  | Error e -> rollback t ~reason:("shadow build failed: " ^ e)
  | Ok () -> (
      match
        Manager.push_config ~device:t.plan.device ~trunk_port:t.plan.trunk_port
          ~map ~retry:t.retry ?rng:t.rng ?budget:t.budget ()
      with
      | Error e -> rollback t ~reason:("config push failed: " ^ e)
      | Ok _diff ->
          journal t (Mgmt.Txn.Stage_done "shadow");
          after t 0 (fun () -> enter t Canary))

and do_canary t =
  match t.g with
  | None ->
      journal t (Mgmt.Txn.Stage_done "canary");
      after t 0 (fun () -> enter t Commit)
  | Some g ->
      let started = Engine.now t.engine in
      let rec tick () =
        if t.dead || status_terminal t.status then ()
        else
          let now = Engine.now t.engine in
          let elapsed = Sim_time.diff now started in
          if elapsed >= g.window then begin
            journal t (Mgmt.Txn.Stage_done "canary");
            after t 0 (fun () -> enter t Commit)
          end
          else begin
            g.probe ();
            let verdict =
              (* Collect data from the first tick, but pass no judgment
                 during warmup: the control channel may still be
                 handshaking and the first stats still in flight. *)
              if elapsed >= g.warmup then g.healthy ~now_ns:(Sim_time.to_ns now)
              else Ok ()
            in
            match verdict with
            | Error reason -> rollback t ~reason
            | Ok () -> after t g.interval tick
          end
      in
      after t g.interval tick

and do_commit t =
  t.hooks.on_commit ();
  journal t (Mgmt.Txn.Stage_done "commit");
  journal t Mgmt.Txn.Committed;
  finish t Committed

let start t ~on_done =
  (match t.status with
  | Pending -> ()
  | _ -> invalid_arg "Migration.start: already started");
  t.done_cb <- on_done;
  after t 0 (fun () ->
      journal t (Mgmt.Txn.Begin (plan_detail t.plan));
      enter t Precheck)

let run t =
  start t ~on_done:ignore;
  let continue = ref true in
  while (not (status_terminal t.status)) && !continue do
    continue := Engine.step t.engine
  done;
  t.status

(* ------------------------------------------------------------------ *)
(* Crash recovery                                                      *)
(* ------------------------------------------------------------------ *)

type recovery = {
  txn : string;
  resolution : Mgmt.Txn.resolution;
  actions : string list;
  status : status;
}

let recover ~wal ~txn_id ~device ?(hooks = no_hooks)
    ?(retry = Mgmt.Retry.default) () =
  let open Mgmt in
  let resolution = Txn.resolve wal ~txn:txn_id in
  let records = Txn.records_of wal ~txn:txn_id in
  let actions = ref [] in
  let act fmt = Printf.ksprintf (fun s -> actions := s :: !actions) fmt in
  let result status =
    { txn = txn_id; resolution; actions = List.rev !actions; status }
  in
  (* Recompute the target configuration from the WAL alone — the crashed
     process's plan lives in the [begin] record. *)
  let candidate () =
    match
      List.find_map
        (fun r -> match r.Txn.entry with Txn.Begin d -> Some d | _ -> None)
        records
    with
    | None -> Ok None
    | Some d -> (
        let* host, trunk, access_ports, base_vid = plan_of_detail d in
        if host <> Device.hostname device then
          Error
            (Printf.sprintf "WAL plan is for device %s, not %s" host
               (Device.hostname device))
        else
          match Port_map.make ?base_vid ~access_ports () with
          | map ->
              Ok (Some (Manager.candidate_config ~device ~trunk_port:trunk ~map ()))
          | exception Invalid_argument _ ->
              (* The plan never survived precheck; nothing was applied. *)
              Ok None)
  in
  match resolution with
  | Txn.Fresh ->
      act "nothing journaled; nothing to recover";
      Ok (result (Rolled_back "never started"))
  | Txn.Committed_ -> (
      let* cand = candidate () in
      match cand with
      | Some c when Device_config.equal_modes (Device.running_config device) c ->
          act "verified running config matches the committed candidate";
          Ok (result Committed)
      | Some _ ->
          act "running config differs from the committed candidate";
          Ok
            (result
               (Failed
                  "WAL says committed but the running config is not the \
                   candidate — device state unknown"))
      | None ->
          act "no plan in WAL to verify against; trusting the committed record";
          Ok (result Committed))
  | Txn.Rolled_back_ why ->
      act "transaction already terminal in WAL; nothing to do";
      Ok (result (Rolled_back why))
  | Txn.Needs_rollback why -> (
      let* cand = candidate () in
      let napalm = Device.napalm device in
      napalm.Napalm.discard ();
      act "discarded any staged candidate";
      let undo =
        match cand with
        | Some c when Device_config.equal_modes (Device.running_config device) c -> (
            match
              Retry.run ~policy:retry ~op:"migration.recover.rollback"
                napalm.Napalm.rollback
            with
            | Ok () ->
                act "running config was the candidate; rolled device back";
                Ok ()
            | Error e -> Error e)
        | _ ->
            act "running config is not the candidate; no device rollback needed";
            Ok ()
      in
      match undo with
      | Error e ->
          (* Leave the WAL open so a later recovery attempt retries. *)
          Ok
            (result
               (Failed
                  (Printf.sprintf
                     "recovery rollback failed: %s — device state unknown" e)))
      | Ok () ->
          hooks.on_rollback ();
          let already_decided =
            List.exists
              (fun r ->
                match r.Txn.entry with Txn.Rollback _ -> true | _ -> false)
              records
          in
          if not already_decided then
            ignore (Txn.append wal ~txn:txn_id (Txn.Rollback ("recovery: " ^ why)));
          ignore (Txn.append wal ~txn:txn_id Txn.Rolled_back);
          act "journaled rolled-back";
          Ok (result (Rolled_back why)))

let pp_recovery ppf r =
  Format.fprintf ppf "@[<v>txn %s: %a -> %a" r.txn Mgmt.Txn.pp_resolution
    r.resolution pp_status r.status;
  List.iter (fun a -> Format.fprintf ppf "@,  %s" a) r.actions;
  Format.fprintf ppf "@]"

(* ------------------------------------------------------------------ *)
(* Fleet orchestration                                                 *)
(* ------------------------------------------------------------------ *)

module Fleet = struct
  type migration = t

  let machine_create = create
  let machine_start = start
  let machine_rollbacks = rollbacks
  let machine_on_stage = on_stage

  type member = {
    name : string;
    plan : plan;
    gate : gate option;
    hooks : hooks option;
  }

  type member_status =
    | Waiting
    | Migrating of stage
    | Done of status
    | Skipped of string

  type state = Idle | Running | Paused | Aborted of string | Done

  type slot = {
    member : member;
    mutable mstatus : member_status;
    mutable machine : migration option;
  }

  type t = {
    engine : Engine.t;
    wal : Mgmt.Txn.t;
    concurrency : int;
    blast_radius : int;
    brk : Breaker.t;
    retry : Mgmt.Retry.policy;
    deadline : Sim_time.span option;
    seed : int;
    slots : slot array;
    mutable next : int;
    mutable st : state;
    mutable in_flight : int;
    mutable failures : int;
    mutable pump_scheduled : bool;
  }

  let create engine ~wal ?(concurrency = 1) ?(blast_radius = 0) ?breaker
      ?(retry = Mgmt.Retry.default) ?deadline ?(seed = 42) members =
    if members = [] then invalid_arg "Fleet.create: no members";
    if concurrency < 1 then invalid_arg "Fleet.create: concurrency < 1";
    if blast_radius < 0 then invalid_arg "Fleet.create: blast_radius < 0";
    let names = List.map (fun m -> m.name) members in
    if List.length (List.sort_uniq String.compare names) <> List.length names
    then invalid_arg "Fleet.create: duplicate member names";
    let brk =
      match breaker with Some b -> b | None -> Breaker.create ()
    in
    {
      engine;
      wal;
      concurrency;
      blast_radius;
      brk;
      retry;
      deadline;
      seed;
      slots =
        Array.of_list
          (List.map
             (fun m -> { member = m; mstatus = Waiting; machine = None })
             members);
      next = 0;
      st = Idle;
      in_flight = 0;
      failures = 0;
      pump_scheduled = false;
    }

  let state fl = fl.st
  let in_flight fl = fl.in_flight
  let breaker fl = fl.brk

  let fleet_event fl ?level ?corr ?detail name =
    Telemetry.Eventlog.emit ?level
      ~ts_ns:(Sim_time.to_ns (Engine.now fl.engine))
      ~corr:
        (match corr with
        | Some c -> c
        | None -> Telemetry.Eventlog.corr_of_string "fleet")
      ?detail ~stream:"fleet" name

  let rollbacks_total fl =
    Array.fold_left
      (fun acc s ->
        match s.machine with Some m -> acc + machine_rollbacks m | None -> acc)
      0 fl.slots

  let abort fl ~reason =
    match fl.st with
    | Done | Aborted _ -> ()
    | Idle | Running | Paused ->
        if Telemetry.Eventlog.enabled () then
          fleet_event fl ~level:Telemetry.Eventlog.Error ~detail:reason "abort";
        fl.st <- Aborted reason;
        for i = fl.next to Array.length fl.slots - 1 do
          fl.slots.(i).mstatus <- Skipped ("fleet aborted: " ^ reason)
        done;
        fl.next <- Array.length fl.slots

  let rec pump fl =
    match fl.st with
    | Idle | Paused | Done | Aborted _ -> ()
    | Running ->
        if fl.next >= Array.length fl.slots then begin
          if fl.in_flight = 0 then fl.st <- Done
        end
        else if fl.in_flight < fl.concurrency then begin
          let now = Engine.now fl.engine in
          if Breaker.allow fl.brk ~now then begin
            let idx = fl.next in
            fl.next <- idx + 1;
            launch fl fl.slots.(idx) idx;
            pump fl
          end
          else
            (* Breaker open: try again when its cooldown ends. *)
            match Breaker.reopen_at fl.brk with
            | Some at when Sim_time.(now < at) ->
                if not fl.pump_scheduled then begin
                  fl.pump_scheduled <- true;
                  Engine.schedule_at fl.engine at (fun () ->
                      fl.pump_scheduled <- false;
                      pump fl)
                end
            | _ -> ()
        end

  and launch fl slot idx =
    (* One derived rng per member: concurrent retry storms
       de-synchronise, deterministically in the fleet seed. *)
    let rng = Rng.create (fl.seed + (31 * (idx + 1))) in
    let m =
      machine_create fl.engine ~wal:fl.wal ~txn_id:slot.member.name
        ~retry:fl.retry ~rng ?deadline:fl.deadline ?gate:slot.member.gate
        ?hooks:slot.member.hooks slot.member.plan
    in
    slot.machine <- Some m;
    slot.mstatus <- Migrating Precheck;
    machine_on_stage m (fun st -> slot.mstatus <- Migrating st);
    fl.in_flight <- fl.in_flight + 1;
    if Telemetry.Eventlog.enabled () then
      fleet_event fl ~level:Telemetry.Eventlog.Debug
        ~corr:(Telemetry.Eventlog.corr_of_string slot.member.name)
        ~detail:slot.member.name "launch";
    machine_start m ~on_done:(fun st -> settle fl slot st)

  and settle fl slot st =
    slot.mstatus <- Done st;
    fl.in_flight <- fl.in_flight - 1;
    let ok = match st with Committed -> true | _ -> false in
    if Telemetry.Eventlog.enabled () then
      fleet_event fl
        ~level:(if ok then Telemetry.Eventlog.Info else Telemetry.Eventlog.Warn)
        ~corr:(Telemetry.Eventlog.corr_of_string slot.member.name)
        ~detail:
          (Printf.sprintf "%s %s" slot.member.name
             (Format.asprintf "%a" pp_status st))
        "settle";
    Breaker.record fl.brk ~now:(Engine.now fl.engine) ~ok;
    if not ok then begin
      fl.failures <- fl.failures + 1;
      if fl.failures > fl.blast_radius then
        abort fl
          ~reason:
            (Printf.sprintf "blast radius exceeded (%d failed, %d tolerated)"
               fl.failures fl.blast_radius)
    end;
    pump fl

  let start fl =
    match fl.st with
    | Idle ->
        fl.st <- Running;
        pump fl
    | _ -> invalid_arg "Fleet.start: already started"

  let pause fl = match fl.st with Running -> fl.st <- Paused | _ -> ()

  let resume fl =
    match fl.st with
    | Paused ->
        fl.st <- Running;
        pump fl
    | _ -> ()

  let settled fl =
    match fl.st with
    | Done -> true
    | Aborted _ -> fl.in_flight = 0
    | Idle | Running | Paused -> false

  let run fl =
    (match fl.st with Idle -> start fl | _ -> ());
    let continue = ref true in
    while (not (settled fl)) && !continue do
      continue := Engine.step fl.engine
    done

  let progress fl =
    Array.to_list (Array.map (fun s -> (s.member.name, s.mstatus)) fl.slots)

  type report = {
    total : int;
    committed : int;
    rolled_back : int;
    failed : int;
    skipped : int;
    aborted : string option;
    breaker_trips : int;
    members : (string * member_status) list;
  }

  let report fl =
    let count p =
      Array.fold_left (fun acc s -> if p s.mstatus then acc + 1 else acc) 0 fl.slots
    in
    {
      total = Array.length fl.slots;
      committed = count (function Done Committed -> true | _ -> false);
      rolled_back = count (function Done (Rolled_back _) -> true | _ -> false);
      failed =
        count (function Done (Failed _ | Crashed _) -> true | _ -> false);
      skipped = count (function Skipped _ -> true | _ -> false);
      aborted = (match fl.st with Aborted r -> Some r | _ -> None);
      breaker_trips = Breaker.trips fl.brk;
      members = progress fl;
    }

  let pp_member_status ppf = function
    | Waiting -> Format.pp_print_string ppf "waiting"
    | Migrating s -> Format.fprintf ppf "migrating:%s" (stage_name s)
    | Done st -> pp_status ppf st
    | Skipped why -> Format.fprintf ppf "skipped (%s)" why

  let pp_report ppf r =
    Format.fprintf ppf
      "@[<v>fleet: %d total, %d committed, %d rolled back, %d failed, %d \
       skipped%s (breaker trips %d)"
      r.total r.committed r.rolled_back r.failed r.skipped
      (match r.aborted with
      | None -> ""
      | Some reason -> Printf.sprintf ", ABORTED: %s" reason)
      r.breaker_trips;
    List.iter
      (fun (name, st) ->
        Format.fprintf ppf "@,  %-12s %a" name pp_member_status st)
      r.members;
    Format.fprintf ppf "@]"

  let state_string fl =
    match fl.st with
    | Idle -> "idle"
    | Running -> "running"
    | Paused -> "paused"
    | Aborted reason -> "aborted: " ^ reason
    | Done -> "done"

  let render fl =
    let r = report fl in
    let now = Engine.now fl.engine in
    let b = Buffer.create 512 in
    Printf.bprintf b
      "migration fleet — %d/%d committed, %d rolled back, %d failed, %d \
       skipped, %d in flight\n"
      r.committed r.total r.rolled_back r.failed r.skipped fl.in_flight;
    Printf.bprintf b
      "  state: %s   breaker: %s (%d trips)   rollbacks_total: %d\n"
      (state_string fl)
      (Format.asprintf "%a" Breaker.pp_state (Breaker.state fl.brk ~now))
      r.breaker_trips (rollbacks_total fl);
    List.iter
      (fun (name, st) ->
        Printf.bprintf b "  %-14s %s\n" name
          (Format.asprintf "%a" pp_member_status st))
      r.members;
    Buffer.contents b

  let publish_metrics ?registry ?(labels = []) fl =
    let r = report fl in
    let g name v =
      Telemetry.Registry.Gauge.set_int
        (Telemetry.Registry.Gauge.v ?registry ~labels name)
        v
    in
    g "migration_fleet_total" r.total;
    g "migration_fleet_committed" r.committed;
    g "migration_fleet_rolled_back" r.rolled_back;
    g "migration_fleet_failed" r.failed;
    g "migration_fleet_skipped" r.skipped;
    g "migration_fleet_in_flight" fl.in_flight;
    g "migration_fleet_breaker_trips" r.breaker_trips;
    g "migration_fleet_rollbacks_total" (rollbacks_total fl)
end
