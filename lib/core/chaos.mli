(** Chaos harness: a full redundant-trunk HARMLESS deployment with every
    fault surface wired to a {!Simnet.Fault} injector, plus a scripted
    run loop that drives deterministic probe traffic through the storm
    and reports what broke and what healed.

    The rig ({!build}) is a {!Failover}-provisioned deployment —
    [num_hosts] hosts on access ports [0..n-1], primary trunk on legacy
    port [n] (SS_1 NIC 0), backup on [n+1] (SS_1 NIC 1) — with an
    L2-learning controller attached to SS_2 over a keepalive-enabled
    {!Sdnctl.Channel}, the watchdog running, and a seeded
    {!Mgmt.Fault_plan} on the device.  Registered fault targets:

    - ["channel"]: [down]/[up] — black-hole the OpenFlow connection;
    - ["mgmt"]: [flaky n] / [down] / [up] — transient NAPALM/SNMP
      failures;
    - ["trunk:primary"], ["trunk:backup"], ["host:<i>"]: [down]/[up]/
      [degrade loss=… jitter=…] on the corresponding link;
    - ["switch:ss1"], ["switch:ss2"]: [crash]/[restart].  A restarted
      SS_1 gets its translator rules re-pushed (it is manager-programmed
      static state); a restarted SS_2 waits for the channel to reconnect
      and resync its flows.

    Everything — fault schedule, traffic, loss draws, retry backoff — is
    a function of the engine and the seeds, so a chaos run is exactly
    reproducible. *)

type rig

val build :
  Simnet.Engine.t ->
  ?num_hosts:int ->
  ?seed:int ->
  ?mode:Softswitch.Soft_switch.connection_mode ->
  ?channel:Sdnctl.Channel.config ->
  ?watchdog_period:Simnet.Sim_time.span ->
  ?retry:Mgmt.Retry.policy ->
  ?failback:bool ->
  unit ->
  (rig, string) result
(** Defaults: 3 hosts, seed 42, [Fail_standalone] SS_2,
    {!default_channel_config}, 2 ms watchdog, default retry policy, no
    failback.  Provisions, connects, attaches the controller and runs
    5 ms of sim time so the handshake settles; the management fault plan
    arms only after provisioning succeeds. *)

val default_channel_config : Sdnctl.Channel.config
(** {!Sdnctl.Channel.default_config} with a 2 ms keepalive, 5 ms echo
    timeout and 1–16 ms reconnect backoff — tight enough that outages
    are detected within a few milliseconds of sim time. *)

val engine : rig -> Simnet.Engine.t
val injector : rig -> Simnet.Fault.injector
val hosts : rig -> Simnet.Host.t array
val failover : rig -> Failover.t
val controller : rig -> Sdnctl.Controller.t
val device : rig -> Mgmt.Device.t
val channel : rig -> Sdnctl.Channel.t
val ss2 : rig -> Softswitch.Soft_switch.t
val ss1 : rig -> Softswitch.Soft_switch.t
val port_map : rig -> Port_map.t

(** What a chaos run did and how the deployment fared. *)
type report = {
  duration : Simnet.Sim_time.span;
  pings_sent : int;  (** probes sent during the storm *)
  pings_answered : int;
  probe_pairs : int;  (** post-storm recovery probe: one per pair *)
  probe_answered : int;
  faults : Simnet.Fault.applied list;
  reconnects : int;  (** channel re-establishments *)
  resyncs : int;  (** controller flow-state replays *)
  mgmt_retries : int;  (** management op retries (from [retries_total]) *)
  activation_retries : int;  (** watchdog activation retries *)
  failovers : int;
  failbacks : int;
  standalone_forwards : int;  (** packets SS_2 forwarded on its own *)
  channel_queue_drops : int;
  channel_dropped : int;  (** control messages lost, both directions *)
  mgmt_faults_injected : int;
  watchdog : Failover.watchdog_status;
  final_active : [ `Primary | `Backup ];
  final_connected : bool;
  recovered : bool;  (** every recovery-probe pair answered *)
  slo_evaluations : int;  (** alert-engine evaluation ticks *)
  slo_breaches : (string * (int * int option) list) list;
      (** per SLO rule, its firing windows as [(fired_at_ns,
          resolved_at_ns)] — [None] = still firing at the end.  Rules:
          ["control-channel-up"] (channel observed disconnected) and
          ["probe-liveness"] (ping answers stalled for 3 ms). *)
  stage_slis : (string * Telemetry.Profile.stats) list;
      (** per-stage latency SLIs (ns) folded from the traced recovery
          probe, stages in first-appearance order along the walk — how
          the healed datapath performs, not just whether it answers. *)
  postmortem : Telemetry.Postmortem.snapshot option;
      (** captured at the end of the run when any flight-recorder
          trigger (fault injection, alert firing, rollback/abort) fired;
          [None] for an uneventful run.  Same seed and script → the
          same snapshot, byte for byte. *)
}

val run :
  rig ->
  script:string ->
  duration:Simnet.Sim_time.span ->
  ?ping_interval:Simnet.Sim_time.span ->
  unit ->
  (report, string) result
(** Schedule the fault script (see {!Simnet.Fault.parse_script} for the
    format), drive one ping per [ping_interval] (default 1 ms) cycling
    through every ordered host pair for [duration], then send a final
    recovery probe to every pair and wait 20 ms of grace.  [Error] only
    for an unparsable script or nonpositive duration — fault outcomes
    land in the report, not in errors.

    The run executes under a freshly installed {!Telemetry.Eventlog}
    recorder (any previously installed recorder is restored afterwards)
    with the engine as the fallback clock, and finishes with a
    {!Telemetry.Postmortem.capture} over the recorded events, the traced
    recovery probe and the probe-liveness series. *)

val pp_report : Format.formatter -> report -> unit
