(** Redundant-trunk HARMLESS: the trunk is the architecture's single
    point of failure, so this module provisions {e two} trunk links —
    primary active, backup administratively shut on the legacy side —
    and fails over by reconfiguring both ends:

    + the Manager pushes a new config (backup trunk up, primary shut)
      through the device's NAPALM driver;
    + SS_1's translator rules are reinstalled to hairpin via the backup
      NIC port.

    Hosts keep their VLAN mapping; the controller and SS_2 never notice.

    SS_1 port conventions here: port 0 = primary trunk NIC, port 1 =
    backup trunk NIC, patch ports from 2. *)

type t

val patch_base : int
(** 2 — first SS_1 patch port in the redundant layout. *)

val provision :
  Simnet.Engine.t ->
  device:Mgmt.Device.t ->
  primary_trunk:int ->
  backup_trunk:int ->
  access_ports:int list ->
  ?base_vid:int ->
  ?dataplane:Softswitch.Soft_switch.dataplane_kind ->
  ?pmd:Softswitch.Pmd.config ->
  unit ->
  (t, string) result
(** Like {!Manager.provision} but with a standby trunk.  The caller
    connects two links: legacy [primary_trunk] ↔ SS_1 port 0 and legacy
    [backup_trunk] ↔ SS_1 port 1. *)

val ss1 : t -> Softswitch.Soft_switch.t
val ss2 : t -> Softswitch.Soft_switch.t
val port_map : t -> Port_map.t
val active : t -> [ `Primary | `Backup ]

val activate_backup : t -> (unit, string) result
(** Perform the failover now (idempotent once on backup). *)

val activate_primary : t -> (unit, string) result
(** Fail back: reactivate the primary trunk and shut the backup
    (idempotent once on primary). *)

(** The watchdog's lifecycle, observable via {!watchdog_status}. *)
type watchdog_status =
  | Idle  (** not running: never started, stopped, or done *)
  | Watching  (** probing the active trunk's carrier every period *)
  | Activating  (** trunk loss detected; activation in progress/retrying *)
  | Gave_up of string
      (** every activation attempt failed; the error was handed to
          [on_failure] and is kept in {!last_error} *)

val start_watchdog :
  ?policy:Mgmt.Retry.policy ->
  ?failback:bool ->
  ?on_failure:(string -> unit) ->
  t ->
  period:Simnet.Sim_time.span ->
  unit
(** Probe the active trunk NIC's carrier every [period].  When it drops,
    activate the other trunk under [policy] (default
    {!Mgmt.Retry.default}): failed activations — e.g. a flapping
    management connection mid-failover — retry with exponential backoff
    in sim time instead of silently killing the watchdog.  If every
    attempt fails the watchdog reports [Gave_up] and calls [on_failure].

    With [failback] (default false) the watchdog keeps running after a
    successful failover: it returns to the primary trunk when its
    carrier comes back, and handles a double failure (backup trunk dying
    too) the same way.  Note a failback watchdog reschedules forever —
    run the engine with [~until].  Without [failback] it stops after one
    successful failover, like the event queue draining, so legacy
    unbounded runs still terminate.

    Successful activations increment [failovers_total{direction=…}];
    retries show up in [retries_total{op="failover.activate_…"}]. *)

val stop_watchdog : t -> unit
(** Cancel the running watchdog (pending ticks become no-ops). *)

val watchdog_status : t -> watchdog_status

val failovers : t -> int
(** Completed primary→backup failovers. *)

val failbacks : t -> int
(** Completed backup→primary failbacks. *)

val activation_retries : t -> int
(** Activation attempts the watchdog had to repeat. *)

val last_error : t -> string option
(** The most recent activation error, cleared on success. *)

val publish_metrics :
  ?registry:Telemetry.Registry.t -> ?labels:Telemetry.Registry.labels ->
  t -> unit
(** Snapshot failover/failback/retry tallies, which trunk is active and
    the watchdog status into gauges named [failover_*], labelled with
    the device hostname.  Pull-based. *)
