(** Accuracy rig for the traffic observability plane: replay a seeded
    Zipf elephant/mice workload (plus a per-host census segment, so
    ground truth is known exactly) through a small fabric of sampled
    switches, roll the per-switch sketches up through
    {!Sdnctl.Flow_collector} on the sim clock, and compare estimates
    against exact references:

    - {e heavy hitters}: every flow whose true bytes exceed
      [hh_frac * total] must appear in the merged top-k (no false
      negatives);
    - {e count-min}: point queries over the sampled-scaled stream are
      overestimate-only, and the fraction within the [epsilon * N]
      bound must clear [1 - 2 * delta];
    - {e cardinality}: the HLL estimate of distinct source hosts must
      sit within ±5% of the census ground truth.

    Deterministic: equal configs (same seed) produce byte-identical
    reports — CI runs the rig twice and [cmp]s the output. *)

type config = {
  seed : int;
  hosts : int;
  mice : int;
  elephants : int;
  switches : int;
  rate : int;
  cm_epsilon : float;
  cm_delta : float;
  hll_p : int;
  topk : int;
  hh_frac : float;  (** heavy-hitter threshold as a fraction of total bytes *)
  merge_every_ms : int;
  duration_ns : int;
}

val default_config : config
(** 100k hosts, 400 mice, 8 elephants, 4 switches, 1-in-4 sampling,
    eps 0.005, delta 0.01, p 14, k 32, threshold 2%, merge every 10ms
    over a 1s window. *)

type report = {
  rp_seed : int;
  rp_flows : int;  (** distinct 5-tuples in the workload *)
  rp_packets : int;
  rp_seen : int;
  rp_sampled : int;
  rp_merges : int;
  rp_total_bytes : int;
  rp_hh_threshold : int;
  rp_hh_expected : int;
  rp_hh_reported : int;
  rp_hh_recall : float;
  rp_cm_keys : int;
  rp_cm_overestimate_ok : bool;
  rp_cm_max_err : int;
  rp_cm_bound : int;  (** [ceil (epsilon * N)] for the sampled stream *)
  rp_cm_within_frac : float;
  rp_cm_hh_ok : bool;  (** every heavy hitter's point query within bound *)
  rp_true_hosts : int;
  rp_est_hosts : float;
  rp_hll_rel_err : float;
  rp_ok : bool;
  rp_text : string;  (** the full deterministic report *)
}

val run : ?config:config -> unit -> report

val render : report -> string
(** [rp_text]. *)
