(** Transactional live cutover: a staged, make-before-break migration
    engine that takes one legacy switch through
    [precheck → shadow → canary → commit], journaling every step to a
    {!Mgmt.Txn} write-ahead log and gating the canary on live health
    probes.

    The paper's Manager deploys the sandwich in one shot; this engine
    makes that deployment {e harmless} in the operational sense too:

    - every step boundary is journaled {e before} the step runs, so a
      manager crash anywhere leaves a WAL from which {!recover} drives
      the device to a consistent state — fully committed or fully
      rolled back, never half-applied;
    - recovery is guarded by device-state inspection (is the running
      config the candidate or not?), which makes replay idempotent:
      recovering an already-terminal transaction is a no-op;
    - the canary stage evaluates SLO rules over live telemetry
      ({!Telemetry.Alert} over {!Telemetry.Timeseries} /
      {!Sdnctl.Stats_poller} series) and a breach triggers automatic
      rollback to the pre-migration configuration;
    - repeated failures trip a {!Breaker}, which the {!Fleet}
      orchestrator consults before starting each further switch.

    The dataplane-side artifacts (SS_1/SS_2, patch ports, trunk links,
    controller attachment) are built and torn down through caller
    {!hooks}, keeping the engine itself free of topology policy. *)

(** A failure-counting circuit breaker, evaluated on the sim clock. *)
module Breaker : sig
  type state = Closed | Open | Half_open

  type t

  val create : ?threshold:int -> ?cooldown:Simnet.Sim_time.span -> unit -> t
  (** Trip ([Closed] → [Open]) after [threshold] consecutive failures
      (default 3); stay open for [cooldown] (default 100 ms), then admit
      one probe ([Half_open]).  @raise Invalid_argument on
      [threshold < 1] or [cooldown <= 0]. *)

  val state : t -> now:Simnet.Sim_time.t -> state
  val allow : t -> now:Simnet.Sim_time.t -> bool
  (** True in [Closed] and [Half_open]. *)

  val record : t -> now:Simnet.Sim_time.t -> ok:bool -> unit
  (** A success in [Half_open] (or [Closed]) closes and resets the
      count; a failure counts towards the threshold and re-opens a
      half-open breaker immediately. *)

  val trips : t -> int
  (** [Closed]/[Half_open] → [Open] transitions so far. *)

  val reopen_at : t -> Simnet.Sim_time.t option
  (** When the latest trip's cooldown ends (the [Open] → [Half_open]
      instant); [None] if the breaker has not tripped since it last
      closed. *)

  val consecutive_failures : t -> int
  val pp_state : Format.formatter -> state -> unit
end

type stage = Precheck | Shadow | Canary | Commit

val stages : stage list
val stage_name : stage -> string

(** The live health gate for the canary stage. *)
type gate = {
  probe : unit -> unit;
      (** kick one round of probe traffic into the cut-over dataplane *)
  healthy : now_ns:int -> (unit, string) result;
      (** judge the SLOs now; [Error reason] = breach → rollback *)
  interval : Simnet.Sim_time.span;  (** spacing between probe rounds *)
  warmup : Simnet.Sim_time.span;
      (** grace before the first judgment — lets the control channel
          handshake and the first stats land without a false breach *)
  window : Simnet.Sim_time.span;    (** total canary duration *)
}

val gate :
  ?interval:Simnet.Sim_time.span ->
  ?warmup:Simnet.Sim_time.span ->
  ?window:Simnet.Sim_time.span ->
  probe:(unit -> unit) ->
  healthy:(now_ns:int -> (unit, string) result) ->
  unit ->
  gate
(** Defaults: interval 500 us, warmup 5 ms, window 15 ms.
    @raise Invalid_argument on a non-positive interval/window or a
    negative warmup, or if [warmup >= window]. *)

val slo_gate :
  alerts:Telemetry.Alert.t ->
  ?rules:string list ->
  ?interval:Simnet.Sim_time.span ->
  ?warmup:Simnet.Sim_time.span ->
  ?window:Simnet.Sim_time.span ->
  probe:(unit -> unit) ->
  unit ->
  gate
(** A gate whose judgment evaluates [alerts] at each probe round and
    breaches when any rule (restricted to [rules] when given) is
    firing.  This is how latency/loss SLOs built over
    {!Sdnctl.Stats_poller} / {!Telemetry.Timeseries} series gate the
    cutover. *)

(** What to migrate. *)
type plan = {
  device : Mgmt.Device.t;
  trunk_port : int;
  access_ports : int list;
  base_vid : int option;
}

val plan_detail : plan -> string
(** The [begin]-record encoding of a plan (["device=… trunk=… access=…
    base_vid=…"]) — enough for {!recover} to recompute the target
    configuration from the WAL alone. *)

(** Callbacks that build / tear down the dataplane-side artifacts. *)
type hooks = {
  on_shadow : Port_map.t -> (unit, string) result;
      (** make-before-break "make": instantiate SS_1/SS_2, patch ports,
          trunk link, controller attachment.  Runs {e before} the device
          config commit. *)
  on_commit : unit -> unit;   (** finalize after a clean canary *)
  on_rollback : unit -> unit; (** tear the shadow artifacts down; must
                                  tolerate being called when nothing was
                                  built *)
}

val no_hooks : hooks

type status =
  | Pending
  | Running of stage
  | Committed
  | Rolled_back of string  (** with the triggering reason *)
  | Failed of string
      (** rollback itself failed — device state unknown; surfaced, never
          masked as success *)
  | Crashed of string
      (** an armed {!Mgmt.Txn.Crashed} fired here; recovery's job now *)

val status_terminal : status -> bool
val pp_status : Format.formatter -> status -> unit

type t

val create :
  Simnet.Engine.t ->
  wal:Mgmt.Txn.t ->
  ?txn_id:string ->
  ?retry:Mgmt.Retry.policy ->
  ?rng:Simnet.Rng.t ->
  ?deadline:Simnet.Sim_time.span ->
  ?gate:gate ->
  ?hooks:hooks ->
  plan ->
  t
(** [txn_id] defaults to the device hostname.  [rng] feeds retry
    jitter; [deadline] bounds the total management-plane backoff of the
    forward path (rollback is deliberately not starved by it).  Without
    a [gate] the canary stage journals but passes immediately. *)

val txn_id : t -> string
val status : t -> status
val port_map : t -> Port_map.t option
(** Available once precheck computed it. *)

val rollbacks : t -> int

val on_stage : t -> (stage -> unit) -> unit
(** Observe stage starts (panel updates, scripted fault injection). *)

val start : t -> on_done:(status -> unit) -> unit
(** Begin the staged cutover as engine events.  [on_done] fires with
    the terminal status — except on a crash, where the "process" is
    gone and nobody calls back (exactly the failure recovery exists
    for). *)

val run : t -> status
(** {!start}, then step the engine until the machine is terminal (or
    the event queue drains).  Single-switch convenience. *)

(** {2 Crash recovery} *)

type recovery = {
  txn : string;
  resolution : Mgmt.Txn.resolution;  (** what WAL replay decided *)
  actions : string list;             (** what recovery actually did *)
  status : status;                   (** terminal outcome *)
}

val recover :
  wal:Mgmt.Txn.t ->
  txn_id:string ->
  device:Mgmt.Device.t ->
  ?hooks:hooks ->
  ?retry:Mgmt.Retry.policy ->
  unit ->
  (recovery, string) result
(** Replay the WAL for [txn_id] and drive the device to a consistent
    state:

    - [committed] in the log → effects stay (running config verified
      against the recomputed candidate);
    - terminal rollback in the log → nothing to do;
    - anything less → undo: discard any staged candidate, roll the
      device back {e only} if the running config is the candidate (the
      state inspection that makes replay idempotent), run
      [hooks.on_rollback], then journal [rollback]/[rolled-back].

    [Error] only for an unusable WAL (unparseable plan detail); a
    failed device rollback lands in [status = Failed …]. *)

val pp_recovery : Format.formatter -> recovery -> unit

(** {2 Fleet orchestration} *)

module Fleet : sig
  type member = {
    name : string;          (** txn id; defaults work out of hostname *)
    plan : plan;
    gate : gate option;
    hooks : hooks option;
  }

  type member_status =
    | Waiting
    | Migrating of stage
    | Done of status
    | Skipped of string

  type state = Idle | Running | Paused | Aborted of string | Done

  type t

  val create :
    Simnet.Engine.t ->
    wal:Mgmt.Txn.t ->
    ?concurrency:int ->
    ?blast_radius:int ->
    ?breaker:Breaker.t ->
    ?retry:Mgmt.Retry.policy ->
    ?deadline:Simnet.Sim_time.span ->
    ?seed:int ->
    member list ->
    t
  (** [concurrency] (default 1) bounds in-flight migrations;
      [blast_radius] (default 0) is the number of {e failed} switches
      tolerated before the whole fleet aborts; [seed] (default 42)
      derives one jitter rng per member, so concurrent retry storms
      de-synchronise deterministically.  The [breaker] (default
      threshold 3, cooldown 100 ms) is consulted before each start;
      while open, starts wait for its cooldown.
      @raise Invalid_argument on an empty member list, duplicate member
      names, [concurrency < 1] or [blast_radius < 0]. *)

  val start : t -> unit
  val pause : t -> unit
  (** Stop launching new members; in-flight migrations finish. *)

  val resume : t -> unit
  val abort : t -> reason:string -> unit
  (** Stop launching; queued members become [Skipped].  In-flight
      migrations run to their own terminal state (their rollback logic
      owns the cleanup). *)

  val state : t -> state
  val progress : t -> (string * member_status) list
  (** Member order, stable. *)

  val in_flight : t -> int
  val breaker : t -> Breaker.t
  val rollbacks_total : t -> int

  val run : t -> unit
  (** {!start}, then step the engine until the fleet settles (done or
      aborted with nothing in flight). *)

  type report = {
    total : int;
    committed : int;
    rolled_back : int;
    failed : int;
    skipped : int;
    aborted : string option;
    breaker_trips : int;
    members : (string * member_status) list;
  }

  val report : t -> report
  val pp_report : Format.formatter -> report -> unit

  val render : t -> string
  (** The migration panel: per-switch stage, rollbacks_total, breaker
      state, fleet progress — what [harmlessctl migrate] and the
      dashboard print. *)

  val publish_metrics :
    ?registry:Telemetry.Registry.t -> ?labels:Telemetry.Registry.labels ->
    t -> unit
end
