(** The validation harness for {!Migration}: a multi-switch legacy
    network on which migrations run with live probe traffic, scripted
    fault injection and WAL crash injection.

    The rig builds N independent legacy switches (each with its own
    hosts on access ports and a reserved trunk port) plus one shared
    OpenFlow controller.  A switch's {!Migration.hooks} bring the
    HARMLESS sandwich up mid-simulation — SS_1/SS_2, patch ports, the
    trunk link, controller attachment, a {!Sdnctl.Stats_poller} — and
    its {!Migration.gate} judges an answered-probes liveness SLO over
    {!Telemetry.Alert}, exactly the make-before-break cutover the
    engine promises.

    Two canned scenarios drive the acceptance criteria:

    - {!crash_sweep} re-runs one migration from scratch for {e every}
      WAL record boundary, crashing the manager right after that record
      persists, then recovers from a serialized round-trip of the log
      and asserts the config-consistency invariant (running config is
      the pre-migration config or the candidate, never a mix), recovery
      idempotence, and end-to-end probe connectivity;
    - {!canary_breach} degrades the freshly cut-over trunk to 95%
      loss mid-canary and asserts the SLO gate rolls the switch back
      and the fleet aborts on its blast-radius limit.

    Same seed → same report, byte for byte. *)

type t

val build :
  ?num_switches:int -> ?num_hosts:int -> seed:int -> unit -> (t, string) result
(** Defaults: 3 switches, 2 hosts each.  Needs [num_switches >= 1] and
    [num_hosts >= 2]. *)

val engine : t -> Simnet.Engine.t
val wal : t -> Mgmt.Txn.t
val injector : t -> Simnet.Fault.injector
val controller : t -> Sdnctl.Controller.t
val switch_names : t -> string list
val device : t -> int -> Mgmt.Device.t

val member : t -> int -> Migration.Fleet.member
(** Switch [i] as a fleet member: plan, liveness gate, sandwich hooks. *)

val fleet :
  ?concurrency:int ->
  ?blast_radius:int ->
  ?breaker:Migration.Breaker.t ->
  ?deadline:Simnet.Sim_time.span ->
  t ->
  Migration.Fleet.t
(** A fleet over every switch, seeded from the rig's seed. *)

val probe_all : ?grace:Simnet.Sim_time.span -> t -> bool
(** Ping every ordered host pair within every switch and run the engine
    for [grace] (default 25 ms): true iff every ping was answered —
    through the sandwich where committed, through the legacy switch
    where not. *)

(** {2 Crash sweep} *)

type point = {
  crash_after : int;   (** the WAL append the crash fired on *)
  crashed_at : string; (** where the machine says it died *)
  resolution : string; (** what WAL replay decided *)
  recovered : string;  (** recovery's terminal status *)
  consistent : bool;   (** running config = before xor candidate *)
  idempotent : bool;   (** second recovery: same verdict, no new records *)
  probe_ok : bool;     (** all probes answered after recovery *)
  wal_records : int;   (** log length after recovery *)
}

type sweep = {
  seed : int;
  num_hosts : int;
  baseline_records : int; (** WAL length of the uncrashed run *)
  baseline_status : string;
  baseline_probe_ok : bool;
  points : point list;    (** one per crash boundary, in order *)
  ok : bool;
}

val crash_sweep : ?num_hosts:int -> seed:int -> unit -> (sweep, string) result
(** Run the migration once cleanly to learn the WAL shape, then once
    per record boundary with a crash armed there.  Each crashed run
    uses a fresh rig with the same seed; recovery always goes through
    a {!Mgmt.Txn.to_string}/{!Mgmt.Txn.of_string} round-trip — the log
    a fresh manager process would actually read. *)

val render_sweep : sweep -> string
(** Deterministic, line-per-point report (the CI artifact). *)

(** {2 Canary breach} *)

type breach = {
  seed : int;
  member : string;          (** the canary that got hurt *)
  member_status : string;
  rollback_reason : string;
  aborted : bool;
  skipped : int;
  rollbacks_total : int;
  breaker_trips : int;
  probe_ok : bool;          (** connectivity restored after rollback *)
  panel : string;           (** the final fleet panel *)
  ok : bool;
  postmortem : Telemetry.Postmortem.snapshot option;
      (** captured at the end of the run (the trunk degradation is the
          trigger); same seed → the same snapshot, byte for byte *)
}

val canary_breach : ?num_hosts:int -> seed:int -> unit -> (breach, string) result
(** A 3-switch fleet with [blast_radius = 0]: 6 ms into the first
    switch's canary the trunk link degrades to 95% loss, the liveness
    SLO fires, the switch rolls back, and the fleet aborts — the
    remaining switches are never touched.  Runs under a freshly
    installed {!Telemetry.Eventlog} recorder (restored afterwards) and
    finishes with a {!Telemetry.Postmortem.capture} whose timeline
    names the trunk degradation as the root cause. *)

val render_breach : breach -> string
