open Ethswitch
open Mgmt
open Softswitch

type report = {
  facts : Napalm.facts;
  config_diff : string list;
  steps : string list;
}

type provisioned = {
  ss1 : Soft_switch.t;
  ss2 : Soft_switch.t;
  port_map : Port_map.t;
  patches : Patch_port.t array;
  report : report;
}

let ( let* ) = Result.bind

let target_config device ~trunk_port ~map ~disabled_ports =
  let current = Device.running_config device in
  let vids = Port_map.vids map in
  let stanza_for port =
    if List.mem port disabled_ports then
      {
        Device_config.port;
        mode = Port_config.Disabled;
        description = Some "HARMLESS standby trunk (shut)";
      }
    else
    match Port_map.vid_of_access_port map port with
    | Some vid ->
        {
          Device_config.port;
          mode = Port_config.Access vid;
          description = Some (Printf.sprintf "HARMLESS access (vlan %d)" vid);
        }
    | None ->
        if port = trunk_port then
          {
            Device_config.port;
            mode = Port_config.Trunk { native = None; allowed = Port_config.Only vids };
            description = Some "HARMLESS trunk to soft-switch server";
          }
        else
          (* Leave unmanaged ports exactly as they are. *)
          match Device_config.stanza_for current ~port with
          | Some stanza -> stanza
          | None ->
              { Device_config.port; mode = Port_config.default; description = None }
  in
  let ports =
    List.init (Legacy_switch.port_count (Device.switch device)) Fun.id
  in
  Device_config.make
    ~hostname:(Device.hostname device)
    (List.map stanza_for ports)

let verify_over_snmp device ~map =
  let snmp = Device.snmp device in
  let check (port, expected_vid) =
    match
      Snmp.get snmp ~community:"public" (Oid.Std.vlan_port_vlan (port + 1))
    with
    | Ok (Mib.Int vid) when vid = expected_vid -> Ok ()
    | Ok (Mib.Int vid) ->
        Error
          (`Permanent
            (Printf.sprintf "verification: port %d has pvid %d, expected %d"
               port vid expected_vid))
    | Ok (Mib.Str _) -> Error (`Permanent "verification: pvid has wrong type")
    | Error e ->
        let msg = Format.asprintf "verification: snmp %a" Snmp.pp_error e in
        Error (if Snmp.is_transient e then `Transient msg else `Permanent msg)
  in
  let pairs =
    List.filter_map
      (fun port ->
        Option.map (fun vid -> (port, vid)) (Port_map.vid_of_access_port map port))
      (Port_map.access_ports map)
  in
  List.fold_left
    (fun acc pair -> match acc with Error _ -> acc | Ok () -> check pair)
    (Ok ()) pairs

let candidate_config ~device ~trunk_port ~map ?(disabled_ports = []) () =
  target_config device ~trunk_port ~map ~disabled_ports

let precheck ~device ~trunk_port ~access_ports ?base_vid
    ?(disabled_ports = []) () =
  let steps = ref [] in
  let log fmt = Printf.ksprintf (fun s -> steps := s :: !steps) fmt in
  let napalm = Device.napalm device in
  let facts = napalm.Napalm.get_facts () in
  log "connected via %s driver: %s" napalm.Napalm.driver_name
    (Format.asprintf "%a" Napalm.pp_facts facts);
  let* () =
    if List.mem trunk_port access_ports then
      Error "trunk port cannot also be a managed access port"
    else Ok ()
  in
  let* () =
    let bad =
      List.filter
        (fun p -> p < 0 || p >= facts.Napalm.interface_count)
        ((trunk_port :: access_ports) @ disabled_ports)
    in
    if bad = [] then Ok ()
    else
      Error
        (Printf.sprintf "ports %s do not exist on %s"
           (String.concat "," (List.map string_of_int bad))
           facts.Napalm.hostname)
  in
  let* map =
    match Port_map.make ?base_vid ~access_ports () with
    | map -> Ok map
    | exception Invalid_argument msg -> Error msg
  in
  log "computed mapping: %s" (Format.asprintf "%a" Port_map.pp map);
  Ok (map, facts, List.rev !steps)

let push_config ~device ~trunk_port ~map ?(disabled_ports = [])
    ?(retry = Retry.default) ?rng ?budget ?(log = fun _ -> ()) () =
  let logf fmt = Printf.ksprintf log fmt in
  let napalm = Device.napalm device in
  (* Stage and commit the tagging configuration. *)
  let (module D : Dialect.S) = Device.dialect device in
  let candidate_text = D.render (target_config device ~trunk_port ~map ~disabled_ports) in
  let attempt ~op f =
    Retry.run ~policy:retry ~op ?rng ?budget
      ~on_retry:(fun ~attempt ~delay:_ msg ->
        logf "%s failed (attempt %d): %s — retrying" op attempt msg)
      f
  in
  let* () =
    attempt ~op:"manager.load_candidate" (fun () ->
        napalm.Napalm.load_candidate candidate_text)
  in
  let diff = napalm.Napalm.compare_config () in
  logf "candidate loaded (%d changes)" (List.length diff);
  let* () = attempt ~op:"manager.commit" napalm.Napalm.commit in
  logf "committed configuration";
  let* () =
    (* Retry only transient SNMP errors (lost datagrams); a genuine VLAN
       mismatch will not fix itself, so it passes through and triggers
       the rollback.  The nested result keeps the two apart. *)
    let verified =
      attempt ~op:"manager.verify" (fun () ->
          match verify_over_snmp device ~map with
          | Ok () -> Ok (Ok ())
          | Error (`Transient msg) -> Error msg
          | Error (`Permanent msg) -> Ok (Error msg))
    in
    match verified with
    | Ok (Ok ()) ->
        logf "verified port VLANs over SNMP";
        Ok ()
    | (Ok (Error msg) | Error msg) -> (
        (* Leave the device as we found it. *)
        match attempt ~op:"manager.rollback" napalm.Napalm.rollback with
        | Ok () ->
            logf "verification failed; rolled back";
            Error msg
        | Error rollback_msg ->
            logf "verification failed; rollback also failed: %s" rollback_msg;
            Error
              (Printf.sprintf
                 "%s; rollback also failed: %s — device state unknown" msg
                 rollback_msg))
  in
  Ok diff

let configure_device ~device ~trunk_port ~access_ports ?base_vid
    ?(disabled_ports = []) ?(retry = Retry.default) ?rng ?deadline () =
  let* map, facts, precheck_steps =
    precheck ~device ~trunk_port ~access_ports ?base_vid ~disabled_ports ()
  in
  let steps = ref (List.rev precheck_steps) in
  let log s = steps := s :: !steps in
  let budget = Option.map Retry.budget deadline in
  let* diff =
    push_config ~device ~trunk_port ~map ~disabled_ports ~retry ?rng ?budget
      ~log ()
  in
  Ok (map, { facts; config_diff = diff; steps = List.rev !steps })

let provision engine ~device ~trunk_port ~access_ports ?base_vid
    ?(dataplane = Soft_switch.Eswitch) ?pmd ?retry () =
  let* map, report =
    configure_device ~device ~trunk_port ~access_ports ?base_vid ?retry ()
  in
  (* Bring up the software side. *)
  let n = Port_map.size map in
  let host = report.facts.Napalm.hostname in
  let ss1 =
    Soft_switch.create engine
      ~name:(host ^ "-ss1")
      ~ports:(Translator.required_ports map)
      ~dataplane ?pmd ~miss:Soft_switch.Drop_on_miss ()
  in
  let ss2 =
    Soft_switch.create engine
      ~name:(host ^ "-ss2")
      ~ports:n ~dataplane ?pmd ~miss:Soft_switch.Send_to_controller ()
  in
  let patches =
    Array.init n (fun i ->
        Patch_port.connect
          (Soft_switch.node ss1, Translator.patch_port_of_logical i)
          (Soft_switch.node ss2, i))
  in
  Translator.install ss1 map;
  let step =
    Printf.sprintf
      "instantiated SS_1 (%d ports) and SS_2 (%d ports), %d translator rules"
      (Translator.required_ports map) n (2 * n)
  in
  Ok
    {
      ss1;
      ss2;
      port_map = map;
      patches;
      report = { report with steps = report.steps @ [ step ] };
    }

let deprovision device =
  let napalm = Device.napalm device in
  napalm.Napalm.rollback ()
