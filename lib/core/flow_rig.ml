open Simnet
open Softswitch

type config = {
  seed : int;
  hosts : int;
  mice : int;
  elephants : int;
  switches : int;
  rate : int;
  cm_epsilon : float;
  cm_delta : float;
  hll_p : int;
  topk : int;
  hh_frac : float;
  merge_every_ms : int;
  duration_ns : int;
}

let default_config =
  {
    seed = 42;
    hosts = 100_000;
    mice = 400;
    elephants = 8;
    switches = 4;
    rate = 4;
    cm_epsilon = 0.005;
    cm_delta = 0.01;
    hll_p = 14;
    topk = 32;
    hh_frac = 0.02;
    merge_every_ms = 10;
    duration_ns = 1_000_000_000;
  }

type report = {
  rp_seed : int;
  rp_flows : int;
  rp_packets : int;
  rp_seen : int;
  rp_sampled : int;
  rp_merges : int;
  rp_total_bytes : int;
  rp_hh_threshold : int;
  rp_hh_expected : int;
  rp_hh_reported : int;
  rp_hh_recall : float;
  rp_cm_keys : int;
  rp_cm_overestimate_ok : bool;
  rp_cm_max_err : int;
  rp_cm_bound : int;
  rp_cm_within_frac : float;
  rp_cm_hh_ok : bool;
  rp_true_hosts : int;
  rp_est_hosts : float;
  rp_hll_rel_err : float;
  rp_ok : bool;
  rp_text : string;
}

let render r = r.rp_text

let run ?(config = default_config) () =
  let engine = Engine.create () in
  let frcfg =
    {
      Flowrec.rate = config.rate;
      cm_epsilon = config.cm_epsilon;
      cm_delta = config.cm_delta;
      hll_p = config.hll_p;
      topk = config.topk;
      ring = 0;
      seed = config.seed;
    }
  in
  let collector = Sdnctl.Flow_collector.create ~config:frcfg engine in
  let switches =
    Array.init config.switches (fun i ->
        Soft_switch.create engine
          ~name:(Printf.sprintf "sw%d" i)
          ~ports:2 ~miss:Soft_switch.Drop_on_miss ())
  in
  Array.iter (Sdnctl.Flow_collector.add_switch collector) switches;
  (* Exact references: true bytes per flow over the whole stream, and
     the scaled bytes of exactly the packets the recorders sampled (the
     stream the count-min bound formally applies to). *)
  let true_bytes : (string, int) Hashtbl.t = Hashtbl.create 4096 in
  let sampled_exact : (string, int * int) Hashtbl.t = Hashtbl.create 4096 in
  List.iter
    (fun (_, fr) ->
      Flowrec.set_on_sample fr (fun (r : Flowrec.record) ->
          let key = Netpkt.Packet.Flow_key.to_string r.Flowrec.rc_key in
          let _, prev =
            Option.value
              (Hashtbl.find_opt sampled_exact key)
              ~default:(r.Flowrec.rc_hash, 0)
          in
          Hashtbl.replace sampled_exact key
            (r.Flowrec.rc_hash, prev + r.Flowrec.rc_bytes)))
    (Sdnctl.Flow_collector.recorders collector);
  Sdnctl.Flow_collector.start collector
    ~every:(Sim_time.ms config.merge_every_ms);
  let plan =
    Workload.plan ~seed:config.seed ~hosts:config.hosts ~mice:config.mice
      ~elephants:config.elephants ~duration_ns:config.duration_ns ()
  in
  Array.iteri
    (fun i fl ->
      let pkt = Workload.packet fl in
      let key = Netpkt.Packet.Flow_key.to_string (Netpkt.Packet.flow_key pkt) in
      let bytes = Netpkt.Packet.size pkt * fl.Workload.fl_packets in
      Hashtbl.replace true_bytes key
        (bytes + Option.value (Hashtbl.find_opt true_bytes key) ~default:0);
      let sw = switches.(i mod config.switches) in
      Engine.schedule_at engine
        (Sim_time.of_ns fl.Workload.fl_start_ns)
        (fun () ->
          for seq = 0 to fl.Workload.fl_packets - 1 do
            let now_ns =
              fl.Workload.fl_start_ns + (seq * fl.Workload.fl_gap_ns)
            in
            ignore (Soft_switch.process_direct sw ~now_ns ~in_port:0 pkt)
          done))
    plan.Workload.flows;
  Engine.run
    ~until:(Sim_time.of_ns (config.duration_ns + 200_000_000))
    engine;
  Sdnctl.Flow_collector.merge_now collector;
  (* Heavy-hitter recall against ground truth. *)
  let total_bytes = Hashtbl.fold (fun _ b acc -> acc + b) true_bytes 0 in
  let threshold =
    max 1 (int_of_float (config.hh_frac *. float_of_int total_bytes))
  in
  let expected_hh =
    Hashtbl.fold
      (fun key b acc -> if b >= threshold then key :: acc else acc)
      true_bytes []
    |> List.sort String.compare
  in
  let top_keys =
    List.map (fun (k, _, _) -> k) (Sdnctl.Flow_collector.top collector)
  in
  let reported_hh =
    List.filter (fun k -> List.mem k top_keys) expected_hh
  in
  let hh_recall =
    if expected_hh = [] then 1.0
    else
      float_of_int (List.length reported_hh)
      /. float_of_int (List.length expected_hh)
  in
  (* Count-min point-query accuracy over the sampled-scaled stream. *)
  let cm = Sdnctl.Flow_collector.merged_cm collector in
  let cm_bound =
    int_of_float
      (Float.ceil (config.cm_epsilon *. float_of_int (Telemetry.Sketch.Cm.total cm)))
  in
  let cm_keys = ref 0
  and cm_under = ref 0
  and cm_max_err = ref 0
  and cm_within = ref 0 in
  let cm_hh_ok = ref true in
  Hashtbl.iter
    (fun key (hash, exact) ->
      incr cm_keys;
      let est = Telemetry.Sketch.Cm.query cm ~key:hash in
      if est < exact then incr cm_under;
      let err = est - exact in
      if err > !cm_max_err then cm_max_err := err;
      if err <= cm_bound then incr cm_within
      else if List.mem key expected_hh then cm_hh_ok := false)
    sampled_exact;
  let cm_within_frac =
    if !cm_keys = 0 then 1.0
    else float_of_int !cm_within /. float_of_int !cm_keys
  in
  (* Cardinality: the census segment makes the true value exactly
     [hosts]. *)
  let est_hosts = Sdnctl.Flow_collector.hosts collector in
  let hll_rel_err =
    Float.abs (est_hosts -. float_of_int config.hosts)
    /. float_of_int config.hosts
  in
  let cm_overestimate_ok = !cm_under = 0 in
  let ok =
    hh_recall = 1.0 && cm_overestimate_ok
    && cm_within_frac >= 1.0 -. (2.0 *. config.cm_delta)
    && !cm_hh_ok && hll_rel_err <= 0.05
  in
  let buf = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  line "flow accuracy rig — seed %d" config.seed;
  line "workload: %d hosts, %d mice + %d elephants + census — %d flows, %d packets"
    config.hosts config.mice config.elephants
    (Array.length plan.Workload.flows)
    plan.Workload.total_packets;
  line "fabric:   %d switches, 1-in-%d sampling, eps=%.4f delta=%.4f hll_p=%d k=%d"
    config.switches config.rate config.cm_epsilon config.cm_delta config.hll_p
    config.topk;
  line "observed: %d seen, %d sampled, %d merges"
    (Sdnctl.Flow_collector.seen collector)
    (Sdnctl.Flow_collector.sampled collector)
    (Sdnctl.Flow_collector.merges collector);
  line
    "heavy hitters: threshold %d B (%.1f%% of %d B) — expected %d, reported %d, recall %.2f"
    threshold (100.0 *. config.hh_frac) total_bytes
    (List.length expected_hh) (List.length reported_hh) hh_recall;
  line
    "count-min: %d sampled flows checked, overestimate-only %s, max err %d B (bound %d B), within-bound %.2f%%"
    !cm_keys
    (if cm_overestimate_ok then "ok" else "VIOLATED")
    !cm_max_err cm_bound (100.0 *. cm_within_frac);
  line "hll hosts: est %.1f vs true %d — rel err %.2f%% (limit 5.00%%)" est_hosts
    config.hosts (100.0 *. hll_rel_err);
  Buffer.add_string buf (Sdnctl.Flow_collector.render ~k:10 collector);
  line "verdict: %s" (if ok then "PASS" else "FAIL");
  {
    rp_seed = config.seed;
    rp_flows = Hashtbl.length true_bytes;
    rp_packets = plan.Workload.total_packets;
    rp_seen = Sdnctl.Flow_collector.seen collector;
    rp_sampled = Sdnctl.Flow_collector.sampled collector;
    rp_merges = Sdnctl.Flow_collector.merges collector;
    rp_total_bytes = total_bytes;
    rp_hh_threshold = threshold;
    rp_hh_expected = List.length expected_hh;
    rp_hh_reported = List.length reported_hh;
    rp_hh_recall = hh_recall;
    rp_cm_keys = !cm_keys;
    rp_cm_overestimate_ok = cm_overestimate_ok;
    rp_cm_max_err = !cm_max_err;
    rp_cm_bound = cm_bound;
    rp_cm_within_frac = cm_within_frac;
    rp_cm_hh_ok = !cm_hh_ok;
    rp_true_hosts = config.hosts;
    rp_est_hosts = est_hosts;
    rp_hll_rel_err = hll_rel_err;
    rp_ok = ok;
    rp_text = Buffer.contents buf;
  }
