(* Render raw telemetry hops in the paper's vocabulary.

   The instrumentation in simnet/ethswitch/softswitch emits generic
   stages ("ingress", "tag_push", "pipeline", "tx") because those
   layers do not know which switch plays which HARMLESS role.  This
   module does know — it reads the deployment — and maps each hop onto
   the Fig. 1 walk: tag push, trunk, SS_1 translation, patch port,
   SS_2 pipeline, hairpin, tag pop. *)

open Softswitch

type t = {
  legacy_trunk : (string * int) list; (* legacy switch name -> trunk port *)
  ss1 : string list;
  ss2 : string list;
  ss1_trunk : int;
}

let plain =
  { legacy_trunk = []; ss1 = []; ss2 = []; ss1_trunk = Translator.trunk_port }

let make ?(legacy_trunk = []) ?(ss1 = []) ?(ss2 = [])
    ?(ss1_trunk = Translator.trunk_port) () =
  { legacy_trunk; ss1; ss2; ss1_trunk }

let of_deployment (d : Deployment.t) =
  match d.Deployment.kind with
  | Deployment.Legacy_only { legacy; _ } ->
      (* No trunk: every port is an access port. *)
      {
        plain with
        legacy_trunk = [ (Ethswitch.Legacy_switch.name legacy, -1) ];
      }
  | Deployment.Plain_openflow { switch } ->
      { plain with ss2 = [ Soft_switch.name switch ] }
  | Deployment.Harmless { legacy; prov; _ } ->
      {
        legacy_trunk =
          [
            ( Ethswitch.Legacy_switch.name legacy,
              Ethswitch.Legacy_switch.port_count legacy - 1 );
          ];
        ss1 = [ Soft_switch.name prov.Manager.ss1 ];
        ss2 = [ Soft_switch.name prov.Manager.ss2 ];
        ss1_trunk = Translator.trunk_port;
      }
  | Deployment.Scaled { legacies; scale; _ } ->
      {
        legacy_trunk =
          Array.to_list
            (Array.map
               (fun legacy ->
                 ( Ethswitch.Legacy_switch.name legacy,
                   Ethswitch.Legacy_switch.port_count legacy - 1 ))
               legacies);
        ss1 =
          Array.to_list (Array.map Soft_switch.name scale.Scaleout.ss1s);
        ss2 = [ Soft_switch.name scale.Scaleout.ss2 ];
        ss1_trunk = Translator.trunk_port;
      }

(* Canonical step names of the HARMLESS walk; the integration tests
   assert their order. *)
let semantic t (hop : Telemetry.Trace.hop) =
  let is_ss1 = List.mem hop.Telemetry.Trace.component t.ss1 in
  let is_ss2 = List.mem hop.Telemetry.Trace.component t.ss2 in
  let port = hop.Telemetry.Trace.port in
  match (hop.Telemetry.Trace.layer, hop.Telemetry.Trace.stage) with
  | Telemetry.Trace.Host, "tx" -> Some "host-tx"
  | Telemetry.Trace.Host, "rx" -> Some "host-rx"
  | Telemetry.Trace.Legacy, "ingress" -> (
      match List.assoc_opt hop.Telemetry.Trace.component t.legacy_trunk with
      | Some trunk when port = Some trunk -> Some "legacy-trunk-ingress"
      | Some _ -> Some "legacy-ingress"
      | None -> None)
  | Telemetry.Trace.Legacy, "tag_push" -> Some "tag-push"
  | Telemetry.Trace.Legacy, "tag_pop" -> Some "tag-pop"
  | Telemetry.Trace.Legacy, "egress" -> Some "legacy-egress"
  | Telemetry.Trace.Switch, "rx" when is_ss1 ->
      Some (if port = Some t.ss1_trunk then "trunk-rx" else "patch-rx")
  | Telemetry.Trace.Switch, "pipeline" when is_ss1 -> Some "translate"
  | Telemetry.Trace.Switch, "tx" when is_ss1 ->
      Some (if port = Some t.ss1_trunk then "hairpin" else "patch-tx")
  | Telemetry.Trace.Switch, "rx" when is_ss2 -> Some "ss2-rx"
  | Telemetry.Trace.Switch, "pipeline" when is_ss2 -> Some "of-pipeline"
  | Telemetry.Trace.Switch, "tx" when is_ss2 -> Some "ss2-tx"
  | Telemetry.Trace.Switch, ("rx" | "pipeline" | "tx" as stage) ->
      Some ("switch-" ^ stage)
  | Telemetry.Trace.Switch, "punt" -> Some "punt"
  | Telemetry.Trace.Switch, "drop" -> Some "drop"
  | Telemetry.Trace.Controller, stage -> Some ("controller-" ^ stage)
  | _, _ -> None

let describe t hop =
  match semantic t hop with
  | None -> ""
  | Some "host-tx" -> "host NIC out"
  | Some "host-rx" -> "host NIC in — delivered"
  | Some "legacy-ingress" -> "legacy: access ingress, classified into port VLAN"
  | Some "legacy-trunk-ingress" -> "legacy: tagged frame back in from trunk"
  | Some "tag-push" -> "legacy: push 802.1Q tag, up the trunk"
  | Some "tag-pop" -> "legacy: pop tag, deliver on access port"
  | Some "legacy-egress" -> "legacy: untagged delivery"
  | Some "trunk-rx" -> "SS_1: tagged frame in from trunk"
  | Some "patch-rx" -> "SS_1: frame back from SS_2 via patch port"
  | Some "translate" -> "SS_1: translator lookup (VLAN <-> patch)"
  | Some "patch-tx" -> "SS_1 -> patch port -> SS_2"
  | Some "hairpin" -> "SS_1: hairpin — re-tagged, back down the trunk"
  | Some "ss2-rx" -> "SS_2: plain-port ingress (transparent)"
  | Some "of-pipeline" -> "SS_2: OpenFlow pipeline"
  | Some "ss2-tx" -> "SS_2: output action -> patch port"
  | Some "punt" -> "punt to controller"
  | Some "drop" -> "dropped"
  | Some "controller-packet_in" -> "controller: packet-in"
  | Some "controller-packet_out" -> "controller: packet-out"
  | Some s -> s

let pp_hop t fmt (hop : Telemetry.Trace.hop) =
  Format.fprintf fmt "%9s  %-12s"
    (Format.asprintf "%a" Telemetry.Trace.pp_time hop.Telemetry.Trace.ts_ns)
    hop.Telemetry.Trace.component;
  (match hop.Telemetry.Trace.port with
  | Some p -> Format.fprintf fmt " port %-3d" p
  | None -> Format.fprintf fmt "         ");
  if hop.Telemetry.Trace.cycles > 0 then
    Format.fprintf fmt " %6d cyc " hop.Telemetry.Trace.cycles
  else Format.fprintf fmt "             ";
  let description = describe t hop in
  Format.fprintf fmt " %s" (if description = "" then hop.Telemetry.Trace.stage else description);
  if hop.Telemetry.Trace.detail <> "" then
    Format.fprintf fmt "  [%s]" hop.Telemetry.Trace.detail

let pp_trace t fmt (trace : Telemetry.Trace.trace) =
  (match trace.Telemetry.Trace.hops with
  | first :: _ ->
      Format.fprintf fmt "packet %08x: %s (%d hops)@." trace.Telemetry.Trace.key
        first.Telemetry.Trace.packet
        (List.length trace.Telemetry.Trace.hops)
  | [] -> Format.fprintf fmt "packet %08x: (no hops)@." trace.Telemetry.Trace.key);
  List.iter
    (fun hop -> Format.fprintf fmt "  %a@." (pp_hop t) hop)
    trace.Telemetry.Trace.hops

let semantic_path t (trace : Telemetry.Trace.trace) =
  List.filter_map (semantic t) trace.Telemetry.Trace.hops
