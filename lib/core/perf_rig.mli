(** Deterministic profiling rig: where does a packet's time go, and
    what does the HARMLESS detour cost over a direct OpenFlow path?

    The rig builds two deployments on fresh engines — the full HARMLESS
    sandwich ({!Deployment.build_harmless}) and the same hosts wired
    straight into one OpenFlow switch
    ({!Deployment.build_plain_openflow}) — attaches an L2-learning
    controller to each, warms both up (handshake, a ring of pings so
    the controller learns every host's MAC, then one round over every
    ordered host pair so MAC tables and flow tables are populated),
    then drives the same traced ping sequence through each
    and folds the traces into a {!Telemetry.Profile} per side.

    Everything runs on the simulation clock, so for fixed parameters
    the report — including the rendered attribution table — is
    byte-identical across runs.  The warm-up matters: measured pings
    all take the fast path, the workload is homogeneous, and the
    per-stage p50s sum to the end-to-end p50 (the invariant
    {!Telemetry.Profile} documents and the tests pin). *)

type report = {
  harmless : Telemetry.Profile.t;
  plain : Telemetry.Profile.t;  (** the direct-path control group *)
  num_hosts : int;
  pings : int;  (** measured pings per side (warm-up excluded) *)
}

val run :
  ?num_hosts:int ->
  ?pings:int ->
  ?dataplane:Softswitch.Soft_switch.dataplane_kind ->
  unit ->
  (report, string) result
(** Defaults: 4 hosts, 40 measured pings, the default dataplane.
    [Error] only when the HARMLESS provisioning fails. *)

val overhead_ratio : report -> float option
(** HARMLESS e2e latency p50 / direct-path e2e p50 — the number behind
    the paper's "no major latency penalty" claim.  [None] when either
    side collected no complete trace. *)

val attribution : report -> string
(** Deterministic text report: the per-stage attribution table for each
    side (see {!Telemetry.Profile.attribution_table}) and a closing
    HARMLESS-vs-direct overhead line. *)

val publish : ?registry:Telemetry.Registry.t -> report -> unit
(** Mirror both profiles into registry histograms (prefixes
    ["harmless"] and ["direct"]) and set the
    ["harmless_overhead_ratio"] gauge. *)
