(** Render raw telemetry hops in the paper's vocabulary.

    The instrumentation layers (simnet, ethswitch, softswitch) emit
    generic stage names because they do not know which switch plays
    which HARMLESS role.  A [Trace_view.t] — built from a deployment —
    does, and maps every hop onto the Fig. 1 walk: access ingress, tag
    push, trunk, SS_1 translation, patch port, SS_2 pipeline, hairpin,
    tag pop, delivery. *)

type t

val plain : t
(** A view with no role knowledge: hops keep their generic names. *)

val of_deployment : Deployment.t -> t
(** Learn switch roles (which devices are legacy / SS_1 / SS_2, which
    ports are trunks) from a deployment. *)

val make :
  ?legacy_trunk:(string * int) list ->
  ?ss1:string list ->
  ?ss2:string list ->
  ?ss1_trunk:int ->
  unit ->
  t
(** Assemble a view from explicit role assignments, for rigs that wire
    their topology by hand (e.g. {!Chaos}): [legacy_trunk] maps each
    legacy switch name to its trunk port, [ss1]/[ss2] name the software
    switches, [ss1_trunk] is SS_1's trunk-facing port (default
    {!Translator.trunk_port}). *)

val semantic : t -> Telemetry.Trace.hop -> string option
(** Canonical step name for a hop, e.g. ["tag-push"], ["translate"],
    ["hairpin"], ["tag-pop"]; [None] for hops the view cannot place.
    The integration tests assert the order of these names along a
    ping's path. *)

val semantic_path : t -> Telemetry.Trace.trace -> string list
(** [semantic] over every hop of a trace, unplaceable hops dropped. *)

val describe : t -> Telemetry.Trace.hop -> string
(** Human one-liner for a hop (["SS_1: hairpin — re-tagged, back down
    the trunk"]); [""] when the view cannot place it. *)

val pp_hop : t -> Format.formatter -> Telemetry.Trace.hop -> unit
(** One line: sim time, component, port, cycle cost, description. *)

val pp_trace : t -> Format.formatter -> Telemetry.Trace.trace -> unit
(** A packet header line followed by one [pp_hop] line per hop. *)
