(** HARMLESS: a Hybrid ARchitecture to Migrate Legacy Ethernet Switches
    to SDN — the paper's contribution, as a library.

    Reading order:
    - {!Port_map}: the access-port ↔ VLAN bijection underlying the trick;
    - {!Translator}: the SS_1 flow program (tag → patch port and back);
    - {!Manager}: the automation that configures a real (simulated)
      device through SNMP/NAPALM and stands the software side up;
    - {!Deployment}: turn-key single-switch topologies, plus legacy-only
      and plain-OpenFlow baselines;
    - {!Scaleout}: several legacy switches behind one server;
    - {!Failover}: a standby trunk with watchdog-driven recovery;
    - {!Chaos}: scripted fault injection against a full deployment,
      with a recovery report;
    - {!Migration}: the transactional live-cutover engine — staged
      make-before-break migration with WAL crash recovery, SLO-gated
      canaries, automatic rollback, a circuit breaker and a fleet
      orchestrator;
    - {!Migration_rig}: the harness that validates it — crash sweeps
      over every WAL boundary and a mid-canary SLO-breach scenario;
    - {!Dashboard}: the monitoring-plane demo behind [harmlessctl top]
      and [harmlessctl alerts] — a stats poller plus alert rules over a
      live deployment, with deterministic text renderers;
    - {!Transparency}: the checker for the paper's central property —
      the controller cannot tell HARMLESS from a real OpenFlow switch;
    - {!Trace_view}: renders telemetry hop traces in the paper's
      vocabulary (tag push, SS_1 translate, hairpin, tag pop);
    - {!Perf_rig}: the deterministic profiling rig behind
      [harmlessctl perf] — per-stage cost attribution for the HARMLESS
      walk against a direct-OpenFlow control group;
    - {!Flow_rig}: the sketch-accuracy rig behind
      [harmlessctl flows --report] — a seeded Zipf elephant/mice
      workload replayed through a sampled fabric, estimates checked
      against exact references. *)

module Port_map = Port_map
module Translator = Translator
module Manager = Manager
module Deployment = Deployment
module Scaleout = Scaleout
module Failover = Failover
module Chaos = Chaos
module Migration = Migration
module Migration_rig = Migration_rig
module Dashboard = Dashboard
module Transparency = Transparency
module Trace_view = Trace_view
module Perf_rig = Perf_rig
module Flow_rig = Flow_rig
