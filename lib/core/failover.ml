open Simnet
open Softswitch

let patch_base = 2

type watchdog_status =
  | Idle
  | Watching
  | Activating
  | Gave_up of string

type t = {
  engine : Engine.t;
  device : Mgmt.Device.t;
  primary_trunk : int;
  backup_trunk : int;
  ss1 : Soft_switch.t;
  ss2 : Soft_switch.t;
  map : Port_map.t;
  mutable active : [ `Primary | `Backup ];
  mutable failovers : int;
  mutable failbacks : int;
  mutable status : watchdog_status;
  mutable generation : int; (* bumped by stop/start; stale ticks die *)
  mutable activation_retries : int;
  mutable last_error : string option;
}

let ss1 t = t.ss1
let ss2 t = t.ss2
let port_map t = t.map
let active t = t.active
let failovers t = t.failovers
let failbacks t = t.failbacks
let watchdog_status t = t.status
let activation_retries t = t.activation_retries
let last_error t = t.last_error

let count_failover ~direction =
  Telemetry.Registry.Counter.inc
    (Telemetry.Registry.Counter.v
       ~labels:[ ("direction", direction) ]
       ~help:"successful trunk activations" "failovers_total")

(* Flight-recorder events, correlated on the device hostname.  Guarded
   at every call site. *)
let event t ?level ?detail name =
  Telemetry.Eventlog.emit ?level
    ~ts_ns:(Sim_time.to_ns (Engine.now t.engine))
    ~corr:
      (Telemetry.Eventlog.corr_of_string
         ("failover:" ^ Mgmt.Device.hostname t.device))
    ?detail ~stream:"failover" name

let provision engine ~device ~primary_trunk ~backup_trunk ~access_ports
    ?base_vid ?(dataplane = Soft_switch.Eswitch) ?pmd () =
  if primary_trunk = backup_trunk then Error "failover: trunks must differ"
  else if List.mem backup_trunk access_ports then
    Error "failover: backup trunk cannot be a managed access port"
  else
    match
      Manager.configure_device ~device ~trunk_port:primary_trunk ~access_ports
        ?base_vid ~disabled_ports:[ backup_trunk ] ()
    with
    | Error _ as e -> e
    | Ok (map, _report) ->
        let n = Port_map.size map in
        let host = Mgmt.Device.hostname device in
        let ss1 =
          Soft_switch.create engine
            ~name:(host ^ "-ss1")
            ~ports:(patch_base + n)
            ~dataplane ?pmd ~miss:Soft_switch.Drop_on_miss ()
        in
        let ss2 =
          Soft_switch.create engine
            ~name:(host ^ "-ss2")
            ~ports:n ~dataplane ?pmd ~miss:Soft_switch.Send_to_controller ()
        in
        for i = 0 to n - 1 do
          ignore
            (Patch_port.connect
               (Soft_switch.node ss1, patch_base + i)
               (Soft_switch.node ss2, i))
        done;
        Translator.install ~trunk_port:0 ~patch_base ss1 map;
        Ok
          {
            engine;
            device;
            primary_trunk;
            backup_trunk;
            ss1;
            ss2;
            map;
            active = `Primary;
            failovers = 0;
            failbacks = 0;
            status = Idle;
            generation = 0;
            activation_retries = 0;
            last_error = None;
          }

let reconfigure t ~trunk ~shut =
  Manager.configure_device ~device:t.device ~trunk_port:trunk
    ~access_ports:(Port_map.access_ports t.map)
    ~base_vid:(Port_map.base_vid t.map) ~disabled_ports:[ shut ] ()

let activate_backup t =
  match t.active with
  | `Backup -> Ok ()
  | `Primary -> (
      match reconfigure t ~trunk:t.backup_trunk ~shut:t.primary_trunk with
      | Error _ as e -> e
      | Ok _ ->
          (* Repoint SS_1's hairpin at the backup NIC (port 1). *)
          Translator.reinstall ~trunk_port:1 ~patch_base t.ss1 t.map;
          t.active <- `Backup;
          t.failovers <- t.failovers + 1;
          count_failover ~direction:"to_backup";
          if Telemetry.Eventlog.enabled () then
            event t ~level:Telemetry.Eventlog.Warn
              ~detail:(Mgmt.Device.hostname t.device ^ " to_backup")
              "failover";
          Ok ())

let activate_primary t =
  match t.active with
  | `Primary -> Ok ()
  | `Backup -> (
      match reconfigure t ~trunk:t.primary_trunk ~shut:t.backup_trunk with
      | Error _ as e -> e
      | Ok _ ->
          Translator.reinstall ~trunk_port:0 ~patch_base t.ss1 t.map;
          t.active <- `Primary;
          t.failbacks <- t.failbacks + 1;
          count_failover ~direction:"to_primary";
          if Telemetry.Eventlog.enabled () then
            event t
              ~detail:(Mgmt.Device.hostname t.device ^ " to_primary")
              "failback";
          Ok ())

(* The health probe: carrier on SS_1's trunk NIC.  Port 0 is the primary
   trunk, port 1 the backup. *)
let trunk_healthy t = function
  | `Primary -> Node.carrier (Soft_switch.node t.ss1) ~port:0
  | `Backup -> Node.carrier (Soft_switch.node t.ss1) ~port:1

let stop_watchdog t =
  t.generation <- t.generation + 1;
  if t.status <> Idle then t.status <- Idle

let start_watchdog ?(policy = Mgmt.Retry.default) ?(failback = false)
    ?on_failure t ~period =
  if period <= 0 then invalid_arg "Failover.start_watchdog: bad period";
  t.generation <- t.generation + 1;
  let gen = t.generation in
  t.status <- Watching;
  let give_up msg =
    t.last_error <- Some msg;
    t.status <- Gave_up msg;
    if Telemetry.Eventlog.enabled () then
      event t ~level:Telemetry.Eventlog.Error
        ~detail:(Mgmt.Device.hostname t.device ^ " " ^ msg)
        "gave_up";
    match on_failure with Some f -> f msg | None -> ()
  in
  let rec schedule_tick () = Engine.schedule_after t.engine period tick
  and activate target =
    t.status <- Activating;
    let name, f =
      match target with
      | `Backup -> ("backup", fun () -> activate_backup t)
      | `Primary -> ("primary", fun () -> activate_primary t)
    in
    Mgmt.Retry.run_async t.engine ~policy
      ~op:(Printf.sprintf "failover.activate_%s" name)
      ~on_retry:(fun ~attempt:_ ~delay:_ msg ->
        t.activation_retries <- t.activation_retries + 1;
        t.last_error <- Some msg)
      f
      ~on_done:(fun result ->
        if t.generation = gen then
          match result with
          | Ok () ->
              t.last_error <- None;
              if failback then begin
                t.status <- Watching;
                schedule_tick ()
              end
              else
                (* Nothing left to fail over to — job done; stop so a
                   drained event queue still terminates unbounded runs. *)
                t.status <- Idle
          | Error msg -> give_up msg)
  and tick () =
    if t.generation = gen && t.status = Watching then begin
      let target =
        match t.active with
        | `Primary when not (trunk_healthy t `Primary) -> Some `Backup
        | `Backup when not (trunk_healthy t `Backup) ->
            (* Double failure: the standby died too.  If the primary came
               back meanwhile, return to it; otherwise keep watching. *)
            if trunk_healthy t `Primary then Some `Primary else None
        | `Backup when failback && trunk_healthy t `Primary -> Some `Primary
        | `Primary | `Backup -> None
      in
      (* [activate]'s completion callback owns rescheduling from here —
         it may fire synchronously, so don't also schedule a tick. *)
      match target with
      | Some target -> activate target
      | None -> schedule_tick ()
    end
  in
  schedule_tick ()

let publish_metrics ?registry ?(labels = []) t =
  let labels = ("device", Mgmt.Device.hostname t.device) :: labels in
  Telemetry.Registry.publish_ints ?registry ~prefix:"failover" ~labels
    [
      ("failovers", t.failovers);
      ("failbacks", t.failbacks);
      ("activation_retries", t.activation_retries);
      ("on_backup", (match t.active with `Backup -> 1 | `Primary -> 0));
      ( "watchdog_status",
        match t.status with
        | Idle -> 0
        | Watching -> 1
        | Activating -> 2
        | Gave_up _ -> 3 );
    ]
