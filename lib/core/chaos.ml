open Simnet
open Ethswitch
open Softswitch

type rig = {
  engine : Engine.t;
  seed : int;
  injector : Fault.injector;
  hosts : Host.t array;
  host_links : Link.t array;
  legacy : Legacy_switch.t;
  device : Mgmt.Device.t;
  fault_plan : Mgmt.Fault_plan.t;
  fo : Failover.t;
  ctrl : Sdnctl.Controller.t;
  ss2_dpid : int64;
  primary_link : Link.t;
  backup_link : Link.t;
  mutable pings_sent : int;
}

let engine t = t.engine
let injector t = t.injector
let hosts t = t.hosts
let failover t = t.fo
let controller t = t.ctrl
let device t = t.device
let channel t = Sdnctl.Controller.channel t.ctrl t.ss2_dpid
let ss2 t = Failover.ss2 t.fo
let ss1 t = Failover.ss1 t.fo
let port_map t = Failover.port_map t.fo

let default_channel_config =
  {
    Sdnctl.Channel.default_config with
    keepalive_interval = Some (Sim_time.ms 2);
    echo_timeout = Sim_time.ms 5;
    reconnect_base = Sim_time.ms 1;
    reconnect_max = Sim_time.ms 16;
  }

let link_handler link action =
  match (action : Fault.action) with
  | Fault.Down ->
      Link.set_up link false;
      Ok ()
  | Fault.Up ->
      Link.set_up link true;
      (* Also heal any lingering degradation. *)
      Link.set_impairments ~loss:0.0 ~jitter:0 link;
      Ok ()
  | Fault.Degrade { loss; jitter } -> (
      try
        Link.set_impairments ~loss ~jitter link;
        Ok ()
      with Invalid_argument msg -> Error msg)
  | Fault.Flaky _ | Fault.Crash | Fault.Restart ->
      Error "links only support down/up/degrade"

let build engine ?(num_hosts = 3) ?(seed = 42)
    ?(mode = Soft_switch.Fail_standalone) ?(channel = default_channel_config)
    ?(watchdog_period = Sim_time.ms 2) ?(retry = Mgmt.Retry.default)
    ?(failback = false) () =
  if num_hosts < 2 then Error "chaos: need at least 2 hosts"
  else
    let ( let* ) = Result.bind in
    let n = num_hosts in
    let legacy =
      Legacy_switch.create engine ~name:"chaos-legacy" ~ports:(n + 2) ()
    in
    let device =
      Mgmt.Device.create ~switch:legacy ~vendor:Mgmt.Device.Cisco_like ()
    in
    let fault_plan = Mgmt.Fault_plan.create ~seed () in
    let* fo =
      Failover.provision engine ~device ~primary_trunk:n ~backup_trunk:(n + 1)
        ~access_ports:(List.init n Fun.id) ()
    in
    (* The fault plan goes live only after provisioning: the baseline
       bring-up is clean, the chaos run is not. *)
    Mgmt.Device.set_fault_plan device (Some fault_plan);
    let hosts =
      Array.init n (fun i ->
          let h =
            Host.create engine
              ~name:(Printf.sprintf "h%d" i)
              ~mac:(Deployment.host_mac i) ~ip:(Deployment.host_ip i) ()
          in
          h)
    in
    let host_links =
      Array.mapi
        (fun i h -> Link.connect (Host.node h, 0) (Legacy_switch.node legacy, i))
        hosts
    in
    let primary_link =
      Link.connect ~a_to_b:Link.ten_gige ~b_to_a:Link.ten_gige
        (Legacy_switch.node legacy, n)
        (Soft_switch.node (Failover.ss1 fo), 0)
    in
    let backup_link =
      Link.connect ~a_to_b:Link.ten_gige ~b_to_a:Link.ten_gige
        (Legacy_switch.node legacy, n + 1)
        (Soft_switch.node (Failover.ss1 fo), 1)
    in
    let ctrl = Sdnctl.Controller.create engine ~channel_config:channel () in
    Sdnctl.Controller.add_app ctrl (Sdnctl.L2_learning.create ());
    let ss2 = Failover.ss2 fo in
    Soft_switch.set_connection_mode ss2 mode;
    let ss2_dpid = Sdnctl.Controller.attach_switch ctrl ss2 in
    (* Let the handshake and the first keepalives settle. *)
    Engine.run engine ~until:(Sim_time.add (Engine.now engine) (Sim_time.ms 5));
    Failover.start_watchdog ~policy:retry ~failback fo ~period:watchdog_period;
    let t =
      {
        engine;
        seed;
        injector = Fault.create engine;
        hosts;
        host_links;
        legacy;
        device;
        fault_plan;
        fo;
        ctrl;
        ss2_dpid;
        primary_link;
        backup_link;
        pings_sent = 0;
      }
    in
    let reg = Fault.register t.injector in
    reg ~target:"channel" (fun action ->
        let ch = Sdnctl.Controller.channel t.ctrl t.ss2_dpid in
        match action with
        | Fault.Down ->
            Sdnctl.Channel.set_down ch true;
            Ok ()
        | Fault.Up ->
            Sdnctl.Channel.set_down ch false;
            Ok ()
        | Fault.Degrade _ | Fault.Flaky _ | Fault.Crash | Fault.Restart ->
            Error "channel only supports down/up");
    reg ~target:"mgmt" (fun action ->
        match action with
        | Fault.Flaky k ->
            Mgmt.Fault_plan.fail_next fault_plan k;
            Ok ()
        | Fault.Down ->
            Mgmt.Fault_plan.set_fail_probability fault_plan 1.0;
            Ok ()
        | Fault.Up ->
            Mgmt.Fault_plan.set_fail_probability fault_plan 0.0;
            Ok ()
        | Fault.Degrade _ | Fault.Crash | Fault.Restart ->
            Error "mgmt supports flaky/down/up");
    reg ~target:"trunk:primary" (link_handler primary_link);
    reg ~target:"trunk:backup" (link_handler backup_link);
    Array.iteri
      (fun i link ->
        reg ~target:(Printf.sprintf "host:%d" i) (link_handler link))
      host_links;
    let switch_handler sw ~restarted action =
      match (action : Fault.action) with
      | Fault.Crash ->
          Soft_switch.crash sw;
          Ok ()
      | Fault.Restart ->
          Soft_switch.restart sw;
          restarted ();
          Ok ()
      | Fault.Down | Fault.Up | Fault.Degrade _ | Fault.Flaky _ ->
          Error "switches only support crash/restart"
    in
    reg ~target:"switch:ss1"
      (switch_handler (Failover.ss1 fo) ~restarted:(fun () ->
           (* SS_1 is statically programmed by the manager, not the
              controller, so a restart re-pushes the translator rules. *)
           let trunk_port =
             match Failover.active fo with `Primary -> 0 | `Backup -> 1
           in
           Translator.reinstall ~trunk_port ~patch_base:Failover.patch_base
             (Failover.ss1 fo) (Failover.port_map fo)));
    reg ~target:"switch:ss2"
      (switch_handler ss2 ~restarted:(fun () ->
           (* The controller's channel keepalive notices the outage and
              resyncs the flows on reconnect — nothing to do here. *)
           ()));
    Ok t

type report = {
  duration : Sim_time.span;
  pings_sent : int;
  pings_answered : int;
  probe_pairs : int;
  probe_answered : int;
  faults : Fault.applied list;
  reconnects : int;
  resyncs : int;
  mgmt_retries : int;
  activation_retries : int;
  failovers : int;
  failbacks : int;
  standalone_forwards : int;
  channel_queue_drops : int;
  channel_dropped : int;
  mgmt_faults_injected : int;
  watchdog : Failover.watchdog_status;
  final_active : [ `Primary | `Backup ];
  final_connected : bool;
  recovered : bool;
  slo_evaluations : int;
  slo_breaches : (string * (int * int option) list) list;
  stage_slis : (string * Telemetry.Profile.stats) list;
  postmortem : Telemetry.Postmortem.snapshot option;
}

let retry_ops =
  [
    "manager.load_candidate";
    "manager.commit";
    "manager.verify";
    "manager.rollback";
    "failover.activate_backup";
    "failover.activate_primary";
  ]

let mgmt_retries_total () =
  List.fold_left
    (fun acc op ->
      acc
      + Telemetry.Registry.Counter.value
          (Telemetry.Registry.Counter.v ~labels:[ ("op", op) ] "retries_total"))
    0 retry_ops

let answered t = Array.fold_left (fun acc h -> acc + Host.echo_replies h) 0 t.hosts

(* Deterministic probe traffic: cycle through every ordered host pair so
   fresh (never-communicated) pairs keep appearing — those are the ones
   that need the controller, or its fail-standalone substitute. *)
let ping_pair t k =
  let n = Array.length t.hosts in
  let pairs = n * (n - 1) in
  let idx = k mod pairs in
  let src = idx / (n - 1) in
  let rest = idx mod (n - 1) in
  let dst = if rest >= src then rest + 1 else rest in
  t.pings_sent <- t.pings_sent + 1;
  Host.ping t.hosts.(src)
    ~dst_mac:(Host.mac t.hosts.(dst))
    ~dst_ip:(Host.ip t.hosts.(dst))
    ~seq:t.pings_sent

let run_recorded t ~recorder ~script ~duration ~ping_interval =
  let ( let* ) = Result.bind in
    let* _events = Fault.run_script t.injector script in
    (* SLO rules evaluated on the engine clock during the storm and the
       recovery grace; their firing windows land in the report. *)
    let alerts = Telemetry.Alert.create () in
    let ch = channel t in
    Telemetry.Alert.add_rule alerts ~name:"control-channel-up"
      ~help:"the OpenFlow channel must stay connected"
      (Telemetry.Alert.Sampled
         (fun _now ->
           Some
             (match Sdnctl.Channel.state ch with
             | Sdnctl.Channel.Connected -> 1.0
             | Sdnctl.Channel.Disconnected -> 0.0)))
      (Telemetry.Alert.Below 0.5);
    let answered_series =
      Telemetry.Timeseries.create ~name:"pings_answered_total" ()
    in
    Telemetry.Alert.add_rule alerts ~name:"probe-liveness"
      ~help:"probe answers must keep arriving"
      (Telemetry.Alert.Series answered_series)
      (Telemetry.Alert.Rate_below
         { per_second = 1.0; window = Sim_time.ms 3 });
    let answered_before = answered t in
    let stop = Sim_time.add (Engine.now t.engine) duration in
    (* Evaluate only during the storm: after it, probes stop by design,
       so a liveness rule would "breach" on the silence. *)
    let slo_tick () =
      let now = Engine.now t.engine in
      if Sim_time.( <= ) now stop then begin
        let now_ns = Sim_time.to_ns now in
        Telemetry.Timeseries.record answered_series ~ts_ns:now_ns
          (float_of_int (answered t));
        Telemetry.Alert.eval alerts ~now_ns
      end;
      Sim_time.( < ) now stop
    in
    Engine.schedule_every t.engine (Sim_time.us 500) slo_tick;
    let rec traffic k () =
      if Sim_time.( < ) (Engine.now t.engine) stop then begin
        ping_pair t k;
        Engine.schedule_after t.engine ping_interval (traffic (k + 1))
      end
    in
    traffic 0 ();
    Engine.run t.engine ~until:stop;
    let pings_sent = t.pings_sent in
    let pings_answered = answered t - answered_before in
    (* Recovery probe: after the storm, one ping per ordered pair, then a
       grace period.  All answered = the deployment healed. *)
    let probe_before = answered t in
    let n = Array.length t.hosts in
    let probe_pairs = n * (n - 1) in
    (* The recovery probe runs under a trace collector so the report can
       also say how long each forwarding stage took after healing — the
       per-stage latency SLIs. *)
    let (), probe_traces =
      Telemetry.Trace.with_collector (fun _collector ->
          for k = 0 to probe_pairs - 1 do
            ping_pair t k
          done;
          Engine.run t.engine
            ~until:(Sim_time.add (Engine.now t.engine) (Sim_time.ms 20)))
    in
    let probe_answered = answered t - probe_before in
    let stage_slis =
      let view =
        Trace_view.make
          ~legacy_trunk:
            [
              ( Legacy_switch.name t.legacy,
                match Failover.active t.fo with
                | `Primary -> n
                | `Backup -> n + 1 );
            ]
          ~ss1:[ Soft_switch.name (ss1 t) ]
          ~ss2:[ Soft_switch.name (ss2 t) ]
          ()
      in
      let profile = Telemetry.Profile.create () in
      Telemetry.Profile.record_traces
        ~stage_of:(Trace_view.semantic view)
        profile probe_traces;
      List.filter_map
        (fun stage ->
          Option.map
            (fun stats -> (stage, stats))
            (Telemetry.Profile.stage_stats profile ~stage))
        (Telemetry.Profile.stages profile)
    in
    (* Capture-at-finalize: if anything trigger-worthy landed in the
       recorder (a fault, an alert going firing, a rollback/abort), bundle
       the event window with the recovery-probe spans and the liveness
       series into a deterministic snapshot. *)
    let postmortem =
      Telemetry.Postmortem.capture
        ~spans:(Telemetry.Span.of_traces probe_traces)
        ~series:[ answered_series ] ~scenario:"chaos" ~seed:t.seed
        ~captured_ns:(Sim_time.to_ns (Engine.now t.engine))
        recorder
    in
    Ok
      {
        duration;
        pings_sent;
        pings_answered;
        probe_pairs;
        probe_answered;
        faults = Fault.applied t.injector;
        reconnects = Sdnctl.Channel.reconnects ch;
        resyncs = Sdnctl.Controller.resyncs t.ctrl;
        mgmt_retries = mgmt_retries_total ();
        activation_retries = Failover.activation_retries t.fo;
        failovers = Failover.failovers t.fo;
        failbacks = Failover.failbacks t.fo;
        standalone_forwards = Soft_switch.standalone_forwards (ss2 t);
        channel_queue_drops = Sdnctl.Channel.queue_drops ch;
        channel_dropped =
          Sdnctl.Channel.dropped_to_switch ch
          + Sdnctl.Channel.dropped_to_controller ch;
        mgmt_faults_injected = Mgmt.Fault_plan.injected t.fault_plan;
        watchdog = Failover.watchdog_status t.fo;
        final_active = Failover.active t.fo;
        final_connected = Sdnctl.Channel.state ch = Sdnctl.Channel.Connected;
        recovered = probe_answered = probe_pairs;
        slo_evaluations = Telemetry.Alert.evaluations alerts;
        slo_breaches =
          List.map
            (fun rule -> (rule, Telemetry.Alert.breaches alerts rule))
            (Telemetry.Alert.rules alerts);
        stage_slis;
        postmortem;
      }

(* The whole run happens under a freshly installed flight recorder (the
   previous one, if any, is restored afterwards): every fault injection,
   channel drop, retry, failover and alert transition lands in the event
   log, and the end of the run captures a post-mortem snapshot when
   anything trigger-worthy happened. *)
let run t ~script ~duration ?(ping_interval = Sim_time.ms 1) () =
  if duration <= 0 then Error "chaos: duration must be positive"
  else
    let result, _retained =
      Telemetry.Eventlog.with_recorder (fun recorder ->
          Telemetry.Eventlog.set_clock
            (Some (fun () -> Sim_time.to_ns (Engine.now t.engine)));
          Fun.protect
            ~finally:(fun () -> Telemetry.Eventlog.set_clock None)
            (fun () ->
              run_recorded t ~recorder ~script ~duration ~ping_interval))
    in
    result

let pp_report ppf r =
  let open Format in
  fprintf ppf "@[<v>chaos run: %a of scripted faults@," Sim_time.pp_span
    r.duration;
  fprintf ppf "  faults applied:@,";
  List.iter
    (fun (a : Fault.applied) ->
      fprintf ppf "    %a  %a  %s@," Sim_time.pp a.Fault.at Fault.pp_event
        a.Fault.event
        (match a.Fault.outcome with
        | Ok () -> "ok"
        | Error e -> "FAILED: " ^ e))
    r.faults;
  fprintf ppf "  traffic: %d/%d pings answered during the storm@,"
    r.pings_answered r.pings_sent;
  fprintf ppf "  recovery probe: %d/%d pairs reachable -> %s@," r.probe_answered
    r.probe_pairs
    (if r.recovered then "RECOVERED" else "NOT RECOVERED");
  fprintf ppf "  control channel: %d reconnects, %d resyncs, %d msgs lost, %d queue drops (%s)@,"
    r.reconnects r.resyncs r.channel_dropped r.channel_queue_drops
    (if r.final_connected then "connected" else "disconnected");
  fprintf ppf "  fail-standalone forwards: %d@," r.standalone_forwards;
  fprintf ppf "  management: %d faults injected, %d op retries@,"
    r.mgmt_faults_injected r.mgmt_retries;
  fprintf ppf "  failover: %d failovers, %d failbacks, %d activation retries, on %s trunk@,"
    r.failovers r.failbacks r.activation_retries
    (match r.final_active with `Primary -> "primary" | `Backup -> "backup");
  (match r.watchdog with
  | Failover.Gave_up msg -> fprintf ppf "  watchdog GAVE UP: %s@," msg
  | Failover.Idle | Failover.Watching | Failover.Activating -> ());
  let total_breaches =
    List.fold_left (fun acc (_, ws) -> acc + List.length ws) 0 r.slo_breaches
  in
  if r.stage_slis <> [] then begin
    fprintf ppf "  recovery-probe stage SLIs (p50/p95):@,";
    List.iter
      (fun (stage, (s : Telemetry.Profile.stats)) ->
        fprintf ppf "    %-28s %a / %a  (%d samples)@," stage
          Telemetry.Trace.pp_time s.Telemetry.Profile.p50
          Telemetry.Trace.pp_time s.Telemetry.Profile.p95
          s.Telemetry.Profile.count)
      r.stage_slis
  end;
  fprintf ppf "  SLO: %d breach window(s) across %d evaluations@,"
    total_breaches r.slo_evaluations;
  List.iter
    (fun (rule, windows) ->
      List.iter
        (fun (from_ns, until_ns) ->
          match until_ns with
          | Some u ->
              fprintf ppf "    %s breached %a -> %a@," rule Sim_time.pp
                (Sim_time.of_ns from_ns) Sim_time.pp (Sim_time.of_ns u)
          | None ->
              fprintf ppf "    %s breached %a -> still firing@," rule
                Sim_time.pp (Sim_time.of_ns from_ns))
        windows)
    r.slo_breaches;
  (match r.postmortem with
  | None -> fprintf ppf "  post-mortem: no trigger, none captured@,"
  | Some s ->
      let tl = Telemetry.Postmortem.analyze s in
      fprintf ppf
        "  post-mortem: %d event(s) across %d trigger(s), root cause %s@,"
        (List.length s.Telemetry.Postmortem.events)
        (List.length s.Telemetry.Postmortem.triggers)
        (match tl.Telemetry.Postmortem.root_cause with
        | Some e ->
            e.Telemetry.Eventlog.stream ^ "." ^ e.Telemetry.Eventlog.name
        | None -> "unknown"));
  fprintf ppf "@]"
