type flow_mod_command =
  | Add
  | Modify of { strict : bool }
  | Delete of { strict : bool }

type flow_mod = {
  table_id : int;
  command : flow_mod_command;
  priority : int;
  match_ : Of_match.t;
  instructions : Flow_entry.instruction list;
  cookie : int64;
  idle_timeout_s : int option;
  hard_timeout_s : int option;
  out_port : int option;
}

let add_flow ?(table_id = 0) ?(priority = 1000) ?(cookie = 0L) ?idle_timeout_s
    ?hard_timeout_s ~match_ instructions =
  {
    table_id;
    command = Add;
    priority;
    match_;
    instructions;
    cookie;
    idle_timeout_s;
    hard_timeout_s;
    out_port = None;
  }

let delete_flow ?(table_id = 0) ?(strict = false) ?(priority = 0) ?out_port
    match_ =
  {
    table_id;
    command = Delete { strict };
    priority;
    match_;
    instructions = [];
    cookie = 0L;
    idle_timeout_s = None;
    hard_timeout_s = None;
    out_port;
  }

type meter_mod =
  | Add_meter of { id : int; band : Meter_table.band }
  | Modify_meter of { id : int; band : Meter_table.band }
  | Delete_meter of { id : int }

type group_mod =
  | Add_group of { id : int; gtype : Group_table.group_type; buckets : Group_table.bucket list }
  | Modify_group of { id : int; gtype : Group_table.group_type; buckets : Group_table.bucket list }
  | Delete_group of { id : int }

type packet_in_reason = No_match | Action_to_controller

type flow_stat = {
  stat_table_id : int;
  stat_priority : int;
  stat_match : Of_match.t;
  stat_packets : int;
  stat_bytes : int;
}

type port_stat = {
  port_no : int;
  rx_packets : int;
  tx_packets : int;
  rx_bytes : int;
  tx_bytes : int;
}

type t =
  | Hello
  | Echo_request of string
  | Echo_reply of string
  | Features_request
  | Features_reply of { datapath_id : int64; num_ports : int; num_tables : int }
  | Flow_mod of flow_mod
  | Group_mod of group_mod
  | Meter_mod of meter_mod
  | Port_status of { port_no : int; up : bool }
  | Packet_in of { in_port : int; reason : packet_in_reason; packet : Netpkt.Packet.t }
  | Packet_out of { in_port : int option; actions : Of_action.t list; packet : Netpkt.Packet.t }
  | Flow_stats_request of { table_id : int option }
  | Flow_stats_reply of flow_stat list
  | Port_stats_request
  | Port_stats_reply of port_stat list
  | Barrier_request of int
  | Barrier_reply of int
  | Error of string

let pp fmt = function
  | Hello -> Format.pp_print_string fmt "hello"
  | Echo_request _ -> Format.pp_print_string fmt "echo-request"
  | Echo_reply _ -> Format.pp_print_string fmt "echo-reply"
  | Features_request -> Format.pp_print_string fmt "features-request"
  | Features_reply { datapath_id; num_ports; num_tables } ->
      Format.fprintf fmt "features-reply dpid=%Lx ports=%d tables=%d" datapath_id
        num_ports num_tables
  | Flow_mod fm ->
      let cmd =
        match fm.command with
        | Add -> "add"
        | Modify { strict } -> if strict then "modify-strict" else "modify"
        | Delete { strict } -> if strict then "delete-strict" else "delete"
      in
      Format.fprintf fmt "flow-mod %s table=%d prio=%d %a" cmd fm.table_id
        fm.priority Of_match.pp fm.match_
  | Group_mod (Add_group { id; _ }) -> Format.fprintf fmt "group-mod add %d" id
  | Group_mod (Modify_group { id; _ }) -> Format.fprintf fmt "group-mod modify %d" id
  | Group_mod (Delete_group { id }) -> Format.fprintf fmt "group-mod delete %d" id
  | Meter_mod (Add_meter { id; band }) ->
      Format.fprintf fmt "meter-mod add %d (%d kbps)" id band.Meter_table.rate_kbps
  | Meter_mod (Modify_meter { id; band }) ->
      Format.fprintf fmt "meter-mod modify %d (%d kbps)" id band.Meter_table.rate_kbps
  | Meter_mod (Delete_meter { id }) -> Format.fprintf fmt "meter-mod delete %d" id
  | Port_status { port_no; up } ->
      Format.fprintf fmt "port-status %d %s" port_no (if up then "up" else "down")
  | Packet_in { in_port; reason; packet } ->
      Format.fprintf fmt "packet-in port=%d (%s) %a" in_port
        (match reason with No_match -> "no-match" | Action_to_controller -> "action")
        Netpkt.Packet.pp packet
  | Packet_out { in_port; actions; _ } ->
      Format.fprintf fmt "packet-out in_port=%s actions=%a"
        (match in_port with None -> "-" | Some p -> string_of_int p)
        Of_action.pp_list actions
  | Flow_stats_request _ -> Format.pp_print_string fmt "flow-stats-request"
  | Flow_stats_reply stats ->
      Format.fprintf fmt "flow-stats-reply (%d)" (List.length stats)
  | Port_stats_request -> Format.pp_print_string fmt "port-stats-request"
  | Port_stats_reply stats ->
      Format.fprintf fmt "port-stats-reply (%d)" (List.length stats)
  | Barrier_request n -> Format.fprintf fmt "barrier-request %d" n
  | Barrier_reply n -> Format.fprintf fmt "barrier-reply %d" n
  | Error e -> Format.fprintf fmt "error: %s" e
