(** OpenFlow 1.3-style binary framing for {!Of_message}.

    The simulator moves typed messages, but a switch you could actually
    ship speaks bytes; this codec provides the wire form: the standard
    8-byte header (version [0x04], type, length, xid), OXM TLV matches,
    typed actions/instructions, and the message bodies.

    Faithful-but-simplified in two documented ways:
    - L4 port matches always use the [TCP_SRC]/[TCP_DST] OXM ids (this
      library's matches are transport-agnostic);
    - multipart (stats) messages carry only the fields the typed layer
      has; the rest encode as zeros.

    Every value of {!Of_message.t} round-trips: [decode (encode m) = m]
    (property-tested). *)

exception Decode_error of string

val encode : ?xid:int32 -> Of_message.t -> string
(** A complete frame, header included. *)

val decode : string -> Of_message.t * int32
(** Parses one complete frame, returning the message and its xid.
    @raise Decode_error on malformed or truncated input, unknown types,
    or a length field that disagrees with the payload. *)

val decode_stream : string -> (Of_message.t * int32) list
(** Split a byte stream into consecutive frames and decode each — what a
    TCP receive path does.  @raise Decode_error as {!decode}, including
    on trailing garbage. *)

val decode_result : string -> (Of_message.t * int32, string) result
(** {!decode}, but with the parse-total contract as a type: any
    malformed input is [Error], never an exception.  This is the entry
    point the fuzzer drives — if [decode_result] raises anything at all,
    that is a codec bug. *)

val decode_stream_result :
  string -> ((Of_message.t * int32) list, string) result
(** {!decode_stream} under the same total contract. *)

val message_type_code : Of_message.t -> int
(** The OpenFlow header type byte this message encodes to. *)
