(** Controller ↔ switch protocol messages (an OpenFlow-1.3-shaped subset).

    These travel over the {e control channel} — in the original system a
    TCP connection, here a simulated channel with latency (see the
    controller library).  They are deliberately kept as typed values
    rather than wire bytes: the paper's claims do not depend on OpenFlow
    framing, and typed messages keep every layer testable. *)

type flow_mod_command =
  | Add
  | Modify of { strict : bool }
  | Delete of { strict : bool }

type flow_mod = {
  table_id : int;
  command : flow_mod_command;
  priority : int;
  match_ : Of_match.t;
  instructions : Flow_entry.instruction list;
  cookie : int64;
  idle_timeout_s : int option;
  hard_timeout_s : int option;
  out_port : int option;  (** restricts deletes *)
}

val add_flow :
  ?table_id:int ->
  ?priority:int ->
  ?cookie:int64 ->
  ?idle_timeout_s:int ->
  ?hard_timeout_s:int ->
  match_:Of_match.t ->
  Flow_entry.instruction list ->
  flow_mod

val delete_flow :
  ?table_id:int -> ?strict:bool -> ?priority:int -> ?out_port:int ->
  Of_match.t -> flow_mod

type meter_mod =
  | Add_meter of { id : int; band : Meter_table.band }
  | Modify_meter of { id : int; band : Meter_table.band }
  | Delete_meter of { id : int }

type group_mod =
  | Add_group of { id : int; gtype : Group_table.group_type; buckets : Group_table.bucket list }
  | Modify_group of { id : int; gtype : Group_table.group_type; buckets : Group_table.bucket list }
  | Delete_group of { id : int }

type packet_in_reason = No_match | Action_to_controller

type flow_stat = {
  stat_table_id : int;
  stat_priority : int;
  stat_match : Of_match.t;
  stat_packets : int;
  stat_bytes : int;
}

type port_stat = {
  port_no : int;
  rx_packets : int;
  tx_packets : int;
  rx_bytes : int;
  tx_bytes : int;
}

type t =
  | Hello
  | Echo_request of string
  | Echo_reply of string
  | Features_request
  | Features_reply of { datapath_id : int64; num_ports : int; num_tables : int }
  | Flow_mod of flow_mod
  | Group_mod of group_mod
  | Meter_mod of meter_mod
  | Port_status of { port_no : int; up : bool }
      (** link state change on a switch port (OFPT_PORT_STATUS) *)
  | Packet_in of { in_port : int; reason : packet_in_reason; packet : Netpkt.Packet.t }
  | Packet_out of { in_port : int option; actions : Of_action.t list; packet : Netpkt.Packet.t }
  | Flow_stats_request of { table_id : int option }
  | Flow_stats_reply of flow_stat list
  | Port_stats_request
  | Port_stats_reply of port_stat list
  | Barrier_request of int
  | Barrier_reply of int
  | Error of string

val pp : Format.formatter -> t -> unit
