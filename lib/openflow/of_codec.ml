open Netpkt

exception Decode_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Decode_error s)) fmt

(* ---- primitive helpers on top of Netpkt.Wire ---- *)

let w_u64 w v =
  Wire.W.u32 w (Int64.to_int32 (Int64.shift_right_logical v 32));
  Wire.W.u32 w (Int64.to_int32 v)

let r_u64 ~ctx r =
  let hi = Wire.R.u32 ~ctx r and lo = Wire.R.u32 ~ctx r in
  Int64.logor
    (Int64.shift_left (Int64.of_int32 hi) 32)
    (Int64.logand (Int64.of_int32 lo) 0xffffffffL)

let pad w n = for _ = 1 to n do Wire.W.u8 w 0 done
let skip ~ctx r n = Wire.R.skip ~ctx r n

let pad_to_8 w start =
  let len = Wire.W.length w - start in
  pad w ((8 - (len mod 8)) mod 8)

(* Wrap reads of structure-with-length: returns a sub-reader. *)
let sub_reader ~ctx r len = Wire.R.create (Wire.R.bytes ~ctx r len)

(* ---- special port numbers ---- *)

let ofpp_in_port = 0xfffffff8l
let ofpp_all = 0xfffffffcl
let ofpp_flood = 0xfffffffbl
let ofpp_controller = 0xfffffffdl
let ofpp_any = 0xffffffffl

(* ---- OXM ---- *)

let oxm_class = 0x8000

(* field ids per OpenFlow 1.3 *)
let fld_in_port = 0
let fld_eth_dst = 3
let fld_eth_src = 4
let fld_eth_type = 5
let fld_vlan_vid = 6
let fld_vlan_pcp = 7
let fld_ip_dscp = 8
let fld_ip_proto = 10
let fld_ipv4_src = 11
let fld_ipv4_dst = 12
let fld_tcp_src = 13
let fld_tcp_dst = 14

let oxm_header w ~field ~hasmask ~len =
  Wire.W.u16 w oxm_class;
  Wire.W.u8 w ((field lsl 1) lor (if hasmask then 1 else 0));
  Wire.W.u8 w len

let oxm_u8 w field v =
  oxm_header w ~field ~hasmask:false ~len:1;
  Wire.W.u8 w v

let oxm_u16 w field v =
  oxm_header w ~field ~hasmask:false ~len:2;
  Wire.W.u16 w v

let oxm_u32 w field v =
  oxm_header w ~field ~hasmask:false ~len:4;
  Wire.W.u32 w v

let oxm_mac w field ?mask mac =
  match mask with
  | None ->
      oxm_header w ~field ~hasmask:false ~len:6;
      Wire.W.bytes w (Mac_addr.to_bytes mac)
  | Some m ->
      oxm_header w ~field ~hasmask:true ~len:12;
      Wire.W.bytes w (Mac_addr.to_bytes mac);
      Wire.W.bytes w (Mac_addr.to_bytes m)

let oxm_prefix w field p =
  let len = Ipv4_addr.Prefix.length p in
  if len = 32 then begin
    oxm_header w ~field ~hasmask:false ~len:4;
    Wire.W.bytes w (Ipv4_addr.to_bytes (Ipv4_addr.Prefix.base p))
  end
  else begin
    oxm_header w ~field ~hasmask:true ~len:8;
    Wire.W.bytes w (Ipv4_addr.to_bytes (Ipv4_addr.Prefix.base p));
    Wire.W.bytes w (Ipv4_addr.to_bytes (Ipv4_addr.Prefix.mask p))
  end

let ofpvid_present = 0x1000

let encode_oxms w (m : Of_match.t) =
  Option.iter (fun p -> oxm_u32 w fld_in_port (Int32.of_int p)) m.Of_match.in_port;
  Option.iter
    (fun (t : Of_match.mac_test) ->
      if Mac_addr.equal t.Of_match.mask Mac_addr.broadcast then
        oxm_mac w fld_eth_dst t.Of_match.value
      else oxm_mac w fld_eth_dst ~mask:t.Of_match.mask t.Of_match.value)
    m.Of_match.eth_dst;
  Option.iter
    (fun (t : Of_match.mac_test) ->
      if Mac_addr.equal t.Of_match.mask Mac_addr.broadcast then
        oxm_mac w fld_eth_src t.Of_match.value
      else oxm_mac w fld_eth_src ~mask:t.Of_match.mask t.Of_match.value)
    m.Of_match.eth_src;
  Option.iter (fun ty -> oxm_u16 w fld_eth_type ty) m.Of_match.eth_type;
  Option.iter
    (fun v ->
      match v with
      | Of_match.Absent -> oxm_u16 w fld_vlan_vid 0
      | Of_match.Present ->
          oxm_header w ~field:fld_vlan_vid ~hasmask:true ~len:4;
          Wire.W.u16 w ofpvid_present;
          Wire.W.u16 w ofpvid_present
      | Of_match.Vid vid -> oxm_u16 w fld_vlan_vid (ofpvid_present lor vid))
    m.Of_match.vlan;
  Option.iter (fun p -> oxm_u8 w fld_vlan_pcp p) m.Of_match.vlan_pcp;
  Option.iter (fun v -> oxm_u8 w fld_ip_dscp v) m.Of_match.ip_tos;
  Option.iter (fun p -> oxm_u8 w fld_ip_proto p) m.Of_match.ip_proto;
  Option.iter (fun p -> oxm_prefix w fld_ipv4_src p) m.Of_match.ip_src;
  Option.iter (fun p -> oxm_prefix w fld_ipv4_dst p) m.Of_match.ip_dst;
  Option.iter (fun p -> oxm_u16 w fld_tcp_src p) m.Of_match.l4_src;
  Option.iter (fun p -> oxm_u16 w fld_tcp_dst p) m.Of_match.l4_dst

let encode_match w (m : Of_match.t) =
  let start = Wire.W.length w in
  Wire.W.u16 w 1 (* OFPMT_OXM *);
  (* Buffers cannot backpatch, so build the OXM payload separately. *)
  let oxms = Wire.W.create () in
  encode_oxms oxms m;
  let body = Wire.W.contents oxms in
  Wire.W.u16 w (4 + String.length body);
  Wire.W.bytes w body;
  pad_to_8 w start

let prefix_of_mask ~field base mask =
  let m = Int32.to_int (Ipv4_addr.to_int32 (Ipv4_addr.of_bytes mask)) land 0xffffffff in
  (* Count leading ones; must be contiguous. *)
  let rec count i =
    if i >= 32 then 32
    else if m land (1 lsl (31 - i)) <> 0 then count (i + 1)
    else i
  in
  let len = count 0 in
  let expected = if len = 0 then 0 else 0xffffffff lsl (32 - len) land 0xffffffff in
  if m <> expected then fail "oxm field %d: non-contiguous ipv4 mask" field;
  Ipv4_addr.Prefix.make (Ipv4_addr.of_bytes base) len

let decode_match r =
  let ctx = "of_match" in
  let start = Wire.R.pos r in
  let typ = Wire.R.u16 ~ctx r in
  if typ <> 1 then fail "match: unsupported type %d" typ;
  let total = Wire.R.u16 ~ctx r in
  if total < 4 then fail "match: bad length %d" total;
  let oxms = sub_reader ~ctx r (total - 4) in
  let m = ref Of_match.any in
  while Wire.R.remaining oxms > 0 do
    let klass = Wire.R.u16 ~ctx oxms in
    if klass <> oxm_class then fail "oxm: unsupported class 0x%04x" klass;
    let fh = Wire.R.u8 ~ctx oxms in
    let field = fh lsr 1 and hasmask = fh land 1 = 1 in
    let len = Wire.R.u8 ~ctx oxms in
    let payload = Wire.R.bytes ~ctx oxms len in
    let pr = Wire.R.create payload in
    let u8 () = Wire.R.u8 ~ctx pr in
    let u16 () = Wire.R.u16 ~ctx pr in
    let u32 () = Wire.R.u32 ~ctx pr in
    let bytes n = Wire.R.bytes ~ctx pr n in
    let cur = !m in
    m :=
      (match field with
      | f when f = fld_in_port -> { cur with Of_match.in_port = Some (Int32.to_int (u32 ())) }
      | f when f = fld_eth_dst ->
          let value = Mac_addr.of_bytes (bytes 6) in
          let mask = if hasmask then Mac_addr.of_bytes (bytes 6) else Mac_addr.broadcast in
          { cur with Of_match.eth_dst = Some { Of_match.value; mask } }
      | f when f = fld_eth_src ->
          let value = Mac_addr.of_bytes (bytes 6) in
          let mask = if hasmask then Mac_addr.of_bytes (bytes 6) else Mac_addr.broadcast in
          { cur with Of_match.eth_src = Some { Of_match.value; mask } }
      | f when f = fld_eth_type -> { cur with Of_match.eth_type = Some (u16 ()) }
      | f when f = fld_vlan_vid ->
          let value = u16 () in
          if hasmask then begin
            let mask = u16 () in
            if value = ofpvid_present && mask = ofpvid_present then
              { cur with Of_match.vlan = Some Of_match.Present }
            else fail "oxm vlan_vid: unsupported mask 0x%04x/0x%04x" value mask
          end
          else if value = 0 then { cur with Of_match.vlan = Some Of_match.Absent }
          else if value land ofpvid_present <> 0 then
            { cur with Of_match.vlan = Some (Of_match.Vid (value land 0xfff)) }
          else fail "oxm vlan_vid: bad value 0x%04x" value
      | f when f = fld_vlan_pcp -> { cur with Of_match.vlan_pcp = Some (u8 ()) }
      | f when f = fld_ip_dscp -> { cur with Of_match.ip_tos = Some (u8 ()) }
      | f when f = fld_ip_proto -> { cur with Of_match.ip_proto = Some (u8 ()) }
      | f when f = fld_ipv4_src ->
          let base = bytes 4 in
          let prefix =
            if hasmask then prefix_of_mask ~field base (bytes 4)
            else Ipv4_addr.Prefix.make (Ipv4_addr.of_bytes base) 32
          in
          { cur with Of_match.ip_src = Some prefix }
      | f when f = fld_ipv4_dst ->
          let base = bytes 4 in
          let prefix =
            if hasmask then prefix_of_mask ~field base (bytes 4)
            else Ipv4_addr.Prefix.make (Ipv4_addr.of_bytes base) 32
          in
          { cur with Of_match.ip_dst = Some prefix }
      | f when f = fld_tcp_src -> { cur with Of_match.l4_src = Some (u16 ()) }
      | f when f = fld_tcp_dst -> { cur with Of_match.l4_dst = Some (u16 ()) }
      | f -> fail "oxm: unsupported field %d" f)
  done;
  (* consume the padding up to 8-byte alignment *)
  let consumed = Wire.R.pos r - start in
  skip ~ctx r ((8 - (consumed mod 8)) mod 8);
  !m

(* ---- actions ---- *)

let experimenter_drop = 0x48415254l (* "HART" *)

let encode_set_field w oxm_writer =
  let oxms = Wire.W.create () in
  oxm_writer oxms;
  let body = Wire.W.contents oxms in
  let raw_len = 4 + String.length body in
  let padded = (raw_len + 7) / 8 * 8 in
  Wire.W.u16 w 25 (* OFPAT_SET_FIELD *);
  Wire.W.u16 w padded;
  Wire.W.bytes w body;
  pad w (padded - raw_len)

let encode_action w (a : Of_action.t) =
  match a with
  | Of_action.Output target ->
      Wire.W.u16 w 0;
      Wire.W.u16 w 16;
      let port, max_len =
        match target with
        | Of_action.Physical p -> (Int32.of_int p, 0)
        | Of_action.In_port -> (ofpp_in_port, 0)
        | Of_action.All -> (ofpp_all, 0)
        | Of_action.Flood -> (ofpp_flood, 0)
        | Of_action.Controller n -> (ofpp_controller, n)
      in
      Wire.W.u32 w port;
      Wire.W.u16 w max_len;
      pad w 6
  | Of_action.Group gid ->
      Wire.W.u16 w 22;
      Wire.W.u16 w 8;
      Wire.W.u32 w (Int32.of_int gid)
  | Of_action.Push_vlan ->
      Wire.W.u16 w 17;
      Wire.W.u16 w 8;
      Wire.W.u16 w 0x8100;
      pad w 2
  | Of_action.Pop_vlan ->
      Wire.W.u16 w 18;
      Wire.W.u16 w 8;
      pad w 4
  | Of_action.Set_vlan_vid v ->
      encode_set_field w (fun o -> oxm_u16 o fld_vlan_vid (ofpvid_present lor v))
  | Of_action.Set_vlan_pcp p -> encode_set_field w (fun o -> oxm_u8 o fld_vlan_pcp p)
  | Of_action.Set_eth_src mac -> encode_set_field w (fun o -> oxm_mac o fld_eth_src mac)
  | Of_action.Set_eth_dst mac -> encode_set_field w (fun o -> oxm_mac o fld_eth_dst mac)
  | Of_action.Set_ip_src ip ->
      encode_set_field w (fun o -> oxm_prefix o fld_ipv4_src (Ipv4_addr.Prefix.make ip 32))
  | Of_action.Set_ip_dst ip ->
      encode_set_field w (fun o -> oxm_prefix o fld_ipv4_dst (Ipv4_addr.Prefix.make ip 32))
  | Of_action.Set_ip_tos v -> encode_set_field w (fun o -> oxm_u8 o fld_ip_dscp v)
  | Of_action.Set_l4_src p -> encode_set_field w (fun o -> oxm_u16 o fld_tcp_src p)
  | Of_action.Set_l4_dst p -> encode_set_field w (fun o -> oxm_u16 o fld_tcp_dst p)
  | Of_action.Drop ->
      (* no wire form in OpenFlow; carried as an experimenter action *)
      Wire.W.u16 w 0xffff;
      Wire.W.u16 w 8;
      Wire.W.u32 w experimenter_drop

let encode_actions w actions = List.iter (encode_action w) actions

let decode_set_field pr =
  let ctx = "set_field" in
  let klass = Wire.R.u16 ~ctx pr in
  if klass <> oxm_class then fail "set_field: bad class";
  let fh = Wire.R.u8 ~ctx pr in
  let field = fh lsr 1 in
  let _len = Wire.R.u8 ~ctx pr in
  match field with
  | f when f = fld_vlan_vid ->
      Of_action.Set_vlan_vid (Wire.R.u16 ~ctx pr land 0xfff)
  | f when f = fld_vlan_pcp -> Of_action.Set_vlan_pcp (Wire.R.u8 ~ctx pr)
  | f when f = fld_eth_src -> Of_action.Set_eth_src (Mac_addr.of_bytes (Wire.R.bytes ~ctx pr 6))
  | f when f = fld_eth_dst -> Of_action.Set_eth_dst (Mac_addr.of_bytes (Wire.R.bytes ~ctx pr 6))
  | f when f = fld_ipv4_src -> Of_action.Set_ip_src (Ipv4_addr.of_bytes (Wire.R.bytes ~ctx pr 4))
  | f when f = fld_ipv4_dst -> Of_action.Set_ip_dst (Ipv4_addr.of_bytes (Wire.R.bytes ~ctx pr 4))
  | f when f = fld_ip_dscp -> Of_action.Set_ip_tos (Wire.R.u8 ~ctx pr)
  | f when f = fld_tcp_src -> Of_action.Set_l4_src (Wire.R.u16 ~ctx pr)
  | f when f = fld_tcp_dst -> Of_action.Set_l4_dst (Wire.R.u16 ~ctx pr)
  | f -> fail "set_field: unsupported field %d" f

let decode_action r =
  let ctx = "of_action" in
  let typ = Wire.R.u16 ~ctx r in
  let len = Wire.R.u16 ~ctx r in
  if len < 4 then fail "action: bad length %d" len;
  let pr = sub_reader ~ctx r (len - 4) in
  match typ with
  | 0 ->
      let port = Wire.R.u32 ~ctx pr in
      let max_len = Wire.R.u16 ~ctx pr in
      let target =
        if Int32.equal port ofpp_in_port then Of_action.In_port
        else if Int32.equal port ofpp_all then Of_action.All
        else if Int32.equal port ofpp_flood then Of_action.Flood
        else if Int32.equal port ofpp_controller then Of_action.Controller max_len
        else Of_action.Physical (Int32.to_int port)
      in
      Of_action.Output target
  | 22 -> Of_action.Group (Int32.to_int (Wire.R.u32 ~ctx pr))
  | 17 -> Of_action.Push_vlan
  | 18 -> Of_action.Pop_vlan
  | 25 -> decode_set_field pr
  | 0xffff ->
      let experimenter = Wire.R.u32 ~ctx pr in
      if Int32.equal experimenter experimenter_drop then Of_action.Drop
      else fail "action: unknown experimenter 0x%08lx" experimenter
  | t -> fail "action: unsupported type %d" t

let decode_actions r =
  let actions = ref [] in
  while Wire.R.remaining r > 0 do
    actions := decode_action r :: !actions
  done;
  List.rev !actions

(* ---- instructions ---- *)

let encode_instruction w (i : Flow_entry.instruction) =
  match i with
  | Flow_entry.Goto_table n ->
      Wire.W.u16 w 1;
      Wire.W.u16 w 8;
      Wire.W.u8 w n;
      pad w 3
  | Flow_entry.Write_actions actions | Flow_entry.Apply_actions actions ->
      let body = Wire.W.create () in
      encode_actions body actions;
      let s = Wire.W.contents body in
      Wire.W.u16 w (match i with Flow_entry.Write_actions _ -> 3 | _ -> 4);
      Wire.W.u16 w (8 + String.length s);
      pad w 4;
      Wire.W.bytes w s
  | Flow_entry.Clear_actions ->
      Wire.W.u16 w 5;
      Wire.W.u16 w 8;
      pad w 4
  | Flow_entry.Meter id ->
      Wire.W.u16 w 6;
      Wire.W.u16 w 8;
      Wire.W.u32 w (Int32.of_int id)

let decode_instruction r =
  let ctx = "instruction" in
  let typ = Wire.R.u16 ~ctx r in
  let len = Wire.R.u16 ~ctx r in
  if len < 4 then fail "instruction: bad length";
  let pr = sub_reader ~ctx r (len - 4) in
  match typ with
  | 1 -> Flow_entry.Goto_table (Wire.R.u8 ~ctx pr)
  | 3 | 4 ->
      skip ~ctx pr 4;
      let actions = decode_actions pr in
      if typ = 3 then Flow_entry.Write_actions actions
      else Flow_entry.Apply_actions actions
  | 5 -> Flow_entry.Clear_actions
  | 6 -> Flow_entry.Meter (Int32.to_int (Wire.R.u32 ~ctx pr))
  | t -> fail "instruction: unsupported type %d" t

let decode_instructions r =
  let instructions = ref [] in
  while Wire.R.remaining r > 0 do
    instructions := decode_instruction r :: !instructions
  done;
  List.rev !instructions

(* ---- message bodies ---- *)

let message_type_code (m : Of_message.t) =
  match m with
  | Of_message.Hello -> 0
  | Of_message.Error _ -> 1
  | Of_message.Echo_request _ -> 2
  | Of_message.Echo_reply _ -> 3
  | Of_message.Features_request -> 5
  | Of_message.Features_reply _ -> 6
  | Of_message.Packet_in _ -> 10
  | Of_message.Packet_out _ -> 13
  | Of_message.Flow_mod _ -> 14
  | Of_message.Group_mod _ -> 15
  | Of_message.Port_status _ -> 12
  | Of_message.Flow_stats_request _ | Of_message.Port_stats_request -> 18
  | Of_message.Flow_stats_reply _ | Of_message.Port_stats_reply _ -> 19
  | Of_message.Barrier_request _ -> 20
  | Of_message.Barrier_reply _ -> 21
  | Of_message.Meter_mod _ -> 29

let flow_mod_command_code = function
  | Of_message.Add -> 0
  | Of_message.Modify { strict = false } -> 1
  | Of_message.Modify { strict = true } -> 2
  | Of_message.Delete { strict = false } -> 3
  | Of_message.Delete { strict = true } -> 4

let encode_body w (m : Of_message.t) =
  match m with
  | Of_message.Hello | Of_message.Features_request -> ()
  | Of_message.Echo_request s | Of_message.Echo_reply s -> Wire.W.bytes w s
  | Of_message.Error msg ->
      Wire.W.u16 w 0xffff;
      Wire.W.u16 w 0;
      Wire.W.bytes w msg
  | Of_message.Features_reply { datapath_id; num_ports; num_tables } ->
      w_u64 w datapath_id;
      Wire.W.u32 w 0l (* n_buffers *);
      Wire.W.u8 w num_tables;
      Wire.W.u8 w 0 (* auxiliary_id *);
      pad w 2;
      Wire.W.u32 w 0l (* capabilities *);
      (* OF1.3 moved ports to multipart; we carry the count in the
         reserved word so the typed layer round-trips. *)
      Wire.W.u32 w (Int32.of_int num_ports)
  | Of_message.Barrier_request n | Of_message.Barrier_reply n ->
      Wire.W.u32 w (Int32.of_int n)
  | Of_message.Flow_mod fm ->
      w_u64 w fm.Of_message.cookie;
      w_u64 w 0L (* cookie mask *);
      Wire.W.u8 w fm.Of_message.table_id;
      Wire.W.u8 w (flow_mod_command_code fm.Of_message.command);
      Wire.W.u16 w (Option.value fm.Of_message.idle_timeout_s ~default:0);
      Wire.W.u16 w (Option.value fm.Of_message.hard_timeout_s ~default:0);
      Wire.W.u16 w fm.Of_message.priority;
      Wire.W.u32 w 0xffffffffl (* buffer id: none *);
      Wire.W.u32 w
        (match fm.Of_message.out_port with
        | Some p -> Int32.of_int p
        | None -> ofpp_any);
      Wire.W.u32 w 0xffffffffl (* out group: any *);
      Wire.W.u16 w 0 (* flags *);
      pad w 2;
      encode_match w fm.Of_message.match_;
      List.iter (encode_instruction w) fm.Of_message.instructions
  | Of_message.Group_mod gm ->
      let command, id, gtype, buckets =
        match gm with
        | Of_message.Add_group { id; gtype; buckets } -> (0, id, gtype, buckets)
        | Of_message.Modify_group { id; gtype; buckets } -> (1, id, gtype, buckets)
        | Of_message.Delete_group { id } -> (2, id, Group_table.All, [])
      in
      Wire.W.u16 w command;
      Wire.W.u8 w
        (match gtype with
        | Group_table.All -> 0
        | Group_table.Select -> 1
        | Group_table.Indirect -> 2);
      pad w 1;
      Wire.W.u32 w (Int32.of_int id);
      List.iter
        (fun (b : Group_table.bucket) ->
          let body = Wire.W.create () in
          encode_actions body b.Group_table.actions;
          let s = Wire.W.contents body in
          Wire.W.u16 w (16 + String.length s);
          Wire.W.u16 w b.Group_table.weight;
          Wire.W.u32 w ofpp_any (* watch port *);
          Wire.W.u32 w 0xffffffffl (* watch group *);
          pad w 4;
          Wire.W.bytes w s)
        buckets
  | Of_message.Meter_mod mm ->
      let command, id, band =
        match mm with
        | Of_message.Add_meter { id; band } -> (0, id, Some band)
        | Of_message.Modify_meter { id; band } -> (1, id, Some band)
        | Of_message.Delete_meter { id } -> (2, id, None)
      in
      Wire.W.u16 w command;
      Wire.W.u16 w 0b101 (* flags: KBPS | BURST *);
      Wire.W.u32 w (Int32.of_int id);
      Option.iter
        (fun (b : Meter_table.band) ->
          Wire.W.u16 w 1 (* OFPMBT_DROP *);
          Wire.W.u16 w 16;
          Wire.W.u32 w (Int32.of_int b.Meter_table.rate_kbps);
          Wire.W.u32 w (Int32.of_int (b.Meter_table.burst_kb * 8)) (* kbits *);
          pad w 4)
        band
  | Of_message.Port_status { port_no; up } ->
      Wire.W.u8 w (if up then 2 (* modify *) else 1 (* delete-ish: down *));
      pad w 7;
      Wire.W.u32 w (Int32.of_int port_no);
      (* simplified ofp_port tail: config + state; state bit 0 = link down *)
      Wire.W.u32 w 0l;
      Wire.W.u32 w (if up then 0l else 1l)
  | Of_message.Packet_in { in_port; reason; packet } ->
      let data = Packet.encode packet in
      Wire.W.u32 w 0xffffffffl (* buffer id: none *);
      Wire.W.u16 w (String.length data);
      Wire.W.u8 w
        (match reason with
        | Of_message.No_match -> 0
        | Of_message.Action_to_controller -> 1);
      Wire.W.u8 w 0 (* table id *);
      w_u64 w 0L (* cookie *);
      let ingress = in_port in
      encode_match w Of_match.(any |> in_port ingress);
      pad w 2;
      Wire.W.bytes w data
  | Of_message.Packet_out { in_port; actions; packet } ->
      let acts = Wire.W.create () in
      encode_actions acts actions;
      let acts = Wire.W.contents acts in
      Wire.W.u32 w 0xffffffffl (* buffer id: none *);
      Wire.W.u32 w
        (match in_port with Some p -> Int32.of_int p | None -> ofpp_controller);
      Wire.W.u16 w (String.length acts);
      pad w 6;
      Wire.W.bytes w acts;
      Wire.W.bytes w (Packet.encode packet)
  | Of_message.Flow_stats_request { table_id } ->
      Wire.W.u16 w 1 (* OFPMP_FLOW *);
      Wire.W.u16 w 0;
      pad w 4;
      Wire.W.u8 w (Option.value table_id ~default:0xff);
      pad w 3;
      Wire.W.u32 w ofpp_any;
      Wire.W.u32 w 0xffffffffl;
      pad w 4;
      w_u64 w 0L;
      w_u64 w 0L;
      encode_match w Of_match.any
  | Of_message.Port_stats_request ->
      Wire.W.u16 w 4 (* OFPMP_PORT_STATS *);
      Wire.W.u16 w 0;
      pad w 4;
      Wire.W.u32 w ofpp_any;
      pad w 4
  | Of_message.Flow_stats_reply stats ->
      Wire.W.u16 w 1;
      Wire.W.u16 w 0;
      pad w 4;
      List.iter
        (fun (s : Of_message.flow_stat) ->
          let entry = Wire.W.create () in
          Wire.W.u8 entry s.Of_message.stat_table_id;
          pad entry 1;
          Wire.W.u32 entry 0l (* duration sec *);
          Wire.W.u32 entry 0l (* duration nsec *);
          Wire.W.u16 entry s.Of_message.stat_priority;
          Wire.W.u16 entry 0 (* idle *);
          Wire.W.u16 entry 0 (* hard *);
          Wire.W.u16 entry 0 (* flags *);
          pad entry 4;
          w_u64 entry 0L (* cookie *);
          w_u64 entry (Int64.of_int s.Of_message.stat_packets);
          w_u64 entry (Int64.of_int s.Of_message.stat_bytes);
          encode_match entry s.Of_message.stat_match;
          let body = Wire.W.contents entry in
          Wire.W.u16 w (2 + String.length body);
          Wire.W.bytes w body)
        stats
  | Of_message.Port_stats_reply stats ->
      Wire.W.u16 w 4;
      Wire.W.u16 w 0;
      pad w 4;
      List.iter
        (fun (s : Of_message.port_stat) ->
          Wire.W.u32 w (Int32.of_int s.Of_message.port_no);
          pad w 4;
          w_u64 w (Int64.of_int s.Of_message.rx_packets);
          w_u64 w (Int64.of_int s.Of_message.tx_packets);
          w_u64 w (Int64.of_int s.Of_message.rx_bytes);
          w_u64 w (Int64.of_int s.Of_message.tx_bytes);
          (* rx/tx dropped, rx/tx errors, frame/over/crc err, collisions *)
          for _ = 1 to 8 do w_u64 w 0L done;
          Wire.W.u32 w 0l;
          Wire.W.u32 w 0l)
        stats

let encode ?(xid = 0l) m =
  let body = Wire.W.create () in
  encode_body body m;
  let body = Wire.W.contents body in
  let w = Wire.W.create () in
  Wire.W.u8 w 0x04 (* OF 1.3 *);
  Wire.W.u8 w (message_type_code m);
  Wire.W.u16 w (8 + String.length body);
  Wire.W.u32 w xid;
  Wire.W.bytes w body;
  Wire.W.contents w

(* ---- decoding ---- *)

let decode_flow_mod r =
  let ctx = "flow_mod" in
  let cookie = r_u64 ~ctx r in
  let _cookie_mask = r_u64 ~ctx r in
  let table_id = Wire.R.u8 ~ctx r in
  let command =
    match Wire.R.u8 ~ctx r with
    | 0 -> Of_message.Add
    | 1 -> Of_message.Modify { strict = false }
    | 2 -> Of_message.Modify { strict = true }
    | 3 -> Of_message.Delete { strict = false }
    | 4 -> Of_message.Delete { strict = true }
    | c -> fail "flow_mod: bad command %d" c
  in
  let idle = Wire.R.u16 ~ctx r in
  let hard = Wire.R.u16 ~ctx r in
  let priority = Wire.R.u16 ~ctx r in
  let _buffer = Wire.R.u32 ~ctx r in
  let out_port = Wire.R.u32 ~ctx r in
  let _out_group = Wire.R.u32 ~ctx r in
  let _flags = Wire.R.u16 ~ctx r in
  skip ~ctx r 2;
  let match_ = decode_match r in
  let instructions = decode_instructions r in
  {
    Of_message.table_id;
    command;
    priority;
    match_;
    instructions;
    cookie;
    idle_timeout_s = (if idle = 0 then None else Some idle);
    hard_timeout_s = (if hard = 0 then None else Some hard);
    out_port =
      (if Int32.equal out_port ofpp_any then None else Some (Int32.to_int out_port));
  }

let decode_group_mod r =
  let ctx = "group_mod" in
  let command = Wire.R.u16 ~ctx r in
  let gtype =
    match Wire.R.u8 ~ctx r with
    | 0 -> Group_table.All
    | 1 -> Group_table.Select
    | 2 -> Group_table.Indirect
    | t -> fail "group_mod: bad type %d" t
  in
  skip ~ctx r 1;
  let id = Int32.to_int (Wire.R.u32 ~ctx r) in
  let buckets = ref [] in
  while Wire.R.remaining r > 0 do
    let len = Wire.R.u16 ~ctx r in
    if len < 16 then fail "group_mod: bad bucket length";
    let weight = Wire.R.u16 ~ctx r in
    let _watch_port = Wire.R.u32 ~ctx r in
    let _watch_group = Wire.R.u32 ~ctx r in
    skip ~ctx r 4;
    let actions = decode_actions (sub_reader ~ctx r (len - 16)) in
    buckets := { Group_table.weight; actions } :: !buckets
  done;
  let buckets = List.rev !buckets in
  match command with
  | 0 -> Of_message.Add_group { id; gtype; buckets }
  | 1 -> Of_message.Modify_group { id; gtype; buckets }
  | 2 -> Of_message.Delete_group { id }
  | c -> fail "group_mod: bad command %d" c

let decode_meter_mod r =
  let ctx = "meter_mod" in
  let command = Wire.R.u16 ~ctx r in
  let _flags = Wire.R.u16 ~ctx r in
  let id = Int32.to_int (Wire.R.u32 ~ctx r) in
  let band =
    if Wire.R.remaining r = 0 then None
    else begin
      let typ = Wire.R.u16 ~ctx r in
      if typ <> 1 then fail "meter_mod: unsupported band type %d" typ;
      let _len = Wire.R.u16 ~ctx r in
      let rate = Int32.to_int (Wire.R.u32 ~ctx r) in
      let burst_kbits = Int32.to_int (Wire.R.u32 ~ctx r) in
      skip ~ctx r 4;
      Some { Meter_table.rate_kbps = rate; burst_kb = burst_kbits / 8 }
    end
  in
  match (command, band) with
  | 0, Some band -> Of_message.Add_meter { id; band }
  | 1, Some band -> Of_message.Modify_meter { id; band }
  | 2, _ -> Of_message.Delete_meter { id }
  | _, None -> fail "meter_mod: missing band"
  | c, _ -> fail "meter_mod: bad command %d" c

let decode_packet_in r =
  let ctx = "packet_in" in
  let _buffer = Wire.R.u32 ~ctx r in
  let _total_len = Wire.R.u16 ~ctx r in
  let reason =
    match Wire.R.u8 ~ctx r with
    | 0 -> Of_message.No_match
    | 1 -> Of_message.Action_to_controller
    | x -> fail "packet_in: bad reason %d" x
  in
  let _table = Wire.R.u8 ~ctx r in
  let _cookie = r_u64 ~ctx r in
  let m = decode_match r in
  skip ~ctx r 2;
  let in_port =
    match m.Of_match.in_port with
    | Some p -> p
    | None -> fail "packet_in: match lacks in_port"
  in
  let packet =
    try Packet.decode (Wire.R.rest r)
    with Wire.Truncated _ | Wire.Malformed _ -> fail "packet_in: bad packet data"
  in
  Of_message.Packet_in { in_port; reason; packet }

let decode_packet_out r =
  let ctx = "packet_out" in
  let _buffer = Wire.R.u32 ~ctx r in
  let in_port = Wire.R.u32 ~ctx r in
  let actions_len = Wire.R.u16 ~ctx r in
  skip ~ctx r 6;
  let actions = decode_actions (sub_reader ~ctx r actions_len) in
  let packet =
    try Packet.decode (Wire.R.rest r)
    with Wire.Truncated _ | Wire.Malformed _ -> fail "packet_out: bad packet data"
  in
  Of_message.Packet_out
    {
      in_port =
        (if Int32.equal in_port ofpp_controller then None
         else Some (Int32.to_int in_port));
      actions;
      packet;
    }

let decode_multipart ~reply r =
  let ctx = "multipart" in
  let mp_type = Wire.R.u16 ~ctx r in
  let _flags = Wire.R.u16 ~ctx r in
  skip ~ctx r 4;
  match (mp_type, reply) with
  | 1, false ->
      let table = Wire.R.u8 ~ctx r in
      skip ~ctx r 3;
      let _out_port = Wire.R.u32 ~ctx r in
      let _out_group = Wire.R.u32 ~ctx r in
      skip ~ctx r 4;
      let _cookie = r_u64 ~ctx r in
      let _cookie_mask = r_u64 ~ctx r in
      let _match = decode_match r in
      Of_message.Flow_stats_request
        { table_id = (if table = 0xff then None else Some table) }
  | 4, false ->
      let _port = Wire.R.u32 ~ctx r in
      skip ~ctx r 4;
      Of_message.Port_stats_request
  | 1, true ->
      let stats = ref [] in
      while Wire.R.remaining r > 0 do
        let len = Wire.R.u16 ~ctx r in
        if len < 2 then fail "flow stats: bad length";
        let er = sub_reader ~ctx r (len - 2) in
        let table_id = Wire.R.u8 ~ctx er in
        skip ~ctx er 1;
        let _dur_s = Wire.R.u32 ~ctx er in
        let _dur_ns = Wire.R.u32 ~ctx er in
        let priority = Wire.R.u16 ~ctx er in
        skip ~ctx er 2 (* idle *);
        skip ~ctx er 2 (* hard *);
        skip ~ctx er 2 (* flags *);
        skip ~ctx er 4;
        let _cookie = r_u64 ~ctx er in
        let packets = Int64.to_int (r_u64 ~ctx er) in
        let bytes = Int64.to_int (r_u64 ~ctx er) in
        let m = decode_match er in
        stats :=
          {
            Of_message.stat_table_id = table_id;
            stat_priority = priority;
            stat_match = m;
            stat_packets = packets;
            stat_bytes = bytes;
          }
          :: !stats
      done;
      Of_message.Flow_stats_reply (List.rev !stats)
  | 4, true ->
      let stats = ref [] in
      while Wire.R.remaining r > 0 do
        let port_no = Int32.to_int (Wire.R.u32 ~ctx r) in
        skip ~ctx r 4;
        let rx = Int64.to_int (r_u64 ~ctx r) in
        let tx = Int64.to_int (r_u64 ~ctx r) in
        let rx_bytes = Int64.to_int (r_u64 ~ctx r) in
        let tx_bytes = Int64.to_int (r_u64 ~ctx r) in
        for _ = 1 to 8 do ignore (r_u64 ~ctx r) done;
        skip ~ctx r 8;
        stats :=
          { Of_message.port_no; rx_packets = rx; tx_packets = tx; rx_bytes; tx_bytes }
          :: !stats
      done;
      Of_message.Port_stats_reply (List.rev !stats)
  | t, _ -> fail "multipart: unsupported type %d" t

let decode frame =
  let ctx = "of_header" in
  let r = Wire.R.create frame in
  (try
     let version = Wire.R.u8 ~ctx r in
     if version <> 0x04 then fail "header: unsupported version 0x%02x" version
   with Wire.Truncated _ -> fail "header: truncated");
  try
    let typ = Wire.R.u8 ~ctx r in
    let length = Wire.R.u16 ~ctx r in
    let xid = Wire.R.u32 ~ctx r in
    if length <> String.length frame then
      fail "header: length %d but frame is %d bytes" length (String.length frame);
    let body = Wire.R.create (Wire.R.rest r) in
    let bctx = "of_body" in
    let message =
      match typ with
      | 0 -> Of_message.Hello
      | 1 ->
          let _typ = Wire.R.u16 ~ctx:bctx body in
          let _code = Wire.R.u16 ~ctx:bctx body in
          Of_message.Error (Wire.R.rest body)
      | 2 -> Of_message.Echo_request (Wire.R.rest body)
      | 3 -> Of_message.Echo_reply (Wire.R.rest body)
      | 5 -> Of_message.Features_request
      | 6 ->
          let datapath_id = r_u64 ~ctx:bctx body in
          let _buffers = Wire.R.u32 ~ctx:bctx body in
          let num_tables = Wire.R.u8 ~ctx:bctx body in
          skip ~ctx:bctx body 3;
          let _caps = Wire.R.u32 ~ctx:bctx body in
          let num_ports = Int32.to_int (Wire.R.u32 ~ctx:bctx body) in
          Of_message.Features_reply { datapath_id; num_ports; num_tables }
      | 10 -> decode_packet_in body
      | 12 ->
          let _reason = Wire.R.u8 ~ctx:bctx body in
          skip ~ctx:bctx body 7;
          let port_no = Int32.to_int (Wire.R.u32 ~ctx:bctx body) in
          let _config = Wire.R.u32 ~ctx:bctx body in
          let state = Wire.R.u32 ~ctx:bctx body in
          Of_message.Port_status
            { port_no; up = Int32.logand state 1l = 0l }
      | 13 -> decode_packet_out body
      | 14 -> Of_message.Flow_mod (decode_flow_mod body)
      | 15 -> Of_message.Group_mod (decode_group_mod body)
      | 18 -> decode_multipart ~reply:false body
      | 19 -> decode_multipart ~reply:true body
      | 20 -> Of_message.Barrier_request (Int32.to_int (Wire.R.u32 ~ctx:bctx body))
      | 21 -> Of_message.Barrier_reply (Int32.to_int (Wire.R.u32 ~ctx:bctx body))
      | 29 -> Of_message.Meter_mod (decode_meter_mod body)
      | t -> fail "header: unsupported message type %d" t
    in
    (message, xid)
  with Wire.Truncated what | Wire.Malformed what ->
    fail "truncated or malformed %s" what

let decode_result frame =
  match decode frame with
  | msg -> Ok msg
  | exception Decode_error e -> Error e

let decode_stream buf =
  let ctx = "of_stream" in
  let frames = ref [] in
  let pos = ref 0 in
  let total = String.length buf in
  while !pos < total do
    if total - !pos < 8 then raise (Decode_error "stream: trailing bytes");
    let r = Wire.R.create ~pos:(!pos + 2) buf in
    let length = Wire.R.u16 ~ctx r in
    if length < 8 || !pos + length > total then
      raise (Decode_error "stream: bad frame length");
    frames := decode (String.sub buf !pos length) :: !frames;
    pos := !pos + length
  done;
  List.rev !frames

let decode_stream_result buf =
  match decode_stream buf with
  | msgs -> Ok msgs
  | exception Decode_error e -> Error e
