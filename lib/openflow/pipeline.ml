open Netpkt

type output =
  | Port of int * Packet.t
  | In_port of Packet.t
  | Flood of Packet.t
  | All_ports of Packet.t
  | Controller of int * Packet.t

type result = {
  outputs : output list;
  table_miss : bool;
  matched : Flow_entry.t list;
}

type t = {
  tables : Flow_table.t array;
  group_table : Group_table.t;
  meter_table : Meter_table.t;
}

let create ?(num_tables = 4) ?max_entries_per_table () =
  if num_tables <= 0 then invalid_arg "Pipeline.create: num_tables <= 0";
  {
    tables =
      Array.init num_tables (fun _ ->
          Flow_table.create ?max_entries:max_entries_per_table ());
    group_table = Group_table.create ();
    meter_table = Meter_table.create ();
  }

let num_tables t = Array.length t.tables

let table t i =
  if i < 0 || i >= Array.length t.tables then
    invalid_arg "Pipeline.table: bad index";
  t.tables.(i)

let groups t = t.group_table
let meters t = t.meter_table

let flow_hash (f : Packet.Fields.t) =
  Hashtbl.hash (f.Packet.Fields.ip_src, f.Packet.Fields.ip_dst,
                f.Packet.Fields.ip_proto, f.Packet.Fields.l4_src,
                f.Packet.Fields.l4_dst)

(* The deferred "action set": at most one action per kind, outputs last.
   We keep the rewrite actions in arrival order (replacing same-kind
   duplicates) and a single optional output/group. *)
type action_set = {
  mutable rewrites : Of_action.t list; (* reverse order *)
  mutable final : Of_action.t option;  (* Output or Group *)
}

let empty_set () = { rewrites = []; final = None }

let same_kind a b =
  match (a, b) with
  | Of_action.Set_vlan_vid _, Of_action.Set_vlan_vid _
  | Of_action.Set_vlan_pcp _, Of_action.Set_vlan_pcp _
  | Of_action.Set_eth_src _, Of_action.Set_eth_src _
  | Of_action.Set_eth_dst _, Of_action.Set_eth_dst _
  | Of_action.Set_ip_src _, Of_action.Set_ip_src _
  | Of_action.Set_ip_dst _, Of_action.Set_ip_dst _
  | Of_action.Set_ip_tos _, Of_action.Set_ip_tos _
  | Of_action.Set_l4_src _, Of_action.Set_l4_src _
  | Of_action.Set_l4_dst _, Of_action.Set_l4_dst _
  | Of_action.Push_vlan, Of_action.Push_vlan
  | Of_action.Pop_vlan, Of_action.Pop_vlan -> true
  | _ -> false

let write_action set action =
  match action with
  | Of_action.Output _ | Of_action.Group _ -> set.final <- Some action
  | Of_action.Drop ->
      set.rewrites <- [];
      set.final <- None
  | _ ->
      set.rewrites <- action :: List.filter (fun a -> not (same_kind a action)) set.rewrites

let execute_with t ~lookup ~now_ns ~in_port pkt =
  let outputs = ref [] in
  let matched = ref [] in
  let miss = ref false in
  let emit out = outputs := out :: !outputs in
  (* [entered] guards against group chaining loops (a bucket whose
     actions reference a group already being executed, e.g. a group
     pointing at itself).  OpenFlow forbids such chains; a switch fed one
     anyway must not diverge, so the cyclic reference is a no-op. *)
  let rec run_actions ?(entered = []) pkt actions =
    match actions with
    | [] -> pkt
    | action :: rest -> (
        match action with
        | Of_action.Output target ->
            (match target with
            | Of_action.Physical p -> emit (Port (p, pkt))
            | Of_action.In_port -> emit (In_port pkt)
            | Of_action.Flood -> emit (Flood pkt)
            | Of_action.All -> emit (All_ports pkt)
            | Of_action.Controller n -> emit (Controller (n, pkt)));
            run_actions ~entered pkt rest
        | Of_action.Group gid ->
            if not (List.mem gid entered) then begin
              let hash = flow_hash (Packet.Fields.of_packet pkt) in
              match Group_table.select_buckets t.group_table ~id:gid ~flow_hash:hash with
              | buckets ->
                  List.iter
                    (fun b ->
                      ignore
                        (run_actions ~entered:(gid :: entered) pkt
                           b.Group_table.actions))
                    buckets
              | exception Not_found -> ()
            end;
            run_actions ~entered pkt rest
        | Of_action.Drop -> run_actions ~entered pkt rest
        | _ -> run_actions ~entered (Of_action.apply_rewrite action pkt) rest)
  in
  let rec walk table_id pkt set =
    if table_id >= Array.length t.tables then finish pkt set
    else begin
      let fields = Packet.Fields.of_packet pkt in
      match lookup table_id ~in_port fields with
      | None ->
          miss := true;
          finish pkt set
      | Some entry ->
          Flow_entry.touch entry ~now_ns ~bytes:(Packet.size pkt);
          matched := entry :: !matched;
          let pkt = ref pkt in
          let goto = ref None in
          let metered_out = ref false in
          List.iter
            (fun instruction ->
              if not !metered_out then
                match instruction with
                | Flow_entry.Apply_actions actions -> pkt := run_actions !pkt actions
                | Flow_entry.Write_actions actions -> List.iter (write_action set) actions
                | Flow_entry.Clear_actions ->
                    set.rewrites <- [];
                    set.final <- None
                | Flow_entry.Goto_table n -> goto := Some n
                | Flow_entry.Meter id -> (
                    match
                      Meter_table.apply t.meter_table ~id ~now_ns
                        ~bytes:(Packet.size !pkt)
                    with
                    | `Pass -> ()
                    | `Drop -> metered_out := true))
            entry.Flow_entry.instructions;
          if !metered_out then ()
          else
            match !goto with
            | Some next when next > table_id -> walk next !pkt set
            | Some _ | None -> finish !pkt set
    end
  and finish pkt set =
    let pkt = List.fold_left
        (fun p a -> Of_action.apply_rewrite a p)
        pkt (List.rev set.rewrites)
    in
    match set.final with
    | None -> ()
    | Some final -> ignore (run_actions pkt [ final ])
  in
  walk 0 pkt (empty_set ());
  { outputs = List.rev !outputs; table_miss = !miss; matched = List.rev !matched }

let execute t ~now_ns ~in_port pkt =
  let lookup table_id ~in_port fields =
    Flow_table.lookup t.tables.(table_id) ~in_port fields
  in
  execute_with t ~lookup ~now_ns ~in_port pkt

let total_entries t =
  Array.fold_left (fun acc tbl -> acc + Flow_table.size tbl) 0 t.tables

let version t =
  Array.fold_left (fun acc tbl -> acc + Flow_table.version tbl) 0 t.tables
