(* E4 — "no substantial price tag": CAPEX per OpenFlow-enabled access
   port as the deployment grows, for each migration strategy, plus the
   headline savings figure. *)

let port_counts = [ 8; 16; 24; 48; 96; 144; 192; 384 ]

let rows () = Costmodel.Cost.sweep ~port_counts

let run () =
  let rows = rows () in
  Tables.print ~title:"E4: CAPEX per OpenFlow port ($/port)"
    ~header:
      [ "ports"; "COTS SDN"; "HARMLESS green"; "HARMLESS brown"; "software-only" ]
    (List.map
       (fun (r : Costmodel.Cost.row) ->
         [
           string_of_int r.Costmodel.Cost.ports;
           Tables.f1 r.Costmodel.Cost.cots;
           Tables.f1 r.Costmodel.Cost.greenfield;
           Tables.f1 r.Costmodel.Cost.brownfield;
           Tables.f1 r.Costmodel.Cost.software;
         ])
       rows);
  let savings = Costmodel.Cost.savings_vs_cots ~ports:48 in
  Printf.printf "\nSavings vs COTS SDN at 48 ports (brownfield): %s\n"
    (Tables.pct savings);
  (* The headline figure also lands on the flight recorder when one is
     installed, so an experiment sweep shows up in a post-mortem's
     event window like any other control-plane activity. *)
  if Telemetry.Eventlog.enabled () then
    Telemetry.Eventlog.emit ~stream:"experiment"
      ~corr:(Telemetry.Eventlog.corr_of_string "e4-cost")
      ~detail:(Printf.sprintf "e4-cost savings_vs_cots=%.3f ports=48" savings)
      "headline";
  (match Costmodel.Cost.crossover_vs_cots ~max_ports:1024 with
  | Some p -> Printf.printf "Greenfield crossover vs COTS: %d ports\n" p
  | None ->
      print_endline
        "Greenfield crossover vs COTS: none up to 1024 ports (HARMLESS cheaper throughout)");
  (* An itemized example bill, the way the paper would pitch it. *)
  Printf.printf "\n%s"
    (Format.asprintf "%a" Costmodel.Scenario.pp_bill
       (Costmodel.Scenario.harmless_brownfield ~ports:48));
  rows
