(* harmlessctl — the operator's view of the library: price a migration,
   dry-run a provisioning, inspect the generated device configuration.

     dune exec bin/harmlessctl.exe -- cost --ports 48
     dune exec bin/harmlessctl.exe -- provision --ports 24 --vendor eos
     dune exec bin/harmlessctl.exe -- config --ports 8 --vendor ios
     dune exec bin/harmlessctl.exe -- walkthrough *)

open Cmdliner

let vendor_conv =
  let parse = function
    | "ios" -> Ok Mgmt.Device.Cisco_like
    | "eos" -> Ok Mgmt.Device.Arista_like
    | "junos" -> Ok Mgmt.Device.Juniper_like
    | s -> Error (`Msg (Printf.sprintf "unknown vendor %S (ios, eos or junos)" s))
  in
  let print fmt v =
    Format.pp_print_string fmt
      (match v with
      | Mgmt.Device.Cisco_like -> "ios"
      | Mgmt.Device.Arista_like -> "eos"
      | Mgmt.Device.Juniper_like -> "junos")
  in
  Arg.conv (parse, print)

let ports_arg =
  Arg.(value & opt int 24 & info [ "ports" ] ~docv:"N" ~doc:"Access ports to migrate.")

let vendor_arg =
  Arg.(
    value
    & opt vendor_conv Mgmt.Device.Cisco_like
    & info [ "vendor" ] ~docv:"VENDOR" ~doc:"NOS dialect of the legacy switch (ios|eos|junos).")

let base_vid_arg =
  Arg.(value & opt int 101 & info [ "base-vid" ] ~docv:"VID" ~doc:"First VLAN id of the mapping.")

(* ---- cost ---- *)

let run_cost ports =
  Format.printf "Migration options for %d OpenFlow ports:@.@." ports;
  List.iter
    (fun bill -> Format.printf "%a@." Costmodel.Scenario.pp_bill bill)
    (Costmodel.Scenario.all ~ports);
  Format.printf "HARMLESS (brownfield) saves %.0f%% vs COTS SDN.@."
    (100.0 *. Costmodel.Cost.savings_vs_cots ~ports)

let cost_cmd =
  Cmd.v
    (Cmd.info "cost" ~doc:"price every migration strategy for a port count")
    Term.(const run_cost $ ports_arg)

(* ---- shared: build a device ---- *)

let build_device ~ports ~vendor =
  let engine = Simnet.Engine.create () in
  let switch =
    Ethswitch.Legacy_switch.create engine ~name:"target-sw" ~ports:(ports + 1) ()
  in
  (engine, Mgmt.Device.create ~switch ~vendor ())

(* ---- provision (dry run against a simulated device) ---- *)

let run_provision ports vendor base_vid =
  let engine, device = build_device ~ports ~vendor in
  match
    Harmless.Manager.provision engine ~device ~trunk_port:ports
      ~access_ports:(List.init ports Fun.id) ~base_vid ()
  with
  | Error msg ->
      Printf.eprintf "provisioning failed: %s\n" msg;
      exit 1
  | Ok prov ->
      print_endline "Provisioning succeeded; the Manager did:";
      List.iter (Printf.printf "  - %s\n")
        prov.Harmless.Manager.report.Harmless.Manager.steps;
      Printf.printf "\nConfig changes applied (%d):\n"
        (List.length prov.Harmless.Manager.report.Harmless.Manager.config_diff);
      List.iter (Printf.printf "  %s\n")
        prov.Harmless.Manager.report.Harmless.Manager.config_diff;
      Printf.printf "\nResulting running configuration (%s dialect):\n\n"
        (let (module D) = Mgmt.Device.dialect device in
         D.name);
      print_string (Mgmt.Device.running_config_text device)

let provision_cmd =
  Cmd.v
    (Cmd.info "provision" ~doc:"dry-run the Manager against a simulated device")
    Term.(const run_provision $ ports_arg $ vendor_arg $ base_vid_arg)

(* ---- config (print the candidate only) ---- *)

let run_config ports vendor base_vid =
  let _engine, device = build_device ~ports ~vendor in
  (* Render what the Manager *would* push, without committing. *)
  let (module D) = Mgmt.Device.dialect device in
  let stanzas =
    List.init (ports + 1) (fun port ->
        if port < ports then
          {
            Mgmt.Device_config.port;
            mode = Ethswitch.Port_config.Access (base_vid + port);
            description = Some (Printf.sprintf "HARMLESS access (vlan %d)" (base_vid + port));
          }
        else
          {
            Mgmt.Device_config.port;
            mode =
              Ethswitch.Port_config.Trunk
                {
                  native = None;
                  allowed =
                    Ethswitch.Port_config.Only (List.init ports (fun i -> base_vid + i));
                };
            description = Some "HARMLESS trunk to soft-switch server";
          })
  in
  print_string (D.render (Mgmt.Device_config.make ~hostname:"target-sw" stanzas))

let config_cmd =
  Cmd.v
    (Cmd.info "config" ~doc:"print the candidate configuration the Manager would push")
    Term.(const run_config $ ports_arg $ vendor_arg $ base_vid_arg)

(* ---- pcap: capture the Fig. 1 walk into a file ---- *)

let run_pcap out =
  let engine = Simnet.Engine.create () in
  let deployment =
    match Harmless.Deployment.build_harmless engine ~num_hosts:4 () with
    | Ok d -> d
    | Error msg -> failwith msg
  in
  let ctrl = Sdnctl.Controller.create engine () in
  Sdnctl.Controller.add_app ctrl (Sdnctl.L2_learning.create ());
  ignore
    (Sdnctl.Controller.attach_switch ctrl
       (Harmless.Deployment.controller_switch deployment));
  Simnet.Engine.run engine ~until:(Simnet.Sim_time.of_ns (Simnet.Sim_time.ms 5));
  let capture = Simnet.Capture.create () in
  (match deployment.Harmless.Deployment.kind with
  | Harmless.Deployment.Harmless { legacy; prov; _ } ->
      Simnet.Capture.attach capture (Ethswitch.Legacy_switch.node legacy);
      Simnet.Capture.attach capture
        (Softswitch.Soft_switch.node prov.Harmless.Manager.ss1)
  | _ -> ());
  let h0 = Harmless.Deployment.host deployment 0 in
  Simnet.Host.ping h0
    ~dst_mac:(Harmless.Deployment.host_mac 1)
    ~dst_ip:(Harmless.Deployment.host_ip 1)
    ~seq:1;
  Simnet.Engine.run engine ~until:(Simnet.Sim_time.of_ns (Simnet.Sim_time.ms 50));
  Simnet.Capture.save_pcap capture ~path:out;
  Printf.printf "wrote %s (%d frames; open it in wireshark to see the VLAN tags)\n"
    out
    (Simnet.Capture.count capture (fun e -> e.Simnet.Capture.dir = Simnet.Node.Rx))

let pcap_out =
  Arg.(value & opt string "harmless-fig1.pcap"
       & info [ "out" ] ~docv:"FILE" ~doc:"Output pcap path.")

let pcap_cmd =
  Cmd.v
    (Cmd.info "pcap" ~doc:"capture the Fig. 1 ping into a pcap file")
    Term.(const run_pcap $ pcap_out)

(* ---- shared: the quickstart scenario ----

   A 4-host HARMLESS deployment with an L2-learning controller.  Runs
   the control-plane handshake, then a warm-up ping (h0 -> h1) so MAC
   tables and flow tables reach steady state, leaving the engine at
   t = 50 ms ready for an observed second ping. *)

let build_scenario () =
  let engine = Simnet.Engine.create () in
  let deployment =
    match Harmless.Deployment.build_harmless engine ~num_hosts:4 () with
    | Ok d -> d
    | Error msg -> failwith msg
  in
  let ctrl = Sdnctl.Controller.create engine () in
  Sdnctl.Controller.add_app ctrl (Sdnctl.L2_learning.create ());
  ignore
    (Sdnctl.Controller.attach_switch ctrl
       (Harmless.Deployment.controller_switch deployment));
  Simnet.Engine.run engine ~until:(Simnet.Sim_time.of_ns (Simnet.Sim_time.ms 5));
  let ping ~seq src dst =
    Simnet.Host.ping
      (Harmless.Deployment.host deployment src)
      ~dst_mac:(Harmless.Deployment.host_mac dst)
      ~dst_ip:(Harmless.Deployment.host_ip dst)
      ~seq
  in
  ping ~seq:1 0 1;
  Simnet.Engine.run engine ~until:(Simnet.Sim_time.of_ns (Simnet.Sim_time.ms 50));
  (engine, deployment, ctrl, ping)

(* ---- trace: hop-by-hop packet walk ---- *)

let run_trace format chrome_out =
  let engine, deployment, _ctrl, ping = build_scenario () in
  (* Steady state reached: trace the second ping. *)
  let (), traces_and_hops =
    let collector = Telemetry.Trace.Collector.create () in
    Telemetry.Trace.Collector.install collector;
    Fun.protect
      ~finally:(fun () -> Telemetry.Trace.Collector.uninstall collector)
      (fun () ->
        ping ~seq:2 0 1;
        Simnet.Engine.run engine
          ~until:(Simnet.Sim_time.of_ns (Simnet.Sim_time.ms 100)));
    ( (),
      ( Telemetry.Trace.Collector.traces collector,
        Telemetry.Trace.Collector.hops collector ) )
  in
  let traces, hops = traces_and_hops in
  let view = Harmless.Trace_view.of_deployment deployment in
  let spans =
    Telemetry.Span.of_traces
      ~stage_of:(Harmless.Trace_view.semantic view)
      traces
  in
  (match format with
  | `Text ->
      Format.printf
        "ping h0 -> h1 through the HARMLESS deployment (steady state):@.@.";
      List.iter
        (fun tr -> Format.printf "%a@." (Harmless.Trace_view.pp_trace view) tr)
        traces
  | `Chrome -> print_endline (Telemetry.Chrome_trace.to_string ~spans hops)
  | `Collapsed -> print_string (Telemetry.Span.to_collapsed spans));
  match chrome_out with
  | None -> ()
  | Some path -> (
      match Telemetry.Chrome_trace.save ~path ~spans hops with
      | () ->
          Printf.eprintf
            "wrote %s (%d events; load it in chrome://tracing or Perfetto)\n"
            path (List.length hops)
      | exception Sys_error msg ->
          Printf.eprintf "cannot write chrome trace: %s\n" msg;
          exit 1)

let trace_format_arg =
  let fmt_conv =
    Arg.enum [ ("text", `Text); ("chrome", `Chrome); ("collapsed", `Collapsed) ]
  in
  Arg.(
    value
    & opt fmt_conv `Text
    & info [ "format" ] ~docv:"FMT"
        ~doc:
          "Output format: $(b,text) (hop-by-hop narrative), $(b,chrome) \
           (trace-event JSON for chrome://tracing / Perfetto, span events \
           included) or $(b,collapsed) (flamegraph.pl collapsed stacks — \
           paste into speedscope.app).")

let chrome_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "chrome" ] ~docv:"FILE"
        ~doc:
          "Also export the hops (and derived spans) as a Chrome \
           trace-event JSON file, regardless of $(b,--format).")

let trace_cmd =
  Cmd.v
    (Cmd.info "trace"
       ~doc:"trace a ping hop-by-hop through the HARMLESS data path")
    Term.(const run_trace $ trace_format_arg $ chrome_arg)

(* ---- metrics: registry snapshot ---- *)

let run_metrics format =
  let engine, deployment, ctrl, _ping = build_scenario () in
  let registry = Telemetry.Registry.default in
  Simnet.Engine.publish_metrics ~registry engine;
  Sdnctl.Controller.publish_metrics ~registry ctrl;
  (match deployment.Harmless.Deployment.kind with
  | Harmless.Deployment.Harmless { legacy; prov; _ } ->
      Ethswitch.Legacy_switch.publish_metrics ~registry legacy;
      Softswitch.Soft_switch.publish_metrics ~registry
        prov.Harmless.Manager.ss1;
      Softswitch.Soft_switch.publish_metrics ~registry
        prov.Harmless.Manager.ss2
  | _ -> ());
  match format with
  | `Prometheus -> print_string (Telemetry.Registry.to_prometheus registry)
  | `Json ->
      print_endline (Telemetry.Registry.to_json registry)

let metrics_format_arg =
  let fmt_conv =
    Arg.enum [ ("prometheus", `Prometheus); ("prom", `Prometheus); ("json", `Json) ]
  in
  Arg.(
    value
    & opt fmt_conv `Prometheus
    & info [ "format" ] ~docv:"FMT"
        ~doc:"Exposition format: $(b,prometheus) (text) or $(b,json).")

let metrics_cmd =
  Cmd.v
    (Cmd.info "metrics"
       ~doc:"run the quickstart scenario and dump the metrics registry")
    Term.(const run_metrics $ metrics_format_arg)

(* ---- chaos: scripted fault injection with a recovery report ---- *)

let default_chaos_script =
  "# chaos default: controller blackout mid-traffic, then a trunk failure\n\
   5ms   channel        down\n\
   12ms  mgmt           flaky 2\n\
   20ms  channel        up\n\
   30ms  trunk:primary  down\n"

let run_chaos hosts duration_ms script_path seed mode failback ping_us
    postmortem_path =
  let script =
    match script_path with
    | None -> default_chaos_script
    | Some path -> (
        match In_channel.with_open_text path In_channel.input_all with
        | s -> s
        | exception Sys_error msg ->
            Printf.eprintf "cannot read script: %s\n" msg;
            exit 1)
  in
  let engine = Simnet.Engine.create () in
  let rig =
    match
      Harmless.Chaos.build engine ~num_hosts:hosts ~seed ~mode ~failback ()
    with
    | Ok rig -> rig
    | Error msg ->
        Printf.eprintf "chaos rig failed to provision: %s\n" msg;
        exit 1
  in
  Format.printf "fault targets: %s@.@."
    (String.concat ", "
       (Simnet.Fault.targets (Harmless.Chaos.injector rig)));
  match
    Harmless.Chaos.run rig ~script
      ~duration:(Simnet.Sim_time.ms duration_ms)
      ~ping_interval:(Simnet.Sim_time.us ping_us) ()
  with
  | Error msg ->
      Printf.eprintf "chaos run failed: %s\n" msg;
      exit 1
  | Ok report ->
      Format.printf "%a@." Harmless.Chaos.pp_report report;
      (match (postmortem_path, report.Harmless.Chaos.postmortem) with
      | None, _ -> ()
      | Some path, Some snap ->
          Telemetry.Postmortem.save snap ~path;
          Printf.printf "post-mortem written to %s\n" path
      | Some _, None ->
          prerr_endline
            "no post-mortem captured: no trigger (fault, firing alert, \
             rollback) fired");
      if not report.Harmless.Chaos.recovered then exit 2

let chaos_hosts_arg =
  Arg.(value & opt int 3 & info [ "hosts" ] ~docv:"N" ~doc:"Hosts on the legacy switch.")

let chaos_duration_arg =
  Arg.(
    value & opt int 60
    & info [ "duration" ] ~docv:"MS" ~doc:"Sim-time length of the storm, in milliseconds.")

let chaos_script_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "script" ] ~docv:"FILE"
        ~doc:
          "Fault script (one event per line: $(i,TIME TARGET ACTION), e.g. \
           '20ms channel down').  Default: a controller blackout followed \
           by a trunk failure.")

let chaos_seed_arg =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc:"Seed for the management fault plan.")

let chaos_mode_arg =
  let mode_conv =
    Arg.enum
      [
        ("standalone", Softswitch.Soft_switch.Fail_standalone);
        ("secure", Softswitch.Soft_switch.Fail_secure);
      ]
  in
  Arg.(
    value
    & opt mode_conv Softswitch.Soft_switch.Fail_standalone
    & info [ "mode" ] ~docv:"MODE"
        ~doc:
          "SS_2 behaviour while the controller is unreachable: \
           $(b,standalone) (local L2 learning) or $(b,secure) (drop \
           would-be punts).")

let chaos_failback_arg =
  Arg.(
    value & flag
    & info [ "failback" ]
        ~doc:"Keep the watchdog running after failover and return to the \
              primary trunk when it recovers.")

let chaos_ping_arg =
  Arg.(
    value & opt int 1000
    & info [ "ping-interval" ] ~docv:"US"
        ~doc:"Probe-traffic spacing in microseconds.")

let chaos_postmortem_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "postmortem" ] ~docv:"FILE"
        ~doc:
          "Write the captured post-mortem snapshot here (render it with \
           $(b,harmlessctl postmortem)).  The run always records; a \
           snapshot exists whenever a trigger — a fault injection, an \
           alert going firing, a rollback — landed in the event log.")

let chaos_cmd =
  Cmd.v
    (Cmd.info "chaos"
       ~doc:"inject scripted faults into a live deployment and report recovery"
       ~man:
         [
           `S Manpage.s_description;
           `P
             "Builds a redundant-trunk HARMLESS deployment (hosts, legacy \
              switch, SS_1/SS_2, L2-learning controller with keepalive, \
              failover watchdog), runs a scripted fault schedule against it \
              under steady probe traffic, and prints what broke, what the \
              recovery machinery did (reconnects, resyncs, retries, \
              failovers) and whether every host pair was reachable \
              afterwards.  Exit status 2 if the deployment did not recover.";
         ])
    Term.(
      const run_chaos $ chaos_hosts_arg $ chaos_duration_arg
      $ chaos_script_arg $ chaos_seed_arg $ chaos_mode_arg
      $ chaos_failback_arg $ chaos_ping_arg $ chaos_postmortem_arg)

(* ---- top / alerts: the monitoring plane ---- *)

let build_dashboard duration_ms =
  match Harmless.Dashboard.demo () with
  | Error msg ->
      Printf.eprintf "dashboard demo failed to build: %s\n" msg;
      exit 1
  | Ok dash ->
      Harmless.Dashboard.advance dash (Simnet.Sim_time.ms duration_ms);
      dash

let run_top once duration_ms refresh_ms top_n window_ms =
  let window = Simnet.Sim_time.ms window_ms in
  if once then
    print_string
      (Harmless.Dashboard.render_top ~top_n ~window (build_dashboard duration_ms))
  else begin
    (* "Live": advance the simulation one refresh interval per frame. *)
    let dash = build_dashboard refresh_ms in
    let frames = max 1 (duration_ms / max 1 refresh_ms) in
    for frame = 1 to frames do
      if frame > 1 then
        Harmless.Dashboard.advance dash (Simnet.Sim_time.ms refresh_ms);
      print_string "\x1b[2J\x1b[H";
      print_string (Harmless.Dashboard.render_top ~top_n ~window dash);
      flush stdout
    done
  end

let top_once_arg =
  Arg.(
    value & flag
    & info [ "once" ]
        ~doc:"Render a single frame after the full run instead of refreshing.")

let top_duration_arg =
  Arg.(
    value & opt int 100
    & info [ "duration" ] ~docv:"MS"
        ~doc:"Sim time to drive traffic for, in milliseconds.")

let top_refresh_arg =
  Arg.(
    value & opt int 20
    & info [ "refresh" ] ~docv:"MS"
        ~doc:"Sim time between frames when not using $(b,--once).")

let top_n_arg =
  Arg.(value & opt int 5 & info [ "top" ] ~docv:"N" ~doc:"Flows to show.")

let top_window_arg =
  Arg.(
    value & opt int 30
    & info [ "window" ] ~docv:"MS" ~doc:"Rate window, in milliseconds.")

let top_cmd =
  Cmd.v
    (Cmd.info "top"
       ~doc:"live dashboard over polled OpenFlow statistics"
       ~man:
         [
           `S Manpage.s_description;
           `P
             "Builds the quickstart deployment with a stats poller on the \
              OpenFlow switch, drives probe traffic, and renders per-port \
              utilization bars, the top flows by byte rate and the alert \
              summary — all derived from polled flow-stats/port-stats \
              replies, i.e. what an operator's collector would see.  \
              Deterministic: the same flags always render the same frames.";
         ])
    Term.(
      const run_top $ top_once_arg $ top_duration_arg $ top_refresh_arg
      $ top_n_arg $ top_window_arg)

let run_alerts _eval_once duration_ms =
  print_string (Harmless.Dashboard.render_alerts (build_dashboard duration_ms))

let alerts_eval_once_arg =
  Arg.(
    value & flag
    & info [ "eval-once" ]
        ~doc:"Evaluate over one scripted run and print the final rule \
              states and transition log (the default behaviour, named for \
              scripting).")

let alerts_cmd =
  Cmd.v
    (Cmd.info "alerts"
       ~doc:"evaluate the demo SLO rules and print states and transitions")
    Term.(const run_alerts $ alerts_eval_once_arg $ top_duration_arg)

(* ---- flows ---- *)

let run_flows report seed hosts top_n duration_ms format =
  if report then begin
    let config = { Harmless.Flow_rig.default_config with seed; hosts } in
    let r = Harmless.Flow_rig.run ~config () in
    (match format with
    | "json" ->
        let open Telemetry.Json in
        print_endline
          (to_string
             (Obj
                [
                  ("seed", Int r.Harmless.Flow_rig.rp_seed);
                  ("flows", Int r.Harmless.Flow_rig.rp_flows);
                  ("packets", Int r.Harmless.Flow_rig.rp_packets);
                  ("sampled", Int r.Harmless.Flow_rig.rp_sampled);
                  ("hh_expected", Int r.Harmless.Flow_rig.rp_hh_expected);
                  ("hh_reported", Int r.Harmless.Flow_rig.rp_hh_reported);
                  ("hh_recall", Float r.Harmless.Flow_rig.rp_hh_recall);
                  ( "cm_overestimate_ok",
                    Bool r.Harmless.Flow_rig.rp_cm_overestimate_ok );
                  ("cm_max_err", Int r.Harmless.Flow_rig.rp_cm_max_err);
                  ("cm_bound", Int r.Harmless.Flow_rig.rp_cm_bound);
                  ( "cm_within_frac",
                    Float r.Harmless.Flow_rig.rp_cm_within_frac );
                  ("est_hosts", Float r.Harmless.Flow_rig.rp_est_hosts);
                  ("hll_rel_err", Float r.Harmless.Flow_rig.rp_hll_rel_err);
                  ("ok", Bool r.Harmless.Flow_rig.rp_ok);
                ]))
    | _ -> print_string (Harmless.Flow_rig.render r));
    if not r.Harmless.Flow_rig.rp_ok then exit 4
  end
  else
    let dash = build_dashboard duration_ms in
    match format with
    | "json" ->
        print_endline
          (Telemetry.Json.to_string
             (Sdnctl.Flow_collector.to_json ~k:top_n
                (Harmless.Dashboard.flow_collector dash)))
    | _ -> print_string (Harmless.Dashboard.render_flows ~top_n dash)

let flows_report_arg =
  Arg.(
    value & flag
    & info [ "report" ]
        ~doc:
          "Run the sketch accuracy rig (seeded Zipf elephant/mice workload \
           through a sampled fabric) and print estimated-vs-exact error \
           against the analytical bounds.  Exit status 4 if any bound is \
           violated.")

let flows_seed_arg =
  Arg.(
    value & opt int 42
    & info [ "seed" ] ~docv:"N" ~doc:"Workload seed for $(b,--report).")

let flows_hosts_arg =
  Arg.(
    value & opt int 100_000
    & info [ "hosts" ] ~docv:"N"
        ~doc:"Distinct source hosts in the $(b,--report) workload.")

let flows_top_arg =
  Arg.(
    value & opt int 10
    & info [ "top" ] ~docv:"K" ~doc:"Heavy hitters to show.")

let flows_format_arg =
  Arg.(
    value
    & opt (enum [ ("text", "text"); ("json", "json") ]) "text"
    & info [ "format" ] ~docv:"FMT" ~doc:"Output format (text or json).")

let flows_cmd =
  Cmd.v
    (Cmd.info "flows"
       ~doc:"sampled flow telemetry: heavy hitters, cardinality, accuracy rig"
       ~man:
         [
           `S Manpage.s_description;
           `P
             "Without flags: build the quickstart deployment with a sampled \
              flow recorder on the OpenFlow switch, drive probe traffic, \
              and print the merged heavy-hitters panel — estimated bytes \
              per flow from a count-min/top-k sketch plane whose memory is \
              fixed regardless of flow count, plus the HyperLogLog estimate \
              of distinct source hosts.";
           `P
             "With $(b,--report): replay a seeded heavy-tailed workload \
              (Zipf sources, elephants and mice, a census segment pinning \
              true cardinality) through a 4-switch fabric and check the \
              sketch estimates against exact references: heavy-hitter \
              recall must be total, count-min queries overestimate-only \
              and within the epsilon bound, HLL within 5%.  Deterministic \
              per seed: the same invocation prints byte-identical output.";
         ])
    Term.(
      const run_flows $ flows_report_arg $ flows_seed_arg $ flows_hosts_arg
      $ flows_top_arg $ top_duration_arg $ flows_format_arg)

(* ---- fuzz ---- *)

let run_fuzz cases seed repro_dir replay =
  let failed = ref false in
  (match replay with
  | Some path -> (
      (* replay a pinned repro instead of random generation *)
      match Check.Differential.load ~path with
      | Error e ->
          Printf.printf "%s: parse error: %s\n" path e;
          failed := true
      | Ok None -> Printf.printf "%s: no divergence (bug is fixed)\n" path
      | Ok (Some d) ->
          Format.printf "%s reproduces:@.%a@." path
            Check.Differential.pp_divergence d;
          failed := true)
  | None ->
      (* differential: every backend against the oracle *)
      let saved = ref 0 in
      let on_divergence (d : Check.Differential.divergence) =
        Format.printf "@.%a@." Check.Differential.pp_divergence d;
        (try Unix.mkdir repro_dir 0o755 with Unix.Unix_error _ -> ());
        let path =
          Filename.concat repro_dir (Printf.sprintf "divergence_%d.repro" !saved)
        in
        incr saved;
        Check.Differential.save ~path
          ~comment:
            (Printf.sprintf "backend %s diverged at step %d" d.backend
               d.step_index)
          d.scenario;
        Printf.printf "repro written to %s\n" path
      in
      let t0 = Unix.gettimeofday () in
      let r = Check.Differential.run ~on_divergence ~seed ~cases () in
      let dt = Unix.gettimeofday () -. t0 in
      Printf.printf
        "differential: %d cases, %d packet comparisons, %d divergences \
         (%.0f cases/s)\n"
        r.Check.Differential.cases r.packets
        (List.length r.divergences)
        (float_of_int r.Check.Differential.cases /. Float.max 1e-9 dt);
      if r.Check.Differential.divergences <> [] then failed := true;
      (* codec: parse totality + re-encode fixpoint *)
      let t0 = Unix.gettimeofday () in
      let c = Check.Codec_fuzz.run ~seed ~cases:(4 * cases) in
      let dt = Unix.gettimeofday () -. t0 in
      List.iter
        (fun f -> Format.printf "%a@." Check.Codec_fuzz.pp_failure f)
        c.Check.Codec_fuzz.failures;
      Printf.printf
        "codec: %d cases, %d decoded, %d rejected, %d failures (%.0f cases/s)\n"
        c.Check.Codec_fuzz.cases c.decoded c.rejected
        (List.length c.failures)
        (float_of_int c.Check.Codec_fuzz.cases /. Float.max 1e-9 dt);
      if c.Check.Codec_fuzz.failures <> [] then failed := true;
      (* transparency: hairpin invariant over random port maps *)
      let violations = ref 0 in
      let hairpin_seeds = max 1 (cases / 100) in
      for s = seed to seed + hairpin_seeds - 1 do
        let vs = Check.Transparency_oracle.check_hairpin ~seed:s in
        violations := !violations + List.length vs;
        List.iter
          (fun v ->
            Format.printf "seed %d: %a@." s
              Check.Transparency_oracle.pp_violation v)
          vs
      done;
      Printf.printf "transparency: %d port maps, %d violations\n"
        hairpin_seeds !violations;
      if !violations > 0 then failed := true);
  if !failed then exit 1

let fuzz_cases_arg =
  Arg.(
    value & opt int 1000
    & info [ "cases" ] ~docv:"N" ~doc:"Differential scenarios to run (the codec fuzzer runs 4x as many).")

let fuzz_seed_arg =
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"N" ~doc:"Base RNG seed.")

let fuzz_dir_arg =
  Arg.(
    value & opt string "fuzz-repros"
    & info [ "dir" ] ~docv:"DIR" ~doc:"Where to write shrunk divergence repros.")

let fuzz_replay_arg =
  Arg.(
    value & opt (some string) None
    & info [ "replay" ] ~docv:"FILE"
        ~doc:"Replay a pinned repro file instead of fuzzing; exits nonzero if it still diverges.")

let fuzz_cmd =
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "differentially fuzz every dataplane backend against the spec \
          oracle, fuzz the OpenFlow codec, and check the SS_1 hairpin \
          invariant; exits nonzero on any divergence")
    Term.(
      const run_fuzz $ fuzz_cases_arg $ fuzz_seed_arg $ fuzz_dir_arg
      $ fuzz_replay_arg)

(* ---- policy: compile dump + differential equivalence ---- *)

let run_policy_compile spec_name =
  match Check.Policy_equiv.find_spec spec_name with
  | None ->
      Printf.eprintf "policy compile: unknown spec %S (have: %s)\n" spec_name
        (String.concat ", "
           (List.map
              (fun s -> s.Check.Policy_equiv.spec_name)
              (Check.Policy_equiv.specs ())));
      exit 2
  | Some spec ->
      let c = Policy.Compile.compile spec.Check.Policy_equiv.policy in
      print_string (Policy.Compile.render c)

let run_policy_check cases seed repro_dir replay only =
  let failed = ref false in
  (match replay with
  | Some path -> (
      match Check.Policy_equiv.load ~path with
      | Error e ->
          Printf.printf "%s: parse error: %s\n" path e;
          failed := true
      | Ok None -> Printf.printf "%s: no divergence (bug is fixed)\n" path
      | Ok (Some d) ->
          Format.printf "%s reproduces:@.%a@." path
            Check.Policy_equiv.pp_divergence d;
          failed := true)
  | None ->
      let specs =
        match only with
        | None -> Check.Policy_equiv.specs ()
        | Some name -> (
            match Check.Policy_equiv.find_spec name with
            | Some s -> [ s ]
            | None ->
                Printf.eprintf "policy check: unknown spec %S\n" name;
                exit 2)
      in
      let saved = ref 0 in
      List.iter
        (fun spec ->
          let on_divergence (d : Check.Policy_equiv.divergence) =
            Format.printf "@.%a@." Check.Policy_equiv.pp_divergence d;
            (try Unix.mkdir repro_dir 0o755 with Unix.Unix_error _ -> ());
            let path =
              Filename.concat repro_dir
                (Printf.sprintf "policy_divergence_%d.repro" !saved)
            in
            incr saved;
            Check.Policy_equiv.save ~path
              ~comment:
                (Printf.sprintf "%s diverged at step %d" d.impl d.step_index)
              d.case;
            Printf.printf "repro written to %s\n" path
          in
          let t0 = Unix.gettimeofday () in
          let r = Check.Policy_equiv.run ~on_divergence ~spec ~seed ~cases () in
          let dt = Unix.gettimeofday () -. t0 in
          Printf.printf
            "%-10s %d cases, %d packet comparisons, %d divergences (%.0f \
             cases/s)\n"
            spec.Check.Policy_equiv.spec_name r.Check.Policy_equiv.cases
            r.packets
            (List.length r.divergences)
            (float_of_int r.Check.Policy_equiv.cases /. Float.max 1e-9 dt);
          if r.Check.Policy_equiv.divergences <> [] then failed := true)
        specs);
  if !failed then exit 1

let policy_spec_pos_arg =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"SPEC"
        ~doc:"Spec to compile: dmz, lb, parental, ratelimit or gateway.")

let policy_compile_cmd =
  Cmd.v
    (Cmd.info "compile"
       ~doc:
         "compile a built-in scenario's policy to a single flow table and \
          print the rendered rules (the format committed as goldens)")
    Term.(const run_policy_compile $ policy_spec_pos_arg)

let policy_check_cases_arg =
  Arg.(
    value & opt int 1000
    & info [ "cases" ] ~docv:"N" ~doc:"Fuzzed packet sequences per spec.")

let policy_check_dir_arg =
  Arg.(
    value & opt string "policy-repros"
    & info [ "dir" ] ~docv:"DIR"
        ~doc:"Where to write shrunk divergence repros.")

let policy_check_replay_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "replay" ] ~docv:"FILE"
        ~doc:
          "Replay a pinned repro file instead of fuzzing; exits nonzero if \
           it still diverges.")

let policy_check_spec_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "spec" ] ~docv:"SPEC" ~doc:"Check only this spec (default: all).")

let policy_check_cmd =
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "replay fuzzed packets through the policy interpreter, the \
          compiled table on every backend, and the hand-written rules; \
          exits nonzero on any divergence")
    Term.(
      const run_policy_check $ policy_check_cases_arg $ fuzz_seed_arg
      $ policy_check_dir_arg $ policy_check_replay_arg
      $ policy_check_spec_arg)

let policy_cmd =
  Cmd.group
    (Cmd.info "policy"
       ~doc:
         "compile NetKAT-lite policies to flow tables and prove them \
          equivalent to the hand-written SS_2 apps")
    [ policy_compile_cmd; policy_check_cmd ]

(* ---- gc: memory telemetry over the quickstart scenario ---- *)

let run_gc duration_ms =
  if duration_ms <= 0 then begin
    prerr_endline "gc: --duration must be positive";
    exit 2
  end;
  let engine, deployment, _ctrl, ping = build_scenario () in
  Simnet.Engine.enable_telemetry ~sample_every:16 engine;
  let gcstats = Telemetry.Gcstats.create () in
  let window = Simnet.Sim_time.ms 30 in
  let stop =
    Simnet.Sim_time.add (Simnet.Engine.now engine)
      (Simnet.Sim_time.ms duration_ms)
  in
  let n = Harmless.Deployment.num_hosts deployment in
  let seq = ref 1 in
  let rec traffic k =
    if Simnet.Sim_time.( < ) (Simnet.Engine.now engine) stop then begin
      incr seq;
      ping ~seq:!seq (k mod n) ((k + 1) mod n);
      Simnet.Engine.schedule_after engine (Simnet.Sim_time.ms 1) (fun () ->
          traffic (k + 1))
    end
  in
  traffic 0;
  Simnet.Engine.schedule_every engine (Simnet.Sim_time.ms 2) (fun () ->
      let now = Simnet.Engine.now engine in
      if Simnet.Sim_time.( <= ) now stop then
        Telemetry.Gcstats.sample gcstats ~ts_ns:(Simnet.Sim_time.to_ns now);
      Simnet.Sim_time.( < ) now stop);
  let (), recorder =
    Telemetry.Allocprof.with_recorder (fun () ->
        Simnet.Engine.run engine ~until:stop)
  in
  let now_ns = Simnet.Sim_time.to_ns (Simnet.Engine.now engine) in
  Printf.printf "memory telemetry — %d ms of probe traffic\n\n" duration_ms;
  print_string (Telemetry.Gcstats.panel gcstats ~now_ns ~window);
  (match
     ( Simnet.Engine.queue_depth_series engine,
       Simnet.Engine.scheduling_lag_series engine )
   with
  | Some depth, Some lag ->
      let last series =
        match Telemetry.Timeseries.last series with
        | Some (_, v) -> Printf.sprintf "%.0f" v
        | None -> "-"
      in
      Printf.printf "engine: %d events, queue depth %s, sched lag %sns\n"
        (Simnet.Engine.events_executed engine)
        (last depth) (last lag)
  | _ -> ());
  print_newline ();
  print_string (Telemetry.Allocprof.table recorder)

let gc_duration_arg =
  Arg.(
    value & opt int 100
    & info [ "duration" ] ~docv:"MS"
        ~doc:"Sim-time milliseconds of probe traffic to run.")

let gc_cmd =
  Cmd.v
    (Cmd.info "gc"
       ~doc:"per-site allocation attribution and GC pressure for the demo"
       ~man:
         [
           `S Manpage.s_description;
           `P
             "Runs the quickstart scenario with an allocation recorder \
              installed and the engine's queue telemetry on: probe pings \
              cycle through the hosts while the GC is sampled every 2 ms of \
              sim time.  Prints the GC panel (alloc rate, collections, heap \
              size), the engine's sampled queue depth and scheduling lag, \
              and the per-site minor-words table from the instrumented hot \
              paths (wire codec, dataplane lookup, PMD, trace emission, \
              engine dispatch).  Allocation counts are deterministic for a \
              fixed build; GC collection counts depend on the live runtime.";
         ])
    Term.(const run_gc $ gc_duration_arg)

(* ---- perf: attribution report and bench-regression gating ---- *)

let load_snapshot_or_die ~what path =
  match Telemetry.Bench_history.load_snapshot ~path with
  | Ok snap -> snap
  | Error msg ->
      Printf.eprintf "cannot load %s %s: %s\n" what path msg;
      exit 1

let thresholds_of ~quick_tolerant =
  if quick_tolerant then Telemetry.Bench_history.quick_tolerant
  else Telemetry.Bench_history.default_thresholds

let run_perf_report hosts pings =
  match Harmless.Perf_rig.run ~num_hosts:hosts ~pings () with
  | Error msg ->
      Printf.eprintf "perf rig failed: %s\n" msg;
      exit 1
  | Ok report -> print_string (Harmless.Perf_rig.attribution report)

let run_perf_diff baseline current quick_tolerant =
  let baseline = load_snapshot_or_die ~what:"baseline" baseline in
  let current = load_snapshot_or_die ~what:"current" current in
  let comparisons =
    Telemetry.Bench_history.diff
      ~thresholds:(thresholds_of ~quick_tolerant)
      ~baseline ~current ()
  in
  print_string (Telemetry.Bench_history.render_table comparisons)

let run_perf_check baseline current quick_tolerant =
  let baseline = load_snapshot_or_die ~what:"baseline" baseline in
  let current = load_snapshot_or_die ~what:"current" current in
  let comparisons =
    Telemetry.Bench_history.diff
      ~thresholds:(thresholds_of ~quick_tolerant)
      ~baseline ~current ()
  in
  print_string (Telemetry.Bench_history.render_table comparisons);
  match Telemetry.Bench_history.regressions comparisons with
  | [] -> print_endline "perf check: OK"
  | regressed ->
      Printf.printf "perf check: FAILED — %d benchmark(s) regressed\n"
        (List.length regressed);
      exit 3

let perf_hosts_arg =
  Arg.(value & opt int 4 & info [ "hosts" ] ~docv:"N" ~doc:"Hosts per deployment.")

let perf_pings_arg =
  Arg.(
    value & opt int 40
    & info [ "pings" ] ~docv:"N" ~doc:"Measured pings per deployment (after warm-up).")

let baseline_arg =
  Arg.(
    value & opt string "BENCH_baseline.json"
    & info [ "baseline" ] ~docv:"FILE"
        ~doc:
          "Baseline bench snapshot: a $(b,bench --json) file or a JSONL \
           history (newest entry wins).")

let current_arg =
  Arg.(
    value & opt string "BENCH_results.json"
    & info [ "current" ] ~docv:"FILE" ~doc:"Current bench snapshot (same formats).")

let quick_tolerant_arg =
  Arg.(
    value & flag
    & info [ "quick-tolerant" ]
        ~doc:
          "Widen the noise thresholds for $(b,--quick) bench runs: time 60% \
           relative + 25 ns absolute (vs the default 15% + 2 ns), allocation \
           25% + 64 words (vs 10% + 8 words).")

let perf_report_cmd =
  Cmd.v
    (Cmd.info "report"
       ~doc:"profile the HARMLESS walk and attribute e2e latency to stages"
       ~man:
         [
           `S Manpage.s_description;
           `P
             "Runs the deterministic profiling rig: a HARMLESS deployment \
              and a direct-OpenFlow control group, warmed up, driven with \
              identical traced ping sequences on the simulation clock.  \
              Prints a per-stage attribution table for each (stage \
              p50/p95/p99 and share of the summed p50s — which tile the \
              measured end-to-end p50 exactly) and the HARMLESS-vs-direct \
              overhead ratio.  Byte-identical across runs for fixed flags.";
         ])
    Term.(const run_perf_report $ perf_hosts_arg $ perf_pings_arg)

let perf_diff_cmd =
  Cmd.v
    (Cmd.info "diff"
       ~doc:"compare two bench snapshots with noise-tolerant thresholds")
    Term.(const run_perf_diff $ baseline_arg $ current_arg $ quick_tolerant_arg)

let perf_check_cmd =
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "gate on bench regressions: like diff, but exit status 3 when any \
          benchmark exceeds its threshold")
    Term.(const run_perf_check $ baseline_arg $ current_arg $ quick_tolerant_arg)

let perf_cmd =
  Cmd.group
    (Cmd.info "perf"
       ~doc:"per-stage cost attribution and bench-regression gating")
    [ perf_report_cmd; perf_diff_cmd; perf_check_cmd ]

(* ---- migrate: transactional fleet cutover ---- *)

let write_text_file path text =
  try Out_channel.with_open_text path (fun oc -> Out_channel.output_string oc text)
  with Sys_error msg ->
    Printf.eprintf "cannot write %s: %s\n" path msg;
    exit 1

let run_migrate switches hosts concurrency blast_radius seed deadline_ms
    wal_path report_path crash_sweep canary_breach postmortem_path =
  if crash_sweep then (
    match Harmless.Migration_rig.crash_sweep ~num_hosts:hosts ~seed () with
    | Error msg ->
        Printf.eprintf "crash sweep failed to run: %s\n" msg;
        exit 1
    | Ok sweep ->
        let text = Harmless.Migration_rig.render_sweep sweep in
        print_string text;
        Option.iter (fun p -> write_text_file p text) report_path;
        if not sweep.Harmless.Migration_rig.ok then exit 1)
  else if canary_breach then (
    match Harmless.Migration_rig.canary_breach ~num_hosts:hosts ~seed () with
    | Error msg ->
        Printf.eprintf "canary breach scenario failed to run: %s\n" msg;
        exit 1
    | Ok br ->
        let text = Harmless.Migration_rig.render_breach br in
        print_string text;
        Option.iter (fun p -> write_text_file p text) report_path;
        (match (postmortem_path, br.Harmless.Migration_rig.postmortem) with
        | None, _ -> ()
        | Some path, Some snap ->
            Telemetry.Postmortem.save snap ~path;
            Printf.printf "post-mortem written to %s\n" path
        | Some _, None ->
            prerr_endline "no post-mortem captured: no trigger fired");
        if not br.Harmless.Migration_rig.ok then exit 1;
        (* The scenario worked, which means the fleet aborted — and an
           aborted fleet is a non-zero exit, same as in the default mode. *)
        exit 4)
  else
    match
      Harmless.Migration_rig.build ~num_switches:switches ~num_hosts:hosts
        ~seed ()
    with
    | Error msg ->
        Printf.eprintf "migration rig failed to build: %s\n" msg;
        exit 1
    | Ok rig ->
        let fl =
          Harmless.Migration_rig.fleet ~concurrency ~blast_radius
            ?deadline:(Option.map Simnet.Sim_time.ms deadline_ms)
            rig
        in
        Harmless.Migration.Fleet.run fl;
        let wal = Harmless.Migration_rig.wal rig in
        let panel = Harmless.Dashboard.render_migration ~wal fl in
        print_string panel;
        Option.iter (fun p -> Mgmt.Txn.save wal ~path:p) wal_path;
        Option.iter (fun p -> write_text_file p panel) report_path;
        (match Harmless.Migration.Fleet.state fl with
        | Harmless.Migration.Fleet.Aborted reason ->
            Printf.eprintf "fleet aborted: %s\n" reason;
            exit 4
        | _ -> ())

let mig_switches_arg =
  Arg.(
    value & opt int 3
    & info [ "switches" ] ~docv:"N" ~doc:"Legacy switches in the fleet.")

let mig_hosts_arg =
  Arg.(
    value & opt int 2
    & info [ "hosts" ] ~docv:"N" ~doc:"Hosts per legacy switch.")

let mig_concurrency_arg =
  Arg.(
    value & opt int 1
    & info [ "concurrency" ] ~docv:"N"
        ~doc:"Maximum migrations in flight at once.")

let mig_blast_arg =
  Arg.(
    value & opt int 0
    & info [ "blast-radius" ] ~docv:"N"
        ~doc:
          "Failed switches tolerated before the whole fleet aborts \
           (0 = abort on the first failure).")

let mig_seed_arg =
  Arg.(
    value & opt int 42
    & info [ "seed" ] ~docv:"N"
        ~doc:"Seed for retry jitter and scenario determinism.")

let mig_deadline_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "deadline-ms" ] ~docv:"MS"
        ~doc:
          "Total management-plane backoff budget per switch, in \
           sim-milliseconds; exceeding it surfaces a distinct \
           'deadline exceeded' failure.")

let mig_wal_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "wal" ] ~docv:"FILE"
        ~doc:"Write the migration write-ahead log here afterwards.")

let mig_report_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "report" ] ~docv:"FILE" ~doc:"Also write the report here.")

let mig_sweep_arg =
  Arg.(
    value & flag
    & info [ "crash-sweep" ]
        ~doc:
          "Instead of migrating, crash the manager at every WAL record \
           boundary (fresh rig each time), recover from the serialized \
           log, and report consistency/idempotence/connectivity per \
           crash point.  Exit 1 if any point fails.")

let mig_postmortem_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "postmortem" ] ~docv:"FILE"
        ~doc:
          "With $(b,--canary-breach): write the captured post-mortem \
           snapshot here (render it with $(b,harmlessctl postmortem)).")

let mig_breach_arg =
  Arg.(
    value & flag
    & info [ "canary-breach" ]
        ~doc:
          "Instead of a clean migration, degrade the first switch's \
           trunk to 95% loss mid-canary: the SLO gate must roll it \
           back and the fleet must abort.  Exit 4 when that happens \
           (aborted fleet), 1 if the scenario misbehaves.")

let migrate_cmd =
  Cmd.v
    (Cmd.info "migrate"
       ~doc:"transactional live cutover of a switch fleet, with WAL crash \
             recovery"
       ~man:
         [
           `S Manpage.s_description;
           `P
             "Migrates N legacy switches to HARMLESS sandwiches through a \
              staged, make-before-break cutover \
              (precheck/shadow/canary/commit), journaling every step to a \
              write-ahead log and gating the canary stage on a live \
              answered-probes SLO.  A breach rolls the switch back; \
              repeated failures trip a circuit breaker; exceeding \
              $(b,--blast-radius) aborts the fleet (exit status 4).  \
              $(b,--crash-sweep) and $(b,--canary-breach) run the two \
              validation scenarios instead.";
         ])
    Term.(
      const run_migrate $ mig_switches_arg $ mig_hosts_arg
      $ mig_concurrency_arg $ mig_blast_arg $ mig_seed_arg
      $ mig_deadline_arg $ mig_wal_arg $ mig_report_arg $ mig_sweep_arg
      $ mig_breach_arg $ mig_postmortem_arg)

(* ---- postmortem: render a captured snapshot as a causal timeline ---- *)

let run_postmortem path format =
  match Telemetry.Postmortem.load ~path with
  | Error msg ->
      Printf.eprintf "cannot read post-mortem %s: %s\n" path msg;
      exit 1
  | Ok snap -> (
      (match format with
      | `Text -> print_string (Telemetry.Postmortem.render snap)
      | `Json ->
          print_endline
            (Telemetry.Json.to_string_lines
               (Telemetry.Postmortem.to_json snap)));
      let tl = Telemetry.Postmortem.analyze snap in
      match tl.Telemetry.Postmortem.root_cause with
      | Some _ -> ()
      | None ->
          prerr_endline
            "post-mortem has no fault-stream event: root cause unknown";
          exit 5)

let postmortem_file_arg =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"FILE"
        ~doc:
          "Snapshot file written by $(b,chaos --postmortem) or \
           $(b,migrate --canary-breach --postmortem).")

let postmortem_format_arg =
  let fmt_conv = Arg.enum [ ("text", `Text); ("json", `Json) ] in
  Arg.(
    value
    & opt fmt_conv `Text
    & info [ "format" ] ~docv:"FMT"
        ~doc:"Output format: $(b,text) (causal timeline report) or $(b,json).")

let postmortem_cmd =
  Cmd.v
    (Cmd.info "postmortem"
       ~doc:"render a captured flight-recorder snapshot as a causal timeline"
       ~man:
         [
           `S Manpage.s_description;
           `P
             "Reads a post-mortem snapshot (the bounded bundle a recorded \
              run captures when a trigger fires: the event window around \
              the first fault, the correlated packet spans and the \
              monitored series slices) and prints a causal timeline — \
              root cause first, then every significant step, e.g. \
              'trunk:primary degrade@6.0ms -> probe-liveness firing@9.5ms \
              -> sw0 rollback@9.5ms -> fleet abort@9.6ms' — followed by \
              the full window.  Deterministic: the same snapshot always \
              renders the same report.  Exit status 5 when the snapshot \
              contains no fault-stream event to name as root cause.";
         ])
    Term.(const run_postmortem $ postmortem_file_arg $ postmortem_format_arg)

(* ---- walkthrough ---- *)

let run_walkthrough () =
  if Experiments_lib.E1_walkthrough.run () then () else exit 1

let walkthrough_cmd =
  Cmd.v
    (Cmd.info "walkthrough" ~doc:"replay and verify the Fig. 1 packet walk")
    Term.(const run_walkthrough $ const ())

let main =
  Cmd.group
    (Cmd.info "harmlessctl" ~version:"1.0"
       ~doc:"operate the HARMLESS hybrid-SDN reproduction")
    [
      cost_cmd; provision_cmd; config_cmd; walkthrough_cmd; pcap_cmd;
      trace_cmd; metrics_cmd; chaos_cmd; top_cmd; alerts_cmd; flows_cmd;
      fuzz_cmd;
      policy_cmd; gc_cmd; perf_cmd; migrate_cmd; postmortem_cmd;
    ]

let () = exit (Cmd.eval main)
