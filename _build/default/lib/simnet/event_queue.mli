(** Priority queue of timestamped events (binary min-heap).

    Ties are broken by insertion order, so events scheduled for the same
    instant run in FIFO order — important for deterministic replays. *)

type 'a t

val create : unit -> 'a t
val is_empty : 'a t -> bool
val length : 'a t -> int
val push : 'a t -> Sim_time.t -> 'a -> unit
val pop : 'a t -> (Sim_time.t * 'a) option
(** Earliest event, or [None] when empty. *)

val peek_time : 'a t -> Sim_time.t option
val clear : 'a t -> unit
