lib/simnet/capture.ml: Buffer Char Engine Format Fun List Netpkt Node Sim_time String
