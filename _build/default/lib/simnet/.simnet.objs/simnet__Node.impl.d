lib/simnet/node.ml: Array Engine List Netpkt Option Printf Stats
