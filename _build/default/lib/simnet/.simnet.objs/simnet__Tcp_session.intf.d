lib/simnet/tcp_session.mli: Format Host Netpkt Sim_time
