lib/simnet/stats.mli: Format Sim_time
