lib/simnet/capture.mli: Format Netpkt Node Sim_time
