lib/simnet/host.ml: Arp Dns_lite Engine Http_lite Icmp Ipv4 Ipv4_addr List Mac_addr Netpkt Node Packet Probe Sim_time Stats Tcp Udp Wire
