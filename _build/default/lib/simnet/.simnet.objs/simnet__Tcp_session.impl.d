lib/simnet/tcp_session.ml: Buffer Engine Format Host Int Int32 Ipv4 Ipv4_addr Mac_addr Netpkt Node Packet Sim_time String Tcp
