lib/simnet/rng.mli:
