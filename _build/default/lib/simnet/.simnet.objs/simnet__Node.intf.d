lib/simnet/node.mli: Engine Netpkt Stats
