lib/simnet/probe.mli: Sim_time
