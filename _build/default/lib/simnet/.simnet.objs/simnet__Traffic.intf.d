lib/simnet/traffic.mli: Host Netpkt Rng Sim_time
