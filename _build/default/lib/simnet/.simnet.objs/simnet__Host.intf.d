lib/simnet/host.mli: Engine Netpkt Node Stats
