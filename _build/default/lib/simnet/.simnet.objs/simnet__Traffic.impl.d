lib/simnet/traffic.ml: Array Engine Host Netpkt Node Packet Probe Rng Sim_time Stdlib
