lib/simnet/link.ml: Engine Float Netpkt Node Rng Sim_time
