lib/simnet/probe.ml: Buffer Char Sim_time Stdlib String
