lib/simnet/stats.ml: Array Format Hashtbl List Sim_time Stdlib String
