lib/simnet/engine.ml: Event_queue Sim_time
