lib/simnet/link.mli: Node Sim_time
