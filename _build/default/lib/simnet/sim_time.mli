(** Simulated time.

    Time is an integer count of nanoseconds since the start of the
    simulation; spans are signed nanosecond differences.  At 1 ns
    resolution an [int] covers ~292 years on 64-bit, far beyond any
    experiment here. *)

type t = private int
(** An absolute instant, in nanoseconds. *)

type span = int
(** A duration, in nanoseconds. *)

val zero : t
val of_ns : int -> t
(** @raise Invalid_argument if negative. *)

val to_ns : t -> int
val add : t -> span -> t
(** @raise Invalid_argument if the result would be negative. *)

val diff : t -> t -> span
(** [diff a b] is [a - b]. *)

val max : t -> t -> t
val compare : t -> t -> int
val equal : t -> t -> bool
val ( <= ) : t -> t -> bool
val ( < ) : t -> t -> bool

val ns : int -> span
val us : int -> span
val ms : int -> span
val s : int -> span
val of_seconds : float -> span
(** Rounded to the nearest nanosecond. *)

val span_to_seconds : span -> float
val pp : Format.formatter -> t -> unit
(** Human-readable, e.g. ["1.250ms"]. *)

val pp_span : Format.formatter -> span -> unit
