(** Timestamped probe payloads: UDP payloads carrying their send time so
    the receiver can compute one-way latency. *)

val magic : string
(** 2-byte payload prefix identifying a probe. *)

val encode : sent_at:Sim_time.t -> pad_to:int -> string
(** A payload of at least [pad_to] bytes (and at least 10) embedding
    [sent_at]. *)

val decode : string -> Sim_time.t option
(** The embedded timestamp, if the payload is a probe. *)
