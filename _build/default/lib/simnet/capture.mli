(** Packet capture: tap one or more nodes and record every frame they
    send or receive, with timestamps — the simulator's tcpdump.  Tests and
    the Fig. 1 walk-through use captures to assert on exact packet paths. *)

type entry = {
  time : Sim_time.t;
  node : string;
  dir : Node.direction;
  port : int;
  packet : Netpkt.Packet.t;
}

type t

val create : unit -> t

val attach : t -> Node.t -> unit
(** Start recording this node's traffic (both directions, all ports). *)

val entries : t -> entry list
(** All recorded entries, oldest first. *)

val filter : t -> (entry -> bool) -> entry list
val count : t -> (entry -> bool) -> int
val clear : t -> unit

val pp_entry : Format.formatter -> entry -> unit
val dump : Format.formatter -> t -> unit
(** One line per entry, tcpdump-style. *)

val to_pcap : ?dir:Node.direction -> t -> string
(** The capture as a classic libpcap file (magic [0xa1b2c3d4],
    microsecond timestamps, LINKTYPE_ETHERNET) — openable in
    Wireshark/tcpdump.  [dir] restricts to one direction (default: rx
    only, so frames aren't duplicated when both ends are tapped). *)

val save_pcap : ?dir:Node.direction -> t -> path:string -> unit
(** Write {!to_pcap} to a file. *)
