(** Reliable TCP sessions over {!Host}s: three-way handshake, MSS
    segmentation, a fixed in-flight window with cumulative ACKs,
    timeout-based retransmission, and FIN teardown.

    This is a deliberately small but {e correct-under-loss} TCP: enough
    to demonstrate that applications survive impaired links through the
    HARMLESS fabric — not a congestion-control study (the window is
    fixed; no slow start, no SACK).

    Built entirely on the public host API ({!Host.on_receive} /
    {!Host.send}), so it composes with every deployment unchanged. *)

type state = Listening | Syn_sent | Syn_received | Established | Fin_sent | Closed

type t
(** One endpoint of one connection. *)

val listen : Host.t -> port:int -> t
(** Accept a single inbound connection on [port].  (One listener, one
    connection — spawn more listeners for more connections.) *)

val connect :
  Host.t ->
  dst_mac:Netpkt.Mac_addr.t ->
  dst_ip:Netpkt.Ipv4_addr.t ->
  dst_port:int ->
  ?src_port:int ->
  ?mss:int ->
  ?window:int ->
  ?rto:Sim_time.span ->
  unit ->
  t
(** Open a connection (SYN goes out immediately; run the engine).
    Defaults: source port 45000, MSS 1460 bytes, window 8 segments,
    RTO 20 ms. *)

val send : t -> string -> unit
(** Queue bytes for reliable delivery (transmitted as the window allows;
    queuing before the handshake completes is fine). *)

val close : t -> unit
(** Finish sending whatever is queued, then FIN. *)

val state : t -> state
val received : t -> string
(** In-order bytes delivered to this endpoint so far. *)

val bytes_acked : t -> int
(** Queued bytes confirmed by the peer. *)

val retransmissions : t -> int
val pp_state : Format.formatter -> state -> unit
