let magic = "@T"

let encode ~sent_at ~pad_to =
  let b = Buffer.create (Stdlib.max 10 pad_to) in
  Buffer.add_string b magic;
  let ns = Sim_time.to_ns sent_at in
  for i = 7 downto 0 do
    Buffer.add_char b (Char.chr ((ns lsr (i * 8)) land 0xff))
  done;
  while Buffer.length b < pad_to do Buffer.add_char b '\x00' done;
  Buffer.contents b

let decode s =
  if String.length s >= 10 && String.sub s 0 2 = magic then begin
    let ns = ref 0 in
    for i = 0 to 7 do ns := (!ns lsl 8) lor Char.code s.[2 + i] done;
    if !ns >= 0 then Some (Sim_time.of_ns !ns) else None
  end
  else None
