module Counter = struct
  type t = (string, int ref) Hashtbl.t

  let create () : t = Hashtbl.create 16

  let incr ?(by = 1) t name =
    match Hashtbl.find_opt t name with
    | Some r -> r := !r + by
    | None -> Hashtbl.replace t name (ref by)

  let get t name = match Hashtbl.find_opt t name with Some r -> !r | None -> 0

  let to_list t =
    Hashtbl.fold (fun k r acc -> (k, !r) :: acc) t []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)

  let reset = Hashtbl.reset
end

module Meter = struct
  type t = {
    mutable packets : int;
    mutable bytes : int;
    mutable window_start : Sim_time.t;
    mutable window_packets : int;
    mutable window_bytes : int;
  }

  let create () =
    {
      packets = 0;
      bytes = 0;
      window_start = Sim_time.zero;
      window_packets = 0;
      window_bytes = 0;
    }

  let record t ~now:_ ~bytes =
    t.packets <- t.packets + 1;
    t.bytes <- t.bytes + bytes;
    t.window_packets <- t.window_packets + 1;
    t.window_bytes <- t.window_bytes + bytes

  let packets t = t.packets
  let bytes t = t.bytes

  let start_window t ~now =
    t.window_start <- now;
    t.window_packets <- 0;
    t.window_bytes <- 0

  let elapsed t ~now = Sim_time.span_to_seconds (Sim_time.diff now t.window_start)

  let pps t ~now =
    let dt = elapsed t ~now in
    if dt <= 0.0 then 0.0 else float_of_int t.window_packets /. dt

  let bps t ~now =
    let dt = elapsed t ~now in
    if dt <= 0.0 then 0.0 else 8.0 *. float_of_int t.window_bytes /. dt
end

module Histogram = struct
  (* Buckets: values 0..63 exact; above that, 16 sub-buckets per power of
     two, giving <= ~6% relative error. *)
  let sub_buckets = 16
  let linear_limit = 64

  type t = {
    mutable counts : int array;
    mutable total : int;
    mutable vmin : int;
    mutable vmax : int;
    mutable sum : float;
  }

  let bucket_count = linear_limit + (64 * sub_buckets)

  let create () =
    {
      counts = Array.make bucket_count 0;
      total = 0;
      vmin = max_int;
      vmax = 0;
      sum = 0.0;
    }

  let index_of v =
    if v < linear_limit then v
    else
      (* position of the highest set bit *)
      let rec high_bit n acc = if n <= 1 then acc else high_bit (n lsr 1) (acc + 1) in
      let h = high_bit v 0 in
      let sub = (v lsr (h - 4)) land (sub_buckets - 1) in
      linear_limit + (((h - 6) * sub_buckets) + sub)

  (* Representative (upper-bound) value of a bucket. *)
  let value_of idx =
    if idx < linear_limit then idx
    else
      let idx = idx - linear_limit in
      let h = (idx / sub_buckets) + 6 in
      let sub = idx mod sub_buckets in
      ((sub_buckets + sub) lsl (h - 4)) + ((1 lsl (h - 4)) - 1)

  let record t v =
    if v < 0 then invalid_arg "Histogram.record: negative sample";
    let idx = index_of v in
    t.counts.(idx) <- t.counts.(idx) + 1;
    t.total <- t.total + 1;
    if v < t.vmin then t.vmin <- v;
    if v > t.vmax then t.vmax <- v;
    t.sum <- t.sum +. float_of_int v

  let count t = t.total

  let min t =
    if t.total = 0 then invalid_arg "Histogram.min: empty";
    t.vmin

  let max t =
    if t.total = 0 then invalid_arg "Histogram.max: empty";
    t.vmax

  let mean t = if t.total = 0 then 0.0 else t.sum /. float_of_int t.total

  let percentile t p =
    if t.total = 0 then invalid_arg "Histogram.percentile: empty";
    if p <= 0.0 || p > 100.0 then invalid_arg "Histogram.percentile: bad p";
    let target = int_of_float (ceil (p /. 100.0 *. float_of_int t.total)) in
    let acc = ref 0 and result = ref t.vmax and found = ref false in
    (try
       for i = 0 to bucket_count - 1 do
         acc := !acc + t.counts.(i);
         if !acc >= target then begin
           result := Stdlib.min (value_of i) t.vmax;
           found := true;
           raise Exit
         end
       done
     with Exit -> ());
    if !found then Stdlib.max !result t.vmin else t.vmax

  let merge a b =
    let t = create () in
    for i = 0 to bucket_count - 1 do
      t.counts.(i) <- a.counts.(i) + b.counts.(i)
    done;
    t.total <- a.total + b.total;
    t.vmin <- Stdlib.min a.vmin b.vmin;
    t.vmax <- Stdlib.max a.vmax b.vmax;
    t.sum <- a.sum +. b.sum;
    t

  let pp_summary fmt t =
    if t.total = 0 then Format.pp_print_string fmt "n=0"
    else
      Format.fprintf fmt "n=%d min=%a p50=%a p99=%a max=%a" t.total
        Sim_time.pp_span t.vmin Sim_time.pp_span (percentile t 50.0)
        Sim_time.pp_span (percentile t 99.0) Sim_time.pp_span t.vmax
end
