(** Deterministic, seedable pseudo-random numbers (splitmix64) plus the
    distributions the traffic generators need.  Every experiment takes an
    explicit seed so runs are reproducible. *)

type t

val create : int -> t
(** [create seed] — equal seeds give equal streams. *)

val split : t -> t
(** An independent stream derived from (and advancing) [t]. *)

val int : t -> int -> int
(** [int t bound] is uniform in [0, bound). @raise Invalid_argument if
    [bound <= 0]. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [lo, hi] inclusive. *)

val float : t -> float -> float
(** Uniform in [0, bound). *)

val bool : t -> bool
val bits64 : t -> int64

val exponential : t -> mean:float -> float
(** Exponentially distributed with the given mean (> 0). *)

val pareto : t -> shape:float -> scale:float -> float
(** Pareto-distributed, [shape > 0], [scale > 0]. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val choose : t -> 'a array -> 'a
(** Uniform element of a non-empty array. @raise Invalid_argument on []. *)

(** Zipf-distributed ranks, for skewed workloads. *)
module Zipf : sig
  type rng := t
  type t

  val create : n:int -> skew:float -> t
  (** Ranks [0, n); [skew] >= 0 (0 = uniform). Uses an inverse-CDF table;
      O(n) setup, O(log n) per draw. *)

  val draw : t -> rng -> int
end
