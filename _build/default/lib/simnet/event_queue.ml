type 'a entry = { time : Sim_time.t; seq : int; value : 'a }

type 'a t = {
  mutable heap : 'a entry array;
  mutable size : int;
  mutable next_seq : int;
}

let create () = { heap = [||]; size = 0; next_seq = 0 }
let is_empty t = t.size = 0
let length t = t.size

let entry_before a b =
  match Sim_time.compare a.time b.time with
  | 0 -> a.seq < b.seq
  | c -> c < 0

let grow t =
  let cap = Array.length t.heap in
  if t.size = cap then begin
    let dummy = t.heap.(0) in
    let bigger = Array.make (Stdlib.max 16 (cap * 2)) dummy in
    Array.blit t.heap 0 bigger 0 cap;
    t.heap <- bigger
  end

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if entry_before t.heap.(i) t.heap.(parent) then begin
      let tmp = t.heap.(i) in
      t.heap.(i) <- t.heap.(parent);
      t.heap.(parent) <- tmp;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let left = (2 * i) + 1 and right = (2 * i) + 2 in
  let smallest = ref i in
  if left < t.size && entry_before t.heap.(left) t.heap.(!smallest) then
    smallest := left;
  if right < t.size && entry_before t.heap.(right) t.heap.(!smallest) then
    smallest := right;
  if !smallest <> i then begin
    let tmp = t.heap.(i) in
    t.heap.(i) <- t.heap.(!smallest);
    t.heap.(!smallest) <- tmp;
    sift_down t !smallest
  end

let push t time value =
  let e = { time; seq = t.next_seq; value } in
  t.next_seq <- t.next_seq + 1;
  if Array.length t.heap = 0 then t.heap <- Array.make 16 e;
  grow t;
  t.heap.(t.size) <- e;
  t.size <- t.size + 1;
  sift_up t (t.size - 1)

let pop t =
  if t.size = 0 then None
  else begin
    let top = t.heap.(0) in
    t.size <- t.size - 1;
    if t.size > 0 then begin
      t.heap.(0) <- t.heap.(t.size);
      sift_down t 0
    end;
    Some (top.time, top.value)
  end

let peek_time t = if t.size = 0 then None else Some t.heap.(0).time

let clear t =
  t.size <- 0;
  t.heap <- [||]
