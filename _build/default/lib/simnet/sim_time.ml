type t = int
type span = int

let zero = 0

let of_ns n =
  if n < 0 then invalid_arg "Sim_time.of_ns: negative";
  n

let to_ns t = t

let add t d =
  let r = t + d in
  if r < 0 then invalid_arg "Sim_time.add: negative result";
  r

let diff a b = a - b
let max = Stdlib.max
let compare = Int.compare
let equal = Int.equal
let ( <= ) = Stdlib.( <= )
let ( < ) = Stdlib.( < )
let ns n = n
let us n = n * 1_000
let ms n = n * 1_000_000
let s n = n * 1_000_000_000
let of_seconds f = int_of_float (Float.round (f *. 1e9))
let span_to_seconds d = float_of_int d /. 1e9

let pp_span fmt d =
  let a = abs d in
  if a < 1_000 then Format.fprintf fmt "%dns" d
  else if a < 1_000_000 then Format.fprintf fmt "%.3fus" (float_of_int d /. 1e3)
  else if a < 1_000_000_000 then Format.fprintf fmt "%.3fms" (float_of_int d /. 1e6)
  else Format.fprintf fmt "%.3fs" (float_of_int d /. 1e9)

let pp fmt t = pp_span fmt t
