type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }

(* splitmix64: fast, full 64-bit period, excellent for simulation. *)
let next t =
  t.state <- Int64.add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let bits64 = next
let split t = { state = next t }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound <= 0";
  (* Keep 62 bits so the value fits OCaml's 63-bit int non-negatively. *)
  let v = Int64.to_int (Int64.shift_right_logical (next t) 2) in
  v mod bound

let int_in t lo hi =
  if hi < lo then invalid_arg "Rng.int_in: hi < lo";
  lo + int t (hi - lo + 1)

let float t bound =
  let v = Int64.to_float (Int64.shift_right_logical (next t) 11) in
  bound *. (v /. 9007199254740992.0 (* 2^53 *))

let bool t = Int64.logand (next t) 1L = 1L

let uniform_pos t =
  (* Uniform in (0, 1]: avoids log 0. *)
  let v = Int64.to_float (Int64.shift_right_logical (next t) 11) in
  (v +. 1.0) /. 9007199254740992.0

let exponential t ~mean =
  if mean <= 0.0 then invalid_arg "Rng.exponential: mean <= 0";
  -.mean *. log (uniform_pos t)

let pareto t ~shape ~scale =
  if shape <= 0.0 || scale <= 0.0 then invalid_arg "Rng.pareto";
  scale /. (uniform_pos t ** (1.0 /. shape))

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let choose t a =
  if Array.length a = 0 then invalid_arg "Rng.choose: empty array";
  a.(int t (Array.length a))

module Zipf = struct
  type t = { cdf : float array }

  let create ~n ~skew =
    if n <= 0 then invalid_arg "Rng.Zipf.create: n <= 0";
    if skew < 0.0 then invalid_arg "Rng.Zipf.create: skew < 0";
    let cdf = Array.make n 0.0 in
    let acc = ref 0.0 in
    for i = 0 to n - 1 do
      acc := !acc +. (1.0 /. (float_of_int (i + 1) ** skew));
      cdf.(i) <- !acc
    done;
    let total = !acc in
    for i = 0 to n - 1 do cdf.(i) <- cdf.(i) /. total done;
    { cdf }

  let draw t rng =
    let u = float rng 1.0 in
    (* Smallest index whose cdf >= u. *)
    let lo = ref 0 and hi = ref (Array.length t.cdf - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if t.cdf.(mid) < u then lo := mid + 1 else hi := mid
    done;
    !lo
end
