(** Traffic generation: open-loop packet streams with configurable arrival
    processes and frame-size distributions, plus simple request workloads.
    All streams are driven by the engine and stop at a given instant, so
    experiments are fully deterministic given a seed. *)

(** Packet arrival process. *)
type arrival =
  | Cbr of float      (** constant bit-pattern: exactly [rate] packets/s *)
  | Poisson of float  (** exponential inter-arrivals with mean rate pkts/s *)

(** Frame-size distribution; sizes are wire sizes (with FCS), clamped to
    the 64-byte Ethernet minimum. *)
type size =
  | Fixed of int
  | Uniform of int * int
  | Imix  (** the classic 7:4:1 mix of 64 / 594 / 1518-byte frames *)

type stream

val udp_stream :
  rng:Rng.t ->
  src:Host.t ->
  dst_mac:Netpkt.Mac_addr.t ->
  dst_ip:Netpkt.Ipv4_addr.t ->
  ?src_port:int ->
  ?dst_port:int ->
  ?start:Sim_time.t ->
  stop:Sim_time.t ->
  arrival ->
  size ->
  unit ->
  stream
(** Timestamped UDP probes from [src] to the destination; receivers
    accumulate one-way latency (see {!Host.latency}).  Defaults:
    ports 10000→20000, start at the current engine time. *)

val sent : stream -> int
(** Packets handed to the NIC so far. *)

val multi_udp_stream :
  rng:Rng.t ->
  src:Host.t ->
  dests:(Netpkt.Mac_addr.t * Netpkt.Ipv4_addr.t) array ->
  ?skew:float ->
  ?dst_port:int ->
  ?start:Sim_time.t ->
  stop:Sim_time.t ->
  arrival ->
  size ->
  unit ->
  stream
(** Like {!udp_stream} but each packet picks a destination from [dests]:
    zipf-distributed with [skew] (default 0 = uniform).  The UDP source
    port also varies per packet so flow-level caches see many flows. *)

val http_workload :
  rng:Rng.t ->
  clients:Host.t array ->
  server_mac:Netpkt.Mac_addr.t ->
  server_ip:Netpkt.Ipv4_addr.t ->
  host:string ->
  paths:string array ->
  ?start:Sim_time.t ->
  stop:Sim_time.t ->
  rate:float ->
  unit ->
  stream
(** Poisson stream of HTTP GETs; each request picks a uniform client and
    path, with a fresh source port per request. *)
