(** Measurement primitives: counters, throughput meters and latency
    histograms.  These are what the experiment harness reads out to build
    the paper-shaped tables. *)

(** Monotonic named counters. *)
module Counter : sig
  type t

  val create : unit -> t
  val incr : ?by:int -> t -> string -> unit
  val get : t -> string -> int
  (** 0 for a name never incremented. *)

  val to_list : t -> (string * int) list
  (** Sorted by name. *)

  val reset : t -> unit
end

(** Byte/packet rate over a measurement window. *)
module Meter : sig
  type t

  val create : unit -> t
  val record : t -> now:Sim_time.t -> bytes:int -> unit
  val packets : t -> int
  val bytes : t -> int

  val start_window : t -> now:Sim_time.t -> unit
  (** Forget everything before [now]; rates are measured from here. *)

  val pps : t -> now:Sim_time.t -> float
  (** Packets per second since the window start (0 if no time elapsed). *)

  val bps : t -> now:Sim_time.t -> float
  (** Payload bits per second since the window start. *)
end

(** Log-bucketed latency histogram (HDR-style, ~4% relative precision). *)
module Histogram : sig
  type t

  val create : unit -> t
  val record : t -> int -> unit
  (** Record a non-negative sample (nanoseconds by convention). *)

  val count : t -> int
  val min : t -> int
  (** @raise Invalid_argument when empty. *)

  val max : t -> int
  val mean : t -> float
  val percentile : t -> float -> int
  (** [percentile t 99.0] — the smallest recorded bucket value at or above
      the given percentile.  @raise Invalid_argument when empty or p
      outside (0, 100]. *)

  val merge : t -> t -> t
  val pp_summary : Format.formatter -> t -> unit
  (** "n=... min=... p50=... p99=... max=..." with times in readable units. *)
end
