open Netpkt

type arrival = Cbr of float | Poisson of float

type size = Fixed of int | Uniform of int * int | Imix

type stream = { mutable sent : int }

let sent s = s.sent

let interval_ns rng = function
  | Cbr rate ->
      if rate <= 0.0 then invalid_arg "Traffic: rate <= 0";
      int_of_float (1e9 /. rate)
  | Poisson rate ->
      if rate <= 0.0 then invalid_arg "Traffic: rate <= 0";
      Stdlib.max 1 (int_of_float (Rng.exponential rng ~mean:(1e9 /. rate)))

(* IMIX per Agilent's classic 7:4:1 distribution. *)
let imix_sizes = [| 64; 64; 64; 64; 64; 64; 64; 594; 594; 594; 594; 1518 |]

let draw_size rng = function
  | Fixed n -> Stdlib.max 64 n
  | Uniform (lo, hi) -> Stdlib.max 64 (Rng.int_in rng lo hi)
  | Imix -> Rng.choose rng imix_sizes

(* A generic open-loop generator: schedules [emit] according to the
   arrival process from [start] until [stop]. *)
let generate engine ~rng ~start ~stop arrival emit =
  let stream = { sent = 0 } in
  let rec tick () =
    let now = Engine.now engine in
    if Sim_time.compare now stop < 0 then begin
      emit ();
      stream.sent <- stream.sent + 1;
      let next = interval_ns rng arrival in
      Engine.schedule_after engine next tick
    end
  in
  let start = Sim_time.max start (Engine.now engine) in
  Engine.schedule_at engine start tick;
  stream

let udp_stream ~rng ~src ~dst_mac ~dst_ip ?(src_port = 10000) ?(dst_port = 20000)
    ?start ~stop arrival size () =
  let engine = Node.engine (Host.node src) in
  let start = match start with Some s -> s | None -> Engine.now engine in
  generate engine ~rng ~start ~stop arrival (fun () ->
      let wire = draw_size rng size in
      (* Payload size so the final frame hits [wire] bytes on the wire:
         wire = max 60 (14 eth + 20 ip + 8 udp + payload) + 4 fcs. *)
      let payload_len = Stdlib.max 10 (wire - 4 - 14 - 20 - 8) in
      let payload = Probe.encode ~sent_at:(Engine.now engine) ~pad_to:payload_len in
      let pkt =
        Packet.udp ~dst:dst_mac ~src:(Host.mac src) ~ip_src:(Host.ip src)
          ~ip_dst:dst_ip ~src_port ~dst_port payload
      in
      Host.send src pkt)

let multi_udp_stream ~rng ~src ~dests ?(skew = 0.0) ?(dst_port = 20000) ?start
    ~stop arrival size () =
  if Array.length dests = 0 then invalid_arg "Traffic.multi_udp_stream: no dests";
  let engine = Node.engine (Host.node src) in
  let start = match start with Some s -> s | None -> Engine.now engine in
  let zipf = Rng.Zipf.create ~n:(Array.length dests) ~skew in
  generate engine ~rng ~start ~stop arrival (fun () ->
      let dst_mac, dst_ip = dests.(Rng.Zipf.draw zipf rng) in
      let wire = draw_size rng size in
      let payload_len = Stdlib.max 10 (wire - 4 - 14 - 20 - 8) in
      let payload = Probe.encode ~sent_at:(Engine.now engine) ~pad_to:payload_len in
      let src_port = 1024 + Rng.int rng 60000 in
      let pkt =
        Packet.udp ~dst:dst_mac ~src:(Host.mac src) ~ip_src:(Host.ip src)
          ~ip_dst:dst_ip ~src_port ~dst_port payload
      in
      Host.send src pkt)

let http_workload ~rng ~clients ~server_mac ~server_ip ~host ~paths ?start ~stop
    ~rate () =
  if Array.length clients = 0 then invalid_arg "Traffic.http_workload: no clients";
  if Array.length paths = 0 then invalid_arg "Traffic.http_workload: no paths";
  let engine = Node.engine (Host.node clients.(0)) in
  let start = match start with Some s -> s | None -> Engine.now engine in
  generate engine ~rng ~start ~stop (Poisson rate) (fun () ->
      let client = Rng.choose rng clients in
      let path = Rng.choose rng paths in
      let src_port = 1024 + Rng.int rng 60000 in
      Host.http_get client ~server_mac ~server_ip ~host ~path ~src_port)
