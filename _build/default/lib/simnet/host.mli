(** End hosts: single-port nodes with a MAC and an IPv4 address and a
    small protocol personality — enough to source and sink realistic
    traffic:

    - answers ARP requests for its own address and learns from replies;
    - answers ICMP echo requests;
    - sinks UDP, recording one-way latency for timestamped probes
      (see {!Traffic}); an optional UDP echo service mirrors datagrams;
    - optionally serves HTTP: a GET for a configured page returns 200,
      anything else 404 (TCP is modelled without a handshake: requests
      and responses ride single segments, which is all the use cases
      need). *)

type t

val create :
  Engine.t ->
  name:string ->
  mac:Netpkt.Mac_addr.t ->
  ip:Netpkt.Ipv4_addr.t ->
  unit ->
  t

val node : t -> Node.t
(** The underlying node; port 0 is the host's only NIC. *)

val name : t -> string
val mac : t -> Netpkt.Mac_addr.t
val ip : t -> Netpkt.Ipv4_addr.t

val send : t -> Netpkt.Packet.t -> unit
(** Transmit a frame out of the NIC. *)

val enable_udp_echo : t -> port:int -> unit
(** Mirror any UDP datagram arriving on [port] back to its sender. *)

val serve_http : t -> pages:string list -> unit
(** Become a web server: GET for a path in [pages] → 200 with a body,
    otherwise 404.  Responses are addressed using the request's source
    fields. *)

val http_get : t -> server_mac:Netpkt.Mac_addr.t -> server_ip:Netpkt.Ipv4_addr.t ->
  host:string -> path:string -> src_port:int -> unit
(** Issue an HTTP GET (single TCP segment carrying the request). *)

val serve_dns : t -> records:(string * Netpkt.Ipv4_addr.t) list -> unit
(** Become a DNS server answering A queries (UDP port 53) from the given
    zone; unknown names get NXDomain. *)

val resolve :
  t -> server_mac:Netpkt.Mac_addr.t -> server_ip:Netpkt.Ipv4_addr.t ->
  string -> unit
(** Send an A query for a name; answers show up in {!resolved}. *)

val resolved : t -> (string * Netpkt.Ipv4_addr.t) list
(** Name→address pairs learned from DNS responses, oldest first. *)

val nxdomains : t -> int
(** NXDomain responses received. *)

val ping : t -> dst_mac:Netpkt.Mac_addr.t -> dst_ip:Netpkt.Ipv4_addr.t -> seq:int -> unit

(** Everything received, for assertions. *)
val received : t -> Netpkt.Packet.t list
(** Oldest first. *)

val received_count : t -> int
val udp_received : t -> int
val http_responses : t -> (int * string) list
(** Status and body of each HTTP response received, oldest first. *)

val echo_replies : t -> int
(** ICMP echo replies received. *)

val latency : t -> Stats.Histogram.t
(** One-way latency of timestamped UDP probes addressed to this host. *)

val arp_cache : t -> (Netpkt.Ipv4_addr.t * Netpkt.Mac_addr.t) list

val on_receive : t -> (Netpkt.Packet.t -> unit) -> unit
(** Extra user callback invoked on every delivered frame. *)
