open Netpkt

type state = Listening | Syn_sent | Syn_received | Established | Fin_sent | Closed

type t = {
  host : Host.t;
  engine : Engine.t;
  local_port : int;
  mss : int;
  window : int;
  rto : Sim_time.span;
  mutable state : state;
  mutable peer_mac : Mac_addr.t;
  mutable peer_ip : Ipv4_addr.t;
  mutable peer_port : int;
  (* Send side: the SYN occupies sequence 0, data bytes occupy 1.. so the
     byte at tx offset [i] has sequence [i + 1]. *)
  tx : Buffer.t;
  mutable snd_una : int;
  mutable snd_nxt : int;
  mutable fin_queued : bool;
  mutable fin_seq : int option;
  (* Receive side. *)
  rx : Buffer.t;
  mutable rcv_nxt : int;
  mutable peer_fin : bool;
  mutable retransmissions : int;
  mutable timer_generation : int;
}

let state t = t.state
let received t = Buffer.contents t.rx
let bytes_acked t = Int.max 0 (Int.min (t.snd_una - 1) (Buffer.length t.tx))
let retransmissions t = t.retransmissions

let pp_state fmt s =
  Format.pp_print_string fmt
    (match s with
    | Listening -> "listening"
    | Syn_sent -> "syn-sent"
    | Syn_received -> "syn-received"
    | Established -> "established"
    | Fin_sent -> "fin-sent"
    | Closed -> "closed")

let data_end t = 1 + Buffer.length t.tx

let emit t ~flags ~seq payload =
  let seg =
    Tcp.make ~src_port:t.local_port ~dst_port:t.peer_port
      ~seq:(Int32.of_int seq)
      ~ack_no:(Int32.of_int t.rcv_nxt)
      ~flags ~window:65535 payload
  in
  Host.send t.host
    (Packet.make ~dst:t.peer_mac ~src:(Host.mac t.host)
       (Packet.Ip (Ipv4.make ~src:(Host.ip t.host) ~dst:t.peer_ip (Ipv4.Tcp seg))))

let segment_at t seq =
  let offset = seq - 1 in
  let len = Int.min t.mss (Buffer.length t.tx - offset) in
  Buffer.sub t.tx offset len

(* ---- retransmission timer ---- *)

let rec arm_timer t =
  t.timer_generation <- t.timer_generation + 1;
  let generation = t.timer_generation in
  Engine.schedule_after t.engine t.rto (fun () ->
      if generation = t.timer_generation && t.state <> Closed then on_timeout t)

and on_timeout t =
  if t.snd_una < t.snd_nxt then begin
    t.retransmissions <- t.retransmissions + 1;
    (match t.state with
    | Syn_sent -> emit t ~flags:Tcp.syn ~seq:0 ""
    | Syn_received -> emit t ~flags:Tcp.syn_ack ~seq:0 ""
    | Established | Fin_sent | Listening | Closed ->
        if t.snd_una < data_end t then
          emit t ~flags:Tcp.ack_only ~seq:t.snd_una (segment_at t t.snd_una)
        else
          (* only the FIN is outstanding *)
          emit t ~flags:Tcp.fin_ack ~seq:(data_end t) "");
    arm_timer t
  end

(* ---- sending ---- *)

let rec pump t =
  match t.state with
  | Established | Fin_sent ->
      let had_outstanding = t.snd_una < t.snd_nxt in
      let window_bytes = t.window * t.mss in
      let progressed = ref false in
      while t.snd_nxt < data_end t && t.snd_nxt - t.snd_una < window_bytes do
        let payload = segment_at t t.snd_nxt in
        emit t ~flags:Tcp.ack_only ~seq:t.snd_nxt payload;
        t.snd_nxt <- t.snd_nxt + String.length payload;
        progressed := true
      done;
      if t.fin_queued && t.fin_seq = None && t.snd_nxt = data_end t then begin
        emit t ~flags:Tcp.fin_ack ~seq:t.snd_nxt "";
        t.fin_seq <- Some t.snd_nxt;
        t.snd_nxt <- t.snd_nxt + 1;
        t.state <- Fin_sent;
        progressed := true
      end;
      if !progressed && not had_outstanding then arm_timer t
  | Listening | Syn_sent | Syn_received | Closed -> ()

and send t data =
  if t.state = Closed || t.fin_queued then
    invalid_arg "Tcp_session.send: connection closing";
  Buffer.add_string t.tx data;
  pump t

let close t =
  if t.state <> Closed && not t.fin_queued then begin
    t.fin_queued <- true;
    pump t
  end

(* ---- receiving ---- *)

let maybe_close t =
  (match t.fin_seq with
  | Some f when t.snd_una >= f + 1 && t.peer_fin -> t.state <- Closed
  | Some _ | None -> ());
  if t.state = Closed then t.timer_generation <- t.timer_generation + 1

let handle_segment t (pkt : Packet.t) (ip_hdr : Ipv4.t) (seg : Tcp.t) =
  let seq = Int32.to_int seg.Tcp.seq in
  let ack = Int32.to_int seg.Tcp.ack_no in
  (match (t.state, seg.Tcp.flags.Tcp.syn, seg.Tcp.flags.Tcp.ack) with
  | Listening, true, false ->
      t.peer_mac <- pkt.Packet.src;
      t.peer_ip <- ip_hdr.Ipv4.src;
      t.peer_port <- seg.Tcp.src_port;
      t.rcv_nxt <- seq + 1;
      t.state <- Syn_received;
      t.snd_una <- 0;
      t.snd_nxt <- 1;
      emit t ~flags:Tcp.syn_ack ~seq:0 "";
      arm_timer t
  | Syn_sent, true, true ->
      t.rcv_nxt <- seq + 1;
      t.snd_una <- Int.max t.snd_una ack;
      t.state <- Established;
      emit t ~flags:Tcp.ack_only ~seq:t.snd_nxt "";
      pump t
  | (Syn_received | Established | Fin_sent), _, _ ->
      (* ACK processing *)
      if seg.Tcp.flags.Tcp.ack then begin
        if ack > t.snd_una then begin
          t.snd_una <- ack;
          if t.snd_una < t.snd_nxt then arm_timer t
          else t.timer_generation <- t.timer_generation + 1
        end;
        if t.state = Syn_received && t.snd_una >= 1 then t.state <- Established
      end;
      (* in-order data *)
      let len = String.length seg.Tcp.payload in
      let advanced = ref false in
      if len > 0 then
        if seq = t.rcv_nxt then begin
          Buffer.add_string t.rx seg.Tcp.payload;
          t.rcv_nxt <- t.rcv_nxt + len;
          advanced := true
        end
        else advanced := true (* duplicate or out of order: re-ACK below *);
      (* FIN *)
      if seg.Tcp.flags.Tcp.fin && seq + len = t.rcv_nxt then begin
        t.rcv_nxt <- t.rcv_nxt + 1;
        t.peer_fin <- true;
        advanced := true;
        (* politely finish our own side too *)
        if not t.fin_queued then close t
      end;
      if !advanced then emit t ~flags:Tcp.ack_only ~seq:t.snd_nxt "";
      maybe_close t;
      pump t
  | (Listening | Syn_sent | Closed), _, _ -> ());
  maybe_close t

let wants t (ip_hdr : Ipv4.t) (seg : Tcp.t) =
  seg.Tcp.dst_port = t.local_port
  &&
  match t.state with
  | Listening -> seg.Tcp.flags.Tcp.syn && not seg.Tcp.flags.Tcp.ack
  | Closed -> false
  | Syn_sent | Syn_received | Established | Fin_sent ->
      Ipv4_addr.equal ip_hdr.Ipv4.src t.peer_ip && seg.Tcp.src_port = t.peer_port

let make host ~local_port ~state ~peer_mac ~peer_ip ~peer_port ~mss ~window ~rto =
  let t =
    {
      host;
      engine = Node.engine (Host.node host);
      local_port;
      mss;
      window;
      rto;
      state;
      peer_mac;
      peer_ip;
      peer_port;
      tx = Buffer.create 1024;
      snd_una = 0;
      snd_nxt = 0;
      fin_queued = false;
      fin_seq = None;
      rx = Buffer.create 1024;
      rcv_nxt = 0;
      peer_fin = false;
      retransmissions = 0;
      timer_generation = 0;
    }
  in
  Host.on_receive host (fun pkt ->
      match pkt.Packet.l3 with
      | Packet.Ip ({ Ipv4.payload = Ipv4.Tcp seg; _ } as ip_hdr)
        when Ipv4_addr.equal ip_hdr.Ipv4.dst (Host.ip host) && wants t ip_hdr seg ->
          handle_segment t pkt ip_hdr seg
      | Packet.Ip _ | Packet.Arp _ | Packet.Raw _ -> ());
  t

let listen host ~port =
  make host ~local_port:port ~state:Listening ~peer_mac:Mac_addr.zero
    ~peer_ip:Ipv4_addr.any ~peer_port:0 ~mss:1460 ~window:8 ~rto:(Sim_time.ms 20)

let connect host ~dst_mac ~dst_ip ~dst_port ?(src_port = 45000) ?(mss = 1460)
    ?(window = 8) ?(rto = Sim_time.ms 20) () =
  let t =
    make host ~local_port:src_port ~state:Syn_sent ~peer_mac:dst_mac
      ~peer_ip:dst_ip ~peer_port:dst_port ~mss ~window ~rto
  in
  t.snd_una <- 0;
  t.snd_nxt <- 1;
  emit t ~flags:Tcp.syn ~seq:0 "";
  arm_timer t;
  t
