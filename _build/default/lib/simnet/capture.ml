type entry = {
  time : Sim_time.t;
  node : string;
  dir : Node.direction;
  port : int;
  packet : Netpkt.Packet.t;
}

type t = { mutable entries : entry list (* newest first *) }

let create () = { entries = [] }

let attach t node =
  let name = Node.name node in
  let engine = Node.engine node in
  Node.add_tap node (fun dir port packet ->
      t.entries <-
        { time = Engine.now engine; node = name; dir; port; packet } :: t.entries)

let entries t = List.rev t.entries
let filter t pred = List.filter pred (entries t)
let count t pred = List.length (filter t pred)
let clear t = t.entries <- []

let pp_entry fmt e =
  Format.fprintf fmt "%a %s[%d] %s %a" Sim_time.pp e.time e.node e.port
    (match e.dir with Node.Rx -> "rx" | Node.Tx -> "tx")
    Netpkt.Packet.pp e.packet

let dump fmt t =
  List.iter (fun e -> Format.fprintf fmt "%a@." pp_entry e) (entries t)

(* Little-endian writers for the pcap container (the de-facto layout). *)
let le32 b v =
  Buffer.add_char b (Char.chr (v land 0xff));
  Buffer.add_char b (Char.chr ((v lsr 8) land 0xff));
  Buffer.add_char b (Char.chr ((v lsr 16) land 0xff));
  Buffer.add_char b (Char.chr ((v lsr 24) land 0xff))

let le16 b v =
  Buffer.add_char b (Char.chr (v land 0xff));
  Buffer.add_char b (Char.chr ((v lsr 8) land 0xff))

let to_pcap ?(dir = Node.Rx) t =
  let b = Buffer.create 4096 in
  le32 b 0xa1b2c3d4 (* magic, microsecond resolution *);
  le16 b 2;
  le16 b 4 (* version 2.4 *);
  le32 b 0 (* thiszone *);
  le32 b 0 (* sigfigs *);
  le32 b 65535 (* snaplen *);
  le32 b 1 (* LINKTYPE_ETHERNET *);
  List.iter
    (fun e ->
      if e.dir = dir then begin
        let raw = Netpkt.Packet.encode e.packet in
        let ns = Sim_time.to_ns e.time in
        le32 b (ns / 1_000_000_000);
        le32 b (ns mod 1_000_000_000 / 1_000);
        le32 b (String.length raw);
        le32 b (String.length raw);
        Buffer.add_string b raw
      end)
    (entries t);
  Buffer.contents b

let save_pcap ?dir t ~path =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_pcap ?dir t))
