type t = string

let of_bytes s =
  if String.length s <> 6 then invalid_arg "Mac_addr.of_bytes: need 6 bytes";
  s

let to_bytes t = t
let broadcast = "\xff\xff\xff\xff\xff\xff"
let zero = "\x00\x00\x00\x00\x00\x00"

let hex_digit c =
  match c with
  | '0' .. '9' -> Char.code c - Char.code '0'
  | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
  | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
  | _ -> invalid_arg "Mac_addr.of_string: bad hex digit"

let of_string s =
  if String.length s <> 17 then invalid_arg "Mac_addr.of_string: bad length";
  let b = Bytes.create 6 in
  for i = 0 to 5 do
    let off = i * 3 in
    if i > 0 && s.[off - 1] <> ':' && s.[off - 1] <> '-' then
      invalid_arg "Mac_addr.of_string: bad separator";
    let hi = hex_digit s.[off] and lo = hex_digit s.[off + 1] in
    Bytes.set b i (Char.chr ((hi lsl 4) lor lo))
  done;
  Bytes.unsafe_to_string b

let of_string_opt s = try Some (of_string s) with Invalid_argument _ -> None

let to_string t =
  String.concat ":"
    (List.init 6 (fun i -> Printf.sprintf "%02x" (Char.code t.[i])))

let of_int64 n =
  let b = Bytes.create 6 in
  for i = 0 to 5 do
    let shift = (5 - i) * 8 in
    Bytes.set b i
      (Char.chr (Int64.to_int (Int64.logand (Int64.shift_right_logical n shift) 0xffL)))
  done;
  Bytes.unsafe_to_string b

let to_int64 t =
  let acc = ref 0L in
  for i = 0 to 5 do
    acc := Int64.logor (Int64.shift_left !acc 8) (Int64.of_int (Char.code t.[i]))
  done;
  !acc

(* 0x02 first octet: locally administered, unicast. *)
let make_local i =
  let i = i land 0xffffffff in
  of_int64 (Int64.logor 0x020000000000L (Int64.of_int i))

let is_broadcast t = String.equal t broadcast
let is_multicast t = Char.code t.[0] land 1 = 1
let is_unicast t = not (is_multicast t)
let equal = String.equal
let compare = String.compare
let hash = Hashtbl.hash
let pp fmt t = Format.pp_print_string fmt (to_string t)
