(** IPv4 datagrams (RFC 791) carrying a typed transport payload.

    Fragmentation is modelled only as far as the DF bit: the simulator's
    links enforce MTU by dropping and (optionally) signalling ICMP, the
    common datacenter behaviour, rather than fragmenting. *)

type payload =
  | Tcp of Tcp.t
  | Udp of Udp.t
  | Icmp of Icmp.t
  | Raw of int * string
      (** [Raw (proto, bytes)] for protocols the library does not model. *)

type t = {
  tos : int;         (** DSCP/ECN byte *)
  ident : int;
  dont_frag : bool;
  ttl : int;
  src : Ipv4_addr.t;
  dst : Ipv4_addr.t;
  payload : payload;
}

val make :
  ?tos:int ->
  ?ident:int ->
  ?dont_frag:bool ->
  ?ttl:int ->
  src:Ipv4_addr.t ->
  dst:Ipv4_addr.t ->
  payload ->
  t
(** Defaults: [tos = 0], [ident = 0], [dont_frag = true], [ttl = 64]. *)

val protocol_number : payload -> int
(** 6 for TCP, 17 for UDP, 1 for ICMP, or the raw protocol number. *)

val header_size : int
(** 20 bytes (options are not modelled). *)

val size : t -> int
(** Total datagram length. *)

val decrement_ttl : t -> t option
(** [None] when the TTL would reach zero. *)

val encode : t -> string
val decode : string -> t
(** @raise Wire.Truncated / @raise Wire.Malformed on bad input, including
    header-checksum failure. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
