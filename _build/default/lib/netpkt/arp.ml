type op = Request | Reply

type t = {
  op : op;
  sha : Mac_addr.t;
  spa : Ipv4_addr.t;
  tha : Mac_addr.t;
  tpa : Ipv4_addr.t;
}

let request ~sha ~spa ~tpa = { op = Request; sha; spa; tha = Mac_addr.zero; tpa }

let reply_to req ~sha =
  { op = Reply; sha; spa = req.tpa; tha = req.sha; tpa = req.spa }

let size = 28

let encode t =
  let w = Wire.W.create () in
  Wire.W.u16 w 1 (* htype: ethernet *);
  Wire.W.u16 w 0x0800 (* ptype: ipv4 *);
  Wire.W.u8 w 6;
  Wire.W.u8 w 4;
  Wire.W.u16 w (match t.op with Request -> 1 | Reply -> 2);
  Wire.W.bytes w (Mac_addr.to_bytes t.sha);
  Wire.W.bytes w (Ipv4_addr.to_bytes t.spa);
  Wire.W.bytes w (Mac_addr.to_bytes t.tha);
  Wire.W.bytes w (Ipv4_addr.to_bytes t.tpa);
  Wire.W.contents w

let decode s =
  let ctx = "arp" in
  let r = Wire.R.create s in
  let htype = Wire.R.u16 ~ctx r in
  let ptype = Wire.R.u16 ~ctx r in
  let hlen = Wire.R.u8 ~ctx r in
  let plen = Wire.R.u8 ~ctx r in
  if htype <> 1 || ptype <> 0x0800 || hlen <> 6 || plen <> 4 then
    raise (Wire.Malformed "arp: not ipv4-over-ethernet");
  let op =
    match Wire.R.u16 ~ctx r with
    | 1 -> Request
    | 2 -> Reply
    | _ -> raise (Wire.Malformed "arp: bad opcode")
  in
  let sha = Mac_addr.of_bytes (Wire.R.bytes ~ctx r 6) in
  let spa = Ipv4_addr.of_bytes (Wire.R.bytes ~ctx r 4) in
  let tha = Mac_addr.of_bytes (Wire.R.bytes ~ctx r 6) in
  let tpa = Ipv4_addr.of_bytes (Wire.R.bytes ~ctx r 4) in
  { op; sha; spa; tha; tpa }

let equal a b =
  a.op = b.op
  && Mac_addr.equal a.sha b.sha
  && Ipv4_addr.equal a.spa b.spa
  && Mac_addr.equal a.tha b.tha
  && Ipv4_addr.equal a.tpa b.tpa

let pp fmt t =
  match t.op with
  | Request ->
      Format.fprintf fmt "arp who-has %a tell %a" Ipv4_addr.pp t.tpa
        Ipv4_addr.pp t.spa
  | Reply ->
      Format.fprintf fmt "arp %a is-at %a" Ipv4_addr.pp t.spa Mac_addr.pp t.sha
