type vid = int
type t = { pcp : int; dei : bool; vid : vid }

let valid_vid vid = vid >= 1 && vid <= 4094

let make ?(pcp = 0) ?(dei = false) vid =
  if vid < 0 || vid > 4095 then invalid_arg "Vlan.make: vid out of range";
  if pcp < 0 || pcp > 7 then invalid_arg "Vlan.make: pcp out of range";
  { pcp; dei; vid }

let tci t = (t.pcp lsl 13) lor (if t.dei then 0x1000 else 0) lor t.vid

let of_tci n =
  { pcp = (n lsr 13) land 7; dei = n land 0x1000 <> 0; vid = n land 0xfff }

let equal a b = a.pcp = b.pcp && a.dei = b.dei && a.vid = b.vid

let pp fmt t =
  if t.pcp = 0 && not t.dei then Format.fprintf fmt "vlan %d" t.vid
  else Format.fprintf fmt "vlan %d (pcp %d%s)" t.vid t.pcp
         (if t.dei then ", dei" else "")
