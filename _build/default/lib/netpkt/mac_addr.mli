(** 48-bit Ethernet MAC addresses.

    Addresses are stored as immutable 6-byte strings.  All constructors
    validate their input; equality and hashing are structural. *)

type t
(** An Ethernet MAC address. *)

val broadcast : t
(** [ff:ff:ff:ff:ff:ff]. *)

val zero : t
(** [00:00:00:00:00:00], used as a "no address" placeholder. *)

val of_bytes : string -> t
(** [of_bytes s] interprets the 6-byte string [s] as a MAC address.
    @raise Invalid_argument if [String.length s <> 6]. *)

val to_bytes : t -> string
(** [to_bytes t] is the raw 6-byte representation. *)

val of_string : string -> t
(** [of_string "aa:bb:cc:dd:ee:ff"] parses the usual colon notation
    (case-insensitive).
    @raise Invalid_argument on malformed input. *)

val of_string_opt : string -> t option
(** Like {!of_string} but returning [None] on malformed input. *)

val to_string : t -> string
(** Lower-case colon notation, e.g. ["aa:bb:cc:dd:ee:ff"]. *)

val of_int64 : int64 -> t
(** [of_int64 n] uses the low 48 bits of [n], big-endian. *)

val to_int64 : t -> int64
(** Inverse of {!of_int64}. *)

val make_local : int -> t
(** [make_local i] is a deterministic locally-administered unicast address
    derived from [i]; distinct [i] in [0, 2^32) give distinct addresses. *)

val is_broadcast : t -> bool
val is_multicast : t -> bool
(** True iff the group bit (LSB of first octet) is set; broadcast included. *)

val is_unicast : t -> bool

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
val pp : Format.formatter -> t -> unit
