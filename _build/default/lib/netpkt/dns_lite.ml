type question = { qname : string }

type answer = { name : string; addr : Ipv4_addr.t; ttl : int }

type t = {
  id : int;
  response : bool;
  rcode : int;
  questions : question list;
  answers : answer list;
}

let server_port = 53

let valid_label l =
  let n = String.length l in
  n >= 1 && n <= 63
  && String.for_all (fun c -> Char.code c > 0x20 && Char.code c < 0x7f && c <> '.') l

let valid_name name =
  name <> "" && List.for_all valid_label (String.split_on_char '.' name)

let query ~id name =
  if not (valid_name name) then invalid_arg "Dns_lite.query: bad name";
  { id; response = false; rcode = 0; questions = [ { qname = name } ]; answers = [] }

let respond q ~addrs =
  let answers =
    List.filter_map
      (fun { qname } ->
        List.find_map
          (fun (name, addr) ->
            if String.lowercase_ascii name = String.lowercase_ascii qname then
              Some { name = qname; addr; ttl = 300 }
            else None)
          addrs)
      q.questions
  in
  {
    q with
    response = true;
    rcode = (if answers = [] then 3 (* NXDomain *) else 0);
    answers;
  }

let encode_name w name =
  List.iter
    (fun label ->
      Wire.W.u8 w (String.length label);
      Wire.W.bytes w label)
    (String.split_on_char '.' name);
  Wire.W.u8 w 0

let decode_name ~ctx r =
  let labels = ref [] in
  let rec loop () =
    let len = Wire.R.u8 ~ctx r in
    if len > 63 then raise (Wire.Malformed "dns: label too long (compression unsupported)");
    if len > 0 then begin
      labels := Wire.R.bytes ~ctx r len :: !labels;
      loop ()
    end
  in
  loop ();
  if !labels = [] then raise (Wire.Malformed "dns: empty name");
  String.concat "." (List.rev !labels)

let encode t =
  let w = Wire.W.create () in
  Wire.W.u16 w t.id;
  (* flags: QR(15) | RD(8) | RCODE(0-3); recursion desired always set *)
  Wire.W.u16 w ((if t.response then 0x8000 else 0) lor 0x0100 lor (t.rcode land 0xf));
  Wire.W.u16 w (List.length t.questions);
  Wire.W.u16 w (List.length t.answers);
  Wire.W.u16 w 0 (* authority *);
  Wire.W.u16 w 0 (* additional *);
  List.iter
    (fun { qname } ->
      encode_name w qname;
      Wire.W.u16 w 1 (* A *);
      Wire.W.u16 w 1 (* IN *))
    t.questions;
  List.iter
    (fun { name; addr; ttl } ->
      encode_name w name;
      Wire.W.u16 w 1;
      Wire.W.u16 w 1;
      Wire.W.u32 w (Int32.of_int ttl);
      Wire.W.u16 w 4;
      Wire.W.bytes w (Ipv4_addr.to_bytes addr))
    t.answers;
  Wire.W.contents w

let decode s =
  let ctx = "dns" in
  let r = Wire.R.create s in
  let id = Wire.R.u16 ~ctx r in
  let flags = Wire.R.u16 ~ctx r in
  let qd = Wire.R.u16 ~ctx r in
  let an = Wire.R.u16 ~ctx r in
  let _ns = Wire.R.u16 ~ctx r in
  let _ar = Wire.R.u16 ~ctx r in
  let questions =
    List.init qd (fun _ ->
        let qname = decode_name ~ctx r in
        let qtype = Wire.R.u16 ~ctx r in
        let qclass = Wire.R.u16 ~ctx r in
        if qtype <> 1 || qclass <> 1 then
          raise (Wire.Malformed "dns: only A/IN questions supported");
        { qname })
  in
  let answers =
    List.init an (fun _ ->
        let name = decode_name ~ctx r in
        let rtype = Wire.R.u16 ~ctx r in
        let rclass = Wire.R.u16 ~ctx r in
        let ttl = Int32.to_int (Wire.R.u32 ~ctx r) in
        let rdlen = Wire.R.u16 ~ctx r in
        if rtype <> 1 || rclass <> 1 || rdlen <> 4 then
          raise (Wire.Malformed "dns: only A/IN answers supported");
        let addr = Ipv4_addr.of_bytes (Wire.R.bytes ~ctx r 4) in
        { name; addr; ttl })
  in
  {
    id;
    response = flags land 0x8000 <> 0;
    rcode = flags land 0xf;
    questions;
    answers;
  }

let equal a b = a = b

let pp fmt t =
  if t.response then
    Format.fprintf fmt "dns response id %d rcode %d:%s" t.id t.rcode
      (String.concat ""
         (List.map
            (fun a -> Printf.sprintf " %s=%s" a.name (Ipv4_addr.to_string a.addr))
            t.answers))
  else
    Format.fprintf fmt "dns query id %d:%s" t.id
      (String.concat "" (List.map (fun q -> " " ^ q.qname) t.questions))
