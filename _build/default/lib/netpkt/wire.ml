exception Truncated of string
exception Malformed of string

module W = struct
  type t = Buffer.t

  let create () = Buffer.create 64
  let u8 t v = Buffer.add_char t (Char.chr (v land 0xff))

  let u16 t v =
    Buffer.add_char t (Char.chr ((v lsr 8) land 0xff));
    Buffer.add_char t (Char.chr (v land 0xff))

  let u32 t v =
    let v = Int32.to_int (Int32.logand v 0xffffffffl) land 0xffffffff in
    Buffer.add_char t (Char.chr ((v lsr 24) land 0xff));
    Buffer.add_char t (Char.chr ((v lsr 16) land 0xff));
    Buffer.add_char t (Char.chr ((v lsr 8) land 0xff));
    Buffer.add_char t (Char.chr (v land 0xff))

  let bytes t s = Buffer.add_string t s
  let length = Buffer.length
  let contents = Buffer.contents
end

module R = struct
  type t = { s : string; mutable pos : int }

  let create ?(pos = 0) s = { s; pos }
  let pos t = t.pos
  let remaining t = String.length t.s - t.pos

  let need ~ctx t n = if remaining t < n then raise (Truncated ctx)

  let u8 ~ctx t =
    need ~ctx t 1;
    let v = Char.code t.s.[t.pos] in
    t.pos <- t.pos + 1;
    v

  let u16 ~ctx t =
    need ~ctx t 2;
    let v = (Char.code t.s.[t.pos] lsl 8) lor Char.code t.s.[t.pos + 1] in
    t.pos <- t.pos + 2;
    v

  let u32 ~ctx t =
    need ~ctx t 4;
    let b i = Char.code t.s.[t.pos + i] in
    let v =
      Int32.logor
        (Int32.shift_left (Int32.of_int (b 0)) 24)
        (Int32.of_int ((b 1 lsl 16) lor (b 2 lsl 8) lor b 3))
    in
    t.pos <- t.pos + 4;
    v

  let bytes ~ctx t n =
    need ~ctx t n;
    let v = String.sub t.s t.pos n in
    t.pos <- t.pos + n;
    v

  let rest t =
    let v = String.sub t.s t.pos (remaining t) in
    t.pos <- String.length t.s;
    v

  let skip ~ctx t n =
    need ~ctx t n;
    t.pos <- t.pos + n
end
