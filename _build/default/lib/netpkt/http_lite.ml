type request = {
  meth : string;
  path : string;
  host : string;
  headers : (string * string) list;
  body : string;
}

type response = {
  status : int;
  reason : string;
  resp_headers : (string * string) list;
  resp_body : string;
}

let get ?(headers = []) ~host path = { meth = "GET"; path; host; headers; body = "" }

let ok ?(headers = []) body =
  { status = 200; reason = "OK"; resp_headers = headers; resp_body = body }

let forbidden =
  { status = 403; reason = "Forbidden"; resp_headers = []; resp_body = "blocked\n" }

let crlf = "\r\n"

let render_headers headers =
  String.concat ""
    (List.map (fun (k, v) -> Printf.sprintf "%s: %s%s" k v crlf) headers)

let render_request r =
  Printf.sprintf "%s %s HTTP/1.1%sHost: %s%s%s%s%s" r.meth r.path crlf r.host
    crlf (render_headers r.headers) crlf r.body

let render_response r =
  Printf.sprintf "HTTP/1.1 %d %s%s%s%s%s" r.status r.reason crlf
    (render_headers r.resp_headers) crlf r.resp_body

let split_head_body s =
  let marker = crlf ^ crlf in
  let rec find i =
    if i + 4 > String.length s then None
    else if String.sub s i 4 = marker then Some i
    else find (i + 1)
  in
  match find 0 with
  | None -> None
  | Some i -> Some (String.sub s 0 i, String.sub s (i + 4) (String.length s - i - 4))

let parse_header_line line =
  match String.index_opt line ':' with
  | None -> None
  | Some i ->
      let key = String.sub line 0 i in
      let value = String.trim (String.sub line (i + 1) (String.length line - i - 1)) in
      Some (key, value)

let split_lines head =
  String.split_on_char '\n' head
  |> List.map (fun l ->
         if String.length l > 0 && l.[String.length l - 1] = '\r' then
           String.sub l 0 (String.length l - 1)
         else l)

let parse_request s =
  match split_head_body s with
  | None -> None
  | Some (head, body) -> (
      match split_lines head with
      | [] -> None
      | request_line :: header_lines -> (
          match String.split_on_char ' ' request_line with
          | [ meth; path; version ] when version = "HTTP/1.1" || version = "HTTP/1.0" ->
              let headers = List.filter_map parse_header_line header_lines in
              let host, others =
                List.partition (fun (k, _) -> String.lowercase_ascii k = "host") headers
              in
              (match host with
              | (_, h) :: _ -> Some { meth; path; host = h; headers = others; body }
              | [] -> None)
          | _ -> None))

let parse_response s =
  match split_head_body s with
  | None -> None
  | Some (head, resp_body) -> (
      match split_lines head with
      | [] -> None
      | status_line :: header_lines -> (
          match String.split_on_char ' ' status_line with
          | version :: code :: reason_words
            when version = "HTTP/1.1" || version = "HTTP/1.0" -> (
              match int_of_string_opt code with
              | Some status ->
                  Some
                    {
                      status;
                      reason = String.concat " " reason_words;
                      resp_headers = List.filter_map parse_header_line header_lines;
                      resp_body;
                    }
              | None -> None)
          | _ -> None))

let host_of_payload payload =
  match parse_request payload with
  | Some r -> Some r.host
  | None -> None
