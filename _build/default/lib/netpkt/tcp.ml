type flags = {
  syn : bool;
  ack : bool;
  fin : bool;
  rst : bool;
  psh : bool;
  urg : bool;
}

let no_flags =
  { syn = false; ack = false; fin = false; rst = false; psh = false; urg = false }

let syn = { no_flags with syn = true }
let syn_ack = { no_flags with syn = true; ack = true }
let ack_only = { no_flags with ack = true }
let fin_ack = { no_flags with fin = true; ack = true }
let rst = { no_flags with rst = true }

type t = {
  src_port : int;
  dst_port : int;
  seq : int32;
  ack_no : int32;
  flags : flags;
  window : int;
  payload : string;
}

let make ~src_port ~dst_port ?(seq = 0l) ?(ack_no = 0l) ?(flags = no_flags)
    ?(window = 65535) payload =
  let check_u16 what v =
    if v < 0 || v > 0xffff then invalid_arg ("Tcp.make: bad " ^ what)
  in
  check_u16 "src_port" src_port;
  check_u16 "dst_port" dst_port;
  check_u16 "window" window;
  { src_port; dst_port; seq; ack_no; flags; window; payload }

let header_size = 20
let size t = header_size + String.length t.payload

let flags_to_int f =
  (if f.fin then 0x01 else 0)
  lor (if f.syn then 0x02 else 0)
  lor (if f.rst then 0x04 else 0)
  lor (if f.psh then 0x08 else 0)
  lor (if f.ack then 0x10 else 0)
  lor if f.urg then 0x20 else 0

let flags_of_int n =
  {
    fin = n land 0x01 <> 0;
    syn = n land 0x02 <> 0;
    rst = n land 0x04 <> 0;
    psh = n land 0x08 <> 0;
    ack = n land 0x10 <> 0;
    urg = n land 0x20 <> 0;
  }

let encode_with_checksum t csum =
  let w = Wire.W.create () in
  Wire.W.u16 w t.src_port;
  Wire.W.u16 w t.dst_port;
  Wire.W.u32 w t.seq;
  Wire.W.u32 w t.ack_no;
  Wire.W.u8 w (5 lsl 4) (* data offset 5 words, no options *);
  Wire.W.u8 w (flags_to_int t.flags);
  Wire.W.u16 w t.window;
  Wire.W.u16 w csum;
  Wire.W.u16 w 0 (* urgent pointer *);
  Wire.W.bytes w t.payload;
  Wire.W.contents w

let encode ~src ~dst t =
  let pseudo = Checksum.pseudo_header ~src ~dst ~proto:6 ~len:(size t) in
  let zeroed = encode_with_checksum t 0 in
  let sum =
    Checksum.ones_complement_sum ~init:(Checksum.ones_complement_sum pseudo) zeroed
  in
  encode_with_checksum t (Checksum.finish sum)

let decode ~src ~dst s =
  let ctx = "tcp" in
  let r = Wire.R.create s in
  let src_port = Wire.R.u16 ~ctx r in
  let dst_port = Wire.R.u16 ~ctx r in
  let seq = Wire.R.u32 ~ctx r in
  let ack_no = Wire.R.u32 ~ctx r in
  let off_byte = Wire.R.u8 ~ctx r in
  let data_off = (off_byte lsr 4) * 4 in
  if data_off < header_size then raise (Wire.Malformed "tcp: bad data offset");
  let flags = flags_of_int (Wire.R.u8 ~ctx r) in
  let window = Wire.R.u16 ~ctx r in
  let _csum = Wire.R.u16 ~ctx r in
  let _urg = Wire.R.u16 ~ctx r in
  if data_off > String.length s then raise (Wire.Malformed "tcp: options overrun");
  Wire.R.skip ~ctx r (data_off - header_size);
  let payload = Wire.R.rest r in
  let pseudo =
    Checksum.pseudo_header ~src ~dst ~proto:6 ~len:(String.length s)
  in
  let sum = Checksum.ones_complement_sum ~init:(Checksum.ones_complement_sum pseudo) s in
  if sum land 0xffff <> 0xffff then raise (Wire.Malformed "tcp: bad checksum");
  { src_port; dst_port; seq; ack_no; flags; window; payload }

let equal a b =
  a.src_port = b.src_port && a.dst_port = b.dst_port
  && Int32.equal a.seq b.seq
  && Int32.equal a.ack_no b.ack_no
  && a.flags = b.flags && a.window = b.window
  && String.equal a.payload b.payload

let pp_flags fmt f =
  let names =
    List.filter_map
      (fun (b, n) -> if b then Some n else None)
      [ (f.syn, "S"); (f.ack, "."); (f.fin, "F"); (f.rst, "R"); (f.psh, "P"); (f.urg, "U") ]
  in
  Format.pp_print_string fmt (if names = [] then "-" else String.concat "" names)

let pp fmt t =
  Format.fprintf fmt "tcp %d > %d [%a] seq %lu len %d" t.src_port t.dst_port
    pp_flags t.flags t.seq (String.length t.payload)
