(** A small DNS model: A-record queries and responses with a binary
    codec (RFC 1035 framing without name compression).  Enough for hosts
    to resolve names and for the controller to snoop resolutions — the
    realistic substrate under name-based policies like Parental
    Control. *)

type question = { qname : string }
(** Only QTYPE=A, QCLASS=IN are modelled. *)

type answer = { name : string; addr : Ipv4_addr.t; ttl : int }

type t = {
  id : int;
  response : bool;
  rcode : int;  (** 0 = NoError, 3 = NXDomain *)
  questions : question list;
  answers : answer list;
}

val query : id:int -> string -> t
(** An A query for a name. *)

val respond : t -> addrs:(string * Ipv4_addr.t) list -> t
(** Answer a query from a zone: names found get A records (TTL 300),
    none found gives NXDomain. *)

val encode : t -> string
val decode : string -> t
(** @raise Wire.Truncated / @raise Wire.Malformed on bad input,
    including labels longer than 63 bytes or unsupported record types. *)

val valid_name : string -> bool
(** True iff every dot-separated label is 1-63 bytes of printable ASCII
    (excluding dots). *)

val server_port : int
(** 53. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
