(** EtherType values as they appear after the MAC addresses (and after any
    VLAN tags) in an Ethernet frame. *)

type t =
  | Ipv4
  | Arp
  | Vlan  (** 802.1Q, TPID [0x8100] *)
  | Qinq  (** 802.1ad service tag, TPID [0x88a8] *)
  | Unknown of int

val of_int : int -> t
val to_int : t -> int
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
