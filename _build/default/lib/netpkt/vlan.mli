(** 802.1Q VLAN tags.

    A tag on the wire is TPID (2 bytes, handled by {!Packet}) followed by
    the TCI encoded here: 3 bits of priority (PCP), 1 drop-eligible bit
    (DEI) and a 12-bit VLAN id. *)

type vid = int
(** VLAN identifier, valid range [1, 4094] for traffic-carrying VLANs
    (0 = priority tag, 4095 reserved). *)

type t = { pcp : int; dei : bool; vid : vid }

val make : ?pcp:int -> ?dei:bool -> vid -> t
(** @raise Invalid_argument if [vid] is outside [0, 4095] or [pcp] outside
    [0, 7]. *)

val valid_vid : vid -> bool
(** True iff [vid] is in [1, 4094]. *)

val tci : t -> int
(** 16-bit TCI encoding. *)

val of_tci : int -> t

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
