(** Big-endian wire-format readers and writers used by all header codecs. *)

exception Truncated of string
(** Raised by readers when the input is shorter than the format requires.
    The payload names the decoder that failed. *)

exception Malformed of string
(** Raised by decoders on structurally invalid input (bad version field,
    impossible length, ...). *)

(** Append-only big-endian writer. *)
module W : sig
  type t

  val create : unit -> t
  val u8 : t -> int -> unit
  val u16 : t -> int -> unit
  val u32 : t -> int32 -> unit
  val bytes : t -> string -> unit
  val length : t -> int
  val contents : t -> string
end

(** Cursor-based big-endian reader over a string. *)
module R : sig
  type t

  val create : ?pos:int -> string -> t
  val pos : t -> int
  val remaining : t -> int

  val u8 : ctx:string -> t -> int
  val u16 : ctx:string -> t -> int
  val u32 : ctx:string -> t -> int32
  val bytes : ctx:string -> t -> int -> string
  val rest : t -> string
  (** All bytes from the cursor to the end; advances to the end. *)

  val skip : ctx:string -> t -> int -> unit
end
