type t =
  | Echo_request of { id : int; seq : int; payload : string }
  | Echo_reply of { id : int; seq : int; payload : string }
  | Dest_unreachable of { code : int; context : string }
  | Time_exceeded of { context : string }

let echo_request ?(payload = "") ~id ~seq () = Echo_request { id; seq; payload }

let reply_to = function
  | Echo_request { id; seq; payload } -> Some (Echo_reply { id; seq; payload })
  | Echo_reply _ | Dest_unreachable _ | Time_exceeded _ -> None

let encode_body w t =
  match t with
  | Echo_request { id; seq; payload } | Echo_reply { id; seq; payload } ->
      Wire.W.u16 w id;
      Wire.W.u16 w seq;
      Wire.W.bytes w payload
  | Dest_unreachable { code = _; context } | Time_exceeded { context } ->
      Wire.W.u32 w 0l;
      Wire.W.bytes w context

let type_code = function
  | Echo_request _ -> (8, 0)
  | Echo_reply _ -> (0, 0)
  | Dest_unreachable { code; _ } -> (3, code)
  | Time_exceeded _ -> (11, 0)

let encode t =
  let ty, code = type_code t in
  let w = Wire.W.create () in
  Wire.W.u8 w ty;
  Wire.W.u8 w code;
  Wire.W.u16 w 0;
  encode_body w t;
  let raw = Wire.W.contents w in
  let csum = Checksum.checksum raw in
  let b = Bytes.of_string raw in
  Bytes.set b 2 (Char.chr (csum lsr 8));
  Bytes.set b 3 (Char.chr (csum land 0xff));
  Bytes.unsafe_to_string b

let size t = String.length (encode t)

let decode s =
  let ctx = "icmp" in
  if not (Checksum.verify s) then raise (Wire.Malformed "icmp: bad checksum");
  let r = Wire.R.create s in
  let ty = Wire.R.u8 ~ctx r in
  let code = Wire.R.u8 ~ctx r in
  let _csum = Wire.R.u16 ~ctx r in
  match ty with
  | 8 | 0 ->
      let id = Wire.R.u16 ~ctx r in
      let seq = Wire.R.u16 ~ctx r in
      let payload = Wire.R.rest r in
      if ty = 8 then Echo_request { id; seq; payload }
      else Echo_reply { id; seq; payload }
  | 3 ->
      Wire.R.skip ~ctx r 4;
      Dest_unreachable { code; context = Wire.R.rest r }
  | 11 ->
      Wire.R.skip ~ctx r 4;
      Time_exceeded { context = Wire.R.rest r }
  | _ -> raise (Wire.Malformed "icmp: unsupported type")

let equal a b =
  match (a, b) with
  | Echo_request x, Echo_request y ->
      x.id = y.id && x.seq = y.seq && String.equal x.payload y.payload
  | Echo_reply x, Echo_reply y ->
      x.id = y.id && x.seq = y.seq && String.equal x.payload y.payload
  | Dest_unreachable x, Dest_unreachable y ->
      x.code = y.code && String.equal x.context y.context
  | Time_exceeded x, Time_exceeded y -> String.equal x.context y.context
  | (Echo_request _ | Echo_reply _ | Dest_unreachable _ | Time_exceeded _), _ ->
      false

let pp fmt = function
  | Echo_request { id; seq; _ } -> Format.fprintf fmt "icmp echo-req id %d seq %d" id seq
  | Echo_reply { id; seq; _ } -> Format.fprintf fmt "icmp echo-rep id %d seq %d" id seq
  | Dest_unreachable { code; _ } -> Format.fprintf fmt "icmp unreachable code %d" code
  | Time_exceeded _ -> Format.fprintf fmt "icmp time-exceeded"
