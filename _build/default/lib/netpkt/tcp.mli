(** TCP segments (RFC 793), without options. *)

type flags = {
  syn : bool;
  ack : bool;
  fin : bool;
  rst : bool;
  psh : bool;
  urg : bool;
}

val no_flags : flags
val syn : flags
val syn_ack : flags
val ack_only : flags
val fin_ack : flags
val rst : flags

type t = {
  src_port : int;
  dst_port : int;
  seq : int32;
  ack_no : int32;
  flags : flags;
  window : int;
  payload : string;
}

val make :
  src_port:int ->
  dst_port:int ->
  ?seq:int32 ->
  ?ack_no:int32 ->
  ?flags:flags ->
  ?window:int ->
  string ->
  t
(** Defaults: zero sequence numbers, no flags, window 65535.
    @raise Invalid_argument on out-of-range port or window. *)

val header_size : int
(** 20 bytes (no options). *)

val size : t -> int

val encode : src:Ipv4_addr.t -> dst:Ipv4_addr.t -> t -> string
(** Encodes with the checksum computed over the IPv4 pseudo-header. *)

val decode : src:Ipv4_addr.t -> dst:Ipv4_addr.t -> string -> t
(** Options, if present, are skipped and not preserved.
    @raise Wire.Truncated / @raise Wire.Malformed on bad input. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
