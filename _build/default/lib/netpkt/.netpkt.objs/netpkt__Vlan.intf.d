lib/netpkt/vlan.mli: Format
