lib/netpkt/dns_lite.ml: Char Format Int32 Ipv4_addr List Printf String Wire
