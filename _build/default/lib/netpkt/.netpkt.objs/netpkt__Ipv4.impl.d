lib/netpkt/ipv4.ml: Checksum Format Icmp Ipv4_addr String Tcp Udp Wire
