lib/netpkt/packet.ml: Arp Ethertype Format Hashtbl Icmp Ipv4 Ipv4_addr List Mac_addr Option String Tcp Udp Vlan Wire
