lib/netpkt/packet.mli: Arp Ethertype Format Ipv4 Ipv4_addr Mac_addr Tcp Vlan
