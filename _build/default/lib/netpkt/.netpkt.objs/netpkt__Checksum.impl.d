lib/netpkt/checksum.ml: Bytes Char Ipv4_addr String
