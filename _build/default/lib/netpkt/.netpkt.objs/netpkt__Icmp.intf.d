lib/netpkt/icmp.mli: Format
