lib/netpkt/ethertype.ml: Format
