lib/netpkt/wire.mli:
