lib/netpkt/tcp.ml: Checksum Format Int32 List String Wire
