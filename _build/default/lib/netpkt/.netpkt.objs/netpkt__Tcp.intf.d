lib/netpkt/tcp.mli: Format Ipv4_addr
