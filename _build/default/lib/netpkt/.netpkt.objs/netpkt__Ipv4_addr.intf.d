lib/netpkt/ipv4_addr.mli: Format
