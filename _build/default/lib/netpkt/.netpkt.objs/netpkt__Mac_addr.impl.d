lib/netpkt/mac_addr.ml: Bytes Char Format Hashtbl Int64 List Printf String
