lib/netpkt/udp.ml: Checksum Format String Wire
