lib/netpkt/arp.mli: Format Ipv4_addr Mac_addr
