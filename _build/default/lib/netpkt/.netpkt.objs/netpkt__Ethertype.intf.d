lib/netpkt/ethertype.mli: Format
