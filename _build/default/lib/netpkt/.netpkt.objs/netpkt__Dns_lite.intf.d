lib/netpkt/dns_lite.mli: Format Ipv4_addr
