lib/netpkt/udp.mli: Format Ipv4_addr
