lib/netpkt/icmp.ml: Bytes Char Checksum Format String Wire
