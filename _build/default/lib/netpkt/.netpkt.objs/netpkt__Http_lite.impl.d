lib/netpkt/http_lite.ml: List Printf String
