lib/netpkt/mac_addr.mli: Format
