lib/netpkt/vlan.ml: Format
