lib/netpkt/checksum.mli: Ipv4_addr
