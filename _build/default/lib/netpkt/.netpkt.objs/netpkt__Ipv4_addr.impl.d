lib/netpkt/ipv4_addr.ml: Bytes Char Format Hashtbl Int Int32 Printf String
