lib/netpkt/ipv4.mli: Format Icmp Ipv4_addr Tcp Udp
