lib/netpkt/http_lite.mli:
