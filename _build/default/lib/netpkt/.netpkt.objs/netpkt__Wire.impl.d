lib/netpkt/wire.ml: Buffer Char Int32 String
