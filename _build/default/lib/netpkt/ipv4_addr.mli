(** IPv4 addresses and CIDR prefixes. *)

type t
(** An IPv4 address, stored as a 32-bit value. *)

val any : t
(** [0.0.0.0]. *)

val broadcast : t
(** [255.255.255.255]. *)

val localhost : t
(** [127.0.0.1]. *)

val of_int32 : int32 -> t
val to_int32 : t -> int32

val of_octets : int -> int -> int -> int -> t
(** [of_octets a b c d] is [a.b.c.d]. Each octet must be in [0, 255].
    @raise Invalid_argument otherwise. *)

val of_string : string -> t
(** Parses dotted-quad notation. @raise Invalid_argument on bad input. *)

val of_string_opt : string -> t option
val to_string : t -> string

val of_bytes : string -> t
(** [of_bytes s] reads 4 big-endian bytes.
    @raise Invalid_argument if [String.length s <> 4]. *)

val to_bytes : t -> string

val succ : t -> t
(** Next address, wrapping at [255.255.255.255]. *)

val add : t -> int -> t
(** [add t n] offsets [t] by [n] (may wrap). *)

val is_multicast : t -> bool
(** True for 224.0.0.0/4. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
val pp : Format.formatter -> t -> unit

(** CIDR prefixes such as [10.0.0.0/8]. *)
module Prefix : sig
  type addr := t
  type t

  val make : addr -> int -> t
  (** [make base len] is the prefix of length [len] containing [base]; host
      bits of [base] are cleared.  @raise Invalid_argument unless
      [0 <= len <= 32]. *)

  val of_string : string -> t
  (** Parses ["10.0.0.0/8"]. @raise Invalid_argument on bad input. *)

  val to_string : t -> string
  val base : t -> addr
  val length : t -> int
  val mask : t -> addr
  (** Netmask as an address, e.g. [255.0.0.0] for /8. *)

  val mem : addr -> t -> bool
  (** [mem a p] is true iff [a] lies inside [p]. *)

  val subsumes : t -> t -> bool
  (** [subsumes p q] is true iff every address of [q] is in [p]. *)

  val nth : t -> int -> addr
  (** [nth p i] is the [i]-th address of [p].
      @raise Invalid_argument if out of range. *)

  val size : t -> int
  (** Number of addresses covered (2^(32-len), capped at [max_int]). *)

  val equal : t -> t -> bool
  val compare : t -> t -> int
  val pp : Format.formatter -> t -> unit
end
