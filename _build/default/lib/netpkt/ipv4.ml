type payload =
  | Tcp of Tcp.t
  | Udp of Udp.t
  | Icmp of Icmp.t
  | Raw of int * string

type t = {
  tos : int;
  ident : int;
  dont_frag : bool;
  ttl : int;
  src : Ipv4_addr.t;
  dst : Ipv4_addr.t;
  payload : payload;
}

let make ?(tos = 0) ?(ident = 0) ?(dont_frag = true) ?(ttl = 64) ~src ~dst
    payload =
  if tos < 0 || tos > 255 then invalid_arg "Ipv4.make: bad tos";
  if ttl < 0 || ttl > 255 then invalid_arg "Ipv4.make: bad ttl";
  if ident < 0 || ident > 0xffff then invalid_arg "Ipv4.make: bad ident";
  { tos; ident; dont_frag; ttl; src; dst; payload }

let protocol_number = function
  | Tcp _ -> 6
  | Udp _ -> 17
  | Icmp _ -> 1
  | Raw (p, _) -> p land 0xff

let header_size = 20

let payload_bytes t =
  match t.payload with
  | Tcp seg -> Tcp.encode ~src:t.src ~dst:t.dst seg
  | Udp dgram -> Udp.encode ~src:t.src ~dst:t.dst dgram
  | Icmp msg -> Icmp.encode msg
  | Raw (_, bytes) -> bytes

let payload_size = function
  | Tcp seg -> Tcp.size seg
  | Udp dgram -> Udp.size dgram
  | Icmp msg -> Icmp.size msg
  | Raw (_, bytes) -> String.length bytes

let size t = header_size + payload_size t.payload

let decrement_ttl t = if t.ttl <= 1 then None else Some { t with ttl = t.ttl - 1 }

let encode_header t ~total_len ~csum =
  let w = Wire.W.create () in
  Wire.W.u8 w 0x45 (* version 4, IHL 5 *);
  Wire.W.u8 w t.tos;
  Wire.W.u16 w total_len;
  Wire.W.u16 w t.ident;
  Wire.W.u16 w (if t.dont_frag then 0x4000 else 0);
  Wire.W.u8 w t.ttl;
  Wire.W.u8 w (protocol_number t.payload);
  Wire.W.u16 w csum;
  Wire.W.bytes w (Ipv4_addr.to_bytes t.src);
  Wire.W.bytes w (Ipv4_addr.to_bytes t.dst);
  Wire.W.contents w

let encode t =
  let body = payload_bytes t in
  let total_len = header_size + String.length body in
  if total_len > 0xffff then invalid_arg "Ipv4.encode: datagram too large";
  let unchecked = encode_header t ~total_len ~csum:0 in
  let csum = Checksum.checksum unchecked in
  encode_header t ~total_len ~csum ^ body

let decode s =
  let ctx = "ipv4" in
  let r = Wire.R.create s in
  let vihl = Wire.R.u8 ~ctx r in
  if vihl lsr 4 <> 4 then raise (Wire.Malformed "ipv4: bad version");
  let ihl = (vihl land 0xf) * 4 in
  if ihl < header_size then raise (Wire.Malformed "ipv4: bad ihl");
  let tos = Wire.R.u8 ~ctx r in
  let total_len = Wire.R.u16 ~ctx r in
  if total_len < ihl || total_len > String.length s then
    raise (Wire.Malformed "ipv4: bad total length");
  let ident = Wire.R.u16 ~ctx r in
  let frag = Wire.R.u16 ~ctx r in
  if frag land 0x2000 <> 0 || frag land 0x1fff <> 0 then
    raise (Wire.Malformed "ipv4: fragments not supported");
  let dont_frag = frag land 0x4000 <> 0 in
  let ttl = Wire.R.u8 ~ctx r in
  let proto = Wire.R.u8 ~ctx r in
  let _csum = Wire.R.u16 ~ctx r in
  let src = Ipv4_addr.of_bytes (Wire.R.bytes ~ctx r 4) in
  let dst = Ipv4_addr.of_bytes (Wire.R.bytes ~ctx r 4) in
  if not (Checksum.verify (String.sub s 0 ihl)) then
    raise (Wire.Malformed "ipv4: bad header checksum");
  Wire.R.skip ~ctx r (ihl - header_size);
  let body = String.sub s ihl (total_len - ihl) in
  let payload =
    match proto with
    | 6 -> Tcp (Tcp.decode ~src ~dst body)
    | 17 -> Udp (Udp.decode ~src ~dst body)
    | 1 -> Icmp (Icmp.decode body)
    | p -> Raw (p, body)
  in
  { tos; ident; dont_frag; ttl; src; dst; payload }

let equal_payload a b =
  match (a, b) with
  | Tcp x, Tcp y -> Tcp.equal x y
  | Udp x, Udp y -> Udp.equal x y
  | Icmp x, Icmp y -> Icmp.equal x y
  | Raw (p, x), Raw (q, y) -> p = q && String.equal x y
  | (Tcp _ | Udp _ | Icmp _ | Raw _), _ -> false

let equal a b =
  a.tos = b.tos && a.ident = b.ident && a.dont_frag = b.dont_frag
  && a.ttl = b.ttl
  && Ipv4_addr.equal a.src b.src
  && Ipv4_addr.equal a.dst b.dst
  && equal_payload a.payload b.payload

let pp_payload fmt = function
  | Tcp seg -> Tcp.pp fmt seg
  | Udp dgram -> Udp.pp fmt dgram
  | Icmp msg -> Icmp.pp fmt msg
  | Raw (p, bytes) -> Format.fprintf fmt "proto %d len %d" p (String.length bytes)

let pp fmt t =
  Format.fprintf fmt "%a > %a ttl %d: %a" Ipv4_addr.pp t.src Ipv4_addr.pp
    t.dst t.ttl pp_payload t.payload
