(** UDP datagrams (RFC 768). *)

type t = { src_port : int; dst_port : int; payload : string }

val make : src_port:int -> dst_port:int -> string -> t
(** @raise Invalid_argument if a port is outside [0, 65535]. *)

val header_size : int
(** 8 bytes. *)

val size : t -> int
(** Header plus payload. *)

val encode : src:Ipv4_addr.t -> dst:Ipv4_addr.t -> t -> string
(** Encodes with the checksum computed over the IPv4 pseudo-header. *)

val decode : src:Ipv4_addr.t -> dst:Ipv4_addr.t -> string -> t
(** @raise Wire.Truncated on short input.
    @raise Wire.Malformed on bad length field or checksum. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
