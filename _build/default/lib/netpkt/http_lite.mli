(** A deliberately small HTTP/1.1 model — just enough for the Parental
    Control use case (matching on the [Host] header) and the Load Balancer
    workload (GET requests and status responses). *)

type request = {
  meth : string;   (** e.g. ["GET"] *)
  path : string;   (** e.g. ["/index.html"] *)
  host : string;   (** value of the [Host] header *)
  headers : (string * string) list;  (** other headers, in order *)
  body : string;
}

type response = {
  status : int;
  reason : string;
  resp_headers : (string * string) list;
  resp_body : string;
}

val get : ?headers:(string * string) list -> host:string -> string -> request
(** [get ~host path] is a GET request. *)

val ok : ?headers:(string * string) list -> string -> response
(** [ok body] is a [200 OK] response. *)

val forbidden : response
(** A [403 Forbidden] response with a short body. *)

val render_request : request -> string
val parse_request : string -> request option
(** [None] if the string is not a complete well-formed request. *)

val render_response : response -> string
val parse_response : string -> response option

val host_of_payload : string -> string option
(** Sniff the [Host] header out of a raw TCP payload, if it parses as an
    HTTP request — what the Parental Control app does with packet-ins. *)
