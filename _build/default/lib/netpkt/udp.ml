type t = { src_port : int; dst_port : int; payload : string }

let check_port p = p >= 0 && p <= 0xffff

let make ~src_port ~dst_port payload =
  if not (check_port src_port && check_port dst_port) then
    invalid_arg "Udp.make: bad port";
  { src_port; dst_port; payload }

let header_size = 8
let size t = header_size + String.length t.payload

let encode_with_checksum t csum =
  let w = Wire.W.create () in
  Wire.W.u16 w t.src_port;
  Wire.W.u16 w t.dst_port;
  Wire.W.u16 w (size t);
  Wire.W.u16 w csum;
  Wire.W.bytes w t.payload;
  Wire.W.contents w

let encode ~src ~dst t =
  let len = size t in
  let pseudo = Checksum.pseudo_header ~src ~dst ~proto:17 ~len in
  let zeroed = encode_with_checksum t 0 in
  let sum = Checksum.ones_complement_sum ~init:(Checksum.ones_complement_sum pseudo) zeroed in
  let csum =
    (* An all-zero UDP checksum means "not computed"; RFC 768 transmits
       0xffff instead when the computed value is zero. *)
    match Checksum.finish sum with 0 -> 0xffff | c -> c
  in
  encode_with_checksum t csum

let decode ~src ~dst s =
  let ctx = "udp" in
  let r = Wire.R.create s in
  let src_port = Wire.R.u16 ~ctx r in
  let dst_port = Wire.R.u16 ~ctx r in
  let len = Wire.R.u16 ~ctx r in
  let csum = Wire.R.u16 ~ctx r in
  if len < header_size || len > String.length s then
    raise (Wire.Malformed "udp: bad length");
  let payload = Wire.R.bytes ~ctx r (len - header_size) in
  (if csum <> 0 then
     let pseudo = Checksum.pseudo_header ~src ~dst ~proto:17 ~len in
     let sum =
       Checksum.ones_complement_sum
         ~init:(Checksum.ones_complement_sum pseudo)
         (String.sub s 0 len)
     in
     if sum land 0xffff <> 0xffff then raise (Wire.Malformed "udp: bad checksum"));
  { src_port; dst_port; payload }

let equal a b =
  a.src_port = b.src_port && a.dst_port = b.dst_port
  && String.equal a.payload b.payload

let pp fmt t =
  Format.fprintf fmt "udp %d > %d len %d" t.src_port t.dst_port
    (String.length t.payload)
