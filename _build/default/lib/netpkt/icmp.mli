(** ICMP for IPv4 (RFC 792) — the message types the simulator uses. *)

type t =
  | Echo_request of { id : int; seq : int; payload : string }
  | Echo_reply of { id : int; seq : int; payload : string }
  | Dest_unreachable of { code : int; context : string }
      (** [context] carries the leading bytes of the offending datagram. *)
  | Time_exceeded of { context : string }

val echo_request : ?payload:string -> id:int -> seq:int -> unit -> t
val reply_to : t -> t option
(** [reply_to (Echo_request _)] is the matching reply; [None] otherwise. *)

val encode : t -> string
val decode : string -> t
(** @raise Wire.Truncated / @raise Wire.Malformed on bad input (including
    checksum failure and unsupported types). *)

val size : t -> int
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
