let ones_complement_sum ?(init = 0) s =
  let n = String.length s in
  let sum = ref init in
  let i = ref 0 in
  while !i + 1 < n do
    sum := !sum + ((Char.code s.[!i] lsl 8) lor Char.code s.[!i + 1]);
    i := !i + 2
  done;
  if n land 1 = 1 then sum := !sum + (Char.code s.[n - 1] lsl 8);
  (* Fold carries back in; two folds suffice for any string length that
     fits in memory. *)
  let fold x = (x land 0xffff) + (x lsr 16) in
  fold (fold !sum)

let finish sum = lnot sum land 0xffff
let checksum s = finish (ones_complement_sum s)
let verify s = ones_complement_sum s = 0xffff

let pseudo_header ~src ~dst ~proto ~len =
  let b = Bytes.create 12 in
  Bytes.blit_string (Ipv4_addr.to_bytes src) 0 b 0 4;
  Bytes.blit_string (Ipv4_addr.to_bytes dst) 0 b 4 4;
  Bytes.set b 8 '\x00';
  Bytes.set b 9 (Char.chr (proto land 0xff));
  Bytes.set b 10 (Char.chr ((len lsr 8) land 0xff));
  Bytes.set b 11 (Char.chr (len land 0xff));
  Bytes.unsafe_to_string b
