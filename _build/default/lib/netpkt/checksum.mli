(** RFC 1071 Internet checksum. *)

val ones_complement_sum : ?init:int -> string -> int
(** 16-bit one's-complement sum of the 16-bit big-endian words of the
    string (odd trailing byte padded with zero), folded to 16 bits.
    [init] seeds the accumulator (default 0). *)

val finish : int -> int
(** One's complement of a folded sum, as the 16-bit checksum field value. *)

val checksum : string -> int
(** [checksum s] is [finish (ones_complement_sum s)]. *)

val verify : string -> bool
(** [verify s] is true iff [s], which includes its own checksum field,
    sums to [0xffff] (i.e. the checksum is valid). *)

val pseudo_header :
  src:Ipv4_addr.t -> dst:Ipv4_addr.t -> proto:int -> len:int -> string
(** The IPv4 pseudo-header used by TCP and UDP checksums. *)
