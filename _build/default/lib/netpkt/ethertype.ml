type t = Ipv4 | Arp | Vlan | Qinq | Unknown of int

let of_int = function
  | 0x0800 -> Ipv4
  | 0x0806 -> Arp
  | 0x8100 -> Vlan
  | 0x88a8 -> Qinq
  | n -> Unknown (n land 0xffff)

let to_int = function
  | Ipv4 -> 0x0800
  | Arp -> 0x0806
  | Vlan -> 0x8100
  | Qinq -> 0x88a8
  | Unknown n -> n land 0xffff

let equal a b = to_int a = to_int b

let pp fmt = function
  | Ipv4 -> Format.pp_print_string fmt "ipv4"
  | Arp -> Format.pp_print_string fmt "arp"
  | Vlan -> Format.pp_print_string fmt "vlan"
  | Qinq -> Format.pp_print_string fmt "qinq"
  | Unknown n -> Format.fprintf fmt "ethertype:0x%04x" n
