(** ARP for IPv4 over Ethernet (RFC 826). *)

type op = Request | Reply

type t = {
  op : op;
  sha : Mac_addr.t;   (** sender hardware address *)
  spa : Ipv4_addr.t;  (** sender protocol address *)
  tha : Mac_addr.t;   (** target hardware address (zero in requests) *)
  tpa : Ipv4_addr.t;  (** target protocol address *)
}

val request : sha:Mac_addr.t -> spa:Ipv4_addr.t -> tpa:Ipv4_addr.t -> t
(** A who-has request for [tpa]; the target hardware address is zero. *)

val reply_to : t -> sha:Mac_addr.t -> t
(** [reply_to req ~sha] answers [req] claiming [req.tpa] is at [sha]. *)

val encode : t -> string
val decode : string -> t
(** @raise Wire.Truncated or @raise Wire.Malformed on bad input. *)

val size : int
(** Encoded size in bytes (28). *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
