type t = int32

let of_int32 n = n
let to_int32 t = t
let any = 0l
let broadcast = 0xffffffffl
let equal = Int32.equal
let compare = Int32.unsigned_compare
let hash = Hashtbl.hash

let of_octets a b c d =
  let check x = if x < 0 || x > 255 then invalid_arg "Ipv4_addr.of_octets" in
  check a; check b; check c; check d;
  Int32.logor
    (Int32.shift_left (Int32.of_int a) 24)
    (Int32.of_int ((b lsl 16) lor (c lsl 8) lor d))

let localhost = of_octets 127 0 0 1

let octet t i =
  Int32.to_int (Int32.logand (Int32.shift_right_logical t ((3 - i) * 8)) 0xffl)

let to_string t =
  Printf.sprintf "%d.%d.%d.%d" (octet t 0) (octet t 1) (octet t 2) (octet t 3)

let of_string s =
  match String.split_on_char '.' s with
  | [ a; b; c; d ] -> (
      let int_of x =
        match int_of_string_opt x with
        | Some v when v >= 0 && v <= 255 && x <> "" -> v
        | _ -> invalid_arg "Ipv4_addr.of_string"
      in
      of_octets (int_of a) (int_of b) (int_of c) (int_of d))
  | _ -> invalid_arg "Ipv4_addr.of_string"

let of_string_opt s = try Some (of_string s) with Invalid_argument _ -> None

let of_bytes s =
  if String.length s <> 4 then invalid_arg "Ipv4_addr.of_bytes";
  of_octets (Char.code s.[0]) (Char.code s.[1]) (Char.code s.[2]) (Char.code s.[3])

let to_bytes t =
  let b = Bytes.create 4 in
  for i = 0 to 3 do Bytes.set b i (Char.chr (octet t i)) done;
  Bytes.unsafe_to_string b

let succ t = Int32.add t 1l
let add t n = Int32.add t (Int32.of_int n)
let is_multicast t = Int32.logand t 0xf0000000l = 0xe0000000l
let pp fmt t = Format.pp_print_string fmt (to_string t)

module Prefix = struct
  type addr = t
  type t = { base : addr; len : int }

  let mask_of_len len =
    if len = 0 then 0l else Int32.shift_left (-1l) (32 - len)

  let make base len =
    if len < 0 || len > 32 then invalid_arg "Ipv4_addr.Prefix.make";
    { base = Int32.logand base (mask_of_len len); len }

  let of_string s =
    match String.index_opt s '/' with
    | None -> invalid_arg "Ipv4_addr.Prefix.of_string: missing '/'"
    | Some i ->
        let base = of_string (String.sub s 0 i) in
        let len =
          match int_of_string_opt (String.sub s (i + 1) (String.length s - i - 1)) with
          | Some l when l >= 0 && l <= 32 -> l
          | _ -> invalid_arg "Ipv4_addr.Prefix.of_string: bad length"
        in
        make base len

  let to_string t = Printf.sprintf "%s/%d" (to_string t.base) t.len
  let base t = t.base
  let length t = t.len
  let mask t = mask_of_len t.len
  let mem a t = Int32.equal (Int32.logand a (mask_of_len t.len)) t.base

  let subsumes p q = p.len <= q.len && mem q.base p

  let size t = if t.len = 0 then max_int else 1 lsl (32 - t.len)

  let nth t i =
    if i < 0 || (t.len > 0 && i >= 1 lsl (32 - t.len)) then
      invalid_arg "Ipv4_addr.Prefix.nth";
    add t.base i

  let equal a b = Int32.equal a.base b.base && a.len = b.len
  let compare a b =
    match Int32.unsigned_compare a.base b.base with
    | 0 -> Int.compare a.len b.len
    | c -> c

  let pp fmt t = Format.pp_print_string fmt (to_string t)
end
