type t = { base_vid : int; access_ports : int array }

let make ?(base_vid = 101) ~access_ports () =
  if access_ports = [] then invalid_arg "Port_map.make: no access ports";
  let sorted = List.sort_uniq Int.compare access_ports in
  if List.length sorted <> List.length access_ports then
    invalid_arg "Port_map.make: duplicate access ports";
  if List.exists (fun p -> p < 0) access_ports then
    invalid_arg "Port_map.make: negative port";
  let top_vid = base_vid + List.length access_ports - 1 in
  (* VLAN 1 is the factory default everywhere; never map onto it. *)
  if base_vid < 2 || top_vid > 4094 then
    invalid_arg "Port_map.make: vid range outside [2, 4094]";
  { base_vid; access_ports = Array.of_list access_ports }

let size t = Array.length t.access_ports
let base_vid t = t.base_vid
let access_ports t = Array.to_list t.access_ports
let vids t = List.init (size t) (fun i -> t.base_vid + i)

let logical_of_access_port t port =
  let rec find i =
    if i >= Array.length t.access_ports then None
    else if t.access_ports.(i) = port then Some i
    else find (i + 1)
  in
  find 0

let access_port_of_logical t i =
  if i >= 0 && i < Array.length t.access_ports then Some t.access_ports.(i)
  else None

let vid_of_logical t i = if i >= 0 && i < size t then Some (t.base_vid + i) else None

let logical_of_vid t vid =
  let i = vid - t.base_vid in
  if i >= 0 && i < size t then Some i else None

let vid_of_access_port t port =
  Option.bind (logical_of_access_port t port) (vid_of_logical t)

let access_port_of_vid t vid =
  Option.bind (logical_of_vid t vid) (access_port_of_logical t)

let pp fmt t =
  Format.fprintf fmt "port-map:";
  Array.iteri
    (fun i port -> Format.fprintf fmt " %d<->vlan%d" port (t.base_vid + i))
    t.access_ports
