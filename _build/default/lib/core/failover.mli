(** Redundant-trunk HARMLESS: the trunk is the architecture's single
    point of failure, so this module provisions {e two} trunk links —
    primary active, backup administratively shut on the legacy side —
    and fails over by reconfiguring both ends:

    + the Manager pushes a new config (backup trunk up, primary shut)
      through the device's NAPALM driver;
    + SS_1's translator rules are reinstalled to hairpin via the backup
      NIC port.

    Hosts keep their VLAN mapping; the controller and SS_2 never notice.

    SS_1 port conventions here: port 0 = primary trunk NIC, port 1 =
    backup trunk NIC, patch ports from 2. *)

type t

val patch_base : int
(** 2 — first SS_1 patch port in the redundant layout. *)

val provision :
  Simnet.Engine.t ->
  device:Mgmt.Device.t ->
  primary_trunk:int ->
  backup_trunk:int ->
  access_ports:int list ->
  ?base_vid:int ->
  ?dataplane:Softswitch.Soft_switch.dataplane_kind ->
  ?pmd:Softswitch.Pmd.config ->
  unit ->
  (t, string) result
(** Like {!Manager.provision} but with a standby trunk.  The caller
    connects two links: legacy [primary_trunk] ↔ SS_1 port 0 and legacy
    [backup_trunk] ↔ SS_1 port 1. *)

val ss1 : t -> Softswitch.Soft_switch.t
val ss2 : t -> Softswitch.Soft_switch.t
val port_map : t -> Port_map.t
val active : t -> [ `Primary | `Backup ]

val activate_backup : t -> (unit, string) result
(** Perform the failover now (idempotent once on backup). *)

val start_watchdog : t -> period:Simnet.Sim_time.span -> unit
(** Poll the primary trunk NIC's attachment every [period]; when it goes
    away, fail over automatically and stop watching. *)

val failovers : t -> int
(** Completed failovers (0 or 1). *)
