(** Scale-out HARMLESS: one server fronting {e several} legacy switches —
    how the cost model's "one server per three switches" deployments are
    actually wired.

    Each member switch gets its own trunk and its own SS_1 translator
    (VLAN ids are local to a trunk, so the same 101.. range is reused per
    member), but all translators patch into a {e single} shared SS_2.
    The controller therefore sees one big OpenFlow switch whose port
    space is the concatenation of every member's managed access ports —
    cross-switch forwarding falls out of ordinary OpenFlow rules, with
    the traffic hairpinning through the server. *)

type member = {
  device : Mgmt.Device.t;
  trunk_port : int;
  access_ports : int list;
}

type t = {
  ss1s : Softswitch.Soft_switch.t array;  (** one per member, same order *)
  ss2 : Softswitch.Soft_switch.t;         (** the shared main OF switch *)
  port_maps : Port_map.t array;
  offsets : int array;
      (** [offsets.(m)] is the SS_2 port of member [m]'s first managed
          port; member [m]'s logical port [i] is SS_2 port
          [offsets.(m) + i] *)
  reports : Manager.report array;
}

val provision :
  Simnet.Engine.t ->
  members:member list ->
  ?base_vid:int ->
  ?dataplane:Softswitch.Soft_switch.dataplane_kind ->
  ?pmd:Softswitch.Pmd.config ->
  unit ->
  (t, string) result
(** Configures every member through its own management plane (same
    workflow as {!Manager.provision}); any failure aborts the whole
    operation with the already-configured members rolled back.
    The caller connects each trunk:
    [(legacy_m, trunk_port_m)] ↔ [(ss1s.(m), Translator.trunk_port)]. *)

val total_ports : t -> int
(** SS_2's port count = total managed access ports. *)

val ss2_port : t -> member:int -> access_port:int -> int option
(** The controller-visible port for a member's legacy access port. *)

val member_of_ss2_port : t -> int -> (int * int) option
(** Inverse of {!ss2_port}: (member index, legacy access port). *)
