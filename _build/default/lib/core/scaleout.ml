open Softswitch

type member = {
  device : Mgmt.Device.t;
  trunk_port : int;
  access_ports : int list;
}

type t = {
  ss1s : Soft_switch.t array;
  ss2 : Soft_switch.t;
  port_maps : Port_map.t array;
  offsets : int array;
  reports : Manager.report array;
}

let provision engine ~members ?base_vid ?(dataplane = Soft_switch.Eswitch) ?pmd
    () =
  if members = [] then Error "Scaleout.provision: no members"
  else begin
    (* Configure every device; undo the ones already done on failure. *)
    let rec configure done_ = function
      | [] -> Ok (List.rev done_)
      | m :: rest -> (
          match
            Manager.configure_device ~device:m.device ~trunk_port:m.trunk_port
              ~access_ports:m.access_ports ?base_vid ()
          with
          | Ok result -> configure ((m, result) :: done_) rest
          | Error msg ->
              List.iter
                (fun (prev, _) -> ignore (Manager.deprovision prev.device))
                done_;
              Error msg)
    in
    match configure [] members with
    | Error _ as e -> e
    | Ok configured ->
        let port_maps =
          Array.of_list (List.map (fun (_, (map, _)) -> map) configured)
        in
        let reports =
          Array.of_list (List.map (fun (_, (_, report)) -> report) configured)
        in
        let sizes = Array.map Port_map.size port_maps in
        let offsets = Array.make (Array.length sizes) 0 in
        for m = 1 to Array.length sizes - 1 do
          offsets.(m) <- offsets.(m - 1) + sizes.(m - 1)
        done;
        let total = Array.fold_left ( + ) 0 sizes in
        let ss2 =
          Soft_switch.create engine ~name:"scaleout-ss2" ~ports:total ~dataplane
            ?pmd ~miss:Soft_switch.Send_to_controller ()
        in
        let ss1s =
          Array.of_list
            (List.mapi
               (fun m (member, (map, _)) ->
                 let ss1 =
                   Soft_switch.create engine
                     ~name:(Mgmt.Device.hostname member.device ^ "-ss1")
                     ~ports:(Translator.required_ports map)
                     ~dataplane ?pmd ~miss:Soft_switch.Drop_on_miss ()
                 in
                 Translator.install ss1 map;
                 for i = 0 to Port_map.size map - 1 do
                   ignore
                     (Patch_port.connect
                        (Soft_switch.node ss1, Translator.patch_port_of_logical i)
                        (Soft_switch.node ss2, offsets.(m) + i))
                 done;
                 ss1)
               configured)
        in
        Ok { ss1s; ss2; port_maps; offsets; reports }
  end

let total_ports t = Simnet.Node.port_count (Soft_switch.node t.ss2)

let ss2_port t ~member ~access_port =
  if member < 0 || member >= Array.length t.port_maps then None
  else
    Option.map
      (fun logical -> t.offsets.(member) + logical)
      (Port_map.logical_of_access_port t.port_maps.(member) access_port)

let member_of_ss2_port t port =
  let n = Array.length t.port_maps in
  let rec find m =
    if m >= n then None
    else
      let size = Port_map.size t.port_maps.(m) in
      if port >= t.offsets.(m) && port < t.offsets.(m) + size then
        Option.map
          (fun access -> (m, access))
          (Port_map.access_port_of_logical t.port_maps.(m) (port - t.offsets.(m)))
      else find (m + 1)
  in
  if port < 0 then None else find 0
