(** The OpenFlow Translator Component (SS_1 in Fig. 1): the adaptation
    layer that hides the VLAN trick from the controller.

    Port conventions are configurable to support redundant-trunk layouts
    (see {!Failover}); by default port 0 faces the trunk NIC and port
    [1 + i] is the patch port towards SS_2's port [i].  SS_1's flow table
    does exactly two things:

    - trunk → patch: a frame arriving on the trunk with VLAN [vid(i)]
      has its tag popped and leaves on patch port [patch_base + i];
    - patch → trunk: a frame arriving on patch port [patch_base + i] gets
      a fresh tag with [vid(i)] pushed and leaves on the trunk — the
      "hairpinning" direction.

    Frames with unknown VLANs (or untagged ones) miss and are dropped:
    SS_1 must be configured with [Drop_on_miss]. *)

val trunk_port : int
(** 0 — SS_1's default trunk-facing port. *)

val patch_port_of_logical : int -> int
(** [1 + i], under the default [patch_base]. *)

val rules :
  ?trunk_port:int -> ?patch_base:int -> Port_map.t ->
  Openflow.Of_message.flow_mod list
(** The complete SS_1 flow program for a mapping (2 rules per managed
    port, table 0).  Defaults: [trunk_port = 0], [patch_base = 1]. *)

val install :
  ?trunk_port:int -> ?patch_base:int -> Softswitch.Soft_switch.t ->
  Port_map.t -> unit
(** Apply {!rules} directly to a switch (the Manager runs on the same
    server as SS_1, so no control channel is involved). *)

val reinstall :
  ?trunk_port:int -> ?patch_base:int -> Softswitch.Soft_switch.t ->
  Port_map.t -> unit
(** Clear table 0 and {!install} with (possibly different) port
    conventions — how failover repoints SS_1 at a backup trunk. *)

val required_ports : Port_map.t -> int
(** Port count SS_1 needs in the default layout: trunk + one patch per
    managed port. *)
