open Simnet
open Ethswitch
open Mgmt
open Softswitch
open Netpkt

type t = {
  engine : Engine.t;
  hosts : Host.t array;
  host_links : Link.t array;
  kind : kind;
}

and kind =
  | Legacy_only of { legacy : Legacy_switch.t; device : Device.t }
  | Plain_openflow of { switch : Soft_switch.t }
  | Harmless of {
      legacy : Legacy_switch.t;
      device : Device.t;
      trunk_link : Link.t;
      prov : Manager.provisioned;
    }
  | Scaled of {
      legacies : Legacy_switch.t array;
      devices : Device.t array;
      trunk_links : Link.t array;
      scale : Scaleout.t;
    }

let host_ip i = Ipv4_addr.of_octets 10 0 0 (i + 1)
let host_mac i = Mac_addr.make_local (i + 1)

let make_hosts engine num_hosts =
  Array.init num_hosts (fun i ->
      Host.create engine
        ~name:(Printf.sprintf "h%d" i)
        ~mac:(host_mac i) ~ip:(host_ip i) ())

let connect_hosts hosts target_node host_link =
  Array.mapi
    (fun i h ->
      Link.connect ~a_to_b:host_link ~b_to_a:host_link
        (Host.node h, 0)
        (target_node, i))
    hosts

let build_legacy_only engine ~num_hosts ?(vendor = Device.Cisco_like)
    ?(host_link = Link.gige) () =
  let legacy =
    Legacy_switch.create engine ~name:"legacy0" ~ports:(num_hosts + 1) ()
  in
  let device = Device.create ~switch:legacy ~vendor () in
  let hosts = make_hosts engine num_hosts in
  let host_links = connect_hosts hosts (Legacy_switch.node legacy) host_link in
  { engine; hosts; host_links; kind = Legacy_only { legacy; device } }

let build_plain_openflow engine ~num_hosts ?(dataplane = Soft_switch.Eswitch)
    ?pmd ?max_flow_entries ?(host_link = Link.gige) () =
  let switch =
    Soft_switch.create engine ~name:"of0" ~ports:num_hosts ~dataplane ?pmd
      ?max_flow_entries ()
  in
  let hosts = make_hosts engine num_hosts in
  let host_links = connect_hosts hosts (Soft_switch.node switch) host_link in
  { engine; hosts; host_links; kind = Plain_openflow { switch } }

let build_harmless engine ~num_hosts ?(vendor = Device.Cisco_like) ?base_vid
    ?dataplane ?pmd ?(host_link = Link.gige) ?(trunk = Link.ten_gige) () =
  let legacy =
    Legacy_switch.create engine ~name:"legacy0" ~ports:(num_hosts + 1) ()
  in
  let device = Device.create ~switch:legacy ~vendor () in
  let trunk_port = num_hosts in
  let access_ports = List.init num_hosts Fun.id in
  match
    Manager.provision engine ~device ~trunk_port ~access_ports ?base_vid
      ?dataplane ?pmd ()
  with
  | Error _ as e -> e
  | Ok prov ->
      let hosts = make_hosts engine num_hosts in
      let host_links = connect_hosts hosts (Legacy_switch.node legacy) host_link in
      let trunk_link =
        Link.connect ~a_to_b:trunk ~b_to_a:trunk
          (Legacy_switch.node legacy, trunk_port)
          (Soft_switch.node prov.Manager.ss1, Translator.trunk_port)
      in
      Ok
        {
          engine;
          hosts;
          host_links;
          kind = Harmless { legacy; device; trunk_link; prov };
        }

let build_scaleout engine ~num_switches ~hosts_per_switch
    ?(vendor = Device.Cisco_like) ?dataplane ?pmd ?(host_link = Link.gige)
    ?(trunk = Link.ten_gige) () =
  if num_switches <= 0 || hosts_per_switch <= 0 then
    invalid_arg "Deployment.build_scaleout: sizes must be positive";
  let legacies =
    Array.init num_switches (fun m ->
        Legacy_switch.create engine
          ~name:(Printf.sprintf "legacy%d" m)
          ~ports:(hosts_per_switch + 1) ())
  in
  let devices = Array.map (fun sw -> Device.create ~switch:sw ~vendor ()) legacies in
  let members =
    Array.to_list
      (Array.map
         (fun device ->
           {
             Scaleout.device;
             trunk_port = hosts_per_switch;
             access_ports = List.init hosts_per_switch Fun.id;
           })
         devices)
  in
  match Scaleout.provision engine ~members ?dataplane ?pmd () with
  | Error _ as e -> e
  | Ok scale ->
      let hosts = make_hosts engine (num_switches * hosts_per_switch) in
      let host_links =
        Array.mapi
          (fun h host ->
            let m = h / hosts_per_switch and i = h mod hosts_per_switch in
            Link.connect ~a_to_b:host_link ~b_to_a:host_link
              (Host.node host, 0)
              (Legacy_switch.node legacies.(m), i))
          hosts
      in
      let trunk_links =
        Array.mapi
          (fun m legacy ->
            Link.connect ~a_to_b:trunk ~b_to_a:trunk
              (Legacy_switch.node legacy, hosts_per_switch)
              (Softswitch.Soft_switch.node scale.Scaleout.ss1s.(m),
               Translator.trunk_port))
          legacies
      in
      Ok
        {
          engine;
          hosts;
          host_links;
          kind = Scaled { legacies; devices; trunk_links; scale };
        }

let controller_switch t =
  match t.kind with
  | Plain_openflow { switch } -> switch
  | Harmless { prov; _ } -> prov.Manager.ss2
  | Scaled { scale; _ } -> scale.Scaleout.ss2
  | Legacy_only _ ->
      invalid_arg "Deployment.controller_switch: legacy-only deployment"

let host t i = t.hosts.(i)
let num_hosts t = Array.length t.hosts
