(** The heart of the HARMLESS trick: a bijection between the legacy
    switch's managed access ports and the VLAN ids that represent them on
    the trunk.  Port [p_i] ↔ VLAN [base_vid + i], checked to stay inside
    the valid 802.1Q range and never to collide with the reserved default
    VLAN 1. *)

type t

val make : ?base_vid:int -> access_ports:int list -> unit -> t
(** [make ~access_ports ()] maps the listed legacy ports (in order) to
    consecutive VLAN ids starting at [base_vid] (default 101).
    @raise Invalid_argument on duplicate ports, an empty list, or VLAN
    ids that would leave [2, 4094]. *)

val size : t -> int
val base_vid : t -> int

val access_ports : t -> int list
(** In mapping order: the [i]-th element corresponds to SS_2 port [i]. *)

val vids : t -> int list

val vid_of_access_port : t -> int -> int option
(** The VLAN representing a legacy access port. *)

val access_port_of_vid : t -> int -> int option

val logical_of_access_port : t -> int -> int option
(** The SS_2 ("logical OpenFlow") port index for a legacy access port. *)

val access_port_of_logical : t -> int -> int option

val vid_of_logical : t -> int -> int option
val logical_of_vid : t -> int -> int option

val pp : Format.formatter -> t -> unit
