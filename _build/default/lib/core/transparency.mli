(** The data-plane transparency property (experiment E9): a controller
    program cannot tell SS_2-behind-the-translator from a plain OpenFlow
    switch.  We check it end-to-end: run the {e same} controller apps and
    the {e same} traffic on a plain-OpenFlow deployment and on a HARMLESS
    deployment, then compare what every host received.

    Comparison is per-host and order-insensitive (HARMLESS shifts
    timing, which may interleave independent flows differently) but
    byte-exact on the delivered frames {e addressed to the host} (its
    unicast MAC, or group addresses).  Frames flooded at a host that are
    addressed to someone else's MAC are excluded deliberately: the legacy
    switch's FDB legitimately suppresses some of those spurious copies
    (it knows the destination lives behind the trunk), real switches
    differ on them too, and no host's stack ever consumes them — they are
    outside the service contract the transparency claim is about. *)

type scenario = {
  num_hosts : int;
  apps : unit -> Sdnctl.Controller.app list;
      (** fresh app instances per deployment (apps hold state) *)
  traffic : Deployment.t -> unit;
      (** schedule the workload; called after the control handshake *)
  warmup : Simnet.Sim_time.span;  (** time for handshake + proactive rules *)
  duration : Simnet.Sim_time.span;  (** how long to run after [traffic] *)
}

type verdict = {
  equivalent : bool;
  mismatches : string list;     (** human-readable, per host *)
  plain_delivered : int;        (** total frames delivered, plain OF *)
  harmless_delivered : int;
}

val run : scenario -> (verdict, string) result
(** [Error] only if the HARMLESS deployment fails to provision. *)
