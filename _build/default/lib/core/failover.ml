open Simnet
open Softswitch

let patch_base = 2

type t = {
  engine : Engine.t;
  device : Mgmt.Device.t;
  primary_trunk : int;
  backup_trunk : int;
  ss1 : Soft_switch.t;
  ss2 : Soft_switch.t;
  map : Port_map.t;
  mutable active : [ `Primary | `Backup ];
  mutable failovers : int;
}

let ss1 t = t.ss1
let ss2 t = t.ss2
let port_map t = t.map
let active t = t.active
let failovers t = t.failovers

let provision engine ~device ~primary_trunk ~backup_trunk ~access_ports
    ?base_vid ?(dataplane = Soft_switch.Eswitch) ?pmd () =
  if primary_trunk = backup_trunk then Error "failover: trunks must differ"
  else if List.mem backup_trunk access_ports then
    Error "failover: backup trunk cannot be a managed access port"
  else
    match
      Manager.configure_device ~device ~trunk_port:primary_trunk ~access_ports
        ?base_vid ~disabled_ports:[ backup_trunk ] ()
    with
    | Error _ as e -> e
    | Ok (map, _report) ->
        let n = Port_map.size map in
        let host = Mgmt.Device.hostname device in
        let ss1 =
          Soft_switch.create engine
            ~name:(host ^ "-ss1")
            ~ports:(patch_base + n)
            ~dataplane ?pmd ~miss:Soft_switch.Drop_on_miss ()
        in
        let ss2 =
          Soft_switch.create engine
            ~name:(host ^ "-ss2")
            ~ports:n ~dataplane ?pmd ~miss:Soft_switch.Send_to_controller ()
        in
        for i = 0 to n - 1 do
          ignore
            (Patch_port.connect
               (Soft_switch.node ss1, patch_base + i)
               (Soft_switch.node ss2, i))
        done;
        Translator.install ~trunk_port:0 ~patch_base ss1 map;
        Ok
          {
            engine;
            device;
            primary_trunk;
            backup_trunk;
            ss1;
            ss2;
            map;
            active = `Primary;
            failovers = 0;
          }

let activate_backup t =
  match t.active with
  | `Backup -> Ok ()
  | `Primary -> (
      match
        Manager.configure_device ~device:t.device ~trunk_port:t.backup_trunk
          ~access_ports:(Port_map.access_ports t.map)
          ~base_vid:(Port_map.base_vid t.map)
          ~disabled_ports:[ t.primary_trunk ] ()
      with
      | Error _ as e -> e
      | Ok _ ->
          (* Repoint SS_1's hairpin at the backup NIC (port 1). *)
          Translator.reinstall ~trunk_port:1 ~patch_base t.ss1 t.map;
          t.active <- `Backup;
          t.failovers <- t.failovers + 1;
          Ok ())

let start_watchdog t ~period =
  if period <= 0 then invalid_arg "Failover.start_watchdog: bad period";
  let rec tick () =
    match t.active with
    | `Backup -> () (* failed over; stop watching *)
    | `Primary ->
        if not (Node.attached (Soft_switch.node t.ss1) ~port:0) then
          ignore (activate_backup t)
        else Engine.schedule_after t.engine period tick
  in
  Engine.schedule_after t.engine period tick
