lib/core/transparency.mli: Deployment Sdnctl Simnet
