lib/core/deployment.mli: Ethswitch Manager Mgmt Netpkt Scaleout Simnet Softswitch
