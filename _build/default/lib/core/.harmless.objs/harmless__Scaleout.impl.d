lib/core/scaleout.ml: Array List Manager Mgmt Option Patch_port Port_map Simnet Soft_switch Softswitch Translator
