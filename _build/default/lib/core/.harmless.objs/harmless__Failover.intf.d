lib/core/failover.mli: Mgmt Port_map Simnet Softswitch
