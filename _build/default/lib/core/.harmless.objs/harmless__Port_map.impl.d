lib/core/port_map.ml: Array Format Int List Option
