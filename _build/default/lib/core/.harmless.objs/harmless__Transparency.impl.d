lib/core/transparency.ml: Array Deployment Engine Host List Netpkt Printf Sdnctl Sim_time Simnet String
