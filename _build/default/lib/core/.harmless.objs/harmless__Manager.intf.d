lib/core/manager.mli: Mgmt Port_map Simnet Softswitch
