lib/core/harmless.ml: Deployment Failover Manager Port_map Scaleout Translator Transparency
