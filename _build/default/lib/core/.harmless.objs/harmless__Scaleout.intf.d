lib/core/scaleout.mli: Manager Mgmt Port_map Simnet Softswitch
