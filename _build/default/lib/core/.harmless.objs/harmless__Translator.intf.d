lib/core/translator.mli: Openflow Port_map Softswitch
