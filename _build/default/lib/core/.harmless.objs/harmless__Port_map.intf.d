lib/core/port_map.mli: Format
