lib/core/failover.ml: Engine List Manager Mgmt Node Patch_port Port_map Simnet Soft_switch Softswitch Translator
