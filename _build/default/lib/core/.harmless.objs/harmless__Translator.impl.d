lib/core/translator.ml: Flow_entry Fun List Of_action Of_match Of_message Openflow Port_map Softswitch
