lib/core/deployment.ml: Array Device Engine Ethswitch Fun Host Ipv4_addr Legacy_switch Link List Mac_addr Manager Mgmt Netpkt Printf Scaleout Simnet Soft_switch Softswitch Translator
