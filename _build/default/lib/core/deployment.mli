(** Turn-key deployments: hosts, switch(es), links and (for HARMLESS) the
    whole manager-provisioned SS_1/SS_2 sandwich, wired on one engine.
    These are the topologies every experiment, example and integration
    test runs on.

    Conventions — [num_hosts] = n:
    - hosts are [h0 .. h(n-1)] with MAC [make_local (i+1)] and IP
      [10.0.0.(i+1)];
    - on the legacy switch, host [i] connects to access port [i] and the
      trunk is port [n];
    - the controller-visible (SS_2 or plain-OF) port for host [i] is [i]. *)

type t = {
  engine : Simnet.Engine.t;
  hosts : Simnet.Host.t array;
  host_links : Simnet.Link.t array;
  kind : kind;
}

and kind =
  | Legacy_only of {
      legacy : Ethswitch.Legacy_switch.t;
      device : Mgmt.Device.t;
    }  (** the pre-migration network: plain L2, no SDN *)
  | Plain_openflow of { switch : Softswitch.Soft_switch.t }
      (** hosts directly on one OpenFlow switch (software, or COTS
          hardware via the [Hardware] dataplane) *)
  | Harmless of {
      legacy : Ethswitch.Legacy_switch.t;
      device : Mgmt.Device.t;
      trunk_link : Simnet.Link.t;
      prov : Manager.provisioned;
    }
  | Scaled of {
      legacies : Ethswitch.Legacy_switch.t array;
      devices : Mgmt.Device.t array;
      trunk_links : Simnet.Link.t array;
      scale : Scaleout.t;
    }  (** several legacy switches behind one server (see {!Scaleout}) *)

val host_ip : int -> Netpkt.Ipv4_addr.t
val host_mac : int -> Netpkt.Mac_addr.t

val build_legacy_only :
  Simnet.Engine.t ->
  num_hosts:int ->
  ?vendor:Mgmt.Device.vendor ->
  ?host_link:Simnet.Link.config ->
  unit ->
  t

val build_plain_openflow :
  Simnet.Engine.t ->
  num_hosts:int ->
  ?dataplane:Softswitch.Soft_switch.dataplane_kind ->
  ?pmd:Softswitch.Pmd.config ->
  ?max_flow_entries:int ->
  ?host_link:Simnet.Link.config ->
  unit ->
  t

val build_harmless :
  Simnet.Engine.t ->
  num_hosts:int ->
  ?vendor:Mgmt.Device.vendor ->
  ?base_vid:int ->
  ?dataplane:Softswitch.Soft_switch.dataplane_kind ->
  ?pmd:Softswitch.Pmd.config ->
  ?host_link:Simnet.Link.config ->
  ?trunk:Simnet.Link.config ->
  unit ->
  (t, string) result
(** Builds the legacy switch + device, runs {!Manager.provision}, and
    connects the 10 G trunk (default {!Simnet.Link.ten_gige}). *)

val build_scaleout :
  Simnet.Engine.t ->
  num_switches:int ->
  hosts_per_switch:int ->
  ?vendor:Mgmt.Device.vendor ->
  ?dataplane:Softswitch.Soft_switch.dataplane_kind ->
  ?pmd:Softswitch.Pmd.config ->
  ?host_link:Simnet.Link.config ->
  ?trunk:Simnet.Link.config ->
  unit ->
  (t, string) result
(** [num_switches] legacy switches, each with [hosts_per_switch] hosts,
    all fronted by one server (shared SS_2).  Host
    [m * hosts_per_switch + i] sits on switch [m], access port [i], and —
    because every member contributes the same number of ports — its
    controller-visible SS_2 port equals its host index. *)

val controller_switch : t -> Softswitch.Soft_switch.t
(** The switch a controller should attach to: SS_2 for HARMLESS (single
    or scale-out), the switch itself for plain OpenFlow.
    @raise Invalid_argument for a legacy-only deployment. *)

val host : t -> int -> Simnet.Host.t
val num_hosts : t -> int
