open Simnet

type scenario = {
  num_hosts : int;
  apps : unit -> Sdnctl.Controller.app list;
  traffic : Deployment.t -> unit;
  warmup : Sim_time.span;
  duration : Sim_time.span;
}

type verdict = {
  equivalent : bool;
  mismatches : string list;
  plain_delivered : int;
  harmless_delivered : int;
}

(* What each host's stack saw: the sorted multiset of encoded frames
   addressed to it (unicast to its MAC, or group-addressed).  Spurious
   flood copies addressed to other MACs are excluded — see the interface
   comment. *)
let delivered_frames deployment =
  Array.map
    (fun h ->
      Host.received h
      |> List.filter (fun (pkt : Netpkt.Packet.t) ->
             Netpkt.Mac_addr.equal pkt.Netpkt.Packet.dst (Host.mac h)
             || not (Netpkt.Mac_addr.is_unicast pkt.Netpkt.Packet.dst))
      |> List.map Netpkt.Packet.encode
      |> List.sort String.compare)
    deployment.Deployment.hosts

let run_one scenario deployment =
  let engine = deployment.Deployment.engine in
  let ctrl = Sdnctl.Controller.create engine () in
  List.iter (Sdnctl.Controller.add_app ctrl) (scenario.apps ());
  ignore
    (Sdnctl.Controller.attach_switch ctrl
       (Deployment.controller_switch deployment));
  Engine.run engine ~until:(Sim_time.add (Engine.now engine) scenario.warmup);
  scenario.traffic deployment;
  Engine.run engine
    ~until:(Sim_time.add (Engine.now engine) scenario.duration);
  delivered_frames deployment

let run scenario =
  let plain_engine = Engine.create () in
  let plain =
    Deployment.build_plain_openflow plain_engine ~num_hosts:scenario.num_hosts ()
  in
  let plain_frames = run_one scenario plain in
  let harmless_engine = Engine.create () in
  match
    Deployment.build_harmless harmless_engine ~num_hosts:scenario.num_hosts ()
  with
  | Error msg -> Error msg
  | Ok harmless ->
      let harmless_frames = run_one scenario harmless in
      let mismatches = ref [] in
      Array.iteri
        (fun i plain_list ->
          let harmless_list = harmless_frames.(i) in
          if plain_list <> harmless_list then
            mismatches :=
              Printf.sprintf
                "host %d: plain OF delivered %d frame(s), HARMLESS %d (or contents differ)"
                i (List.length plain_list)
                (List.length harmless_list)
              :: !mismatches)
        plain_frames;
      let count frames =
        Array.fold_left (fun acc l -> acc + List.length l) 0 frames
      in
      Ok
        {
          equivalent = !mismatches = [];
          mismatches = List.rev !mismatches;
          plain_delivered = count plain_frames;
          harmless_delivered = count harmless_frames;
        }
