type bill_line = { item : Catalog.device; quantity : int }

type bill = {
  scenario : string;
  ports_requested : int;
  ports_provided : int;
  lines : bill_line list;
}

let total bill =
  List.fold_left
    (fun acc line -> acc +. (float_of_int line.quantity *. line.item.Catalog.price_usd))
    0.0 bill.lines

let cost_per_port bill =
  if bill.ports_requested <= 0 then 0.0
  else total bill /. float_of_int bill.ports_requested

let ceil_div a b = (a + b - 1) / b

let check_ports ports =
  if ports <= 0 then invalid_arg "Scenario: ports must be positive"

(* Prefer 48-port boxes, topping up with a 24-port one when the remainder
   fits. *)
let tor_mix ports (small : Catalog.device) (big : Catalog.device) =
  let bigs = ports / big.Catalog.access_ports in
  let rest = ports - (bigs * big.Catalog.access_ports) in
  if rest = 0 then [ (big, bigs) ]
  else if rest <= small.Catalog.access_ports then
    (if bigs > 0 then [ (big, bigs) ] else []) @ [ (small, 1) ]
  else [ (big, bigs + 1) ]

let mk scenario ports lines =
  let provided =
    List.fold_left
      (fun acc (d, q) -> acc + (q * d.Catalog.access_ports))
      0 lines
  in
  {
    scenario;
    ports_requested = ports;
    ports_provided = provided;
    lines = List.map (fun (item, quantity) -> { item; quantity }) lines;
  }

let cots_sdn ~ports =
  check_ports ports;
  mk "cots-sdn" ports (tor_mix ports Catalog.cots_sdn_24 Catalog.cots_sdn_48)

(* One trunk per legacy switch; a server terminates 2 trunks on its
   built-in NIC and up to 4 more with two extra dual-port NICs.  We size
   servers at 3 trunks each (one extra NIC): enough 10G capacity for
   48x1G access ports per trunk without pathological oversubscription. *)
let trunks_per_server = 3

let harmless_switch_lines ports =
  let switches = ceil_div ports Catalog.legacy_48.Catalog.access_ports in
  let servers = ceil_div switches trunks_per_server in
  let extra_nics = servers (* one per server for the third trunk *) in
  (switches, [ (Catalog.server, servers); (Catalog.nic_dual_10g, extra_nics) ])

let harmless_greenfield ~ports =
  check_ports ports;
  let switches, server_lines = harmless_switch_lines ports in
  mk "harmless-greenfield" ports
     ((Catalog.legacy_48, switches) :: server_lines)

let harmless_brownfield ~ports =
  check_ports ports;
  let switches, server_lines = harmless_switch_lines ports in
  (* The owned legacy switches appear with quantity but zero incremental
     cost: model them with a zero-priced clone so the bill stays honest
     about what is deployed. *)
  let owned =
    { Catalog.legacy_48 with Catalog.sku = "legacy-48 (owned)"; price_usd = 0.0 }
  in
  mk "harmless-brownfield" ports ((owned, switches) :: server_lines)

let software_only ~ports =
  check_ports ports;
  (* 6 usable ports per fully-equipped server (2 onboard + 2x2 on NICs). *)
  let ports_per_server = 6 in
  let servers = ceil_div ports ports_per_server in
  let lines =
    [ (Catalog.server, servers); (Catalog.nic_dual_10g, 2 * servers) ]
  in
  (* access_ports of a server is 0 in the catalog; patch provided count. *)
  let bill = mk "software-only" ports lines in
  { bill with ports_provided = servers * ports_per_server }

let all ~ports =
  [
    cots_sdn ~ports;
    harmless_greenfield ~ports;
    harmless_brownfield ~ports;
    software_only ~ports;
  ]

let pp_bill fmt bill =
  Format.fprintf fmt "%s: %d ports requested, %d provided, $%.0f ($%.1f/port)@."
    bill.scenario bill.ports_requested bill.ports_provided (total bill)
    (cost_per_port bill);
  List.iter
    (fun line ->
      Format.fprintf fmt "  %dx %a@." line.quantity Catalog.pp line.item)
    bill.lines
