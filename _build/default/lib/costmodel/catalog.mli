(** The device catalog behind the CAPEX comparison (experiment E4).

    Prices are documented, deliberately conservative 2017-era street
    prices in USD; the paper's "no substantial price tag" claim rests on
    the {e ratios} between device classes, which are robust to the exact
    figures.  Change them here and every scenario recomputes. *)

type device = {
  sku : string;
  description : string;
  access_ports : int;   (** usable GbE access ports *)
  uplink_ports : int;   (** 10G uplinks usable as HARMLESS trunks *)
  price_usd : float;
  openflow_capable : bool;
}

val legacy_24 : device
(** 24×1G managed L2 switch, 2×10G uplinks — the "dumb" box. *)

val legacy_48 : device
(** 48×1G managed L2 switch, 4×10G uplinks. *)

val cots_sdn_24 : device
(** 24-port OpenFlow-enabled ToR including licenses. *)

val cots_sdn_48 : device
(** 48-port OpenFlow-enabled ToR including licenses. *)

val server : device
(** Commodity 1U server with a dual-port 10G DPDK NIC — hosts the
    HARMLESS software switches; each 10G port terminates one trunk. *)

val nic_dual_10g : device
(** Additional dual-port 10G NIC for a server (up to two extra). *)

val all : device list
val find : string -> device option
val pp : Format.formatter -> device -> unit
