(** Sweeps and summary statistics over the migration scenarios. *)

type row = {
  ports : int;
  cots : float;           (** $/port, COTS SDN *)
  greenfield : float;     (** $/port, HARMLESS buying everything *)
  brownfield : float;     (** $/port, HARMLESS reusing owned switches *)
  software : float;       (** $/port, servers as switches *)
}

val sweep : port_counts:int list -> row list

val savings_vs_cots : ports:int -> float
(** Fraction saved by HARMLESS (brownfield) relative to COTS SDN at a
    port count, in [0, 1). *)

val crossover_vs_cots : max_ports:int -> int option
(** Smallest port count (if any, up to [max_ports]) where HARMLESS
    greenfield stops being cheaper per port than COTS SDN. *)

val pp_row : Format.formatter -> row -> unit
val pp_table : Format.formatter -> row list -> unit
