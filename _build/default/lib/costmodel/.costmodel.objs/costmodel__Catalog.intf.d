lib/costmodel/catalog.mli: Format
