lib/costmodel/cost.ml: Float Format List Scenario
