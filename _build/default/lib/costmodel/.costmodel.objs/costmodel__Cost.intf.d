lib/costmodel/cost.mli: Format
