lib/costmodel/scenario.mli: Catalog Format
