lib/costmodel/catalog.ml: Format List String
