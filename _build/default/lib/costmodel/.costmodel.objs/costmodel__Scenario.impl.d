lib/costmodel/scenario.ml: Catalog Format List
