(** Migration scenarios: ways of obtaining [n] OpenFlow-controlled access
    ports, each priced from the {!Catalog}. *)

type bill_line = { item : Catalog.device; quantity : int }

type bill = {
  scenario : string;
  ports_requested : int;
  ports_provided : int;
  lines : bill_line list;
}

val total : bill -> float
val cost_per_port : bill -> float
(** Total divided by {e requested} ports. *)

val cots_sdn : ports:int -> bill
(** Rip-and-replace with COTS OpenFlow ToRs (mix of 24/48-port models). *)

val harmless_greenfield : ports:int -> bill
(** Buy legacy switches {e and} the servers: one 48-port legacy switch per
    trunk, one server (2 trunk terminations, expandable to 6 with extra
    NICs) shared by up to 3 legacy switches. *)

val harmless_brownfield : ports:int -> bill
(** The paper's headline case: the legacy switches are already owned, so
    only servers (and extra NICs) are bought. *)

val software_only : ports:int -> bill
(** Servers used directly as switches.  Port density is capped by the
    blade form factor — 6×10G ports per server with both extra NICs —
    so GbE access ports must each consume a server port; this is the
    "lower league in port density" the paper mentions. *)

val all : ports:int -> bill list
val pp_bill : Format.formatter -> bill -> unit
