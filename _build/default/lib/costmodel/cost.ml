type row = {
  ports : int;
  cots : float;
  greenfield : float;
  brownfield : float;
  software : float;
}

let row_of ports =
  {
    ports;
    cots = Scenario.cost_per_port (Scenario.cots_sdn ~ports);
    greenfield = Scenario.cost_per_port (Scenario.harmless_greenfield ~ports);
    brownfield = Scenario.cost_per_port (Scenario.harmless_brownfield ~ports);
    software = Scenario.cost_per_port (Scenario.software_only ~ports);
  }

let sweep ~port_counts = List.map row_of port_counts

let savings_vs_cots ~ports =
  let cots = Scenario.total (Scenario.cots_sdn ~ports) in
  let harmless = Scenario.total (Scenario.harmless_brownfield ~ports) in
  if cots <= 0.0 then 0.0 else Float.max 0.0 (1.0 -. (harmless /. cots))

let crossover_vs_cots ~max_ports =
  let rec search ports =
    if ports > max_ports then None
    else
      let r = row_of ports in
      if r.greenfield >= r.cots then Some ports else search (ports + 1)
  in
  search 1

let pp_row fmt r =
  Format.fprintf fmt "%6d | %10.1f | %10.1f | %10.1f | %10.1f" r.ports r.cots
    r.greenfield r.brownfield r.software

let pp_table fmt rows =
  Format.fprintf fmt " ports |  cots $/p  | green $/p  | brown $/p  |  soft $/p@.";
  Format.fprintf fmt "-------+------------+------------+------------+-----------@.";
  List.iter (fun r -> Format.fprintf fmt "%a@." pp_row r) rows
