type device = {
  sku : string;
  description : string;
  access_ports : int;
  uplink_ports : int;
  price_usd : float;
  openflow_capable : bool;
}

let legacy_24 =
  {
    sku = "legacy-24";
    description = "24x1G managed L2 switch, 2x10G uplinks";
    access_ports = 24;
    uplink_ports = 2;
    price_usd = 450.0;
    openflow_capable = false;
  }

let legacy_48 =
  {
    sku = "legacy-48";
    description = "48x1G managed L2 switch, 4x10G uplinks";
    access_ports = 48;
    uplink_ports = 4;
    price_usd = 850.0;
    openflow_capable = false;
  }

let cots_sdn_24 =
  {
    sku = "cots-sdn-24";
    description = "24x1G OpenFlow ToR incl. licenses";
    access_ports = 24;
    uplink_ports = 2;
    price_usd = 4500.0;
    openflow_capable = true;
  }

let cots_sdn_48 =
  {
    sku = "cots-sdn-48";
    description = "48x1G OpenFlow ToR incl. licenses";
    access_ports = 48;
    uplink_ports = 4;
    price_usd = 7500.0;
    openflow_capable = true;
  }

let server =
  {
    sku = "server";
    description = "1U server, dual-port 10G DPDK NIC";
    access_ports = 0;
    uplink_ports = 2;
    price_usd = 2500.0;
    openflow_capable = true;
  }

let nic_dual_10g =
  {
    sku = "nic-2x10g";
    description = "extra dual-port 10G NIC";
    access_ports = 0;
    uplink_ports = 2;
    price_usd = 350.0;
    openflow_capable = false;
  }

let all = [ legacy_24; legacy_48; cots_sdn_24; cots_sdn_48; server; nic_dual_10g ]

let find sku = List.find_opt (fun d -> String.equal d.sku sku) all

let pp fmt d =
  Format.fprintf fmt "%-12s $%-7.0f %s" d.sku d.price_usd d.description
